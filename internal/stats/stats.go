// Package stats computes and formats the paper's reported metrics:
// per-benchmark performance degradation, energy savings and energy-delay
// improvement relative to the MCD baseline, and min/max/average summaries
// across the suite (Figure 7).
package stats

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sim"
)

// Delta holds the three headline metrics, in percent, of one run relative
// to a baseline run: positive Slowdown means the run was slower; positive
// EnergySavings and EDImprovement mean the run was better.
type Delta struct {
	Slowdown      float64
	EnergySavings float64
	EDImprovement float64
}

// Vs computes the metrics of r relative to base.
func Vs(r, base sim.Result) Delta {
	var d Delta
	if base.TimePs > 0 {
		d.Slowdown = (float64(r.TimePs)/float64(base.TimePs) - 1) * 100
	}
	if base.EnergyPJ > 0 {
		d.EnergySavings = (1 - r.EnergyPJ/base.EnergyPJ) * 100
	}
	if be := base.EnergyDelay(); be > 0 {
		d.EDImprovement = (1 - r.EnergyDelay()/be) * 100
	}
	return d
}

// String formats the delta compactly.
func (d Delta) String() string {
	return fmt.Sprintf("slow=%+.1f%% save=%+.1f%% ed=%+.1f%%",
		d.Slowdown, d.EnergySavings, d.EDImprovement)
}

// Summary is a min/max/average triple over a set of values.
type Summary struct {
	Min, Max, Avg float64
	N             int
}

// Summarize reduces values to a summary; an empty slice yields zeros.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1), N: len(values)}
	sum := 0.0
	for _, v := range values {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Avg = sum / float64(len(values))
	return s
}

// String formats the summary as "min/avg/max".
func (s Summary) String() string {
	return fmt.Sprintf("%.1f / %.1f / %.1f", s.Min, s.Avg, s.Max)
}

// Table is a simple fixed-width text table builder for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v, floats with two
// decimals.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
