package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func res(timePs int64, energy float64) sim.Result {
	return sim.Result{TimePs: timePs, EnergyPJ: energy}
}

func TestVsIdentity(t *testing.T) {
	base := res(1000, 500)
	d := Vs(base, base)
	if d.Slowdown != 0 || d.EnergySavings != 0 || d.EDImprovement != 0 {
		t.Errorf("self-comparison nonzero: %+v", d)
	}
}

func TestVsDirections(t *testing.T) {
	base := res(1000, 500)
	d := Vs(res(1100, 400), base)
	if math.Abs(d.Slowdown-10) > 1e-9 {
		t.Errorf("slowdown = %v, want 10", d.Slowdown)
	}
	if math.Abs(d.EnergySavings-20) > 1e-9 {
		t.Errorf("savings = %v, want 20", d.EnergySavings)
	}
	// ED: (400*1100)/(500*1000) = 0.88 -> 12% improvement.
	if math.Abs(d.EDImprovement-12) > 1e-9 {
		t.Errorf("ed = %v, want 12", d.EDImprovement)
	}
}

func TestVsZeroBaseSafe(t *testing.T) {
	d := Vs(res(100, 100), res(0, 0))
	if d.Slowdown != 0 || d.EnergySavings != 0 || d.EDImprovement != 0 {
		t.Errorf("zero base produced %+v", d)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, -1, 7, 1})
	if s.Min != -1 || s.Max != 7 || s.Avg != 2.5 || s.N != 4 {
		t.Errorf("summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 || z.Min != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestSummarizeProperty(t *testing.T) {
	f := func(vals []float64) bool {
		for _, v := range vals {
			// Bound inputs so the sum cannot overflow.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e300 {
				return true
			}
		}
		if len(vals) > 0 {
			// Normalize magnitudes to avoid overflow in the average.
			for i := range vals {
				vals[i] = math.Mod(vals[i], 1e12)
			}
		}
		s := Summarize(vals)
		if len(vals) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Avg+1e-9 && s.Avg <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", 1.5)
	tb.Row("beta-long-name", 22)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.50") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: every line at least as wide as the widest cell.
	if len(lines[0]) == 0 || lines[1][0] != '-' {
		t.Error("missing header rule")
	}
}

func TestDeltaString(t *testing.T) {
	d := Delta{Slowdown: 5.25, EnergySavings: 20.5, EDImprovement: 16.33}
	s := d.String()
	if !strings.Contains(s, "+5.2") || !strings.Contains(s, "+20.5") {
		t.Errorf("delta string = %q", s)
	}
}
