package perf

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleReport(label string, scenarios ...Result) *Report {
	return &Report{
		Schema:    SchemaVersion,
		Label:     label,
		GoVersion: "go-test",
		GOOS:      "linux",
		GOARCH:    "amd64",
		CPUs:      1,
		Scenarios: scenarios,
	}
}

func res(name string, nsPerInstr, allocsPerInstr float64) Result {
	return Result{
		Name:           name,
		WallNs:         int64(nsPerInstr * 1000),
		Instructions:   1000,
		NsPerInstr:     nsPerInstr,
		InstrsPerSec:   1e9 / nsPerInstr,
		AllocsPerInstr: allocsPerInstr,
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	want := sampleReport("PR2", res("a", 123.5, 0.25), res("b", 9.75, 0))
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	if err := os.WriteFile(path, []byte(`{"schema": 99, "scenarios": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("expected schema error")
	}
}

func TestCompareOK(t *testing.T) {
	base := sampleReport("base", res("a", 100, 0.5))
	cur := sampleReport("cur", res("a", 110, 0.5))
	deltas, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || deltas[0].Regressed {
		t.Fatalf("10%% slowdown under a 15%% threshold must pass: %+v", deltas)
	}
}

func TestCompareThresholdBoundary(t *testing.T) {
	base := sampleReport("base", res("a", 100, 0))
	// Exactly at the threshold: not a regression (strictly greater fails).
	cur := sampleReport("cur", res("a", 115, 0))
	deltas, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if deltas[0].Regressed {
		t.Fatalf("cur == base*(1+threshold) must not regress: %+v", deltas[0])
	}
	// Just over: regression.
	cur = sampleReport("cur", res("a", 115.2, 0))
	deltas, err = Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !deltas[0].Regressed {
		t.Fatalf("cur just over the threshold must regress: %+v", deltas[0])
	}
}

func TestCompareMissingScenarioInCurrent(t *testing.T) {
	base := sampleReport("base", res("a", 100, 0), res("b", 100, 0))
	cur := sampleReport("cur", res("a", 100, 0))
	if _, err := Compare(base, cur, 0.15); err == nil {
		t.Fatal("a baseline scenario missing from the current report must error")
	}
}

func TestCompareNewScenario(t *testing.T) {
	base := sampleReport("base", res("a", 100, 0))
	cur := sampleReport("cur", res("a", 100, 0), res("new", 500, 1))
	deltas, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 2 {
		t.Fatalf("want 2 deltas, got %+v", deltas)
	}
	for _, d := range deltas {
		if d.Regressed {
			t.Fatalf("new scenario must not regress: %+v", d)
		}
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := sampleReport("base", res("a", 0, 0))
	cur := sampleReport("cur", res("a", 100, 0))
	deltas, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if deltas[0].Regressed {
		t.Fatalf("zero baseline carries no measurement; must be skipped, got %+v", deltas[0])
	}
	if deltas[0].Note == "" {
		t.Fatal("zero baseline skip must be noted")
	}
}

func TestCompareAllocRegression(t *testing.T) {
	// Wall time fine, allocations blown: must regress. Allocation ratios
	// are hardware-independent, so this guards CI even across runners.
	base := sampleReport("base", res("a", 100, 0.1))
	cur := sampleReport("cur", res("a", 100, 0.2))
	deltas, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !deltas[0].Regressed {
		t.Fatalf("2x allocations must regress: %+v", deltas[0])
	}
	// An allocation-free baseline that starts allocating regresses too.
	base = sampleReport("base", res("a", 100, 0))
	cur = sampleReport("cur", res("a", 100, 0.3))
	deltas, err = Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !deltas[0].Regressed {
		t.Fatalf("allocation-free scenario now allocating must regress: %+v", deltas[0])
	}
}

func TestCompareAllocsOnly(t *testing.T) {
	// Wall-clock blowout, allocations unchanged: allocs-only mode (the
	// CI gate on heterogeneous runners) must pass, full mode must fail.
	base := sampleReport("base", res("a", 100, 0.1))
	cur := sampleReport("cur", res("a", 300, 0.1))
	deltas, err := CompareOpts(base, cur, 0.15, false)
	if err != nil {
		t.Fatal(err)
	}
	if deltas[0].Regressed {
		t.Fatalf("allocs-only mode must ignore wall-clock: %+v", deltas[0])
	}
	if deltas[0].Ratio != 3 {
		t.Fatalf("wall ratio must still be reported: %+v", deltas[0])
	}
	full, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !full[0].Regressed {
		t.Fatalf("full mode must flag the wall-clock regression: %+v", full[0])
	}
	// Allocation regressions still fail in allocs-only mode.
	cur = sampleReport("cur", res("a", 100, 0.5))
	deltas, err = CompareOpts(base, cur, 0.15, false)
	if err != nil {
		t.Fatal(err)
	}
	if !deltas[0].Regressed {
		t.Fatalf("allocs-only mode must flag allocation regressions: %+v", deltas[0])
	}
}

func TestCompareNegativeThreshold(t *testing.T) {
	base := sampleReport("base", res("a", 100, 0))
	if _, err := Compare(base, base, -0.1); err == nil {
		t.Fatal("negative threshold must error")
	}
}

func TestScenarioRegistry(t *testing.T) {
	for _, want := range []string{BenchSmoke, FullWindow, TrainPipeline, SweepThroughput, SimThroughput} {
		if _, ok := ByName(want); !ok {
			t.Fatalf("scenario %q not registered", want)
		}
	}
	if _, err := Select([]string{"nope"}); err == nil {
		t.Fatal("unknown scenario must error")
	}
	scens, err := Select(nil)
	if err != nil || len(scens) != len(Scenarios()) {
		t.Fatalf("empty selection must mean all: %v %d", err, len(scens))
	}
}

// TestSimThroughputScenario smoke-tests one real scenario end to end:
// measured results must carry consistent derived metrics.
func TestSimThroughputScenario(t *testing.T) {
	s, ok := ByName(SimThroughput)
	if !ok {
		t.Fatal("missing scenario")
	}
	r, err := Measure(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != 1_000_000 {
		t.Fatalf("sim-throughput must cover 1M instructions, got %d", r.Instructions)
	}
	if r.NsPerInstr <= 0 || r.InstrsPerSec <= 0 {
		t.Fatalf("derived metrics not computed: %+v", r)
	}
}

// TestCompareRefusesMismatchedEnvironment: a wall-clock gate across
// reports measured at different core counts or GOMAXPROCS is noise (the
// parallel-training scenarios scale with width), so Compare must refuse
// it outright — while the allocs-only gate, being hardware-independent,
// still works, and pre-knob reports without the field still compare.
func TestCompareRefusesMismatchedEnvironment(t *testing.T) {
	base := sampleReport("base", res("a", 100, 0.5))
	cur := sampleReport("cur", res("a", 100, 0.5))

	cur.CPUs = 8
	if _, err := Compare(base, cur, 0.15); err == nil {
		t.Error("wall-clock gate across differing CPU counts must error")
	}
	if _, err := CompareOpts(base, cur, 0.15, false); err != nil {
		t.Errorf("allocs-only gate must ignore CPU mismatch: %v", err)
	}

	cur.CPUs = base.CPUs
	base.GOMAXPROCS, cur.GOMAXPROCS = 4, 8
	if _, err := Compare(base, cur, 0.15); err == nil {
		t.Error("wall-clock gate across differing GOMAXPROCS must error")
	}
	if _, err := CompareOpts(base, cur, 0.15, false); err != nil {
		t.Errorf("allocs-only gate must ignore GOMAXPROCS mismatch: %v", err)
	}

	// A zero-valued side (a report from before the field existed) is
	// not a mismatch.
	base.GOMAXPROCS = 0
	if _, err := Compare(base, cur, 0.15); err != nil {
		t.Errorf("pre-knob baseline must still compare: %v", err)
	}

	base.GOMAXPROCS, cur.GOMAXPROCS = 8, 8
	if _, err := Compare(base, cur, 0.15); err != nil {
		t.Errorf("matched environments must compare: %v", err)
	}
}
