// Package perf is the repository's benchmark harness: it runs named
// performance scenarios over the simulation pipeline, emits
// machine-readable reports (BENCH_PR<N>.json), and compares runs against
// a committed baseline with a noise-tolerant threshold so CI can gate on
// performance regressions. Scenarios are deterministic in their simulated
// work (instruction counts never vary between runs on any machine); only
// wall-clock and allocation metrics move, and those are what the
// comparison checks.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/workload"
)

// SchemaVersion identifies the report JSON layout.
const SchemaVersion = 1

// Scenario is one named benchmark workload. Run executes the workload
// once and returns the number of simulated instructions it covered;
// measurement (wall time, allocations) wraps around it.
type Scenario struct {
	Name string
	// Desc is a one-line description shown by `mcdperf -list`.
	Desc string
	// Setup, when non-nil, prepares untimed state the scenario measures
	// against (e.g. a warm artifact store) and returns a cleanup
	// function. It runs before the measurement window opens.
	Setup func() (cleanup func(), err error)
	Run   func() (instructions int64, err error)
}

// Result is the measured outcome of one scenario run.
type Result struct {
	Name         string  `json:"name"`
	WallNs       int64   `json:"wall_ns"`
	Instructions int64   `json:"instructions"`
	NsPerInstr   float64 `json:"ns_per_instr"`
	InstrsPerSec float64 `json:"instrs_per_sec"`
	// Allocs and Bytes are heap allocation counts/volume over the run
	// (runtime.MemStats deltas, so they include every pipeline stage the
	// scenario exercises, not just the simulator loop).
	Allocs         uint64  `json:"allocs"`
	Bytes          uint64  `json:"bytes"`
	AllocsPerInstr float64 `json:"allocs_per_instr"`
	BytesPerInstr  float64 `json:"bytes_per_instr"`
}

// Report is the machine-readable output of one harness invocation.
type Report struct {
	Schema    int    `json:"schema"`
	Label     string `json:"label,omitempty"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// GOMAXPROCS records the parallelism the report was measured under.
	// Wall-clock comparisons across differing parallelism environments are
	// meaningless for the parallel-training scenarios, so CompareOpts
	// refuses them (omitempty keeps pre-knob reports loading unchanged).
	GOMAXPROCS int      `json:"gomaxprocs,omitempty"`
	CreatedAt  string   `json:"created_at,omitempty"`
	Scenarios  []Result `json:"scenarios"`
}

// Find returns the result for a named scenario, or nil.
func (r *Report) Find(name string) *Result {
	for i := range r.Scenarios {
		if r.Scenarios[i].Name == name {
			return &r.Scenarios[i]
		}
	}
	return nil
}

// Measure runs one scenario and returns its measured result. The heap is
// settled with a forced GC before the run so allocation deltas belong to
// the scenario alone; Setup (when present) runs before the window opens
// so preparation work is never measured.
func Measure(s Scenario) (Result, error) {
	if s.Setup != nil {
		cleanup, err := s.Setup()
		if err != nil {
			return Result{}, fmt.Errorf("perf: scenario %s: setup: %w", s.Name, err)
		}
		if cleanup != nil {
			defer cleanup()
		}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	instrs, err := s.Run()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return Result{}, fmt.Errorf("perf: scenario %s: %w", s.Name, err)
	}
	if instrs <= 0 {
		return Result{}, fmt.Errorf("perf: scenario %s reported %d instructions", s.Name, instrs)
	}
	res := Result{
		Name:         s.Name,
		WallNs:       wall.Nanoseconds(),
		Instructions: instrs,
		Allocs:       after.Mallocs - before.Mallocs,
		Bytes:        after.TotalAlloc - before.TotalAlloc,
	}
	res.NsPerInstr = float64(res.WallNs) / float64(instrs)
	if wall > 0 {
		res.InstrsPerSec = float64(instrs) / wall.Seconds()
	}
	res.AllocsPerInstr = float64(res.Allocs) / float64(instrs)
	res.BytesPerInstr = float64(res.Bytes) / float64(instrs)
	return res, nil
}

// RunAll measures the named scenarios (all registered scenarios when
// names is empty) and assembles a report. The synthetic workload suite
// is built before any timing starts — it is shared process-wide setup,
// and without the warm-up the first scenario to touch a benchmark would
// be charged for constructing all nineteen.
func RunAll(names []string, label string) (*Report, error) {
	scens, err := Select(names)
	if err != nil {
		return nil, err
	}
	workload.Suite()
	rep := &Report{
		Schema:     SchemaVersion,
		Label:      label,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, s := range scens {
		res, err := Measure(s)
		if err != nil {
			return nil, err
		}
		rep.Scenarios = append(rep.Scenarios, res)
	}
	return rep, nil
}

// Select resolves scenario names against the registry; empty means all,
// in registration order.
func Select(names []string) ([]Scenario, error) {
	if len(names) == 0 {
		return Scenarios(), nil
	}
	var out []Scenario
	for _, n := range names {
		s, ok := ByName(n)
		if !ok {
			return nil, fmt.Errorf("perf: unknown scenario %q (have %v)", n, Names())
		}
		out = append(out, s)
	}
	return out, nil
}

// WriteFile marshals the report to path with a trailing newline.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads a report from a JSON file and validates its schema.
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("perf: %s: schema %d, want %d", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// registry holds the built-in scenarios in registration order.
var registry []Scenario

// Register adds a scenario; duplicate names panic (programming error).
func Register(s Scenario) {
	for _, have := range registry {
		if have.Name == s.Name {
			panic("perf: duplicate scenario " + s.Name)
		}
	}
	registry = append(registry, s)
}

// Scenarios returns every registered scenario in registration order.
func Scenarios() []Scenario {
	out := make([]Scenario, len(registry))
	copy(out, registry)
	return out
}

// Names returns the sorted registered scenario names.
func Names() []string {
	var out []string
	for _, s := range registry {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// ByName looks a scenario up.
func ByName(name string) (Scenario, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
