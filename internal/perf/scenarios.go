package perf

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/calltree"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Scenario names. BenchSmoke covers the per-instruction simulator hot
// path the sweep serves; the others isolate pipeline layers so a
// regression report points at the layer that slowed down.
const (
	// BenchSmoke simulates the diverse five-benchmark subset under every
	// untrained comparator policy (MCD baseline, single-clock, on-line
	// attack/decay) via the sweep engine: the per-instruction
	// timestamp-propagation loop over real workload streams, including
	// controller-driven DVFS ramps. This is the CI perf gate.
	BenchSmoke = "bench-smoke"
	// FullWindow is a single full-reference-window MCD baseline
	// simulation: the pure per-instruction simulator hot path with stream
	// generation, no training.
	FullWindow = "full-window"
	// TrainPipeline runs the profile-driven policies (off-line oracle and
	// the L+F scheme) end to end — profiling, DAG collection, shaking,
	// thresholding, editing, production run — on two benchmarks.
	TrainPipeline = "train-pipeline"
	// SweepThroughput pushes a small manifest grid through the sweep
	// engine with a cold persistent cache, measuring engine overhead,
	// executor fan-out and cache writes together.
	SweepThroughput = "sweep-throughput"
	// SimThroughput is the steady-state Machine microbenchmark: a single
	// hot block, no markers, no tracer — the allocation-free loop itself.
	SimThroughput = "sim-throughput"
	// SweepWarmArtifacts runs a threshold-sweep grid (gzip, off-line +
	// L+F at five deltas) against a cold result cache but a warm
	// artifact store: every point replans from stored shaken histograms
	// instead of retraining — the case the artifact store accelerates.
	// The store is warmed in untimed setup.
	SweepWarmArtifacts = "sweep-warm-artifacts"
	// BatchThroughput pushes a wide one-anchor grid — one benchmark under
	// many untrained machine configurations (a single-clock frequency
	// ladder plus an on-line aggressiveness ladder) — through the
	// engine's lockstep batching path with a cold cache: all jobs share
	// one decoded reference stream, so this isolates what
	// PackedStream.FeedLockstep saves over per-job stream replay.
	BatchThroughput = "batch-throughput"
	// SimThroughput2Dom is the steady-state Machine microbenchmark under
	// the non-default fe-be2 topology: same hot loop, different domain
	// routing, so regressions in the topology-driven paths (slice-backed
	// clocks, resource→domain indirection) are tracked separately from
	// the default-topology loop.
	SimThroughput2Dom = "sim-throughput-2dom"
	// TrainParallel trains one benchmark under all six calltree schemes
	// through the engine's batched path with TrainWorkers = GOMAXPROCS:
	// segment shakes fan out over the worker pool and the six schemes
	// profile and collect concurrently off one fanned-out stream. On a
	// multi-core machine this is the training wall the parallel pipeline
	// collapses; at GOMAXPROCS=1 it measures the synchronous path's
	// parity with train-pipeline.
	TrainParallel = "train-parallel"
	// StreamCacheCold runs an untrained grid against a cold result cache
	// but a warm packed-stream store: every job loads its ~13 B/instr
	// recorded stream from disk instead of re-running the generating
	// walk — the cold-daemon / fleet-worker startup case the stream
	// cache accelerates.
	StreamCacheCold = "stream-cache-cold"
	// TraceOverhead is the bench-smoke workload with a span tracer
	// attached: the identical job set, plus an obs ring write per phase.
	// Gated against the committed baseline it bounds the cost of
	// *enabled* tracing. The disabled-tracer cost is guarded by
	// bench-smoke itself, which runs in the same gate with Trace nil —
	// instrumentation creep on the untraced hot path shows up there
	// (and in sim-throughput's zero-alloc loop) first.
	TraceOverhead = "trace-overhead"
)

// smokeBenches is the bench-smoke subset, mirroring bench_test.go's
// diverse five: integer codec, branchy compressor, memory-bound, FP
// stream, and the training-mismatch case.
var smokeBenches = []string{"adpcm_decode", "gzip", "mcf", "swim", "mpeg2_decode"}

// trainBenches is the train-pipeline subset: an integer codec and a
// branchy compressor exercise training, editing and replanning.
var trainBenches = []string{"adpcm_decode", "gzip"}

func init() {
	Register(Scenario{
		Name: SimThroughput,
		Desc: "steady-state Machine loop, 1M synthetic instructions",
		Run:  func() (int64, error) { return runSimThroughput("") },
	})
	Register(Scenario{
		Name: SimThroughput2Dom,
		Desc: "steady-state Machine loop under the fe-be2 topology, 1M synthetic instructions",
		Run:  func() (int64, error) { return runSimThroughput("fe-be2") },
	})
	Register(Scenario{
		Name: FullWindow,
		Desc: "full-window MCD baseline run (gzip reference input)",
		Run:  runFullWindow,
	})
	Register(Scenario{
		Name: BenchSmoke,
		Desc: "untrained policies on " + fmt.Sprint(smokeBenches),
		Run:  runBenchSmoke,
	})
	Register(Scenario{
		Name: TrainPipeline,
		Desc: "off-line + L+F training pipeline on " + fmt.Sprint(trainBenches),
		Run:  runTrainPipeline,
	})
	Register(Scenario{
		Name: SweepThroughput,
		Desc: "manifest grid through the sweep engine with a cold disk cache",
		Run:  runSweepThroughput,
	})
	Register(Scenario{
		Name: BatchThroughput,
		Desc: "wide one-anchor untrained grid through lockstep batching, cold disk cache",
		Run:  runBatchThroughput,
	})
	Register(Scenario{
		Name: TrainParallel,
		Desc: "batched six-scheme training on gzip with TrainWorkers = GOMAXPROCS",
		Run:  runTrainParallel,
	})
	Register(Scenario{
		Name: TraceOverhead,
		Desc: "bench-smoke job set with the span tracer enabled",
		Run:  runTraceOverhead,
	})
	registerSweepWarmArtifacts()
	registerStreamCacheCold()
}

func runSimThroughput(topology string) (int64, error) {
	const budget = 1_000_000
	b := isa.NewBuilder("perf-sim-throughput")
	main := b.Subroutine("main")
	b.SetBody(main, b.Block(isa.Balanced, budget))
	prog := b.Finish(main)
	cfg := sim.DefaultConfig()
	cfg.Topology = topology
	m := sim.New(cfg)
	prog.Walk(isa.Input{Name: "train"}, &isa.CountingConsumer{Inner: m, Budget: budget})
	res := m.Finalize()
	return res.Instructions, nil
}

func runFullWindow() (int64, error) {
	b := workload.ByName("gzip")
	if b == nil {
		return 0, fmt.Errorf("benchmark gzip not in suite")
	}
	res := core.RunBaseline(core.DefaultConfig(), b.Prog, b.Ref, b.RefWindow)
	return res.Instructions, nil
}

func runBenchSmoke() (int64, error) {
	eng := sweep.New(core.DefaultConfig())
	var jobs []sweep.Job
	for _, n := range smokeBenches {
		jobs = append(jobs,
			sweep.Job{Bench: n, Policy: sweep.PolicyBaseline},
			sweep.Job{Bench: n, Policy: sweep.PolicySingleClock},
			sweep.Job{Bench: n, Policy: sweep.PolicyOnline},
		)
	}
	outs, _, err := eng.Run(context.Background(), jobs)
	if err != nil {
		return 0, err
	}
	var instrs int64
	for _, o := range outs {
		instrs += o.Res.Instructions
	}
	return instrs, nil
}

func runTraceOverhead() (int64, error) {
	eng := sweep.New(core.DefaultConfig())
	eng.Trace = obs.NewTracer(0)
	var jobs []sweep.Job
	for _, n := range smokeBenches {
		jobs = append(jobs,
			sweep.Job{Bench: n, Policy: sweep.PolicyBaseline},
			sweep.Job{Bench: n, Policy: sweep.PolicySingleClock},
			sweep.Job{Bench: n, Policy: sweep.PolicyOnline},
		)
	}
	outs, _, err := eng.Run(context.Background(), jobs)
	if err != nil {
		return 0, err
	}
	if spans, _, _ := eng.Trace.Snapshot(0); len(spans) == 0 {
		return 0, fmt.Errorf("tracer attached but no spans recorded")
	}
	var instrs int64
	for _, o := range outs {
		instrs += o.Res.Instructions
	}
	return instrs, nil
}

func runTrainPipeline() (int64, error) {
	eng := sweep.New(core.DefaultConfig())
	var jobs []sweep.Job
	for _, n := range trainBenches {
		jobs = append(jobs,
			sweep.Job{Bench: n, Policy: sweep.PolicyOffline},
			sweep.Job{Bench: n, Policy: sweep.PolicyScheme, Scheme: calltree.LF.Name},
		)
	}
	outs, _, err := eng.Run(context.Background(), jobs)
	if err != nil {
		return 0, err
	}
	var instrs int64
	for _, o := range outs {
		instrs += o.Res.Instructions
	}
	return instrs, nil
}

// warmArtifactBench and warmArtifactDeltas define the sweep-warm-artifacts
// grid: gzip's training dominates its production runs, so the scenario
// isolates what the artifact store saves — ten delta points replanned
// from two stored profiles (the L+F+C+P oracle on ref, L+F on train).
var (
	warmArtifactBench  = "gzip"
	warmArtifactDeltas = []float64{0.5, 1, 1.75, 2.5, 4}
)

func warmArtifactJobs() []sweep.Job {
	var jobs []sweep.Job
	for _, d := range warmArtifactDeltas {
		jobs = append(jobs,
			sweep.Job{Bench: warmArtifactBench, Policy: sweep.PolicyOffline, Delta: d},
			sweep.Job{Bench: warmArtifactBench, Policy: sweep.PolicyScheme, Scheme: calltree.LF.Name, Delta: d})
	}
	return jobs
}

func registerSweepWarmArtifacts() {
	var storeDir string
	Register(Scenario{
		Name: SweepWarmArtifacts,
		Desc: fmt.Sprintf("threshold-sweep grid (%s offline+L+F x %d deltas) against a warm artifact store",
			warmArtifactBench, len(warmArtifactDeltas)),
		Setup: func() (func(), error) {
			dir, err := os.MkdirTemp("", "mcdperf-warmart-*")
			if err != nil {
				return nil, err
			}
			storeDir = dir
			// Warm the store: resolve the grid's two training
			// dependencies once, persisting their profiles.
			eng := sweep.New(core.DefaultConfig())
			eng.Artifacts = sweep.ArtifactStore(dir)
			for _, spec := range []sweep.ProfileSpec{
				{Bench: warmArtifactBench, Scheme: calltree.LFCP.Name, OnRef: true},
				{Bench: warmArtifactBench, Scheme: calltree.LF.Name},
			} {
				if _, err := eng.Profile(spec); err != nil {
					os.RemoveAll(dir)
					return nil, err
				}
			}
			return func() { os.RemoveAll(dir) }, nil
		},
		Run: func() (int64, error) {
			resultDir, err := os.MkdirTemp("", "mcdperf-warmart-results-*")
			if err != nil {
				return 0, err
			}
			defer os.RemoveAll(resultDir)
			eng := sweep.New(core.DefaultConfig())
			eng.Cache = &sweep.Cache{Dir: resultDir}
			eng.Artifacts = sweep.ArtifactStore(storeDir)
			outs, _, err := eng.Run(context.Background(), warmArtifactJobs())
			if err != nil {
				return 0, err
			}
			var instrs int64
			for _, o := range outs {
				instrs += o.Res.Instructions
			}
			return instrs, nil
		},
	})
}

func runBatchThroughput() (int64, error) {
	dir, err := os.MkdirTemp("", "mcdperf-batch-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	m := &sweep.Manifest{
		Benchmarks:     []string{"adpcm_decode"},
		Policies:       []string{sweep.PolicyBaseline, sweep.PolicySingleClock, sweep.PolicyOnline},
		MHz:            []int{250, 400, 550, 700, 850, 1000},
		Aggressiveness: []float64{0.4, 0.55, 0.7, 0.85, 1.0, 1.15},
	}
	jobs, err := m.Jobs()
	if err != nil {
		return 0, err
	}
	eng := sweep.New(m.Config())
	eng.Cache = &sweep.Cache{Dir: dir}
	outs, _, err := eng.Run(context.Background(), jobs)
	if err != nil {
		return 0, err
	}
	var instrs int64
	for _, o := range outs {
		instrs += o.Res.Instructions
	}
	return instrs, nil
}

func runTrainParallel() (int64, error) {
	cfg := core.DefaultConfig()
	cfg.TrainWorkers = runtime.GOMAXPROCS(0)
	eng := sweep.New(cfg)
	var jobs []sweep.Job
	for _, s := range calltree.Schemes() {
		jobs = append(jobs, sweep.Job{Bench: "gzip", Policy: sweep.PolicyScheme, Scheme: s.Name})
	}
	outs, _, err := eng.Run(context.Background(), jobs)
	if err != nil {
		return 0, err
	}
	var instrs int64
	for _, o := range outs {
		instrs += o.Res.Instructions
	}
	return instrs, nil
}

// streamCacheBenches is the stream-cache-cold subset: an integer codec
// and a branchy compressor under every untrained policy, so stream
// replay (not training or controller work) dominates the measurement.
var streamCacheBenches = []string{"adpcm_decode", "gzip"}

func streamCacheJobs() []sweep.Job {
	var jobs []sweep.Job
	for _, n := range streamCacheBenches {
		jobs = append(jobs,
			sweep.Job{Bench: n, Policy: sweep.PolicyBaseline},
			sweep.Job{Bench: n, Policy: sweep.PolicySingleClock},
			sweep.Job{Bench: n, Policy: sweep.PolicyOnline},
		)
	}
	return jobs
}

func registerStreamCacheCold() {
	var cacheDir string
	Register(Scenario{
		Name: StreamCacheCold,
		Desc: fmt.Sprintf("untrained policies on %v, cold result cache, warm packed-stream store", streamCacheBenches),
		Setup: func() (func(), error) {
			dir, err := os.MkdirTemp("", "mcdperf-streams-*")
			if err != nil {
				return nil, err
			}
			cacheDir = dir
			// Warm the stream store untimed with a throwaway engine run,
			// exactly as a prior daemon or sweep would have left it; the
			// result entries it writes are discarded with the temp dir
			// below so Run's result cache is its own cold directory.
			warm := filepath.Join(dir, "warmup-results")
			eng := sweep.New(core.DefaultConfig())
			eng.Cache = &sweep.Cache{Dir: warm}
			eng.Streams = sweep.StreamStoreFor(dir)
			if _, _, err := eng.Run(context.Background(), streamCacheJobs()); err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			os.RemoveAll(warm)
			return func() { os.RemoveAll(dir) }, nil
		},
		Run: func() (int64, error) {
			resultDir, err := os.MkdirTemp("", "mcdperf-streams-results-*")
			if err != nil {
				return 0, err
			}
			defer os.RemoveAll(resultDir)
			eng := sweep.New(core.DefaultConfig())
			eng.Cache = &sweep.Cache{Dir: resultDir}
			eng.Streams = sweep.StreamStoreFor(cacheDir)
			outs, sum, err := eng.Run(context.Background(), streamCacheJobs())
			if err != nil {
				return 0, err
			}
			if sum.StreamHits == 0 {
				return 0, fmt.Errorf("stream-cache-cold: no stream hits (store not warmed?)")
			}
			var instrs int64
			for _, o := range outs {
				instrs += o.Res.Instructions
			}
			return instrs, nil
		},
	})
}

func runSweepThroughput() (int64, error) {
	dir, err := os.MkdirTemp("", "mcdperf-sweep-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	m := &sweep.Manifest{
		Benchmarks: []string{"adpcm_decode"},
		Policies:   []string{sweep.PolicyBaseline, sweep.PolicySingleClock, sweep.PolicyScheme},
		Schemes:    []string{calltree.LF.Name, calltree.LFCP.Name},
		Deltas:     []float64{1.0, 1.75, 2.5},
	}
	jobs, err := m.Jobs()
	if err != nil {
		return 0, err
	}
	eng := sweep.New(m.Config())
	eng.Cache = &sweep.Cache{Dir: dir}
	outs, _, err := eng.Run(context.Background(), jobs)
	if err != nil {
		return 0, err
	}
	var instrs int64
	for _, o := range outs {
		instrs += o.Res.Instructions
	}
	return instrs, nil
}
