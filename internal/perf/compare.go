package perf

import (
	"fmt"
	"strings"
)

// Delta is the comparison of one scenario between a baseline report and
// a current report.
type Delta struct {
	Name string `json:"name"`
	// BaseNsPerInstr and CurNsPerInstr are the compared wall metrics;
	// Ratio is cur/base (1.0 = unchanged, >1 = slower).
	BaseNsPerInstr float64 `json:"base_ns_per_instr"`
	CurNsPerInstr  float64 `json:"cur_ns_per_instr"`
	Ratio          float64 `json:"ratio"`
	// AllocRatio compares allocations per instruction the same way; it is
	// hardware-independent, so it catches allocation regressions even
	// when the runner changed. Zero baseline allocations with nonzero
	// current allocations always regress.
	BaseAllocsPerInstr float64 `json:"base_allocs_per_instr"`
	CurAllocsPerInstr  float64 `json:"cur_allocs_per_instr"`
	AllocRatio         float64 `json:"alloc_ratio"`
	Regressed          bool    `json:"regressed"`
	Note               string  `json:"note,omitempty"`
}

// String renders one delta as a log line.
func (d Delta) String() string {
	status := "ok"
	if d.Regressed {
		status = "REGRESSED"
	}
	s := fmt.Sprintf("%-18s %-9s ns/instr %8.2f -> %8.2f (x%.3f)  allocs/instr %7.4f -> %7.4f",
		d.Name, status, d.BaseNsPerInstr, d.CurNsPerInstr, d.Ratio,
		d.BaseAllocsPerInstr, d.CurAllocsPerInstr)
	if d.Note != "" {
		s += "  [" + d.Note + "]"
	}
	return s
}

// allocFloor ignores alloc-ratio noise below this many allocations per
// instruction: at such rates the scenario's fixed setup allocations
// dominate and the ratio is meaningless.
const allocFloor = 1e-4

// Compare checks every scenario of the current report against the
// baseline. threshold is the tolerated fractional slowdown (0.15 = 15%):
// a scenario regresses when cur > base*(1+threshold) on ns/instr or
// allocs/instr. Scenarios absent from the baseline are noted but never
// regress (they are new); a scenario present in the baseline but missing
// from the current report is an error — the gate cannot certify what it
// did not measure. A baseline entry with a zero or negative ns/instr
// carries no measurement and is skipped with a note.
func Compare(baseline, current *Report, threshold float64) ([]Delta, error) {
	return CompareOpts(baseline, current, threshold, true)
}

// CompareOpts is Compare with the wall-clock check made optional. With
// wallClock false only the allocations-per-instruction comparison can
// flag a regression; wall ratios are still reported. CI gates running
// on heterogeneous shared runners use this mode: a committed wall-clock
// baseline is only meaningful on the machine that produced it, while
// allocation rates are hardware-independent.
func CompareOpts(baseline, current *Report, threshold float64, wallClock bool) ([]Delta, error) {
	if threshold < 0 {
		return nil, fmt.Errorf("perf: negative threshold %v", threshold)
	}
	// Wall-clock gating across differing parallelism environments is
	// noise, not measurement: the parallel-training scenarios scale with
	// cores, so a baseline recorded at one width cannot certify a run at
	// another. Only refuse when both reports carry the field — pre-knob
	// baselines (zero value) still compare, as do allocation-only gates.
	if wallClock {
		if baseline.CPUs > 0 && current.CPUs > 0 && baseline.CPUs != current.CPUs {
			return nil, fmt.Errorf("perf: wall-clock gate across differing environments (baseline %d CPUs, current %d); rerun the baseline on this machine or gate with -allocs-only", baseline.CPUs, current.CPUs)
		}
		if baseline.GOMAXPROCS > 0 && current.GOMAXPROCS > 0 && baseline.GOMAXPROCS != current.GOMAXPROCS {
			return nil, fmt.Errorf("perf: wall-clock gate across differing environments (baseline GOMAXPROCS %d, current %d); rerun the baseline at this setting or gate with -allocs-only", baseline.GOMAXPROCS, current.GOMAXPROCS)
		}
	}
	var deltas []Delta
	for _, base := range baseline.Scenarios {
		cur := current.Find(base.Name)
		if cur == nil {
			return nil, fmt.Errorf("perf: scenario %q in baseline but not measured", base.Name)
		}
		d := Delta{
			Name:               base.Name,
			BaseNsPerInstr:     base.NsPerInstr,
			CurNsPerInstr:      cur.NsPerInstr,
			BaseAllocsPerInstr: base.AllocsPerInstr,
			CurAllocsPerInstr:  cur.AllocsPerInstr,
		}
		if base.NsPerInstr <= 0 {
			d.Note = "baseline has no measurement; skipped"
			deltas = append(deltas, d)
			continue
		}
		d.Ratio = cur.NsPerInstr / base.NsPerInstr
		if wallClock && d.Ratio > 1+threshold {
			d.Regressed = true
			d.Note = fmt.Sprintf("wall time over threshold (%.0f%%)", threshold*100)
		}
		switch {
		case base.AllocsPerInstr > allocFloor:
			d.AllocRatio = cur.AllocsPerInstr / base.AllocsPerInstr
			if d.AllocRatio > 1+threshold {
				d.Regressed = true
				d.Note = appendNote(d.Note, fmt.Sprintf("allocations over threshold (%.0f%%)", threshold*100))
			}
		case cur.AllocsPerInstr > allocFloor:
			d.AllocRatio = cur.AllocsPerInstr / allocFloor
			d.Regressed = true
			d.Note = appendNote(d.Note, "allocation-free scenario now allocates")
		default:
			d.AllocRatio = 1
		}
		deltas = append(deltas, d)
	}
	for _, cur := range current.Scenarios {
		if baseline.Find(cur.Name) == nil {
			deltas = append(deltas, Delta{
				Name:              cur.Name,
				CurNsPerInstr:     cur.NsPerInstr,
				CurAllocsPerInstr: cur.AllocsPerInstr,
				Ratio:             1,
				AllocRatio:        1,
				Note:              "new scenario (no baseline)",
			})
		}
	}
	return deltas, nil
}

// Regressions filters the deltas down to failures.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

func appendNote(have, add string) string {
	if have == "" {
		return add
	}
	return have + "; " + add
}

// FormatDeltas renders a comparison as a multi-line report.
func FormatDeltas(deltas []Delta) string {
	var b strings.Builder
	for _, d := range deltas {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
