package perf

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"os"

	"repro/internal/serve"
	"repro/internal/sweep"
)

// Merge/report-path scenarios: the streaming columnar merge against the
// per-entry JSON oracle it must stay byte-identical to, and the daemon's
// bounded-memory /results streaming over the same warm cache.
const (
	// MergeThroughput streams a 10k-row merge from the columnar segment
	// layer (`mcdsweep merge`'s default path): one footer-index scan
	// answers the whole grid, rows encode straight to the output writer.
	MergeThroughput = "merge-throughput"
	// MergeThroughputJSON is the same merge through the per-entry JSON
	// path (`mcdsweep merge -oracle`): one file read and decode per job,
	// with the full Merged slice materialized before encoding. The
	// MergeThroughput/MergeThroughputJSON wall-clock ratio is the
	// columnar layer's speedup on the identical byte output.
	MergeThroughputJSON = "merge-throughput-json"
	// ResultsStreaming drives a fresh daemon over the same warm cache
	// and streams the sweep's merged results (JSON and NDJSON) straight
	// off the segment layer — the bounded-memory serving path.
	ResultsStreaming = "results-streaming"
)

// mergeRounds amortizes per-round setup noise; both merge scenarios use
// the same count so their ratio is a pure per-merge comparison.
const mergeRounds = 3

// mergeGridManifest is the synthetic ~10k-job grid (19 benchmarks ×
// offline × 527 thresholds = 10013 jobs) all three scenarios share.
func mergeGridManifest() sweep.Manifest {
	deltas := make([]float64, 527)
	for i := range deltas {
		deltas[i] = 0.5 + float64(i)*0.01
	}
	return sweep.Manifest{
		Name:     "merge-grid",
		Policies: []string{sweep.PolicyOffline},
		Deltas:   deltas,
	}
}

// syntheticOutcome derives a deterministic outcome from the job alone,
// shaped like a real simulation result (per-domain float lists included)
// so merged rows carry realistic per-row volume.
func syntheticOutcome(j sweep.Job) (*sweep.Outcome, error) {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%g", j.Bench, j.Policy, j.Delta)
	seed := h.Sum64()
	out := &sweep.Outcome{}
	out.Res.Instructions = int64(1_000_000 + seed%1_000_000)
	out.Res.TimePs = out.Res.Instructions * int64(400+seed%200)
	out.Res.EnergyPJ = float64(seed%1_000_000) / 3.0
	out.Res.SyncCrossings = int64(seed % 10_000)
	out.Res.SyncPenalties = int64(seed % 5_000)
	out.Res.Mispredicts = int64(seed % 50_000)
	out.Res.MispredictRate = float64(seed%1000) / 10_000
	out.Res.IL1MissRate = float64(seed%100) / 1_000
	out.Res.DL1MissRate = float64(seed%200) / 1_000
	out.Res.L2MissRate = float64(seed%50) / 1_000
	for d := 0; d < 4; d++ {
		out.Res.DomainPJ = append(out.Res.DomainPJ, out.Res.EnergyPJ/4+float64(d))
		out.Res.AvgMHz = append(out.Res.AvgMHz, 250+float64((seed>>uint(8*d))%750))
	}
	return out, nil
}

// warmMergeGrid executes the grid untimed into a fresh cache directory
// (JSON entries plus one sealed segment) and returns the directory, the
// summed instruction count of the grid, and a cleanup function.
func warmMergeGrid() (dir string, instrs int64, cleanup func(), err error) {
	dir, err = os.MkdirTemp("", "mcdperf-merge-*")
	if err != nil {
		return "", 0, nil, err
	}
	fail := func(e error) (string, int64, func(), error) {
		os.RemoveAll(dir)
		return "", 0, nil, e
	}
	m := mergeGridManifest()
	jobs, err := m.Jobs()
	if err != nil {
		return fail(err)
	}
	eng := sweep.New(m.Config())
	eng.Cache = &sweep.Cache{Dir: dir}
	eng.Segments = sweep.SegmentStoreFor(dir)
	eng.ExecFn = syntheticOutcome
	outs, _, err := eng.Run(context.Background(), jobs)
	if err != nil {
		return fail(err)
	}
	for _, o := range outs {
		instrs += o.Res.Instructions
	}
	return dir, instrs, func() { os.RemoveAll(dir) }, nil
}

// countingDiscard counts bytes written so scenarios can assert the
// stream actually produced output without holding it.
type countingDiscard struct{ n int64 }

func (c *countingDiscard) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

func init() {
	m := mergeGridManifest()

	var segDir string
	var segInstrs int64
	Register(Scenario{
		Name: MergeThroughput,
		Desc: "stream-merge a 10k-job grid from the columnar segment layer (mcdsweep merge default path)",
		Setup: func() (func(), error) {
			dir, instrs, cleanup, err := warmMergeGrid()
			if err != nil {
				return nil, err
			}
			segDir, segInstrs = dir, instrs
			return cleanup, nil
		},
		Run: func() (int64, error) {
			jobs, err := m.Jobs()
			if err != nil {
				return 0, err
			}
			var total int64
			for r := 0; r < mergeRounds; r++ {
				// A fresh source per round keeps the measurement cold:
				// every round pays the segment scan, decode and stream.
				src := sweep.SourceFor(segDir)
				var w countingDiscard
				if err := sweep.MergeTo(&w, m.Config(), jobs, src); err != nil {
					return 0, err
				}
				if w.n == 0 {
					return 0, errors.New("perf: merge produced no output")
				}
				total += segInstrs
			}
			return total, nil
		},
	})

	var jsonDir string
	var jsonInstrs int64
	Register(Scenario{
		Name: MergeThroughputJSON,
		Desc: "merge the same 10k-job grid through the per-entry JSON oracle (mcdsweep merge -oracle path)",
		Setup: func() (func(), error) {
			dir, instrs, cleanup, err := warmMergeGrid()
			if err != nil {
				return nil, err
			}
			jsonDir, jsonInstrs = dir, instrs
			return cleanup, nil
		},
		Run: func() (int64, error) {
			jobs, err := m.Jobs()
			if err != nil {
				return 0, err
			}
			var total int64
			for r := 0; r < mergeRounds; r++ {
				b, err := sweep.MergeBytes(m.Config(), jobs, &sweep.Cache{Dir: jsonDir})
				if err != nil {
					return 0, err
				}
				if len(b) == 0 {
					return 0, errors.New("perf: merge produced no output")
				}
				total += jsonInstrs
			}
			return total, nil
		},
	})

	var resInstrs int64
	var resBase, resSweep string
	var resStop func()
	Register(Scenario{
		Name: ResultsStreaming,
		Desc: "stream a 10k-job sweep's merged results (JSON + NDJSON) from a warm daemon's segment layer",
		Setup: func() (func(), error) {
			dir, instrs, cleanup, err := warmMergeGrid()
			if err != nil {
				return nil, err
			}
			resInstrs = instrs
			// The default queue depth admits ~1k jobs; this sweep is 10k.
			srv := serve.NewServer(dir, 0, 16384)
			srv.ExecFn = syntheticOutcome
			ts := httptest.NewServer(srv.Handler())
			resBase = ts.URL
			resStop = func() {
				ts.Close()
				srv.Drain(context.Background())
				// Drop idle keep-alive connections so their teardown
				// goroutines cannot bleed allocations into whatever
				// scenario measures next.
				http.DefaultClient.CloseIdleConnections()
				cleanup()
			}
			// Submit the warm sweep untimed; Run measures only the
			// /results streaming path.
			mb, err := json.Marshal(m)
			if err != nil {
				resStop()
				return nil, err
			}
			c := &serve.Client{BaseURL: ts.URL}
			st, err := c.RunManifest(mb, nil)
			if err != nil {
				resStop()
				return nil, err
			}
			if st.Error != "" {
				resStop()
				return nil, errors.New(st.Error)
			}
			resSweep = st.ID
			return func() { resStop() }, nil
		},
		Run: func() (int64, error) {
			var total int64
			for _, format := range []string{"", "?format=ndjson"} {
				resp, err := http.Get(resBase + "/v1/sweeps/" + resSweep + "/results" + format)
				if err != nil {
					return 0, err
				}
				n, cerr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					return 0, fmt.Errorf("perf: results%s: HTTP %d", format, resp.StatusCode)
				}
				if cerr != nil {
					return 0, cerr
				}
				if n == 0 {
					return 0, errors.New("perf: results stream produced no output")
				}
				total += resInstrs
			}
			return total, nil
		},
	})
}
