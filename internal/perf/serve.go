package perf

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/calltree"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/sweep"
)

// Service scenarios: the sweep-as-a-service daemon driven by an
// in-process load generator, over a cold and a warm persistent cache.
const (
	// ServeThroughput drives a fresh daemon over a warm cache directory
	// (the restart case): eight concurrent clients submit overlapping
	// manifests, every job resolves through the result cache, and the
	// scenario measures the full service path — admission, dispatch,
	// disk loads, NDJSON streaming, merge. This is the serving-layer
	// counterpart of sweep-throughput's cold engine measurement.
	ServeThroughput = "serve-throughput"
	// ServeThroughputCold is the same eight-client load against a cold
	// cache: unique jobs execute exactly once via cross-request dedup
	// while every overlapping submission streams the shared outcomes.
	ServeThroughputCold = "serve-throughput-cold"
)

// serveLoadClients is the in-process load generator's concurrency.
const serveLoadClients = 8

// serveWarmRounds is how many fresh-daemon rounds the warm scenario
// measures: one warm round is a few milliseconds, far too short to
// gate on wall time, so the scenario amortizes setup noise over many.
const serveWarmRounds = 25

// serveLoadManifests is the submission mix: overlapping variants of the
// sweep-throughput grid. Variants (not byte-identical copies, which
// would collapse into a single content-addressed sweep) keep several
// distinct sweeps in flight that still share most jobs, so the
// cross-request dedup path is what gets measured.
func serveLoadManifests() [][]byte {
	base := sweep.Manifest{
		Name:       "serve-load",
		Benchmarks: []string{"adpcm_decode"},
		Policies:   []string{sweep.PolicyBaseline, sweep.PolicySingleClock, sweep.PolicyScheme},
		Schemes:    []string{calltree.LF.Name, calltree.LFCP.Name},
		Deltas:     []float64{1.0, 1.75, 2.5},
	}
	v2 := base
	v2.Name, v2.Deltas = "serve-load-2", []float64{1.0, 1.75}
	v3 := base
	v3.Name, v3.Schemes = "serve-load-3", []string{calltree.LF.Name}
	v4 := base
	v4.Name, v4.Policies = "serve-load-4", []string{sweep.PolicyBaseline, sweep.PolicySingleClock}

	var out [][]byte
	for _, m := range []sweep.Manifest{base, v2, v3, v4} {
		b, err := json.Marshal(m)
		if err != nil {
			panic("perf: serve manifest encoding: " + err.Error())
		}
		out = append(out, b)
	}
	return out
}

// serveLoadUnion enumerates the union of the load mix's job grids (the
// base variant covers the others), for warming the cache untimed.
func serveLoadUnion() (core.Config, []sweep.Job, error) {
	var m sweep.Manifest
	if err := json.Unmarshal(serveLoadManifests()[0], &m); err != nil {
		return core.Config{}, nil, err
	}
	jobs, err := m.Jobs()
	return m.Config(), jobs, err
}

// driveServer boots a fresh server over cacheDir, submits the load mix
// with serveLoadClients concurrent clients, and returns the total
// instructions streamed back across all sweeps (shared jobs count once
// per sweep that serves them — that is serving throughput, not
// simulation throughput).
func driveServer(cacheDir string) (int64, error) {
	srv := serve.NewServer(cacheDir, 0, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Drain before closing the listener so no scenario leaks pool
	// workers into the next measurement's allocation window.
	defer srv.Drain(context.Background())

	manifests := serveLoadManifests()
	var total atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, serveLoadClients)
	for i := 0; i < serveLoadClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &serve.Client{BaseURL: ts.URL}
			st, err := c.RunManifest(manifests[i%len(manifests)], func(ev serve.Event) {
				if ev.Outcome != nil {
					total.Add(ev.Outcome.Res.Instructions)
				}
			})
			if err == nil && st.Error != "" {
				err = errors.New(st.Error)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return 0, err
	}
	return total.Load(), nil
}

func init() {
	Register(Scenario{
		Name: ServeThroughputCold,
		Desc: "mcdserved under 8 overlapping concurrent submissions, cold cache (dedup executes each unique job once)",
		Run: func() (int64, error) {
			dir, err := os.MkdirTemp("", "mcdperf-serve-cold-*")
			if err != nil {
				return 0, err
			}
			defer os.RemoveAll(dir)
			return driveServer(dir)
		},
	})

	var warmDir string
	Register(Scenario{
		Name: ServeThroughput,
		Desc: "mcdserved under 8 overlapping concurrent submissions, warm cache (fresh daemon, the restart case)",
		Setup: func() (func(), error) {
			dir, err := os.MkdirTemp("", "mcdperf-serve-warm-*")
			if err != nil {
				return nil, err
			}
			warmDir = dir
			// Warm the cache untimed with the union grid, exactly as a
			// prior daemon (or a local mcdsweep run) would have left it.
			cfg, jobs, err := serveLoadUnion()
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			eng := sweep.New(cfg)
			eng.Cache = &sweep.Cache{Dir: dir}
			eng.Artifacts = sweep.ArtifactStore(dir)
			if _, _, err := eng.Run(context.Background(), jobs); err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			return func() { os.RemoveAll(dir) }, nil
		},
		Run: func() (int64, error) {
			var total int64
			for r := 0; r < serveWarmRounds; r++ {
				n, err := driveServer(warmDir)
				if err != nil {
					return 0, err
				}
				total += n
			}
			return total, nil
		},
	})
}
