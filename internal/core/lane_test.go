package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/calltree"
	"repro/internal/isa"
	"repro/internal/workload"
)

// TestTrainFeedBatchMatchesSequential is the batched-training contract:
// a multi-scheme batch must produce profiles whose portable encodings
// are byte-identical to scheme-by-scheme TrainFeed — the sweep layer
// persists these bytes as artifacts, so any drift would poison the
// artifact store.
func TestTrainFeedBatchMatchesSequential(t *testing.T) {
	b := workload.ByName("g721_decode")
	cfg := DefaultConfig()
	schemes := []calltree.Scheme{calltree.LF, calltree.LFCP}
	src := isa.RecordPacked(b.Prog, b.Train)

	batch := TrainFeedBatch(cfg, src, b.TrainWindow, schemes)
	if len(batch) != len(schemes) {
		t.Fatalf("TrainFeedBatch returned %d profiles, want %d", len(batch), len(schemes))
	}
	for i, scheme := range schemes {
		seq := TrainFeed(cfg, src, b.TrainWindow, scheme)
		want, err := EncodeProfile(seq)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EncodeProfile(batch[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("scheme %s: batched profile encoding differs from sequential training", scheme.Name)
		}
	}
}

// TestLanesLockstepMatchSequentialRuns checks the production side of
// batching: every lane kind, stepped in lockstep from one packed
// stream, must produce exactly the result its sequential Run*Feed
// counterpart produces.
func TestLanesLockstepMatchSequentialRuns(t *testing.T) {
	b := workload.ByName("g721_decode")
	cfg := DefaultConfig()
	src := isa.RecordPacked(b.Prog, b.Ref)

	prof := TrainFeed(cfg, isa.RecordPacked(b.Prog, b.Train), b.TrainWindow, calltree.LF)

	wantBase := RunBaselineFeed(cfg, src, b.RefWindow)
	wantSC := RunSingleClockFeed(cfg, src, b.RefWindow, cfg.Sim.BaseMHz)
	wantOn := RunOnlineFeed(cfg, src, b.RefWindow)
	wantEd, wantSt := RunEditedFeed(cfg, src, b.RefWindow, prof.Plan, false)
	wantOr, _ := RunEditedFeed(cfg, src, b.RefWindow, prof.Plan, true)

	lanes := []*Lane{
		NewBaselineLane(cfg),
		NewSingleClockLane(cfg, cfg.Sim.BaseMHz),
		NewOnlineLane(cfg),
		NewEditedLane(cfg, prof.Plan, false),
		NewEditedLane(cfg, prof.Plan, true),
	}
	sl := make([]isa.StreamLane, len(lanes))
	for i, l := range lanes {
		sl[i] = isa.StreamLane{Consumer: l.Consumer, Budget: b.RefWindow}
	}
	src.FeedLockstep(sl)

	gotBase, _ := lanes[0].Finish()
	gotSC, _ := lanes[1].Finish()
	gotOn, _ := lanes[2].Finish()
	gotEd, gotSt := lanes[3].Finish()
	gotOr, _ := lanes[4].Finish()

	if !reflect.DeepEqual(gotBase, wantBase) {
		t.Errorf("baseline lane: lockstep %+v != sequential %+v", gotBase, wantBase)
	}
	if !reflect.DeepEqual(gotSC, wantSC) {
		t.Errorf("single-clock lane: lockstep %+v != sequential %+v", gotSC, wantSC)
	}
	if !reflect.DeepEqual(gotOn, wantOn) {
		t.Errorf("online lane: lockstep %+v != sequential %+v", gotOn, wantOn)
	}
	if !reflect.DeepEqual(gotEd, wantEd) || gotSt != wantSt {
		t.Errorf("edited lane: lockstep (%+v, %+v) != sequential (%+v, %+v)", gotEd, gotSt, wantEd, wantSt)
	}
	if !reflect.DeepEqual(gotOr, wantOr) {
		t.Errorf("oracle lane: lockstep %+v != sequential %+v", gotOr, wantOr)
	}
}
