package core

import (
	"bytes"
	"testing"

	"repro/internal/calltree"
	"repro/internal/isa"
	"repro/internal/workload"
)

// builtinTopologies are the four registered domain layouts; the
// parallel-identity contract must hold on every one, since the shaker's
// per-domain power factors (and so its float accumulation) follow the
// topology.
var builtinTopologies = []string{"paper4", "sync1", "fe-be2", "fine6"}

// encodeAt trains one profile at the given worker count and returns its
// portable encoding — the exact bytes the artifact store would persist.
func encodeAt(t *testing.T, b *workload.Benchmark, topo string, workers int, scheme calltree.Scheme) []byte {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Sim.Topology = topo
	cfg.TrainWorkers = workers
	prof := TrainFeed(cfg, isa.RecordPacked(b.Prog, b.Train), b.TrainWindow, scheme)
	enc, err := EncodeProfile(prof)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestTrainFeedParallelBitIdentical is the tentpole determinism
// contract: training with a fanned-out shake pool must produce profiles
// byte-identical to the serial run, on every topology. These bytes are
// what the artifact store persists, so any drift would fork the cache by
// worker count.
func TestTrainFeedParallelBitIdentical(t *testing.T) {
	b := workload.ByName("g721_decode")
	if b == nil {
		t.Fatal("benchmark g721_decode not in suite")
	}
	for _, topo := range builtinTopologies {
		serial := encodeAt(t, b, topo, 1, calltree.LF)
		for _, workers := range []int{2, 8} {
			par := encodeAt(t, b, topo, workers, calltree.LF)
			if !bytes.Equal(serial, par) {
				t.Errorf("topology %s: profile encoding at %d workers differs from serial", topo, workers)
			}
		}
	}
}

// TestTrainFeedBatchParallelBitIdentical covers the batched path: all
// six schemes trained concurrently (per-scheme lanes off one fanned-out
// stream, memoized segment shakes) must match the serial batch
// byte-for-byte, scheme by scheme.
func TestTrainFeedBatchParallelBitIdentical(t *testing.T) {
	b := workload.ByName("g721_decode")
	if b == nil {
		t.Fatal("benchmark g721_decode not in suite")
	}
	schemes := calltree.Schemes()
	src := isa.RecordPacked(b.Prog, b.Train)

	batchAt := func(workers int) [][]byte {
		cfg := DefaultConfig()
		cfg.TrainWorkers = workers
		profs := TrainFeedBatch(cfg, src, b.TrainWindow, schemes)
		if len(profs) != len(schemes) {
			t.Fatalf("TrainFeedBatch(%d workers) returned %d profiles, want %d", workers, len(profs), len(schemes))
		}
		out := make([][]byte, len(profs))
		for i, p := range profs {
			enc, err := EncodeProfile(p)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = enc
		}
		return out
	}

	serial := batchAt(1)
	par := batchAt(8)
	for i, scheme := range schemes {
		if !bytes.Equal(serial[i], par[i]) {
			t.Errorf("scheme %s: batched profile at 8 workers differs from serial", scheme.Name)
		}
	}
}
