package core

import (
	"slices"
	"testing"

	"repro/internal/calltree"
	"repro/internal/dvfs"
	"repro/internal/workload"
)

// metrics computes slowdown / savings / ED improvement in percent.
func metrics(t *testing.T, timePs int64, energy float64, baseT int64, baseE float64) (slow, save, ed float64) {
	t.Helper()
	slow = (float64(timePs)/float64(baseT) - 1) * 100
	save = (1 - energy/baseE) * 100
	ed = (1 - energy*float64(timePs)/(baseE*float64(baseT))) * 100
	return
}

func TestProfilePipelineEndToEnd(t *testing.T) {
	b := workload.ByName("gsm_decode")
	cfg := DefaultConfig()
	base := RunBaseline(cfg, b.Prog, b.Ref, b.RefWindow)

	prof := Train(cfg, b.Prog, b.Train, b.TrainWindow, calltree.LF)
	if prof.Tree.NumLongRunning() == 0 {
		t.Fatal("training found no long-running nodes")
	}
	if len(prof.Hists) == 0 {
		t.Fatal("no shaken histograms")
	}
	if len(prof.Plan.StaticFreqs) == 0 {
		t.Fatal("no static frequency assignments for L+F")
	}
	res, st := RunEdited(cfg, b.Prog, b.Ref, b.RefWindow, prof.Plan, false)
	slow, save, _ := metrics(t, res.TimePs, res.EnergyPJ, base.TimePs, base.EnergyPJ)
	if save < 5 {
		t.Errorf("profile-driven savings = %.1f%%, want substantial", save)
	}
	if slow < 0 || slow > 30 {
		t.Errorf("profile-driven slowdown = %.1f%%, out of plausible band", slow)
	}
	if st.DynReconfig == 0 {
		t.Error("edited run executed no reconfigurations")
	}
	if st.OverheadPct > 1.0 {
		t.Errorf("instrumentation overhead = %.2f%%, want well under 1%%", st.OverheadPct)
	}
}

func TestProfileMatchesOffline(t *testing.T) {
	// The paper's headline: profile-driven reconfiguration achieves
	// almost identical results to the off-line oracle.
	b := workload.ByName("mcf")
	cfg := DefaultConfig()
	base := RunBaseline(cfg, b.Prog, b.Ref, b.RefWindow)
	off, _ := RunOffline(cfg, b.Prog, b.Ref, b.RefWindow)
	prof := Train(cfg, b.Prog, b.Train, b.TrainWindow, calltree.LF)
	lf, _ := RunEdited(cfg, b.Prog, b.Ref, b.RefWindow, prof.Plan, false)

	_, offSave, offED := metrics(t, off.TimePs, off.EnergyPJ, base.TimePs, base.EnergyPJ)
	_, lfSave, lfED := metrics(t, lf.TimePs, lf.EnergyPJ, base.TimePs, base.EnergyPJ)
	if diff := offSave - lfSave; diff > 5 || diff < -5 {
		t.Errorf("L+F savings %.1f%% far from off-line %.1f%%", lfSave, offSave)
	}
	if diff := offED - lfED; diff > 6 || diff < -6 {
		t.Errorf("L+F ED %.1f%% far from off-line %.1f%%", lfED, offED)
	}
}

func TestOnlineBetweenGlobalAndOffline(t *testing.T) {
	// Qualitative ordering on energy-delay: global < on-line-ish <
	// off-line (Figure 7). On-line is unstable per benchmark, so assert
	// over a small diverse set.
	cfg := DefaultConfig()
	var globalED, onlineED, offED float64
	names := []string{"mcf", "swim", "adpcm_decode"}
	for _, name := range names {
		b := workload.ByName(name)
		base := RunBaseline(cfg, b.Prog, b.Ref, b.RefWindow)
		single := RunSingleClock(cfg, b.Prog, b.Ref, b.RefWindow, cfg.Sim.BaseMHz)
		off, _ := RunOffline(cfg, b.Prog, b.Ref, b.RefWindow)
		on := RunOnline(cfg, b.Prog, b.Ref, b.RefWindow)
		glob := RunGlobalDVS(cfg, b.Prog, b.Ref, b.RefWindow, single.TimePs, off.TimePs)
		_, _, e1 := metrics(t, glob.TimePs, glob.EnergyPJ, base.TimePs, base.EnergyPJ)
		_, _, e2 := metrics(t, on.TimePs, on.EnergyPJ, base.TimePs, base.EnergyPJ)
		_, _, e3 := metrics(t, off.TimePs, off.EnergyPJ, base.TimePs, base.EnergyPJ)
		globalED += e1
		onlineED += e2
		offED += e3
	}
	if !(offED > globalED) {
		t.Errorf("off-line ED %.1f not above global %.1f", offED, globalED)
	}
	if !(offED > onlineED-3) {
		t.Errorf("off-line ED %.1f not >= on-line %.1f", offED, onlineED)
	}
}

func TestOracleBeatsInstrumentedOnOverhead(t *testing.T) {
	b := workload.ByName("gsm_encode")
	cfg := DefaultConfig()
	prof := Train(cfg, b.Prog, b.Train, b.TrainWindow, calltree.LFCP)
	_, stInstrumented := RunEdited(cfg, b.Prog, b.Ref, b.RefWindow, prof.Plan, false)
	_, stOracle := RunEdited(cfg, b.Prog, b.Ref, b.RefWindow, prof.Plan, true)
	if stOracle.OverheadCycles != 0 {
		t.Errorf("oracle overhead = %d cycles", stOracle.OverheadCycles)
	}
	if stInstrumented.OverheadCycles == 0 {
		t.Error("instrumented run had zero overhead")
	}
	if stInstrumented.DynInstr <= stInstrumented.DynReconfig {
		t.Error("path scheme should execute tracking instructions beyond reconfigs")
	}
}

func TestReplanDeltaMonotonic(t *testing.T) {
	b := workload.ByName("swim")
	cfg := DefaultConfig()
	prof := Train(cfg, b.Prog, b.Train, b.TrainWindow, calltree.LF)
	base := RunBaseline(cfg, b.Prog, b.Ref, b.RefWindow)
	prevSave := -1.0
	prevSlow := -1.0
	for _, delta := range []float64{0.5, 2, 8} {
		plan := Replan(prof, delta)
		res, _ := RunEdited(cfg, b.Prog, b.Ref, b.RefWindow, plan, false)
		slow, save, _ := metrics(t, res.TimePs, res.EnergyPJ, base.TimePs, base.EnergyPJ)
		if save < prevSave-1.5 {
			t.Errorf("savings fell with larger delta: %.1f after %.1f", save, prevSave)
		}
		if slow < prevSlow-1.5 {
			t.Errorf("slowdown fell with larger delta: %.1f after %.1f", slow, prevSlow)
		}
		prevSave, prevSlow = save, slow
	}
}

func TestChosenFrequenciesOnLadder(t *testing.T) {
	b := workload.ByName("jpeg_compress")
	cfg := DefaultConfig()
	prof := Train(cfg, b.Prog, b.Train, b.TrainWindow, calltree.LFCP)
	if len(prof.Plan.NodeFreqs) == 0 {
		t.Fatal("no node frequencies")
	}
	for n, f := range prof.Plan.NodeFreqs {
		for d, mhz := range f {
			if mhz == 0 {
				t.Fatalf("node %s domain %d has zero frequency", n.Path(), d)
			}
			dvfs.StepIndex(int(mhz)) // panics off-ladder
		}
	}
}

func TestMCDBaselinePenaltyMatchesPaperBand(t *testing.T) {
	// Paper Section 4.1: the MCD processor has an inherent performance
	// penalty of about 1.3% (max 3.6%) and an energy penalty of about
	// 0.8% vs its globally-clocked counterpart.
	cfg := DefaultConfig()
	var sumPerf float64
	names := []string{"adpcm_decode", "gsm_decode", "mcf", "equake"}
	for _, name := range names {
		b := workload.ByName(name)
		mcd := RunBaseline(cfg, b.Prog, b.Ref, b.RefWindow)
		syncr := RunSingleClock(cfg, b.Prog, b.Ref, b.RefWindow, cfg.Sim.BaseMHz)
		perf := (float64(mcd.TimePs)/float64(syncr.TimePs) - 1) * 100
		if perf < -1 || perf > 8 {
			t.Errorf("%s: MCD penalty %.2f%% outside plausible band", name, perf)
		}
		sumPerf += perf
	}
	avg := sumPerf / float64(len(names))
	if avg < 0 || avg > 5 {
		t.Errorf("average MCD penalty %.2f%%, want small and positive", avg)
	}
}

func TestMpeg2UnseenPathsLFVsPath(t *testing.T) {
	// Section 4.2: mpeg2 decode reaches functions over paths absent in
	// training; path-tracking schemes skip reconfiguration there, L+F
	// reconfigures anyway, yielding more savings (and more slowdown).
	b := workload.ByName("mpeg2_decode")
	cfg := DefaultConfig()
	base := RunBaseline(cfg, b.Prog, b.Ref, b.RefWindow)

	lfcp := Train(cfg, b.Prog, b.Train, b.TrainWindow, calltree.LFCP)
	rPath, _ := RunEdited(cfg, b.Prog, b.Ref, b.RefWindow, lfcp.Plan, false)
	lf := Train(cfg, b.Prog, b.Train, b.TrainWindow, calltree.LF)
	rLF, _ := RunEdited(cfg, b.Prog, b.Ref, b.RefWindow, lf.Plan, false)

	_, savePath, _ := metrics(t, rPath.TimePs, rPath.EnergyPJ, base.TimePs, base.EnergyPJ)
	_, saveLF, _ := metrics(t, rLF.TimePs, rLF.EnergyPJ, base.TimePs, base.EnergyPJ)
	if saveLF <= savePath {
		t.Errorf("L+F savings %.1f%% not above path-tracking %.1f%% on mpeg2_decode",
			saveLF, savePath)
	}
}

func TestTrainDeterministic(t *testing.T) {
	b := workload.ByName("adpcm_encode")
	cfg := DefaultConfig()
	p1 := Train(cfg, b.Prog, b.Train, b.TrainWindow, calltree.LF)
	p2 := Train(cfg, b.Prog, b.Train, b.TrainWindow, calltree.LF)
	if len(p1.Plan.StaticFreqs) != len(p2.Plan.StaticFreqs) {
		t.Fatal("training not deterministic: different plan sizes")
	}
	for k, f := range p1.Plan.StaticFreqs {
		if !slices.Equal(p2.Plan.StaticFreqs[k], f) {
			t.Fatalf("training not deterministic at %v: %v vs %v", k, f, p2.Plan.StaticFreqs[k])
		}
	}
}
