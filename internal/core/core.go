// Package core is the public façade of the library: it orchestrates the
// paper's four-phase profile-driven reconfiguration pipeline end to end
// and provides runners for every policy the paper compares.
//
// The pipeline (Section 3):
//
//  1. Profile a training run to build the call tree and find
//     long-running nodes (internal/profiler, internal/calltree).
//  2. Simulate the training run at full speed, collecting dependence
//     DAGs per long-running node, and shake them (internal/trace,
//     internal/shaker).
//  3. Apply slowdown thresholding to pick per-domain frequencies per
//     node (internal/threshold).
//  4. Edit the binary, injecting path-tracking and reconfiguration
//     instructions (internal/edit).
//
// Production runs feed the edited stream to the MCD simulator
// (internal/sim). The off-line oracle is the same pipeline trained on
// the production input itself with zero instrumentation cost; the
// on-line comparator attaches the attack/decay hardware controller; the
// global-DVS comparator runs a single-clock machine at a matched
// frequency.
package core

import (
	"runtime"
	"time"

	"repro/internal/calltree"
	"repro/internal/control"
	"repro/internal/edit"
	"repro/internal/isa"
	"repro/internal/profiler"
	"repro/internal/shaker"
	"repro/internal/sim"
	"repro/internal/threshold"
	"repro/internal/trace"
)

// Config collects the knobs of the whole pipeline.
type Config struct {
	// Sim is the processor configuration (Table 1 by default).
	Sim sim.Config
	// Shaker parameterizes the slack-distribution algorithm.
	Shaker shaker.Config
	// DeltaPct is the slowdown threshold delta (percent) used by phase
	// three. Because per-domain budgets compound across domains and the
	// dependence DAG is approximate, the realized whole-program slowdown
	// is larger than delta; the default is calibrated so the suite
	// averages about 7% slowdown, the paper's headline operating point.
	DeltaPct float64
	// MaxInstances bounds how many dynamic instances of each
	// long-running node are traced and shaken during training.
	MaxInstances int
	// MaxEvents bounds the dependence-DAG size per traced instance.
	MaxEvents int
	// Online configures the attack/decay comparator.
	Online control.AttackDecayConfig
	// TrainWorkers bounds the training pipeline's intra-job parallelism:
	// segment shakes fan out over up to TrainWorkers private runners, and
	// batched multi-scheme training profiles and collects per scheme
	// concurrently (see DESIGN.md §12). 0 means GOMAXPROCS; 1 forces the
	// fully synchronous path. Every setting produces bit-identical
	// profiles — ordered reduction erases scheduling timing — so this is
	// an execution knob, not part of the simulated configuration: it is
	// excluded from JSON encodings and therefore from result-cache keys,
	// artifact keys, and the serving layer's engine keys.
	TrainWorkers int `json:"-"`
	// Observe, when non-nil, receives coarse wall-clock phase timings
	// from training runs: "treewalk" (the phase-1 call-tree walk),
	// "collect" (the phase-2 full-speed pass with DAG collection), and
	// "shake" (one observation per segment shake). Like
	// TrainWorkers it is an execution-side knob, not part of the
	// simulated configuration: excluded from JSON encodings and
	// therefore from every content-address (result-cache, artifact,
	// stream, engine keys). Implementations must be safe for concurrent
	// calls — shakes report from pool workers.
	Observe PhaseObserver `json:"-"`
}

// PhaseObserver is the training pipeline's timing callback; see
// Config.Observe. It is an interface (not a func field) so Config stays
// a comparable type.
type PhaseObserver interface {
	ObservePhase(phase string, d time.Duration)
}

// trainWorkers resolves the training-parallelism knob.
func (c *Config) trainWorkers() int {
	if c.TrainWorkers > 0 {
		return c.TrainWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig() Config {
	return Config{
		Sim:          sim.DefaultConfig(),
		Shaker:       shaker.DefaultConfig(),
		DeltaPct:     1.75,
		MaxInstances: 2,
		MaxEvents:    120_000,
		Online:       control.DefaultAttackDecay(),
	}
}

// Profile is the output of training: the call tree, per-node shaken
// histograms, and the edit plan with chosen frequencies.
type Profile struct {
	Scheme calltree.Scheme
	Tree   *calltree.Tree
	Hists  map[*calltree.Node]*shaker.DomainHists
	Plan   *edit.Plan
}

// Train runs phases one through four for one (program, input, scheme)
// triple and returns the resulting profile. oracle disables
// instrumentation cost accounting (used by the off-line comparator).
func Train(cfg Config, prog *isa.Program, in isa.Input, window int64, scheme calltree.Scheme) *Profile {
	return TrainFeed(cfg, prog.Feeder(in), window, scheme)
}

// TrainFeed is Train over any stream source; the sweep executor passes
// recorded streams here so the two training walks (profiling, then DAG
// collection) replay one recording instead of regenerating the stream.
func TrainFeed(cfg Config, src isa.Feeder, window int64, scheme calltree.Scheme) *Profile {
	topo := cfg.Sim.Topo()
	// Phase 1: build the call tree.
	var t0 time.Time
	if cfg.Observe != nil {
		t0 = time.Now()
	}
	tree := profiler.ProfileFeed(src, window, scheme)
	if cfg.Observe != nil {
		cfg.Observe.ObservePhase("treewalk", time.Since(t0))
	}

	// Phase 2: full-speed simulated run with DAG collection + shaker.
	// The shaker's per-domain power factors follow the topology unless
	// the configuration already covers its scalable domains. Segment
	// shakes fan out over the training pool; the Seq delivers histograms
	// in submission order, so the reduction below sees exactly the
	// sequence a serial run would (with TrainWorkers <= 1 the pool is
	// synchronous and this is the serial run).
	hists := make(map[*calltree.Node]*shaker.DomainHists)
	pool := shaker.NewPool(shaker.ConfigFor(cfg.Shaker, topo), cfg.trainWorkers())
	if obs := cfg.Observe; obs != nil {
		pool.Observe = func(d time.Duration) { obs.ObservePhase("shake", d) }
	}
	defer pool.Close()
	seq := pool.NewSeq()
	collector := trace.NewCollector(tree, cfg.MaxInstances, cfg.MaxEvents, func(seg *trace.Segment) {
		node := seg.Node
		seq.Shake(seg, nil, func(h *shaker.DomainHists) {
			addHists(hists, node, h)
		})
	})
	collector.SetTopology(topo)
	// Segments handed to the pool are deep-copied before the callback
	// returns (and reduced inline when the pool is synchronous), so the
	// collector can reuse one event arena for the whole run.
	collector.RecycleSegments = true
	m := sim.New(cfg.Sim)
	m.SetTracer(collector)
	m.SetMarkerSink(collector)
	if cfg.Observe != nil {
		t0 = time.Now()
	}
	src.Feed(&isa.CountingConsumer{Inner: m, Budget: window})
	collector.Close()
	seq.Close()
	if cfg.Observe != nil {
		cfg.Observe.ObservePhase("collect", time.Since(t0))
	}

	prof := &Profile{Scheme: scheme, Tree: tree, Hists: hists}
	prof.Plan = Replan(prof, cfg.DeltaPct)
	return prof
}

// Replan reruns phase three (slowdown thresholding) and phase four (plan
// construction) for a new slowdown delta, reusing the profile's shaken
// histograms. Training (phases one and two) is delta-independent, so
// threshold sweeps (Figures 10 and 11) replan cheaply.
func Replan(prof *Profile, deltaPct float64) *edit.Plan {
	scheme := prof.Scheme
	nodeFreqs := make(map[*calltree.Node]edit.Freqs)
	if scheme.Path {
		for n, h := range prof.Hists {
			nodeFreqs[n] = toFreqs(threshold.Choose(h, deltaPct))
		}
		return edit.BuildPlan(prof.Tree, nodeFreqs, scheme)
	}
	// Without path tracking, contexts sharing a static subroutine or
	// loop are indistinguishable at run time; merge their histograms
	// before thresholding (this is the averaging that costs epic
	// encode its per-call-site precision, Section 4.2).
	merged := make(map[edit.StaticKey]*shaker.DomainHists)
	for n, h := range prof.Hists {
		k := edit.StaticKey{Kind: n.Kind, ID: n.ID}
		if prev, ok := merged[k]; ok {
			prev.Add(h)
		} else {
			// Deep copy: the merge accumulates into this entry, and the
			// profile's own histograms must stay untouched (they are the
			// delta-independent training state every Replan reuses).
			merged[k] = h.Clone()
		}
	}
	staticFreqs := make(map[edit.StaticKey]edit.Freqs, len(merged))
	for k, h := range merged {
		staticFreqs[k] = toFreqs(threshold.Choose(h, deltaPct))
	}
	// Seed node freqs so BuildPlan records reconfig points, then
	// override with the merged static table.
	for n := range prof.Hists {
		k := edit.StaticKey{Kind: n.Kind, ID: n.ID}
		nodeFreqs[n] = staticFreqs[k]
	}
	plan := edit.BuildPlan(prof.Tree, nodeFreqs, scheme)
	plan.MergeStaticFreqs(staticFreqs)
	return plan
}

func toFreqs(f []int) edit.Freqs {
	out := make(edit.Freqs, len(f))
	for i, v := range f {
		out[i] = uint16(v)
	}
	return out
}

// EditStats reports the run-time instrumentation activity of an edited
// run (Table 4's "Dynamic" and "Overhead" columns).
type EditStats struct {
	DynReconfig    int64
	DynInstr       int64
	OverheadCycles int64
	// OverheadPct estimates the injected instructions' share of run
	// time, in percent.
	OverheadPct float64
}

// RunBaseline simulates the program on the MCD baseline: all domains at
// full speed, synchronization penalties included.
func RunBaseline(cfg Config, prog *isa.Program, in isa.Input, window int64) sim.Result {
	return RunBaselineFeed(cfg, prog.Feeder(in), window)
}

// RunBaselineFeed is RunBaseline over any stream source.
func RunBaselineFeed(cfg Config, src isa.Feeder, window int64) sim.Result {
	res, _ := feedLane(NewBaselineLane(cfg), src, window)
	return res
}

// feedLane drives a lane from a sequential stream source.
func feedLane(l *Lane, src isa.Feeder, window int64) (sim.Result, EditStats) {
	src.Feed(&isa.CountingConsumer{Inner: l.Consumer, Budget: window})
	return l.Finish()
}

// RunSingleClock simulates a globally synchronous processor: one clock
// at mhz, no inter-domain synchronization penalties. It backs both the
// MCD-penalty experiment (mhz = full speed) and the global-DVS
// comparator (mhz matched to a target run time).
func RunSingleClock(cfg Config, prog *isa.Program, in isa.Input, window int64, mhz int) sim.Result {
	return RunSingleClockFeed(cfg, prog.Feeder(in), window, mhz)
}

// RunSingleClockFeed is RunSingleClock over any stream source.
func RunSingleClockFeed(cfg Config, src isa.Feeder, window int64, mhz int) sim.Result {
	res, _ := feedLane(NewSingleClockLane(cfg, mhz), src, window)
	return res
}

// RunEdited simulates the edited binary (profile-driven reconfiguration)
// on the given input. oracle runs suppress instrumentation overhead,
// modeling the off-line algorithm's free reconfigurations.
func RunEdited(cfg Config, prog *isa.Program, in isa.Input, window int64, plan *edit.Plan, oracle bool) (sim.Result, EditStats) {
	return RunEditedFeed(cfg, prog.Feeder(in), window, plan, oracle)
}

// RunEditedFeed is RunEdited over any stream source.
func RunEditedFeed(cfg Config, src isa.Feeder, window int64, plan *edit.Plan, oracle bool) (sim.Result, EditStats) {
	return feedLane(NewEditedLane(cfg, plan, oracle), src, window)
}

// RunOffline trains on the production input itself (perfect future
// knowledge) and runs with zero-cost reconfiguration, reproducing the
// off-line comparator of Semeraro et al. (HPCA 2002).
func RunOffline(cfg Config, prog *isa.Program, in isa.Input, window int64) (sim.Result, *Profile) {
	prof := Train(cfg, prog, in, window, calltree.LFCP)
	res, _ := RunEdited(cfg, prog, in, window, prof.Plan, true)
	return res, prof
}

// RunOnline simulates the hardware attack/decay controller.
func RunOnline(cfg Config, prog *isa.Program, in isa.Input, window int64) sim.Result {
	return RunOnlineFeed(cfg, prog.Feeder(in), window)
}

// RunOnlineFeed is RunOnline over any stream source.
func RunOnlineFeed(cfg Config, src isa.Feeder, window int64) sim.Result {
	res, _ := feedLane(NewOnlineLane(cfg), src, window)
	return res
}

// RunGlobalDVS runs the single-clock global-DVS comparator matched to a
// target run time.
func RunGlobalDVS(cfg Config, prog *isa.Program, in isa.Input, window int64, baseTimePs, targetTimePs int64) sim.Result {
	mhz := control.GlobalDVSMHz(baseTimePs, targetTimePs)
	return RunSingleClock(cfg, prog, in, window, mhz)
}
