package core

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/calltree"
	"repro/internal/control"
	"repro/internal/edit"
	"repro/internal/isa"
	"repro/internal/profiler"
	"repro/internal/shaker"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Lane is one production simulation split into its two halves — the
// consumer that eats the instruction stream and the finalization that
// produces the result — so a caller can choose how the stream arrives:
// a sequential Feed (the Run*Feed wrappers below) or one lockstep
// replay driving many lanes from a single decoded pass
// (isa.PackedStream.FeedLockstep). Both deliver item-for-item identical
// streams, so the lane computes identical results either way.
type Lane struct {
	// Consumer receives the (budget-limited) instruction stream.
	Consumer isa.Consumer
	finish   func() (sim.Result, EditStats)
	done     bool
	res      sim.Result
	stats    EditStats
}

// Finish finalizes the simulation and returns its result. It is
// idempotent: repeated calls return the first result.
func (l *Lane) Finish() (sim.Result, EditStats) {
	if !l.done {
		l.res, l.stats = l.finish()
		l.done = true
	}
	return l.res, l.stats
}

// NewBaselineLane prepares an MCD-baseline simulation (all domains at
// full speed, synchronization penalties included).
func NewBaselineLane(cfg Config) *Lane {
	m := sim.New(cfg.Sim)
	return &Lane{Consumer: m, finish: func() (sim.Result, EditStats) {
		return m.Finalize(), EditStats{}
	}}
}

// NewSingleClockLane prepares a globally synchronous simulation at mhz.
func NewSingleClockLane(cfg Config, mhz int) *Lane {
	scfg := cfg.Sim
	scfg.BaseMHz = mhz
	scfg.Sync.Disabled = true
	m := sim.New(scfg)
	return &Lane{Consumer: m, finish: func() (sim.Result, EditStats) {
		return m.Finalize(), EditStats{}
	}}
}

// NewOnlineLane prepares a simulation under the attack/decay hardware
// controller.
func NewOnlineLane(cfg Config) *Lane {
	m := sim.New(cfg.Sim)
	control.NewAttackDecay(cfg.Online).Attach(m)
	return &Lane{Consumer: m, finish: func() (sim.Result, EditStats) {
		return m.Finalize(), EditStats{}
	}}
}

// NewEditedLane prepares a simulation of the edited binary under plan;
// oracle runs suppress instrumentation overhead.
func NewEditedLane(cfg Config, plan *edit.Plan, oracle bool) *Lane {
	m := sim.New(cfg.Sim)
	var ed *edit.Editor
	if oracle {
		ed = edit.NewOracleEditor(plan, m)
	} else {
		ed = edit.NewEditor(plan, m)
	}
	return &Lane{Consumer: ed, finish: func() (sim.Result, EditStats) {
		res := m.Finalize()
		st := EditStats{
			DynReconfig:    ed.DynReconfig,
			DynInstr:       ed.DynInstr,
			OverheadCycles: ed.OverheadCycles,
		}
		if res.TimePs > 0 {
			// Overhead cycles are front-end-nominal; convert via the base
			// period.
			st.OverheadPct = 100 * float64(st.OverheadCycles) * float64(1e6/int64(cfg.Sim.BaseMHz)) / float64(res.TimePs)
		}
		return res, st
	}}
}

// TrainFeedBatch trains one (program, input, window) stream under
// several context schemes in a single batched pass. It produces exactly
// the profiles TrainFeed would produce scheme by scheme, but shares the
// two stream-shaped costs across the batch:
//
//   - Phase 2 (the full-speed simulated run with DAG collection) runs
//     the machine once, fanning its trace to one collector per scheme.
//     The collector is a pure observer, so N collectors on one machine
//     pass see exactly what N machine passes would each show them.
//   - Shaking is memoized across schemes: different schemes carve the
//     same dynamic stream at different context granularity, so most
//     traced segments reappear shifted in time but otherwise identical.
//     The shaker's histograms are shift-invariant (binning depends only
//     on durations, weights, and domains), so a segment whose
//     time-rebased content hash was already shaken reuses the shaken
//     histograms instead of re-running the O(passes x events) shaker.
//
// Phase 1 (call-tree profiling) and phases 3-4 (thresholding and plan
// construction) stay per-scheme; they are scheme-dependent and cheap.
//
// With cfg.TrainWorkers > 1 the batch also runs internally parallel:
// phase-1 profiling passes run concurrently (each replays the source
// independently — Feeders are stateless), the one phase-2 machine pass
// fans its trace to per-scheme collector goroutines through shared
// read-only record blocks, and every collector fans its segment shakes
// over one bounded shaker pool. Each collector drains its shakes in
// strict submission order (shaker.Seq), so every worker count —
// including 1, which collapses to the fully serial path — produces
// bit-identical profiles.
func TrainFeedBatch(cfg Config, src isa.Feeder, window int64, schemes []calltree.Scheme) []*Profile {
	if len(schemes) == 1 {
		return []*Profile{TrainFeed(cfg, src, window, schemes[0])}
	}
	topo := cfg.Sim.Topo()
	workers := cfg.trainWorkers()
	pool := shaker.NewPool(shaker.ConfigFor(cfg.Shaker, topo), workers)
	if obs := cfg.Observe; obs != nil {
		pool.Observe = func(d time.Duration) { obs.ObservePhase("shake", d) }
	}
	defer pool.Close()
	memo := newShakeMemo()
	profs := make([]*Profile, len(schemes))
	collectors := make([]*trace.Collector, len(schemes))
	seqs := make([]*shaker.Seq, len(schemes))

	// Phase 1 per scheme, fanned over the worker budget. The profiling
	// observation aggregates all schemes' walks into one duration.
	var t0 time.Time
	if cfg.Observe != nil {
		t0 = time.Now()
	}
	build := func(i int) {
		scheme := schemes[i]
		tree := profiler.ProfileFeed(src, window, scheme)
		hists := make(map[*calltree.Node]*shaker.DomainHists)
		seq := pool.NewSeq()
		collector := trace.NewCollector(tree, cfg.MaxInstances, cfg.MaxEvents, func(seg *trace.Segment) {
			memo.submit(seq, seg, hists)
		})
		collector.SetTopology(topo)
		// Segments handed to the pool are deep-copied before the callback
		// returns (and reduced inline when the pool is synchronous), so
		// each collector can reuse one event arena for the whole run.
		collector.RecycleSegments = true
		profs[i] = &Profile{Scheme: scheme, Tree: tree, Hists: hists}
		collectors[i] = collector
		seqs[i] = seq
	}
	if workers > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := range schemes {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				build(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range schemes {
			build(i)
		}
	}

	if cfg.Observe != nil {
		cfg.Observe.ObservePhase("treewalk", time.Since(t0))
		t0 = time.Now()
	}

	// Phase 2, once: one machine pass fanned to every collector. The
	// parallel fan-out ships the identical record sequence to per-scheme
	// lanes; each lane replays it into its collector in order, so every
	// collector sees exactly the stream the serial tee delivers.
	if workers > 1 {
		tee := newFanTee(len(schemes))
		var wg sync.WaitGroup
		for i := range schemes {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tee.replayLane(i, collectors[i])
				// Close on the lane goroutine: the collector flushes its
				// open segments into the Seq, which then drains pending
				// shakes in submission order.
				collectors[i].Close()
				seqs[i].Close()
			}(i)
		}
		m := sim.New(cfg.Sim)
		m.SetTracer(tee)
		m.SetMarkerSink(tee)
		src.Feed(&isa.CountingConsumer{Inner: m, Budget: window})
		tee.finish()
		wg.Wait()
	} else {
		tee := &teeObserver{sinks: collectors}
		m := sim.New(cfg.Sim)
		m.SetTracer(tee)
		m.SetMarkerSink(tee)
		src.Feed(&isa.CountingConsumer{Inner: m, Budget: window})
		for i, c := range collectors {
			c.Close()
			seqs[i].Close()
		}
	}
	if cfg.Observe != nil {
		cfg.Observe.ObservePhase("collect", time.Since(t0))
	}

	for _, prof := range profs {
		prof.Plan = Replan(prof, cfg.DeltaPct)
	}
	return profs
}

// addHists accumulates shaken histograms into the per-node table with
// the same aliasing rule TrainFeed uses: the first entry for a node
// takes ownership of h, later segments add into it.
func addHists(hists map[*calltree.Node]*shaker.DomainHists, node *calltree.Node, h *shaker.DomainHists) {
	if prev, ok := hists[node]; ok {
		prev.Add(h)
	} else {
		hists[node] = h
	}
}

// shakeMemo dedupes shaking across the schemes of one batch. Each entry
// is published by the worker that shakes the segment first — before any
// ordered delivery — so a consumer that hits the memo waits only on the
// shake itself, never on another consumer's drain (consumer→worker
// edges only: deadlock-free by construction).
type shakeMemo struct {
	mu sync.Mutex
	m  map[segKey]*memoEntry
}

type memoEntry struct {
	done chan struct{}
	// h is the memo's own clone, immutable once done closes.
	h *shaker.DomainHists
}

func newShakeMemo() *shakeMemo {
	return &shakeMemo{m: make(map[segKey]*memoEntry)}
}

// submit routes one collected segment: memo hits splice an ordered
// wait-and-clone into the consumer's reduction; misses shake on the
// pool, publishing the memo entry from the computing worker.
func (mm *shakeMemo) submit(seq *shaker.Seq, seg *trace.Segment, hists map[*calltree.Node]*shaker.DomainHists) {
	node := seg.Node
	k, hashable := segmentKey(seg)
	if !hashable {
		seq.Shake(seg, nil, func(h *shaker.DomainHists) {
			addHists(hists, node, h)
		})
		return
	}
	mm.mu.Lock()
	e, hit := mm.m[k]
	if !hit {
		e = &memoEntry{done: make(chan struct{})}
		mm.m[k] = e
	}
	mm.mu.Unlock()
	if hit {
		seq.Ordered(func() {
			<-e.done
			addHists(hists, node, e.h.Clone())
		})
		return
	}
	seq.Shake(seg, func(h *shaker.DomainHists) {
		// The memo owns its copy: the per-node entry delivered below is
		// accumulated into by later segments of the same node.
		e.h = h.Clone()
		close(e.done)
	}, func(h *shaker.DomainHists) {
		addHists(hists, node, h)
	})
}

// segKey is a 128-bit content hash of a segment's events rebased to
// the segment's start time. Two segments with equal keys hold
// shift-identical event sets, which the shaker reduces to identical
// histograms; 128 bits makes a silent collision astronomically
// unlikely (~2^-64 at millions of segments).
type segKey struct{ lo, hi uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// segmentKey hashes the shift-normalized content of a segment. The
// second lane of the hash seeds differently and taps the stream at a
// byte offset, so the two 64-bit halves decorrelate.
func segmentKey(seg *trace.Segment) (segKey, bool) {
	ev := seg.Events
	if len(ev) == 0 {
		return segKey{}, false
	}
	base := ev[0].Start
	lo := uint64(fnvOffset)
	hi := uint64(fnvOffset) ^ 0x9e3779b97f4a7c15
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			b := (v >> uint(s)) & 0xff
			lo = (lo ^ b) * fnvPrime
			hi = (hi ^ ((v >> uint((s+8)%64)) & 0xff)) * fnvPrime
		}
	}
	mix(uint64(len(ev)))
	for i := range ev {
		e := &ev[i]
		mix(uint64(e.Start - base))
		mix(uint64(e.End - base))
		mix(uint64(e.Domain))
		mix(math.Float64bits(e.Weight))
		mix(uint64(len(e.Out)))
		for _, o := range e.Out {
			mix(uint64(o))
		}
	}
	return segKey{lo, hi}, true
}

// Parallel phase-2 fan-out: the machine pass appends each trace/marker
// record to a block; full blocks ship to every lane's channel, where a
// per-scheme goroutine replays them into its collector. Blocks are
// shared read-only across lanes and recycled through a free channel
// once the last lane releases them (the channel handoff publishes the
// release to the producer), so steady-state fan-out allocates nothing
// and total buffering is bounded at fanBlocks blocks.
const (
	fanBlockLen = 1024
	fanBlocks   = 8
)

// fanRec is one machine observation, captured by value so lanes can
// replay it after the machine has moved on.
type fanRec struct {
	seq    int64
	now    int64
	ins    isa.Instr
	tm     sim.Times
	m      isa.Marker
	marker bool
}

type fanBlock struct {
	recs [fanBlockLen]fanRec
	n    int
	left atomic.Int32
}

// fanTee implements sim.Tracer and sim.MarkerSink on the machine side.
type fanTee struct {
	lanes []chan *fanBlock
	free  chan *fanBlock
	cur   *fanBlock
}

func newFanTee(nLanes int) *fanTee {
	t := &fanTee{free: make(chan *fanBlock, fanBlocks)}
	for i := 0; i < fanBlocks; i++ {
		t.free <- &fanBlock{}
	}
	for i := 0; i < nLanes; i++ {
		t.lanes = append(t.lanes, make(chan *fanBlock, fanBlocks))
	}
	t.cur = <-t.free
	return t
}

func (t *fanTee) slot() *fanRec {
	if t.cur.n == fanBlockLen {
		t.flush()
	}
	r := &t.cur.recs[t.cur.n]
	t.cur.n++
	return r
}

func (t *fanTee) flush() {
	b := t.cur
	if b.n == 0 {
		return
	}
	b.left.Store(int32(len(t.lanes)))
	for _, ch := range t.lanes {
		ch <- b
	}
	t.cur = <-t.free
	t.cur.n = 0
}

func (t *fanTee) Trace(seq int64, ins *isa.Instr, tm *sim.Times) {
	r := t.slot()
	r.marker = false
	r.seq = seq
	r.ins = *ins
	r.tm = *tm
}

func (t *fanTee) MachineMarker(m isa.Marker, now int64) {
	r := t.slot()
	r.marker = true
	r.m = m
	r.now = now
}

// finish flushes the partial block and closes the lanes.
func (t *fanTee) finish() {
	t.flush()
	for _, ch := range t.lanes {
		close(ch)
	}
}

// replayLane drains lane i's blocks into c, preserving the machine's
// exact trace/marker interleaving, and returns when the tee finishes.
func (t *fanTee) replayLane(i int, c *trace.Collector) {
	for b := range t.lanes[i] {
		for k := 0; k < b.n; k++ {
			r := &b.recs[k]
			if r.marker {
				c.MachineMarker(r.m, r.now)
			} else {
				c.Trace(r.seq, &r.ins, &r.tm)
			}
		}
		if b.left.Add(-1) == 0 {
			t.free <- b
		}
	}
}

// teeObserver fans one machine's trace and marker streams to several
// collectors. Collectors are pure observers — they never mutate the
// instruction, times, or machine — so each sink sees exactly the stream
// a dedicated machine pass would deliver.
type teeObserver struct{ sinks []*trace.Collector }

func (t *teeObserver) Trace(seq int64, ins *isa.Instr, tm *sim.Times) {
	for _, c := range t.sinks {
		c.Trace(seq, ins, tm)
	}
}

func (t *teeObserver) MachineMarker(m isa.Marker, now int64) {
	for _, c := range t.sinks {
		c.MachineMarker(m, now)
	}
}
