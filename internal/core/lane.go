package core

import (
	"math"

	"repro/internal/calltree"
	"repro/internal/control"
	"repro/internal/edit"
	"repro/internal/isa"
	"repro/internal/profiler"
	"repro/internal/shaker"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Lane is one production simulation split into its two halves — the
// consumer that eats the instruction stream and the finalization that
// produces the result — so a caller can choose how the stream arrives:
// a sequential Feed (the Run*Feed wrappers below) or one lockstep
// replay driving many lanes from a single decoded pass
// (isa.PackedStream.FeedLockstep). Both deliver item-for-item identical
// streams, so the lane computes identical results either way.
type Lane struct {
	// Consumer receives the (budget-limited) instruction stream.
	Consumer isa.Consumer
	finish   func() (sim.Result, EditStats)
	done     bool
	res      sim.Result
	stats    EditStats
}

// Finish finalizes the simulation and returns its result. It is
// idempotent: repeated calls return the first result.
func (l *Lane) Finish() (sim.Result, EditStats) {
	if !l.done {
		l.res, l.stats = l.finish()
		l.done = true
	}
	return l.res, l.stats
}

// NewBaselineLane prepares an MCD-baseline simulation (all domains at
// full speed, synchronization penalties included).
func NewBaselineLane(cfg Config) *Lane {
	m := sim.New(cfg.Sim)
	return &Lane{Consumer: m, finish: func() (sim.Result, EditStats) {
		return m.Finalize(), EditStats{}
	}}
}

// NewSingleClockLane prepares a globally synchronous simulation at mhz.
func NewSingleClockLane(cfg Config, mhz int) *Lane {
	scfg := cfg.Sim
	scfg.BaseMHz = mhz
	scfg.Sync.Disabled = true
	m := sim.New(scfg)
	return &Lane{Consumer: m, finish: func() (sim.Result, EditStats) {
		return m.Finalize(), EditStats{}
	}}
}

// NewOnlineLane prepares a simulation under the attack/decay hardware
// controller.
func NewOnlineLane(cfg Config) *Lane {
	m := sim.New(cfg.Sim)
	control.NewAttackDecay(cfg.Online).Attach(m)
	return &Lane{Consumer: m, finish: func() (sim.Result, EditStats) {
		return m.Finalize(), EditStats{}
	}}
}

// NewEditedLane prepares a simulation of the edited binary under plan;
// oracle runs suppress instrumentation overhead.
func NewEditedLane(cfg Config, plan *edit.Plan, oracle bool) *Lane {
	m := sim.New(cfg.Sim)
	var ed *edit.Editor
	if oracle {
		ed = edit.NewOracleEditor(plan, m)
	} else {
		ed = edit.NewEditor(plan, m)
	}
	return &Lane{Consumer: ed, finish: func() (sim.Result, EditStats) {
		res := m.Finalize()
		st := EditStats{
			DynReconfig:    ed.DynReconfig,
			DynInstr:       ed.DynInstr,
			OverheadCycles: ed.OverheadCycles,
		}
		if res.TimePs > 0 {
			// Overhead cycles are front-end-nominal; convert via the base
			// period.
			st.OverheadPct = 100 * float64(st.OverheadCycles) * float64(1e6/int64(cfg.Sim.BaseMHz)) / float64(res.TimePs)
		}
		return res, st
	}}
}

// TrainFeedBatch trains one (program, input, window) stream under
// several context schemes in a single batched pass. It produces exactly
// the profiles TrainFeed would produce scheme by scheme, but shares the
// two stream-shaped costs across the batch:
//
//   - Phase 2 (the full-speed simulated run with DAG collection) runs
//     the machine once, fanning its trace to one collector per scheme.
//     The collector is a pure observer, so N collectors on one machine
//     pass see exactly what N machine passes would each show them.
//   - Shaking is memoized across schemes: different schemes carve the
//     same dynamic stream at different context granularity, so most
//     traced segments reappear shifted in time but otherwise identical.
//     The shaker's histograms are shift-invariant (binning depends only
//     on durations, weights, and domains), so a segment whose
//     time-rebased content hash was already shaken reuses the shaken
//     histograms instead of re-running the O(passes x events) shaker.
//
// Phase 1 (call-tree profiling) and phases 3-4 (thresholding and plan
// construction) stay per-scheme; they are scheme-dependent and cheap.
func TrainFeedBatch(cfg Config, src isa.Feeder, window int64, schemes []calltree.Scheme) []*Profile {
	if len(schemes) == 1 {
		return []*Profile{TrainFeed(cfg, src, window, schemes[0])}
	}
	topo := cfg.Sim.Topo()
	shk := shaker.NewRunner(shaker.ConfigFor(cfg.Shaker, topo))
	memo := make(map[segKey]*shaker.DomainHists)
	profs := make([]*Profile, len(schemes))
	collectors := make([]*trace.Collector, len(schemes))
	for i, scheme := range schemes {
		// Phase 1 per scheme.
		tree := profiler.ProfileFeed(src, window, scheme)
		hists := make(map[*calltree.Node]*shaker.DomainHists)
		collector := trace.NewCollector(tree, cfg.MaxInstances, cfg.MaxEvents, func(seg *trace.Segment) {
			k, hashable := segmentKey(seg)
			if hashable {
				if h, ok := memo[k]; ok {
					addHists(hists, seg, h.Clone())
					return
				}
			}
			h := shk.Run(seg)
			if hashable {
				// The memo owns its copy: the per-node entry below is
				// accumulated into by later segments of the same node.
				memo[k] = h.Clone()
			}
			addHists(hists, seg, &h)
		})
		collector.SetTopology(topo)
		// Segments are reduced synchronously in the callback, so each
		// collector can reuse one event arena for the whole run.
		collector.RecycleSegments = true
		profs[i] = &Profile{Scheme: scheme, Tree: tree, Hists: hists}
		collectors[i] = collector
	}

	// Phase 2, once: one machine pass fanned to every collector.
	tee := &teeObserver{sinks: collectors}
	m := sim.New(cfg.Sim)
	m.SetTracer(tee)
	m.SetMarkerSink(tee)
	src.Feed(&isa.CountingConsumer{Inner: m, Budget: window})
	for _, c := range collectors {
		c.Close()
	}

	for _, prof := range profs {
		prof.Plan = Replan(prof, cfg.DeltaPct)
	}
	return profs
}

// addHists accumulates shaken histograms into the per-node table with
// the same aliasing rule TrainFeed uses: the first entry for a node
// takes ownership of h, later segments add into it.
func addHists(hists map[*calltree.Node]*shaker.DomainHists, seg *trace.Segment, h *shaker.DomainHists) {
	if prev, ok := hists[seg.Node]; ok {
		prev.Add(h)
	} else {
		hists[seg.Node] = h
	}
}

// segKey is a 128-bit content hash of a segment's events rebased to
// the segment's start time. Two segments with equal keys hold
// shift-identical event sets, which the shaker reduces to identical
// histograms; 128 bits makes a silent collision astronomically
// unlikely (~2^-64 at millions of segments).
type segKey struct{ lo, hi uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// segmentKey hashes the shift-normalized content of a segment. The
// second lane of the hash seeds differently and taps the stream at a
// byte offset, so the two 64-bit halves decorrelate.
func segmentKey(seg *trace.Segment) (segKey, bool) {
	ev := seg.Events
	if len(ev) == 0 {
		return segKey{}, false
	}
	base := ev[0].Start
	lo := uint64(fnvOffset)
	hi := uint64(fnvOffset) ^ 0x9e3779b97f4a7c15
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			b := (v >> uint(s)) & 0xff
			lo = (lo ^ b) * fnvPrime
			hi = (hi ^ ((v >> uint((s+8)%64)) & 0xff)) * fnvPrime
		}
	}
	mix(uint64(len(ev)))
	for i := range ev {
		e := &ev[i]
		mix(uint64(e.Start - base))
		mix(uint64(e.End - base))
		mix(uint64(e.Domain))
		mix(math.Float64bits(e.Weight))
		mix(uint64(len(e.Out)))
		for _, o := range e.Out {
			mix(uint64(o))
		}
	}
	return segKey{lo, hi}, true
}

// teeObserver fans one machine's trace and marker streams to several
// collectors. Collectors are pure observers — they never mutate the
// instruction, times, or machine — so each sink sees exactly the stream
// a dedicated machine pass would deliver.
type teeObserver struct{ sinks []*trace.Collector }

func (t *teeObserver) Trace(seq int64, ins *isa.Instr, tm *sim.Times) {
	for _, c := range t.sinks {
		c.Trace(seq, ins, tm)
	}
}

func (t *teeObserver) MachineMarker(m isa.Marker, now int64) {
	for _, c := range t.sinks {
		c.MachineMarker(m, now)
	}
}
