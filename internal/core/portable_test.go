package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/calltree"
	"repro/internal/workload"
)

// trainSmall trains a profile on the smallest suite benchmark.
func trainSmall(t *testing.T, scheme calltree.Scheme) (*workload.Benchmark, *Profile) {
	t.Helper()
	b := workload.ByName("g721_decode")
	if b == nil {
		t.Fatal("g721_decode not in suite")
	}
	cfg := DefaultConfig()
	return b, Train(cfg, b.Prog, b.Train, b.TrainWindow, scheme)
}

func TestProfileEncodeDeterministic(t *testing.T) {
	_, prof := trainSmall(t, calltree.LF)
	enc1, err := EncodeProfile(prof)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := EncodeProfile(prof)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("EncodeProfile not deterministic")
	}

	// Decoding and re-encoding must also be byte-stable: a profile that
	// round-trips through the artifact store re-persists identically.
	dec, err := DecodeProfile(enc1)
	if err != nil {
		t.Fatal(err)
	}
	enc3, err := EncodeProfile(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc3) {
		t.Fatal("decode/encode round trip changed the encoding")
	}
}

func TestProfileRoundTripEquivalence(t *testing.T) {
	for _, scheme := range []calltree.Scheme{calltree.LF, calltree.LFCP} {
		b, prof := trainSmall(t, scheme)
		enc, err := EncodeProfile(prof)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeProfile(enc)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Tree.NumNodes() != prof.Tree.NumNodes() ||
			dec.Tree.NumLongRunning() != prof.Tree.NumLongRunning() {
			t.Fatalf("%s: tree shape changed: %d/%d nodes, %d/%d long-running", scheme.Name,
				dec.Tree.NumNodes(), prof.Tree.NumNodes(),
				dec.Tree.NumLongRunning(), prof.Tree.NumLongRunning())
		}
		cfg := DefaultConfig()
		// A decoded profile must replan and simulate bit-identically to
		// the freshly trained one, at the calibrated delta and at a swept
		// one — the property that makes stored artifacts substitutable
		// for training.
		for _, delta := range []float64{cfg.DeltaPct, 4} {
			planA := Replan(prof, delta)
			planB := Replan(dec, delta)
			rcA, instrA := planA.StaticPoints()
			rcB, instrB := planB.StaticPoints()
			if rcA != rcB || instrA != instrB {
				t.Fatalf("%s delta=%g: static points differ: (%d,%d) vs (%d,%d)",
					scheme.Name, delta, rcA, instrA, rcB, instrB)
			}
			resA, stA := RunEdited(cfg, b.Prog, b.Ref, b.RefWindow, planA, false)
			resB, stB := RunEdited(cfg, b.Prog, b.Ref, b.RefWindow, planB, false)
			jA, _ := json.Marshal(struct {
				R interface{}
				S EditStats
			}{resA, stA})
			jB, _ := json.Marshal(struct {
				R interface{}
				S EditStats
			}{resB, stB})
			if !bytes.Equal(jA, jB) {
				t.Fatalf("%s delta=%g: outcome differs across round trip:\n%s\nvs\n%s",
					scheme.Name, delta, jA, jB)
			}
		}
	}
}

func TestDecodeProfileRejectsDamage(t *testing.T) {
	_, prof := trainSmall(t, calltree.LF)
	enc, err := EncodeProfile(prof)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"garbage":        []byte("{nope"),
		"unknown scheme": []byte(`{"scheme":"X+Y","nodes":[],"hists":[]}`),
		"bad parent":     []byte(`{"scheme":"L+F","nodes":[{"kind":0,"id":1,"site":-1,"parent":5}],"hists":[]}`),
		"bad kind":       []byte(`{"scheme":"L+F","nodes":[{"kind":9,"id":1,"site":-1,"parent":0}],"hists":[]}`),
		"bad hist node":  []byte(`{"scheme":"L+F","nodes":[],"hists":[{"node":3}]}`),
	}
	for name, b := range cases {
		if _, err := DecodeProfile(b); err == nil {
			t.Errorf("%s: decode did not fail", name)
		}
	}
	// Sanity: the valid encoding still decodes.
	if _, err := DecodeProfile(enc); err != nil {
		t.Errorf("valid encoding rejected: %v", err)
	}
}
