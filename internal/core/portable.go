package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/calltree"
	"repro/internal/dvfs"
	"repro/internal/shaker"
)

// This file implements the portable encoding of a trained Profile: the
// delta-independent training state (call tree plus per-node shaken
// frequency histograms) as deterministic canonical JSON, so profiles can
// be stored content-addressed in an artifact store and shared across
// processes and machines. The edit plan is deliberately not serialized:
// it is a cheap, deterministic function of the tree, the histograms and
// the threshold delta (Replan), and rebuilding it on load is what lets
// one stored profile serve every delta of a threshold sweep.
//
// Determinism: nodes are emitted in tree creation order (the same order
// calltree.Tree.Nodes holds, which is also label order), histograms are
// sorted by node label, and every value is a struct, array or scalar —
// no maps — so json.Marshal yields identical bytes for identical
// training state. Go's float64 JSON encoding round-trips exactly, so a
// decoded profile replans to bit-identical frequencies.

// portableNode is one call-tree node. Parent is the label of the parent
// node (0 = the synthetic root); children appear after their parent, in
// creation order, so decoding rebuilds the exact tree shape.
type portableNode struct {
	Kind       uint8 `json:"kind"`
	ID         int32 `json:"id"`
	Site       int32 `json:"site"`
	Parent     int32 `json:"parent"`
	Instances  int64 `json:"instances"`
	SelfInstrs int64 `json:"self_instrs"`
}

// portableHist carries the shaken per-domain histograms of one
// long-running node, addressed by node label. The outer dimension is
// the profile's scalable-domain count (4 under the default topology);
// its JSON encoding is identical to the fixed-size array an earlier
// schema used, so stored artifacts are unchanged for the default.
type portableHist struct {
	Node int32                    `json:"node"`
	Bins [][dvfs.NumSteps]float64 `json:"bins"`
}

// portableProfile is the serialized form of a Profile minus its plan.
type portableProfile struct {
	Scheme         string         `json:"scheme"`
	RootInstances  int64          `json:"root_instances,omitempty"`
	RootSelfInstrs int64          `json:"root_self_instrs,omitempty"`
	Nodes          []portableNode `json:"nodes"`
	Hists          []portableHist `json:"hists"`
}

// EncodeProfile serializes a profile's delta-independent training state
// (tree and shaken histograms, not the plan) as deterministic JSON.
func EncodeProfile(p *Profile) ([]byte, error) {
	t := p.Tree
	labels := make(map[*calltree.Node]int32, len(t.Nodes)+1)
	labels[t.Root] = 0
	for i, n := range t.Nodes {
		labels[n] = int32(i + 1)
	}
	pp := portableProfile{
		Scheme:         p.Scheme.Name,
		RootInstances:  t.Root.Instances,
		RootSelfInstrs: t.Root.SelfInstrs,
		Nodes:          make([]portableNode, len(t.Nodes)),
	}
	for i, n := range t.Nodes {
		parent, ok := labels[n.Parent]
		if !ok {
			return nil, fmt.Errorf("core: encode profile: node %s has a parent outside the tree", n.Path())
		}
		pp.Nodes[i] = portableNode{
			Kind:       uint8(n.Kind),
			ID:         n.ID,
			Site:       n.Site,
			Parent:     parent,
			Instances:  n.Instances,
			SelfInstrs: n.SelfInstrs,
		}
	}
	for n, h := range p.Hists {
		label, ok := labels[n]
		if !ok {
			return nil, fmt.Errorf("core: encode profile: histogram node not in tree")
		}
		ph := portableHist{Node: label, Bins: make([][dvfs.NumSteps]float64, len(*h))}
		for d := range *h {
			ph.Bins[d] = (*h)[d].Bins
		}
		pp.Hists = append(pp.Hists, ph)
	}
	sort.Slice(pp.Hists, func(i, j int) bool { return pp.Hists[i].Node < pp.Hists[j].Node })
	return json.Marshal(pp)
}

// DecodeProfile reconstructs a profile from EncodeProfile's output. The
// returned profile has no Plan; callers rebuild it with Replan at their
// threshold delta (the stored training state is delta-independent).
func DecodeProfile(b []byte) (*Profile, error) {
	var pp portableProfile
	if err := json.Unmarshal(b, &pp); err != nil {
		return nil, fmt.Errorf("core: decode profile: %w", err)
	}
	scheme, ok := calltree.SchemeByName(pp.Scheme)
	if !ok {
		return nil, fmt.Errorf("core: decode profile: unknown scheme %q", pp.Scheme)
	}
	t := calltree.NewTree(scheme)
	t.Root.Instances = pp.RootInstances
	t.Root.SelfInstrs = pp.RootSelfInstrs
	byLabel := make([]*calltree.Node, 1, len(pp.Nodes)+1)
	byLabel[0] = t.Root
	for i, pn := range pp.Nodes {
		if pn.Parent < 0 || int(pn.Parent) >= len(byLabel) {
			return nil, fmt.Errorf("core: decode profile: node %d references parent %d out of order", i+1, pn.Parent)
		}
		if k := calltree.NodeKind(pn.Kind); k != calltree.SubNode && k != calltree.LoopNode {
			return nil, fmt.Errorf("core: decode profile: node %d has unknown kind %d", i+1, pn.Kind)
		}
		parent := byLabel[pn.Parent]
		n := &calltree.Node{
			Kind:       calltree.NodeKind(pn.Kind),
			ID:         pn.ID,
			Site:       pn.Site,
			Parent:     parent,
			Instances:  pn.Instances,
			SelfInstrs: pn.SelfInstrs,
		}
		parent.Children = append(parent.Children, n)
		t.Nodes = append(t.Nodes, n)
		byLabel = append(byLabel, n)
	}
	t.Finalize()
	hists := make(map[*calltree.Node]*shaker.DomainHists, len(pp.Hists))
	for _, ph := range pp.Hists {
		if ph.Node < 1 || int(ph.Node) >= len(byLabel) {
			return nil, fmt.Errorf("core: decode profile: histogram references node %d out of range", ph.Node)
		}
		dh := make(shaker.DomainHists, len(ph.Bins))
		for d := range dh {
			dh[d].Bins = ph.Bins[d]
		}
		hists[byLabel[ph.Node]] = &dh
	}
	return &Profile{Scheme: scheme, Tree: t, Hists: hists}, nil
}
