// Package calltree implements the paper's call trees (Section 3.1): an
// extension of the calling context tree of Ammons et al. with loop nodes
// and optional call-site differentiation. Trees are built from the marker
// stream of a program walk, annotated with dynamic instance and
// instruction counts, and analyzed to find the long-running nodes that
// become reconfiguration candidates.
package calltree

import "fmt"

// Scheme is one of the paper's six context definitions. Loops and Sites
// control tree construction (which nodes exist); Path controls whether
// production runs track calling history at run time. The L+F and F
// schemes use the L+F+P and F+P trees for phase-one identification but
// set Path=false, which eliminates all path-tracking instrumentation.
type Scheme struct {
	Name  string
	Loops bool // L: loops are tree nodes
	Sites bool // C: children distinguished by call site
	Path  bool // P: production runs track the calling context
}

// The six schemes evaluated in the paper, most to least elaborate.
var (
	LFCP = Scheme{Name: "L+F+C+P", Loops: true, Sites: true, Path: true}
	LFP  = Scheme{Name: "L+F+P", Loops: true, Path: true}
	FCP  = Scheme{Name: "F+C+P", Sites: true, Path: true}
	FP   = Scheme{Name: "F+P", Path: true}
	LF   = Scheme{Name: "L+F", Loops: true}
	F    = Scheme{Name: "F"}
)

// Schemes returns all six schemes in the paper's order.
func Schemes() []Scheme { return []Scheme{LFCP, LFP, FCP, FP, LF, F} }

// SchemeByName resolves one of the six schemes by name.
func SchemeByName(name string) (Scheme, bool) {
	for _, s := range Schemes() {
		if s.Name == name {
			return s, true
		}
	}
	return Scheme{}, false
}

// NodeKind distinguishes subroutine from loop nodes.
type NodeKind uint8

const (
	// SubNode is a subroutine in context.
	SubNode NodeKind = iota
	// LoopNode is a loop (control-flow SCC) in context.
	LoopNode
)

func (k NodeKind) String() string {
	if k == SubNode {
		return "sub"
	}
	return "loop"
}

// LongRunningCutoff is the paper's threshold: a node is a reconfiguration
// candidate when its average dynamic instance, excluding instructions
// executed in long-running children, exceeds 10,000 instructions.
const LongRunningCutoff = 10_000

// Node is one call-tree node: a subroutine or loop reached over a
// specific calling path.
type Node struct {
	Kind NodeKind
	// ID is the static subroutine or loop ID.
	ID int32
	// Site is the static call site through which the node was entered,
	// or -1 when sites are not tracked (or for loops and the root).
	Site int32

	Parent   *Node
	Children []*Node

	// Instances is the number of dynamic instances folded into the node.
	Instances int64
	// SelfInstrs counts instructions executed directly in the node.
	SelfInstrs int64
	// TotalInstrs counts instructions in the node and all descendants
	// (filled by Finalize).
	TotalInstrs int64
	// ExclusiveInstrs is TotalInstrs minus instructions executed in
	// long-running descendants (filled by Finalize).
	ExclusiveInstrs int64
	// LongRunning marks reconfiguration candidates (filled by Finalize).
	LongRunning bool

	// Label is the static node label used by run-time path tracking;
	// label 0 is reserved for "unknown path". Assigned by Finalize.
	Label int32
}

// key compares tree-child identity.
func (n *Node) key() [3]int32 { return [3]int32{int32(n.Kind), n.ID, n.Site} }

// AvgExclusive is the node's average exclusive instructions per instance.
func (n *Node) AvgExclusive() float64 {
	if n.Instances == 0 {
		return 0
	}
	return float64(n.ExclusiveInstrs) / float64(n.Instances)
}

// Path returns a human-readable path from the root.
func (n *Node) Path() string {
	if n.Parent == nil {
		return "root"
	}
	s := fmt.Sprintf("%s%d", n.Kind, n.ID)
	if n.Site >= 0 {
		s += fmt.Sprintf("@%d", n.Site)
	}
	return n.Parent.Path() + "/" + s
}

// Tree is a complete call tree for one (program, input, scheme) triple.
type Tree struct {
	Scheme Scheme
	Root   *Node
	// Nodes lists every node except the synthetic root, in creation
	// order (which is also label order: Nodes[i].Label == i+1).
	Nodes []*Node
}

// NewTree returns an empty tree for a scheme.
func NewTree(s Scheme) *Tree {
	return &Tree{Scheme: s, Root: &Node{Site: -1, ID: -1}}
}

// Child finds or creates the child of parent with the given identity.
func (t *Tree) Child(parent *Node, kind NodeKind, id, site int32) *Node {
	k := [3]int32{int32(kind), id, site}
	for _, c := range parent.Children {
		if c.key() == k {
			return c
		}
	}
	c := &Node{Kind: kind, ID: id, Site: site, Parent: parent}
	parent.Children = append(parent.Children, c)
	t.Nodes = append(t.Nodes, c)
	return c
}

// Finalize computes inclusive/exclusive instruction counts, marks
// long-running nodes leaf-up, and assigns static labels.
func (t *Tree) Finalize() {
	var walk func(n *Node)
	walk = func(n *Node) {
		n.TotalInstrs = n.SelfInstrs
		n.ExclusiveInstrs = n.SelfInstrs
		for _, c := range n.Children {
			walk(c)
			n.TotalInstrs += c.TotalInstrs
			if !c.LongRunning {
				n.ExclusiveInstrs += c.ExclusiveInstrs
			}
		}
		if n.Parent != nil && n.Instances > 0 &&
			float64(n.ExclusiveInstrs)/float64(n.Instances) > LongRunningCutoff {
			n.LongRunning = true
		}
	}
	walk(t.Root)
	for i, n := range t.Nodes {
		n.Label = int32(i + 1)
	}
}

// LongRunning returns the reconfiguration candidates.
func (t *Tree) LongRunning() []*Node {
	var out []*Node
	for _, n := range t.Nodes {
		if n.LongRunning {
			out = append(out, n)
		}
	}
	return out
}

// NumNodes returns the number of nodes excluding the synthetic root.
func (t *Tree) NumNodes() int { return len(t.Nodes) }

// NumLongRunning returns the number of reconfiguration candidates.
func (t *Tree) NumLongRunning() int { return len(t.LongRunning()) }

// TrackedNodes returns the nodes that must carry instrumentation in the
// edited binary: every node that is long-running or has a long-running
// descendant (Figure 3's nodes A through G).
func (t *Tree) TrackedNodes() []*Node {
	needed := make(map[*Node]bool)
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		any := n.LongRunning
		for _, c := range n.Children {
			if walk(c) {
				any = true
			}
		}
		if any && n.Parent != nil {
			needed[n] = true
		}
		return any
	}
	walk(t.Root)
	out := make([]*Node, 0, len(needed))
	for _, n := range t.Nodes {
		if needed[n] {
			out = append(out, n)
		}
	}
	return out
}

// Compare counts the nodes of t that also appear, with identical
// ancestry, in other, following Table 3's methodology. It returns the
// number of common nodes overall and the number of common nodes that are
// long-running in both trees.
func (t *Tree) Compare(other *Tree) (commonTotal, commonLong int) {
	var walk func(a, b *Node)
	walk = func(a, b *Node) {
		for _, ca := range a.Children {
			for _, cb := range b.Children {
				if ca.key() == cb.key() {
					commonTotal++
					if ca.LongRunning && cb.LongRunning {
						commonLong++
					}
					walk(ca, cb)
					break
				}
			}
		}
	}
	walk(t.Root, other.Root)
	return
}

// Subroutines returns the distinct subroutine IDs that correspond to at
// least one tree node (the paper's N_S, used to size the label lookup
// table).
func (t *Tree) Subroutines() []int32 {
	seen := make(map[int32]bool)
	var out []int32
	for _, n := range t.Nodes {
		if n.Kind == SubNode && !seen[n.ID] {
			seen[n.ID] = true
			out = append(out, n.ID)
		}
	}
	return out
}

// LookupTableBytes estimates the size of the run-time tables for
// path-tracking schemes: an N_S x N_N node-label table plus an N_N-entry
// frequency table, with 2-byte label entries and 8-byte frequency rows
// (four 2-byte domain frequencies).
func (t *Tree) LookupTableBytes() int {
	ns := len(t.Subroutines())
	nn := len(t.Nodes) + 1 // label 0
	return ns*nn*2 + nn*8
}
