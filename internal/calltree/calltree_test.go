package calltree

import "testing"

// build constructs a small tree by hand:
//
//	root -> main -> initm@site0 -> L1 -> L2
//	             -> initm@site1 -> L1 -> L2
//
// mirroring Figure 2 of the paper.
func figure2Tree(s Scheme) *Tree {
	t := NewTree(s)
	main := t.Child(t.Root, SubNode, 0, -1)
	main.Instances = 1
	site0, site1 := int32(0), int32(1)
	if !s.Sites {
		site0, site1 = -1, -1
	}
	for _, site := range []int32{site0, site1} {
		initm := t.Child(main, SubNode, 1, site)
		initm.Instances++
		if s.Loops {
			l1 := t.Child(initm, LoopNode, 0, -1)
			l1.Instances += 10
			l2 := t.Child(l1, LoopNode, 1, -1)
			l2.Instances += 100
			l2.SelfInstrs += 20000
		} else {
			initm.SelfInstrs += 20000
		}
	}
	t.Finalize()
	return t
}

func TestFigure2TreeShapes(t *testing.T) {
	// L+F+C+P: main + 2 initm contexts + 2 L1 + 2 L2 = 7 nodes.
	if n := figure2Tree(LFCP).NumNodes(); n != 7 {
		t.Errorf("L+F+C+P nodes = %d, want 7", n)
	}
	// L+F+P (no sites): the two initm calls merge: main + initm + L1 + L2 = 4.
	if n := figure2Tree(LFP).NumNodes(); n != 4 {
		t.Errorf("L+F+P nodes = %d, want 4", n)
	}
	// F+C+P (no loops): main + 2 initm = 3.
	if n := figure2Tree(FCP).NumNodes(); n != 3 {
		t.Errorf("F+C+P nodes = %d, want 3", n)
	}
	// F+P (the CCT): main + initm = 2.
	if n := figure2Tree(FP).NumNodes(); n != 2 {
		t.Errorf("F+P nodes = %d, want 2", n)
	}
}

func TestLongRunningCutoff(t *testing.T) {
	tr := NewTree(LFCP)
	n := tr.Child(tr.Root, SubNode, 0, -1)
	n.Instances = 2
	n.SelfInstrs = 20_001 // avg 10000.5 > cutoff
	tr.Finalize()
	if !n.LongRunning {
		t.Error("node just above cutoff not long-running")
	}

	tr2 := NewTree(LFCP)
	m := tr2.Child(tr2.Root, SubNode, 0, -1)
	m.Instances = 2
	m.SelfInstrs = 20_000 // avg exactly 10000: not > cutoff
	tr2.Finalize()
	if m.LongRunning {
		t.Error("node at cutoff must not be long-running (strict >)")
	}
}

func TestExclusiveExcludesLongRunningChildren(t *testing.T) {
	// Parent with 5k own instructions and a long-running child: parent's
	// exclusive average is 5k, so the parent is not long-running.
	tr := NewTree(LFCP)
	parent := tr.Child(tr.Root, SubNode, 0, -1)
	parent.Instances = 1
	parent.SelfInstrs = 5000
	child := tr.Child(parent, SubNode, 1, -1)
	child.Instances = 1
	child.SelfInstrs = 50_000
	tr.Finalize()
	if !child.LongRunning {
		t.Error("child should be long-running")
	}
	if parent.LongRunning {
		t.Error("parent counts its long-running child's instructions")
	}
	if parent.ExclusiveInstrs != 5000 {
		t.Errorf("parent exclusive = %d, want 5000", parent.ExclusiveInstrs)
	}
	if parent.TotalInstrs != 55_000 {
		t.Errorf("parent total = %d, want 55000", parent.TotalInstrs)
	}
}

func TestShortChildrenRollUp(t *testing.T) {
	// Plain children contribute to the parent's exclusive count.
	tr := NewTree(LFCP)
	parent := tr.Child(tr.Root, SubNode, 0, -1)
	parent.Instances = 1
	parent.SelfInstrs = 6000
	for i := int32(1); i <= 3; i++ {
		c := tr.Child(parent, SubNode, i, -1)
		c.Instances = 1
		c.SelfInstrs = 2000
	}
	tr.Finalize()
	if parent.ExclusiveInstrs != 12_000 {
		t.Errorf("parent exclusive = %d, want 12000", parent.ExclusiveInstrs)
	}
	if !parent.LongRunning {
		t.Error("parent with rolled-up short children should be long-running")
	}
}

func TestTrackedNodesFigure3(t *testing.T) {
	// Figure 3: ancestors of long-running nodes are tracked even when
	// not long-running themselves; nodes that cannot reach a
	// long-running node are not instrumented.
	tr := NewTree(LFCP)
	a := tr.Child(tr.Root, SubNode, 0, -1) // ancestor, short
	a.Instances, a.SelfInstrs = 1, 100
	b := tr.Child(a, SubNode, 1, -1) // long-running leaf
	b.Instances, b.SelfInstrs = 1, 50_000
	c := tr.Child(tr.Root, SubNode, 2, -1) // unrelated short leaf
	c.Instances, c.SelfInstrs = 1, 100
	tr.Finalize()
	tracked := tr.TrackedNodes()
	has := func(n *Node) bool {
		for _, x := range tracked {
			if x == n {
				return true
			}
		}
		return false
	}
	if !has(a) || !has(b) {
		t.Error("long-running node or its ancestor missing from tracked set")
	}
	if has(c) {
		t.Error("node with no long-running descendants is tracked")
	}
}

func TestCompareIdenticalTrees(t *testing.T) {
	a, b := figure2Tree(LFCP), figure2Tree(LFCP)
	total, long := a.Compare(b)
	if total != a.NumNodes() {
		t.Errorf("common total = %d, want %d", total, a.NumNodes())
	}
	if long != a.NumLongRunning() {
		t.Errorf("common long = %d, want %d", long, a.NumLongRunning())
	}
}

func TestCompareRequiresSameAncestry(t *testing.T) {
	a := NewTree(LFCP)
	x := a.Child(a.Root, SubNode, 0, -1)
	a.Child(x, SubNode, 5, -1)
	a.Finalize()

	b := NewTree(LFCP)
	y := b.Child(b.Root, SubNode, 1, -1) // different parent path
	b.Child(y, SubNode, 5, -1)
	b.Finalize()

	total, _ := a.Compare(b)
	if total != 0 {
		t.Errorf("nodes with different ancestry matched: %d", total)
	}
}

func TestLabelsAssigned(t *testing.T) {
	tr := figure2Tree(LFCP)
	seen := map[int32]bool{}
	for _, n := range tr.Nodes {
		if n.Label == 0 {
			t.Error("label 0 assigned to a real node (reserved for unknown path)")
		}
		if seen[n.Label] {
			t.Errorf("duplicate label %d", n.Label)
		}
		seen[n.Label] = true
	}
}

func TestSubroutinesAndTableSize(t *testing.T) {
	tr := figure2Tree(LFCP)
	subs := tr.Subroutines()
	if len(subs) != 2 { // main, initm
		t.Errorf("distinct subroutines = %d, want 2", len(subs))
	}
	want := 2*(7+1)*2 + (7+1)*8
	if got := tr.LookupTableBytes(); got != want {
		t.Errorf("table bytes = %d, want %d", got, want)
	}
}

func TestSchemesList(t *testing.T) {
	ss := Schemes()
	if len(ss) != 6 {
		t.Fatalf("want 6 schemes, got %d", len(ss))
	}
	if !ss[0].Path || ss[4].Path || ss[5].Path {
		t.Error("path flags wrong: L+F and F must not track paths")
	}
	names := map[string]bool{}
	for _, s := range ss {
		names[s.Name] = true
	}
	for _, want := range []string{"L+F+C+P", "L+F+P", "F+C+P", "F+P", "L+F", "F"} {
		if !names[want] {
			t.Errorf("missing scheme %s", want)
		}
	}
}

func TestNodePath(t *testing.T) {
	tr := figure2Tree(LFCP)
	var l2 *Node
	for _, n := range tr.Nodes {
		if n.Kind == LoopNode && n.ID == 1 {
			l2 = n
			break
		}
	}
	if l2 == nil {
		t.Fatal("L2 node not found")
	}
	want := "root/sub0/sub1@0/loop0/loop1"
	if got := l2.Path(); got != want {
		t.Errorf("path = %q, want %q", got, want)
	}
}
