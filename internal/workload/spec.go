// Package workload defines the 19 benchmark stand-ins (12 MediaBench
// codecs + 7 SPEC CPU2000 programs, paper Table 2) as synthetic programs
// over the internal/isa IR. Each stand-in is calibrated so its
// L+F+C+P call trees reproduce the paper's Table 3 exactly: total and
// long-running node counts under the training and reference inputs, and
// the common-node/coverage structure (including mpeg2 decode's
// training-unseen paths, swim's reference-only long-running loops, and
// vpr's near-disjoint trees). Static instrumentation footprints track
// Table 4; dynamic execution counts scale with the (downscaled)
// simulation windows. Instruction mixes follow each benchmark's
// character so the four MCD domains are loaded the way the paper's
// discussion describes.
package workload

import "repro/internal/isa"

// TreeSpec is the Table 3 calibration target, decomposed into node
// categories. "Common" nodes appear (with identical ancestry) in both
// the training and reference trees; the others appear in only one.
// main is always a common, long-running-in-both node and is included in
// CommonBothLR.
type TreeSpec struct {
	// CommonBothLR nodes are long-running under both inputs.
	CommonBothLR int
	// CommonTrainLR nodes are common but long-running only when run on
	// the training input (they shrink below the cutoff on reference).
	CommonTrainLR int
	// CommonRefLR nodes are common but long-running only on reference
	// (swim's loops that "run for more iterations", Section 4.4).
	CommonRefLR int
	// CommonPlain nodes never qualify as long-running.
	CommonPlain int
	// TrainOnly nodes execute only under the training input;
	// TrainOnlyLR of them are long-running there.
	TrainOnly, TrainOnlyLR int
	// RefOnly nodes execute only under the reference input (mpeg2
	// decode's paths that "do not arise during training").
	RefOnly, RefOnlyLR int
}

// CommonTotal returns the number of common nodes.
func (t TreeSpec) CommonTotal() int {
	return t.CommonBothLR + t.CommonTrainLR + t.CommonRefLR + t.CommonPlain
}

// TrainTotal and TrainLong return the expected training-tree counts.
func (t TreeSpec) TrainTotal() int { return t.CommonTotal() + t.TrainOnly }
func (t TreeSpec) TrainLong() int  { return t.CommonBothLR + t.CommonTrainLR + t.TrainOnlyLR }

// RefTotal and RefLong return the expected reference-tree counts.
func (t TreeSpec) RefTotal() int { return t.CommonTotal() + t.RefOnly }
func (t TreeSpec) RefLong() int  { return t.CommonBothLR + t.CommonRefLR + t.RefOnlyLR }

// CommonLong returns the expected count of nodes long-running in both.
func (t TreeSpec) CommonLong() int { return t.CommonBothLR }

// Spec fully describes one benchmark stand-in.
type Spec struct {
	Name string
	Tree TreeSpec

	// Mixes is the instruction-mix palette cycled across nodes,
	// reflecting the benchmark's character.
	Mixes []*isa.Mix

	// ReuseFrac is the fraction of leaf subroutine nodes realized by
	// calling shared subroutines from distinct call sites, collapsing
	// tree nodes onto fewer static points (Table 4's static columns are
	// smaller than Table 3's node counts).
	ReuseFrac float64
	// LoopFrac is the fraction of common long-running leaves realized
	// as loop nodes rather than subroutine calls.
	LoopFrac float64
	// Containers is the number of long-running container subroutines
	// the common leaves are distributed under (tree depth).
	Containers int
	// LeafInstances is how many times each common leaf executes.
	LeafInstances int
	// LRInstrs is the per-instance instruction count of long-running
	// nodes; PlainInstrs of plain nodes. The "off" size, used by nodes
	// long-running under only one input, is LRInstrs/3 (safely under
	// the 10k cutoff).
	LRInstrs    int
	PlainInstrs int

	// RefOnlySharesPool makes reference-only leaves call the same
	// shared subroutines as common leaves (mpeg2 decode: functions
	// reachable over multiple paths, some unseen in training).
	RefOnlySharesPool bool
	// Special selects a hand-built structure: "epic_encode" (one
	// subroutine called from six sites of its parent with per-call
	// behaviour) or "art" (a core loop with seven sub-loops).
	Special string

	// PaperWindows is the Table 2 instruction-window description.
	PaperWindows string
	// TrainScale and RefScale feed isa.Input.Scale.
	TrainScale, RefScale float64
}
