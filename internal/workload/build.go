package workload

import (
	"fmt"
	"hash/fnv"
	"repro/internal/xrand"

	"repro/internal/isa"
)

// Benchmark is one ready-to-run workload: a program plus its training
// and reference inputs and simulation windows.
type Benchmark struct {
	Spec        Spec
	Prog        *isa.Program
	Train, Ref  isa.Input
	TrainWindow int64
	RefWindow   int64
}

// Name returns the benchmark name.
func (b *Benchmark) Name() string { return b.Spec.Name }

// Input returns the named input set ("train" or "ref").
func (b *Benchmark) Input(name string) (isa.Input, int64) {
	if name == "train" {
		return b.Train, b.TrainWindow
	}
	return b.Ref, b.RefWindow
}

// category identifies a node calibration class.
type category uint8

const (
	catBothLR category = iota
	catTrainLR
	catRefLR
	catPlain
	catTrainOnlyLR
	catTrainOnlyPlain
	catRefOnlyLR
	catRefOnlyPlain
	numCategories
)

// gate returns the call predicate for one-sided categories.
func (c category) gate() func(isa.Input) bool {
	switch c {
	case catTrainOnlyLR, catTrainOnlyPlain:
		return func(in isa.Input) bool { return in.Name == "train" }
	case catRefOnlyLR, catRefOnlyPlain:
		return func(in isa.Input) bool { return in.Name == "ref" }
	}
	return nil
}

// sizes returns the per-instance instruction counts under the training
// and reference inputs for a category.
func (c category) sizes(spec *Spec, jitter float64) (train, ref int) {
	lr := int(float64(spec.LRInstrs) * jitter)
	off := lr / 3
	plain := int(float64(spec.PlainInstrs) * jitter)
	switch c {
	case catBothLR:
		return lr, lr
	case catTrainLR:
		return lr, off
	case catRefLR:
		return off, lr
	case catPlain:
		return plain, plain
	case catTrainOnlyLR:
		return lr, 0
	case catTrainOnlyPlain:
		return plain, 0
	case catRefOnlyLR:
		return 0, lr
	case catRefOnlyPlain:
		return 0, plain
	}
	return 0, 0
}

// builder assembles one benchmark program from its spec.
type builder struct {
	spec *Spec
	b    *isa.Builder
	rng  *xrand.Rand

	main       *isa.Subroutine
	parents    []*parentSlot // main + containers
	pools      [numCategories][]*isa.Subroutine
	poolTarget [numCategories]int
	mixIdx     int
	nextParent int
	subSeq     int
}

type parentSlot struct {
	sub  *isa.Subroutine
	body []isa.Node
}

// Build materializes a benchmark from its spec.
func Build(spec Spec) *Benchmark {
	if spec.LRInstrs == 0 {
		spec.LRInstrs = 13000
	}
	if spec.PlainInstrs == 0 {
		spec.PlainInstrs = 3000
	}
	if spec.LeafInstances == 0 {
		spec.LeafInstances = 1
	}
	if spec.TrainScale == 0 {
		spec.TrainScale = 1
	}
	if spec.RefScale == 0 {
		spec.RefScale = 1
	}
	h := fnv.New64a()
	h.Write([]byte(spec.Name))
	w := &builder{
		spec: &spec,
		b:    isa.NewBuilder(spec.Name),
		rng:  xrand.New(int64(h.Sum64())),
	}
	w.main = w.b.Subroutine("main")
	w.parents = []*parentSlot{{sub: w.main}}
	// main is itself a long-running common node: give it its own work.
	w.parents[0].body = append(w.parents[0].body, w.leafBlock(catBothLR))

	// Category budgets; main consumed one CommonBothLR slot.
	remaining := map[category]int{
		catBothLR:         spec.Tree.CommonBothLR - 1,
		catTrainLR:        spec.Tree.CommonTrainLR,
		catRefLR:          spec.Tree.CommonRefLR,
		catPlain:          spec.Tree.CommonPlain,
		catTrainOnlyLR:    spec.Tree.TrainOnlyLR,
		catTrainOnlyPlain: spec.Tree.TrainOnly - spec.Tree.TrainOnlyLR,
		catRefOnlyLR:      spec.Tree.RefOnlyLR,
		catRefOnlyPlain:   spec.Tree.RefOnly - spec.Tree.RefOnlyLR,
	}
	if remaining[catBothLR] < 0 {
		panic(fmt.Sprintf("workload %s: CommonBothLR must be >= 1 (main)", spec.Name))
	}

	// Special hand-built structures consume part of the budget.
	switch spec.Special {
	case "epic_encode":
		w.buildEpicFilter(remaining)
	case "art":
		w.buildArtCore(remaining)
	}

	// Containers: long-running subroutines the remaining common leaves
	// nest under.
	nContainers := spec.Containers
	if nContainers > remaining[catBothLR] {
		nContainers = remaining[catBothLR]
	}
	for i := 0; i < nContainers; i++ {
		c := w.b.Subroutine(fmt.Sprintf("phase%d", i))
		slot := &parentSlot{sub: c}
		slot.body = append(slot.body, w.leafBlock(catBothLR))
		w.parents = append(w.parents, slot)
		w.parents[0].body = append(w.parents[0].body, w.b.Call(c))
		remaining[catBothLR]--
	}

	// Pool sizing for shared-subroutine reuse (static collapse).
	for c := category(0); c < numCategories; c++ {
		n := remaining[c]
		target := n
		if spec.ReuseFrac > 0 && n > 0 {
			target = int(float64(n)*(1-spec.ReuseFrac) + 0.999)
			if target < 1 {
				target = 1
			}
		}
		w.poolTarget[c] = target
	}

	// mpeg2 decode: reference-only paths reach subroutines shared with
	// training-visible contexts, but through a dispatcher that never
	// executes during training. Path-tracking schemes see label 0 there
	// and skip reconfiguration; L+F and F reconfigure by static identity.
	if spec.RefOnlySharesPool && remaining[catRefOnlyPlain] > 0 && remaining[catRefOnlyLR] > 0 {
		disp := w.b.Subroutine("ref_dispatch")
		body := []isa.Node{w.leafBlock(catRefOnlyPlain)}
		for i := 0; i < remaining[catRefOnlyLR]; i++ {
			body = append(body, w.b.Call(w.poolSub(catBothLR)))
		}
		w.b.SetBody(disp, body...)
		w.parents[0].body = append(w.parents[0].body,
			w.b.CallWhen(disp, func(in isa.Input) bool { return in.Name == "ref" }))
		remaining[catRefOnlyPlain]-- // the dispatcher itself
		remaining[catRefOnlyLR] = 0
	}

	// Realize the leaves, cycling categories so placement interleaves.
	order := []category{
		catBothLR, catTrainLR, catRefLR, catPlain,
		catTrainOnlyLR, catTrainOnlyPlain, catRefOnlyLR, catRefOnlyPlain,
	}
	for _, c := range order {
		for i := 0; i < remaining[c]; i++ {
			w.realizeLeaf(c)
		}
	}

	// Materialize bodies.
	for _, p := range w.parents {
		w.b.SetBody(p.sub, p.body...)
	}
	prog := w.b.Finish(w.main)

	bench := &Benchmark{
		Spec:  spec,
		Prog:  prog,
		Train: isa.Input{Name: "train", Scale: spec.TrainScale, Seed: 7},
		Ref:   isa.Input{Name: "ref", Scale: spec.RefScale, Seed: 11},
	}
	bench.TrainWindow = countInstrs(prog, bench.Train)
	bench.RefWindow = countInstrs(prog, bench.Ref)
	return bench
}

// nextMix cycles the palette.
func (w *builder) nextMix() *isa.Mix {
	m := w.spec.Mixes[w.mixIdx%len(w.spec.Mixes)]
	w.mixIdx++
	return m
}

// jitter returns a deterministic size multiplier in [0.92, 1.15].
func (w *builder) jitter() float64 { return 0.92 + 0.23*w.rng.Float64() }

// leafBlock builds a work block for a node of the given category.
func (w *builder) leafBlock(c category) *isa.Block {
	spec := w.spec
	trainN, refN := c.sizes(spec, w.jitter())
	mix := w.nextMix()
	nominal := trainN
	if refN > nominal {
		nominal = refN
	}
	return w.b.BlockBy(mix, min(nominal, 4096), func(in isa.Input) int {
		if in.Name == "train" {
			return trainN
		}
		return refN
	})
}

// parent picks the next placement slot round-robin. When the benchmark
// routes reference-only paths through shared subroutines (mpeg2 decode),
// common shared-pool leaves avoid main so that the run-time label
// lookup cannot accidentally match the dispatcher's un-tracked frame.
func (w *builder) parent(c category) *parentSlot {
	if w.spec.RefOnlySharesPool && c == catBothLR && len(w.parents) > 1 {
		p := w.parents[1+w.nextParent%(len(w.parents)-1)]
		w.nextParent++
		return p
	}
	p := w.parents[w.nextParent%len(w.parents)]
	w.nextParent++
	return p
}

// poolSub returns (creating on demand) a shared subroutine for the
// category, cycling through the pool.
func (w *builder) poolSub(c category) *isa.Subroutine {
	pool := w.pools[c]
	if len(pool) < w.poolTarget[c] {
		s := w.b.Subroutine(fmt.Sprintf("fn%d", w.subSeq))
		w.subSeq++
		w.b.SetBody(s, w.leafBlock(c))
		w.pools[c] = append(pool, s)
		return s
	}
	return pool[w.rng.Intn(len(pool))]
}

// realizeLeaf adds one tree node of the given category: either a loop in
// a parent body or a call (from a fresh site) to a pooled subroutine.
func (w *builder) realizeLeaf(c category) {
	spec := w.spec
	p := w.parent(c)
	asLoop := w.rng.Float64() < spec.LoopFrac
	instances := spec.LeafInstances
	if c != catBothLR && c != catPlain {
		instances = 1
	}
	if asLoop {
		trainN, refN := c.sizes(spec, w.jitter())
		const blockN = 500
		body := w.b.Block(w.nextMix(), blockN)
		loop := w.b.Loop(func(in isa.Input) int {
			n := trainN
			if in.Name != "train" {
				n = refN
			}
			return n / (blockN + 1)
		}, body)
		for i := 0; i < instances; i++ {
			p.body = append(p.body, loop)
		}
		return
	}
	target := w.poolSub(c)
	var call *isa.Call
	if gate := c.gate(); gate != nil {
		// mpeg2 decode: reference-only paths lead to subroutines shared
		// with training-visible contexts, so non-path schemes still
		// reconfigure there.
		if spec.RefOnlySharesPool && (c == catRefOnlyLR) {
			target = w.poolSub(catBothLR)
		}
		call = w.b.CallWhen(target, gate)
	} else {
		call = w.b.Call(target)
	}
	for i := 0; i < instances; i++ {
		p.body = append(p.body, call)
	}
}

// buildEpicFilter realizes epic encode's internal_filter: one subroutine
// called from six distinct sites inside its parent build_level, each
// invocation splitting its work differently between an FP-heavy and a
// memory-heavy loop (Section 4.2). Consumes 7 CommonBothLR nodes
// (build_level + six filter contexts) and 12 CommonPlain (the two
// sub-loops in each context).
func (w *builder) buildEpicFilter(remaining map[category]int) {
	if remaining[catBothLR] < 7 || remaining[catPlain] < 12 {
		panic("workload: epic_encode spec lacks node budget for special structure")
	}
	remaining[catBothLR] -= 7
	remaining[catPlain] -= 12

	filter := w.b.Subroutine("internal_filter")
	const blockN = 500
	fpBody := w.b.Block(isa.FPHeavy, blockN)
	memBody := w.b.Block(isa.MemBound, blockN)
	// Total loop work ~9k per invocation, split by invocation sequence;
	// each individual loop instance stays below the 10k cutoff.
	const totalTrips = 18
	la := w.b.Loop(nil, fpBody)
	la.TripsBySeq = func(_ isa.Input, seq int) int { return 2 + (seq%6)*(totalTrips-4)/5 }
	lb := w.b.Loop(nil, memBody)
	lb.TripsBySeq = func(_ isa.Input, seq int) int { return totalTrips - (2 + (seq%6)*(totalTrips-4)/5) }
	glue := w.b.Block(isa.IntHeavy, 4000)
	w.b.SetBody(filter, glue, la, lb)

	level := w.b.Subroutine("build_level")
	slot := &parentSlot{sub: level}
	slot.body = append(slot.body, w.leafBlock(catBothLR))
	for i := 0; i < 6; i++ {
		slot.body = append(slot.body, w.b.Call(filter))
	}
	w.b.SetBody(level, slot.body...)
	w.parents[0].body = append(w.parents[0].body, w.b.Call(level))
}

// buildArtCore realizes art's core computation: a long-running match
// routine whose outer loop contains seven sub-loops, each long-running
// (Section 4.2). Consumes 8 CommonBothLR (routine + 7 sub-loops) and 1
// CommonPlain (the outer loop).
func (w *builder) buildArtCore(remaining map[category]int) {
	if remaining[catBothLR] < 8 || remaining[catPlain] < 1 {
		panic("workload: art spec lacks node budget for special structure")
	}
	remaining[catBothLR] -= 8
	remaining[catPlain]--

	match := w.b.Subroutine("match")
	const blockN = 500
	var inner []isa.Node
	mixes := []*isa.Mix{isa.FPHeavy, isa.MemBound, isa.FPHeavy, isa.Stream, isa.FPHeavy, isa.MemBound, isa.Stream}
	for i := 0; i < 7; i++ {
		body := w.b.Block(mixes[i], blockN)
		inner = append(inner, w.b.Loop(isa.FixedTrips(24), body))
	}
	outer := w.b.Loop(isa.FixedTrips(3), inner...)
	w.b.SetBody(match, w.leafBlock(catBothLR), outer)
	w.parents[0].body = append(w.parents[0].body, w.b.Call(match))
}

// countInstrs measures the complete dynamic instruction count of a walk.
func countInstrs(p *isa.Program, in isa.Input) int64 {
	var c counter
	p.Walk(in, &c)
	return c.n
}

type counter struct{ n int64 }

func (c *counter) Instr(*isa.Instr) bool  { c.n++; return true }
func (c *counter) Marker(isa.Marker) bool { return true }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
