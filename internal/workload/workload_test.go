package workload

import (
	"testing"

	"repro/internal/calltree"
	"repro/internal/isa"
	"repro/internal/profiler"
)

func TestSuiteHas19Benchmarks(t *testing.T) {
	s := Suite()
	if len(s) != 19 {
		t.Fatalf("suite has %d benchmarks, want 19", len(s))
	}
	names := map[string]bool{}
	for _, b := range s {
		if names[b.Name()] {
			t.Errorf("duplicate benchmark %s", b.Name())
		}
		names[b.Name()] = true
	}
}

func TestByName(t *testing.T) {
	if ByName("gzip") == nil {
		t.Error("gzip missing")
	}
	if ByName("nonexistent") != nil {
		t.Error("unknown name returned a benchmark")
	}
	if len(Names()) != 19 {
		t.Error("Names() wrong length")
	}
}

func TestWindowsPositiveAndBounded(t *testing.T) {
	for _, b := range Suite() {
		if b.TrainWindow <= 0 || b.RefWindow <= 0 {
			t.Errorf("%s: non-positive window", b.Name())
		}
		if b.TrainWindow > 6_000_000 || b.RefWindow > 6_000_000 {
			t.Errorf("%s: window too large for the simulation budget (%d/%d)",
				b.Name(), b.TrainWindow, b.RefWindow)
		}
	}
}

func TestInputsNamedCorrectly(t *testing.T) {
	b := ByName("mcf")
	in, w := b.Input("train")
	if in.Name != "train" || w != b.TrainWindow {
		t.Error("train input wrong")
	}
	in, w = b.Input("ref")
	if in.Name != "ref" || w != b.RefWindow {
		t.Error("ref input wrong")
	}
}

func TestTreeSpecArithmetic(t *testing.T) {
	// Spec-derived totals must match Table 3 expectations for every
	// benchmark (the profiler test validates against actual trees; this
	// validates the spec decomposition itself).
	for _, s := range Specs() {
		tr := s.Tree
		if tr.TrainLong() > tr.TrainTotal() || tr.RefLong() > tr.RefTotal() {
			t.Errorf("%s: more long-running than total nodes", s.Name)
		}
		if tr.CommonLong() > tr.TrainLong() || tr.CommonLong() > tr.RefLong() {
			t.Errorf("%s: common long exceeds per-input long", s.Name)
		}
		if tr.CommonTotal() > tr.TrainTotal() || tr.CommonTotal() > tr.RefTotal() {
			t.Errorf("%s: common total exceeds per-input total", s.Name)
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	a := Build(Specs()[0])
	b := Build(Specs()[0])
	if a.TrainWindow != b.TrainWindow || a.RefWindow != b.RefWindow {
		t.Error("building the same spec twice gave different programs")
	}
}

func TestEpicEncodeSpecial(t *testing.T) {
	b := ByName("epic_encode")
	// internal_filter must be a single static subroutine reachable from
	// six call sites of build_level: under L+F+C+P six distinct contexts.
	tree := profiler.Profile(b.Prog, b.Train, b.TrainWindow+1, calltree.LFCP)
	bySub := map[int32]int{}
	for _, n := range tree.Nodes {
		if n.Kind == calltree.SubNode {
			bySub[n.ID]++
		}
	}
	max := 0
	for _, k := range bySub {
		if k > max {
			max = k
		}
	}
	if max < 6 {
		t.Errorf("no subroutine with >= 6 contexts (internal_filter); max=%d", max)
	}
}

func TestArtSpecial(t *testing.T) {
	b := ByName("art")
	tree := profiler.Profile(b.Prog, b.Ref, b.RefWindow+1, calltree.LFCP)
	// art's core: a routine containing an outer loop with seven
	// long-running sub-loops.
	found := false
	for _, n := range tree.Nodes {
		if n.Kind != calltree.LoopNode || n.LongRunning {
			continue
		}
		lrLoopKids := 0
		for _, c := range n.Children {
			if c.Kind == calltree.LoopNode && c.LongRunning {
				lrLoopKids++
			}
		}
		if lrLoopKids == 7 {
			found = true
			break
		}
	}
	if !found {
		t.Error("art core loop with seven long-running sub-loops not found")
	}
}

func TestMpeg2UnseenPaths(t *testing.T) {
	b := ByName("mpeg2_decode")
	trainTree := profiler.Profile(b.Prog, b.Train, b.TrainWindow+1, calltree.LFCP)
	refTree := profiler.Profile(b.Prog, b.Ref, b.RefWindow+1, calltree.LFCP)
	if refTree.NumNodes() <= trainTree.NumNodes() {
		t.Error("mpeg2 reference tree not larger than training tree")
	}
	_, commonLong := trainTree.Compare(refTree)
	if commonLong >= trainTree.NumLongRunning() {
		t.Error("all training long-running nodes common: no unseen-path effect")
	}
}

func TestSwimRefOnlyLoops(t *testing.T) {
	b := ByName("swim")
	trainTree := profiler.Profile(b.Prog, b.Train, b.TrainWindow+1, calltree.LFCP)
	refTree := profiler.Profile(b.Prog, b.Ref, b.RefWindow+1, calltree.LFCP)
	common, _ := trainTree.Compare(refTree)
	if common != trainTree.NumNodes() {
		t.Errorf("swim: %d of %d training nodes common, want all (reference only adds nodes)",
			common, trainTree.NumNodes())
	}
}

func TestStaticCollapseViaReuse(t *testing.T) {
	// gzip's 224 tree nodes collapse onto far fewer static subroutines.
	b := ByName("gzip")
	tree := profiler.Profile(b.Prog, b.Train, b.TrainWindow+1, calltree.LFCP)
	subs := tree.Subroutines()
	if len(subs) >= tree.NumNodes()/2 {
		t.Errorf("gzip: %d static subs for %d nodes, want strong collapse",
			len(subs), tree.NumNodes())
	}
}

func TestMixesVaryAcrossSuite(t *testing.T) {
	// Different benchmarks must exercise different mixes so the suite
	// stresses all four domains.
	seen := map[*isa.Mix]bool{}
	for _, s := range Specs() {
		for _, m := range s.Mixes {
			seen[m] = true
		}
	}
	if len(seen) < 5 {
		t.Errorf("suite uses only %d distinct mixes", len(seen))
	}
}
