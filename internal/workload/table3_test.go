package workload

import (
	"testing"

	"repro/internal/calltree"
	"repro/internal/profiler"
)

// TestTable3Calibration verifies that every benchmark's L+F+C+P call
// trees reproduce paper Table 3 exactly: long-running and total node
// counts under both inputs, and the common-node structure.
func TestTable3Calibration(t *testing.T) {
	// Paper Table 3: trainLong trainTotal refLong refTotal commonLong commonTotal.
	want := map[string][6]int{
		"adpcm_decode":    {2, 4, 2, 4, 2, 4},
		"adpcm_encode":    {2, 4, 2, 4, 2, 4},
		"epic_decode":     {18, 25, 18, 25, 18, 25},
		"epic_encode":     {65, 91, 65, 91, 65, 91},
		"g721_decode":     {1, 1, 1, 1, 1, 1},
		"g721_encode":     {1, 1, 1, 1, 1, 1},
		"gsm_decode":      {3, 5, 3, 5, 3, 5},
		"gsm_encode":      {6, 9, 6, 9, 6, 9},
		"jpeg_compress":   {11, 17, 11, 17, 11, 17},
		"jpeg_decompress": {4, 6, 4, 6, 4, 6},
		"mpeg2_decode":    {11, 15, 14, 19, 8, 12},
		"mpeg2_encode":    {30, 40, 30, 40, 30, 40},
		"gzip":            {78, 224, 70, 196, 65, 182},
		"vpr":             {67, 92, 84, 119, 7, 12},
		"mcf":             {26, 41, 26, 41, 26, 41},
		"swim":            {16, 23, 25, 32, 16, 23},
		"applu":           {61, 77, 68, 85, 60, 77},
		"art":             {65, 98, 68, 100, 65, 98},
		"equake":          {30, 35, 30, 35, 30, 35},
	}
	for _, b := range Suite() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			w, ok := want[b.Name()]
			if !ok {
				t.Fatalf("no Table 3 row for %s", b.Name())
			}
			trainTree := profiler.Profile(b.Prog, b.Train, b.TrainWindow+1, calltree.LFCP)
			refTree := profiler.Profile(b.Prog, b.Ref, b.RefWindow+1, calltree.LFCP)
			commonTotal, commonLong := trainTree.Compare(refTree)
			got := [6]int{
				trainTree.NumLongRunning(), trainTree.NumNodes(),
				refTree.NumLongRunning(), refTree.NumNodes(),
				commonLong, commonTotal,
			}
			if got != w {
				t.Errorf("tree counts = %v, want %v (trainWindow=%d refWindow=%d)",
					got, w, b.TrainWindow, b.RefWindow)
			}
		})
	}
}
