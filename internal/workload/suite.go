package workload

import (
	"sync"

	"repro/internal/isa"
)

// Specs returns the calibration specs for all 19 benchmarks, in the
// paper's Table 2/3/4 order. Tree category counts are derived from
// Table 3 (see DESIGN.md for the decomposition); mixes reflect each
// benchmark's published character; reuse fractions approximate the
// static-point collapse visible in Table 4.
func Specs() []Spec {
	media := func(name string, tree TreeSpec, mixes []*isa.Mix, reuse, loopFrac float64, containers, instances int, windows string) Spec {
		return Spec{
			Name: name, Tree: tree, Mixes: mixes,
			ReuseFrac: reuse, LoopFrac: loopFrac,
			Containers: containers, LeafInstances: instances,
			PaperWindows: windows,
		}
	}
	intMixes := []*isa.Mix{isa.IntHeavy, isa.Branchy, isa.IntHeavy}
	mediaMixes := []*isa.Mix{isa.IntHeavy, isa.Balanced, isa.Branchy}
	fpMixes := []*isa.Mix{isa.FPHeavy, isa.Stream, isa.Balanced}

	return []Spec{
		media("adpcm_decode", TreeSpec{CommonBothLR: 2, CommonPlain: 2},
			intMixes, 0, 0.5, 0, 8, "entire program (7.1M / 11.2M)"),
		media("adpcm_encode", TreeSpec{CommonBothLR: 2, CommonPlain: 2},
			intMixes, 0, 0.5, 0, 8, "entire program (8.3M / 13.3M)"),
		media("epic_decode", TreeSpec{CommonBothLR: 18, CommonPlain: 7},
			fpMixes, 0, 0.3, 2, 2, "entire program (9.6M / 10.6M)"),
		{
			Name:      "epic_encode",
			Tree:      TreeSpec{CommonBothLR: 65, CommonPlain: 26},
			Mixes:     []*isa.Mix{isa.FPHeavy, isa.Balanced, isa.MemBound},
			ReuseFrac: 0.56, LoopFrac: 0.25, Containers: 5, LeafInstances: 2,
			Special:      "epic_encode",
			PaperWindows: "entire program (52.9M / 54.1M)",
		},
		media("g721_decode", TreeSpec{CommonBothLR: 1},
			intMixes, 0, 0, 0, 1, "0 - 200M / 0 - 200M"),
		media("g721_encode", TreeSpec{CommonBothLR: 1},
			intMixes, 0, 0, 0, 1, "0 - 200M / 0 - 200M"),
		media("gsm_decode", TreeSpec{CommonBothLR: 3, CommonPlain: 2},
			intMixes, 0, 0.5, 0, 12, "entire program (77.1M / 122.1M)"),
		media("gsm_encode", TreeSpec{CommonBothLR: 6, CommonPlain: 3},
			intMixes, 0, 0.4, 1, 12, "0 - 200M / 0 - 200M"),
		media("jpeg_compress", TreeSpec{CommonBothLR: 11, CommonPlain: 6},
			mediaMixes, 0.35, 0.3, 2, 2, "entire program (19.3M / 153.4M)"),
		media("jpeg_decompress", TreeSpec{CommonBothLR: 4, CommonPlain: 2},
			mediaMixes, 0, 0.3, 0, 4, "entire program (4.6M / 36.5M)"),
		{
			Name: "mpeg2_decode",
			Tree: TreeSpec{
				CommonBothLR: 8, CommonTrainLR: 1, CommonRefLR: 1, CommonPlain: 2,
				TrainOnly: 3, TrainOnlyLR: 2, RefOnly: 7, RefOnlyLR: 5,
			},
			Mixes:     []*isa.Mix{isa.Balanced, isa.FPHeavy, isa.IntHeavy},
			ReuseFrac: 0.5, LoopFrac: 0.2, Containers: 1, LeafInstances: 2,
			RefOnlySharesPool: true,
			PaperWindows:      "entire program (152.3M) / 0 - 200M",
		},
		media("mpeg2_encode", TreeSpec{CommonBothLR: 30, CommonPlain: 10},
			[]*isa.Mix{isa.Balanced, isa.FPHeavy, isa.Branchy}, 0.25, 0.35, 3, 2,
			"0 - 200M / 0 - 200M"),
		{
			Name: "gzip",
			Tree: TreeSpec{
				CommonBothLR: 65, CommonTrainLR: 5, CommonRefLR: 2, CommonPlain: 110,
				TrainOnly: 42, TrainOnlyLR: 8, RefOnly: 14, RefOnlyLR: 3,
			},
			Mixes:     []*isa.Mix{isa.Branchy, isa.IntHeavy, isa.MemBound},
			ReuseFrac: 0.75, LoopFrac: 0.2, Containers: 8, LeafInstances: 1,
			PaperWindows: "20,518 - 20,718M / 21,185 - 21,385M",
		},
		{
			Name: "vpr",
			Tree: TreeSpec{
				CommonBothLR: 7, CommonTrainLR: 1, CommonRefLR: 1, CommonPlain: 3,
				TrainOnly: 80, TrainOnlyLR: 59, RefOnly: 107, RefOnlyLR: 76,
			},
			Mixes:     []*isa.Mix{isa.Branchy, isa.Balanced, isa.MemBound},
			ReuseFrac: 0.2, LoopFrac: 0.15, Containers: 2, LeafInstances: 1,
			PaperWindows: "335 - 535M / 1,600 - 1,800M",
		},
		{
			Name:      "mcf",
			Tree:      TreeSpec{CommonBothLR: 26, CommonPlain: 15},
			Mixes:     []*isa.Mix{isa.MemBound, isa.MemBound, isa.Branchy},
			ReuseFrac: 0.1, LoopFrac: 0.3, Containers: 3, LeafInstances: 2,
			PaperWindows: "590 - 790M / 1,325 - 1,525M",
		},
		{
			Name: "swim",
			Tree: TreeSpec{
				CommonBothLR: 16, CommonPlain: 7,
				RefOnly: 9, RefOnlyLR: 9,
			},
			Mixes:    []*isa.Mix{isa.Stream, isa.FPHeavy, isa.Stream},
			LoopFrac: 0.7, Containers: 2, LeafInstances: 2,
			PaperWindows: "84 - 284M / 575 - 775M",
		},
		{
			Name: "applu",
			Tree: TreeSpec{
				CommonBothLR: 60, CommonTrainLR: 1, CommonPlain: 16,
				RefOnly: 8, RefOnlyLR: 8,
			},
			Mixes:     []*isa.Mix{isa.FPHeavy, isa.Stream, isa.FPHeavy},
			ReuseFrac: 0.2, LoopFrac: 0.6, Containers: 6, LeafInstances: 2,
			PaperWindows: "36 - 236M / 650 - 850M",
		},
		{
			Name: "art",
			Tree: TreeSpec{
				CommonBothLR: 65, CommonRefLR: 1, CommonPlain: 32,
				RefOnly: 2, RefOnlyLR: 2,
			},
			Mixes:     []*isa.Mix{isa.FPHeavy, isa.MemBound, isa.Stream},
			ReuseFrac: 0.35, LoopFrac: 0.4, Containers: 4, LeafInstances: 2,
			Special:      "art",
			PaperWindows: "6,865 - 7,065M / 13,398 - 13,598M",
		},
		{
			Name:     "equake",
			Tree:     TreeSpec{CommonBothLR: 30, CommonPlain: 5},
			Mixes:    []*isa.Mix{isa.Stream, isa.MemBound, isa.FPHeavy},
			LoopFrac: 0.3, Containers: 3, LeafInstances: 1,
			PaperWindows: "958 - 1,158M / 4,266 - 4,466M",
		},
	}
}

var (
	suiteOnce sync.Once
	suite     []*Benchmark
	byName    map[string]*Benchmark
)

// Suite builds (once) and returns all 19 benchmarks.
func Suite() []*Benchmark {
	suiteOnce.Do(func() {
		specs := Specs()
		suite = make([]*Benchmark, len(specs))
		byName = make(map[string]*Benchmark, len(specs))
		for i, s := range specs {
			suite[i] = Build(s)
			byName[s.Name] = suite[i]
		}
	})
	return suite
}

// ByName returns one benchmark, or nil if the name is unknown.
func ByName(name string) *Benchmark {
	Suite()
	return byName[name]
}

// Names lists the benchmark names in suite order.
func Names() []string {
	specs := Specs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}
