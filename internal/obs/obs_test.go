package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestRingOverflowDropsOldest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Span{Phase: "job", Key: fmt.Sprintf("%064d", i)})
	}
	spans, next, dropped := tr.Snapshot(0)
	if next != 10 {
		t.Fatalf("next = %d, want 10", next)
	}
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	if len(spans) != 4 {
		t.Fatalf("len(spans) = %d, want 4", len(spans))
	}
	// The survivors are the newest four, in sequence order.
	for i, s := range spans {
		want := uint64(6 + i)
		if s.Seq != want {
			t.Errorf("spans[%d].Seq = %d, want %d", i, s.Seq, want)
		}
	}
}

func TestSpanIDDerivation(t *testing.T) {
	tr := NewTracer(8)
	key := strings.Repeat("ab", 32)
	tr.Emit(Span{Phase: "job", Key: key})
	tr.Emit(Span{Phase: "seal"})
	spans, _, _ := tr.Snapshot(0)
	if got, want := spans[0].ID, key[:12]+"#0"; got != want {
		t.Errorf("ID = %q, want %q", got, want)
	}
	if got, want := spans[1].ID, "-#1"; got != want {
		t.Errorf("keyless ID = %q, want %q", got, want)
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Span{Phase: "job", Key: strings.Repeat("0", 64), Policy: "duty", Outcome: "executed", DurNS: 5})
	tr.Emit(Span{Phase: "seal", DurNS: 1})
	var buf bytes.Buffer
	next, dropped, err := tr.WriteNDJSON(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if next != 2 || dropped != 0 {
		t.Fatalf("next=%d dropped=%d, want 2, 0", next, dropped)
	}
	// A terminal non-span line must be skipped by the reader.
	buf.WriteString("{\"done\":true,\"next\":2}\n\n")
	got, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig, _, _ := tr.Snapshot(0)
	if len(got) != len(orig) {
		t.Fatalf("round-trip span count = %d, want %d", len(got), len(orig))
	}
	for i := range got {
		if got[i] != orig[i] {
			t.Errorf("span %d round-trip mismatch: %+v != %+v", i, got[i], orig[i])
		}
	}
}

func TestImportStampsAndResequences(t *testing.T) {
	coord := NewTracer(8)
	coord.Emit(Span{Phase: "seal"})
	worker := []Span{
		{Phase: "job", Key: strings.Repeat("1", 64), Seq: 0, ID: "stale#0", Outcome: "executed"},
		{Phase: "persist", Key: strings.Repeat("1", 64), Seq: 1, ID: "stale#1"},
	}
	coord.Import(worker, "wk-1", "ls-3", 1)
	spans, _, _ := coord.Snapshot(1)
	if len(spans) != 2 {
		t.Fatalf("len = %d, want 2", len(spans))
	}
	for i, s := range spans {
		if s.Worker != "wk-1" || s.Lease != "ls-3" || s.Attempt != 1 {
			t.Errorf("span %d not stamped: %+v", i, s)
		}
		if want := uint64(1 + i); s.Seq != want {
			t.Errorf("span %d Seq = %d, want %d", i, s.Seq, want)
		}
		if strings.HasPrefix(s.ID, "stale") {
			t.Errorf("span %d kept stale ID %q", i, s.ID)
		}
	}
}

func TestTracerDeterministicSequences(t *testing.T) {
	emit := func() []Span {
		tr := NewTracer(16)
		for i := 0; i < 5; i++ {
			tr.Emit(Span{Phase: "job", Key: fmt.Sprintf("%064d", i), Outcome: "executed", StartNS: tr.Now()})
		}
		spans, _, _ := tr.Snapshot(0)
		return spans
	}
	a, b := emit(), emit()
	for i := range a {
		a[i].StartNS, a[i].DurNS = 0, 0
		b[i].StartNS, b[i].DurNS = 0, 0
		if a[i] != b[i] {
			t.Errorf("span %d differs across identical runs: %+v != %+v", i, a[i], b[i])
		}
	}
}

func TestLoggerWarnOncePerKey(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	if !l.WarnOnce("/tmp/a.json", "corrupt cache entry", "path", "/tmp/a.json") {
		t.Error("first WarnOnce suppressed")
	}
	if l.WarnOnce("/tmp/a.json", "corrupt cache entry", "path", "/tmp/a.json") {
		t.Error("second WarnOnce for same key not suppressed")
	}
	if !l.WarnOnce("/tmp/b.json", "corrupt cache entry", "path", "/tmp/b.json") {
		t.Error("distinct key suppressed")
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("logged %d lines, want 2: %q", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], `level=warn msg="corrupt cache entry" path=/tmp/a.json`) {
		t.Errorf("unexpected logfmt line: %q", lines[0])
	}
}

func TestLoggerQuoting(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.Warn("results not persisting", "err", `open "x": permission denied`)
	got := strings.TrimSpace(buf.String())
	want := `level=warn msg="results not persisting" err="open \"x\": permission denied"`
	if got != want {
		t.Errorf("line = %q, want %q", got, want)
	}
}

func TestNilLoggerFallsBackToDefault(t *testing.T) {
	var buf bytes.Buffer
	old := Default
	Default = NewLogger(&buf)
	defer func() { Default = old }()
	var l *Logger
	l.Warn("nil receiver")
	if !l.WarnOnce("k", "once via nil") {
		t.Error("nil WarnOnce suppressed first emission")
	}
	if got := buf.String(); !strings.Contains(got, "nil receiver") || !strings.Contains(got, "once via nil") {
		t.Errorf("default logger missed nil-receiver lines: %q", got)
	}
}

func TestAggregate(t *testing.T) {
	spans := []Span{
		{Phase: "job", Policy: "duty", Outcome: "executed", DurNS: 100, Worker: "wk-2"},
		{Phase: "job", Policy: "duty", Outcome: "disk", DurNS: 10, Worker: "wk-1"},
		{Phase: "job", Policy: "duty", Outcome: "disk", DurNS: 20},
		{Phase: "job", Policy: "duty", Outcome: "executed", DurNS: 70},
		{Phase: "seal", DurNS: 5},
	}
	tm := Aggregate(spans)
	if tm.Spans != 5 {
		t.Fatalf("Spans = %d, want 5", tm.Spans)
	}
	if got := strings.Join(tm.Workers, ","); got != "wk-1,wk-2" {
		t.Errorf("Workers = %q, want wk-1,wk-2", got)
	}
	if len(tm.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tm.Rows))
	}
	r := tm.Rows[0] // job/duty dominates by total
	if r.Phase != "job" || r.Policy != "duty" || r.Count != 4 || r.TotalNS != 200 {
		t.Fatalf("row 0 = %+v", r)
	}
	if r.P50NS != 20 || r.P95NS != 100 || r.MaxNS != 100 {
		t.Errorf("percentiles p50=%d p95=%d max=%d, want 20, 100, 100", r.P50NS, r.P95NS, r.MaxNS)
	}
	if r.HitRatio != 0.5 {
		t.Errorf("HitRatio = %v, want 0.5", r.HitRatio)
	}
	if tm.Rows[1].HitRatio != -1 {
		t.Errorf("outcome-less row HitRatio = %v, want -1", tm.Rows[1].HitRatio)
	}
	var buf bytes.Buffer
	if err := tm.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"PHASE", "job", "duty", "seal", "disk:2 executed:2", "50%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
