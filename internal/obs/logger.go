package obs

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
)

// Logger is the repository's single structured warning channel: one
// logfmt-style line per event (`level=warn msg="..." key=value ...`),
// with per-key one-shot suppression for the recurring store conditions
// (corrupt cache entries, failed persists) that would otherwise spam a
// line per job. Zero value is not usable; NewLogger or Default.
type Logger struct {
	mu   sync.Mutex
	w    io.Writer
	seen map[string]bool
}

// Default is the process-wide logger (stderr); nil *Logger receivers
// fall back to it, so stores carry an optional Log field with no
// constructor churn.
var Default = NewLogger(os.Stderr)

// NewLogger returns a logger writing logfmt lines to w.
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: w, seen: make(map[string]bool)}
}

// Warn emits one warning line with alternating key/value pairs.
func (l *Logger) Warn(msg string, kv ...any) { l.emit("warn", msg, kv) }

// Info emits one informational line with alternating key/value pairs.
func (l *Logger) Info(msg string, kv ...any) { l.emit("info", msg, kv) }

// WarnOnce emits the warning only the first time the given suppression
// key is seen by this logger, and reports whether it logged. Stores use
// the offending path as the key, so each distinct corrupt file warns
// exactly once while repeat hits stay silent.
func (l *Logger) WarnOnce(key, msg string, kv ...any) bool {
	if l == nil {
		return Default.WarnOnce(key, msg, kv...)
	}
	l.mu.Lock()
	if l.seen[key] {
		l.mu.Unlock()
		return false
	}
	l.seen[key] = true
	l.mu.Unlock()
	l.emit("warn", msg, kv)
	return true
}

// emit renders and writes one line; a nil receiver uses Default.
func (l *Logger) emit(level, msg string, kv []any) {
	if l == nil {
		l = Default
	}
	var b strings.Builder
	b.WriteString("level=")
	b.WriteString(level)
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(fmt.Sprint(kv[i]))
		b.WriteByte('=')
		b.WriteString(quoteValue(fmt.Sprint(kv[i+1])))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// quoteValue quotes a logfmt value only when it needs it (spaces,
// quotes, equals, control characters), keeping the common case legible.
func quoteValue(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}
