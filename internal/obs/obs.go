// Package obs is the repository's zero-dependency observability layer:
// a deterministic span tracer (Tracer) feeding a bounded in-memory ring
// with NDJSON export, a minimal structured logger (Logger) with
// per-key one-shot suppression, and a timing aggregator (Aggregate)
// that folds a span stream into the per-phase/per-policy wall-clock
// report `mcdsweep timing` renders.
//
// Span identity is deterministic by construction: IDs derive from the
// span's subject key plus a tracer-assigned counter — never from
// time.Now identity or randomness — so tracing the same manifest twice
// produces identical span sequences modulo start offsets and
// durations. Span data is observational only: it never enters
// result-cache, artifact, or stream keys (machine-checked by the sweep
// package's traced-vs-untraced byte-identity tests).
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Span is one timed region of work: a whole job, or one phase of its
// resolution (stream decode, profile training, shaking, phase-2
// collection, lockstep simulation, cache write, segment seal).
type Span struct {
	// ID derives from the subject key and the tracer's counter
	// ("<key12>#<seq>"); it carries no wall-clock identity.
	ID string `json:"id"`
	// Seq is the span's position in its tracer's stream, dense from 0 —
	// the resumption cursor for ?from=N trace fetches.
	Seq uint64 `json:"seq"`
	// Key is the span's subject: a job's result key, a training's
	// artifact key, or a benchmark's stream key (64-hex content
	// addresses all); empty for engine-wide phases (segment seal).
	Key string `json:"key,omitempty"`
	// Phase names the region: "job", "stream", "profile", "train",
	// "treewalk", "collect", "shake", "simulate", "persist", "seal".
	Phase string `json:"phase"`
	// Policy and Bench label the owning job when one is known.
	Policy string `json:"policy,omitempty"`
	Bench  string `json:"bench,omitempty"`
	// Outcome reports how the region resolved: a job's answering layer
	// ("executed", "disk", "memory", "error"), a store probe's result
	// ("hit", "recorded", "artifact", "trained", "memo"), etc.
	Outcome string `json:"outcome,omitempty"`
	// Worker, Lease and Attempt are stamped by a fleet coordinator when
	// it ingests a worker's spans from a lease completion frame.
	Worker  string `json:"worker,omitempty"`
	Lease   string `json:"lease,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	// StartNS is a monotonic offset from the tracer's epoch; DurNS the
	// span's wall-clock duration. These are the only nondeterministic
	// fields.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
}

// DefaultCapacity is the span ring's size when NewTracer gets n <= 0:
// large enough to hold a full paper-grid sweep's spans, small enough
// (~200 B/span) to be negligible daemon state.
const DefaultCapacity = 1 << 14

// Tracer hands out spans into a bounded ring buffer. All methods are
// safe for concurrent use. A nil *Tracer is the disabled state: callers
// guard emission with one nil check at job/phase boundaries, and the
// per-instruction simulation loops carry no tracing code at all.
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	seq     uint64 // next sequence number
	buf     []Span // ring storage, fixed capacity
	head    int    // index of the oldest live span
	n       int    // live span count
	dropped uint64 // spans overwritten after overflow (oldest first)
}

// NewTracer returns a tracer with a ring of the given capacity
// (DefaultCapacity when n <= 0). The epoch is captured once here; every
// StartNS is a monotonic offset from it.
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = DefaultCapacity
	}
	return &Tracer{epoch: time.Now(), buf: make([]Span, n)}
}

// Now returns the monotonic nanosecond offset from the tracer's epoch —
// the clock spans are timed with.
func (t *Tracer) Now() int64 { return int64(time.Since(t.epoch)) }

// Emit assigns the span its sequence number and identity and appends it
// to the ring, dropping the oldest span on overflow.
func (t *Tracer) Emit(s Span) {
	t.mu.Lock()
	s.Seq = t.seq
	t.seq++
	s.ID = spanID(s.Key, s.Seq)
	t.push(s)
	t.mu.Unlock()
}

// Import ingests spans recorded elsewhere (a fleet worker's lease),
// stamping each with the worker, lease and attempt that produced it and
// re-sequencing it into this tracer's stream so the merged trace stays
// resumable by one dense cursor.
func (t *Tracer) Import(spans []Span, worker, lease string, attempt int) {
	t.mu.Lock()
	for _, s := range spans {
		s.Worker, s.Lease, s.Attempt = worker, lease, attempt
		s.Seq = t.seq
		t.seq++
		s.ID = spanID(s.Key, s.Seq)
		t.push(s)
	}
	t.mu.Unlock()
}

// push appends one stamped span; callers hold t.mu.
func (t *Tracer) push(s Span) {
	if t.n == len(t.buf) {
		// Full: overwrite the oldest (drops-oldest semantics).
		t.buf[t.head] = s
		t.head = (t.head + 1) % len(t.buf)
		t.dropped++
		return
	}
	t.buf[(t.head+t.n)%len(t.buf)] = s
	t.n++
}

// spanID derives a span's identity from its subject key and counter —
// deterministic given the same emission sequence.
func spanID(key string, seq uint64) string {
	k := key
	if len(k) > 12 {
		k = k[:12]
	}
	if k == "" {
		k = "-"
	}
	return k + "#" + strconv.FormatUint(seq, 10)
}

// NextSeq returns the sequence number the next emitted span will get —
// the cursor a caller snapshots to later collect "everything from here".
func (t *Tracer) NextSeq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Snapshot returns the buffered spans with Seq >= from in sequence
// order, plus the next cursor and how many spans have ever been dropped
// from the ring. Spans older than the ring's reach are gone (counted in
// dropped), so a resumed fetch may observe a gap after an overflow.
func (t *Tracer) Snapshot(from uint64) (spans []Span, next uint64, dropped uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < t.n; i++ {
		s := t.buf[(t.head+i)%len(t.buf)]
		if s.Seq >= from {
			spans = append(spans, s)
		}
	}
	return spans, t.seq, t.dropped
}

// WriteNDJSON writes the spans with Seq >= from as NDJSON (one span
// object per line) and returns the next cursor and the drop count.
func (t *Tracer) WriteNDJSON(w io.Writer, from uint64) (next uint64, dropped uint64, err error) {
	spans, next, dropped := t.Snapshot(from)
	enc := json.NewEncoder(w)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return next, dropped, err
		}
	}
	return next, dropped, nil
}

// ReadSpans parses an NDJSON span stream. Blank lines and lines that
// are not span objects (e.g. a trace endpoint's terminal
// {"done":true,...} line) are skipped, so the same reader handles
// `mcdsweep run -trace` files and saved /trace responses alike.
func ReadSpans(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Span
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(line, &s); err != nil {
			return nil, fmt.Errorf("obs: span line: %w", err)
		}
		if s.Phase == "" {
			continue // not a span (terminal or foreign line)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: span stream: %w", err)
	}
	return out, nil
}
