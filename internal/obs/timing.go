package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// TimingRow is one aggregated (phase, policy) group of spans.
type TimingRow struct {
	Phase   string `json:"phase"`
	Policy  string `json:"policy,omitempty"`
	Count   int    `json:"count"`
	TotalNS int64  `json:"total_ns"`
	P50NS   int64  `json:"p50_ns"`
	P95NS   int64  `json:"p95_ns"`
	MaxNS   int64  `json:"max_ns"`
	// Outcomes counts spans per outcome label ("" excluded).
	Outcomes map[string]int `json:"outcomes,omitempty"`
	// HitRatio is the fraction of spans whose outcome was answered by a
	// cache layer (disk/segment/memory/artifact/memo/hit) rather than
	// recomputed; -1 when the group's spans carry no outcomes.
	HitRatio float64 `json:"hit_ratio"`
}

// Timing is an aggregated trace: the input to the `mcdsweep timing`
// report and the mcdreport "timing" section.
type Timing struct {
	Spans   int         `json:"spans"`
	Workers []string    `json:"workers,omitempty"`
	Rows    []TimingRow `json:"rows"`
}

// hitOutcomes are the outcome labels that mean "answered from a cache
// layer instead of recomputed".
var hitOutcomes = map[string]bool{
	"disk": true, "segment": true, "memory": true,
	"artifact": true, "memo": true, "hit": true,
}

// Aggregate folds spans into per-(phase, policy) rows with
// nearest-rank percentiles, sorted by total wall-clock descending
// (ties broken by phase then policy, so rendering is deterministic).
func Aggregate(spans []Span) *Timing {
	type acc struct {
		durs     []int64
		total    int64
		outcomes map[string]int
	}
	groups := make(map[[2]string]*acc)
	workers := make(map[string]bool)
	for _, s := range spans {
		gk := [2]string{s.Phase, s.Policy}
		a := groups[gk]
		if a == nil {
			a = &acc{outcomes: make(map[string]int)}
			groups[gk] = a
		}
		a.durs = append(a.durs, s.DurNS)
		a.total += s.DurNS
		if s.Outcome != "" {
			a.outcomes[s.Outcome]++
		}
		if s.Worker != "" {
			workers[s.Worker] = true
		}
	}
	tm := &Timing{Spans: len(spans)}
	for w := range workers {
		tm.Workers = append(tm.Workers, w)
	}
	sort.Strings(tm.Workers)
	for gk, a := range groups {
		sort.Slice(a.durs, func(i, j int) bool { return a.durs[i] < a.durs[j] })
		row := TimingRow{
			Phase:   gk[0],
			Policy:  gk[1],
			Count:   len(a.durs),
			TotalNS: a.total,
			P50NS:   rank(a.durs, 50),
			P95NS:   rank(a.durs, 95),
			MaxNS:   a.durs[len(a.durs)-1],
		}
		hits, outcomes := 0, 0
		for o, n := range a.outcomes {
			outcomes += n
			if hitOutcomes[o] {
				hits += n
			}
		}
		if outcomes > 0 {
			row.Outcomes = a.outcomes
			row.HitRatio = float64(hits) / float64(outcomes)
		} else {
			row.HitRatio = -1
		}
		tm.Rows = append(tm.Rows, row)
	}
	sort.Slice(tm.Rows, func(i, j int) bool {
		a, b := tm.Rows[i], tm.Rows[j]
		if a.TotalNS != b.TotalNS {
			return a.TotalNS > b.TotalNS
		}
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		return a.Policy < b.Policy
	})
	return tm
}

// rank returns the nearest-rank p-th percentile of ascending durs
// (index ceil(p/100 · n) - 1).
func rank(durs []int64, p int) int64 {
	if len(durs) == 0 {
		return 0
	}
	i := (p*len(durs)+99)/100 - 1
	if i < 0 {
		i = 0
	}
	return durs[i]
}

// WriteTable renders the aggregated trace as an aligned text table.
func (tm *Timing) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "spans: %d", tm.Spans); err != nil {
		return err
	}
	if len(tm.Workers) > 0 {
		fmt.Fprintf(w, "   workers: %s", strings.Join(tm.Workers, ","))
	}
	fmt.Fprintln(w)
	rows := [][]string{{"PHASE", "POLICY", "COUNT", "TOTAL", "P50", "P95", "MAX", "HIT%", "OUTCOMES"}}
	for _, r := range tm.Rows {
		hit := "-"
		if r.HitRatio >= 0 {
			hit = fmt.Sprintf("%.0f%%", r.HitRatio*100)
		}
		rows = append(rows, []string{
			r.Phase, r.Policy,
			fmt.Sprintf("%d", r.Count),
			durString(r.TotalNS), durString(r.P50NS), durString(r.P95NS), durString(r.MaxNS),
			hit, outcomeString(r.Outcomes),
		})
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
	}
	return nil
}

// durString renders nanoseconds compactly (1.234ms style, trimmed).
func durString(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		// "us", not "µs": the table pads columns by byte width, and a
		// multibyte micro sign would skew every column after it.
		return fmt.Sprintf("%.0fus", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// outcomeString renders an outcome histogram deterministically
// (count-descending, then name).
func outcomeString(m map[string]int) string {
	if len(m) == 0 {
		return "-"
	}
	type oc struct {
		name string
		n    int
	}
	var ocs []oc
	for o, n := range m {
		ocs = append(ocs, oc{o, n})
	}
	sort.Slice(ocs, func(i, j int) bool {
		if ocs[i].n != ocs[j].n {
			return ocs[i].n > ocs[j].n
		}
		return ocs[i].name < ocs[j].name
	})
	parts := make([]string, len(ocs))
	for i, o := range ocs {
		parts[i] = fmt.Sprintf("%s:%d", o.name, o.n)
	}
	return strings.Join(parts, " ")
}
