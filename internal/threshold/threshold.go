// Package threshold implements phase three of the paper's pipeline:
// slowdown thresholding (Section 3.3). Domains cannot scale individual
// events, so for each long-running call-tree node and each domain it
// picks the minimum ladder frequency such that the extra time of all
// events whose shaken ideal frequency is higher than the chosen one stays
// within a slowdown bound of the node's total ideal event time.
package threshold

import (
	"repro/internal/dvfs"
	"repro/internal/shaker"
)

// Choose returns, per scalable domain (in topology domain order), the
// minimum frequency (MHz) that keeps the estimated slowdown within
// deltaPct percent. Domains with no recorded events idle at the minimum
// frequency. The result length matches the histogram set's.
func Choose(h *shaker.DomainHists, deltaPct float64) []int {
	out := make([]int, len(*h))
	for d := range *h {
		out[d] = chooseDomain(&(*h)[d], deltaPct)
	}
	return out
}

func chooseDomain(h *shaker.Hist, deltaPct float64) int {
	// Total ideal time: every bin's weight is full-speed duration; an
	// event ideally at ladder frequency f takes weight * FMax/f.
	ideal := 0.0
	for i, w := range h.Bins {
		if w > 0 {
			ideal += w * float64(dvfs.FMaxMHz) / float64(dvfs.StepMHzAt(i))
		}
	}
	if ideal == 0 {
		return dvfs.FMinMHz
	}
	budget := ideal * deltaPct / 100
	for i := 0; i < dvfs.NumSteps; i++ {
		f := float64(dvfs.StepMHzAt(i))
		extra := 0.0
		for j := i + 1; j < dvfs.NumSteps; j++ {
			w := h.Bins[j]
			if w == 0 {
				continue
			}
			fj := float64(dvfs.StepMHzAt(j))
			extra += w * float64(dvfs.FMaxMHz) * (1/f - 1/fj)
		}
		if extra <= budget {
			return dvfs.StepMHzAt(i)
		}
	}
	return dvfs.FMaxMHz
}

// EstimatedSlowdown returns the estimated fractional slowdown of running
// the domain at mhz, relative to the shaken ideal times.
func EstimatedSlowdown(h *shaker.Hist, mhz int) float64 {
	ideal := 0.0
	extra := 0.0
	f := float64(mhz)
	for i, w := range h.Bins {
		if w == 0 {
			continue
		}
		fi := float64(dvfs.StepMHzAt(i))
		ideal += w * float64(dvfs.FMaxMHz) / fi
		if fi > f {
			extra += w * float64(dvfs.FMaxMHz) * (1/f - 1/fi)
		}
	}
	if ideal == 0 {
		return 0
	}
	return extra / ideal
}
