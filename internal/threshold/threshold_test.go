package threshold

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/dvfs"
	"repro/internal/shaker"
)

func histAt(mhz int, weight float64) *shaker.Hist {
	var h shaker.Hist
	h.Bins[dvfs.StepIndex(mhz)] = weight
	return &h
}

func TestEmptyDomainIdlesAtMinimum(t *testing.T) {
	h := make(shaker.DomainHists, arch.NumScalable)
	f := Choose(&h, 5)
	for d, mhz := range f {
		if mhz != dvfs.FMinMHz {
			t.Errorf("idle domain %d chose %d MHz, want %d", d, mhz, dvfs.FMinMHz)
		}
	}
}

func TestAllWeightAtOneBin(t *testing.T) {
	// All events ideal at 500 MHz: the chosen frequency is 500 (zero
	// extra time, any delta).
	h := make(shaker.DomainHists, arch.NumScalable)
	h[arch.Integer] = *histAt(500, 1000)
	f := Choose(&h, 1)
	if f[arch.Integer] != 500 {
		t.Errorf("chose %d, want 500", f[arch.Integer])
	}
}

func TestFullSpeedWeightForcesFullSpeed(t *testing.T) {
	h := make(shaker.DomainHists, arch.NumScalable)
	h[arch.FP] = *histAt(1000, 1000)
	f := Choose(&h, 0) // no slowdown budget at all
	if f[arch.FP] != 1000 {
		t.Errorf("chose %d, want 1000", f[arch.FP])
	}
}

func TestBudgetAllowsLower(t *testing.T) {
	// 10% of weight at full speed, the rest at 250 MHz: a modest delta
	// lets the domain run well below full speed.
	h := make(shaker.DomainHists, arch.NumScalable)
	hist := &h[arch.Memory]
	hist.Bins[dvfs.StepIndex(1000)] = 100
	hist.Bins[dvfs.StepIndex(250)] = 900
	f3 := Choose(&h, 3)[arch.Memory]
	f20 := Choose(&h, 20)[arch.Memory]
	if f3 <= 250 || f3 >= 1000 {
		t.Errorf("delta=3 chose %d, want intermediate", f3)
	}
	if f20 > f3 {
		t.Errorf("larger delta chose higher frequency: %d > %d", f20, f3)
	}
}

func TestMonotonicInDelta(t *testing.T) {
	h := make(shaker.DomainHists, arch.NumScalable)
	hist := &h[arch.Integer]
	hist.Bins[dvfs.StepIndex(1000)] = 300
	hist.Bins[dvfs.StepIndex(700)] = 300
	hist.Bins[dvfs.StepIndex(400)] = 400
	prev := dvfs.FMaxMHz + 1
	for _, delta := range []float64{0, 0.5, 1, 2, 4, 8, 16, 32} {
		f := Choose(&h, delta)[arch.Integer]
		if f > prev {
			t.Fatalf("frequency not monotone in delta: %d after %d", f, prev)
		}
		prev = f
	}
}

func TestChosenFrequencySatisfiesBudget(t *testing.T) {
	f := func(w1, w2, w3 uint16, deltaQ uint8) bool {
		h := make(shaker.DomainHists, arch.NumScalable)
		hist := &h[arch.Integer]
		hist.Bins[dvfs.StepIndex(1000)] = float64(w1)
		hist.Bins[dvfs.StepIndex(625)] = float64(w2)
		hist.Bins[dvfs.StepIndex(300)] = float64(w3)
		delta := float64(deltaQ%150) / 10
		mhz := Choose(&h, delta)[arch.Integer]
		// The estimate at the chosen frequency must be within budget.
		return EstimatedSlowdown(hist, mhz) <= delta/100+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEstimatedSlowdown(t *testing.T) {
	h := histAt(1000, 1000)
	if got := EstimatedSlowdown(h, 1000); got != 0 {
		t.Errorf("no slowdown at ideal frequency, got %v", got)
	}
	// Running 1000-ideal work at 500: each event takes twice as long.
	if got := EstimatedSlowdown(h, 500); got < 0.99 || got > 1.01 {
		t.Errorf("slowdown at half speed = %v, want 1.0", got)
	}
	var empty shaker.Hist
	if got := EstimatedSlowdown(&empty, 250); got != 0 {
		t.Errorf("empty histogram slowdown = %v", got)
	}
}

func TestPerDomainIndependence(t *testing.T) {
	h := make(shaker.DomainHists, arch.NumScalable)
	h[arch.FrontEnd] = *histAt(1000, 500)
	h[arch.FP] = *histAt(250, 500)
	f := Choose(&h, 1)
	if f[arch.FrontEnd] != 1000 {
		t.Errorf("front end chose %d, want 1000", f[arch.FrontEnd])
	}
	if f[arch.FP] != 250 {
		t.Errorf("fp chose %d, want 250", f[arch.FP])
	}
}
