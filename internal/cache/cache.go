// Package cache implements the set-associative caches of the simulated
// memory hierarchy (paper Table 1): 64 KB 2-way L1 instruction and data
// caches with 2-cycle access, and a 1 MB direct-mapped unified L2 with
// 12-cycle access. Only hit/miss behaviour is modeled (tag arrays with
// LRU replacement); latencies are applied by the pipeline.
package cache

import "fmt"

// Config sizes one cache.
type Config struct {
	SizeBytes int
	Ways      int
	LineBytes int
}

// L1Config returns the 64 KB 2-way L1 configuration.
func L1Config() Config { return Config{SizeBytes: 64 << 10, Ways: 2, LineBytes: 64} }

// L2Config returns the 1 MB direct-mapped L2 configuration.
func L2Config() Config { return Config{SizeBytes: 1 << 20, Ways: 1, LineBytes: 64} }

// Cache is a tag-array cache model with true-LRU replacement. It is not
// safe for concurrent use.
type Cache struct {
	cfg   Config
	sets  int
	shift uint
	tags  []uint32 // sets*ways, 0 = invalid
	lru   []uint8  // per-line LRU rank: 0 = most recent

	Accesses int64
	Misses   int64
}

// New builds a cache from the configuration; sizes must be powers of two.
func New(cfg Config) *Cache {
	if cfg.Ways < 1 || cfg.LineBytes < 1 || cfg.SizeBytes < cfg.Ways*cfg.LineBytes {
		panic(fmt.Sprintf("cache: invalid config %+v", cfg))
	}
	sets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:   cfg,
		sets:  sets,
		shift: shift,
		tags:  make([]uint32, sets*cfg.Ways),
		lru:   make([]uint8, sets*cfg.Ways),
	}
}

// Access looks up addr, updating replacement state and allocating the
// line on a miss. It returns true on a hit.
func (c *Cache) Access(addr uint32) bool {
	c.Accesses++
	line := addr >> c.shift
	set := int(line) & (c.sets - 1)
	tag := line | 0x80000000 // ensure nonzero (0 = invalid)
	base := set * c.cfg.Ways

	hitWay := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == tag {
			hitWay = w
			break
		}
	}
	if hitWay >= 0 {
		c.touch(base, hitWay)
		return true
	}
	c.Misses++
	// Choose the LRU way (highest rank) as victim.
	victim, worst := 0, uint8(0)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == 0 {
			victim = w
			break
		}
		if c.lru[base+w] >= worst {
			worst = c.lru[base+w]
			victim = w
		}
	}
	c.tags[base+victim] = tag
	c.touch(base, victim)
	return false
}

// touch marks way as most recently used within its set.
func (c *Cache) touch(base, way int) {
	old := c.lru[base+way]
	for w := 0; w < c.cfg.Ways; w++ {
		if c.lru[base+w] < old {
			c.lru[base+w]++
		}
	}
	c.lru[base+way] = 0
}

// MissRate returns the fraction of accesses that missed.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
	c.Accesses, c.Misses = 0, 0
}
