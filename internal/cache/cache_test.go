package cache

import (
	"testing"
	"testing/quick"
)

func TestColdMissThenHit(t *testing.T) {
	c := New(L1Config())
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed")
	}
	if !c.Access(0x1004) {
		t.Error("same-line access missed")
	}
}

func TestLineGranularity(t *testing.T) {
	c := New(Config{SizeBytes: 4096, Ways: 1, LineBytes: 64})
	c.Access(0x0)
	if !c.Access(0x3F) {
		t.Error("last byte of line missed")
	}
	if c.Access(0x40) {
		t.Error("next line hit without access")
	}
}

func TestDirectMappedConflict(t *testing.T) {
	cfg := Config{SizeBytes: 4096, Ways: 1, LineBytes: 64} // 64 sets
	c := New(cfg)
	a := uint32(0x0)
	b := uint32(4096) // same set, different tag
	c.Access(a)
	c.Access(b)
	if c.Access(a) {
		t.Error("conflicting line survived in direct-mapped cache")
	}
}

func TestTwoWayLRU(t *testing.T) {
	cfg := Config{SizeBytes: 8192, Ways: 2, LineBytes: 64} // 64 sets
	c := New(cfg)
	// Set index = (addr>>6) & 63: three addresses mapping to set 0.
	a, b, d := uint32(0), uint32(64*64), uint32(2*64*64)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is MRU
	c.Access(d) // evicts b (LRU)
	if !c.Access(a) {
		t.Error("MRU line evicted")
	}
	if c.Access(b) {
		t.Error("LRU line survived")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	c := New(L1Config()) // 64 KB
	// Touch 32 KB twice; second pass must be all hits.
	for addr := uint32(0); addr < 32<<10; addr += 64 {
		c.Access(addr)
	}
	missesAfterWarm := c.Misses
	for addr := uint32(0); addr < 32<<10; addr += 64 {
		if !c.Access(addr) {
			t.Fatalf("capacity miss at %#x with half-size working set", addr)
		}
	}
	if c.Misses != missesAfterWarm {
		t.Error("unexpected misses on resident working set")
	}
}

func TestWorkingSetExceedsCapacityMisses(t *testing.T) {
	c := New(Config{SizeBytes: 4096, Ways: 1, LineBytes: 64})
	// Stream 64 KB repeatedly: every access should miss (thrashing).
	for pass := 0; pass < 2; pass++ {
		for addr := uint32(0); addr < 64<<10; addr += 64 {
			c.Access(addr)
		}
	}
	if rate := c.MissRate(); rate < 0.99 {
		t.Errorf("streaming miss rate = %.3f, want ~1", rate)
	}
}

func TestReset(t *testing.T) {
	c := New(L1Config())
	c.Access(0x123)
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Error("stats not reset")
	}
	if c.Access(0x123) {
		t.Error("contents not reset")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(Config{SizeBytes: 100, Ways: 3, LineBytes: 64})
}

func TestHitAfterFillProperty(t *testing.T) {
	c := New(L2Config())
	f := func(addr uint32) bool {
		c.Access(addr)
		return c.Access(addr) // immediately re-accessing must hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMissRateBounds(t *testing.T) {
	c := New(L1Config())
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			c.Access(a)
		}
		r := c.MissRate()
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
