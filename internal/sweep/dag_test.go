package sweep

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/artifact"
	"repro/internal/calltree"
	"repro/internal/core"
	"repro/internal/workload"
)

// countEntries returns the number of content-addressed entry files in a
// store/cache directory (fan-out layout).
func countEntries(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	fans, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, fan := range fans {
		if !fan.IsDir() || !isFanoutDir(fan.Name()) {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, fan.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			if _, ok := entryKey(f.Name()); ok {
				n++
			}
		}
	}
	return n
}

// TestAnchorColocation checks that shard placement follows dependency
// anchors: everything that resolves (or feeds) one training lands on
// the shard that owns that training's artifact key.
func TestAnchorColocation(t *testing.T) {
	cfg := core.DefaultConfig()
	for _, shards := range []int{2, 3, 5, 7} {
		at := func(j Job) int { return shardOf(shardKey(cfg, j), shards) }

		// The off-line chain: offline (all deltas), global, and the base
		// single-clock run it is matched against share one shard.
		off := at(Job{Bench: "mcf", Policy: PolicyOffline})
		for name, j := range map[string]Job{
			"offline delta=2": {Bench: "mcf", Policy: PolicyOffline, Delta: 2},
			"global":          {Bench: "mcf", Policy: PolicyGlobal},
			"single_clock":    {Bench: "mcf", Policy: PolicySingleClock},
			"single_clock@base": {Bench: "mcf", Policy: PolicySingleClock,
				MHz: cfg.Sim.BaseMHz},
		} {
			if got := at(j); got != off {
				t.Errorf("shards=%d: %s in shard %d, offline chain in %d", shards, name, got, off)
			}
		}

		// All deltas of one (bench, scheme) grid share the shard that
		// owns their profile artifact.
		s0 := at(Job{Bench: "swim", Policy: PolicyScheme, Scheme: "L+F"})
		for _, d := range []float64{0.5, 2, 8} {
			if got := at(Job{Bench: "swim", Policy: PolicyScheme, Scheme: "L+F", Delta: d}); got != s0 {
				t.Errorf("shards=%d: L+F delta=%g in shard %d, grid anchor in %d", shards, d, got, s0)
			}
		}
	}
}

// TestFleetTrainsOnce runs a cold 3-way sharded sweep over
// profile-driven policies with real training, all shards sharing one
// cache directory and artifact store, and asserts that each (bench,
// scheme, input) training executed exactly once across the whole fleet
// — observed through artifact-store write counts — and that the merged
// results are byte-identical to an unsharded run's.
func TestFleetTrainsOnce(t *testing.T) {
	cfg := core.DefaultConfig()
	jobs := []Job{
		{Bench: "g721_decode", Policy: PolicyBaseline},
		{Bench: "g721_decode", Policy: PolicySingleClock},
		{Bench: "g721_decode", Policy: PolicyOffline},
		{Bench: "g721_decode", Policy: PolicyOffline, Delta: 4},
		{Bench: "g721_decode", Policy: PolicyGlobal},
		{Bench: "g721_decode", Policy: PolicyScheme, Scheme: "L+F"},
		{Bench: "g721_decode", Policy: PolicyScheme, Scheme: "L+F", Delta: 4},
		{Bench: "g721_decode", Policy: PolicySingleClock, MHz: 500},
	}
	// Two distinct trainings back this grid: the off-line oracle
	// (L+F+C+P on the reference input) and the L+F scheme (training
	// input); every delta point replans from one of them.
	const wantTrainings = 2

	dirA, dirB := t.TempDir(), t.TempDir()

	// Unsharded reference run.
	engA := New(cfg)
	engA.Cache = &Cache{Dir: dirA}
	engA.Artifacts = ArtifactStore(dirA)
	if _, _, err := engA.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if n := engA.Artifacts.Writes(); n != wantTrainings {
		t.Fatalf("unsharded run wrote %d artifacts, want %d", n, wantTrainings)
	}

	// Cold 3-way sharded fleet, one engine (process stand-in) per
	// shard, running concurrently against the shared directory.
	const shards = 3
	stores := make([]*artifact.Store, shards)
	var wg sync.WaitGroup
	errs := make([]error, shards)
	for idx := 0; idx < shards; idx++ {
		stores[idx] = ArtifactStore(dirB)
		eng := New(cfg)
		eng.Cache = &Cache{Dir: dirB}
		eng.Artifacts = stores[idx]
		mine := Shard(cfg, jobs, shards, idx)
		wg.Add(1)
		go func(idx int, eng *Engine, mine []Job) {
			defer wg.Done()
			_, _, errs[idx] = eng.Run(context.Background(), mine)
		}(idx, eng, mine)
	}
	wg.Wait()
	for idx, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", idx, err)
		}
	}
	var fleetWrites int64
	for _, s := range stores {
		fleetWrites += s.Writes()
	}
	if fleetWrites != wantTrainings {
		t.Errorf("cold fleet wrote %d artifacts across %d shards, want exactly %d (train-once)",
			fleetWrites, shards, wantTrainings)
	}
	if n := countEntries(t, filepath.Join(dirB, artifactSubdir)); n != wantTrainings {
		t.Errorf("fleet artifact store holds %d entries, want %d", n, wantTrainings)
	}

	// Sharded and unsharded merges must be byte-identical.
	mergedA, err := Merge(cfg, jobs, &Cache{Dir: dirA})
	if err != nil {
		t.Fatal(err)
	}
	mergedB, err := Merge(cfg, jobs, &Cache{Dir: dirB})
	if err != nil {
		t.Fatal(err)
	}
	bytesA, _ := json.Marshal(mergedA)
	bytesB, _ := json.Marshal(mergedB)
	if string(bytesA) != string(bytesB) {
		t.Fatalf("sharded merge differs from unsharded:\n%s\nvs\n%s", bytesA, bytesB)
	}

	// A second fleet pass over the same directory does zero work.
	for idx := 0; idx < shards; idx++ {
		eng := New(cfg)
		eng.Cache = &Cache{Dir: dirB}
		eng.Artifacts = ArtifactStore(dirB)
		_, sum, err := eng.Run(context.Background(), Shard(cfg, jobs, shards, idx))
		if err != nil {
			t.Fatal(err)
		}
		if sum.Executed != 0 {
			t.Errorf("warm shard %d executed %d jobs, want 0 (%s)", idx, sum.Executed, sum)
		}
	}
}

// TestProfileArtifactReuse drives Engine.Profile directly: a second
// engine sharing the store must load the stored profile instead of
// retraining, the loaded profile must re-encode byte-identically, and
// a corrupted entry must surface, retrain and be repaired.
func TestProfileArtifactReuse(t *testing.T) {
	cfg := core.DefaultConfig()
	dir := t.TempDir()
	spec := ProfileSpec{Bench: "g721_decode", Scheme: "L+F"}

	eng1 := New(cfg)
	eng1.Artifacts = ArtifactStore(dir)
	prof1, err := eng1.Profile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if n := eng1.Artifacts.Writes(); n != 1 {
		t.Fatalf("first training wrote %d artifacts, want 1", n)
	}

	eng2 := New(cfg)
	eng2.Artifacts = ArtifactStore(dir)
	prof2, err := eng2.Profile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if n := eng2.Artifacts.Writes(); n != 0 {
		t.Fatalf("second engine wrote %d artifacts, want 0 (should load the stored profile)", n)
	}
	enc1, err := core.EncodeProfile(prof1)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := core.EncodeProfile(prof2)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc1) != string(enc2) {
		t.Fatal("loaded profile re-encodes differently from the trained one")
	}
	if prof2.Plan == nil {
		t.Fatal("loaded profile has no plan")
	}

	// Corrupt the stored entry: the next engine counts it, retrains,
	// and repairs the store.
	key := spec.ArtifactKey(cfg)
	if err := os.WriteFile(eng2.Artifacts.EntryPath(key), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng3 := New(cfg)
	eng3.Artifacts = ArtifactStore(dir)
	if _, err := eng3.Profile(spec); err != nil {
		t.Fatal(err)
	}
	if n := eng3.Artifacts.Writes(); n != 1 {
		t.Errorf("corrupt entry not repaired: %d writes, want 1", n)
	}
	if n := eng3.nCorrupt.Load(); n != 1 {
		t.Errorf("corrupt artifact not counted: %d, want 1", n)
	}
	if _, st := eng3.Artifacts.Load(key, artifact.KindProfile); st != artifact.Hit {
		t.Errorf("store not repaired after corruption: %v", st)
	}
}

// TestCorruptEntriesSurfaced truncates a result-cache file and checks
// the damage is counted in the batch summary instead of being silently
// treated as a plain miss.
func TestCorruptEntriesSurfaced(t *testing.T) {
	dir := t.TempDir()
	cfg := core.DefaultConfig()
	jobs := testJobs()

	var execs atomic.Int64
	fresh := func() *Engine {
		e := New(cfg)
		e.Cache = &Cache{Dir: dir}
		e.ExecFn = fakeExec(&execs)
		return e
	}
	if _, sum, err := fresh().Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	} else if sum.CorruptEntries != 0 {
		t.Fatalf("cold run reported corruption: %s", sum)
	}

	// Deliberately truncate one entry mid-JSON.
	key := Key(cfg, jobs[0])
	path := filepath.Join(dir, key[:2], key+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	_, sum, err := fresh().Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.CorruptEntries != 1 {
		t.Errorf("truncated entry: corrupt_entries=%d, want 1 (%s)", sum.CorruptEntries, sum)
	}
	if sum.Executed != 1 || sum.DiskHits != len(jobs)-1 {
		t.Errorf("truncated entry not re-executed exactly once: %s", sum)
	}

	// A key-mismatched entry counts too; once repaired the counter
	// returns to zero.
	if err := os.WriteFile(path, []byte(`{"key":"beef","job":{},"outcome":{"result":{}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, sum, err = fresh().Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	} else if sum.CorruptEntries != 1 {
		t.Errorf("key-mismatched entry: corrupt_entries=%d, want 1", sum.CorruptEntries)
	}
	if _, sum, err = fresh().Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	} else if sum.CorruptEntries != 0 || sum.DiskHits != len(jobs) {
		t.Errorf("post-repair run: %s", sum)
	}
}

func TestReachable(t *testing.T) {
	cfg := core.DefaultConfig()
	jobs := []Job{
		{Bench: "mcf", Policy: PolicyGlobal},
		{Bench: "mcf", Policy: PolicyScheme, Scheme: "L+F", Delta: 2},
	}
	results, artifacts, streams, err := Reachable(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// The global job pulls its single-clock and off-line dependencies
	// into the reachable set.
	for _, j := range []Job{
		{Bench: "mcf", Policy: PolicyGlobal},
		{Bench: "mcf", Policy: PolicySingleClock},
		{Bench: "mcf", Policy: PolicyOffline},
		{Bench: "mcf", Policy: PolicyScheme, Scheme: "L+F", Delta: 2},
	} {
		if !results[Key(cfg, j)] {
			t.Errorf("dependency closure missing %s", j)
		}
	}
	if len(results) != 4 {
		t.Errorf("reachable results = %d keys, want 4", len(results))
	}
	// Two profile artifacts back the closure: the oracle training and
	// the L+F training.
	wantArts := map[string]bool{
		ProfileSpec{Bench: "mcf", Scheme: calltree.LFCP.Name, OnRef: true}.ArtifactKey(cfg): true,
		ProfileSpec{Bench: "mcf", Scheme: "L+F"}.ArtifactKey(cfg):                           true,
	}
	if len(artifacts) != len(wantArts) {
		t.Errorf("reachable artifacts = %d keys, want %d", len(artifacts), len(wantArts))
	}
	for k := range wantArts {
		if !artifacts[k] {
			t.Errorf("artifact closure missing %s", k[:12])
		}
	}
	// Two streams back the closure: mcf's reference stream (every
	// production run) and its training stream (the L+F profile).
	b := workload.ByName("mcf")
	wantStreams := map[string]bool{
		StreamKey(b, true):  true,
		StreamKey(b, false): true,
	}
	if len(streams) != len(wantStreams) {
		t.Errorf("reachable streams = %d keys, want %d", len(streams), len(wantStreams))
	}
	for k := range wantStreams {
		if !streams[k] {
			t.Errorf("stream closure missing %s", k[:12])
		}
	}

	if _, _, _, err := Reachable(cfg, []Job{{Bench: "mcf", Policy: "nope"}}); err == nil {
		t.Error("invalid job not rejected")
	}
}

func TestPruneUnreachable(t *testing.T) {
	dir := t.TempDir()
	cfg := core.DefaultConfig()
	all := testJobs()
	keep := all[:3]

	// Populate the result cache with the full grid and the artifact
	// store with one reachable and one unreachable profile.
	var execs atomic.Int64
	eng := New(cfg)
	eng.Cache = &Cache{Dir: dir}
	eng.ExecFn = fakeExec(&execs)
	if _, _, err := eng.Run(context.Background(), all); err != nil {
		t.Fatal(err)
	}
	store := ArtifactStore(dir)
	keptSpec := ProfileSpec{Bench: keep[1].Bench, Scheme: keep[1].Scheme}
	straySpec := ProfileSpec{Bench: "applu", Scheme: "F"}
	for _, spec := range []ProfileSpec{keptSpec, straySpec} {
		if err := store.Put(spec.ArtifactKey(cfg), artifact.KindProfile, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	// A leftover temp file from an interrupted writer is garbage.
	strayTmp := filepath.Join(dir, "00")
	if err := os.MkdirAll(strayTmp, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(strayTmp, "deadbeef.tmp123"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	results, artifacts, streams, err := Reachable(cfg, keep)
	if err != nil {
		t.Fatal(err)
	}
	unreachable, err := Unreachable(dir, results, artifacts, streams)
	if err != nil {
		t.Fatal(err)
	}
	// Expect: the result entries of all[3:], the stray artifact, and
	// the temp leftover.
	want := len(all) - len(keep) + 2
	if len(unreachable) != want {
		t.Fatalf("unreachable = %d entries, want %d:\n%v", len(unreachable), want, unreachable)
	}

	removed, _, err := Prune(dir, unreachable)
	if err != nil {
		t.Fatal(err)
	}
	if removed != want {
		t.Errorf("pruned %d entries, want %d", removed, want)
	}
	// The kept manifest still merges; the kept artifact still loads.
	if _, err := Merge(cfg, keep, &Cache{Dir: dir}); err != nil {
		t.Errorf("prune removed reachable results: %v", err)
	}
	if _, st := store.Load(keptSpec.ArtifactKey(cfg), artifact.KindProfile); st != artifact.Hit {
		t.Errorf("prune removed reachable artifact (status %v)", st)
	}
	// Idempotent: nothing unreachable remains.
	left, err := Unreachable(dir, results, artifacts, streams)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("entries still unreachable after prune: %v", left)
	}
	// The pruned grid's extra jobs are gone from the cache.
	if _, err := Merge(cfg, all, &Cache{Dir: dir}); err == nil {
		t.Error("pruned entries still merge")
	}
}
