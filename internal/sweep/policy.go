package sweep

import (
	"fmt"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/edit"
	"repro/internal/isa"
	"repro/internal/workload"
)

// Policy is one comparator the sweep can run, registered by name. A
// policy declares its prerequisites as typed dependencies — other jobs
// resolved through the engine's result layers, and trained profiles
// resolved through the artifact layers — and builds its outcome from the
// resolved values. Adding a comparator means registering a Policy, not
// editing the executor.
type Policy interface {
	// Name is the policy's job name (Job.Policy).
	Name() string
	// ValidateJob checks policy-specific job parameters; generic range
	// checks (delta, aggressiveness, mhz) happen in Job.Validate.
	ValidateJob(j Job) error
	// CanonicalJob maps parameter values the policy treats as defaults
	// onto the zero value and clears parameters it ignores, so
	// semantically identical jobs share one cache key.
	CanonicalJob(j Job, cfg core.Config) Job
	// Deps declares the job's prerequisites in the order Run receives
	// them resolved.
	Deps(cfg core.Config, j Job) []Dep
	// ShardAnchor names the dependency whose key decides which shard owns
	// the job, or nil to place the job by its own key. The anchor may be
	// a placement-only hint that Deps does not resolve (single-clock jobs
	// place with the comparator chain that consumes them).
	ShardAnchor(cfg core.Config, j Job) *Dep
	// Run builds the job's outcome from its resolved dependencies,
	// indexed like Deps' return.
	Run(rt Runtime, j Job, deps []Resolved) (*Outcome, error)
}

// Dep is one typed prerequisite: exactly one of Job or Profile is set.
type Dep struct {
	// Job names a result dependency, resolved through the engine's memo,
	// result cache and executor like any directly requested job.
	Job *Job
	// Profile names a training dependency, resolved through the engine's
	// profile memo and the artifact store.
	Profile *ProfileSpec
}

// ProfileSpec identifies one trained profile: a (benchmark, scheme,
// input) training run. OnRef trains on the reference input itself, which
// is how the off-line oracle gets its perfect future knowledge.
type ProfileSpec struct {
	Bench  string
	Scheme string
	OnRef  bool
}

// inputWindow resolves the spec's input name and instruction window.
func (s ProfileSpec) inputWindow(b *workload.Benchmark) (string, int64) {
	if s.OnRef {
		return b.Ref.Name, b.RefWindow
	}
	return b.Train.Name, b.TrainWindow
}

// ArtifactKey returns the content-addressed artifact-store key of the
// spec's trained profile under a configuration.
func (s ProfileSpec) ArtifactKey(cfg core.Config) string {
	b := workload.ByName(s.Bench)
	if b == nil {
		panic("sweep: profile spec names unknown benchmark " + s.Bench)
	}
	input, window := s.inputWindow(b)
	return artifact.ProfileKey(cfg, s.Bench, s.Scheme, input, window)
}

// Resolved is one resolved dependency: Outcome for job deps, Profile for
// profile deps.
type Resolved struct {
	Outcome *Outcome
	Profile *core.Profile
}

// Runtime is what a policy's Run may use to build its outcome: the
// engine configuration, replayable benchmark streams, and replanning of
// trained profiles at job-level deltas.
type Runtime interface {
	// Config returns the engine configuration jobs run under.
	Config() core.Config
	// Feeder returns a replayable stream for one benchmark input,
	// shared and recorded once across concurrent jobs.
	Feeder(b *workload.Benchmark, ref bool) isa.Feeder
	// Plan returns a profile's edit plan at the job's delta, replanning
	// from the shaken histograms when it differs from the
	// configuration's.
	Plan(prof *core.Profile, delta float64) *edit.Plan
}

// Lane is one job's production simulation opened for streaming: the
// consumer that eats the benchmark's reference stream, the instruction
// budget it runs under, and the finalization that builds the outcome.
// Splitting a policy run this way lets the batch executor drive many
// jobs' lanes from one lockstep replay of the shared decoded stream
// (isa.PackedStream.FeedLockstep); a sequential Feed through the same
// consumer computes the identical outcome.
type Lane struct {
	Consumer isa.Consumer
	Budget   int64
	Finish   func() (*Outcome, error)
}

// LanePolicy is a Policy whose production run is one budgeted pass over
// the benchmark's reference stream, split into open/stream/finish so
// the engine can batch it. All built-in policies implement it; a policy
// that does not is always executed sequentially via Run.
type LanePolicy interface {
	Policy
	// OpenLane prepares the job's simulation from its resolved
	// dependencies without consuming any stream.
	OpenLane(rt Runtime, j Job, deps []Resolved) (*Lane, error)
}

// runLane executes a lane policy sequentially: open, feed the reference
// stream under the lane's budget, finish. Policies implement Run with
// it so the sequential and batched paths share one lane construction.
func runLane(p LanePolicy, rt Runtime, j Job, deps []Resolved) (*Outcome, error) {
	ln, err := p.OpenLane(rt, j, deps)
	if err != nil {
		return nil, err
	}
	b := workload.ByName(j.Bench)
	rt.Feeder(b, true).Feed(&isa.CountingConsumer{Inner: ln.Consumer, Budget: ln.Budget})
	return ln.Finish()
}

// policies is the registry, in registration order (which Policies()
// exposes as the canonical policy order).
var policies []Policy

// RegisterPolicy adds a policy to the registry; duplicate names panic
// (programming error).
func RegisterPolicy(p Policy) {
	if _, ok := PolicyByName(p.Name()); ok {
		panic("sweep: duplicate policy " + p.Name())
	}
	policies = append(policies, p)
}

// PolicyByName resolves a registered policy.
func PolicyByName(name string) (Policy, bool) {
	for _, p := range policies {
		if p.Name() == name {
			return p, true
		}
	}
	return nil, false
}

// Policies lists every registered policy name in canonical order.
func Policies() []string {
	out := make([]string, len(policies))
	for i, p := range policies {
		out[i] = p.Name()
	}
	return out
}

// reachableFrom accumulates the result, artifact, and stream keys in a
// job's dependency closure (the job's own key included).
func reachableFrom(cfg core.Config, j Job, results, artifacts, streams map[string]bool) error {
	if err := j.Validate(); err != nil {
		return err
	}
	key := Key(cfg, j)
	if results[key] {
		return nil
	}
	results[key] = true
	// Every production run replays the benchmark's reference stream.
	if b := workload.ByName(j.Bench); b != nil {
		streams[StreamKey(b, true)] = true
	}
	p, ok := PolicyByName(j.Policy)
	if !ok {
		return fmt.Errorf("sweep: unknown policy %q", j.Policy)
	}
	for _, d := range p.Deps(cfg, j) {
		if d.Profile != nil {
			artifacts[d.Profile.ArtifactKey(cfg)] = true
			// Cold trainings replay the spec's training (or, for the
			// oracle, reference) stream.
			if b := workload.ByName(d.Profile.Bench); b != nil {
				streams[StreamKey(b, d.Profile.OnRef)] = true
			}
			continue
		}
		if err := reachableFrom(cfg, *d.Job, results, artifacts, streams); err != nil {
			return err
		}
	}
	return nil
}

// Reachable returns every result-cache key, artifact-store key, and
// packed-stream key reachable from a job set under cfg: each job's own
// key plus its full dependency closure. This is the mark set
// `mcdsweep prune` retains.
func Reachable(cfg core.Config, jobs []Job) (results, artifacts, streams map[string]bool, err error) {
	results = make(map[string]bool)
	artifacts = make(map[string]bool)
	streams = make(map[string]bool)
	for _, j := range jobs {
		if err := reachableFrom(cfg, j, results, artifacts, streams); err != nil {
			return nil, nil, nil, err
		}
	}
	return results, artifacts, streams, nil
}
