package sweep

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
)

// warmSegmentedCache runs jobs through a fake-exec engine with both
// cache layers enabled and returns the cache directory.
func warmSegmentedCache(t *testing.T, cfg core.Config, jobs []Job) string {
	t.Helper()
	dir := t.TempDir()
	var execs atomic.Int64
	e := New(cfg)
	e.Cache = &Cache{Dir: dir}
	e.Segments = SegmentStoreFor(dir)
	e.ExecFn = fakeExec(&execs)
	if _, _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestMergeToMatchesOracle(t *testing.T) {
	cfg := core.DefaultConfig()
	jobs := testJobs()
	dir := warmSegmentedCache(t, cfg, jobs)

	oracle, err := MergeBytes(cfg, jobs, &Cache{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	// Segment-backed stream.
	var buf bytes.Buffer
	src := SourceFor(dir)
	if err := MergeTo(&buf, cfg, jobs, src); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), oracle) {
		t.Fatalf("segment-backed stream differs from oracle:\n%s\nvs\n%s", buf.Bytes(), oracle)
	}

	// JSON-only stream (no segment layer at all).
	buf.Reset()
	if err := MergeTo(&buf, cfg, jobs, MergeSource{Cache: &Cache{Dir: dir}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), oracle) {
		t.Fatal("JSON-only stream differs from oracle")
	}

	// Segments-only: delete every JSON entry; the stream must still be
	// byte-identical (the rows were derived from those entries).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() && e.Name() != SegmentSubdir {
			if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	buf.Reset()
	if err := MergeTo(&buf, cfg, jobs, SourceFor(dir)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), oracle) {
		t.Fatal("segments-only stream differs from oracle")
	}

	// Empty job set: canonical null document.
	buf.Reset()
	if err := MergeTo(&buf, cfg, nil, src); err != nil {
		t.Fatal(err)
	}
	want, _ := MergeBytes(cfg, nil, &Cache{Dir: dir})
	if !bytes.Equal(buf.Bytes(), want) || buf.String() != "null\n" {
		t.Fatalf("empty merge = %q, want %q", buf.String(), want)
	}
}

func TestMergeTruncatedSegmentFallsBackToJSON(t *testing.T) {
	cfg := core.DefaultConfig()
	jobs := testJobs()
	dir := warmSegmentedCache(t, cfg, jobs)
	oracle, err := MergeBytes(cfg, jobs, &Cache{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	segDir := filepath.Join(dir, SegmentSubdir)
	names, err := os.ReadDir(segDir)
	if err != nil || len(names) == 0 {
		t.Fatalf("no segment files: %v", err)
	}
	victim := filepath.Join(segDir, names[0].Name())
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	src := SourceFor(dir)
	var buf bytes.Buffer
	if err := MergeTo(&buf, cfg, jobs, src); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), oracle) {
		t.Fatal("fallback stream differs from oracle")
	}
	if src.Segments.CorruptRows() == 0 {
		t.Fatal("truncated segment not counted")
	}
}

func TestMergeCheckAndStreamErrors(t *testing.T) {
	cfg := core.DefaultConfig()
	jobs := testJobs()
	dir := warmSegmentedCache(t, cfg, jobs[:len(jobs)-2])

	// The pre-check and the oracle must report the missing work with
	// identical errors.
	_, oracleErr := MergeBytes(cfg, jobs, &Cache{Dir: dir})
	checkErr := MergeCheck(cfg, jobs, SourceFor(dir))
	if oracleErr == nil || checkErr == nil {
		t.Fatalf("missing jobs not reported: %v / %v", oracleErr, checkErr)
	}
	if oracleErr.Error() != checkErr.Error() {
		t.Fatalf("error text drifted:\n%v\nvs\n%v", checkErr, oracleErr)
	}
	// A complete sweep passes the check.
	if err := MergeCheck(cfg, jobs[:len(jobs)-2], SourceFor(dir)); err != nil {
		t.Fatal(err)
	}
	// The stream itself also fails on a missing key.
	if err := MergeTo(&bytes.Buffer{}, cfg, jobs, SourceFor(dir)); err == nil {
		t.Fatal("MergeTo ignored a missing key")
	}
}

func TestMergeNDJSON(t *testing.T) {
	cfg := core.DefaultConfig()
	jobs := testJobs()
	dir := warmSegmentedCache(t, cfg, jobs)

	var buf bytes.Buffer
	if err := MergeNDJSON(&buf, cfg, jobs, SourceFor(dir)); err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(cfg, jobs, &Cache{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	i := 0
	for sc.Scan() {
		if i >= len(merged) {
			t.Fatalf("more NDJSON lines than merged rows")
		}
		want, _ := json.Marshal(merged[i])
		if sc.Text() != string(want) {
			t.Fatalf("line %d:\n%s\nwant\n%s", i, sc.Text(), want)
		}
		i++
	}
	if i != len(merged) {
		t.Fatalf("%d NDJSON lines, want %d", i, len(merged))
	}
}

// TestMergeTopologiesByteIdentity is the cross-topology acceptance
// gate: for every built-in domain topology, the streaming columnar
// merge must reproduce the JSON oracle byte for byte (per-domain slice
// lengths differ across topologies, so this exercises the float-list
// codec at every width).
func TestMergeTopologiesByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations per topology")
	}
	for _, name := range arch.TopologyNames() {
		m := &Manifest{
			Benchmarks: []string{"g721_decode"},
			Policies:   []string{PolicyBaseline, PolicyOnline, PolicySingleClock},
			Topology:   name,
		}
		jobs, err := m.Jobs()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfg := m.Config()
		dir := t.TempDir()
		eng := New(cfg)
		eng.Cache = &Cache{Dir: dir}
		eng.Segments = SegmentStoreFor(dir)
		if _, _, err := eng.Run(context.Background(), jobs); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		oracle, err := MergeBytes(cfg, jobs, &Cache{Dir: dir})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		if err := MergeTo(&buf, cfg, jobs, SourceFor(dir)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(buf.Bytes(), oracle) {
			t.Errorf("%s: columnar merge differs from JSON oracle", name)
		}
		// And with the JSON layer gone, segments alone reproduce it.
		entries, _ := os.ReadDir(dir)
		for _, e := range entries {
			if e.IsDir() && e.Name() != SegmentSubdir {
				os.RemoveAll(filepath.Join(dir, e.Name()))
			}
		}
		buf.Reset()
		if err := MergeTo(&buf, cfg, jobs, SourceFor(dir)); err != nil {
			t.Fatalf("%s segments-only: %v", name, err)
		}
		if !bytes.Equal(buf.Bytes(), oracle) {
			t.Errorf("%s: segments-only merge differs from JSON oracle", name)
		}
	}
}

// countingWriter discards output while sampling live heap every chunk
// of written bytes.
type countingWriter struct {
	n        int64
	nextSamp int64
	peak     uint64
	base     uint64
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	if w.n >= w.nextSamp {
		w.nextSamp = w.n + 1<<20
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > w.base && ms.HeapAlloc-w.base > w.peak {
			w.peak = ms.HeapAlloc - w.base
		}
	}
	return len(p), nil
}

// TestMergeToBoundedMemory streams a 10k-row synthetic sweep and
// asserts the merge path's live heap stays a small fraction of the
// output size — the property the daemon's /results endpoint relies on.
func TestMergeToBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates a 10k-row synthetic sweep")
	}
	cfg := core.DefaultConfig()
	const n = 10_000
	jobs := make([]Job, n)
	rows := make([]Merged, n)
	for i := range jobs {
		j := Job{Bench: "synthetic", Policy: PolicyOffline, Delta: float64(i) / 16}
		out := &Outcome{GlobalMHz: i}
		out.Res.Instructions = int64(i) * 977
		out.Res.TimePs = int64(i) * 13_331
		out.Res.EnergyPJ = float64(i) * 0.75
		out.Res.DomainPJ = make([]float64, 16)
		out.Res.AvgMHz = make([]float64, 16)
		for d := 0; d < 16; d++ {
			out.Res.DomainPJ[d] = float64(i*17+d) * 0.125
			out.Res.AvgMHz[d] = float64(300 + (i+d)%700)
		}
		jobs[i] = j
		rows[i] = Merged{Key: Key(cfg, j), Job: j, Outcome: out}
	}
	dir := t.TempDir()
	st := SegmentStoreFor(dir)
	if err := st.Append(rows); err != nil {
		t.Fatal(err)
	}
	src := MergeSource{Segments: SegmentStoreFor(dir)}
	// Prime the store's decoded form so the baseline below includes it.
	if _, ok := src.Get(rows[0].Key); !ok {
		t.Fatal("segment store empty")
	}
	rows = nil // the stream must not need the materialized rows

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w := &countingWriter{base: ms.HeapAlloc}
	if err := MergeTo(w, cfg, jobs, src); err != nil {
		t.Fatal(err)
	}
	if w.n < 4<<20 {
		t.Fatalf("synthetic output only %d bytes; grow the fixture", w.n)
	}
	if limit := uint64(w.n) / 3; w.peak > limit {
		t.Fatalf("merge held %d bytes live for %d bytes of output (limit %d)", w.peak, w.n, limit)
	}
}
