package sweep

import (
	"fmt"
	"sync"

	"repro/internal/calltree"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/edit"
	"repro/internal/workload"
)

// executor runs jobs through the core pipeline. Training (phases one
// and two) is delta-independent and by far the most expensive part of a
// profile-driven job, so profiles are memoized per (benchmark, scheme,
// input) with per-key singleflight: a threshold sweep trains once and
// replans cheaply per delta point, even when the points run
// concurrently. Persistent caching stays at the engine layer — only
// final scalar outcomes hit the disk, never profiles.
type executor struct {
	eng *Engine

	mu       sync.Mutex
	profiles map[string]*profFlight
}

type profFlight struct {
	done chan struct{}
	prof *core.Profile
}

func newExecutor(e *Engine) *executor {
	return &executor{eng: e, profiles: make(map[string]*profFlight)}
}

// profile trains (or returns the memoized) profile for one benchmark
// and scheme. onRef trains on the reference input itself, which is how
// the off-line oracle gets its perfect future knowledge.
func (x *executor) profile(b *workload.Benchmark, scheme calltree.Scheme, onRef bool) *core.Profile {
	key := b.Name() + "\x00" + scheme.Name
	in, window := b.Train, b.TrainWindow
	if onRef {
		key += "\x00ref"
		in, window = b.Ref, b.RefWindow
	}
	x.mu.Lock()
	if f, ok := x.profiles[key]; ok {
		x.mu.Unlock()
		<-f.done
		return f.prof
	}
	f := &profFlight{done: make(chan struct{})}
	x.profiles[key] = f
	x.mu.Unlock()

	f.prof = core.Train(x.eng.Cfg, b.Prog, in, window, scheme)
	close(f.done)
	return f.prof
}

// plan returns the edit plan of a profile at the job's delta,
// replanning from the memoized shaken histograms when the delta differs
// from the configuration's.
func (x *executor) plan(prof *core.Profile, delta float64) *edit.Plan {
	if delta == 0 || delta == x.eng.Cfg.DeltaPct {
		return prof.Plan
	}
	return core.Replan(prof, delta)
}

// execute runs one cache-missed job to completion.
func (x *executor) execute(job Job) (*Outcome, error) {
	b := workload.ByName(job.Bench)
	if b == nil {
		return nil, fmt.Errorf("unknown benchmark %q", job.Bench)
	}
	cfg := x.eng.Cfg
	out := &Outcome{}
	switch job.Policy {
	case PolicyBaseline:
		out.Res = core.RunBaseline(cfg, b.Prog, b.Ref, b.RefWindow)

	case PolicySingleClock:
		mhz := job.MHz
		if mhz == 0 {
			mhz = cfg.Sim.BaseMHz
		}
		out.Res = core.RunSingleClock(cfg, b.Prog, b.Ref, b.RefWindow, mhz)

	case PolicyOffline:
		prof := x.profile(b, calltree.LFCP, true)
		out.Res, _ = core.RunEdited(cfg, b.Prog, b.Ref, b.RefWindow, x.plan(prof, job.Delta), true)

	case PolicyOnline:
		if job.Aggressiveness != 0 {
			cfg.Online.Aggressiveness = job.Aggressiveness
		}
		out.Res = core.RunOnline(cfg, b.Prog, b.Ref, b.RefWindow)

	case PolicyGlobal:
		// Global DVS is matched to the off-line runtime; resolve both
		// dependencies through the engine so they are cached and shared
		// like any other job.
		sc, _, err := x.eng.Do(Job{Bench: job.Bench, Policy: PolicySingleClock})
		if err != nil {
			return nil, err
		}
		off, _, err := x.eng.Do(Job{Bench: job.Bench, Policy: PolicyOffline})
		if err != nil {
			return nil, err
		}
		out.GlobalMHz = control.GlobalDVSMHz(sc.Res.TimePs, off.Res.TimePs)
		out.Res = core.RunSingleClock(cfg, b.Prog, b.Ref, b.RefWindow, out.GlobalMHz)

	case PolicyScheme:
		scheme, ok := SchemeByName(job.Scheme)
		if !ok {
			return nil, fmt.Errorf("unknown context scheme %q", job.Scheme)
		}
		prof := x.profile(b, scheme, false)
		plan := x.plan(prof, job.Delta)
		out.Res, out.Stats = core.RunEdited(cfg, b.Prog, b.Ref, b.RefWindow, plan, false)
		out.StaticReconfig, out.StaticInstr = plan.StaticPoints()

	default:
		return nil, fmt.Errorf("unknown policy %q", job.Policy)
	}
	return out, nil
}
