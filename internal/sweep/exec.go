package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/calltree"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/edit"
	"repro/internal/isa"
	"repro/internal/workload"
)

// executor runs jobs through the core pipeline. Training (phases one
// and two) is delta-independent and by far the most expensive part of a
// profile-driven job, so profiles are memoized per (benchmark, scheme,
// input) with per-key singleflight: a threshold sweep trains once and
// replans cheaply per delta point, even when the points run
// concurrently. Persistent caching stays at the engine layer — only
// final scalar outcomes hit the disk, never profiles.
//
// The executor also keeps a small LRU of recorded dynamic streams: a
// policy grid simulates the same (benchmark, input) stream once per
// policy, and regenerating it costs roughly a third of each run. The
// cache is bounded (a recording is ~25 B/instruction), and a recorded
// replay is item-for-item identical to a generating walk, so outcomes
// — and therefore cache keys and report bytes — are unchanged.
type executor struct {
	eng *Engine

	mu       sync.Mutex
	profiles map[string]*profFlight

	smu     sync.Mutex
	streams map[string]*streamFlight
	lru     []string // keys, least recent first
}

type profFlight struct {
	done chan struct{}
	prof *core.Profile
}

type streamFlight struct {
	done     chan struct{}
	rec      *isa.Recording
	recorded bool
}

// maxStreams bounds retained recordings. Workers process jobs
// benchmark-major, so at most one stream per worker is typically live;
// sizing by worker count (plus slack for the train/ref pairs training
// jobs touch) keeps concurrent job grids from thrashing the cache into
// repeated re-recordings. Recordings still in flight are never evicted
// — eviction mid-recording would make concurrent jobs re-record the
// same stream — so momentary occupancy can exceed the bound by the
// number of in-flight recordings, which the worker pool already caps.
func (x *executor) maxStreams() int {
	w := x.eng.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w + 2
}

func newExecutor(e *Engine) *executor {
	return &executor{
		eng:      e,
		profiles: make(map[string]*profFlight),
		streams:  make(map[string]*streamFlight),
	}
}

// feeder returns a replayable stream for one benchmark input, recording
// it on first use. Concurrent requests for the same stream share one
// recording.
func (x *executor) feeder(b *workload.Benchmark, ref bool) isa.Feeder {
	in, window := b.Train, b.TrainWindow
	if ref {
		in, window = b.Ref, b.RefWindow
	}
	key := b.Name() + "\x00" + in.Name
	x.smu.Lock()
	if f, ok := x.streams[key]; ok {
		// Refresh LRU position.
		for i, k := range x.lru {
			if k == key {
				x.lru = append(append(x.lru[:i:i], x.lru[i+1:]...), key)
				break
			}
		}
		x.smu.Unlock()
		<-f.done
		return f.rec
	}
	f := &streamFlight{done: make(chan struct{})}
	x.streams[key] = f
	x.lru = append(x.lru, key)
	if limit := x.maxStreams(); len(x.lru) > limit {
		// Evict the least recent completed recording; skip in-flight ones.
		for i := 0; i < len(x.lru); i++ {
			k := x.lru[i]
			if e, ok := x.streams[k]; ok && e.recorded {
				x.lru = append(x.lru[:i:i], x.lru[i+1:]...)
				delete(x.streams, k)
				break
			}
		}
	}
	x.smu.Unlock()

	f.rec = isa.RecordSized(b.Prog, in, window)
	x.smu.Lock()
	f.recorded = true
	x.smu.Unlock()
	close(f.done)
	return f.rec
}

// profile trains (or returns the memoized) profile for one benchmark
// and scheme. onRef trains on the reference input itself, which is how
// the off-line oracle gets its perfect future knowledge.
func (x *executor) profile(b *workload.Benchmark, scheme calltree.Scheme, onRef bool) *core.Profile {
	key := b.Name() + "\x00" + scheme.Name
	window := b.TrainWindow
	if onRef {
		key += "\x00ref"
		window = b.RefWindow
	}
	x.mu.Lock()
	if f, ok := x.profiles[key]; ok {
		x.mu.Unlock()
		<-f.done
		return f.prof
	}
	f := &profFlight{done: make(chan struct{})}
	x.profiles[key] = f
	x.mu.Unlock()

	f.prof = core.TrainFeed(x.eng.Cfg, x.feeder(b, onRef), window, scheme)
	close(f.done)
	return f.prof
}

// plan returns the edit plan of a profile at the job's delta,
// replanning from the memoized shaken histograms when the delta differs
// from the configuration's.
func (x *executor) plan(prof *core.Profile, delta float64) *edit.Plan {
	if delta == 0 || delta == x.eng.Cfg.DeltaPct {
		return prof.Plan
	}
	return core.Replan(prof, delta)
}

// execute runs one cache-missed job to completion.
func (x *executor) execute(job Job) (*Outcome, error) {
	b := workload.ByName(job.Bench)
	if b == nil {
		return nil, fmt.Errorf("unknown benchmark %q", job.Bench)
	}
	cfg := x.eng.Cfg
	out := &Outcome{}
	switch job.Policy {
	case PolicyBaseline:
		out.Res = core.RunBaselineFeed(cfg, x.feeder(b, true), b.RefWindow)

	case PolicySingleClock:
		mhz := job.MHz
		if mhz == 0 {
			mhz = cfg.Sim.BaseMHz
		}
		out.Res = core.RunSingleClockFeed(cfg, x.feeder(b, true), b.RefWindow, mhz)

	case PolicyOffline:
		prof := x.profile(b, calltree.LFCP, true)
		out.Res, _ = core.RunEditedFeed(cfg, x.feeder(b, true), b.RefWindow, x.plan(prof, job.Delta), true)

	case PolicyOnline:
		if job.Aggressiveness != 0 {
			cfg.Online.Aggressiveness = job.Aggressiveness
		}
		out.Res = core.RunOnlineFeed(cfg, x.feeder(b, true), b.RefWindow)

	case PolicyGlobal:
		// Global DVS is matched to the off-line runtime; resolve both
		// dependencies through the engine so they are cached and shared
		// like any other job.
		sc, _, err := x.eng.Do(Job{Bench: job.Bench, Policy: PolicySingleClock})
		if err != nil {
			return nil, err
		}
		off, _, err := x.eng.Do(Job{Bench: job.Bench, Policy: PolicyOffline})
		if err != nil {
			return nil, err
		}
		out.GlobalMHz = control.GlobalDVSMHz(sc.Res.TimePs, off.Res.TimePs)
		out.Res = core.RunSingleClockFeed(cfg, x.feeder(b, true), b.RefWindow, out.GlobalMHz)

	case PolicyScheme:
		scheme, ok := SchemeByName(job.Scheme)
		if !ok {
			return nil, fmt.Errorf("unknown context scheme %q", job.Scheme)
		}
		prof := x.profile(b, scheme, false)
		plan := x.plan(prof, job.Delta)
		out.Res, out.Stats = core.RunEditedFeed(cfg, x.feeder(b, true), b.RefWindow, plan, false)
		out.StaticReconfig, out.StaticInstr = plan.StaticPoints()

	default:
		return nil, fmt.Errorf("unknown policy %q", job.Policy)
	}
	return out, nil
}
