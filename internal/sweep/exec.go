package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/artifact"
	"repro/internal/calltree"
	"repro/internal/core"
	"repro/internal/edit"
	"repro/internal/isa"
	"repro/internal/workload"
)

// executor is the engine's Runtime: it resolves a job's declared
// dependencies and hands the resolved values to the job's policy.
// Training (phases one and two) is delta-independent and by far the
// most expensive part of a profile-driven job, so trained profiles
// resolve through two layers keyed by their content-addressed artifact
// key: an in-process memo with per-key singleflight, then the engine's
// persistent artifact store — a threshold sweep trains once and replans
// cheaply per delta point, even when the points run concurrently, and a
// fleet of processes sharing one store directory trains once total.
//
// The executor also keeps a small LRU of recorded dynamic streams: a
// policy grid simulates the same (benchmark, input) stream once per
// policy, and regenerating it costs roughly a third of each run. The
// cache is bounded (a recording is ~25 B/instruction), and a recorded
// replay is item-for-item identical to a generating walk, so outcomes
// — and therefore cache keys and report bytes — are unchanged.
type executor struct {
	eng *Engine

	mu       sync.Mutex
	profiles map[string]*profFlight // keyed by artifact key

	smu     sync.Mutex
	streams map[string]*streamFlight
	lru     []string // keys, least recent first
}

type profFlight struct {
	done chan struct{}
	prof *core.Profile
}

type streamFlight struct {
	done     chan struct{}
	rec      *isa.Recording
	recorded bool
}

// maxStreams bounds retained recordings. Workers process jobs
// benchmark-major, so at most one stream per worker is typically live;
// sizing by worker count (plus slack for the train/ref pairs training
// jobs touch) keeps concurrent job grids from thrashing the cache into
// repeated re-recordings. Recordings still in flight are never evicted
// — eviction mid-recording would make concurrent jobs re-record the
// same stream — so momentary occupancy can exceed the bound by the
// number of in-flight recordings, which the worker pool already caps.
func (x *executor) maxStreams() int {
	w := x.eng.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w + 2
}

func newExecutor(e *Engine) *executor {
	return &executor{
		eng:      e,
		profiles: make(map[string]*profFlight),
		streams:  make(map[string]*streamFlight),
	}
}

// Config returns the engine configuration (Runtime).
func (x *executor) Config() core.Config { return x.eng.Cfg }

// Feeder returns a replayable stream for one benchmark input, recording
// it on first use (Runtime). Concurrent requests for the same stream
// share one recording.
func (x *executor) Feeder(b *workload.Benchmark, ref bool) isa.Feeder {
	in, window := b.Train, b.TrainWindow
	if ref {
		in, window = b.Ref, b.RefWindow
	}
	key := b.Name() + "\x00" + in.Name
	x.smu.Lock()
	if f, ok := x.streams[key]; ok {
		// Refresh LRU position.
		for i, k := range x.lru {
			if k == key {
				x.lru = append(append(x.lru[:i:i], x.lru[i+1:]...), key)
				break
			}
		}
		x.smu.Unlock()
		<-f.done
		return f.rec
	}
	f := &streamFlight{done: make(chan struct{})}
	x.streams[key] = f
	x.lru = append(x.lru, key)
	if limit := x.maxStreams(); len(x.lru) > limit {
		// Evict the least recent completed recording; skip in-flight ones.
		for i := 0; i < len(x.lru); i++ {
			k := x.lru[i]
			if e, ok := x.streams[k]; ok && e.recorded {
				x.lru = append(x.lru[:i:i], x.lru[i+1:]...)
				delete(x.streams, k)
				break
			}
		}
	}
	x.smu.Unlock()

	f.rec = isa.RecordSized(b.Prog, in, window)
	x.smu.Lock()
	f.recorded = true
	x.smu.Unlock()
	close(f.done)
	return f.rec
}

// profile resolves one trained profile: in-process memo (with per-key
// singleflight), then the persistent artifact store, then training —
// which persists the new artifact so sibling processes sharing the
// store directory never retrain it.
func (x *executor) profile(spec ProfileSpec) (*core.Profile, error) {
	b := workload.ByName(spec.Bench)
	if b == nil {
		return nil, fmt.Errorf("unknown benchmark %q", spec.Bench)
	}
	scheme, ok := SchemeByName(spec.Scheme)
	if !ok {
		return nil, fmt.Errorf("unknown context scheme %q", spec.Scheme)
	}
	key := spec.ArtifactKey(x.eng.Cfg)
	x.mu.Lock()
	if f, ok := x.profiles[key]; ok {
		x.mu.Unlock()
		<-f.done
		return f.prof, nil
	}
	f := &profFlight{done: make(chan struct{})}
	x.profiles[key] = f
	x.mu.Unlock()

	f.prof = x.resolveProfile(key, spec, b, scheme)
	close(f.done)
	return f.prof, nil
}

// resolveProfile loads a stored profile or trains and stores a new one.
// Store damage is never fatal: corrupt entries are counted, surfaced
// once, and overwritten by the fresh training.
func (x *executor) resolveProfile(key string, spec ProfileSpec, b *workload.Benchmark, scheme calltree.Scheme) *core.Profile {
	cfg := x.eng.Cfg
	if st := x.eng.Artifacts; st != nil {
		payload, status := st.Load(key, artifact.KindProfile)
		switch status {
		case artifact.Hit:
			prof, err := core.DecodeProfile(payload)
			if err == nil {
				// The stored state is delta-independent; rebuild the plan
				// at this engine's calibrated delta.
				prof.Plan = core.Replan(prof, cfg.DeltaPct)
				return prof
			}
			x.eng.noteCorrupt(st.EntryPath(key))
		case artifact.Corrupt:
			x.eng.noteCorrupt(st.EntryPath(key))
		}
	}
	_, window := spec.inputWindow(b)
	prof := core.TrainFeed(cfg, x.Feeder(b, spec.OnRef), window, scheme)
	if st := x.eng.Artifacts; st != nil {
		payload, err := core.EncodeProfile(prof)
		if err == nil {
			err = st.Put(key, artifact.KindProfile, payload)
		}
		if err != nil {
			// Training already succeeded; a persistence failure must not
			// throw that work away. Keep the profile memoized in process
			// and warn once.
			x.eng.warnPersist(err)
		}
	}
	return prof
}

// Plan returns the edit plan of a profile at the job's delta (Runtime),
// replanning from the memoized shaken histograms when the delta differs
// from the configuration's.
func (x *executor) Plan(prof *core.Profile, delta float64) *edit.Plan {
	if delta == 0 || delta == x.eng.Cfg.DeltaPct {
		return prof.Plan
	}
	return core.Replan(prof, delta)
}

// execute runs one cache-missed job to completion: resolve the job
// policy's declared dependencies — result dependencies through the
// engine (cached and shared like any other job), profile dependencies
// through the artifact layers — then let the policy build its outcome.
func (x *executor) execute(job Job) (*Outcome, error) {
	if workload.ByName(job.Bench) == nil {
		return nil, fmt.Errorf("unknown benchmark %q", job.Bench)
	}
	p, ok := PolicyByName(job.Policy)
	if !ok {
		return nil, fmt.Errorf("unknown policy %q", job.Policy)
	}
	deps := p.Deps(x.eng.Cfg, job)
	resolved := make([]Resolved, len(deps))
	for i, d := range deps {
		if d.Profile != nil {
			prof, err := x.profile(*d.Profile)
			if err != nil {
				return nil, err
			}
			resolved[i].Profile = prof
		} else {
			out, _, err := x.eng.Do(*d.Job)
			if err != nil {
				return nil, err
			}
			resolved[i].Outcome = out
		}
	}
	return p.Run(x, job, resolved)
}
