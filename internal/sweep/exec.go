package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/calltree"
	"repro/internal/core"
	"repro/internal/edit"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/workload"
)

// executor is the engine's Runtime: it resolves a job's declared
// dependencies and hands the resolved values to the job's policy.
// Training (phases one and two) is delta-independent and by far the
// most expensive part of a profile-driven job, so trained profiles
// resolve through two layers keyed by their content-addressed artifact
// key: an in-process memo with per-key singleflight, then the engine's
// persistent artifact store — a threshold sweep trains once and replans
// cheaply per delta point, even when the points run concurrently, and a
// fleet of processes sharing one store directory trains once total.
//
// The executor also keeps a small LRU of recorded dynamic streams: a
// policy grid simulates the same (benchmark, input) stream once per
// policy, and regenerating it costs roughly a third of each run. The
// cache is bounded (a packed recording is ~13 B/instruction), and a recorded
// replay is item-for-item identical to a generating walk, so outcomes
// — and therefore cache keys and report bytes — are unchanged.
type executor struct {
	eng *Engine

	mu       sync.Mutex
	profiles map[string]*profFlight // keyed by artifact key

	smu      sync.Mutex
	streams  map[string]*streamFlight
	lru      []string // keys, least recent first
	reserved int      // extra stream slots claimed by running batches
}

type profFlight struct {
	done chan struct{}
	prof *core.Profile
}

type streamFlight struct {
	done     chan struct{}
	rec      *isa.PackedStream
	recorded bool
}

// maxStreams bounds retained recordings. The base bound is the
// engine's RecordingCache knob, defaulting to worker count plus slack:
// workers process jobs benchmark-major, so at most one stream per
// worker is typically live, and the slack covers the train/ref pair a
// training job touches. Running batches additionally reserve the slots
// their anchor group replays (reserveStreams), so a lockstep batch can
// never have its own streams evicted under it by concurrent groups.
// Recordings still in flight are never evicted — eviction mid-recording
// would make concurrent jobs re-record the same stream — so momentary
// occupancy can exceed the bound by the number of in-flight recordings,
// which the worker pool already caps.
func (x *executor) maxStreams() int {
	base := x.eng.RecordingCache
	if base <= 0 {
		w := x.eng.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		base = w + 2
	}
	return base + x.reserved
}

// reserveStreams adjusts the batch reservation (delta may be negative);
// callers bracket each lockstep batch with a matching pair.
func (x *executor) reserveStreams(delta int) {
	x.smu.Lock()
	x.reserved += delta
	x.smu.Unlock()
}

func newExecutor(e *Engine) *executor {
	return &executor{
		eng:      e,
		profiles: make(map[string]*profFlight),
		streams:  make(map[string]*streamFlight),
	}
}

// Config returns the engine configuration (Runtime).
func (x *executor) Config() core.Config { return x.eng.Cfg }

// Feeder returns a replayable stream for one benchmark input, recording
// it on first use (Runtime). Concurrent requests for the same stream
// share one recording.
func (x *executor) Feeder(b *workload.Benchmark, ref bool) isa.Feeder {
	return x.packed(b, ref)
}

// packed is Feeder with the concrete packed-stream type, which the
// batch executor needs for lockstep replay.
func (x *executor) packed(b *workload.Benchmark, ref bool) *isa.PackedStream {
	in, window := b.Train, b.TrainWindow
	if ref {
		in, window = b.Ref, b.RefWindow
	}
	key := b.Name() + "\x00" + in.Name
	x.smu.Lock()
	if f, ok := x.streams[key]; ok {
		// Refresh LRU position.
		for i, k := range x.lru {
			if k == key {
				x.lru = append(append(x.lru[:i:i], x.lru[i+1:]...), key)
				break
			}
		}
		x.smu.Unlock()
		<-f.done
		return f.rec
	}
	f := &streamFlight{done: make(chan struct{})}
	x.streams[key] = f
	x.lru = append(x.lru, key)
	if limit := x.maxStreams(); len(x.lru) > limit {
		// Evict the least recent completed recording; skip in-flight ones.
		for i := 0; i < len(x.lru); i++ {
			k := x.lru[i]
			if e, ok := x.streams[k]; ok && e.recorded {
				x.lru = append(x.lru[:i:i], x.lru[i+1:]...)
				delete(x.streams, k)
				break
			}
		}
	}
	x.smu.Unlock()

	f.rec = x.resolveStream(b, in, window, ref)
	x.smu.Lock()
	f.recorded = true
	x.smu.Unlock()
	close(f.done)
	return f.rec
}

// resolveStream materializes one benchmark input's packed stream: the
// on-disk stream store when the engine has one (corrupt entries are
// counted and treated as misses), else a fresh generating walk, which
// is then persisted so the next cold process loads instead of walking.
func (x *executor) resolveStream(b *workload.Benchmark, in isa.Input, window int64, ref bool) *isa.PackedStream {
	start := time.Now()
	s, key, outcome := x.loadOrRecordStream(b, in, window, ref)
	d := time.Since(start)
	e := x.eng
	e.phases.streamNS.Add(int64(d))
	if outcome == "hit" {
		e.phases.streamHits.Add(1)
	} else {
		e.phases.streamRecords.Add(1)
	}
	if tr := e.Trace; tr != nil {
		tr.Emit(obs.Span{
			Key:     key,
			Phase:   "stream",
			Bench:   b.Name(),
			Outcome: outcome,
			StartNS: tr.Now() - int64(d),
			DurNS:   int64(d),
		})
	}
	return s
}

// loadOrRecordStream is resolveStream's store/walk logic; it reports
// the stream key (empty without a store) and how the stream resolved
// ("hit" from the store, "recorded" by a generating walk).
func (x *executor) loadOrRecordStream(b *workload.Benchmark, in isa.Input, window int64, ref bool) (*isa.PackedStream, string, string) {
	st := x.eng.Streams
	if st == nil {
		return isa.RecordPackedSized(b.Prog, in, window), "", "recorded"
	}
	key := StreamKey(b, ref)
	s, status := st.Load(key)
	switch status {
	case StreamHit:
		x.eng.nStream.Add(1)
		return s, key, "hit"
	case StreamCorrupt:
		x.eng.noteCorrupt(st.EntryPath(key))
	}
	s = isa.RecordPackedSized(b.Prog, in, window)
	if err := st.Put(key, s); err != nil {
		x.eng.warnPersist(err)
	}
	return s, key, "recorded"
}

// profile resolves one trained profile: in-process memo (with per-key
// singleflight), then the persistent artifact store, then training —
// which persists the new artifact so sibling processes sharing the
// store directory never retrain it.
func (x *executor) profile(spec ProfileSpec) (*core.Profile, error) {
	b := workload.ByName(spec.Bench)
	if b == nil {
		return nil, fmt.Errorf("unknown benchmark %q", spec.Bench)
	}
	scheme, ok := SchemeByName(spec.Scheme)
	if !ok {
		return nil, fmt.Errorf("unknown context scheme %q", spec.Scheme)
	}
	key := spec.ArtifactKey(x.eng.Cfg)
	x.mu.Lock()
	if f, ok := x.profiles[key]; ok {
		x.mu.Unlock()
		start := time.Now()
		<-f.done
		x.noteProfile(key, spec.Bench, "memo", time.Since(start))
		return f.prof, nil
	}
	f := &profFlight{done: make(chan struct{})}
	x.profiles[key] = f
	x.mu.Unlock()

	f.prof = x.resolveProfile(key, spec, b, scheme)
	close(f.done)
	return f.prof, nil
}

// noteProfile accounts one profile-dependency resolution in the phase
// breakdown and, when tracing, as a "profile" span whose outcome names
// the answering layer (memo, artifact, trained).
func (x *executor) noteProfile(key, bench, outcome string, d time.Duration) {
	e := x.eng
	switch outcome {
	case "artifact":
		e.phases.artifactHits.Add(1)
	case "trained":
		e.phases.trained.Add(1)
	}
	if tr := e.Trace; tr != nil {
		tr.Emit(obs.Span{
			Key:     key,
			Phase:   "profile",
			Bench:   bench,
			Outcome: outcome,
			StartNS: tr.Now() - int64(d),
			DurNS:   int64(d),
		})
	}
}

// resolveProfile loads a stored profile or trains and stores a new one.
// Store damage is never fatal: corrupt entries are counted, surfaced
// once, and overwritten by the fresh training.
func (x *executor) resolveProfile(key string, spec ProfileSpec, b *workload.Benchmark, scheme calltree.Scheme) *core.Profile {
	start := time.Now()
	if prof := x.loadStored(key); prof != nil {
		x.noteProfile(key, spec.Bench, "artifact", time.Since(start))
		return prof
	}
	_, window := spec.inputWindow(b)
	// Resolve the stream before the training window opens so stream
	// decode time stays in the "stream" phase, not in "train".
	feed := x.Feeder(b, spec.OnRef)
	cfg := x.eng.Cfg
	sink := &phaseSink{e: x.eng, key: key, bench: spec.Bench}
	cfg.Observe = sink
	t0 := time.Now()
	prof := core.TrainFeed(cfg, feed, window, scheme)
	sink.finish(time.Since(t0))
	x.persistProfile(key, prof)
	x.noteProfile(key, spec.Bench, "trained", time.Since(start))
	return prof
}

// loadStored resolves a profile from the artifact store, replanning at
// the engine's calibrated delta; nil means miss (or counted corruption).
func (x *executor) loadStored(key string) *core.Profile {
	st := x.eng.Artifacts
	if st == nil {
		return nil
	}
	payload, status := st.Load(key, artifact.KindProfile)
	switch status {
	case artifact.Hit:
		prof, err := core.DecodeProfile(payload)
		if err == nil {
			// The stored state is delta-independent; rebuild the plan
			// at this engine's calibrated delta.
			prof.Plan = core.Replan(prof, x.eng.Cfg.DeltaPct)
			return prof
		}
		x.eng.noteCorrupt(st.EntryPath(key))
	case artifact.Corrupt:
		x.eng.noteCorrupt(st.EntryPath(key))
	}
	return nil
}

// persistProfile stores a freshly trained profile. Training already
// succeeded; a persistence failure must not throw that work away, so
// the profile stays memoized in process and the engine warns once.
func (x *executor) persistProfile(key string, prof *core.Profile) {
	st := x.eng.Artifacts
	if st == nil {
		return
	}
	payload, err := core.EncodeProfile(prof)
	if err == nil {
		err = st.Put(key, artifact.KindProfile, payload)
	}
	if err != nil {
		x.eng.warnPersist(err)
	}
}

// profileBatch resolves several trained profiles at once, batching the
// trainings that miss every cache layer: specs sharing one training
// stream (benchmark, input) train in a single multi-scheme pass
// (core.TrainFeedBatch) that shares the phase-2 collection run and the
// shake work across schemes, producing byte-identical artifacts to
// spec-by-spec training. Specs already memoized, in flight, or stored
// resolve as x.profile would; invalid specs (unknown benchmark or
// scheme) are skipped so the per-job path surfaces their error.
func (x *executor) profileBatch(specs []ProfileSpec) {
	type claim struct {
		spec ProfileSpec
		key  string
		f    *profFlight
		b    *workload.Benchmark
	}
	var mine []claim
	x.mu.Lock()
	for _, spec := range specs {
		b := workload.ByName(spec.Bench)
		if _, ok := SchemeByName(spec.Scheme); b == nil || !ok {
			continue
		}
		key := spec.ArtifactKey(x.eng.Cfg)
		if _, exists := x.profiles[key]; exists {
			continue
		}
		f := &profFlight{done: make(chan struct{})}
		x.profiles[key] = f
		mine = append(mine, claim{spec, key, f, b})
	}
	x.mu.Unlock()

	// Serve claims from the artifact store; group the rest by training
	// stream.
	groups := make(map[string][]int)
	var order []string
	for i := range mine {
		c := &mine[i]
		t0 := time.Now()
		if prof := x.loadStored(c.key); prof != nil {
			x.noteProfile(c.key, c.spec.Bench, "artifact", time.Since(t0))
			c.f.prof = prof
			close(c.f.done)
			continue
		}
		gk := c.spec.Bench
		if c.spec.OnRef {
			gk += "\x00ref"
		}
		if _, ok := groups[gk]; !ok {
			order = append(order, gk)
		}
		groups[gk] = append(groups[gk], i)
	}

	for _, gk := range order {
		idx := groups[gk]
		first := &mine[idx[0]]
		schemes := make([]calltree.Scheme, len(idx))
		for k, i := range idx {
			schemes[k], _ = SchemeByName(mine[i].spec.Scheme)
		}
		_, window := first.spec.inputWindow(first.b)
		feed := x.Feeder(first.b, first.spec.OnRef)
		cfg := x.eng.Cfg
		sink := &phaseSink{e: x.eng, key: first.key, bench: first.spec.Bench}
		cfg.Observe = sink
		t0 := time.Now()
		profs := core.TrainFeedBatch(cfg, feed, window, schemes)
		d := time.Since(t0)
		sink.finish(d)
		for k, i := range idx {
			c := &mine[i]
			c.f.prof = profs[k]
			x.persistProfile(c.key, profs[k])
			// Each spec's profile span carries the shared pass duration:
			// the schemes trained together, none resolved faster alone.
			x.noteProfile(c.key, c.spec.Bench, "trained", d)
			close(c.f.done)
		}
	}
}

// Plan returns the edit plan of a profile at the job's delta (Runtime),
// replanning from the memoized shaken histograms when the delta differs
// from the configuration's.
func (x *executor) Plan(prof *core.Profile, delta float64) *edit.Plan {
	if delta == 0 || delta == x.eng.Cfg.DeltaPct {
		return prof.Plan
	}
	return core.Replan(prof, delta)
}

// execute runs one cache-missed job to completion: resolve the job
// policy's declared dependencies — result dependencies through the
// engine (cached and shared like any other job), profile dependencies
// through the artifact layers — then let the policy build its outcome.
func (x *executor) execute(job Job) (*Outcome, error) {
	return x.executeKeyed("", job)
}

// executeKeyed is execute with the job's already-derived cache key, so
// the sequential simulation span can be correlated to its job.
func (x *executor) executeKeyed(key string, job Job) (*Outcome, error) {
	if workload.ByName(job.Bench) == nil {
		return nil, fmt.Errorf("unknown benchmark %q", job.Bench)
	}
	p, ok := PolicyByName(job.Policy)
	if !ok {
		return nil, fmt.Errorf("unknown policy %q", job.Policy)
	}
	deps := p.Deps(x.eng.Cfg, job)
	resolved := make([]Resolved, len(deps))
	for i, d := range deps {
		if d.Profile != nil {
			prof, err := x.profile(*d.Profile)
			if err != nil {
				return nil, err
			}
			resolved[i].Profile = prof
		} else {
			out, _, err := x.eng.Do(*d.Job)
			if err != nil {
				return nil, err
			}
			resolved[i].Outcome = out
		}
	}
	start := time.Now()
	out, err := p.Run(x, job, resolved)
	d := time.Since(start)
	e := x.eng
	e.phases.simNS.Add(int64(d))
	if tr := e.Trace; tr != nil {
		outcome := "simulated"
		if err != nil {
			outcome = "error"
		}
		tr.Emit(obs.Span{
			Key:     key,
			Phase:   "simulate",
			Policy:  job.Policy,
			Bench:   job.Bench,
			Outcome: outcome,
			StartNS: tr.Now() - int64(d),
			DurNS:   int64(d),
		})
	}
	return out, err
}
