// Package sweep implements a sharded experiment-sweep engine with a
// content-addressed, persistent on-disk result cache. A sweep is a set
// of Jobs, each naming one (benchmark, policy, context scheme,
// parameters) simulation under one core.Config. Jobs are keyed by a
// deterministic hash of their full specification, so identical work is
// never simulated twice: results are memoized in process, persisted as
// JSON cache entries, and survive across runs and across processes. A
// sweep can be partitioned into shards by key for multi-process fan-out
// and later merged back from the shared cache into one deterministic
// result set.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"repro/internal/calltree"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The policies a Job can name. They mirror the paper's comparators
// (Section 4): the MCD baseline, the globally synchronous single-clock
// machine, the off-line oracle, the on-line attack/decay controller, the
// matched global-DVS comparator, and the profile-driven edited binary
// under one of the six context schemes.
const (
	PolicyBaseline    = "baseline"
	PolicySingleClock = "single_clock"
	PolicyOffline     = "offline"
	PolicyOnline      = "online"
	PolicyGlobal      = "global"
	PolicyScheme      = "scheme"
)

// Policies lists every valid policy name in canonical order.
func Policies() []string {
	return []string{PolicyBaseline, PolicySingleClock, PolicyOffline,
		PolicyOnline, PolicyGlobal, PolicyScheme}
}

// Job is one unit of sweep work. The zero value of each optional field
// means "use the engine configuration's value", which keeps keys stable
// for the common case.
type Job struct {
	// Bench is the benchmark name (workload.Names()).
	Bench string `json:"bench"`
	// Policy selects the comparator; see the Policy constants.
	Policy string `json:"policy"`
	// Scheme is the calling-context scheme name for PolicyScheme.
	Scheme string `json:"scheme,omitempty"`
	// Delta overrides the slowdown-threshold delta (percent) for the
	// offline and scheme policies; 0 uses Config.DeltaPct.
	Delta float64 `json:"delta,omitempty"`
	// Aggressiveness overrides the on-line controller aggressiveness;
	// 0 uses Config.Online.Aggressiveness.
	Aggressiveness float64 `json:"aggressiveness,omitempty"`
	// MHz overrides the single-clock frequency; 0 uses Config.Sim.BaseMHz.
	MHz int `json:"mhz,omitempty"`
}

// String renders a compact human-readable job label.
func (j Job) String() string {
	s := j.Bench + "/" + j.Policy
	if j.Scheme != "" {
		s += "/" + j.Scheme
	}
	if j.Delta != 0 {
		s += fmt.Sprintf("/delta=%g", j.Delta)
	}
	if j.Aggressiveness != 0 {
		s += fmt.Sprintf("/aggr=%g", j.Aggressiveness)
	}
	if j.MHz != 0 {
		s += fmt.Sprintf("/mhz=%d", j.MHz)
	}
	return s
}

// Validate checks that the job names a known benchmark, policy and (for
// PolicyScheme) context scheme, and that its parameters are in range —
// out-of-range values would otherwise produce garbage results that the
// cache then serves forever under a perfectly valid key.
func (j Job) Validate() error {
	if workload.ByName(j.Bench) == nil {
		return fmt.Errorf("sweep: unknown benchmark %q", j.Bench)
	}
	switch j.Policy {
	case PolicyBaseline, PolicySingleClock, PolicyOffline, PolicyOnline, PolicyGlobal:
	case PolicyScheme:
		if _, ok := SchemeByName(j.Scheme); !ok {
			return fmt.Errorf("sweep: unknown context scheme %q", j.Scheme)
		}
	default:
		return fmt.Errorf("sweep: unknown policy %q", j.Policy)
	}
	if j.Delta < 0 || math.IsNaN(j.Delta) || math.IsInf(j.Delta, 0) {
		return fmt.Errorf("sweep: %s: delta %v out of range", j, j.Delta)
	}
	if j.Aggressiveness < 0 || math.IsNaN(j.Aggressiveness) || math.IsInf(j.Aggressiveness, 0) {
		return fmt.Errorf("sweep: %s: aggressiveness %v out of range", j, j.Aggressiveness)
	}
	if j.MHz < 0 {
		return fmt.Errorf("sweep: %s: mhz %d out of range", j, j.MHz)
	}
	return nil
}

// canonical maps parameter values that the executor treats as defaults
// onto the zero value, and clears parameters the policy ignores, so
// semantically identical jobs share one cache key (e.g. an explicit
// delta equal to cfg.DeltaPct keys the same as no delta at all).
func (j Job) canonical(cfg core.Config) Job {
	if j.Policy != PolicyScheme {
		j.Scheme = ""
	}
	switch j.Policy {
	case PolicyOffline, PolicyScheme:
		if j.Delta == cfg.DeltaPct {
			j.Delta = 0
		}
	default:
		j.Delta = 0
	}
	if j.Policy != PolicyOnline {
		j.Aggressiveness = 0
	} else if j.Aggressiveness == cfg.Online.Aggressiveness {
		j.Aggressiveness = 0
	}
	if j.Policy != PolicySingleClock {
		j.MHz = 0
	} else if j.MHz == cfg.Sim.BaseMHz {
		j.MHz = 0
	}
	return j
}

// SchemeByName resolves one of the paper's six context schemes.
func SchemeByName(name string) (calltree.Scheme, bool) {
	for _, s := range calltree.Schemes() {
		if s.Name == name {
			return s, true
		}
	}
	return calltree.Scheme{}, false
}

// Outcome is the cacheable result of one job: the simulation result plus
// the policy-specific byproducts the report generators need.
type Outcome struct {
	Res sim.Result `json:"result"`
	// Stats holds the run-time instrumentation activity of edited runs
	// (PolicyScheme); zero otherwise.
	Stats core.EditStats `json:"edit_stats"`
	// GlobalMHz is the matched frequency chosen by PolicyGlobal.
	GlobalMHz int `json:"global_mhz,omitempty"`
	// StaticReconfig and StaticInstr count the edit plan's static
	// reconfiguration and path-tracking points (PolicyScheme).
	StaticReconfig int `json:"static_reconfig,omitempty"`
	StaticInstr    int `json:"static_instr,omitempty"`
}

// keySchema versions the key derivation; bump it when the hashed
// payload's meaning changes so stale cache entries cannot be mistaken
// for current ones.
const keySchema = 1

// Key returns the content-addressed cache key of a job under a
// configuration: a hex SHA-256 of the canonical JSON encoding of
// (schema, config, job). encoding/json serializes struct fields in
// declaration order, so the encoding — and therefore the key — is
// deterministic across runs and processes of the same build.
func Key(cfg core.Config, job Job) string {
	payload := struct {
		Schema int         `json:"schema"`
		Config core.Config `json:"config"`
		Job    Job         `json:"job"`
	}{keySchema, cfg, job.canonical(cfg)}
	b, err := json.Marshal(payload)
	if err != nil {
		// core.Config and Job are plain data; this cannot fail.
		panic("sweep: key encoding: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// shardOf maps a key to a shard index in [0, shards).
func shardOf(key string, shards int) int {
	v, err := strconv.ParseUint(key[:16], 16, 64)
	if err != nil {
		panic("sweep: malformed key " + key)
	}
	return int(v % uint64(shards))
}

// shardKey returns the key a job is shard-assigned by. Global-DVS jobs
// are placed by their off-line dependency's key: the dependency is the
// most expensive job type, and resolving it inline from a shard that
// doesn't own it would duplicate a concurrent sibling shard's training
// work on a cold cache.
func shardKey(cfg core.Config, j Job) string {
	if j.Policy == PolicyGlobal {
		return Key(cfg, Job{Bench: j.Bench, Policy: PolicyOffline})
	}
	return Key(cfg, j)
}

// Shard returns the subset of jobs owned by shard index out of shards
// total, assigned by stable key hash: every job belongs to exactly one
// shard, and the assignment depends only on (config, job), never on
// slice order. shards <= 1 returns jobs unchanged.
func Shard(cfg core.Config, jobs []Job, shards, index int) []Job {
	if shards <= 1 {
		return jobs
	}
	var out []Job
	for _, j := range jobs {
		if shardOf(shardKey(cfg, j), shards) == index {
			out = append(out, j)
		}
	}
	return out
}
