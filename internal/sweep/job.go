// Package sweep implements a sharded experiment-sweep engine over a
// dependency-aware job DAG, backed by a content-addressed, persistent
// on-disk result cache and artifact store. A sweep is a set of Jobs,
// each naming one (benchmark, policy, context scheme, parameters)
// simulation under one core.Config. Policies are registered values that
// declare typed prerequisites — other jobs, and trained profiles stored
// as artifacts — and the engine resolves every node through an
// in-process memo, the persistent caches, and finally execution, exactly
// once per key. Jobs are keyed by a deterministic hash of their full
// specification, so identical work is never simulated twice: results are
// memoized in process, persisted as JSON cache entries, and survive
// across runs and across processes. A sweep can be partitioned into
// shards for multi-process fan-out — each job placed by its dependency
// chain's anchor key, so the shard that owns an expensive training also
// owns everything built from it — and later merged back from the shared
// cache into one deterministic result set.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/calltree"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Job is one unit of sweep work. The zero value of each optional field
// means "use the engine configuration's value", which keeps keys stable
// for the common case.
type Job struct {
	// Bench is the benchmark name (workload.Names()).
	Bench string `json:"bench"`
	// Policy selects the comparator; see the Policy constants.
	Policy string `json:"policy"`
	// Scheme is the calling-context scheme name for PolicyScheme.
	Scheme string `json:"scheme,omitempty"`
	// Delta overrides the slowdown-threshold delta (percent) for the
	// offline and scheme policies; 0 uses Config.DeltaPct.
	Delta float64 `json:"delta,omitempty"`
	// Aggressiveness overrides the on-line controller aggressiveness;
	// 0 uses Config.Online.Aggressiveness.
	Aggressiveness float64 `json:"aggressiveness,omitempty"`
	// MHz overrides the single-clock frequency; 0 uses Config.Sim.BaseMHz.
	MHz int `json:"mhz,omitempty"`
}

// String renders a compact human-readable job label.
func (j Job) String() string {
	s := j.Bench + "/" + j.Policy
	if j.Scheme != "" {
		s += "/" + j.Scheme
	}
	if j.Delta != 0 {
		s += fmt.Sprintf("/delta=%g", j.Delta)
	}
	if j.Aggressiveness != 0 {
		s += fmt.Sprintf("/aggr=%g", j.Aggressiveness)
	}
	if j.MHz != 0 {
		s += fmt.Sprintf("/mhz=%d", j.MHz)
	}
	return s
}

// Validate checks that the job names a known benchmark and registered
// policy, passes the policy's own parameter validation, and that its
// generic parameters are in range — out-of-range values would otherwise
// produce garbage results that the cache then serves forever under a
// perfectly valid key.
func (j Job) Validate() error {
	if workload.ByName(j.Bench) == nil {
		return fmt.Errorf("sweep: unknown benchmark %q", j.Bench)
	}
	p, ok := PolicyByName(j.Policy)
	if !ok {
		return fmt.Errorf("sweep: unknown policy %q (registered: %s)", j.Policy, strings.Join(Policies(), ", "))
	}
	if err := p.ValidateJob(j); err != nil {
		return err
	}
	if j.Delta < 0 || math.IsNaN(j.Delta) || math.IsInf(j.Delta, 0) {
		return fmt.Errorf("sweep: %s: delta %v out of range", j, j.Delta)
	}
	if j.Aggressiveness < 0 || math.IsNaN(j.Aggressiveness) || math.IsInf(j.Aggressiveness, 0) {
		return fmt.Errorf("sweep: %s: aggressiveness %v out of range", j, j.Aggressiveness)
	}
	if j.MHz < 0 {
		return fmt.Errorf("sweep: %s: mhz %d out of range", j, j.MHz)
	}
	return nil
}

// canonical delegates to the job's policy: parameter values the policy
// treats as defaults map onto the zero value, and parameters it ignores
// are cleared, so semantically identical jobs share one cache key (e.g.
// an explicit delta equal to cfg.DeltaPct keys the same as no delta at
// all). Unknown policies pass through unchanged (Key is only meaningful
// for validated jobs).
func (j Job) canonical(cfg core.Config) Job {
	p, ok := PolicyByName(j.Policy)
	if !ok {
		return j
	}
	return p.CanonicalJob(j, cfg)
}

// SchemeByName resolves one of the paper's six context schemes.
func SchemeByName(name string) (calltree.Scheme, bool) {
	return calltree.SchemeByName(name)
}

// Outcome is the cacheable result of one job: the simulation result plus
// the policy-specific byproducts the report generators need.
type Outcome struct {
	Res sim.Result `json:"result"`
	// Stats holds the run-time instrumentation activity of edited runs
	// (PolicyScheme); zero otherwise.
	Stats core.EditStats `json:"edit_stats"`
	// GlobalMHz is the matched frequency chosen by PolicyGlobal.
	GlobalMHz int `json:"global_mhz,omitempty"`
	// StaticReconfig and StaticInstr count the edit plan's static
	// reconfiguration and path-tracking points (PolicyScheme).
	StaticReconfig int `json:"static_reconfig,omitempty"`
	StaticInstr    int `json:"static_instr,omitempty"`
}

// keySchema versions the key derivation; bump it when the hashed
// payload's meaning changes so stale cache entries cannot be mistaken
// for current ones. It is independent of artifact.SchemaVersion: the
// artifact schema can move without invalidating result keys.
const keySchema = 1

// Key returns the content-addressed cache key of a job under a
// configuration: a hex SHA-256 of the canonical JSON encoding of
// (schema, config, job). encoding/json serializes struct fields in
// declaration order, so the encoding — and therefore the key — is
// deterministic across runs and processes of the same build. The
// configuration's topology name is canonicalized first: the default
// topology is hashed as absent, so pre-topology cache entries keep
// their keys, while non-default topologies hash into the key space.
func Key(cfg core.Config, job Job) string {
	cfg.Sim.Topology = arch.CanonicalTopologyName(cfg.Sim.Topology)
	payload := struct {
		Schema int         `json:"schema"`
		Config core.Config `json:"config"`
		Job    Job         `json:"job"`
	}{keySchema, cfg, job.canonical(cfg)}
	b, err := json.Marshal(payload)
	if err != nil {
		// core.Config and Job are plain data; this cannot fail.
		panic("sweep: key encoding: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// shardOf maps a key to a shard index in [0, shards).
func shardOf(key string, shards int) int {
	v, err := strconv.ParseUint(key[:16], 16, 64)
	if err != nil {
		panic("sweep: malformed key " + key)
	}
	return int(v % uint64(shards))
}

// shardKey returns the key a job is shard-assigned by: its policy's
// shard anchor, followed transitively. A job with no anchor places by
// its own key; a job anchored to a trained profile places by that
// profile's artifact key — so every job that resolves (or feeds) one
// training lands on the shard that owns it, and a cold fleet executes
// each training, and each shared dependency run, exactly once.
func shardKey(cfg core.Config, j Job) string {
	// The anchor chain is at most (job -> dependency job -> artifact);
	// the depth bound guards against a misregistered policy cycle.
	for depth := 0; depth < 8; depth++ {
		p, ok := PolicyByName(j.Policy)
		if !ok {
			break
		}
		d := p.ShardAnchor(cfg, j)
		if d == nil {
			break
		}
		if d.Profile != nil {
			return d.Profile.ArtifactKey(cfg)
		}
		j = *d.Job
	}
	return Key(cfg, j)
}

// AnchorKey returns the key a job is placement-assigned by — its
// policy's shard anchor followed transitively (job → dependency job →
// trained profile's artifact key), or the job's own key when it has no
// anchor. It is the grouping unit shared by static sharding (Shard) and
// fleet lease assignment: all jobs with equal anchor keys resolve (or
// feed) the same training, so a scheduler that never splits an anchor
// group trains each profile exactly once.
func AnchorKey(cfg core.Config, j Job) string { return shardKey(cfg, j) }

// Shard returns the subset of jobs owned by shard index out of shards
// total, assigned by stable anchor-key hash: every job belongs to
// exactly one shard, and the assignment depends only on (config, job),
// never on slice order. shards <= 1 returns jobs unchanged.
func Shard(cfg core.Config, jobs []Job, shards, index int) []Job {
	if shards <= 1 {
		return jobs
	}
	var out []Job
	for _, j := range jobs {
		if shardOf(shardKey(cfg, j), shards) == index {
			out = append(out, j)
		}
	}
	return out
}
