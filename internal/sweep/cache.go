package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Cache is a content-addressed on-disk result store. Every entry is one
// JSON file named by its job key under a two-character fan-out
// directory, written atomically (temp file + rename) so concurrent
// shards can share one cache directory and interrupted sweeps never
// leave half-written entries behind. Corrupt or mismatched entries are
// treated as misses and overwritten by the next run; the engine counts
// and surfaces them (Summary.CorruptEntries).
type Cache struct {
	Dir string
}

// entry is the on-disk representation: the key is stored alongside the
// job and outcome so entries are self-describing and key mismatches
// (e.g. a file copied to the wrong name) are detectable.
type entry struct {
	Key     string   `json:"key"`
	Job     Job      `json:"job"`
	Outcome *Outcome `json:"outcome"`
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.Dir, key[:2], key+".json")
}

// EntryPath returns the path an outcome is stored at.
func (c *Cache) EntryPath(key string) string { return c.path(key) }

// LoadStatus classifies the outcome of a cache lookup.
type LoadStatus int

const (
	// LoadMiss means no entry exists under the key.
	LoadMiss LoadStatus = iota
	// LoadHit means a valid entry was loaded.
	LoadHit
	// LoadCorrupt means an entry exists but is unreadable, truncated,
	// syntactically invalid, or stored under a mismatched key (e.g. a
	// file copied to the wrong name) — the engine treats it as a miss
	// and surfaces the damage.
	LoadCorrupt
)

// Load returns the outcome stored under key, with a status
// distinguishing absent entries from damaged ones.
func (c *Cache) Load(key string) (*Outcome, LoadStatus) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, LoadMiss
		}
		return nil, LoadCorrupt
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, LoadCorrupt
	}
	if e.Key != key || e.Outcome == nil {
		return nil, LoadCorrupt
	}
	return e.Outcome, LoadHit
}

// Get loads the outcome stored under key, collapsing missing and
// damaged entries to ok=false (Merge's view: either way the work is
// not in the cache).
func (c *Cache) Get(key string) (*Outcome, bool) {
	out, status := c.Load(key)
	return out, status == LoadHit
}

// Entry loads the full entry stored under key — job and outcome — for
// callers that re-encode entries elsewhere (segment building needs the
// job, not just the outcome, so re-materialized JSON stays
// byte-identical). Damaged entries report ok=false like Get.
func (c *Cache) Entry(key string) (Job, *Outcome, bool) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return Job{}, nil, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Key != key || e.Outcome == nil {
		return Job{}, nil, false
	}
	return e.Job, e.Outcome, true
}

// PutRaw validates one serialized cache entry (the bytes of an entry
// file produced by another node's Put) against key and persists it
// through Put. Because Put re-encodes the decoded entry with the same
// deterministic serialization that produced it, the stored file is
// byte-identical to the uploader's — the property fleet-synced caches
// rely on — while a truncated or mismatched upload is rejected instead
// of stored.
func (c *Cache) PutRaw(key string, raw []byte) error {
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil {
		return fmt.Errorf("sweep cache: entry for %.12s: %w", key, err)
	}
	if e.Key != key {
		return fmt.Errorf("sweep cache: entry declares key %.12s, expected %.12s", e.Key, key)
	}
	if e.Outcome == nil {
		return fmt.Errorf("sweep cache: entry %.12s has no outcome", key)
	}
	return c.Put(e.Key, e.Job, e.Outcome)
}

// Put atomically persists an outcome under key.
func (c *Cache) Put(key string, job Job, out *Outcome) error {
	dir := filepath.Dir(c.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("sweep cache: %w", err)
	}
	b, err := json.MarshalIndent(entry{Key: key, Job: job, Outcome: out}, "", " ")
	if err != nil {
		return fmt.Errorf("sweep cache: encode %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep cache: %w", err)
	}
	_, werr := tmp.Write(append(b, '\n'))
	cerr := tmp.Close()
	if err := errors.Join(werr, cerr); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep cache: write %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep cache: %w", err)
	}
	return nil
}
