package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Cache is a content-addressed on-disk result store. Every entry is one
// JSON file named by its job key under a two-character fan-out
// directory, written atomically (temp file + rename) so concurrent
// shards can share one cache directory and interrupted sweeps never
// leave half-written entries behind. Corrupt or mismatched entries are
// treated as misses and silently overwritten by the next run.
type Cache struct {
	Dir string
}

// entry is the on-disk representation: the key is stored alongside the
// job and outcome so entries are self-describing and key mismatches
// (e.g. a file copied to the wrong name) are detectable.
type entry struct {
	Key     string   `json:"key"`
	Job     Job      `json:"job"`
	Outcome *Outcome `json:"outcome"`
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.Dir, key[:2], key+".json")
}

// Get loads the outcome stored under key. It returns ok=false for
// missing, unreadable, corrupt, or key-mismatched entries — all of
// which the engine handles as cache misses.
func (c *Cache) Get(key string) (*Outcome, bool) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, false
	}
	if e.Key != key || e.Outcome == nil {
		return nil, false
	}
	return e.Outcome, true
}

// Put atomically persists an outcome under key.
func (c *Cache) Put(key string, job Job, out *Outcome) error {
	dir := filepath.Dir(c.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("sweep cache: %w", err)
	}
	b, err := json.MarshalIndent(entry{Key: key, Job: job, Outcome: out}, "", " ")
	if err != nil {
		return fmt.Errorf("sweep cache: encode %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep cache: %w", err)
	}
	_, werr := tmp.Write(append(b, '\n'))
	cerr := tmp.Close()
	if err := errors.Join(werr, cerr); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep cache: write %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep cache: %w", err)
	}
	return nil
}
