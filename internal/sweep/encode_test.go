package sweep

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// encodeOracle is what the direct encoder must reproduce: MarshalIndent
// with MergeTo's row prefix for the indented form, plain Marshal for the
// compact form.
func encodeOracle(t *testing.T, m Merged, indent bool) []byte {
	t.Helper()
	var b []byte
	var err error
	if indent {
		b, err = json.MarshalIndent(m, " ", " ")
	} else {
		b, err = json.Marshal(m)
	}
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func checkEncode(t *testing.T, label string, m Merged) {
	t.Helper()
	for _, indent := range []bool{true, false} {
		got, err := appendMerged(nil, m, " ", indent)
		if err != nil {
			t.Fatalf("%s (indent=%v): %v", label, indent, err)
		}
		want := encodeOracle(t, m, indent)
		if string(got) != string(want) {
			t.Errorf("%s (indent=%v):\ngot:  %s\nwant: %s", label, indent, got, want)
		}
	}
}

// TestAppendMergedAdversarial feeds the direct encoder the values that
// distinguish stdlib JSON encoding from a naive reimplementation: float
// format switchovers, negative zero, HTML-escaped and invalid-UTF-8
// strings, nil-vs-empty slices, and every omitempty boundary.
func TestAppendMergedAdversarial(t *testing.T) {
	floats := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.1, -0.1, 1.0 / 3.0,
		1e-6, 9.999999e-7, 1e-7, -1e-7, // 'f'/'e' switch at 1e-6
		1e20, 9.99e20, 1e21, -1e21, 2.5e21, // 'f'/'e' switch at 1e21
		1e-9, 1e-100, 1e100, // exponent cleanup (e-09 → e-9)
		math.MaxFloat64, math.SmallestNonzeroFloat64,
		123456789.123456789, 42,
	}
	strs := []string{
		"", "plain", "with space", `quote"back\slash`,
		"<html>&amp;", "tab\tnewline\ncr\r", "ctrl\x00\x01\x1f",
		"bell\bformfeed\f", "unicode é ☃ 漢字",
		"invalid\xff\xfeutf8", "line\u2028para\u2029sep",
	}

	for i, f := range floats {
		m := Merged{Key: "k", Job: Job{Bench: "b", Policy: "p", Delta: f}}
		m.Outcome = &Outcome{}
		m.Outcome.Res.EnergyPJ = f
		m.Outcome.Res.DomainPJ = []float64{f, -f}
		m.Outcome.Stats.OverheadPct = f
		checkEncode(t, "float "+strings.TrimSpace(string(rune('A'+i%26))), m)
	}
	for _, s := range strs {
		m := Merged{Key: s, Job: Job{Bench: s, Policy: "p", Scheme: s}}
		checkEncode(t, "string "+s, m)
	}

	// Structural edges: nil outcome, nil vs empty slices, omitempty
	// boundaries on every optional field.
	checkEncode(t, "nil outcome", Merged{Key: "k", Job: Job{Bench: "b", Policy: "p"}})
	empty := &Outcome{}
	empty.Res.DomainPJ = []float64{}
	empty.Res.AvgMHz = []float64{}
	checkEncode(t, "empty slices", Merged{Key: "k", Job: Job{Bench: "b", Policy: "p"}, Outcome: empty})
	full := &Outcome{GlobalMHz: 7, StaticReconfig: 8, StaticInstr: 9}
	full.Res.DomainPJ = []float64{1}
	checkEncode(t, "omitempty all set", Merged{
		Key:     "k",
		Job:     Job{Bench: "b", Policy: "p", Scheme: "s", Delta: 1.5, Aggressiveness: 0.5, MHz: 250},
		Outcome: full,
	})

	// NaN and infinities must error like stdlib, not emit bytes.
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		m := Merged{Key: "k", Job: Job{Bench: "b", Policy: "p"}}
		m.Outcome = &Outcome{}
		m.Outcome.Res.EnergyPJ = bad
		if _, err := appendMerged(nil, m, " ", true); err == nil {
			t.Errorf("float %v: want error, got none", bad)
		}
		if _, err := json.Marshal(m); err == nil {
			t.Errorf("float %v: stdlib accepted it; update the encoder", bad)
		}
	}
}

// TestAppendMergedRandomized cross-checks the direct encoder against the
// stdlib on pseudo-random rows (fixed seed): random bit patterns for
// floats (non-NaN/Inf), random printable-and-not strings, random slice
// shapes.
func TestAppendMergedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randFloat := func() float64 {
		for {
			f := math.Float64frombits(rng.Uint64())
			if !math.IsNaN(f) && !math.IsInf(f, 0) {
				return f
			}
		}
	}
	randStr := func() string {
		n := rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return string(b)
	}
	randFloats := func() []float64 {
		switch rng.Intn(4) {
		case 0:
			return nil
		case 1:
			return []float64{}
		default:
			out := make([]float64, 1+rng.Intn(5))
			for i := range out {
				out[i] = randFloat()
			}
			return out
		}
	}
	for i := 0; i < 2000; i++ {
		m := Merged{
			Key: randStr(),
			Job: Job{
				Bench:          randStr(),
				Policy:         randStr(),
				Scheme:         randStr(),
				Delta:          randFloat(),
				Aggressiveness: randFloat(),
				MHz:            rng.Intn(3) * rng.Intn(1000),
			},
		}
		if rng.Intn(8) != 0 {
			o := &Outcome{
				GlobalMHz:      rng.Intn(2) * rng.Intn(1000),
				StaticReconfig: rng.Intn(2) * rng.Intn(1000),
				StaticInstr:    rng.Intn(2) * rng.Intn(1000),
			}
			o.Res.Instructions = rng.Int63() - rng.Int63()
			o.Res.TimePs = rng.Int63() - rng.Int63()
			o.Res.EnergyPJ = randFloat()
			o.Res.DomainPJ = randFloats()
			o.Res.AvgMHz = randFloats()
			o.Res.SyncCrossings = rng.Int63() - rng.Int63()
			o.Res.SyncPenalties = rng.Int63() - rng.Int63()
			o.Res.Mispredicts = rng.Int63() - rng.Int63()
			o.Res.MispredictRate = randFloat()
			o.Res.IL1MissRate = randFloat()
			o.Res.DL1MissRate = randFloat()
			o.Res.L2MissRate = randFloat()
			o.Stats.DynReconfig = rng.Int63() - rng.Int63()
			o.Stats.DynInstr = rng.Int63() - rng.Int63()
			o.Stats.OverheadCycles = rng.Int63() - rng.Int63()
			o.Stats.OverheadPct = randFloat()
			m.Outcome = o
		}
		checkEncode(t, "random row", m)
		if t.Failed() {
			t.Fatalf("first mismatch at iteration %d", i)
		}
	}
}
