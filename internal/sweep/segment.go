package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/colseg"
	"repro/internal/obs"
)

// Columnar result segments. Alongside the canonical one-JSON-file-per-
// job cache, completed jobs are appended to compact struct-of-arrays
// segment files under <cacheDir>/segments/ (a name that can never
// collide with the cache's two-hex fan-out directories, so prune's
// scanner and the JSON layout are untouched). A segment stores every
// outcome field as its own typed, checksummed column plus a key column
// that doubles as the row index, so a merge or report streams thousands
// of outcomes from a few file reads instead of re-opening and
// re-decoding one JSON document per job. The JSON entries remain the
// byte-identity oracle: segments are a derived, reconstructible layer,
// and every read path falls back to the JSON cache when a segment is
// missing or damaged.

// segmentSchema versions the segment encoding; segments with any other
// schema are treated as damage (quarantined and counted), exactly like
// a stale JSON entry.
const segmentSchema = 1

// SegmentSubdir is where a cache directory's segment files live.
const SegmentSubdir = "segments"

// segPrefix/segSuffix frame segment file names: seg-<contenthash>.seg.
const (
	segPrefix = "seg-"
	segSuffix = ".seg"
)

// segRows is one decoded segment resident in memory, kept columnar: a
// point lookup indexes the parallel arrays, materializing one Outcome.
type segRows struct {
	keys []string

	bench, policy, scheme []string
	delta, aggr           []float64
	mhz                   []int64

	instructions, timePs []int64
	energyPJ             []float64
	domainPJ, avgMHz     [][]float64
	syncCrossings        []int64
	syncPenalties        []int64
	mispredicts          []int64
	mispredictRate       []float64
	il1MissRate          []float64
	dl1MissRate          []float64
	l2MissRate           []float64

	dynReconfig, dynInstr, overheadCycles []int64
	overheadPct                           []float64

	globalMHz, staticReconfig, staticInstr []int64
}

func (r *segRows) job(i int) Job {
	return Job{
		Bench:          r.bench[i],
		Policy:         r.policy[i],
		Scheme:         r.scheme[i],
		Delta:          r.delta[i],
		Aggressiveness: r.aggr[i],
		MHz:            int(r.mhz[i]),
	}
}

func (r *segRows) outcome(i int) *Outcome {
	out := &Outcome{
		GlobalMHz:      int(r.globalMHz[i]),
		StaticReconfig: int(r.staticReconfig[i]),
		StaticInstr:    int(r.staticInstr[i]),
	}
	out.Res.Instructions = r.instructions[i]
	out.Res.TimePs = r.timePs[i]
	out.Res.EnergyPJ = r.energyPJ[i]
	out.Res.DomainPJ = r.domainPJ[i]
	out.Res.AvgMHz = r.avgMHz[i]
	out.Res.SyncCrossings = r.syncCrossings[i]
	out.Res.SyncPenalties = r.syncPenalties[i]
	out.Res.Mispredicts = r.mispredicts[i]
	out.Res.MispredictRate = r.mispredictRate[i]
	out.Res.IL1MissRate = r.il1MissRate[i]
	out.Res.DL1MissRate = r.dl1MissRate[i]
	out.Res.L2MissRate = r.l2MissRate[i]
	out.Stats.DynReconfig = r.dynReconfig[i]
	out.Stats.DynInstr = r.dynInstr[i]
	out.Stats.OverheadCycles = r.overheadCycles[i]
	out.Stats.OverheadPct = r.overheadPct[i]
	return out
}

func (r *segRows) merged(i int) Merged {
	return Merged{Key: r.keys[i], Job: r.job(i), Outcome: r.outcome(i)}
}

// EncodeSegment renders rows as one deterministic segment file: rows
// are sorted by key first, so the bytes depend only on the row set —
// never on completion order — and a segment re-encoded from the same
// rows on another node is byte-identical.
func EncodeSegment(rows []Merged) ([]byte, error) {
	sorted := append([]Merged(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })

	n := len(sorted)
	rawKeys := make([]byte, 0, 32*n)
	put := struct {
		bench, policy, scheme []string
		delta, aggr           []float64
		mhz                   []int64
	}{}
	var (
		instructions, timePs, syncCrossings, syncPenalties, mispredicts []int64
		energyPJ, mispredictRate, il1, dl1, l2                          []float64
		domainPJ, avgMHz                                                [][]float64
		dynReconfig, dynInstr, overheadCycles                           []int64
		overheadPct                                                     []float64
		globalMHz, staticReconfig, staticInstr                          []int64
	)
	for _, m := range sorted {
		kb, err := hex.DecodeString(m.Key)
		if err != nil || len(kb) != 32 {
			return nil, fmt.Errorf("sweep: segment: %.16q is not a content-addressed key", m.Key)
		}
		if m.Outcome == nil {
			return nil, fmt.Errorf("sweep: segment: row %.12s has no outcome", m.Key)
		}
		rawKeys = append(rawKeys, kb...)
		put.bench = append(put.bench, m.Job.Bench)
		put.policy = append(put.policy, m.Job.Policy)
		put.scheme = append(put.scheme, m.Job.Scheme)
		put.delta = append(put.delta, m.Job.Delta)
		put.aggr = append(put.aggr, m.Job.Aggressiveness)
		put.mhz = append(put.mhz, int64(m.Job.MHz))
		o := m.Outcome
		instructions = append(instructions, o.Res.Instructions)
		timePs = append(timePs, o.Res.TimePs)
		energyPJ = append(energyPJ, o.Res.EnergyPJ)
		domainPJ = append(domainPJ, o.Res.DomainPJ)
		avgMHz = append(avgMHz, o.Res.AvgMHz)
		syncCrossings = append(syncCrossings, o.Res.SyncCrossings)
		syncPenalties = append(syncPenalties, o.Res.SyncPenalties)
		mispredicts = append(mispredicts, o.Res.Mispredicts)
		mispredictRate = append(mispredictRate, o.Res.MispredictRate)
		il1 = append(il1, o.Res.IL1MissRate)
		dl1 = append(dl1, o.Res.DL1MissRate)
		l2 = append(l2, o.Res.L2MissRate)
		dynReconfig = append(dynReconfig, o.Stats.DynReconfig)
		dynInstr = append(dynInstr, o.Stats.DynInstr)
		overheadCycles = append(overheadCycles, o.Stats.OverheadCycles)
		overheadPct = append(overheadPct, o.Stats.OverheadPct)
		globalMHz = append(globalMHz, int64(o.GlobalMHz))
		staticReconfig = append(staticReconfig, int64(o.StaticReconfig))
		staticInstr = append(staticInstr, int64(o.StaticInstr))
	}

	w := colseg.NewWriter(segmentSchema, n)
	w.Column("job.bench", colseg.PutStrings(put.bench))
	w.Column("job.policy", colseg.PutStrings(put.policy))
	w.Column("job.scheme", colseg.PutStrings(put.scheme))
	w.Column("job.delta", colseg.PutFloat64s(put.delta))
	w.Column("job.aggr", colseg.PutFloat64s(put.aggr))
	w.Column("job.mhz", colseg.PutInt64s(put.mhz))
	w.Column("res.instructions", colseg.PutInt64s(instructions))
	w.Column("res.time_ps", colseg.PutInt64s(timePs))
	w.Column("res.energy_pj", colseg.PutFloat64s(energyPJ))
	w.Column("res.domain_pj", colseg.PutFloatLists(domainPJ))
	w.Column("res.avg_mhz", colseg.PutFloatLists(avgMHz))
	w.Column("res.sync_crossings", colseg.PutInt64s(syncCrossings))
	w.Column("res.sync_penalties", colseg.PutInt64s(syncPenalties))
	w.Column("res.mispredicts", colseg.PutInt64s(mispredicts))
	w.Column("res.mispredict_rate", colseg.PutFloat64s(mispredictRate))
	w.Column("res.il1_miss_rate", colseg.PutFloat64s(il1))
	w.Column("res.dl1_miss_rate", colseg.PutFloat64s(dl1))
	w.Column("res.l2_miss_rate", colseg.PutFloat64s(l2))
	w.Column("stats.dyn_reconfig", colseg.PutInt64s(dynReconfig))
	w.Column("stats.dyn_instr", colseg.PutInt64s(dynInstr))
	w.Column("stats.overhead_cycles", colseg.PutInt64s(overheadCycles))
	w.Column("stats.overhead_pct", colseg.PutFloat64s(overheadPct))
	w.Column("out.global_mhz", colseg.PutInt64s(globalMHz))
	w.Column("out.static_reconfig", colseg.PutInt64s(staticReconfig))
	w.Column("out.static_instr", colseg.PutInt64s(staticInstr))
	// The key column is the segment's footer index: written last, read
	// first, it maps key → row for O(1) point lookups into every other
	// column.
	w.Column("keys", rawKeys)
	return w.Bytes(), nil
}

// decodeSegment parses and validates one segment file into its resident
// columnar form.
func decodeSegment(b []byte) (*segRows, error) {
	s, err := colseg.Decode(b)
	if err != nil {
		return nil, err
	}
	if s.Schema != segmentSchema {
		return nil, fmt.Errorf("%w: schema %d, want %d", colseg.ErrCorrupt, s.Schema, segmentSchema)
	}
	n := s.Rows
	col := func(name string) []byte {
		p, ok := s.Column(name)
		if !ok {
			err = joinErr(err, fmt.Errorf("%w: missing column %q", colseg.ErrCorrupt, name))
		}
		return p
	}
	i64 := func(name string) []int64 {
		v, derr := colseg.Int64s(col(name), n)
		err = joinErr(err, derr)
		return v
	}
	f64 := func(name string) []float64 {
		v, derr := colseg.Float64s(col(name), n)
		err = joinErr(err, derr)
		return v
	}
	str := func(name string) []string {
		v, derr := colseg.Strings(col(name), n)
		err = joinErr(err, derr)
		return v
	}
	flist := func(name string) [][]float64 {
		v, derr := colseg.FloatLists(col(name), n)
		err = joinErr(err, derr)
		return v
	}

	r := &segRows{}
	kb := col("keys")
	if len(kb) != 32*n {
		return nil, fmt.Errorf("%w: key column has %d bytes for %d rows", colseg.ErrCorrupt, len(kb), n)
	}
	r.keys = make([]string, n)
	for i := range r.keys {
		r.keys[i] = hex.EncodeToString(kb[32*i : 32*i+32])
	}
	r.bench = str("job.bench")
	r.policy = str("job.policy")
	r.scheme = str("job.scheme")
	r.delta = f64("job.delta")
	r.aggr = f64("job.aggr")
	r.mhz = i64("job.mhz")
	r.instructions = i64("res.instructions")
	r.timePs = i64("res.time_ps")
	r.energyPJ = f64("res.energy_pj")
	r.domainPJ = flist("res.domain_pj")
	r.avgMHz = flist("res.avg_mhz")
	r.syncCrossings = i64("res.sync_crossings")
	r.syncPenalties = i64("res.sync_penalties")
	r.mispredicts = i64("res.mispredicts")
	r.mispredictRate = f64("res.mispredict_rate")
	r.il1MissRate = f64("res.il1_miss_rate")
	r.dl1MissRate = f64("res.dl1_miss_rate")
	r.l2MissRate = f64("res.l2_miss_rate")
	r.dynReconfig = i64("stats.dyn_reconfig")
	r.dynInstr = i64("stats.dyn_instr")
	r.overheadCycles = i64("stats.overhead_cycles")
	r.overheadPct = f64("stats.overhead_pct")
	r.globalMHz = i64("out.global_mhz")
	r.staticReconfig = i64("out.static_reconfig")
	r.staticInstr = i64("out.static_instr")
	if err != nil {
		return nil, err
	}
	return r, nil
}

func joinErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// DecodeSegmentRows parses one segment file into merged rows (key, job,
// outcome) — the fleet coordinator's ingest path, which re-encodes the
// rows through Cache.Put and its own store so synced bytes stay
// byte-identical to the uploader's.
func DecodeSegmentRows(b []byte) ([]Merged, error) {
	r, err := decodeSegment(b)
	if err != nil {
		return nil, err
	}
	out := make([]Merged, len(r.keys))
	for i := range out {
		out[i] = r.merged(i)
	}
	return out, nil
}

// SegmentStore is the columnar layer over one cache directory: segment
// files under <dir>/segments plus an in-memory key → row index over
// every loaded segment. Damaged segments (truncated, checksum-failed,
// stale schema) are quarantined and counted, never served — reads fall
// back to the JSON cache. All methods are safe for concurrent use.
type SegmentStore struct {
	dir string // the segments directory itself

	// Log receives corrupt-segment warnings (one per damaged file); nil
	// logs to obs.Default (stderr). Set before first use.
	Log *obs.Logger

	mu      sync.Mutex
	scanned bool
	loaded  map[string]*segRows // by file name
	bad     map[string]bool     // quarantined file names
	index   map[string]rowRef
	corrupt int64
}

type rowRef struct {
	rows *segRows
	i    int
}

// SegmentStoreFor returns the segment store conventionally co-located
// with a result cache directory (its segments/ subdirectory).
func SegmentStoreFor(cacheDir string) *SegmentStore {
	return &SegmentStore{
		dir:    filepath.Join(cacheDir, SegmentSubdir),
		loaded: make(map[string]*segRows),
		bad:    make(map[string]bool),
		index:  make(map[string]rowRef),
	}
}

// segFileName reports whether name looks like a segment file.
func segFileName(name string) bool {
	return strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix)
}

// noteCorrupt records one damaged segment file: its rows count as
// corrupt entries (header row count when readable, one otherwise), and
// each offending path is warned about once — same discipline as the
// JSON cache, a damaged shared directory must never be silent.
func (s *SegmentStore) noteCorrupt(name string, b []byte) {
	rows := 1
	if n, ok := colseg.PeekRows(b); ok && n > 0 {
		rows = n
	}
	s.corrupt += int64(rows)
	s.bad[name] = true
	path := filepath.Join(s.dir, name)
	log := s.Log
	if log == nil {
		log = obs.Default
	}
	log.WarnOnce(path, "corrupt result segment, quarantined; reads fall back to the JSON cache",
		"store", "segments", "path", path, "rows", rows)
}

// refreshLocked scans the segments directory and loads files not seen
// yet. Callers hold s.mu.
func (s *SegmentStore) refreshLocked() {
	s.scanned = true
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return // no segments yet (or unreadable: the JSON cache answers)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && segFileName(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // deterministic index precedence
	for _, name := range names {
		if _, ok := s.loaded[name]; ok || s.bad[name] {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			s.noteCorrupt(name, nil)
			continue
		}
		rows, err := decodeSegment(b)
		if err != nil {
			s.noteCorrupt(name, b)
			continue
		}
		s.addLocked(name, rows)
	}
}

func (s *SegmentStore) addLocked(name string, rows *segRows) {
	s.loaded[name] = rows
	for i, k := range rows.keys {
		if _, dup := s.index[k]; !dup {
			s.index[k] = rowRef{rows: rows, i: i}
		}
	}
}

// Refresh picks up segment files other processes added since the last
// scan. Reads scan lazily on first use; long-lived processes call this
// before merging to see a shared directory's latest segments.
func (s *SegmentStore) Refresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
}

func (s *SegmentStore) lookup(key string) (rowRef, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.scanned {
		s.refreshLocked()
	}
	ref, ok := s.index[key]
	return ref, ok
}

// Get returns the outcome stored under key, materialized from its
// segment row.
func (s *SegmentStore) Get(key string) (*Outcome, bool) {
	ref, ok := s.lookup(key)
	if !ok {
		return nil, false
	}
	return ref.rows.outcome(ref.i), true
}

// Has reports whether key has a segment row, without materializing it.
func (s *SegmentStore) Has(key string) bool {
	_, ok := s.lookup(key)
	return ok
}

// Rows reports how many distinct keys the store currently indexes.
func (s *SegmentStore) Rows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.scanned {
		s.refreshLocked()
	}
	return len(s.index)
}

// CorruptRows reports the cumulative damaged-row count; the engine
// folds deltas into Summary.CorruptEntries.
func (s *SegmentStore) CorruptRows() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corrupt
}

// Append seals rows the store does not index yet into one new segment
// file, named by its content hash and written atomically so concurrent
// shards sharing the directory never observe a half-written segment.
// Rows already indexed are skipped (they are identical by content
// addressing); duplicate keys within rows keep the first.
func (s *SegmentStore) Append(rows []Merged) error {
	s.mu.Lock()
	if !s.scanned {
		s.refreshLocked()
	}
	fresh := make([]Merged, 0, len(rows))
	seen := make(map[string]bool, len(rows))
	for _, m := range rows {
		if seen[m.Key] {
			continue
		}
		seen[m.Key] = true
		if _, dup := s.index[m.Key]; !dup {
			fresh = append(fresh, m)
		}
	}
	s.mu.Unlock()
	if len(fresh) == 0 {
		return nil
	}

	b, err := EncodeSegment(fresh)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(b)
	name := segPrefix + hex.EncodeToString(sum[:8]) + segSuffix
	if err := writeFileAtomic(s.dir, name, b); err != nil {
		return fmt.Errorf("sweep: segment: %w", err)
	}

	decoded, err := decodeSegment(b)
	if err != nil {
		return err // cannot happen: we just encoded it
	}
	s.mu.Lock()
	if _, ok := s.loaded[name]; !ok {
		s.addLocked(name, decoded)
	}
	s.mu.Unlock()
	return nil
}

// writeFileAtomic writes name under dir via temp file + rename,
// creating dir as needed.
func writeFileAtomic(dir, name string, b []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return joinErr(werr, cerr)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// SegmentStat describes one on-disk segment file for prune's dry run.
type SegmentStat struct {
	// Rel is the cache-relative path (segments/seg-<hash>.seg).
	Rel string
	// Rows and Live count total and still-reachable rows; a corrupt
	// segment reports Live 0.
	Rows int
	Live int
	// Bytes is the file size; Reclaimable estimates what compaction
	// frees (the dead rows' proportional share, the whole file when
	// nothing in it is live).
	Bytes       int64
	Reclaimable int64
	// Corrupt marks files that fail validation; compaction removes them
	// (their live rows, if any, are unrecoverable from this layer — the
	// JSON cache is the canonical copy).
	Corrupt bool
}

// SegmentStats scans a cache directory's segment files and reports, per
// segment, how many rows are still reachable (key ∈ results) and how
// many bytes compaction would reclaim.
func SegmentStats(cacheDir string, results map[string]bool) ([]SegmentStat, error) {
	dir := filepath.Join(cacheDir, SegmentSubdir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("sweep: segment scan: %w", err)
	}
	var out []SegmentStat
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !segFileName(name) {
			continue
		}
		st := SegmentStat{Rel: filepath.Join(SegmentSubdir, name)}
		info, ierr := e.Info()
		if ierr == nil {
			st.Bytes = info.Size()
		}
		b, rerr := os.ReadFile(filepath.Join(dir, name))
		rows, derr := decodeSegment(b)
		if rerr != nil || derr != nil {
			st.Corrupt = true
			if n, ok := colseg.PeekRows(b); ok {
				st.Rows = n
			}
			st.Reclaimable = st.Bytes
			out = append(out, st)
			continue
		}
		st.Rows = len(rows.keys)
		for _, k := range rows.keys {
			if results[k] {
				st.Live++
			}
		}
		switch {
		case st.Live == 0:
			st.Reclaimable = st.Bytes
		case st.Live < st.Rows:
			st.Reclaimable = st.Bytes * int64(st.Rows-st.Live) / int64(st.Rows)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rel < out[j].Rel })
	return out, nil
}

// CompactSegments rewrites a cache directory's segment layer down to
// its reachable rows: fully-live segments are kept as they are; corrupt
// segments and segments carrying dead rows are removed, with their live
// rows (deduplicated against the kept segments) rewritten into one
// fresh segment. It returns the number of files removed and the net
// bytes freed.
func CompactSegments(cacheDir string, results map[string]bool) (removed int, freed int64, err error) {
	stats, err := SegmentStats(cacheDir, results)
	if err != nil {
		return 0, 0, err
	}
	dir := filepath.Join(cacheDir, SegmentSubdir)

	kept := make(map[string]bool)
	for _, st := range stats {
		if !st.Corrupt && st.Live == st.Rows && st.Rows > 0 {
			for _, k := range segmentKeys(dir, st) {
				kept[k] = true
			}
		}
	}
	var live []Merged
	var doomed []SegmentStat
	for _, st := range stats {
		if !st.Corrupt && st.Live == st.Rows && st.Rows > 0 {
			continue
		}
		doomed = append(doomed, st)
		if st.Corrupt || st.Live == 0 {
			continue
		}
		b, rerr := os.ReadFile(filepath.Join(cacheDir, st.Rel))
		if rerr != nil {
			continue
		}
		rows, derr := decodeSegment(b)
		if derr != nil {
			continue
		}
		for i, k := range rows.keys {
			if results[k] && !kept[k] {
				kept[k] = true
				live = append(live, rows.merged(i))
			}
		}
	}
	if len(live) > 0 {
		b, eerr := EncodeSegment(live)
		if eerr != nil {
			return 0, 0, eerr
		}
		sum := sha256.Sum256(b)
		name := segPrefix + hex.EncodeToString(sum[:8]) + segSuffix
		if werr := writeFileAtomic(dir, name, b); werr != nil {
			return 0, 0, fmt.Errorf("sweep: segment compact: %w", werr)
		}
		freed -= int64(len(b))
	}
	for _, st := range doomed {
		if rerr := os.Remove(filepath.Join(cacheDir, st.Rel)); rerr != nil {
			if os.IsNotExist(rerr) {
				continue
			}
			return removed, freed, fmt.Errorf("sweep: segment compact: %w", rerr)
		}
		removed++
		freed += st.Bytes
	}
	return removed, freed, nil
}

// segmentKeys lists one valid segment's keys (empty on any error; used
// only for compaction dedup, where a misread just means a row is
// rewritten redundantly).
func segmentKeys(dir string, st SegmentStat) []string {
	b, err := os.ReadFile(filepath.Join(dir, filepath.Base(st.Rel)))
	if err != nil {
		return nil
	}
	rows, err := decodeSegment(b)
	if err != nil {
		return nil
	}
	return rows.keys
}
