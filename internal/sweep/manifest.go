package sweep

import (
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/calltree"
	"repro/internal/core"
	"repro/internal/workload"
)

// Manifest declares a sweep as a grid: the cross product of benchmarks,
// policies, context schemes and parameter points, under an optionally
// overridden configuration. Empty slices mean "everything" (all 19
// benchmarks, all policies, all six schemes) and a single default
// parameter point, so the zero manifest is the paper's full evaluation.
type Manifest struct {
	// Schema is the manifest format version; 0 (omitted) and
	// ManifestSchema are accepted, anything newer is rejected with a
	// structured error instead of silently misreading future fields.
	Schema     int      `json:"schema,omitempty"`
	Name       string   `json:"name,omitempty"`
	Benchmarks []string `json:"benchmarks,omitempty"`
	Policies   []string `json:"policies,omitempty"`
	// Schemes applies to the "scheme" policy.
	Schemes []string `json:"schemes,omitempty"`
	// Deltas sweeps the slowdown-threshold delta for the "offline" and
	// "scheme" policies (Figures 10-11); empty means one run at the
	// configuration's calibrated delta.
	Deltas []float64 `json:"deltas,omitempty"`
	// Aggressiveness sweeps the on-line controller for the "online"
	// policy; empty means one run at the default.
	Aggressiveness []float64 `json:"aggressiveness,omitempty"`
	// MHz sweeps the "single_clock" policy's frequency (e.g. to chart a
	// frequency ladder); empty means one run at the full base frequency.
	MHz []int `json:"mhz,omitempty"`

	// Configuration overrides; zero values keep core.DefaultConfig().
	DeltaPct float64 `json:"delta_pct,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	// RecordingCache overrides the engine's recorded-stream cache bound
	// (Engine.RecordingCache); 0 keeps the automatic sizing. It is an
	// execution knob, not part of the simulated configuration, so it
	// never enters cache keys.
	RecordingCache int `json:"recording_cache,omitempty"`
	// TrainWorkers bounds intra-job training parallelism
	// (core.Config.TrainWorkers): segment shakes and batched multi-scheme
	// collection fan out over this many workers; 0 means GOMAXPROCS.
	// Like recording_cache it is an execution knob — every setting
	// produces bit-identical results — so it never enters cache keys.
	TrainWorkers int `json:"train_workers,omitempty"`
	// Topology selects the machine's clock-domain topology by registered
	// name (arch.TopologyNames); empty means the paper's default
	// 4-domain split, and naming the default explicitly keys identically
	// to omitting it.
	Topology string `json:"topology,omitempty"`
}

// LoadManifest reads and validates a JSON manifest file through the
// shared validator (ParseManifest + ValidateManifest), so file loading
// reports the same structured errors API submission does; unwrap with
// errors.As into *ValidationError for the (code, message, field)
// triple.
func LoadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: manifest: %w", err)
	}
	m, verr := ParseManifest(b)
	if verr != nil {
		return nil, fmt.Errorf("sweep: manifest %s: %w", path, verr)
	}
	if _, verr := ValidateManifest(m); verr != nil {
		return nil, fmt.Errorf("sweep: manifest %s: %w", path, verr)
	}
	return m, nil
}

// Config returns the core configuration the manifest's jobs run under.
// The topology name is canonicalized (the default maps to the empty
// string) so the paper configuration keys identically however it is
// spelled.
func (m *Manifest) Config() core.Config {
	cfg := core.DefaultConfig()
	if m.DeltaPct > 0 {
		cfg.DeltaPct = m.DeltaPct
	}
	if m.Seed != 0 {
		cfg.Sim.Seed = m.Seed
	}
	cfg.Sim.Topology = arch.CanonicalTopologyName(m.Topology)
	cfg.TrainWorkers = m.TrainWorkers
	return cfg
}

// Jobs enumerates the manifest's job grid in deterministic order.
// Parameter sweeps are only applied to the policies they affect, so a
// manifest with deltas does not duplicate delta-independent baselines.
func (m *Manifest) Jobs() ([]Job, error) {
	if _, err := arch.TopologyByName(m.Topology); err != nil {
		return nil, fmt.Errorf("sweep: manifest: %w", err)
	}
	benches := m.Benchmarks
	if len(benches) == 0 {
		benches = workload.Names()
	}
	policies := m.Policies
	if len(policies) == 0 {
		policies = Policies()
	}
	schemes := m.Schemes
	if len(schemes) == 0 {
		for _, s := range calltree.Schemes() {
			schemes = append(schemes, s.Name)
		}
	}
	deltas := m.Deltas
	if len(deltas) == 0 {
		deltas = []float64{0}
	}
	aggr := m.Aggressiveness
	if len(aggr) == 0 {
		aggr = []float64{0}
	}
	mhz := m.MHz
	if len(mhz) == 0 {
		mhz = []int{0}
	}

	var jobs []Job
	for _, b := range benches {
		for _, p := range policies {
			switch p {
			case PolicyScheme:
				for _, s := range schemes {
					for _, d := range deltas {
						jobs = append(jobs, Job{Bench: b, Policy: p, Scheme: s, Delta: d})
					}
				}
			case PolicyOffline:
				for _, d := range deltas {
					jobs = append(jobs, Job{Bench: b, Policy: p, Delta: d})
				}
			case PolicyOnline:
				for _, a := range aggr {
					jobs = append(jobs, Job{Bench: b, Policy: p, Aggressiveness: a})
				}
			case PolicySingleClock:
				for _, f := range mhz {
					jobs = append(jobs, Job{Bench: b, Policy: p, MHz: f})
				}
			default:
				jobs = append(jobs, Job{Bench: b, Policy: p})
			}
		}
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
	}
	return jobs, nil
}
