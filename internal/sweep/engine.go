package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/obs"
)

// Source reports where an outcome came from.
type Source int

const (
	// SourceExecuted means the job was simulated by this call.
	SourceExecuted Source = iota
	// SourceDisk means the outcome was loaded from the persistent cache.
	SourceDisk
	// SourceMemory means the outcome was already memoized in process
	// (including waiting on a concurrent duplicate execution).
	SourceMemory
)

func (s Source) String() string {
	switch s {
	case SourceExecuted:
		return "executed"
	case SourceDisk:
		return "disk"
	default:
		return "memory"
	}
}

// Summary aggregates one batch's cache behavior. Executed and DiskHits
// count engine-wide work performed while the batch ran — including
// dependency jobs resolved inline (e.g. the global policy's off-line
// run) — so Executed is exactly the number of simulations the batch
// triggered and is zero iff the whole sweep was served from cache.
// MemHits counts batch jobs answered by the in-process memo (including
// joining an execution another job started), so the three counters can
// sum to more than Jobs when dependencies span jobs. CorruptEntries
// counts persistent entries — result-cache and artifact-store alike —
// that existed but could not be used (truncated, unreadable, stale
// schema, or stored under a mismatched key); each was treated as a miss
// and overwritten, and the first offending path was logged.
type Summary struct {
	Jobs     int `json:"jobs"`
	MemHits  int `json:"mem_hits"`
	DiskHits int `json:"disk_hits"`
	// SegmentHits counts the subset of DiskHits served from the columnar
	// segment layer (no JSON decode); every segment hit is also a disk
	// hit, so existing disk-hit accounting is unchanged by segments.
	SegmentHits int `json:"segment_hits"`
	// StreamHits counts benchmark streams loaded from the on-disk
	// packed-stream cache instead of re-recorded by a generating walk.
	StreamHits     int `json:"stream_hits,omitempty"`
	Executed       int `json:"executed"`
	Errors         int `json:"errors"`
	CorruptEntries int `json:"corrupt_entries"`
}

// String renders the summary as one log-friendly line.
func (s Summary) String() string {
	return fmt.Sprintf("jobs=%d mem_hits=%d disk_hits=%d segment_hits=%d stream_hits=%d executed=%d errors=%d corrupt_entries=%d",
		s.Jobs, s.MemHits, s.DiskHits, s.SegmentHits, s.StreamHits, s.Executed, s.Errors, s.CorruptEntries)
}

// Engine executes sweep jobs against one configuration with in-process
// memoization, optional persistent caching, and a bounded worker pool.
// All methods are safe for concurrent use.
type Engine struct {
	// Cfg is the pipeline configuration every job runs under (job
	// fields override individual knobs); it is part of every cache key.
	Cfg core.Config
	// Workers bounds Run's concurrency; 0 means GOMAXPROCS.
	Workers int
	// RecordingCache bounds how many recorded benchmark streams the
	// executor retains (each is ~13 B/instruction); 0 sizes it
	// automatically from Workers. Batched execution reserves extra slots
	// for the streams its anchor group replays, so grids never thrash
	// the cache into re-recording mid-batch. Set before first use.
	RecordingCache int
	// Cache, when non-nil, persists outcomes across processes.
	Cache *Cache
	// Artifacts, when non-nil, persists intermediate pipeline products
	// (trained profiles) across processes, so a fleet sharing one store
	// directory trains each profile once total and threshold sweeps
	// replan from stored histograms instead of retraining.
	Artifacts *artifact.Store
	// Segments, when non-nil, layers the columnar result store over the
	// JSON cache: lookups consult segments first (one decoded column set
	// answers thousands of keys), completed and JSON-served rows are
	// buffered per Run and sealed into one new segment when the batch
	// ends. Segments are derived data — the JSON cache remains the
	// canonical byte-identity oracle and answers whenever a segment is
	// absent or damaged.
	Segments *SegmentStore
	// Streams, when non-nil, persists recorded packed benchmark streams
	// across processes (the streams/ subdirectory of a shared cache
	// directory): a cold engine loads ~13 B/instruction entries instead
	// of re-running the generating walks. Streams are keyed by benchmark
	// spec + input only — the walk is configuration-independent — so one
	// store serves every config and topology. Corrupt entries count into
	// Summary.CorruptEntries and are rewritten from a fresh walk.
	Streams *StreamStore
	// ExecFn overrides the built-in policy executor (tests use this to
	// count executions without running the simulator).
	ExecFn func(Job) (*Outcome, error)
	// Trace, when non-nil, records span-level phase timing into a
	// bounded ring (internal/obs): one span per job plus spans for each
	// resolution phase (stream decode, profile resolve, training,
	// shaking, collection, lockstep simulation, cache writes, segment
	// seal). Off by default; spans attach at job and phase boundaries
	// only — the per-instruction simulation loops carry no tracing code
	// at all — and span data never enters result-cache, artifact,
	// stream, or engine keys (Trace is an execution knob like
	// core.Config.TrainWorkers, machine-checked by the
	// traced-vs-untraced byte-identity tests). Set before first use.
	Trace *obs.Tracer
	// Log receives the engine's structured store warnings (corrupt
	// entries, persistence failures); nil logs to obs.Default (stderr).
	// Set before first use.
	Log *obs.Logger

	execOnce sync.Once
	exec     *executor

	// nExecuted, nDisk and nCorrupt count resolutions engine-wide; Run
	// reports them as before/after deltas so dependency jobs are
	// attributed to the batch that triggered them, independent of which
	// worker (or nested Do) got there first. phases accumulates
	// wall-clock per pipeline phase the same way (see Phases).
	nExecuted atomic.Int64
	nDisk     atomic.Int64
	nSegment  atomic.Int64
	nStream   atomic.Int64
	nCorrupt  atomic.Int64
	phases    phaseCounters

	// segMu guards segBuf, the rows waiting to be sealed into the next
	// segment file when the current Run finishes.
	segMu  sync.Mutex
	segBuf []Merged

	mu     sync.Mutex
	flight map[string]*flight
}

// flight is a singleflight slot: the first caller of a key executes,
// concurrent callers wait on done and share the outcome.
type flight struct {
	done chan struct{}
	out  *Outcome
	src  Source
	err  error
}

// New returns an engine over cfg with no persistent cache.
func New(cfg core.Config) *Engine {
	return &Engine{Cfg: cfg, flight: make(map[string]*flight)}
}

// logger resolves the engine's warning channel (obs.Default when the
// Log field is unset).
func (e *Engine) logger() *obs.Logger {
	if e.Log != nil {
		return e.Log
	}
	return obs.Default
}

// noteCorrupt records one unusable persistent entry and warns once per
// offending path: corruption is handled as a miss, but it should never
// be silent — a recurring count points at a damaged shared directory.
func (e *Engine) noteCorrupt(path string) {
	e.nCorrupt.Add(1)
	e.logger().WarnOnce(path, "corrupt cache entry, treated as a miss and rewritten",
		"store", "results", "path", path)
}

// warnPersist reports, once per engine, that results or artifacts are
// not landing on disk (full disk, lost permission); completed work
// stays memoized in process and a later merge names any jobs that
// never persisted.
func (e *Engine) warnPersist(err error) {
	e.logger().WarnOnce("sweep:persist", "results not persisting", "err", err)
}

// executor returns the built-in policy executor, creating it on first
// use.
func (e *Engine) executor() *executor {
	e.execOnce.Do(func() {
		e.exec = newExecutor(e)
	})
	return e.exec
}

// Profile resolves one trained profile through the engine's profile
// memo and artifact store, training it if necessary. The returned
// profile's Plan is built at the engine configuration's delta; use
// core.Replan for other deltas.
func (e *Engine) Profile(spec ProfileSpec) (*core.Profile, error) {
	return e.executor().profile(spec)
}

// Do returns the outcome of one job, consulting the in-process memo,
// then the persistent cache, then executing. Concurrent calls for the
// same key share a single execution.
func (e *Engine) Do(job Job) (*Outcome, Source, error) {
	if err := job.Validate(); err != nil {
		return nil, SourceMemory, err
	}
	return e.doKeyed(Key(e.Cfg, job), job)
}

// doKeyed is Do after validation, for callers that already derived the
// job's key (Run hands it to the completion callback, and key
// derivation marshals the full config — not worth doing twice per job).
func (e *Engine) doKeyed(key string, job Job) (*Outcome, Source, error) {
	e.mu.Lock()
	if e.flight == nil {
		e.flight = make(map[string]*flight)
	}
	if f, ok := e.flight[key]; ok {
		e.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, SourceMemory, f.err
		}
		return f.out, SourceMemory, nil
	}
	f := &flight{done: make(chan struct{})}
	e.flight[key] = f
	e.mu.Unlock()

	f.out, f.src, f.err = e.resolve(key, job)
	close(f.done)
	if f.err != nil {
		// Drop failed flights so a later call can retry (e.g. after a
		// permission problem on the cache directory is fixed).
		e.mu.Lock()
		delete(e.flight, key)
		e.mu.Unlock()
		return nil, f.src, f.err
	}
	return f.out, f.src, nil
}

func (e *Engine) resolve(key string, job Job) (*Outcome, Source, error) {
	if out, ok := e.segmentLookup(key); ok {
		return out, SourceDisk, nil
	}
	if e.Cache != nil {
		out, status := e.Cache.Load(key)
		switch status {
		case LoadHit:
			e.nDisk.Add(1)
			// Backfill: a JSON-only cache grows its segment layer over
			// one warm run, no separate conversion pass needed.
			e.bufferSegRow(key, job, out)
			return out, SourceDisk, nil
		case LoadCorrupt:
			e.noteCorrupt(e.Cache.EntryPath(key))
		}
	}
	out, err := e.executeJob(key, job)
	if err != nil {
		return nil, SourceExecuted, fmt.Errorf("sweep: %s: %w", job, err)
	}
	e.nExecuted.Add(1)
	if e.Cache != nil {
		start := time.Now()
		err := e.Cache.Put(key, job, out)
		e.notePersist(key, job, time.Since(start), err)
		if err != nil {
			// The simulation already succeeded; a persistence failure
			// (full disk, lost permission) must not throw that work
			// away. Keep the outcome memoized in process and warn once
			// — a later merge will name any jobs that never landed.
			e.warnPersist(err)
		} else {
			// Only rows the canonical JSON layer accepted enter the
			// segment layer: segments must stay a strict subset of the
			// oracle, never ahead of it.
			e.bufferSegRow(key, job, out)
		}
	}
	return out, SourceExecuted, nil
}

// notePersist accounts one result-cache write in the phase breakdown
// and, when tracing, as a "persist" span.
func (e *Engine) notePersist(key string, job Job, d time.Duration, err error) {
	e.phases.persistNS.Add(int64(d))
	if tr := e.Trace; tr != nil {
		outcome := "written"
		if err != nil {
			outcome = "error"
		}
		tr.Emit(obs.Span{
			Key:     key,
			Phase:   "persist",
			Policy:  job.Policy,
			Bench:   job.Bench,
			Outcome: outcome,
			StartNS: tr.Now() - int64(d),
			DurNS:   int64(d),
		})
	}
}

// segmentLookup consults the columnar layer. A segment hit counts as a
// disk hit too (it is one — just a cheaper decode), so disk-hit
// assertions and summaries are unaffected by whether segments exist.
func (e *Engine) segmentLookup(key string) (*Outcome, bool) {
	if e.Segments == nil {
		return nil, false
	}
	out, ok := e.Segments.Get(key)
	if ok {
		e.nSegment.Add(1)
		e.nDisk.Add(1)
	}
	return out, ok
}

// bufferSegRow queues one completed row for the columnar layer; Run
// seals the batch's buffered rows into one segment file when it ends.
func (e *Engine) bufferSegRow(key string, job Job, out *Outcome) {
	if e.Segments == nil {
		return
	}
	e.segMu.Lock()
	e.segBuf = append(e.segBuf, Merged{Key: key, Job: job, Outcome: out})
	e.segMu.Unlock()
}

// flushSegments seals the buffered rows into one new segment file
// (rows already indexed are skipped inside Append). Persistence
// failures warn once, like JSON cache writes: the canonical entries
// are already on disk, a missing segment only costs speed.
func (e *Engine) flushSegments() {
	if e.Segments == nil {
		return
	}
	e.segMu.Lock()
	rows := e.segBuf
	e.segBuf = nil
	e.segMu.Unlock()
	if len(rows) == 0 {
		return
	}
	start := time.Now()
	err := e.Segments.Append(rows)
	d := time.Since(start)
	e.phases.sealNS.Add(int64(d))
	if tr := e.Trace; tr != nil {
		outcome := "sealed"
		if err != nil {
			outcome = "error"
		}
		tr.Emit(obs.Span{
			Phase:   "seal",
			Outcome: outcome,
			StartNS: tr.Now() - int64(d),
			DurNS:   int64(d),
		})
	}
	if err != nil {
		e.warnPersist(err)
	}
}

// executeJob dispatches one cache-missed job to the ExecFn override or
// the built-in executor (which correlates its simulate span to key).
func (e *Engine) executeJob(key string, job Job) (*Outcome, error) {
	if e.ExecFn != nil {
		return e.ExecFn(job)
	}
	return e.executor().executeKeyed(key, job)
}

// RunOption configures one Run call.
type RunOption func(*runConfig)

type runConfig struct {
	onDone   func(JobDone)
	pool     *WorkerPool
	poolSet  bool
	batch    int
	batchSet bool
}

// WithOnDone streams per-job completions: fn is invoked once per job in
// completion order, as each finishes. Callbacks are serialized (never
// concurrent) but run on worker goroutines, so they must not block for
// long.
func WithOnDone(fn func(JobDone)) RunOption {
	return func(rc *runConfig) { rc.onDone = fn }
}

// WithPool dispatches the call's work onto a shared worker pool instead
// of per-call workers (nil, or an absent option, keeps per-call
// workers).
func WithPool(p *WorkerPool) RunOption {
	return func(rc *runConfig) { rc.pool, rc.poolSet = p, true }
}

// WithBatching bounds how many jobs one lockstep pass steps together:
// ready jobs that share a (benchmark, input, window) anchor are grouped
// and simulated in lockstep from one decoded stream, n lanes at a time.
// n == 0 disables batching (every job resolves alone); n < 0 or an
// absent option picks the automatic width. Batched and sequential
// execution produce byte-identical results, cache entries, and
// artifacts — the option only trades memory (n live machines) against
// stream-decode and cache-traffic savings.
func WithBatching(n int) RunOption {
	return func(rc *runConfig) { rc.batch, rc.batchSet = n, true }
}

// autoBatchWidth is the default lockstep width: wide enough to cover
// the paper's policy grids per benchmark, narrow enough that the live
// machines' state stays modest.
const autoBatchWidth = 32

// Run resolves a batch of jobs and returns their outcomes in input
// order plus a summary of cache behavior. Individual job failures leave
// a nil outcome at that index; the joined error reports all of them.
// Options select streaming callbacks (WithOnDone), the worker pool
// (WithPool), and lockstep batching (WithBatching). A canceled ctx
// fails jobs that have not started with ctx.Err(); work already in
// flight completes and is cached normally.
func (e *Engine) Run(ctx context.Context, jobs []Job, opts ...RunOption) ([]*Outcome, Summary, error) {
	rc := runConfig{}
	for _, o := range opts {
		o(&rc)
	}
	var pool *WorkerPool
	if rc.poolSet {
		pool = rc.pool
	}
	width := autoBatchWidth
	if rc.batchSet && rc.batch >= 0 {
		width = rc.batch
	}

	outs := make([]*Outcome, len(jobs))
	srcs := make([]Source, len(jobs))
	errs := make([]error, len(jobs))
	exec0, disk0, corrupt0 := e.nExecuted.Load(), e.nDisk.Load(), e.nCorrupt.Load()
	seg0, stream0 := e.nSegment.Load(), e.nStream.Load()
	var segCorrupt0 int64
	if e.Segments != nil {
		segCorrupt0 = e.Segments.CorruptRows()
	}

	var cbMu sync.Mutex
	report := func(i int, key string, out *Outcome, src Source, elapsed time.Duration, err error) {
		outs[i], srcs[i], errs[i] = out, src, err
		if tr := e.Trace; tr != nil {
			outcome := src.String()
			if err != nil {
				outcome = "error"
			}
			tr.Emit(obs.Span{
				Key:     key,
				Phase:   "job",
				Policy:  jobs[i].Policy,
				Bench:   jobs[i].Bench,
				Outcome: outcome,
				StartNS: tr.Now() - int64(elapsed),
				DurNS:   int64(elapsed),
			})
		}
		if rc.onDone != nil {
			d := JobDone{
				Index:   i,
				Job:     jobs[i],
				Key:     key,
				Outcome: out,
				Source:  src,
				Elapsed: elapsed,
				Err:     err,
			}
			cbMu.Lock()
			rc.onDone(d)
			cbMu.Unlock()
		}
	}
	do := func(i int) {
		start := time.Now()
		var key string
		var out *Outcome
		src := SourceMemory // matches Do's label for validation failures
		err := ctx.Err()
		if err == nil {
			err = jobs[i].Validate()
		}
		if err == nil {
			key = Key(e.Cfg, jobs[i])
			out, src, err = e.doKeyed(key, jobs[i])
		}
		report(i, key, out, src, time.Since(start), err)
	}

	// Partition the batch into schedulable units: anchor groups stepped
	// in lockstep, and single jobs. The built-in executor is required
	// for batching — an ExecFn override bypasses lanes entirely.
	var units []func()
	if width > 0 && e.ExecFn == nil {
		groups, singles := planBatches(e.Cfg, jobs)
		for _, i := range singles {
			i := i
			units = append(units, func() { do(i) })
		}
		for _, g := range groups {
			g := g
			units = append(units, func() { e.runGroup(ctx, jobs, g, width, report) })
		}
	} else {
		for i := range jobs {
			i := i
			units = append(units, func() { do(i) })
		}
	}

	var wg sync.WaitGroup
	if pool != nil {
		for _, u := range units {
			u := u
			wg.Add(1)
			pool.Submit(func() {
				defer wg.Done()
				u()
			})
		}
	} else {
		workers := e.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(units) {
			workers = len(units)
		}
		ch := make(chan func())
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for u := range ch {
					u()
				}
			}()
		}
		for _, u := range units {
			ch <- u
		}
		close(ch)
	}
	wg.Wait()
	e.flushSegments()

	sum := Summary{
		Jobs:           len(jobs),
		Executed:       int(e.nExecuted.Load() - exec0),
		DiskHits:       int(e.nDisk.Load() - disk0),
		SegmentHits:    int(e.nSegment.Load() - seg0),
		StreamHits:     int(e.nStream.Load() - stream0),
		CorruptEntries: int(e.nCorrupt.Load() - corrupt0),
	}
	if e.Segments != nil {
		sum.CorruptEntries += int(e.Segments.CorruptRows() - segCorrupt0)
	}
	for i := range jobs {
		switch {
		case errs[i] != nil:
			sum.Errors++
		case srcs[i] == SourceMemory:
			sum.MemHits++
		}
	}
	return outs, sum, errors.Join(errs...)
}

// JobDone reports one finished job to Run's WithOnDone callback.
type JobDone struct {
	// Index is the job's position in the submitted batch.
	Index int
	// Job is the batch job, as submitted.
	Job Job
	// Key is the job's content-addressed cache key under the engine
	// configuration; empty when the job failed validation.
	Key string
	// Outcome is the resolved outcome; nil when Err is non-nil.
	Outcome *Outcome
	// Source reports which layer answered: memo, disk, or execution.
	Source Source
	// Elapsed is the wall time resolution took, dependency work
	// (trainings, prerequisite jobs) included.
	Elapsed time.Duration
	// Err is the job's resolution error, if any.
	Err error
}

// Merged pairs one job with its cached outcome for merge output.
type Merged struct {
	Key     string   `json:"key"`
	Job     Job      `json:"job"`
	Outcome *Outcome `json:"outcome"`
}

// MergeBytes renders Merge's result in the one canonical serialization
// every merge surface emits — `mcdsweep merge` files and the daemon's
// results endpoint alike — so "byte-identical merged output" is an
// invariant of this function, not of call sites staying in sync.
func MergeBytes(cfg core.Config, jobs []Job, c *Cache) ([]byte, error) {
	merged, err := Merge(cfg, jobs, c)
	if err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(merged, "", " ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Merge collects the outcomes of a full job set from the persistent
// cache, independent of which shard (or process) computed each one, and
// returns them sorted by key so the merged result of an N-way sharded
// sweep is byte-identical to an unsharded run of the same manifest. Any
// job missing from the cache is an error naming the missing work.
func Merge(cfg core.Config, jobs []Job, c *Cache) ([]Merged, error) {
	var out []Merged
	var missing []error
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		key := Key(cfg, j)
		if seen[key] {
			continue
		}
		seen[key] = true
		o, ok := c.Get(key)
		if !ok {
			missing = append(missing, fmt.Errorf("sweep: merge: %s (%s) not in cache", j, key[:12]))
			continue
		}
		out = append(out, Merged{Key: key, Job: j, Outcome: o})
	}
	if len(missing) > 0 {
		return nil, errors.Join(missing...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}
