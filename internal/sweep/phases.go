package sweep

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// PhaseBreakdown is an engine's cumulative wall-clock by pipeline
// phase, plus the hit counters that explain where the time went. It is
// deliberately not part of Summary: Summary stays a comparable,
// deterministic value (batched-vs-sequential tests compare Summaries
// with ==), while phase timings are wall-clock and vary run to run.
// Callers snapshot Engine.Phases before and after a Run and Sub the
// two to attribute time to one batch.
type PhaseBreakdown struct {
	// TrainNS is total time inside trainings (tree walk, collection,
	// shakes, thresholding); TreewalkNS, CollectNS and ShakeNS are its
	// dominant components, observed from inside core. ShakeNS sums
	// per-segment shake times across pool workers, so it can exceed
	// CollectNS wall-clock under parallel training (and is also counted
	// inside CollectNS when shakes run inline on the collecting
	// goroutine).
	TrainNS    int64 `json:"train_ns"`
	TreewalkNS int64 `json:"treewalk_ns"`
	CollectNS  int64 `json:"collect_ns"`
	ShakeNS    int64 `json:"shake_ns"`
	// SimNS is production simulation: sequential policy runs and
	// lockstep wave chunks.
	SimNS int64 `json:"sim_ns"`
	// StreamNS is packed-stream resolution (decode-from-disk or
	// record-by-walking).
	StreamNS int64 `json:"stream_ns"`
	// PersistNS is result-cache writes; SealNS is segment sealing at
	// the end of a Run — together the "merge" side of a batch.
	PersistNS int64 `json:"persist_ns"`
	SealNS    int64 `json:"seal_ns"`
	// Trained and ArtifactHits split profile resolutions that did the
	// training against ones answered by the artifact store; StreamHits
	// and StreamRecords do the same for packed streams.
	Trained       int64 `json:"trained"`
	ArtifactHits  int64 `json:"artifact_hits"`
	StreamHits    int64 `json:"stream_hits"`
	StreamRecords int64 `json:"stream_records"`
}

// Sub returns p - q, the usual before/after delta.
func (p PhaseBreakdown) Sub(q PhaseBreakdown) PhaseBreakdown {
	return PhaseBreakdown{
		TrainNS:       p.TrainNS - q.TrainNS,
		TreewalkNS:    p.TreewalkNS - q.TreewalkNS,
		CollectNS:     p.CollectNS - q.CollectNS,
		ShakeNS:       p.ShakeNS - q.ShakeNS,
		SimNS:         p.SimNS - q.SimNS,
		StreamNS:      p.StreamNS - q.StreamNS,
		PersistNS:     p.PersistNS - q.PersistNS,
		SealNS:        p.SealNS - q.SealNS,
		Trained:       p.Trained - q.Trained,
		ArtifactHits:  p.ArtifactHits - q.ArtifactHits,
		StreamHits:    p.StreamHits - q.StreamHits,
		StreamRecords: p.StreamRecords - q.StreamRecords,
	}
}

// String renders the breakdown as one log-friendly line.
func (p PhaseBreakdown) String() string {
	d := func(ns int64) string { return time.Duration(ns).Round(time.Millisecond).String() }
	var b strings.Builder
	fmt.Fprintf(&b, "train=%s (treewalk=%s collect=%s shake=%s) sim=%s stream=%s persist=%s seal=%s",
		d(p.TrainNS), d(p.TreewalkNS), d(p.CollectNS), d(p.ShakeNS),
		d(p.SimNS), d(p.StreamNS), d(p.PersistNS), d(p.SealNS))
	fmt.Fprintf(&b, " trained=%d artifact_hits=%d stream_hits=%d stream_records=%d",
		p.Trained, p.ArtifactHits, p.StreamHits, p.StreamRecords)
	return b.String()
}

// phaseCounters is the engine-side atomic mirror of PhaseBreakdown.
type phaseCounters struct {
	trainNS, treewalkNS, collectNS, shakeNS          atomic.Int64
	simNS, streamNS, persistNS, sealNS               atomic.Int64
	trained, artifactHits, streamHits, streamRecords atomic.Int64
}

// Phases snapshots the engine's cumulative per-phase breakdown.
// Counters only grow; take before/after snapshots and Sub them to
// attribute work to one Run (the same convention Summary's counters
// use internally).
func (e *Engine) Phases() PhaseBreakdown {
	return PhaseBreakdown{
		TrainNS:       e.phases.trainNS.Load(),
		TreewalkNS:    e.phases.treewalkNS.Load(),
		CollectNS:     e.phases.collectNS.Load(),
		ShakeNS:       e.phases.shakeNS.Load(),
		SimNS:         e.phases.simNS.Load(),
		StreamNS:      e.phases.streamNS.Load(),
		PersistNS:     e.phases.persistNS.Load(),
		SealNS:        e.phases.sealNS.Load(),
		Trained:       e.phases.trained.Load(),
		ArtifactHits:  e.phases.artifactHits.Load(),
		StreamHits:    e.phases.streamHits.Load(),
		StreamRecords: e.phases.streamRecords.Load(),
	}
}

// phaseSink adapts one training's core-side phase observations
// (core.Config.Observe) into the engine's cumulative counters and,
// when tracing, per-phase spans keyed by the training's artifact key.
// Shake observations arrive per segment from pool workers; the sink
// folds them into one aggregate the executor emits as a single span
// after the training returns, so a tracer ring is never flooded by
// thousands of per-segment spans.
type phaseSink struct {
	e       *Engine
	key     string // artifact key (a batch group's representative)
	bench   string
	shakeNS atomic.Int64
}

func (p *phaseSink) ObservePhase(phase string, d time.Duration) {
	switch phase {
	case "treewalk":
		p.e.phases.treewalkNS.Add(int64(d))
		p.emit("treewalk", d)
	case "collect":
		p.e.phases.collectNS.Add(int64(d))
		p.emit("collect", d)
	case "shake":
		p.e.phases.shakeNS.Add(int64(d))
		p.shakeNS.Add(int64(d))
	}
}

// emit records one core phase span ending now.
func (p *phaseSink) emit(phase string, d time.Duration) {
	if tr := p.e.Trace; tr != nil {
		tr.Emit(obs.Span{
			Key:     p.key,
			Phase:   phase,
			Bench:   p.bench,
			StartNS: tr.Now() - int64(d),
			DurNS:   int64(d),
		})
	}
}

// finish closes out the training: the aggregate shake span plus the
// whole-training span with its outcome ("trained"). The trained
// counter is per resolved spec (noteProfile), not per pass.
func (p *phaseSink) finish(d time.Duration) {
	p.e.phases.trainNS.Add(int64(d))
	if tr := p.e.Trace; tr != nil {
		if sh := p.shakeNS.Load(); sh > 0 {
			tr.Emit(obs.Span{
				Key:     p.key,
				Phase:   "shake",
				Bench:   p.bench,
				StartNS: tr.Now() - int64(d),
				DurNS:   sh,
			})
		}
		tr.Emit(obs.Span{
			Key:     p.key,
			Phase:   "train",
			Bench:   p.bench,
			Outcome: "trained",
			StartNS: tr.Now() - int64(d),
			DurNS:   int64(d),
		})
	}
}
