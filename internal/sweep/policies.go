package sweep

import (
	"fmt"
	"strings"

	"repro/internal/calltree"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/workload"
)

// The built-in policies. They mirror the paper's comparators
// (Section 4): the MCD baseline, the globally synchronous single-clock
// machine, the off-line oracle, the on-line attack/decay controller, the
// matched global-DVS comparator, and the profile-driven edited binary
// under one of the six context schemes.
const (
	PolicyBaseline    = "baseline"
	PolicySingleClock = "single_clock"
	PolicyOffline     = "offline"
	PolicyOnline      = "online"
	PolicyGlobal      = "global"
	PolicyScheme      = "scheme"
)

func init() {
	// Registration order is the canonical policy order (Policies()).
	RegisterPolicy(baselinePolicy{})
	RegisterPolicy(singleClockPolicy{})
	RegisterPolicy(offlinePolicy{})
	RegisterPolicy(onlinePolicy{})
	RegisterPolicy(globalPolicy{})
	RegisterPolicy(schemePolicy{})
}

// basePolicy provides the no-op defaults shared by parameterless
// comparators.
type basePolicy struct{}

func (basePolicy) ValidateJob(Job) error             { return nil }
func (basePolicy) Deps(core.Config, Job) []Dep       { return nil }
func (basePolicy) ShardAnchor(core.Config, Job) *Dep { return nil }

// clearCommon zeroes every optional parameter; policies re-apply the
// ones they honor.
func clearCommon(j Job) Job {
	j.Scheme = ""
	j.Delta = 0
	j.Aggressiveness = 0
	j.MHz = 0
	return j
}

// offlineProfile is the off-line oracle's training dependency: the
// paper's most elaborate scheme trained on the reference input itself.
func offlineProfile(bench string) *ProfileSpec {
	return &ProfileSpec{Bench: bench, Scheme: calltree.LFCP.Name, OnRef: true}
}

// baselinePolicy runs the MCD baseline: all domains at full speed,
// synchronization penalties included.
type baselinePolicy struct{ basePolicy }

func (baselinePolicy) Name() string { return PolicyBaseline }

func (baselinePolicy) CanonicalJob(j Job, cfg core.Config) Job { return clearCommon(j) }

func (p baselinePolicy) Run(rt Runtime, j Job, deps []Resolved) (*Outcome, error) {
	return runLane(p, rt, j, deps)
}

func (baselinePolicy) OpenLane(rt Runtime, j Job, _ []Resolved) (*Lane, error) {
	b := workload.ByName(j.Bench)
	l := core.NewBaselineLane(rt.Config())
	return &Lane{Consumer: l.Consumer, Budget: b.RefWindow, Finish: func() (*Outcome, error) {
		res, _ := l.Finish()
		return &Outcome{Res: res}, nil
	}}, nil
}

// singleClockPolicy runs the globally synchronous comparator at the
// job's frequency (default: full base speed).
type singleClockPolicy struct{ basePolicy }

func (singleClockPolicy) Name() string { return PolicySingleClock }

func (singleClockPolicy) CanonicalJob(j Job, cfg core.Config) Job {
	mhz := j.MHz
	j = clearCommon(j)
	if mhz != cfg.Sim.BaseMHz {
		j.MHz = mhz
	}
	return j
}

// ShardAnchor places the default-frequency run with the off-line chain
// that consumes it: the global-DVS comparator needs this job, and a cold
// fleet should compute it on the one shard that owns that chain instead
// of redundantly on every shard that hosts a global job. The anchor is
// placement-only — no training is triggered for benchmarks whose
// manifest never needs it.
func (singleClockPolicy) ShardAnchor(cfg core.Config, j Job) *Dep {
	if j.canonical(cfg).MHz != 0 {
		return nil // explicit-frequency ladder points place by their own key
	}
	return &Dep{Profile: offlineProfile(j.Bench)}
}

func (p singleClockPolicy) Run(rt Runtime, j Job, deps []Resolved) (*Outcome, error) {
	return runLane(p, rt, j, deps)
}

func (singleClockPolicy) OpenLane(rt Runtime, j Job, _ []Resolved) (*Lane, error) {
	b := workload.ByName(j.Bench)
	cfg := rt.Config()
	mhz := j.MHz
	if mhz == 0 {
		mhz = cfg.Sim.BaseMHz
	}
	l := core.NewSingleClockLane(cfg, mhz)
	return &Lane{Consumer: l.Consumer, Budget: b.RefWindow, Finish: func() (*Outcome, error) {
		res, _ := l.Finish()
		return &Outcome{Res: res}, nil
	}}, nil
}

// offlinePolicy is the off-line oracle: train on the production input
// itself, run with zero-cost reconfiguration.
type offlinePolicy struct{ basePolicy }

func (offlinePolicy) Name() string { return PolicyOffline }

func (offlinePolicy) CanonicalJob(j Job, cfg core.Config) Job {
	delta := j.Delta
	j = clearCommon(j)
	if delta != cfg.DeltaPct {
		j.Delta = delta
	}
	return j
}

func (offlinePolicy) Deps(cfg core.Config, j Job) []Dep {
	return []Dep{{Profile: offlineProfile(j.Bench)}}
}

func (offlinePolicy) ShardAnchor(cfg core.Config, j Job) *Dep {
	return &Dep{Profile: offlineProfile(j.Bench)}
}

func (p offlinePolicy) Run(rt Runtime, j Job, deps []Resolved) (*Outcome, error) {
	return runLane(p, rt, j, deps)
}

func (offlinePolicy) OpenLane(rt Runtime, j Job, deps []Resolved) (*Lane, error) {
	b := workload.ByName(j.Bench)
	l := core.NewEditedLane(rt.Config(), rt.Plan(deps[0].Profile, j.Delta), true)
	return &Lane{Consumer: l.Consumer, Budget: b.RefWindow, Finish: func() (*Outcome, error) {
		res, _ := l.Finish()
		return &Outcome{Res: res}, nil
	}}, nil
}

// onlinePolicy simulates the hardware attack/decay controller.
type onlinePolicy struct{ basePolicy }

func (onlinePolicy) Name() string { return PolicyOnline }

func (onlinePolicy) CanonicalJob(j Job, cfg core.Config) Job {
	aggr := j.Aggressiveness
	j = clearCommon(j)
	if aggr != cfg.Online.Aggressiveness {
		j.Aggressiveness = aggr
	}
	return j
}

func (p onlinePolicy) Run(rt Runtime, j Job, deps []Resolved) (*Outcome, error) {
	return runLane(p, rt, j, deps)
}

func (onlinePolicy) OpenLane(rt Runtime, j Job, _ []Resolved) (*Lane, error) {
	b := workload.ByName(j.Bench)
	cfg := rt.Config()
	if j.Aggressiveness != 0 {
		cfg.Online.Aggressiveness = j.Aggressiveness
	}
	l := core.NewOnlineLane(cfg)
	return &Lane{Consumer: l.Consumer, Budget: b.RefWindow, Finish: func() (*Outcome, error) {
		res, _ := l.Finish()
		return &Outcome{Res: res}, nil
	}}, nil
}

// globalPolicy is the global-DVS comparator: a single-clock machine
// frequency-matched to the off-line oracle's run time. Both inputs are
// declared result dependencies, so they are cached and shared like any
// other job.
type globalPolicy struct{ basePolicy }

func (globalPolicy) Name() string { return PolicyGlobal }

func (globalPolicy) CanonicalJob(j Job, cfg core.Config) Job { return clearCommon(j) }

func (globalPolicy) Deps(cfg core.Config, j Job) []Dep {
	return []Dep{
		{Job: &Job{Bench: j.Bench, Policy: PolicySingleClock}},
		{Job: &Job{Bench: j.Bench, Policy: PolicyOffline}},
	}
}

// ShardAnchor follows the off-line dependency: it is the most expensive
// job in the chain, and the shard that owns the oracle training should
// also resolve the global run.
func (globalPolicy) ShardAnchor(cfg core.Config, j Job) *Dep {
	return &Dep{Job: &Job{Bench: j.Bench, Policy: PolicyOffline}}
}

func (p globalPolicy) Run(rt Runtime, j Job, deps []Resolved) (*Outcome, error) {
	return runLane(p, rt, j, deps)
}

func (globalPolicy) OpenLane(rt Runtime, j Job, deps []Resolved) (*Lane, error) {
	b := workload.ByName(j.Bench)
	sc, off := deps[0].Outcome, deps[1].Outcome
	mhz := control.GlobalDVSMHz(sc.Res.TimePs, off.Res.TimePs)
	l := core.NewSingleClockLane(rt.Config(), mhz)
	return &Lane{Consumer: l.Consumer, Budget: b.RefWindow, Finish: func() (*Outcome, error) {
		res, _ := l.Finish()
		return &Outcome{Res: res, GlobalMHz: mhz}, nil
	}}, nil
}

// schemePolicy runs the profile-driven edited binary under one of the
// paper's six context schemes: train on the training input, edit, run
// on the reference input.
type schemePolicy struct{ basePolicy }

func (schemePolicy) Name() string { return PolicyScheme }

func (schemePolicy) ValidateJob(j Job) error {
	if _, ok := SchemeByName(j.Scheme); !ok {
		var names []string
		for _, s := range calltree.Schemes() {
			names = append(names, s.Name)
		}
		return fmt.Errorf("sweep: unknown context scheme %q (registered: %s)", j.Scheme, strings.Join(names, ", "))
	}
	return nil
}

func (schemePolicy) CanonicalJob(j Job, cfg core.Config) Job {
	scheme, delta := j.Scheme, j.Delta
	j = clearCommon(j)
	j.Scheme = scheme
	if delta != cfg.DeltaPct {
		j.Delta = delta
	}
	return j
}

func (p schemePolicy) Deps(cfg core.Config, j Job) []Dep {
	return []Dep{{Profile: &ProfileSpec{Bench: j.Bench, Scheme: j.Scheme}}}
}

func (p schemePolicy) ShardAnchor(cfg core.Config, j Job) *Dep {
	return &Dep{Profile: &ProfileSpec{Bench: j.Bench, Scheme: j.Scheme}}
}

func (p schemePolicy) Run(rt Runtime, j Job, deps []Resolved) (*Outcome, error) {
	return runLane(p, rt, j, deps)
}

func (schemePolicy) OpenLane(rt Runtime, j Job, deps []Resolved) (*Lane, error) {
	b := workload.ByName(j.Bench)
	plan := rt.Plan(deps[0].Profile, j.Delta)
	l := core.NewEditedLane(rt.Config(), plan, false)
	return &Lane{Consumer: l.Consumer, Budget: b.RefWindow, Finish: func() (*Outcome, error) {
		out := &Outcome{}
		out.Res, out.Stats = l.Finish()
		out.StaticReconfig, out.StaticInstr = plan.StaticPoints()
		return out, nil
	}}, nil
}
