package sweep

import (
	"fmt"
	"strings"

	"repro/internal/calltree"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/workload"
)

// The built-in policies. They mirror the paper's comparators
// (Section 4): the MCD baseline, the globally synchronous single-clock
// machine, the off-line oracle, the on-line attack/decay controller, the
// matched global-DVS comparator, and the profile-driven edited binary
// under one of the six context schemes.
const (
	PolicyBaseline    = "baseline"
	PolicySingleClock = "single_clock"
	PolicyOffline     = "offline"
	PolicyOnline      = "online"
	PolicyGlobal      = "global"
	PolicyScheme      = "scheme"
)

func init() {
	// Registration order is the canonical policy order (Policies()).
	RegisterPolicy(baselinePolicy{})
	RegisterPolicy(singleClockPolicy{})
	RegisterPolicy(offlinePolicy{})
	RegisterPolicy(onlinePolicy{})
	RegisterPolicy(globalPolicy{})
	RegisterPolicy(schemePolicy{})
}

// basePolicy provides the no-op defaults shared by parameterless
// comparators.
type basePolicy struct{}

func (basePolicy) ValidateJob(Job) error             { return nil }
func (basePolicy) Deps(core.Config, Job) []Dep       { return nil }
func (basePolicy) ShardAnchor(core.Config, Job) *Dep { return nil }

// clearCommon zeroes every optional parameter; policies re-apply the
// ones they honor.
func clearCommon(j Job) Job {
	j.Scheme = ""
	j.Delta = 0
	j.Aggressiveness = 0
	j.MHz = 0
	return j
}

// offlineProfile is the off-line oracle's training dependency: the
// paper's most elaborate scheme trained on the reference input itself.
func offlineProfile(bench string) *ProfileSpec {
	return &ProfileSpec{Bench: bench, Scheme: calltree.LFCP.Name, OnRef: true}
}

// baselinePolicy runs the MCD baseline: all domains at full speed,
// synchronization penalties included.
type baselinePolicy struct{ basePolicy }

func (baselinePolicy) Name() string { return PolicyBaseline }

func (baselinePolicy) CanonicalJob(j Job, cfg core.Config) Job { return clearCommon(j) }

func (baselinePolicy) Run(rt Runtime, j Job, _ []Resolved) (*Outcome, error) {
	b := workload.ByName(j.Bench)
	out := &Outcome{}
	out.Res = core.RunBaselineFeed(rt.Config(), rt.Feeder(b, true), b.RefWindow)
	return out, nil
}

// singleClockPolicy runs the globally synchronous comparator at the
// job's frequency (default: full base speed).
type singleClockPolicy struct{ basePolicy }

func (singleClockPolicy) Name() string { return PolicySingleClock }

func (singleClockPolicy) CanonicalJob(j Job, cfg core.Config) Job {
	mhz := j.MHz
	j = clearCommon(j)
	if mhz != cfg.Sim.BaseMHz {
		j.MHz = mhz
	}
	return j
}

// ShardAnchor places the default-frequency run with the off-line chain
// that consumes it: the global-DVS comparator needs this job, and a cold
// fleet should compute it on the one shard that owns that chain instead
// of redundantly on every shard that hosts a global job. The anchor is
// placement-only — no training is triggered for benchmarks whose
// manifest never needs it.
func (singleClockPolicy) ShardAnchor(cfg core.Config, j Job) *Dep {
	if j.canonical(cfg).MHz != 0 {
		return nil // explicit-frequency ladder points place by their own key
	}
	return &Dep{Profile: offlineProfile(j.Bench)}
}

func (singleClockPolicy) Run(rt Runtime, j Job, _ []Resolved) (*Outcome, error) {
	b := workload.ByName(j.Bench)
	cfg := rt.Config()
	mhz := j.MHz
	if mhz == 0 {
		mhz = cfg.Sim.BaseMHz
	}
	out := &Outcome{}
	out.Res = core.RunSingleClockFeed(cfg, rt.Feeder(b, true), b.RefWindow, mhz)
	return out, nil
}

// offlinePolicy is the off-line oracle: train on the production input
// itself, run with zero-cost reconfiguration.
type offlinePolicy struct{ basePolicy }

func (offlinePolicy) Name() string { return PolicyOffline }

func (offlinePolicy) CanonicalJob(j Job, cfg core.Config) Job {
	delta := j.Delta
	j = clearCommon(j)
	if delta != cfg.DeltaPct {
		j.Delta = delta
	}
	return j
}

func (offlinePolicy) Deps(cfg core.Config, j Job) []Dep {
	return []Dep{{Profile: offlineProfile(j.Bench)}}
}

func (offlinePolicy) ShardAnchor(cfg core.Config, j Job) *Dep {
	return &Dep{Profile: offlineProfile(j.Bench)}
}

func (offlinePolicy) Run(rt Runtime, j Job, deps []Resolved) (*Outcome, error) {
	b := workload.ByName(j.Bench)
	out := &Outcome{}
	out.Res, _ = core.RunEditedFeed(rt.Config(), rt.Feeder(b, true), b.RefWindow,
		rt.Plan(deps[0].Profile, j.Delta), true)
	return out, nil
}

// onlinePolicy simulates the hardware attack/decay controller.
type onlinePolicy struct{ basePolicy }

func (onlinePolicy) Name() string { return PolicyOnline }

func (onlinePolicy) CanonicalJob(j Job, cfg core.Config) Job {
	aggr := j.Aggressiveness
	j = clearCommon(j)
	if aggr != cfg.Online.Aggressiveness {
		j.Aggressiveness = aggr
	}
	return j
}

func (onlinePolicy) Run(rt Runtime, j Job, _ []Resolved) (*Outcome, error) {
	b := workload.ByName(j.Bench)
	cfg := rt.Config()
	if j.Aggressiveness != 0 {
		cfg.Online.Aggressiveness = j.Aggressiveness
	}
	out := &Outcome{}
	out.Res = core.RunOnlineFeed(cfg, rt.Feeder(b, true), b.RefWindow)
	return out, nil
}

// globalPolicy is the global-DVS comparator: a single-clock machine
// frequency-matched to the off-line oracle's run time. Both inputs are
// declared result dependencies, so they are cached and shared like any
// other job.
type globalPolicy struct{ basePolicy }

func (globalPolicy) Name() string { return PolicyGlobal }

func (globalPolicy) CanonicalJob(j Job, cfg core.Config) Job { return clearCommon(j) }

func (globalPolicy) Deps(cfg core.Config, j Job) []Dep {
	return []Dep{
		{Job: &Job{Bench: j.Bench, Policy: PolicySingleClock}},
		{Job: &Job{Bench: j.Bench, Policy: PolicyOffline}},
	}
}

// ShardAnchor follows the off-line dependency: it is the most expensive
// job in the chain, and the shard that owns the oracle training should
// also resolve the global run.
func (globalPolicy) ShardAnchor(cfg core.Config, j Job) *Dep {
	return &Dep{Job: &Job{Bench: j.Bench, Policy: PolicyOffline}}
}

func (globalPolicy) Run(rt Runtime, j Job, deps []Resolved) (*Outcome, error) {
	b := workload.ByName(j.Bench)
	sc, off := deps[0].Outcome, deps[1].Outcome
	out := &Outcome{}
	out.GlobalMHz = control.GlobalDVSMHz(sc.Res.TimePs, off.Res.TimePs)
	out.Res = core.RunSingleClockFeed(rt.Config(), rt.Feeder(b, true), b.RefWindow, out.GlobalMHz)
	return out, nil
}

// schemePolicy runs the profile-driven edited binary under one of the
// paper's six context schemes: train on the training input, edit, run
// on the reference input.
type schemePolicy struct{ basePolicy }

func (schemePolicy) Name() string { return PolicyScheme }

func (schemePolicy) ValidateJob(j Job) error {
	if _, ok := SchemeByName(j.Scheme); !ok {
		var names []string
		for _, s := range calltree.Schemes() {
			names = append(names, s.Name)
		}
		return fmt.Errorf("sweep: unknown context scheme %q (registered: %s)", j.Scheme, strings.Join(names, ", "))
	}
	return nil
}

func (schemePolicy) CanonicalJob(j Job, cfg core.Config) Job {
	scheme, delta := j.Scheme, j.Delta
	j = clearCommon(j)
	j.Scheme = scheme
	if delta != cfg.DeltaPct {
		j.Delta = delta
	}
	return j
}

func (p schemePolicy) Deps(cfg core.Config, j Job) []Dep {
	return []Dep{{Profile: &ProfileSpec{Bench: j.Bench, Scheme: j.Scheme}}}
}

func (p schemePolicy) ShardAnchor(cfg core.Config, j Job) *Dep {
	return &Dep{Profile: &ProfileSpec{Bench: j.Bench, Scheme: j.Scheme}}
}

func (schemePolicy) Run(rt Runtime, j Job, deps []Resolved) (*Outcome, error) {
	b := workload.ByName(j.Bench)
	plan := rt.Plan(deps[0].Profile, j.Delta)
	out := &Outcome{}
	out.Res, out.Stats = core.RunEditedFeed(rt.Config(), rt.Feeder(b, true), b.RefWindow, plan, false)
	out.StaticReconfig, out.StaticInstr = plan.StaticPoints()
	return out, nil
}
