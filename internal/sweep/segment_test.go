package sweep

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// segTestRows builds merged rows with representative field shapes
// (negative values, nil vs empty float lists, empty strings).
func segTestRows(t *testing.T, n int) []Merged {
	t.Helper()
	cfg := core.DefaultConfig()
	rows := make([]Merged, n)
	for i := range rows {
		j := Job{Bench: fmt.Sprintf("bench%02d", i), Policy: PolicyOffline, Delta: float64(i) / 4}
		out := &Outcome{GlobalMHz: 600 + i, StaticReconfig: i, StaticInstr: i * 7}
		out.Res.Instructions = int64(i * 1000)
		out.Res.TimePs = int64(i) * 1_000_003
		out.Res.EnergyPJ = 0.25 * float64(i)
		switch i % 3 {
		case 0:
			out.Res.DomainPJ = nil
		case 1:
			out.Res.DomainPJ = []float64{}
		default:
			out.Res.DomainPJ = []float64{1.5, -2.25, float64(i)}
		}
		out.Res.AvgMHz = []float64{float64(600 + i)}
		out.Res.SyncCrossings = int64(-i)
		out.Res.MispredictRate = 0.01 * float64(i)
		out.Stats.DynReconfig = int64(i * 3)
		out.Stats.OverheadPct = float64(i) * 0.125
		rows[i] = Merged{Key: Key(cfg, j), Job: j, Outcome: out}
	}
	return rows
}

func sortedByKey(rows []Merged) []Merged {
	s := append([]Merged(nil), rows...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Key < s[j-1].Key; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}

func TestSegmentCodecRoundTrip(t *testing.T) {
	rows := segTestRows(t, 9)
	b, err := EncodeSegment(rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSegmentRows(b)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedByKey(rows)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Encoding is deterministic and order-independent.
	rev := append([]Merged(nil), rows...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	b2, err := EncodeSegment(rev)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("segment bytes depend on row order")
	}
}

// fillStruct sets every field of a struct (recursively) to a distinct
// non-zero value, so a field added to Job/Outcome but forgotten in the
// segment codec fails the completeness test below instead of silently
// decoding to zero.
func fillStruct(v reflect.Value, seed *int) {
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		*seed++
		switch f.Kind() {
		case reflect.Struct:
			*seed--
			fillStruct(f, seed)
		case reflect.String:
			f.SetString(fmt.Sprintf("v%d", *seed))
		case reflect.Int, reflect.Int64:
			f.SetInt(int64(*seed * 11))
		case reflect.Float64:
			f.SetFloat(float64(*seed) + 0.5)
		case reflect.Slice:
			if f.Type().Elem().Kind() == reflect.Float64 {
				f.Set(reflect.ValueOf([]float64{float64(*seed), float64(*seed) + 0.25}))
			}
		case reflect.Ptr:
			// handled by the caller
		default:
			panic(fmt.Sprintf("fillStruct: unhandled kind %s for field %s", f.Kind(), v.Type().Field(i).Name))
		}
	}
}

func TestSegmentCodecCompleteness(t *testing.T) {
	// Every Job and Outcome field, set via reflection, must survive the
	// codec — this is the tripwire for future fields missing a column.
	var job Job
	var out Outcome
	seed := 0
	fillStruct(reflect.ValueOf(&job).Elem(), &seed)
	fillStruct(reflect.ValueOf(&out).Elem(), &seed)
	key := strings.Repeat("ab", 32)
	rows := []Merged{{Key: key, Job: job, Outcome: &out}}
	b, err := EncodeSegment(rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSegmentRows(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], rows[0]) {
		t.Fatalf("codec drops data:\n got %+v\nwant %+v", got, rows)
	}
}

func TestSegmentStoreAppendGetScan(t *testing.T) {
	dir := t.TempDir()
	rows := segTestRows(t, 6)
	s := SegmentStoreFor(dir)
	if err := s.Append(rows[:4]); err != nil {
		t.Fatal(err)
	}
	// Overlapping append only seals the genuinely new rows.
	if err := s.Append(rows[2:]); err != nil {
		t.Fatal(err)
	}
	if got := s.Rows(); got != len(rows) {
		t.Fatalf("indexed %d rows, want %d", got, len(rows))
	}
	// A fresh store over the same directory (another process) sees all
	// rows by scanning.
	s2 := SegmentStoreFor(dir)
	for _, m := range rows {
		out, ok := s2.Get(m.Key)
		if !ok {
			t.Fatalf("row %.12s missing after scan", m.Key)
		}
		if !reflect.DeepEqual(out, m.Outcome) {
			t.Fatalf("row %.12s outcome mismatch", m.Key)
		}
	}
	// Fully redundant append writes no new file.
	files0 := segFiles(t, dir)
	if err := s2.Append(rows); err != nil {
		t.Fatal(err)
	}
	if files1 := segFiles(t, dir); len(files1) != len(files0) {
		t.Fatalf("redundant append grew %d -> %d files", len(files0), len(files1))
	}
}

func segFiles(t *testing.T, cacheDir string) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(cacheDir, SegmentSubdir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

func TestSegmentStoreCorruptQuarantine(t *testing.T) {
	dir := t.TempDir()
	rows := segTestRows(t, 5)
	s := SegmentStoreFor(dir)
	if err := s.Append(rows[:3]); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rows[3:]); err != nil {
		t.Fatal(err)
	}
	// Corrupt the first segment file (flip one payload byte).
	names := segFiles(t, dir)
	if len(names) != 2 {
		t.Fatalf("expected 2 segment files, got %v", names)
	}
	victim := filepath.Join(dir, SegmentSubdir, names[0])
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh := SegmentStoreFor(dir)
	served := 0
	for _, m := range rows {
		if _, ok := fresh.Get(m.Key); ok {
			served++
		}
	}
	// One file is quarantined, the other still serves.
	if served == len(rows) || served == 0 {
		t.Fatalf("served %d of %d rows with one corrupt segment", served, len(rows))
	}
	if got := fresh.CorruptRows(); got == 0 {
		t.Fatalf("corrupt rows not counted: %d", got)
	}
}

func TestSegmentStoreTruncatedRecovery(t *testing.T) {
	dir := t.TempDir()
	rows := segTestRows(t, 4)
	s := SegmentStoreFor(dir)
	if err := s.Append(rows); err != nil {
		t.Fatal(err)
	}
	names := segFiles(t, dir)
	victim := filepath.Join(dir, SegmentSubdir, names[0])
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, b[:len(b)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := SegmentStoreFor(dir)
	if _, ok := fresh.Get(rows[0].Key); ok {
		t.Fatal("truncated segment served a row")
	}
	// The damaged-row count uses the header row count when readable.
	if got := fresh.CorruptRows(); got != int64(len(rows)) {
		t.Fatalf("corrupt rows = %d, want %d", got, len(rows))
	}
	// Appending after quarantine re-seals the rows into a good segment.
	if err := fresh.Append(rows); err != nil {
		t.Fatal(err)
	}
	again := SegmentStoreFor(dir)
	for _, m := range rows {
		if _, ok := again.Get(m.Key); !ok {
			t.Fatalf("row %.12s not recovered", m.Key)
		}
	}
}

func TestEngineSegmentFastPathAndBackfill(t *testing.T) {
	cfg := core.DefaultConfig()
	dir := t.TempDir()
	jobs := testJobs()

	// Cold run with a JSON-only cache (no segments).
	var execs atomic.Int64
	e1 := New(cfg)
	e1.Cache = &Cache{Dir: dir}
	e1.ExecFn = fakeExec(&execs)
	if _, sum, err := e1.Run(context.Background(), jobs); err != nil || sum.Executed != len(jobs) {
		t.Fatalf("cold run: %v %+v", err, sum)
	}
	if files := segFiles(t, dir); len(files) != 0 {
		t.Fatalf("segment files without a store: %v", files)
	}

	// Warm run with segments enabled: served from JSON, backfills one
	// segment.
	e2 := New(cfg)
	e2.Cache = &Cache{Dir: dir}
	e2.Segments = SegmentStoreFor(dir)
	e2.ExecFn = fakeExec(&execs)
	_, sum2, err := e2.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Executed != 0 || sum2.DiskHits != len(jobs) || sum2.SegmentHits != 0 {
		t.Fatalf("backfill run summary: %+v", sum2)
	}
	if files := segFiles(t, dir); len(files) != 1 {
		t.Fatalf("backfill did not seal one segment: %v", files)
	}

	// Third run: all hits come from the segment layer, and they still
	// count as disk hits.
	e3 := New(cfg)
	e3.Cache = &Cache{Dir: dir}
	e3.Segments = SegmentStoreFor(dir)
	e3.ExecFn = fakeExec(&execs)
	_, sum3, err := e3.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum3.SegmentHits != len(jobs) || sum3.DiskHits != len(jobs) || sum3.Executed != 0 {
		t.Fatalf("segment run summary: %+v", sum3)
	}

	// Segment outcomes are value-identical to the JSON entries.
	c := &Cache{Dir: dir}
	st := SegmentStoreFor(dir)
	for _, j := range jobs {
		key := Key(cfg, j)
		fromJSON, ok1 := c.Get(key)
		fromSeg, ok2 := st.Get(key)
		if !ok1 || !ok2 || !reflect.DeepEqual(fromJSON, fromSeg) {
			t.Fatalf("layer mismatch for %s", j)
		}
	}

	// Truncate the segment: the engine falls back to JSON and surfaces
	// the damage in CorruptEntries.
	names := segFiles(t, dir)
	victim := filepath.Join(dir, SegmentSubdir, names[0])
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	e4 := New(cfg)
	e4.Cache = &Cache{Dir: dir}
	e4.Segments = SegmentStoreFor(dir)
	e4.ExecFn = fakeExec(&execs)
	_, sum4, err := e4.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum4.SegmentHits != 0 || sum4.DiskHits != len(jobs) || sum4.Executed != 0 {
		t.Fatalf("fallback run summary: %+v", sum4)
	}
	if sum4.CorruptEntries == 0 {
		t.Fatalf("truncated segment not surfaced: %+v", sum4)
	}
}
