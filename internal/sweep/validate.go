package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/arch"
	"repro/internal/calltree"
	"repro/internal/workload"
)

// Manifest validation shared by every submission surface. The CLI
// (cmd/mcdsweep) and the daemon (internal/serve) both parse through
// ParseManifest and validate through ValidateManifest, so a mistake
// reports the same structured (code, message, field) triple whether it
// arrives on the command line or over HTTP.

// Validation error codes.
const (
	// ErrBadJSON means the submission is not valid JSON for the
	// manifest shape (syntax error, wrong type, or an unknown field).
	ErrBadJSON = "bad_json"
	// ErrInvalidManifest means the JSON parsed but names something the
	// build does not register, or an out-of-range parameter.
	ErrInvalidManifest = "invalid_manifest"
)

// ManifestSchema is the manifest schema version this build writes and
// accepts. Version 0 (the field omitted) is the legacy pre-versioning
// shape and parses identically.
const ManifestSchema = 1

// ValidationError is a structured manifest error: a machine-readable
// code, a human message, and, when attributable, the manifest field
// that caused it. It is the exact payload the daemon returns in its
// error body and the CLI renders on stderr.
type ValidationError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

func (e *ValidationError) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("%s (field %q): %s", e.Code, e.Field, e.Message)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// ParseManifest decodes manifest JSON strictly: unknown fields are
// rejected (a typoed key silently meaning "sweep everything" is the
// worst failure mode a grid format can have), and the schema version
// must be one this build understands.
func ParseManifest(data []byte) (*Manifest, *ValidationError) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, &ValidationError{Code: ErrBadJSON, Message: "manifest: " + err.Error()}
	}
	if dec.More() {
		return nil, &ValidationError{Code: ErrBadJSON, Message: "manifest: trailing data after JSON object"}
	}
	if m.Schema != 0 && m.Schema != ManifestSchema {
		return nil, &ValidationError{
			Code:    ErrInvalidManifest,
			Field:   "schema",
			Message: fmt.Sprintf("manifest: unsupported schema version %d (this build supports %d)", m.Schema, ManifestSchema),
		}
	}
	return &m, nil
}

// ValidateManifest checks a parsed manifest and returns its enumerated
// job grid. Failures are attributed to the manifest field that caused
// them, and every check runs through the same validation path direct
// job construction hits (Job.Validate, arch.TopologyByName), so an
// unknown topology, policy or scheme reports the identical
// registered-name listing on every surface.
func ValidateManifest(m *Manifest) ([]Job, *ValidationError) {
	if _, err := arch.TopologyByName(m.Topology); err != nil {
		return nil, &ValidationError{Code: ErrInvalidManifest, Field: "topology", Message: err.Error()}
	}
	if m.RecordingCache < 0 {
		return nil, &ValidationError{
			Code:    ErrInvalidManifest,
			Field:   "recording_cache",
			Message: fmt.Sprintf("manifest: recording_cache %d out of range", m.RecordingCache),
		}
	}
	if m.TrainWorkers < 0 {
		return nil, &ValidationError{
			Code:    ErrInvalidManifest,
			Field:   "train_workers",
			Message: fmt.Sprintf("manifest: train_workers %d out of range", m.TrainWorkers),
		}
	}
	// Probe each grid dimension with a minimal job so the error text is
	// Job.Validate's own.
	probeBench := workload.Names()[0]
	for _, b := range m.Benchmarks {
		if err := (Job{Bench: b, Policy: PolicyBaseline}).Validate(); err != nil {
			return nil, &ValidationError{Code: ErrInvalidManifest, Field: "benchmarks", Message: err.Error()}
		}
	}
	probeScheme := calltree.Schemes()[0].Name
	for _, p := range m.Policies {
		// The scheme policy's own validation needs a scheme; probe it
		// with a registered one so only the policy name is under test.
		j := Job{Bench: probeBench, Policy: p}
		if p == PolicyScheme {
			j.Scheme = probeScheme
		}
		if err := j.Validate(); err != nil {
			return nil, &ValidationError{Code: ErrInvalidManifest, Field: "policies", Message: err.Error()}
		}
	}
	for _, sc := range m.Schemes {
		if err := (Job{Bench: probeBench, Policy: PolicyScheme, Scheme: sc}).Validate(); err != nil {
			return nil, &ValidationError{Code: ErrInvalidManifest, Field: "schemes", Message: err.Error()}
		}
	}
	// Full enumeration catches everything else (parameter ranges and any
	// cross-field combination); the enumerated grid is returned so
	// submission paths never re-derive it.
	jobs, err := m.Jobs()
	if err != nil {
		return nil, &ValidationError{Code: ErrInvalidManifest, Message: err.Error()}
	}
	return jobs, nil
}
