package sweep

import (
	"strings"
	"testing"
)

// TestParseManifestStrict pins the shared validator's parse contract:
// unknown fields and malformed JSON are bad_json, an unsupported
// schema version is invalid_manifest attributed to "schema", and both
// the omitted and current version parse.
func TestParseManifestStrict(t *testing.T) {
	cases := []struct {
		name  string
		body  string
		code  string // "" means accept
		field string
	}{
		{"current schema", `{"schema": 1, "benchmarks": ["gzip"]}`, "", ""},
		{"legacy no schema", `{"benchmarks": ["gzip"]}`, "", ""},
		{"future schema", `{"schema": 2}`, ErrInvalidManifest, "schema"},
		{"unknown field", `{"benchmark": ["gzip"]}`, ErrBadJSON, ""},
		{"syntax error", `{"benchmarks": [`, ErrBadJSON, ""},
		{"trailing data", `{"benchmarks": ["gzip"]} {}`, ErrBadJSON, ""},
		{"wrong type", `{"benchmarks": "gzip"}`, ErrBadJSON, ""},
	}
	for _, c := range cases {
		m, verr := ParseManifest([]byte(c.body))
		if c.code == "" {
			if verr != nil {
				t.Errorf("%s: rejected: %v", c.name, verr)
			} else if m == nil {
				t.Errorf("%s: nil manifest", c.name)
			}
			continue
		}
		if verr == nil {
			t.Errorf("%s: accepted, want code %s", c.name, c.code)
			continue
		}
		if verr.Code != c.code || verr.Field != c.field {
			t.Errorf("%s: got (%s, field %q), want (%s, field %q)",
				c.name, verr.Code, verr.Field, c.code, c.field)
		}
	}
}

// TestValidateManifestFields pins field attribution for semantic
// failures — the same triple the daemon returns and the CLI prints.
func TestValidateManifestFields(t *testing.T) {
	cases := []struct {
		name  string
		m     Manifest
		field string
	}{
		{"topology", Manifest{Topology: "hexa12"}, "topology"},
		{"benchmarks", Manifest{Benchmarks: []string{"nope"}}, "benchmarks"},
		{"policies", Manifest{Policies: []string{"nope"}}, "policies"},
		{"schemes", Manifest{Schemes: []string{"nope"}, Policies: []string{PolicyScheme}}, "schemes"},
		{"recording cache", Manifest{RecordingCache: -1}, "recording_cache"},
		{"cross-field", Manifest{Benchmarks: []string{"gzip"}, Policies: []string{PolicyOnline}, Aggressiveness: []float64{-1}}, ""},
	}
	for _, c := range cases {
		_, verr := ValidateManifest(&c.m)
		if verr == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if verr.Code != ErrInvalidManifest || verr.Field != c.field {
			t.Errorf("%s: got (%s, field %q), want (invalid_manifest, field %q)",
				c.name, verr.Code, verr.Field, c.field)
		}
	}
	m := Manifest{Benchmarks: []string{"gzip"}, Policies: []string{PolicyBaseline, PolicySingleClock}}
	jobs, verr := ValidateManifest(&m)
	if verr != nil || len(jobs) != 2 {
		t.Fatalf("valid manifest: jobs %d, err %v", len(jobs), verr)
	}
}

// TestValidationErrorText pins the CLI rendering: code and field are in
// the error string a wrapped LoadManifest failure prints.
func TestValidationErrorText(t *testing.T) {
	e := &ValidationError{Code: ErrInvalidManifest, Field: "topology", Message: "unknown topology"}
	s := e.Error()
	for _, want := range []string{ErrInvalidManifest, `"topology"`, "unknown topology"} {
		if !strings.Contains(s, want) {
			t.Errorf("error text %q missing %q", s, want)
		}
	}
}
