package sweep

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/obs"
)

// traceManifest is the trained mixed-policy manifest the trace tests
// run: baseline (pure simulation), off-line oracle and the L+F scheme
// cover every span phase — job, stream, profile, train, treewalk,
// collect, shake, simulate, persist and seal.
func traceManifest() *Manifest {
	return &Manifest{
		Benchmarks: []string{"adpcm_decode"},
		Policies:   []string{PolicyBaseline, PolicyOffline, PolicyScheme},
		Schemes:    []string{"L+F"},
		Deltas:     []float64{1.75},
	}
}

// tracedRun executes m into a fresh cache directory with every store
// layer attached, optionally tracing, and returns the cache tree, the
// merged report bytes, and the recorded spans (nil when untraced).
func tracedRun(t *testing.T, m *Manifest, traced bool) (map[string][]byte, []byte, []obs.Span) {
	t.Helper()
	jobs, err := m.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := m.Config()
	cfg.TrainWorkers = 1
	eng := New(cfg)
	eng.Workers = 1
	eng.Cache = &Cache{Dir: dir}
	eng.Artifacts = ArtifactStore(dir)
	eng.Streams = StreamStoreFor(dir)
	eng.Segments = SegmentStoreFor(dir)
	if traced {
		eng.Trace = obs.NewTracer(0)
	}
	if _, _, err := eng.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	var merged bytes.Buffer
	if err := MergeTo(&merged, cfg, jobs, SourceFor(dir)); err != nil {
		t.Fatal(err)
	}
	var spans []obs.Span
	if traced {
		spans, _, _ = eng.Trace.Snapshot(0)
		if len(spans) == 0 {
			t.Fatal("tracer attached but no spans recorded")
		}
	}
	return readTree(t, dir), merged.Bytes(), spans
}

// TestTraceDeterministicSpanSequence runs the same manifest twice at
// Workers=1 and asserts the two span sequences are identical once the
// wall-clock fields (StartNS, DurNS) are zeroed: same phases, same
// keys, same outcomes, same order, same derived IDs. Span identity is
// (key, ring sequence) by construction — nothing time- or host-derived
// — so any divergence here means execution order itself diverged.
func TestTraceDeterministicSpanSequence(t *testing.T) {
	m := traceManifest()
	_, _, a := tracedRun(t, m, true)
	_, _, b := tracedRun(t, m, true)
	if len(a) != len(b) {
		t.Fatalf("span counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		x.StartNS, x.DurNS = 0, 0
		y.StartNS, y.DurNS = 0, 0
		if x != y {
			t.Fatalf("span %d differs between identical runs:\n run 1: %+v\n run 2: %+v", i, x, y)
		}
	}
	// The phase vocabulary the report layer documents must actually
	// show up for a trained mixed-policy run.
	seen := map[string]bool{}
	for _, s := range a {
		seen[s.Phase] = true
	}
	for _, phase := range []string{"job", "stream", "profile", "train", "treewalk", "collect", "shake", "simulate", "persist", "seal"} {
		if !seen[phase] {
			t.Errorf("no %q span recorded", phase)
		}
	}
}

// TestTracedRunIsInvisible is the observer-effect gate: a traced run
// must leave a byte-identical cache tree (result entries, artifacts,
// packed streams, segments — file names included) and merge to
// byte-identical report bytes as an untraced run of the same manifest.
// Span data can never enter a content address, because the traced and
// untraced runs would then name their entries differently. Checked on
// the trained default-topology manifest plus an untrained grid under
// every other built-in topology.
func TestTracedRunIsInvisible(t *testing.T) {
	cases := []struct {
		name string
		m    *Manifest
	}{
		{"paper4-trained", traceManifest()},
	}
	if !testing.Short() {
		for _, topo := range []string{"sync1", "fe-be2", "fine6"} {
			cases = append(cases, struct {
				name string
				m    *Manifest
			}{topo, &Manifest{
				Benchmarks: []string{"g721_decode"},
				Policies:   []string{PolicyBaseline, PolicyOnline, PolicySingleClock},
				Topology:   topo,
			}})
		}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plainTree, plainMerged, _ := tracedRun(t, tc.m, false)
			tracedTree, tracedMerged, _ := tracedRun(t, tc.m, true)
			if len(plainTree) != len(tracedTree) {
				t.Errorf("cache trees differ in size: %d files untraced, %d traced", len(plainTree), len(tracedTree))
			}
			for rel, pb := range plainTree {
				tb, ok := tracedTree[rel]
				if !ok {
					t.Errorf("traced cache missing %s", rel)
					continue
				}
				if !bytes.Equal(pb, tb) {
					t.Errorf("cache entry %s differs between traced and untraced runs", rel)
				}
			}
			for rel := range tracedTree {
				if _, ok := plainTree[rel]; !ok {
					t.Errorf("traced cache has extra entry %s", rel)
				}
			}
			if !bytes.Equal(plainMerged, tracedMerged) {
				t.Error("merged report bytes differ between traced and untraced runs")
			}
		})
	}
}
