package sweep

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// fakeExec returns a deterministic outcome derived from the job, and
// counts executions, so cache and shard logic can be tested without
// running the simulator.
func fakeExec(count *atomic.Int64) func(Job) (*Outcome, error) {
	return func(j Job) (*Outcome, error) {
		count.Add(1)
		out := &Outcome{}
		out.Res.Instructions = int64(len(j.Bench) * 1000)
		out.Res.TimePs = int64(len(j.Policy))*1_000_000 + int64(j.Delta*1000) + int64(j.Aggressiveness*100)
		out.Res.EnergyPJ = float64(len(j.Scheme)) * 7.5
		return out, nil
	}
}

func testJobs() []Job {
	return []Job{
		{Bench: "adpcm_decode", Policy: PolicyBaseline},
		{Bench: "adpcm_decode", Policy: PolicyScheme, Scheme: "L+F"},
		{Bench: "adpcm_decode", Policy: PolicyScheme, Scheme: "L+F", Delta: 2},
		{Bench: "mcf", Policy: PolicyOnline, Aggressiveness: 1.2},
		{Bench: "mcf", Policy: PolicySingleClock},
		{Bench: "swim", Policy: PolicyScheme, Scheme: "F+P", Delta: 0.5},
	}
}

func TestKeyStability(t *testing.T) {
	cfg := core.DefaultConfig()
	job := Job{Bench: "mcf", Policy: PolicyScheme, Scheme: "L+F", Delta: 2}
	k1 := Key(cfg, job)
	if k2 := Key(cfg, job); k2 != k1 {
		t.Fatalf("key not deterministic: %s vs %s", k1, k2)
	}
	// A config rebuilt from its serialized form (as another process
	// would see it) must key identically.
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var cfg2 core.Config
	if err := json.Unmarshal(b, &cfg2); err != nil {
		t.Fatal(err)
	}
	if k2 := Key(cfg2, job); k2 != k1 {
		t.Fatalf("key unstable across config round-trip: %s vs %s", k1, k2)
	}
}

func TestKeySensitivity(t *testing.T) {
	cfg := core.DefaultConfig()
	base := Job{Bench: "mcf", Policy: PolicyScheme, Scheme: "L+F"}
	seen := map[string]string{Key(cfg, base): "base"}
	variants := map[string]Job{
		"bench":  {Bench: "swim", Policy: PolicyScheme, Scheme: "L+F"},
		"policy": {Bench: "mcf", Policy: PolicyOffline},
		"scheme": {Bench: "mcf", Policy: PolicyScheme, Scheme: "F"},
		"delta":  {Bench: "mcf", Policy: PolicyScheme, Scheme: "L+F", Delta: 2},
	}
	for name, j := range variants {
		k := Key(cfg, j)
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[k] = name
	}
	cfg2 := cfg
	cfg2.DeltaPct = 3
	if _, dup := seen[Key(cfg2, base)]; dup {
		t.Error("config change did not change the key")
	}
}

func TestKeyCanonicalization(t *testing.T) {
	cfg := core.DefaultConfig()
	// Explicitly spelling out a policy's default parameter, or setting a
	// parameter the policy ignores, must key identically to the plain
	// job — otherwise the cache would simulate the same work twice.
	pairs := [][2]Job{
		{{Bench: "mcf", Policy: PolicyOffline},
			{Bench: "mcf", Policy: PolicyOffline, Delta: cfg.DeltaPct}},
		{{Bench: "mcf", Policy: PolicySingleClock},
			{Bench: "mcf", Policy: PolicySingleClock, MHz: cfg.Sim.BaseMHz}},
		{{Bench: "mcf", Policy: PolicyOnline},
			{Bench: "mcf", Policy: PolicyOnline, Aggressiveness: cfg.Online.Aggressiveness}},
		{{Bench: "mcf", Policy: PolicyBaseline},
			{Bench: "mcf", Policy: PolicyBaseline, Delta: 3, Scheme: "L+F", MHz: 500}},
	}
	for _, p := range pairs {
		if Key(cfg, p[0]) != Key(cfg, p[1]) {
			t.Errorf("equivalent jobs key differently: %s vs %s", p[0], p[1])
		}
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	for _, j := range []Job{
		{Bench: "mcf", Policy: PolicyScheme, Scheme: "L+F", Delta: -1},
		{Bench: "mcf", Policy: PolicyScheme, Scheme: "L+F", Delta: math.NaN()},
		{Bench: "mcf", Policy: PolicyOnline, Aggressiveness: math.Inf(1)},
		{Bench: "mcf", Policy: PolicySingleClock, MHz: -500},
	} {
		if j.Validate() == nil {
			t.Errorf("%s: out-of-range parameters not rejected", j)
		}
	}
}

func TestShardPartition(t *testing.T) {
	cfg := core.DefaultConfig()
	jobs := testJobs()
	for _, shards := range []int{1, 2, 3, 5} {
		counts := make(map[string]int)
		for idx := 0; idx < shards; idx++ {
			for _, j := range Shard(cfg, jobs, shards, idx) {
				counts[Key(cfg, j)]++
			}
		}
		if len(counts) != len(jobs) {
			t.Fatalf("shards=%d: %d distinct jobs covered, want %d", shards, len(counts), len(jobs))
		}
		for k, n := range counts {
			if n != 1 {
				t.Errorf("shards=%d: job %s assigned %d times", shards, k[:12], n)
			}
		}
		// A global job must land with its off-line dependency so cold
		// sharded runs never train the same oracle twice.
		cfg := core.DefaultConfig()
		g := shardOf(shardKey(cfg, Job{Bench: "mcf", Policy: PolicyGlobal}), shards)
		o := shardOf(shardKey(cfg, Job{Bench: "mcf", Policy: PolicyOffline}), shards)
		if g != o {
			t.Errorf("shards=%d: global in shard %d but its offline dependency in shard %d", shards, g, o)
		}
	}
}

func TestCacheHitMissCorrupt(t *testing.T) {
	dir := t.TempDir()
	cfg := core.DefaultConfig()
	jobs := testJobs()

	var execs atomic.Int64
	fresh := func() *Engine {
		e := New(cfg)
		e.Cache = &Cache{Dir: dir}
		e.ExecFn = fakeExec(&execs)
		return e
	}

	// Cold run: everything misses and executes.
	e1 := fresh()
	outs1, sum, err := e1.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Executed != len(jobs) || sum.DiskHits != 0 {
		t.Fatalf("cold run summary: %s", sum)
	}

	// Same engine again: pure in-process memo hits.
	_, sum, err = e1.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MemHits != len(jobs) || sum.Executed != 0 {
		t.Fatalf("warm rerun summary: %s", sum)
	}

	// A fresh engine (a new process, as far as the cache is concerned)
	// must be served entirely from disk with identical outcomes.
	execs.Store(0)
	outs2, sum, err := fresh().Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.DiskHits != len(jobs) || sum.Executed != 0 || execs.Load() != 0 {
		t.Fatalf("disk-hit run summary: %s (execs=%d)", sum, execs.Load())
	}
	for i := range outs1 {
		if !reflect.DeepEqual(outs1[i], outs2[i]) {
			t.Errorf("job %d: outcome changed across cache round-trip", i)
		}
	}

	// Corrupt one entry; only that job re-executes, and the rewritten
	// entry serves the next engine.
	key := Key(cfg, jobs[0])
	path := filepath.Join(dir, key[:2], key+".json")
	if err := os.WriteFile(path, []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	execs.Store(0)
	_, sum, err = fresh().Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Executed != 1 || sum.DiskHits != len(jobs)-1 {
		t.Fatalf("corrupt-entry run summary: %s", sum)
	}
	// A syntactically valid entry whose stored key mismatches is also a
	// miss (e.g. a file copied to the wrong name).
	if err := os.WriteFile(path, []byte(`{"key":"beef","job":{},"outcome":{"result":{}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	execs.Store(0)
	_, sum, err = fresh().Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Executed != 1 {
		t.Fatalf("key-mismatch run summary: %s", sum)
	}
	execs.Store(0)
	_, sum, err = fresh().Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Executed != 0 || sum.DiskHits != len(jobs) {
		t.Fatalf("post-repair run summary: %s", sum)
	}
}

func TestPersistFailureKeepsResult(t *testing.T) {
	// A cache rooted under a regular file cannot create entry
	// directories, failing Put regardless of the user's privileges.
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	var execs atomic.Int64
	e := New(core.DefaultConfig())
	e.Cache = &Cache{Dir: filepath.Join(blocker, "cache")}
	e.ExecFn = fakeExec(&execs)
	job := Job{Bench: "mcf", Policy: PolicyBaseline}
	out, src, err := e.Do(job)
	if err != nil || out == nil || src != SourceExecuted {
		t.Fatalf("unwritable cache lost the result: out=%v src=%v err=%v", out, src, err)
	}
	// The outcome stays memoized in process despite never persisting.
	if _, src, _ := e.Do(job); src != SourceMemory {
		t.Errorf("result not memoized after persist failure (src=%v)", src)
	}
	if execs.Load() != 1 {
		t.Errorf("executed %d times, want 1", execs.Load())
	}
}

func TestSingleflight(t *testing.T) {
	var execs atomic.Int64
	gate := make(chan struct{})
	e := New(core.DefaultConfig())
	e.ExecFn = func(j Job) (*Outcome, error) {
		execs.Add(1)
		<-gate
		return &Outcome{}, nil
	}
	job := Job{Bench: "mcf", Policy: PolicyBaseline}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := e.Do(job); err != nil {
				t.Error(err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Fatalf("concurrent duplicate jobs executed %d times, want 1", n)
	}
}

func TestMergeShardedMatchesUnsharded(t *testing.T) {
	cfg := core.DefaultConfig()
	jobs := testJobs()

	runInto := func(dir string, shards int) {
		for idx := 0; idx < shards; idx++ {
			var execs atomic.Int64
			e := New(cfg)
			e.Cache = &Cache{Dir: dir}
			e.ExecFn = fakeExec(&execs)
			if _, _, err := e.Run(context.Background(), Shard(cfg, jobs, shards, idx)); err != nil {
				t.Fatal(err)
			}
		}
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	runInto(dirA, 1)
	runInto(dirB, 3)

	mergedA, err := Merge(cfg, jobs, &Cache{Dir: dirA})
	if err != nil {
		t.Fatal(err)
	}
	mergedB, err := Merge(cfg, jobs, &Cache{Dir: dirB})
	if err != nil {
		t.Fatal(err)
	}
	bytesA, _ := json.Marshal(mergedA)
	bytesB, _ := json.Marshal(mergedB)
	if string(bytesA) != string(bytesB) {
		t.Fatalf("sharded merge differs from unsharded:\n%s\nvs\n%s", bytesA, bytesB)
	}

	// Merging a manifest with uncached work names the missing job.
	extra := append(append([]Job(nil), jobs...), Job{Bench: "applu", Policy: PolicyBaseline})
	if _, err := Merge(cfg, extra, &Cache{Dir: dirA}); err == nil {
		t.Fatal("merge with missing entry did not fail")
	}
}

func TestManifestEnumeration(t *testing.T) {
	m := &Manifest{
		Benchmarks:     []string{"adpcm_decode", "mcf"},
		Policies:       []string{PolicyBaseline, PolicyOffline, PolicyOnline, PolicySingleClock, PolicyScheme},
		Schemes:        []string{"L+F", "F"},
		Deltas:         []float64{1, 2, 3},
		Aggressiveness: []float64{0.5, 1.8},
		MHz:            []int{250, 500, 1000},
	}
	jobs, err := m.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// Per benchmark: 1 baseline + 3 offline deltas + 2 online points +
	// 3 single-clock frequencies + 2 schemes x 3 deltas; each parameter
	// sweep multiplies only its own policy.
	want := 2 * (1 + 3 + 2 + 3 + 2*3)
	if len(jobs) != want {
		t.Fatalf("enumerated %d jobs, want %d", len(jobs), want)
	}
	for _, j := range jobs {
		if j.Policy == PolicyBaseline && (j.Delta != 0 || j.Aggressiveness != 0) {
			t.Errorf("baseline job carries sweep parameters: %s", j)
		}
	}

	if _, err := (&Manifest{Benchmarks: []string{"nope"}}).Jobs(); err == nil {
		t.Error("unknown benchmark not rejected")
	}
	if _, err := (&Manifest{Policies: []string{"nope"}}).Jobs(); err == nil {
		t.Error("unknown policy not rejected")
	}
	if _, err := (&Manifest{Policies: []string{PolicyScheme}, Schemes: []string{"nope"}}).Jobs(); err == nil {
		t.Error("unknown scheme not rejected")
	}

	// The zero manifest is the full evaluation grid and must validate.
	full, err := (&Manifest{}).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 19*(4+1+6) {
		t.Fatalf("full grid = %d jobs", len(full))
	}
}

// TestEndToEndCache drives the real executor on the smallest benchmark:
// every policy runs once, lands in the cache, and a second engine
// resolves the identical sweep with zero simulator executions.
func TestEndToEndCache(t *testing.T) {
	dir := t.TempDir()
	cfg := core.DefaultConfig()
	jobs := []Job{
		{Bench: "g721_decode", Policy: PolicyBaseline},
		{Bench: "g721_decode", Policy: PolicySingleClock},
		{Bench: "g721_decode", Policy: PolicyOffline},
		{Bench: "g721_decode", Policy: PolicyOnline},
		{Bench: "g721_decode", Policy: PolicyGlobal},
		{Bench: "g721_decode", Policy: PolicyScheme, Scheme: "L+F"},
		{Bench: "g721_decode", Policy: PolicyScheme, Scheme: "L+F", Delta: 4},
		{Bench: "g721_decode", Policy: PolicySingleClock, MHz: 500},
	}

	e1 := New(cfg)
	e1.Cache = &Cache{Dir: dir}
	outs1, sum, err := e1.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Executed != len(jobs) {
		t.Fatalf("cold run summary: %s", sum)
	}
	for i, o := range outs1 {
		if o.Res.Instructions == 0 || o.Res.TimePs <= 0 {
			t.Fatalf("job %s: degenerate result %+v", jobs[i], o.Res)
		}
	}
	if outs1[4].GlobalMHz == 0 {
		t.Error("global policy did not record its matched frequency")
	}
	if outs1[5].StaticReconfig == 0 {
		t.Error("scheme policy did not record static points")
	}
	// A larger tolerated slowdown must not reduce energy savings.
	if outs1[6].Res.EnergyPJ > outs1[5].Res.EnergyPJ {
		t.Errorf("delta=4 used more energy (%.0f pJ) than delta=default (%.0f pJ)",
			outs1[6].Res.EnergyPJ, outs1[5].Res.EnergyPJ)
	}
	// Halving the single clock must lengthen the run.
	if outs1[7].Res.TimePs <= outs1[1].Res.TimePs {
		t.Errorf("single clock at 500 MHz (%d ps) not slower than full speed (%d ps)",
			outs1[7].Res.TimePs, outs1[1].Res.TimePs)
	}

	e2 := New(cfg)
	e2.Cache = &Cache{Dir: dir}
	outs2, sum, err := e2.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Executed != 0 || sum.DiskHits != len(jobs) {
		t.Fatalf("second run summary: %s (want zero executions)", sum)
	}
	for i := range outs1 {
		a, _ := json.Marshal(outs1[i])
		b, _ := json.Marshal(outs2[i])
		if string(a) != string(b) {
			t.Errorf("job %s: cached outcome differs from computed\n%s\nvs\n%s", jobs[i], a, b)
		}
	}
}
