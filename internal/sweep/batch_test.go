package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/arch"
)

// TestBatchedMatchesSequential is the batching acceptance gate: for
// every built-in topology, a full policy grid run with lockstep
// batching must be indistinguishable on disk and in memory from the
// same grid run job-by-job — identical per-job outcomes, identical
// result-cache entry bytes, identical artifact-store bytes, and the
// same executed/error counts. Batching is a throughput optimization
// only; any divergence here is a correctness bug, not a tuning matter.
func TestBatchedMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two profiles per topology, twice")
	}
	for _, name := range arch.TopologyNames() {
		t.Run(name, func(t *testing.T) {
			m := &Manifest{
				Benchmarks: []string{"g721_decode"},
				Policies:   Policies(),
				Schemes:    []string{"L+F"},
				Topology:   name,
			}
			jobs, err := m.Jobs()
			if err != nil {
				t.Fatal(err)
			}
			cfg := m.Config()
			run := func(dir string, opts ...RunOption) ([]*Outcome, Summary) {
				eng := New(cfg)
				eng.Cache = &Cache{Dir: dir}
				eng.Artifacts = ArtifactStore(dir)
				outs, sum, err := eng.Run(context.Background(), jobs, opts...)
				if err != nil {
					t.Fatal(err)
				}
				return outs, sum
			}
			dirSeq, dirBat := t.TempDir(), t.TempDir()
			seqOuts, seqSum := run(dirSeq, WithBatching(0))
			batOuts, batSum := run(dirBat) // automatic lockstep width

			for i := range jobs {
				a, _ := json.Marshal(seqOuts[i])
				b, _ := json.Marshal(batOuts[i])
				if !bytes.Equal(a, b) {
					t.Errorf("%s: outcome diverged\nseq %s\nbat %s", jobs[i], a, b)
				}
			}
			if seqSum.Executed != batSum.Executed || seqSum.Errors != batSum.Errors {
				t.Errorf("summary diverged: seq %+v bat %+v", seqSum, batSum)
			}
			compareTrees(t, dirSeq, dirBat)
		})
	}
}

// compareTrees asserts two cache directories hold the same relative
// paths with the same bytes.
func compareTrees(t *testing.T, dirA, dirB string) {
	t.Helper()
	list := func(root string) map[string][]byte {
		files := make(map[string][]byte)
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			rel, _ := filepath.Rel(root, path)
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			files[rel] = b
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return files
	}
	a, b := list(dirA), list(dirB)
	if len(a) != len(b) {
		t.Errorf("cache trees differ: %d vs %d files", len(a), len(b))
	}
	for rel, ab := range a {
		bb, ok := b[rel]
		if !ok {
			t.Errorf("batched cache missing %s", rel)
			continue
		}
		if !bytes.Equal(ab, bb) {
			t.Errorf("cache entry %s differs between sequential and batched runs", rel)
		}
	}
	for rel := range b {
		if _, ok := a[rel]; !ok {
			t.Errorf("batched cache has extra entry %s", rel)
		}
	}
}
