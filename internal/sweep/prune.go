package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/artifact"
)

// artifactSubdir is where a cache directory's co-located artifact store
// lives. Result entries fan out under two-hex-character directories, so
// the name can never collide with one.
const artifactSubdir = "artifacts"

// ArtifactStore returns the artifact store conventionally co-located
// with a result cache directory (its "artifacts" subdirectory), so one
// shared directory tree — on one machine or a network mount — carries
// both the results and the training artifacts they were built from.
func ArtifactStore(cacheDir string) *artifact.Store {
	return &artifact.Store{Dir: filepath.Join(cacheDir, artifactSubdir)}
}

// entryKey reports whether name looks like a content-addressed entry
// file (<64 hex chars>.json) and returns its key.
func entryKey(name string) (string, bool) { return entryKeyExt(name, ".json") }

// entryKeyExt is entryKey for an arbitrary entry extension (the stream
// store uses .bin).
func entryKeyExt(name, ext string) (string, bool) {
	key, ok := strings.CutSuffix(name, ext)
	if !ok || len(key) != 64 {
		return "", false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", false
		}
	}
	return key, true
}

// isFanoutDir reports whether name is a two-hex-character fan-out
// directory.
func isFanoutDir(name string) bool {
	if len(name) != 2 {
		return false
	}
	_, ok := entryKey(name + strings.Repeat("0", 62) + ".json")
	return ok
}

// Unreachable scans a shared cache directory — result entries at the
// top level, the artifact store under artifacts/, the packed-stream
// cache under streams/ — and returns the entry files whose keys are not
// in the given reachable sets, as sorted cache-relative paths. Leftover
// temp files from interrupted writers are included (they are garbage by
// construction); files outside the recognized layouts are left alone.
func Unreachable(dir string, results, artifacts, streams map[string]bool) ([]string, error) {
	var out []string
	scan := func(root, ext string, keep map[string]bool) error {
		entries, err := os.ReadDir(root)
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		for _, fan := range entries {
			if !fan.IsDir() || !isFanoutDir(fan.Name()) {
				continue
			}
			files, err := os.ReadDir(filepath.Join(root, fan.Name()))
			if err != nil {
				return err
			}
			for _, f := range files {
				if f.IsDir() {
					continue
				}
				if key, ok := entryKeyExt(f.Name(), ext); ok && keep[key] {
					continue
				}
				rel, err := filepath.Rel(dir, filepath.Join(root, fan.Name(), f.Name()))
				if err != nil {
					return err
				}
				out = append(out, rel)
			}
		}
		return nil
	}
	if err := scan(dir, ".json", results); err != nil {
		return nil, fmt.Errorf("sweep: prune scan: %w", err)
	}
	if err := scan(filepath.Join(dir, artifactSubdir), ".json", artifacts); err != nil {
		return nil, fmt.Errorf("sweep: prune scan: %w", err)
	}
	if err := scan(filepath.Join(dir, streamSubdir), ".bin", streams); err != nil {
		return nil, fmt.Errorf("sweep: prune scan: %w", err)
	}
	sort.Strings(out)
	return out, nil
}

// Prune deletes the given cache-relative entry files under dir and
// removes any fan-out directories left empty. It returns the number of
// files removed and the bytes reclaimed.
func Prune(dir string, rel []string) (removed int, bytes int64, err error) {
	dirs := make(map[string]bool)
	for _, r := range rel {
		path := filepath.Join(dir, r)
		if info, serr := os.Stat(path); serr == nil {
			bytes += info.Size()
		}
		if rerr := os.Remove(path); rerr != nil {
			if os.IsNotExist(rerr) {
				continue
			}
			return removed, bytes, fmt.Errorf("sweep: prune: %w", rerr)
		}
		removed++
		dirs[filepath.Dir(path)] = true
	}
	// Best-effort cleanup of emptied fan-out directories.
	var emptied []string
	for d := range dirs {
		emptied = append(emptied, d)
	}
	sort.Strings(emptied)
	for _, d := range emptied {
		os.Remove(d) // fails (and is ignored) when not empty
	}
	return removed, bytes, nil
}

// EntrySize returns the on-disk size of a cache-relative entry, for
// dry-run reporting.
func EntrySize(dir, rel string) int64 {
	info, err := os.Stat(filepath.Join(dir, rel))
	if err != nil {
		return 0
	}
	return info.Size()
}
