package sweep

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestDefaultKeysPinned pins the content-addressed key space of the
// default configuration to pre-topology goldens: introducing the
// Topology field must not move a single existing result-cache or
// artifact-store key. If this test fails, every shared cache in the
// fleet silently goes cold — bump the key schema instead of editing the
// expected hashes.
func TestDefaultKeysPinned(t *testing.T) {
	cfg := core.DefaultConfig()
	pinned := []struct {
		job Job
		key string
	}{
		{Job{Bench: "adpcm_decode", Policy: PolicyBaseline},
			"24b937609efac2ec11ff8be0decc9f17e3d3638a5613c1f6b9a77dfe8fa882c4"},
		{Job{Bench: "gzip", Policy: PolicyScheme, Scheme: "L+F", Delta: 2.5},
			"eff5e6a39b138e9a3dcd7cb5d03fe4335adf81bcecca5a66d685b960dfaf55ef"},
		{Job{Bench: "mcf", Policy: PolicyOnline},
			"58c0e160a95f9364ce9b1158f818a4fd47a8672755dfc727aad86c662c5a2a34"},
	}
	for _, p := range pinned {
		if got := Key(cfg, p.job); got != p.key {
			t.Errorf("Key(%s) = %s, want pinned %s", p.job, got, p.key)
		}
	}
	// Naming the default topology explicitly must key identically.
	named := cfg
	named.Sim.Topology = arch.DefaultName
	for _, p := range pinned {
		if got := Key(named, p.job); got != p.key {
			t.Errorf("Key(%s) with explicit %s topology = %s, want pinned %s",
				p.job, arch.DefaultName, got, p.key)
		}
	}
	// Artifact keys are pinned the same way.
	b := workload.ByName("adpcm_decode")
	spec := ProfileSpec{Bench: "adpcm_decode", Scheme: "L+F"}
	const wantArt = "ca03105dd32d0b752e4fb9f04e194ec23b8bd1b678685a0a19f00c47a21f54a5"
	if got := spec.ArtifactKey(cfg); got != wantArt {
		t.Errorf("ArtifactKey = %s, want pinned %s", got, wantArt)
	}
	if got := spec.ArtifactKey(named); got != wantArt {
		t.Errorf("ArtifactKey with explicit topology = %s, want pinned %s", got, wantArt)
	}
	_ = b
}

// TestTopologyKeysDistinct verifies non-default topologies hash into
// both key spaces.
func TestTopologyKeysDistinct(t *testing.T) {
	cfg := core.DefaultConfig()
	job := Job{Bench: "adpcm_decode", Policy: PolicyBaseline}
	spec := ProfileSpec{Bench: "adpcm_decode", Scheme: "L+F"}
	seenK := map[string]string{Key(cfg, job): "default"}
	seenA := map[string]string{spec.ArtifactKey(cfg): "default"}
	for _, name := range []string{"sync1", "fe-be2", "fine6"} {
		c := cfg
		c.Sim.Topology = name
		k, a := Key(c, job), spec.ArtifactKey(c)
		if prev, dup := seenK[k]; dup {
			t.Errorf("topology %s result key collides with %s", name, prev)
		}
		if prev, dup := seenA[a]; dup {
			t.Errorf("topology %s artifact key collides with %s", name, prev)
		}
		seenK[k], seenA[a] = name, name
	}
}

// TestManifestRejectsUnknownTopology covers the manifest boundary: an
// unknown topology is rejected with the registered names listed.
func TestManifestRejectsUnknownTopology(t *testing.T) {
	m := &Manifest{Benchmarks: []string{"g721_decode"}, Topology: "hexa12"}
	if _, err := m.Jobs(); err == nil {
		t.Fatal("unknown topology accepted")
	} else {
		for _, want := range []string{`"hexa12"`, "paper4", "sync1", "fe-be2", "fine6"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q missing %q", err, want)
			}
		}
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if err := os.WriteFile(path, []byte(`{"benchmarks":["g721_decode"],"topology":"hexa12"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil || !strings.Contains(err.Error(), "hexa12") {
		t.Fatalf("LoadManifest err = %v, want unknown-topology rejection", err)
	}
}

// TestManifestTopologyCanonicalizes checks that naming the default in a
// manifest keys like omitting it, and that non-default names survive
// into the configuration.
func TestManifestTopologyCanonicalizes(t *testing.T) {
	def := &Manifest{Benchmarks: []string{"g721_decode"}}
	named := &Manifest{Benchmarks: []string{"g721_decode"}, Topology: arch.DefaultName}
	a, _ := json.Marshal(def.Config())
	b, _ := json.Marshal(named.Config())
	if string(a) != string(b) {
		t.Error("explicit default topology produced a different config")
	}
	fine := &Manifest{Benchmarks: []string{"g721_decode"}, Topology: "fine6"}
	if fine.Config().Sim.Topology != "fine6" {
		t.Errorf("fine6 topology lost: %+v", fine.Config().Sim.Topology)
	}
}

// TestAllTopologiesEndToEnd runs the offline, online and baseline
// policies for every built-in topology end to end from a sweep
// manifest on the smallest benchmark — the acceptance gate that domain
// granularity is a working sweep axis, not just a validated model.
func TestAllTopologiesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains one profile per topology")
	}
	for _, name := range arch.TopologyNames() {
		m := &Manifest{
			Benchmarks: []string{"g721_decode"},
			Policies:   []string{PolicyBaseline, PolicyOffline, PolicyOnline},
			Topology:   name,
		}
		jobs, err := m.Jobs()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(jobs) != 3 {
			t.Fatalf("%s: %d jobs, want 3", name, len(jobs))
		}
		eng := New(m.Config())
		outs, sum, err := eng.Run(context.Background(), jobs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		topo := arch.MustTopology(name)
		for i, o := range outs {
			if o == nil || o.Res.Instructions == 0 || o.Res.TimePs == 0 {
				t.Fatalf("%s: job %s produced no result", name, jobs[i])
			}
			if len(o.Res.DomainPJ) != topo.NumDomains() || len(o.Res.AvgMHz) != topo.NumScalable() {
				t.Fatalf("%s: job %s result sized %d/%d domains, want %d/%d",
					name, jobs[i], len(o.Res.DomainPJ), len(o.Res.AvgMHz),
					topo.NumDomains(), topo.NumScalable())
			}
			// Outcomes must survive the JSON cache round trip with their
			// per-domain slices intact.
			bts, err := json.Marshal(o)
			if err != nil {
				t.Fatal(err)
			}
			var back Outcome
			if err := json.Unmarshal(bts, &back); err != nil {
				t.Fatal(err)
			}
			if len(back.Res.DomainPJ) != len(o.Res.DomainPJ) {
				t.Fatalf("%s: DomainPJ lost in round trip", name)
			}
		}
		if sum.Errors != 0 {
			t.Fatalf("%s: summary %v", name, sum)
		}
		// The offline oracle must not run above baseline speed, and the
		// online controller must scale at least one domain below max on
		// average (it always probes downward somewhere on this workload).
		base, off := outs[0].Res, outs[1].Res
		if off.TimePs < base.TimePs {
			t.Errorf("%s: offline faster than baseline (%d < %d ps)", name, off.TimePs, base.TimePs)
		}
		if off.EnergyPJ >= base.EnergyPJ {
			t.Errorf("%s: offline saved no energy (%.0f >= %.0f pJ)", name, off.EnergyPJ, base.EnergyPJ)
		}
	}
}
