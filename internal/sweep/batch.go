package sweep

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Batched execution. A policy grid is anchor-shaped: most jobs are one
// budgeted pass over the same benchmark's reference stream under
// different machine configurations. planBatches groups ready jobs by
// that (benchmark, input, window) anchor; runGroup resolves each group
// by opening one Lane per job and stepping all of them in lockstep from
// the group's shared decoded stream (isa.PackedStream.FeedLockstep), so
// the grid pays stream decode and cache traffic once per anchor instead
// of once per job. Per-job lockstep delivery is item-for-item identical
// to a sequential feed, so outcomes — and therefore result-cache
// entries, artifacts, and merged report bytes — are byte-identical to
// unbatched execution; the engine's memo, persistent caches, dedup and
// summary counters are shared with the sequential path, not forked.

// batchGroup is one anchor group: job indices that stream the same
// benchmark's reference input, split into dependency waves. Wave 0
// jobs have no result dependencies; wave 1 jobs depend on other jobs
// (the global comparator needs its siblings' run times), which wave 0
// resolves into the memo first.
type batchGroup struct {
	bench string
	wave0 []int
	wave1 []int
}

// planBatches partitions a job list into anchor groups and leftover
// single indices. A job joins a group only when it validates and its
// policy opens lanes; everything else — invalid jobs report their
// validation error from the sequential path — stays single. Group
// order follows first appearance, so scheduling stays deterministic.
func planBatches(cfg core.Config, jobs []Job) ([]*batchGroup, []int) {
	var singles []int
	var order []string
	byBench := make(map[string]*batchGroup)
	for i, j := range jobs {
		if j.Validate() != nil {
			singles = append(singles, i)
			continue
		}
		p, _ := PolicyByName(j.Policy)
		if _, ok := p.(LanePolicy); !ok {
			singles = append(singles, i)
			continue
		}
		g := byBench[j.Bench]
		if g == nil {
			g = &batchGroup{bench: j.Bench}
			byBench[j.Bench] = g
			order = append(order, j.Bench)
		}
		if hasResultDep(cfg, p, j) {
			g.wave1 = append(g.wave1, i)
		} else {
			g.wave0 = append(g.wave0, i)
		}
	}
	groups := make([]*batchGroup, 0, len(order))
	for _, b := range order {
		groups = append(groups, byBench[b])
	}
	return groups, singles
}

// hasResultDep reports whether a job depends on another job's result
// (and therefore must wait for the group's first wave).
func hasResultDep(cfg core.Config, p Policy, j Job) bool {
	for _, d := range p.Deps(cfg, j) {
		if d.Job != nil {
			return true
		}
	}
	return false
}

// runGroup resolves one anchor group, wave by wave.
func (e *Engine) runGroup(ctx context.Context, jobs []Job, g *batchGroup, width int, report reportFn) {
	e.runWave(ctx, jobs, g.wave0, width, report)
	e.runWave(ctx, jobs, g.wave1, width, report)
}

// reportFn delivers one finished job to Run's bookkeeping.
type reportFn func(i int, key string, out *Outcome, src Source, elapsed time.Duration, err error)

// laneJob is one wave job this runner owns the flight for.
type laneJob struct {
	idx  int
	key  string
	f    *flight
	lane *Lane
	err  error
}

// runWave resolves one wave of an anchor group. Owned jobs — those
// whose singleflight this call claims — resolve through the persistent
// cache and then one lockstep replay; jobs whose key is already in
// flight elsewhere (or duplicated within the wave) join the existing
// flight through the ordinary keyed path after the owners finish.
func (e *Engine) runWave(ctx context.Context, jobs []Job, idxs []int, width int, report reportFn) {
	if len(idxs) == 0 {
		return
	}
	if err := ctx.Err(); err != nil {
		for _, i := range idxs {
			report(i, "", nil, SourceMemory, 0, err)
		}
		return
	}
	start := time.Now()
	x := e.executor()

	// Claim flights. Within-wave duplicates and keys already in flight
	// join later instead of racing.
	var owned []*laneJob
	var joined []int
	e.mu.Lock()
	if e.flight == nil {
		e.flight = make(map[string]*flight)
	}
	for _, i := range idxs {
		key := Key(e.Cfg, jobs[i])
		if _, ok := e.flight[key]; ok {
			joined = append(joined, i)
			continue
		}
		f := &flight{done: make(chan struct{})}
		e.flight[key] = f
		owned = append(owned, &laneJob{idx: i, key: key, f: f})
	}
	e.mu.Unlock()

	// Serve owners from the persistent cache first; the remainder
	// executes.
	var pending []*laneJob
	for _, o := range owned {
		if out, ok := e.segmentLookup(o.key); ok {
			e.finishFlight(o, out, SourceDisk)
			report(o.idx, o.key, out, SourceDisk, time.Since(start), nil)
			continue
		}
		if e.Cache != nil {
			out, status := e.Cache.Load(o.key)
			switch status {
			case LoadHit:
				e.nDisk.Add(1)
				e.bufferSegRow(o.key, jobs[o.idx], out)
				e.finishFlight(o, out, SourceDisk)
				report(o.idx, o.key, out, SourceDisk, time.Since(start), nil)
				continue
			case LoadCorrupt:
				e.noteCorrupt(e.Cache.EntryPath(o.key))
			}
		}
		pending = append(pending, o)
	}

	if len(pending) > 0 {
		// The wave replays the anchor's reference stream, and profile
		// dependencies replay a training stream; reserve both stream
		// slots so concurrent groups cannot thrash the recording cache
		// mid-batch.
		x.reserveStreams(2)
		e.resolveWave(jobs, pending, width)
		x.reserveStreams(-2)
		for _, o := range pending {
			if o.err != nil {
				e.failFlight(o)
				report(o.idx, o.key, nil, SourceExecuted, time.Since(start), o.err)
				continue
			}
			out, err := o.lane.Finish()
			if err != nil {
				o.err = fmt.Errorf("sweep: %s: %w", jobs[o.idx], err)
				e.failFlight(o)
				report(o.idx, o.key, nil, SourceExecuted, time.Since(start), o.err)
				continue
			}
			e.nExecuted.Add(1)
			if e.Cache != nil {
				ps := time.Now()
				err := e.Cache.Put(o.key, jobs[o.idx], out)
				e.notePersist(o.key, jobs[o.idx], time.Since(ps), err)
				if err != nil {
					// Same contract as the sequential path: never throw
					// finished work away over a persistence failure.
					e.warnPersist(err)
				} else {
					e.bufferSegRow(o.key, jobs[o.idx], out)
				}
			}
			e.finishFlight(o, out, SourceExecuted)
			report(o.idx, o.key, out, SourceExecuted, time.Since(start), nil)
		}
	}

	// Joined jobs resolve through the keyed path: by now their flights
	// are closed (or owned by a concurrent call), so this is a memo wait.
	for _, i := range joined {
		s := time.Now()
		key := Key(e.Cfg, jobs[i])
		out, src, err := e.doKeyed(key, jobs[i])
		report(i, key, out, src, time.Since(s), err)
	}
}

// resolveWave resolves dependencies, opens lanes, and drives the wave's
// lockstep replay. Per-job failures land in laneJob.err; the batch
// keeps going for the rest.
func (e *Engine) resolveWave(jobs []Job, pending []*laneJob, width int) {
	x := e.executor()

	// Batch-train the wave's missing profile dependencies: distinct
	// specs, grouped by training stream inside profileBatch.
	var specs []ProfileSpec
	seen := make(map[ProfileSpec]bool)
	for _, o := range pending {
		p, _ := PolicyByName(jobs[o.idx].Policy)
		for _, d := range p.Deps(e.Cfg, jobs[o.idx]) {
			if d.Profile != nil && !seen[*d.Profile] {
				seen[*d.Profile] = true
				specs = append(specs, *d.Profile)
			}
		}
	}
	x.profileBatch(specs)

	// Resolve each job's dependencies (profiles now memoized; result
	// deps were closed by the previous wave) and open its lane.
	var lanes []*laneJob
	for _, o := range pending {
		job := jobs[o.idx]
		p, _ := PolicyByName(job.Policy)
		lp, _ := p.(LanePolicy)
		deps := p.Deps(e.Cfg, job)
		resolved := make([]Resolved, len(deps))
		for i, d := range deps {
			if d.Profile != nil {
				prof, err := x.profile(*d.Profile)
				if err != nil {
					o.err = fmt.Errorf("sweep: %s: %w", job, err)
					break
				}
				resolved[i].Profile = prof
			} else {
				out, _, err := e.Do(*d.Job)
				if err != nil {
					o.err = fmt.Errorf("sweep: %s: %w", job, err)
					break
				}
				resolved[i].Outcome = out
			}
		}
		if o.err != nil {
			continue
		}
		ln, err := lp.OpenLane(x, job, resolved)
		if err != nil {
			o.err = fmt.Errorf("sweep: %s: %w", job, err)
			continue
		}
		o.lane = ln
		lanes = append(lanes, o)
	}
	if len(lanes) == 0 {
		return
	}

	// One lockstep replay per chunk of the shared decoded stream.
	b := workload.ByName(jobs[lanes[0].idx].Bench)
	stream := x.packed(b, true)
	for at := 0; at < len(lanes); at += width {
		hi := at + width
		if hi > len(lanes) {
			hi = len(lanes)
		}
		chunk := lanes[at:hi]
		sl := make([]isa.StreamLane, len(chunk))
		for k, o := range chunk {
			sl[k] = isa.StreamLane{Consumer: o.lane.Consumer, Budget: o.lane.Budget}
		}
		cs := time.Now()
		stream.FeedLockstep(sl)
		d := time.Since(cs)
		e.phases.simNS.Add(int64(d))
		if tr := e.Trace; tr != nil {
			// One simulate span per lane, all sharing the chunk's window:
			// the lanes stepped together, so the chunk duration is each
			// job's lockstep cost and every job keeps a complete span tree.
			for _, o := range chunk {
				tr.Emit(obs.Span{
					Key:     o.key,
					Phase:   "simulate",
					Policy:  jobs[o.idx].Policy,
					Bench:   jobs[o.idx].Bench,
					Outcome: "lockstep",
					StartNS: tr.Now() - int64(d),
					DurNS:   int64(d),
				})
			}
		}
	}
}

// finishFlight publishes an owned flight's outcome to waiters.
func (e *Engine) finishFlight(o *laneJob, out *Outcome, src Source) {
	o.f.out, o.f.src = out, src
	close(o.f.done)
}

// failFlight publishes an owned flight's error and drops it so a later
// call can retry.
func (e *Engine) failFlight(o *laneJob) {
	o.f.err = o.err
	close(o.f.done)
	e.mu.Lock()
	delete(e.flight, o.key)
	e.mu.Unlock()
}
