package sweep

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
)

// Streaming merge. MergeBytes (engine.go) is the canonical
// serialization — and the byte-identity oracle — but it materializes
// every Merged row before encoding. The functions here produce the
// same bytes one row at a time: the merge plan (deduplicated keys plus
// their jobs, sorted by key) is the only thing held in memory, and each
// outcome is fetched, encoded, written, and dropped. With a segment
// store as the source, a 10k-job merge touches a handful of segment
// files instead of 10k JSON documents.

// OutcomeSource answers point lookups for merged output. Cache,
// SegmentStore, and MergeSource all implement it.
type OutcomeSource interface {
	Get(key string) (*Outcome, bool)
}

// MergeSource is the standard read view for merge and report paths: the
// columnar segment layer answers first, the canonical JSON cache
// answers whatever segments do not cover (absent or quarantined files),
// so output is complete whenever the JSON cache is — segments only
// change the speed.
type MergeSource struct {
	Cache    *Cache
	Segments *SegmentStore
}

// SourceFor builds the standard merge source over one cache directory.
func SourceFor(cacheDir string) MergeSource {
	return MergeSource{Cache: &Cache{Dir: cacheDir}, Segments: SegmentStoreFor(cacheDir)}
}

// Get returns the outcome under key from the fastest layer that has it.
func (s MergeSource) Get(key string) (*Outcome, bool) {
	if s.Segments != nil {
		if out, ok := s.Segments.Get(key); ok {
			return out, true
		}
	}
	if s.Cache != nil {
		return s.Cache.Get(key)
	}
	return nil, false
}

// Has reports whether key is answerable, without materializing the
// outcome on the segment path.
func (s MergeSource) Has(key string) bool {
	if s.Segments != nil && s.Segments.Has(key) {
		return true
	}
	if s.Cache != nil {
		_, ok := s.Cache.Get(key)
		return ok
	}
	return false
}

// mergePlan is Merge's bookkeeping without its outcomes: the
// deduplicated job set paired with keys, sorted by key. This is the
// bounded part of a streaming merge — a few hundred bytes per job
// regardless of outcome size.
func mergePlan(cfg core.Config, jobs []Job) []Merged {
	plan := make([]Merged, 0, len(jobs))
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		key := Key(cfg, j)
		if seen[key] {
			continue
		}
		seen[key] = true
		plan = append(plan, Merged{Key: key, Job: j})
	}
	sort.Slice(plan, func(i, j int) bool { return plan[i].Key < plan[j].Key })
	return plan
}

// MergeCheck verifies that src can answer every job before any output
// is produced, reporting the missing ones with Merge's exact error.
// Streaming callers run this first so an incomplete sweep fails with a
// clean error instead of truncated output.
func MergeCheck(cfg core.Config, jobs []Job, src MergeSource) error {
	var missing []error
	for _, m := range mergePlan(cfg, jobs) {
		if !src.Has(m.Key) {
			missing = append(missing, fmt.Errorf("sweep: merge: %s (%s) not in cache", m.Job, m.Key[:12]))
		}
	}
	return errors.Join(missing...)
}

// MergeTo streams the merged result set to w, byte-identical to
// MergeBytes over the same jobs, holding one outcome at a time. A key
// src cannot answer fails the merge (possibly mid-stream; run
// MergeCheck first when partial output must not escape).
func MergeTo(w io.Writer, cfg core.Config, jobs []Job, src OutcomeSource) error {
	plan := mergePlan(cfg, jobs)
	bw := bufio.NewWriter(w)
	if len(plan) == 0 {
		// MarshalIndent of a nil slice: the empty sweep's canonical form.
		if _, err := bw.WriteString("null\n"); err != nil {
			return err
		}
		return bw.Flush()
	}
	// json.MarshalIndent of a slice is exactly "[\n " + the elements
	// each indented one stop and joined by ",\n " + "\n]" — so emitting
	// rows one at a time reproduces the oracle's bytes. Rows go through
	// the direct encoder (encode.go), which matches MarshalIndent
	// byte-for-byte without its reflection cost.
	if _, err := bw.WriteString("[\n "); err != nil {
		return err
	}
	var row []byte
	for i, m := range plan {
		out, ok := src.Get(m.Key)
		if !ok {
			return fmt.Errorf("sweep: merge: %s (%s) not in cache", m.Job, m.Key[:12])
		}
		m.Outcome = out
		b, err := appendMerged(row[:0], m, " ", true)
		if err != nil {
			return err
		}
		row = b
		if i > 0 {
			if _, err := bw.WriteString(",\n "); err != nil {
				return err
			}
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// MergeNDJSON streams the merged result set as newline-delimited JSON —
// one compact Merged object per line, in the same key order as MergeTo
// — for consumers that want incremental parsing over one big document.
func MergeNDJSON(w io.Writer, cfg core.Config, jobs []Job, src OutcomeSource) error {
	bw := bufio.NewWriter(w)
	var row []byte
	for _, m := range mergePlan(cfg, jobs) {
		out, ok := src.Get(m.Key)
		if !ok {
			return fmt.Errorf("sweep: merge: %s (%s) not in cache", m.Job, m.Key[:12])
		}
		m.Outcome = out
		b, err := appendMerged(row[:0], m, "", false)
		if err != nil {
			return err
		}
		row = append(b, '\n')
		if _, err := bw.Write(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}
