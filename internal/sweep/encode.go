package sweep

import (
	"fmt"
	"math"
	"strconv"
	"unicode/utf8"

	"repro/internal/core"
	"repro/internal/sim"
)

// Hand-rolled Merged encoder. encoding/json's reflective MarshalIndent
// is the dominant cost of a large merge once segments make outcome
// lookups cheap, so the streaming paths encode rows directly. The output
// is byte-for-byte what the stdlib produces — the same float shortest
// form with the exponent cleanup, the same HTML-escaped strings, the
// same omitempty decisions — which the differential test in
// encode_test.go checks against json.Marshal/MarshalIndent exhaustively.

// mergedEncoder accumulates one encoded row. prefix is the per-line
// prefix of the indented form (MergeTo rows sit one element deep in the
// output array, so it passes " "); the indent unit is one space, matching
// MergeBytes' MarshalIndent(v, prefix, " "). With indent=false it emits
// the compact form json.Marshal produces (MergeNDJSON lines).
type mergedEncoder struct {
	buf    []byte
	prefix string
	indent bool
}

// nl starts a member line at the given object depth.
func (e *mergedEncoder) nl(depth int) {
	if !e.indent {
		return
	}
	e.buf = append(e.buf, '\n')
	e.buf = append(e.buf, e.prefix...)
	for i := 0; i < depth; i++ {
		e.buf = append(e.buf, ' ')
	}
}

// member opens the next object member: separator, line break, quoted
// name, colon. Member names are fixed ASCII literals, so they skip the
// escaping walk values go through.
func (e *mergedEncoder) member(depth int, first *bool, name string) {
	if !*first {
		e.buf = append(e.buf, ',')
	}
	*first = false
	e.nl(depth)
	e.buf = append(e.buf, '"')
	e.buf = append(e.buf, name...)
	e.buf = append(e.buf, '"', ':')
	if e.indent {
		e.buf = append(e.buf, ' ')
	}
}

func (e *mergedEncoder) int(v int64) {
	e.buf = strconv.AppendInt(e.buf, v, 10)
}

// float matches encoding/json's floatEncoder: shortest form, 'f' format
// in [1e-6, 1e21), 'e' outside with the two-digit exponent's leading
// zero stripped. NaN and infinities are unrepresentable, as in stdlib.
func (e *mergedEncoder) float(v float64) error {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return fmt.Errorf("sweep: merge: unsupported float value %v", v)
	}
	abs := math.Abs(v)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	e.buf = strconv.AppendFloat(e.buf, v, format, -1, 64)
	if format == 'e' {
		if n := len(e.buf); n >= 4 && e.buf[n-4] == 'e' && e.buf[n-3] == '-' && e.buf[n-2] == '0' {
			e.buf[n-2] = e.buf[n-1]
			e.buf = e.buf[:n-1]
		}
	}
	return nil
}

const hexDigits = "0123456789abcdef"

// str matches encoding/json's HTML-escaping string encoder: quotes and
// backslashes get shorthand escapes along with \b, \f, \n, \r and \t;
// other control characters, '<', '>' and '&' become \u00xx; invalid
// UTF-8 bytes become the \ufffd escape; U+2028/U+2029 are escaped for
// JS embedding.
func (e *mergedEncoder) str(s string) {
	e.buf = append(e.buf, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			e.buf = append(e.buf, s[start:i]...)
			switch c {
			case '\\', '"':
				e.buf = append(e.buf, '\\', c)
			case '\b':
				e.buf = append(e.buf, '\\', 'b')
			case '\f':
				e.buf = append(e.buf, '\\', 'f')
			case '\n':
				e.buf = append(e.buf, '\\', 'n')
			case '\r':
				e.buf = append(e.buf, '\\', 'r')
			case '\t':
				e.buf = append(e.buf, '\\', 't')
			default:
				e.buf = append(e.buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			e.buf = append(e.buf, s[start:i]...)
			e.buf = append(e.buf, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			e.buf = append(e.buf, s[start:i]...)
			e.buf = append(e.buf, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	e.buf = append(e.buf, s[start:]...)
	e.buf = append(e.buf, '"')
}

// floats encodes a []float64 whose elements sit at the given depth:
// nil is null, empty is [], anything else one element per line.
func (e *mergedEncoder) floats(v []float64, depth int) error {
	if v == nil {
		e.buf = append(e.buf, "null"...)
		return nil
	}
	if len(v) == 0 {
		e.buf = append(e.buf, '[', ']')
		return nil
	}
	e.buf = append(e.buf, '[')
	for i, f := range v {
		if i > 0 {
			e.buf = append(e.buf, ',')
		}
		e.nl(depth)
		if err := e.float(f); err != nil {
			return err
		}
	}
	e.nl(depth - 1)
	e.buf = append(e.buf, ']')
	return nil
}

func (e *mergedEncoder) job(j Job) error {
	e.buf = append(e.buf, '{')
	first := true
	e.member(2, &first, "bench")
	e.str(j.Bench)
	e.member(2, &first, "policy")
	e.str(j.Policy)
	if j.Scheme != "" {
		e.member(2, &first, "scheme")
		e.str(j.Scheme)
	}
	if j.Delta != 0 {
		e.member(2, &first, "delta")
		if err := e.float(j.Delta); err != nil {
			return err
		}
	}
	if j.Aggressiveness != 0 {
		e.member(2, &first, "aggressiveness")
		if err := e.float(j.Aggressiveness); err != nil {
			return err
		}
	}
	if j.MHz != 0 {
		e.member(2, &first, "mhz")
		e.int(int64(j.MHz))
	}
	e.nl(1)
	e.buf = append(e.buf, '}')
	return nil
}

func (e *mergedEncoder) result(r sim.Result) error {
	e.buf = append(e.buf, '{')
	first := true
	e.member(3, &first, "Instructions")
	e.int(r.Instructions)
	e.member(3, &first, "TimePs")
	e.int(r.TimePs)
	e.member(3, &first, "EnergyPJ")
	if err := e.float(r.EnergyPJ); err != nil {
		return err
	}
	e.member(3, &first, "DomainPJ")
	if err := e.floats(r.DomainPJ, 4); err != nil {
		return err
	}
	e.member(3, &first, "AvgMHz")
	if err := e.floats(r.AvgMHz, 4); err != nil {
		return err
	}
	e.member(3, &first, "SyncCrossings")
	e.int(r.SyncCrossings)
	e.member(3, &first, "SyncPenalties")
	e.int(r.SyncPenalties)
	e.member(3, &first, "Mispredicts")
	e.int(r.Mispredicts)
	e.member(3, &first, "MispredictRate")
	if err := e.float(r.MispredictRate); err != nil {
		return err
	}
	e.member(3, &first, "IL1MissRate")
	if err := e.float(r.IL1MissRate); err != nil {
		return err
	}
	e.member(3, &first, "DL1MissRate")
	if err := e.float(r.DL1MissRate); err != nil {
		return err
	}
	e.member(3, &first, "L2MissRate")
	if err := e.float(r.L2MissRate); err != nil {
		return err
	}
	e.nl(2)
	e.buf = append(e.buf, '}')
	return nil
}

func (e *mergedEncoder) stats(s core.EditStats) error {
	e.buf = append(e.buf, '{')
	first := true
	e.member(3, &first, "DynReconfig")
	e.int(s.DynReconfig)
	e.member(3, &first, "DynInstr")
	e.int(s.DynInstr)
	e.member(3, &first, "OverheadCycles")
	e.int(s.OverheadCycles)
	e.member(3, &first, "OverheadPct")
	if err := e.float(s.OverheadPct); err != nil {
		return err
	}
	e.nl(2)
	e.buf = append(e.buf, '}')
	return nil
}

func (e *mergedEncoder) outcome(o *Outcome) error {
	if o == nil {
		e.buf = append(e.buf, "null"...)
		return nil
	}
	e.buf = append(e.buf, '{')
	first := true
	e.member(2, &first, "result")
	if err := e.result(o.Res); err != nil {
		return err
	}
	e.member(2, &first, "edit_stats")
	if err := e.stats(o.Stats); err != nil {
		return err
	}
	if o.GlobalMHz != 0 {
		e.member(2, &first, "global_mhz")
		e.int(int64(o.GlobalMHz))
	}
	if o.StaticReconfig != 0 {
		e.member(2, &first, "static_reconfig")
		e.int(int64(o.StaticReconfig))
	}
	if o.StaticInstr != 0 {
		e.member(2, &first, "static_instr")
		e.int(int64(o.StaticInstr))
	}
	e.nl(1)
	e.buf = append(e.buf, '}')
	return nil
}

// appendMerged appends one encoded Merged row to dst and returns the
// extended slice. With indent=true the row matches
// json.MarshalIndent(m, prefix, " "); with indent=false it matches
// json.Marshal(m) and prefix is ignored.
func appendMerged(dst []byte, m Merged, prefix string, indent bool) ([]byte, error) {
	e := mergedEncoder{buf: dst, prefix: prefix, indent: indent}
	e.buf = append(e.buf, '{')
	first := true
	e.member(1, &first, "key")
	e.str(m.Key)
	e.member(1, &first, "job")
	if err := e.job(m.Job); err != nil {
		return dst, err
	}
	e.member(1, &first, "outcome")
	if err := e.outcome(m.Outcome); err != nil {
		return dst, err
	}
	e.nl(0)
	e.buf = append(e.buf, '}')
	return e.buf, nil
}
