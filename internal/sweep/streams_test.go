package sweep

import (
	"bytes"
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/workload"
)

func TestStreamStoreRoundtrip(t *testing.T) {
	st := StreamStoreFor(t.TempDir())
	b := workload.ByName("adpcm_decode")
	key := StreamKey(b, false)

	if _, status := st.Load(key); status != StreamMiss {
		t.Fatalf("empty store: status %v, want miss", status)
	}
	s := isa.RecordPacked(b.Prog, b.Train)
	if err := st.Put(key, s); err != nil {
		t.Fatal(err)
	}
	got, status := st.Load(key)
	if status != StreamHit {
		t.Fatalf("Load after Put: status %v, want hit", status)
	}
	if !bytes.Equal(isa.EncodePacked(got), isa.EncodePacked(s)) {
		t.Fatal("loaded stream differs from stored stream")
	}

	// An entry copied to the wrong name is self-describing and detected.
	other := StreamKey(b, true)
	if other == key {
		t.Fatal("train and ref streams share a key")
	}
	if err := os.MkdirAll(filepath.Dir(st.EntryPath(other)), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(st.EntryPath(key))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.EntryPath(other), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, status := st.Load(other); status != StreamCorrupt {
		t.Fatalf("wrong-name copy: status %v, want corrupt", status)
	}

	// Truncation is detected by the codec checksum.
	if err := os.WriteFile(st.EntryPath(key), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, status := st.Load(key); status != StreamCorrupt {
		t.Fatalf("truncated entry: status %v, want corrupt", status)
	}
}

func TestStreamKeyCoversSpecAndInput(t *testing.T) {
	a, b := workload.ByName("adpcm_decode"), workload.ByName("gzip")
	keys := map[string]bool{
		StreamKey(a, false): true,
		StreamKey(a, true):  true,
		StreamKey(b, false): true,
		StreamKey(b, true):  true,
	}
	if len(keys) != 4 {
		t.Fatalf("stream keys collide across (bench, input) pairs: %d unique of 4", len(keys))
	}
	if StreamKey(a, false) != StreamKey(a, false) {
		t.Fatal("stream key not stable")
	}
}

// streamEngine builds an engine over real execution with both stores
// rooted in dir.
func streamEngine(dir string) *Engine {
	e := New(core.DefaultConfig())
	e.Cache = &Cache{Dir: filepath.Join(dir, "results")}
	e.Streams = StreamStoreFor(dir)
	return e
}

// streamTestJobs is a cheap untrained grid over one benchmark: two
// policies sharing the reference stream, so a warm run loads exactly
// one stored stream per executing process.
func streamTestJobs() []Job {
	return []Job{
		{Bench: "adpcm_decode", Policy: PolicyBaseline},
		{Bench: "adpcm_decode", Policy: PolicySingleClock},
	}
}

func TestStreamCacheWarmStart(t *testing.T) {
	dir := t.TempDir()
	jobs := streamTestJobs()

	cold, coldSum, err := streamEngine(dir).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if coldSum.StreamHits != 0 {
		t.Fatalf("cold run reported %d stream hits", coldSum.StreamHits)
	}
	if n, _, err := StreamStats(dir); err != nil || n != 1 {
		t.Fatalf("cold run stored %d streams (err %v), want 1", n, err)
	}

	// A fresh engine over a cold result cache but the warm stream store
	// must load the stream instead of re-walking, with identical results.
	warmDir := t.TempDir()
	eng := streamEngine(dir)
	eng.Cache = &Cache{Dir: warmDir}
	warm, warmSum, err := eng.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if warmSum.StreamHits == 0 {
		t.Fatalf("warm run loaded no streams: %s", warmSum)
	}
	if len(cold) != len(warm) {
		t.Fatalf("outcome counts differ: %d vs %d", len(cold), len(warm))
	}
	for i := range cold {
		if !reflect.DeepEqual(cold[i].Res, warm[i].Res) {
			t.Errorf("job %d: warm result %+v differs from cold %+v", i, warm[i].Res, cold[i].Res)
		}
	}
}

func TestStreamCacheCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	jobs := streamTestJobs()
	if _, _, err := streamEngine(dir).Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	b := workload.ByName("adpcm_decode")
	key := StreamKey(b, true)
	path := StreamStoreFor(dir).EntryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	// The corrupt entry is counted, treated as a miss, and rewritten.
	eng := streamEngine(dir)
	eng.Cache = &Cache{Dir: t.TempDir()}
	_, sum, err := eng.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.CorruptEntries != 1 {
		t.Errorf("corrupt stream: corrupt_entries=%d, want 1 (%s)", sum.CorruptEntries, sum)
	}
	if sum.StreamHits != 0 {
		t.Errorf("corrupt stream counted as a hit: %s", sum)
	}
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repaired, data) {
		t.Error("rewritten entry differs from the original bytes")
	}

	// Post-repair, a fresh process hits cleanly.
	eng = streamEngine(dir)
	eng.Cache = &Cache{Dir: t.TempDir()}
	if _, sum, err = eng.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	} else if sum.CorruptEntries != 0 || sum.StreamHits == 0 {
		t.Errorf("post-repair run: %s", sum)
	}
}

// readTree returns every file under root as relative path -> contents.
func readTree(t *testing.T, root string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		out[rel] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunParallelBitIdenticalCaches is the end-to-end determinism gate:
// the same manifest run at 1 and at 8 training workers must leave
// byte-identical cache directories — result entries, profile artifacts,
// stored streams, file names included — and merge to identical report
// bytes. TrainWorkers is excluded from every content address, so any
// byte of divergence would poison shared caches.
func TestRunParallelBitIdenticalCaches(t *testing.T) {
	m := &Manifest{
		Benchmarks: []string{"adpcm_decode"},
		Policies:   []string{PolicyBaseline, PolicyOffline, PolicyScheme},
		Schemes:    []string{"L+F"},
		Deltas:     []float64{1.75},
	}
	jobs, err := m.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	runAt := func(workers int) (string, []byte) {
		dir := t.TempDir()
		cfg := m.Config()
		cfg.TrainWorkers = workers
		eng := New(cfg)
		eng.Cache = &Cache{Dir: dir}
		eng.Artifacts = ArtifactStore(dir)
		eng.Streams = StreamStoreFor(dir)
		if _, _, err := eng.Run(context.Background(), jobs); err != nil {
			t.Fatal(err)
		}
		var merged bytes.Buffer
		if err := MergeTo(&merged, cfg, jobs, SourceFor(dir)); err != nil {
			t.Fatal(err)
		}
		return dir, merged.Bytes()
	}

	dir1, merged1 := runAt(1)
	dir8, merged8 := runAt(8)

	tree1, tree8 := readTree(t, dir1), readTree(t, dir8)
	if len(tree1) != len(tree8) {
		t.Errorf("cache trees differ in size: %d files at P=1, %d at P=8", len(tree1), len(tree8))
	}
	for rel, b1 := range tree1 {
		b8, ok := tree8[rel]
		if !ok {
			t.Errorf("P=8 cache missing %s", rel)
			continue
		}
		if !bytes.Equal(b1, b8) {
			t.Errorf("cache entry %s differs between P=1 and P=8", rel)
		}
	}
	if !bytes.Equal(merged1, merged8) {
		t.Error("merged report bytes differ between P=1 and P=8")
	}
}
