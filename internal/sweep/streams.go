package sweep

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/isa"
	"repro/internal/workload"
)

// streamSubdir is where a cache directory's co-located packed-stream
// cache lives. Like artifacts/, the name can never collide with a
// result fan-out directory.
const streamSubdir = "streams"

// streamSchema versions the stream cache. A stream's key hashes the
// benchmark's full calibration spec and the input, so recalibrations
// re-key naturally; bump the schema when the walk generator or the
// packed codec changes meaning without a spec change.
const streamSchema = 1

// StreamStore is a content-addressed on-disk cache of packed dynamic
// streams (isa.PackedStream). A benchmark input's stream is a pure
// function of the benchmark spec and the input — the walk does not
// depend on the simulated configuration — so one stored stream serves
// every config, topology, and policy. At ~13 bytes per instruction,
// loading one is far cheaper than re-running the generating walk, which
// is what makes cold daemons and fleet workers start fast.
//
// Entries are written atomically (temp file + rename) under two-hex
// fan-out directories, named <key>.bin, and are self-describing: the
// key is embedded ahead of the payload, so a file copied to the wrong
// name is detected. Corrupt, truncated, or mismatched entries load as
// StreamCorrupt; the engine counts them (Summary.CorruptEntries) and
// rewrites them from a fresh walk.
type StreamStore struct {
	Dir string
}

// StreamStoreFor returns the stream store conventionally co-located
// with a result cache directory (its streams/ subdirectory).
func StreamStoreFor(cacheDir string) *StreamStore {
	return &StreamStore{Dir: filepath.Join(cacheDir, streamSubdir)}
}

// StreamKey returns the content address of one benchmark input's
// recorded stream: a hash of the stream schema, the benchmark's
// calibration spec, and the input. Everything that can change a single
// stream byte is in the hash; nothing else is.
func StreamKey(b *workload.Benchmark, ref bool) string {
	in := b.Train
	if ref {
		in = b.Ref
	}
	payload := struct {
		Schema int           `json:"schema"`
		Spec   workload.Spec `json:"spec"`
		Input  isa.Input     `json:"input"`
	}{streamSchema, b.Spec, in}
	j, err := json.Marshal(payload)
	if err != nil {
		// Spec and Input are plain data; this cannot fail.
		panic("sweep: stream key encoding: " + err.Error())
	}
	return fmt.Sprintf("%x", sha256.Sum256(j))
}

// EntryPath returns the path a stream is stored at.
func (st *StreamStore) EntryPath(key string) string {
	return filepath.Join(st.Dir, key[:2], key+".bin")
}

// StreamStatus classifies a stream lookup.
type StreamStatus int

const (
	// StreamMiss means no entry exists under the key.
	StreamMiss StreamStatus = iota
	// StreamHit means a valid stream was decoded.
	StreamHit
	// StreamCorrupt means an entry exists but is unreadable, truncated,
	// fails its checksum, or is stored under a mismatched key — callers
	// treat it as a miss and rewrite it.
	StreamCorrupt
)

// Load decodes the stream stored under key.
func (st *StreamStore) Load(key string) (*isa.PackedStream, StreamStatus) {
	b, err := os.ReadFile(st.EntryPath(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, StreamMiss
		}
		return nil, StreamCorrupt
	}
	if len(b) < 65 || string(b[:64]) != key || b[64] != '\n' {
		return nil, StreamCorrupt
	}
	s, err := isa.DecodePacked(b[65:])
	if err != nil {
		return nil, StreamCorrupt
	}
	return s, StreamHit
}

// Put atomically persists a stream under key.
func (st *StreamStore) Put(key string, s *isa.PackedStream) error {
	dir := filepath.Dir(st.EntryPath(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("stream store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("stream store: %w", err)
	}
	_, werr := tmp.Write(append(append([]byte(key), '\n'), isa.EncodePacked(s)...))
	cerr := tmp.Close()
	if err := errors.Join(werr, cerr); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("stream store: write %.12s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), st.EntryPath(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("stream store: %w", err)
	}
	return nil
}

// StreamStats reports the stream cache co-located with a cache
// directory: entry count and total bytes (temp litter included, since
// prune reclaims it too).
func StreamStats(cacheDir string) (entries int, bytes int64, err error) {
	root := filepath.Join(cacheDir, streamSubdir)
	fans, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("sweep: stream stats: %w", err)
	}
	for _, fan := range fans {
		if !fan.IsDir() || !isFanoutDir(fan.Name()) {
			continue
		}
		files, err := os.ReadDir(filepath.Join(root, fan.Name()))
		if err != nil {
			return 0, 0, fmt.Errorf("sweep: stream stats: %w", err)
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			entries++
			bytes += info.Size()
		}
	}
	return entries, bytes, nil
}
