package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// WorkerPool is a bounded worker pool multiple engines can share, giving a
// long-lived process one global concurrency budget and one queue across
// concurrent batches: Run dispatches to the shared pool when one is
// passed via WithPool instead of spawning per-call workers, so N
// concurrent sweeps never run more than the pool's worker count of
// simulations at once. Queued tasks wait in a buffered channel; Submit
// blocks once the buffer is full, so a caller that needs admission
// control (reject instead of block) must bound what it admits to the
// pool's capacity before submitting.
//
// Dependency jobs never deadlock the pool: the executor resolves a
// job's prerequisites inline on the worker already running it, and a
// singleflight wait always waits on a flight owned by another running
// worker, so every blocked task has a running owner making progress.
type WorkerPool struct {
	tasks   chan func()
	wg      sync.WaitGroup
	running atomic.Int64
	done    atomic.Int64
}

// DefaultQueueDepth is the capacity a pool (and the admission budget
// sized against it) gets when the caller does not choose one:
// workers*64, minimum 1024. One function on purpose — the never-blocks
// admission invariant requires the budget and the queue capacity to
// agree, so both sides derive from here.
func DefaultQueueDepth(workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	d := workers * 64
	if d < 1024 {
		d = 1024
	}
	return d
}

// NewWorkerPool starts a pool of workers goroutines (GOMAXPROCS when <= 0)
// whose queue holds up to capacity waiting tasks (DefaultQueueDepth
// when <= 0).
func NewWorkerPool(workers, capacity int) *WorkerPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if capacity <= 0 {
		capacity = DefaultQueueDepth(workers)
	}
	p := &WorkerPool{tasks: make(chan func(), capacity)}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for f := range p.tasks {
				p.running.Add(1)
				f()
				p.running.Add(-1)
				p.done.Add(1)
			}
		}()
	}
	return p
}

// Submit enqueues one task, blocking while the queue is full. Submitting
// after Close panics (programming error: the owner drains batches before
// closing the pool).
func (p *WorkerPool) Submit(f func()) { p.tasks <- f }

// Queued reports how many tasks are waiting in the queue, not yet
// started — the service's queue-depth gauge.
func (p *WorkerPool) Queued() int { return len(p.tasks) }

// Running reports how many tasks are executing right now.
func (p *WorkerPool) Running() int { return int(p.running.Load()) }

// Completed reports how many tasks have finished over the pool's
// lifetime.
func (p *WorkerPool) Completed() int64 { return p.done.Load() }

// Close stops accepting tasks and waits for every queued and running
// one to finish.
func (p *WorkerPool) Close() {
	close(p.tasks)
	p.wg.Wait()
}
