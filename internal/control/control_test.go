package control

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/dvfs"
	"repro/internal/isa"
	"repro/internal/sim"
)

func run(mix *isa.Mix, n int64, attach func(*sim.Machine)) sim.Result {
	m := sim.New(sim.DefaultConfig())
	if attach != nil {
		attach(m)
	}
	b := isa.NewBuilder("ctltest")
	main := b.Subroutine("main")
	b.SetBody(main, b.Block(mix, int(n)))
	p := b.Finish(main)
	p.Walk(isa.Input{Name: "train"}, &isa.CountingConsumer{Inner: m, Budget: n})
	return m.Finalize()
}

func TestAttackDecayIdlesUnusedDomains(t *testing.T) {
	ad := NewAttackDecay(DefaultAttackDecay())
	r := run(isa.IntHeavy, 300_000, ad.Attach)
	// IntHeavy has no FP work at all: FP must decay far below full speed.
	if r.AvgMHz[arch.FP] > 700 {
		t.Errorf("FP avg MHz = %.0f, want decayed", r.AvgMHz[arch.FP])
	}
	// The busy integer domain must stay near full speed.
	if r.AvgMHz[arch.Integer] < 700 {
		t.Errorf("integer avg MHz = %.0f, want near full", r.AvgMHz[arch.Integer])
	}
}

func TestAttackDecaySavesEnergyModestSlowdown(t *testing.T) {
	base := run(isa.IntHeavy, 300_000, nil)
	ad := NewAttackDecay(DefaultAttackDecay())
	r := run(isa.IntHeavy, 300_000, ad.Attach)
	slow := float64(r.TimePs)/float64(base.TimePs) - 1
	save := 1 - r.EnergyPJ/base.EnergyPJ
	if save <= 0 {
		t.Errorf("no energy saved: %.3f", save)
	}
	if slow > 0.35 {
		t.Errorf("slowdown %.1f%% out of control", slow*100)
	}
}

func TestAggressivenessTradesEnergyForTime(t *testing.T) {
	mild := DefaultAttackDecay()
	mild.Aggressiveness = 0.5
	hot := DefaultAttackDecay()
	hot.Aggressiveness = 2.5
	rMild := run(isa.Balanced, 300_000, NewAttackDecay(mild).Attach)
	rHot := run(isa.Balanced, 300_000, NewAttackDecay(hot).Attach)
	if rHot.EnergyPJ >= rMild.EnergyPJ {
		t.Errorf("aggressive controller saved less energy: %.0f vs %.0f",
			rHot.EnergyPJ, rMild.EnergyPJ)
	}
}

func TestPerfGuardBoundsSlowdown(t *testing.T) {
	base := run(isa.MemBound, 200_000, nil)
	guarded := DefaultAttackDecay()
	guarded.PerfGuard = 0.05
	r := run(isa.MemBound, 200_000, NewAttackDecay(guarded).Attach)
	free := DefaultAttackDecay()
	rFree := run(isa.MemBound, 200_000, NewAttackDecay(free).Attach)
	slowG := float64(r.TimePs) / float64(base.TimePs)
	slowF := float64(rFree.TimePs) / float64(base.TimePs)
	if slowG > slowF+0.02 {
		t.Errorf("guard increased slowdown: %.3f vs %.3f", slowG, slowF)
	}
}

func TestGlobalDVSMHz(t *testing.T) {
	cases := []struct {
		base, target int64
		want         int
	}{
		{100, 100, dvfs.FMaxMHz},
		{100, 50, dvfs.FMaxMHz}, // target faster than base: full speed
		{95, 100, 950},
		{50, 100, 500},
		{100, 1000, dvfs.QuantizeUp(100)},
	}
	for _, c := range cases {
		if got := GlobalDVSMHz(c.base, c.target); got != c.want {
			t.Errorf("GlobalDVSMHz(%d,%d) = %d, want %d", c.base, c.target, got, c.want)
		}
	}
}

func TestGlobalDVSQuantizesUp(t *testing.T) {
	// 96.2% of full speed must round UP on the ladder so the runtime
	// constraint is met.
	got := GlobalDVSMHz(962, 1000)
	if got != 975 {
		t.Errorf("got %d, want 975", got)
	}
}

func TestControllerDeterministic(t *testing.T) {
	ad1 := NewAttackDecay(DefaultAttackDecay())
	a := run(isa.Balanced, 150_000, ad1.Attach)
	ad2 := NewAttackDecay(DefaultAttackDecay())
	b := run(isa.Balanced, 150_000, ad2.Attach)
	if a.TimePs != b.TimePs || a.EnergyPJ != b.EnergyPJ {
		t.Error("controller runs are not deterministic")
	}
}
