// Package control implements the run-time DVFS control policies the
// paper compares:
//
//   - Baseline: every domain at full speed (the MCD baseline all results
//     are normalized to).
//   - AttackDecay: the hardware on-line algorithm of Semeraro et al.
//     (MICRO 2002), driven by per-domain issue-queue utilization over
//     fixed instruction intervals.
//
// The off-line oracle and the profile-driven schemes are not run-time
// controllers: they are built by the training pipeline in internal/core
// and enter the stream as reconfiguration instructions via internal/edit.
// The global-DVS comparator is a separate single-clock run configured by
// the experiment driver.
package control

import (
	"repro/internal/arch"
	"repro/internal/dvfs"
	"repro/internal/sim"
)

// AttackDecayConfig tunes the on-line controller.
type AttackDecayConfig struct {
	// IntervalInstrs is the evaluation interval (the paper's hardware
	// evaluates every 10,000 cycles; at IPC near 1 this is equivalent).
	IntervalInstrs int64
	// AttackStep is the multiplicative frequency change applied when
	// utilization moves across a threshold.
	AttackStep float64
	// DecayStep is the slow multiplicative decay applied when
	// utilization is stable, constantly probing for energy savings.
	DecayStep float64
	// HighUtil and LowUtil bound the per-domain utilization dead zone.
	HighUtil float64
	LowUtil  float64
	// Aggressiveness scales the dead zone downward, trading slowdown
	// for savings; the Figure 10/11 sweeps vary it.
	Aggressiveness float64
	// PerfGuard is the tolerated fractional throughput drop relative to
	// the best observed interval rate before the controller attacks all
	// domains back up (the on-line algorithm's performance bound).
	PerfGuard float64
}

// DefaultAttackDecay returns the calibrated on-line controller settings.
func DefaultAttackDecay() AttackDecayConfig {
	return AttackDecayConfig{
		IntervalInstrs: 10_000,
		AttackStep:     0.10,
		DecayStep:      0.015,
		HighUtil:       0.25,
		LowUtil:        0.10,
		Aggressiveness: 1.0,
		PerfGuard:      0, // disabled: the paper's controller has no global bound
	}
}

// AttackDecay is the on-line hardware controller. It watches per-domain
// issue-queue utilization; a significant rise triggers an immediate
// frequency attack upward, a significant fall an attack downward, and a
// stable signal lets the frequency decay slowly until performance
// feedback pushes back.
type AttackDecay struct {
	cfg     AttackDecayConfig
	bestIPS float64
}

// NewAttackDecay returns the controller.
func NewAttackDecay(cfg AttackDecayConfig) *AttackDecay {
	if cfg.Aggressiveness <= 0 {
		cfg.Aggressiveness = 1
	}
	return &AttackDecay{cfg: cfg}
}

// Attach installs the controller on a machine with its interval.
func (a *AttackDecay) Attach(m *sim.Machine) {
	m.SetController(a, a.cfg.IntervalInstrs)
}

// domainUnits returns the functional-unit count of one topology domain
// (the sum over its owned execution resources) and whether the domain
// is front-end-style (owns fetch or dispatch logic). Unit-owning
// domains are regulated by unit busy time; unit-less front-end domains
// by delivered fetch bandwidth; unit-less non-front-end domains (e.g. a
// split-off L2 interface) by their busy time against one implicit port.
func domainUnits(cfg sim.Config, topo *arch.Topology, d arch.Domain) (units float64, frontEnd bool) {
	n := 0
	for _, r := range topo.Spec(d).Resources {
		switch r {
		case arch.ResIntExec:
			n += cfg.IntALUs + cfg.IntMuls
		case arch.ResFPExec:
			n += cfg.FPALUs + cfg.FPMuls
		case arch.ResLoadStore:
			n += cfg.LSPorts
		case arch.ResFetch, arch.ResDispatch:
			frontEnd = true
		}
	}
	return float64(n), frontEnd
}

// OnInterval implements sim.Controller. Its per-domain loops run over
// the machine's topology, so the controller sizes itself to any domain
// structure.
func (a *AttackDecay) OnInterval(m *sim.Machine, now int64, s sim.IntervalStats) {
	if s.Instructions == 0 || s.ElapsedPs == 0 {
		return
	}
	topo := m.Topology()
	cfg := m.Config()
	// Performance guard: if throughput fell too far below the best
	// observed rate, attack every scaled domain upward and skip decay.
	ips := float64(s.Instructions) / float64(s.ElapsedPs)
	if ips > a.bestIPS {
		a.bestIPS = ips
	} else {
		// Let the reference decay slowly so phase changes re-baseline.
		a.bestIPS *= 0.999
	}
	guard := a.cfg.PerfGuard * a.cfg.Aggressiveness
	if a.cfg.PerfGuard > 0 && a.bestIPS > 0 && ips < a.bestIPS*(1-guard) {
		for d := arch.Domain(0); int(d) < topo.NumScalable(); d++ {
			if units, frontEnd := domainUnits(cfg, topo, d); units == 0 && frontEnd {
				continue
			}
			cur := m.Clock(d).TargetMHz()
			m.SetDomainTarget(d, now, dvfs.Quantize(int(float64(cur)*(1+2*a.cfg.AttackStep))))
		}
		return
	}
	// Higher aggressiveness tolerates higher utilization before attacking
	// upward and probes downward faster, trading performance for energy.
	high := a.cfg.HighUtil * a.cfg.Aggressiveness
	low := a.cfg.LowUtil * a.cfg.Aggressiveness
	decay := a.cfg.DecayStep * a.cfg.Aggressiveness
	if high > 0.95 {
		high = 0.95
	}
	if low > high*0.8 {
		low = high * 0.8
	}
	for d := arch.Domain(0); int(d) < topo.NumScalable(); d++ {
		var util float64
		switch units, frontEnd := domainUnits(cfg, topo, d); {
		case units == 0 && frontEnd:
			// No issue queue in this domain; its utilization is the
			// delivered fetch bandwidth against the decode width.
			period := float64(m.Clock(d).PeriodAt(now))
			util = float64(s.Instructions) * period / (float64(s.ElapsedPs) * float64(cfg.DecodeWidth))
		case units == 0:
			// A unit-less non-front-end domain (e.g. a split-off L2
			// interface): its busy time against one implicit port.
			util = float64(s.BusyPs[d]) / float64(s.ElapsedPs)
		default:
			// Utilization: functional-unit service time over interval
			// capacity. Slowing a domain lengthens its service times, so
			// the signal self-corrects when the domain becomes critical.
			util = float64(s.BusyPs[d]) / (units * float64(s.ElapsedPs))
		}
		cur := m.Clock(d).TargetMHz()
		next := float64(cur)
		mid := (low + high) / 2
		switch {
		case util > high:
			// Attack upward, harder than downward: recovering from a dip
			// costs wall-clock time through the DVFS ramp.
			next = float64(cur) * (1 + 2*a.cfg.AttackStep)
		case util < low:
			next = float64(cur) * (1 - a.cfg.AttackStep)
		case util < mid:
			// Probe downward slowly.
			next = float64(cur) * (1 - decay)
		default:
			// Hold: near-critical utilization, do not probe.
		}
		m.SetDomainTarget(d, now, dvfs.Quantize(int(next)))
	}
}

// GlobalDVSMHz returns the single-clock frequency that matches the
// off-line algorithm's run time (Figure 7's "global" comparator): if the
// baseline takes baseTimePs at full speed and the target run time is
// targetTimePs, the whole chip runs at FMax * base/target, quantized up
// so the run-time constraint is met.
func GlobalDVSMHz(baseTimePs, targetTimePs int64) int {
	if targetTimePs <= baseTimePs {
		return dvfs.FMaxMHz
	}
	f := float64(dvfs.FMaxMHz) * float64(baseTimePs) / float64(targetTimePs)
	return dvfs.QuantizeUp(int(f))
}
