package xrand

import (
	"math/rand"
	"testing"
)

// TestStreamCompat locks xrand to math/rand: identical seeds must yield
// identical draw sequences for every method the simulator uses, in any
// interleaving. The whole repository's determinism story (sweep cache
// keys, byte-identical reports) rests on this equivalence.
func TestStreamCompat(t *testing.T) {
	for _, seed := range []int64{1, 42, -9182736455463728190, 0x5deece66d} {
		want := rand.New(rand.NewSource(seed))
		got := New(seed)
		for i := 0; i < 10_000; i++ {
			switch i % 6 {
			case 0:
				if w, g := want.Float64(), got.Float64(); w != g {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, g, w)
				}
			case 1:
				if w, g := want.Int63(), got.Int63(); w != g {
					t.Fatalf("seed %d draw %d: Int63 %v != %v", seed, i, g, w)
				}
			case 2:
				if w, g := want.NormFloat64(), got.NormFloat64(); w != g {
					t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, g, w)
				}
			case 3:
				if w, g := want.ExpFloat64(), got.ExpFloat64(); w != g {
					t.Fatalf("seed %d draw %d: ExpFloat64 %v != %v", seed, i, g, w)
				}
			case 4:
				if w, g := want.Int63n(1_000_003), got.Int63n(1_000_003); w != g {
					t.Fatalf("seed %d draw %d: Int63n %v != %v", seed, i, g, w)
				}
			case 5:
				if w, g := want.Intn(97), got.Intn(97); w != g {
					t.Fatalf("seed %d draw %d: Intn %v != %v", seed, i, g, w)
				}
			}
		}
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}

func BenchmarkStdFloat64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}
