// Package xrand vendors the exact pseudo-random generator of math/rand
// (the Mitchell & Reeds additive lagged-Fibonacci source plus the
// ziggurat normal/exponential variates) as a concrete type. The
// simulator draws several variates per simulated instruction, and the
// standard library routes every draw through a rand.Source interface
// call that defeats inlining; binding the source concretely removes
// that dispatch while producing bit-identical sequences for identical
// seeds — a hard requirement, since every experiment output and sweep
// cache key depends on these streams. The algorithm files are copied
// from Go go1.24.0 math/rand (BSD license, see the Go LICENSE file); do not
// edit them except to track upstream.
package xrand

// Rand is a deterministic source of pseudo-random variates, stream-
// compatible with math/rand.New(math/rand.NewSource(seed)) for the
// methods implemented here. It is not safe for concurrent use.
type Rand struct {
	src rngSource
}

// New returns a Rand seeded exactly like math/rand.NewSource(seed).
func New(seed int64) *Rand {
	r := &Rand{}
	r.src.Seed(seed)
	return r
}

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 { return r.src.Int63() }

// Uint32 returns a 32-bit value, matching math/rand.(*Rand).Uint32.
func (r *Rand) Uint32() uint32 { return uint32(r.Int63() >> 31) }

// Int31 returns a non-negative 31-bit integer.
func (r *Rand) Int31() int32 { return int32(r.Int63() >> 32) }

// Int31n returns an integer in [0, n); it panics if n <= 0. The
// rejection algorithm matches math/rand exactly.
func (r *Rand) Int31n(n int32) int32 {
	if n <= 0 {
		panic("invalid argument to Int31n")
	}
	if n&(n-1) == 0 { // n is power of two, can mask
		return r.Int31() & (n - 1)
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := r.Int31()
	for v > max {
		v = r.Int31()
	}
	return v % n
}

// Int63n returns an integer in [0, n); it panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("invalid argument to Int63n")
	}
	if n&(n-1) == 0 { // n is power of two, can mask
		return r.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Intn returns an integer in [0, n); it panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("invalid argument to Intn")
	}
	if n <= 1<<31-1 {
		return int(r.Int31n(int32(n)))
	}
	return int(r.Int63n(int64(n)))
}

// Float64 returns a float64 in [0.0, 1.0).
func (r *Rand) Float64() float64 {
	// See math/rand for the history of this formulation; the clamp loop
	// preserves the exact stream.
again:
	f := float64(r.Int63()) / (1 << 63)
	if f == 1 {
		goto again // resample; this branch is taken O(never)
	}
	return f
}
