// Package shaker implements phase two of the paper's pipeline: the
// "shaker" slack-distribution algorithm of Semeraro et al. (HPCA 2002).
// Working on a dependence DAG of primitive events, it repeatedly sweeps
// backward and forward with a descending power threshold, stretching
// high-power events that have slack on all outgoing (resp. incoming)
// edges — as if each event could run at its own lower frequency — and
// shifting remaining slack across the event so later passes can consume
// it. The output is a per-domain histogram of event time versus the
// frequency each event was scaled to.
package shaker

import (
	"sort"

	"repro/internal/arch"
	"repro/internal/dvfs"
	"repro/internal/trace"
)

// Config parameterizes the shaker.
type Config struct {
	// MaxStretch bounds per-event scaling; the paper stops at one
	// quarter of the original frequency.
	MaxStretch float64
	// ThresholdDecay multiplies the power threshold after each
	// backward+forward pass pair ("reduces its power threshold by a
	// small amount").
	ThresholdDecay float64
	// InitialThresholdFrac sets the starting threshold slightly below
	// the most power-intensive events in the graph.
	InitialThresholdFrac float64
	// MaxPasses bounds the number of pass pairs.
	MaxPasses int
	// PowerFactor is the initial per-domain event power factor,
	// reflecting the relative power consumption of each clock domain;
	// its length is the number of scalable domains the shaker histograms
	// cover. Topology-driven pipelines size it with ConfigFor.
	PowerFactor []float64
}

// DefaultConfig returns the calibrated shaker parameters for the default
// 4-domain topology.
func DefaultConfig() Config {
	return Config{
		MaxStretch:           4.0,
		ThresholdDecay:       0.9,
		InitialThresholdFrac: 0.95,
		MaxPasses:            48,
		PowerFactor: []float64{
			arch.FrontEnd: 0.30,
			arch.Integer:  0.24,
			arch.FP:       0.20,
			arch.Memory:   0.26,
		},
	}
}

// ConfigFor adapts a configuration to a topology: under the default
// topology the configured factors are kept when they cover its domains
// (the calibrated default does, and callers may tune them); any other
// topology uses its own declared per-domain factors — positional
// factors calibrated for the paper's domain order must not silently
// apply to a different grouping.
func ConfigFor(cfg Config, topo *arch.Topology) Config {
	if topo.Name != arch.DefaultName || len(cfg.PowerFactor) != topo.NumScalable() {
		cfg.PowerFactor = topo.PowerFactors()
	}
	return cfg
}

// Hist is a histogram over the DVFS frequency ladder: Bins[i] accumulates
// full-speed event duration (picoseconds) for events whose shaken ideal
// frequency is ladder step i.
type Hist struct {
	Bins [dvfs.NumSteps]float64
}

// Add merges another histogram into h.
func (h *Hist) Add(o *Hist) {
	for i := range h.Bins {
		h.Bins[i] += o.Bins[i]
	}
}

// Total returns the summed weight.
func (h *Hist) Total() float64 {
	t := 0.0
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// DomainHists holds one histogram per scalable domain, in topology
// domain order.
type DomainHists []Hist

// Add merges another set of histograms; both sets must cover the same
// domains.
func (d *DomainHists) Add(o *DomainHists) {
	for i := range *d {
		if i >= len(*o) {
			break
		}
		(*d)[i].Add(&(*o)[i])
	}
}

// Clone returns an independent deep copy. DomainHists is a slice, so a
// plain assignment aliases the underlying histograms; accumulation over
// a copy must go through Clone or it would corrupt the source.
func (d *DomainHists) Clone() *DomainHists {
	c := make(DomainHists, len(*d))
	copy(c, *d)
	return &c
}

// Runner owns the shaker's scratch arrays so repeated invocations (one
// per captured segment — a training run shakes hundreds) reuse one
// arena instead of reallocating per segment. Events live in
// structure-of-arrays form and edges in two CSR index tables: the sweep
// loops are memory-bound, and the hot fields (start, end, pf) pack far
// more densely this way than as an array of event structs. A Runner is
// not safe for concurrent use; independent goroutines each take their
// own.
type Runner struct {
	cfg Config

	// Per-event sweep state. Every field a sweep visit touches lives in
	// one cache-line-sized struct: the pass loops are memory-bound over
	// multi-megabyte working sets, and one line per visit beats six
	// parallel arrays.
	hot []evhot

	// Cold per-event state, only read when summarizing.
	weight []float64
	dom    []uint8

	// Edges in CSR form; each event's list offsets live in its evhot.
	// inOff is construction scratch for the counting pass.
	outIdx, inIdx []int32
	inOff         []int32

	// Sweep orders.
	byEnd, byStart []int32

	// prefetchSink keeps sweep-loop prefetch loads observable so the
	// compiler cannot discard them.
	prefetchSink int64
}

// prefetchAhead is how many sweep positions ahead each iteration
// pre-touches; ~8 covers the hot-line fetch latency without evicting
// the lines the loop is about to use.
const prefetchAhead = 8

// evhot is the per-event sweep state, exactly one 64-byte cache line.
// The CSR edge offsets ride in the same line so a sweep visit loads the
// event once and goes straight to its edge lists.
type evhot struct {
	start, end int64
	dur0       int64
	pf0, pf    float64
	scale      float64
	outBase    int32 // offset of the out-edge list in Runner.outIdx
	outDeg     int32
	inBase     int32 // offset of the in-edge list in Runner.inIdx
	inDeg      int32
}

// NewRunner returns a reusable shaker over one configuration.
func NewRunner(cfg Config) *Runner { return &Runner{cfg: cfg} }

// Run applies the shaker to one segment and returns its per-domain
// histograms. It is a convenience wrapper allocating a fresh Runner;
// loops over many segments should reuse one.
func Run(seg *trace.Segment, cfg Config) DomainHists {
	return NewRunner(cfg).Run(seg)
}

// grow returns s resized to n, reallocating only when capacity is short.
func grow[T evhot | int64 | float64 | uint8 | int32](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// resize prepares the per-event arrays for n events.
func (r *Runner) resize(n int) {
	r.hot = grow(r.hot, n)
	r.weight = grow(r.weight, n)
	r.dom = grow(r.dom, n)
	r.inOff = grow(r.inOff, n+1)
	r.byEnd = grow(r.byEnd, n)
	r.byStart = grow(r.byStart, n)
}

// Run applies the shaker to one segment and returns its per-domain
// histograms. The segment is read, never modified.
func (r *Runner) Run(seg *trace.Segment) DomainHists {
	cfg := r.cfg
	n := len(seg.Events)
	hists := make(DomainHists, len(cfg.PowerFactor))
	if n == 0 {
		return hists
	}
	r.resize(n)
	var srcStart, sinkEnd int64
	srcStart = seg.Events[0].Start
	edges := 0
	hot := r.hot
	for i := range seg.Events {
		te := &seg.Events[i]
		pf := 0.0
		if int(te.Domain) < len(cfg.PowerFactor) {
			pf = cfg.PowerFactor[te.Domain]
		}
		w := te.Weight
		if w == 0 {
			w = float64(te.End - te.Start)
		}
		hot[i] = evhot{
			start: te.Start, end: te.End,
			dur0: te.End - te.Start,
			pf0:  pf, pf: pf,
			scale: 1,
		}
		r.weight[i] = w
		r.dom[i] = uint8(te.Domain)
		edges += len(te.Out)
		if te.Start < srcStart {
			srcStart = te.Start
		}
		if te.End > sinkEnd {
			sinkEnd = te.End
		}
	}
	// Out-edges in CSR form, preserving per-event successor order.
	r.outIdx = grow(r.outIdx, edges)
	r.inIdx = grow(r.inIdx, edges)
	pos := int32(0)
	for i := range seg.Events {
		hot[i].outBase = pos
		hot[i].outDeg = int32(len(seg.Events[i].Out))
		pos += int32(copy(r.outIdx[pos:], seg.Events[i].Out))
	}
	// Mirror into in-edges with a counting pass; filling in ascending
	// producer order reproduces the append order of a per-event build.
	inOff := r.inOff
	for i := 0; i <= n; i++ {
		inOff[i] = 0
	}
	for _, s := range r.outIdx[:edges] {
		inOff[s+1]++
	}
	for i := 0; i < n; i++ {
		inOff[i+1] += inOff[i]
	}
	for i := 0; i < n; i++ {
		hot[i].inBase = inOff[i]
		hot[i].inDeg = inOff[i+1] - inOff[i]
	}
	next := r.byStart[:n] // borrowed as scratch; initialized below before sorting
	for i := range next {
		next[i] = inOff[i]
	}
	for i := 0; i < n; i++ {
		e := &hot[i]
		for _, s := range r.outIdx[e.outBase : e.outBase+e.outDeg] {
			r.inIdx[next[s]] = int32(i)
			next[s]++
		}
	}

	// Index orders for the sweeps.
	byEnd, byStart := r.byEnd[:n], r.byStart[:n]
	for i := range byEnd {
		byEnd[i] = int32(i)
		byStart[i] = int32(i)
	}
	sort.Slice(byEnd, func(a, b int) bool { return hot[byEnd[a]].end > hot[byEnd[b]].end })
	sort.Slice(byStart, func(a, b int) bool { return hot[byStart[a]].start < hot[byStart[b]].start })

	maxPF, minPF := 0.0, 1e9
	for _, p := range cfg.PowerFactor {
		if p > maxPF {
			maxPF = p
		}
		if p < minPF {
			minPF = p
		}
	}
	threshold := maxPF * cfg.InitialThresholdFrac
	idle := 0
	outIdx, inIdx := r.outIdx, r.inIdx
	for pass := 0; pass < cfg.MaxPasses; pass++ {
		stretched := false
		var movedBits int64
		// Backward pass: consume outgoing slack, push the rest to
		// incoming edges by moving events later. The shift at the bottom
		// is branchless (a negative slack contributes zero), and each
		// iteration pre-touches the event a few positions ahead in sweep
		// order — the permuted walk defeats the hardware prefetcher, and
		// these loops are latency-bound on the hot-line fetch.
		for k := range byEnd {
			if k+prefetchAhead < n {
				r.prefetchSink += hot[byEnd[k+prefetchAhead]].start
			}
			e := &hot[byEnd[k]]
			slack := sinkEnd - e.end
			for _, s := range outIdx[e.outBase : e.outBase+e.outDeg] {
				if d := hot[s].start - e.end; d < slack {
					slack = d
				}
			}
			// stretch is a no-op on nonpositive slack; the guard only
			// short-circuits the common ineligible case.
			if slack > 0 && e.pf > threshold && e.scale < cfg.MaxStretch && e.dur0 > 0 {
				if grew := stretch(e, slack, threshold, cfg.MaxStretch, false); grew > 0 {
					slack -= grew
					stretched = true
				}
			}
			add := slack &^ (slack >> 63) // max(slack, 0)
			e.start += add
			e.end += add
			movedBits |= add
		}
		// Forward pass: consume incoming slack, push the rest to
		// outgoing edges by moving events earlier.
		for k := range byStart {
			if k+prefetchAhead < n {
				r.prefetchSink += hot[byStart[k+prefetchAhead]].start
			}
			e := &hot[byStart[k]]
			slack := e.start - srcStart
			for _, p := range inIdx[e.inBase : e.inBase+e.inDeg] {
				if d := e.start - hot[p].end; d < slack {
					slack = d
				}
			}
			if slack > 0 && e.pf > threshold && e.scale < cfg.MaxStretch && e.dur0 > 0 {
				if grew := stretch(e, slack, threshold, cfg.MaxStretch, true); grew > 0 {
					slack -= grew
					stretched = true
				}
			}
			add := slack &^ (slack >> 63)
			e.start -= add
			e.end -= add
			movedBits |= add
		}
		moved := movedBits != 0
		if !stretched && !moved {
			// Fixed point: every slack is zero or negative and no event
			// stretched. Slack is independent of the power threshold, so
			// the remaining passes — which only ever act on positive
			// slack — cannot change anything; the descending threshold
			// would merely decay to the exit condition. Summarizing now
			// is exact, not an approximation.
			break
		}
		threshold *= cfg.ThresholdDecay
		if stretched {
			idle = 0
		} else {
			idle++
			if threshold < minPF*0.25 && idle >= 2 {
				break
			}
		}
	}

	// Summarize: each event contributes its full-speed duration to the
	// bin of the frequency it was scaled to (rounded down to the ladder
	// so chosen frequencies never overestimate savings).
	for i := 0; i < n; i++ {
		if hot[i].dur0 <= 0 || int(r.dom[i]) >= len(hists) {
			continue
		}
		ideal := float64(dvfs.FMaxMHz) / hot[i].scale
		bin := dvfs.StepIndex(dvfs.QuantizeDown(int(ideal)))
		hists[r.dom[i]].Bins[bin] += r.weight[i]
	}
	return hists
}

// stretch grows event e into the available slack, limited by the maximum
// stretch and by the scale at which its power factor falls to the
// threshold. When forward is false the end moves later; when true the
// start moves earlier. It returns the consumed slack.
func stretch(e *evhot, slack int64, threshold, maxStretch float64, forward bool) int64 {
	dur := e.end - e.start
	limit := maxStretch
	if byThresh := e.pf0 / threshold; byThresh < limit {
		limit = byThresh
	}
	maxDur := int64(float64(e.dur0) * limit)
	want := dur + slack
	if want > maxDur {
		want = maxDur
	}
	if want <= dur {
		return 0
	}
	grew := want - dur
	if forward {
		e.start -= grew
	} else {
		e.end += grew
	}
	e.scale = float64(want) / float64(e.dur0)
	e.pf = e.pf0 / e.scale
	return grew
}
