// Package shaker implements phase two of the paper's pipeline: the
// "shaker" slack-distribution algorithm of Semeraro et al. (HPCA 2002).
// Working on a dependence DAG of primitive events, it repeatedly sweeps
// backward and forward with a descending power threshold, stretching
// high-power events that have slack on all outgoing (resp. incoming)
// edges — as if each event could run at its own lower frequency — and
// shifting remaining slack across the event so later passes can consume
// it. The output is a per-domain histogram of event time versus the
// frequency each event was scaled to.
package shaker

import (
	"sort"

	"repro/internal/arch"
	"repro/internal/dvfs"
	"repro/internal/trace"
)

// Config parameterizes the shaker.
type Config struct {
	// MaxStretch bounds per-event scaling; the paper stops at one
	// quarter of the original frequency.
	MaxStretch float64
	// ThresholdDecay multiplies the power threshold after each
	// backward+forward pass pair ("reduces its power threshold by a
	// small amount").
	ThresholdDecay float64
	// InitialThresholdFrac sets the starting threshold slightly below
	// the most power-intensive events in the graph.
	InitialThresholdFrac float64
	// MaxPasses bounds the number of pass pairs.
	MaxPasses int
	// PowerFactor is the initial per-domain event power factor,
	// reflecting the relative power consumption of each clock domain.
	PowerFactor [arch.NumScalable]float64
}

// DefaultConfig returns the calibrated shaker parameters.
func DefaultConfig() Config {
	return Config{
		MaxStretch:           4.0,
		ThresholdDecay:       0.9,
		InitialThresholdFrac: 0.95,
		MaxPasses:            48,
		PowerFactor: [arch.NumScalable]float64{
			arch.FrontEnd: 0.30,
			arch.Integer:  0.24,
			arch.FP:       0.20,
			arch.Memory:   0.26,
		},
	}
}

// Hist is a histogram over the DVFS frequency ladder: Bins[i] accumulates
// full-speed event duration (picoseconds) for events whose shaken ideal
// frequency is ladder step i.
type Hist struct {
	Bins [dvfs.NumSteps]float64
}

// Add merges another histogram into h.
func (h *Hist) Add(o *Hist) {
	for i := range h.Bins {
		h.Bins[i] += o.Bins[i]
	}
}

// Total returns the summed weight.
func (h *Hist) Total() float64 {
	t := 0.0
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// DomainHists holds one histogram per scalable domain.
type DomainHists [arch.NumScalable]Hist

// Add merges another set of histograms.
func (d *DomainHists) Add(o *DomainHists) {
	for i := range d {
		d[i].Add(&o[i])
	}
}

// event is the shaker's mutable view of a trace event.
type event struct {
	start, end int64
	dur0       int64
	weight     float64
	pf0, pf    float64
	scale      float64
	dom        arch.Domain
	out, in    []int32
}

// Run applies the shaker to one segment and returns its per-domain
// histograms.
func Run(seg *trace.Segment, cfg Config) DomainHists {
	n := len(seg.Events)
	var hists DomainHists
	if n == 0 {
		return hists
	}
	evs := make([]event, n)
	var srcStart, sinkEnd int64
	srcStart = seg.Events[0].Start
	for i := range seg.Events {
		te := &seg.Events[i]
		pf := 0.0
		if te.Domain < arch.NumScalable {
			pf = cfg.PowerFactor[te.Domain]
		}
		w := te.Weight
		if w == 0 {
			w = float64(te.End - te.Start)
		}
		evs[i] = event{
			start: te.Start, end: te.End,
			dur0:   te.End - te.Start,
			weight: w,
			pf0:    pf, pf: pf,
			scale: 1,
			dom:   te.Domain,
			out:   te.Out,
		}
		if te.Start < srcStart {
			srcStart = te.Start
		}
		if te.End > sinkEnd {
			sinkEnd = te.End
		}
	}
	for i := range evs {
		for _, s := range evs[i].out {
			evs[s].in = append(evs[s].in, int32(i))
		}
	}

	// Index orders for the sweeps.
	byEnd := make([]int32, n)
	byStart := make([]int32, n)
	for i := range byEnd {
		byEnd[i] = int32(i)
		byStart[i] = int32(i)
	}
	sort.Slice(byEnd, func(a, b int) bool { return evs[byEnd[a]].end > evs[byEnd[b]].end })
	sort.Slice(byStart, func(a, b int) bool { return evs[byStart[a]].start < evs[byStart[b]].start })

	maxPF, minPF := 0.0, 1e9
	for _, p := range cfg.PowerFactor {
		if p > maxPF {
			maxPF = p
		}
		if p < minPF {
			minPF = p
		}
	}
	threshold := maxPF * cfg.InitialThresholdFrac
	idle := 0
	for pass := 0; pass < cfg.MaxPasses; pass++ {
		stretched := false
		// Backward pass: consume outgoing slack, push the rest to
		// incoming edges by moving events later.
		for _, i := range byEnd {
			e := &evs[i]
			slack := sinkEnd - e.end
			for _, s := range e.out {
				if d := evs[s].start - e.end; d < slack {
					slack = d
				}
			}
			if slack <= 0 {
				continue
			}
			if e.pf > threshold && e.scale < cfg.MaxStretch && e.dur0 > 0 {
				if grew := stretch(e, slack, threshold, cfg.MaxStretch, false); grew > 0 {
					slack -= grew
					stretched = true
				}
			}
			if slack > 0 {
				e.start += slack
				e.end += slack
			}
		}
		// Forward pass: consume incoming slack, push the rest to
		// outgoing edges by moving events earlier.
		for _, i := range byStart {
			e := &evs[i]
			slack := e.start - srcStart
			for _, p := range e.in {
				if d := e.start - evs[p].end; d < slack {
					slack = d
				}
			}
			if slack <= 0 {
				continue
			}
			if e.pf > threshold && e.scale < cfg.MaxStretch && e.dur0 > 0 {
				if grew := stretch(e, slack, threshold, cfg.MaxStretch, true); grew > 0 {
					slack -= grew
					stretched = true
				}
			}
			if slack > 0 {
				e.start -= slack
				e.end -= slack
			}
		}
		threshold *= cfg.ThresholdDecay
		if stretched {
			idle = 0
		} else {
			idle++
			if threshold < minPF*0.25 && idle >= 2 {
				break
			}
		}
	}

	// Summarize: each event contributes its full-speed duration to the
	// bin of the frequency it was scaled to (rounded down to the ladder
	// so chosen frequencies never overestimate savings).
	for i := range evs {
		e := &evs[i]
		if e.dur0 <= 0 || e.dom >= arch.NumScalable {
			continue
		}
		ideal := float64(dvfs.FMaxMHz) / e.scale
		bin := dvfs.StepIndex(dvfs.QuantizeDown(int(ideal)))
		hists[e.dom].Bins[bin] += e.weight
	}
	return hists
}

// stretch grows event e into the available slack, limited by the maximum
// stretch and by the scale at which its power factor falls to the
// threshold. When backward is false the end moves later; when true the
// start moves earlier. It returns the consumed slack.
func stretch(e *event, slack int64, threshold, maxStretch float64, forward bool) int64 {
	dur := e.end - e.start
	limit := maxStretch
	if byThresh := e.pf0 / threshold; byThresh < limit {
		limit = byThresh
	}
	maxDur := int64(float64(e.dur0) * limit)
	want := dur + slack
	if want > maxDur {
		want = maxDur
	}
	if want <= dur {
		return 0
	}
	grew := want - dur
	if forward {
		e.start -= grew
	} else {
		e.end += grew
	}
	e.scale = float64(want) / float64(e.dur0)
	e.pf = e.pf0 / e.scale
	return grew
}
