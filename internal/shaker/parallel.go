package shaker

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/trace"
)

// Pool fans independent segment shakes over a bounded set of workers,
// each owning a private Runner (Runner scratch is not concurrency-safe).
// Segments are independent fixed-points, so timing cannot change any
// histogram bit; determinism is preserved by Seq, which delivers results
// to its consumer in strict submission order. A Pool built with
// workers <= 1 has no goroutines at all: every Seq shakes inline on the
// caller's goroutine, byte- and allocation-equivalent to calling
// Runner.Run directly.
type Pool struct {
	cfg     Config
	workers int
	tasks   chan *shakeTask
	wg      sync.WaitGroup

	// Observe, when non-nil, receives the wall-clock duration of every
	// segment shake the pool (or its synchronous Seqs) runs. Set it
	// before the first Shake; it is called from worker goroutines, so it
	// must be safe for concurrent use. Observation cannot perturb
	// results: shakes are pure functions of segment bytes.
	Observe func(d time.Duration)
}

// shakeTask is one submitted segment. seg is a private deep copy owned
// by the task (the submitting collector recycles the original's storage
// as soon as the OnSegment callback returns). h is the worker's result,
// published before done closes.
type shakeTask struct {
	seg     trace.Segment
	edges   []int32 // backing array of seg's Out lists, recycled at drain
	publish func(*DomainHists)
	h       *DomainHists
	done    chan struct{}
}

// NewPool starts a shake pool. workers <= 0 means GOMAXPROCS; workers
// == 1 (or a 1-proc environment) yields the synchronous pool described
// above. Close must be called to release the workers.
func NewPool(cfg Config, workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{cfg: cfg, workers: workers}
	if workers <= 1 {
		return p
	}
	p.tasks = make(chan *shakeTask, 2*workers)
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			r := NewRunner(p.cfg)
			for t := range p.tasks {
				h := p.run(r, &t.seg)
				t.h = &h
				if t.publish != nil {
					// Publish runs on the worker, before done closes, so
					// anything waiting on done (memo readers) observes the
					// published copy — and before the owned result is
					// handed to the consumer, which may mutate it.
					t.publish(&h)
				}
				close(t.done)
			}
		}()
	}
	return p
}

// run executes one shake, timing it when an observer is attached.
func (p *Pool) run(r *Runner, seg *trace.Segment) DomainHists {
	if p.Observe == nil {
		return r.Run(seg)
	}
	start := time.Now()
	h := r.Run(seg)
	p.Observe(time.Since(start))
	return h
}

// Workers reports the pool's effective worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops the workers. Every Seq must be Closed (drained) first.
func (p *Pool) Close() {
	if p.tasks != nil {
		close(p.tasks)
		p.wg.Wait()
	}
}

// Seq submits shakes to a Pool on behalf of one consumer and runs the
// consumer's callbacks in exactly the order Shake/Ordered were called,
// on the consumer's own goroutine. It is not safe for concurrent use;
// one Pool serves any number of Seqs (one per consumer goroutine).
//
// The determinism argument: a segment's histogram is a pure function of
// its event bytes, so fanning shakes out cannot change any result bit —
// only completion timing. Seq erases that timing by buffering pending
// results and draining them strictly in submission order, so the
// consumer's reduction (which may be order-sensitive, e.g. float
// accumulation) sees the exact sequence a serial run would produce.
type Seq struct {
	p       *Pool
	r       *Runner // synchronous-pool runner, lazily built
	pending []seqEntry
	free    []segStorage
}

type seqEntry struct {
	t      *shakeTask
	onDone func(*DomainHists)
	fn     func() // Ordered entry when t == nil
}

// segStorage is recycled deep-copy storage: the event array plus the
// flattened Out edge backing.
type segStorage struct {
	events []trace.Event
	edges  []int32
}

// NewSeq returns a submission sequence bound to the pool.
func (p *Pool) NewSeq() *Seq { return &Seq{p: p} }

// maxPending bounds buffered (in-flight or undelivered) entries per
// Seq; beyond it, Shake and Ordered drain the oldest entry first. The
// bound also caps deep-copy storage: at most maxPending segment copies
// exist per consumer.
func (s *Seq) maxPending() int { return 2*s.p.workers + 2 }

// Shake submits one segment. publish, when non-nil, runs on the
// computing worker as soon as the histogram exists (before any ordered
// delivery — memo publication uses this so other consumers wait only on
// the shake, never on this consumer's drain). onDone receives the owned
// result at this call's submission-order position, on the consumer's
// goroutine; the consumer may retain and mutate it. On a synchronous
// pool everything runs inline and seg is not copied.
func (s *Seq) Shake(seg *trace.Segment, publish, onDone func(*DomainHists)) {
	if s.p.tasks == nil {
		if s.r == nil {
			s.r = NewRunner(s.p.cfg)
		}
		h := s.p.run(s.r, seg)
		if publish != nil {
			publish(&h)
		}
		onDone(&h)
		return
	}
	var st segStorage
	if n := len(s.free); n > 0 {
		st, s.free = s.free[n-1], s.free[:n-1]
	}
	t := &shakeTask{publish: publish, done: make(chan struct{})}
	t.seg.Events = st.events
	t.edges = trace.CloneSegmentInto(&t.seg, st.edges, seg)
	if len(s.pending) >= s.maxPending() {
		s.drainOne()
	}
	s.pending = append(s.pending, seqEntry{t: t, onDone: onDone})
	s.p.tasks <- t
}

// Ordered runs fn at this call's submission-order position — after
// every earlier Shake's onDone and before every later one. Memo hits
// use it to splice a wait-and-clone into the reduction order without
// submitting a shake.
func (s *Seq) Ordered(fn func()) {
	if s.p.tasks == nil {
		fn()
		return
	}
	if len(s.pending) >= s.maxPending() {
		s.drainOne()
	}
	s.pending = append(s.pending, seqEntry{fn: fn})
}

// drainOne delivers the oldest pending entry.
func (s *Seq) drainOne() {
	e := s.pending[0]
	s.pending[0] = seqEntry{}
	s.pending = s.pending[:copy(s.pending, s.pending[1:])]
	if e.t == nil {
		e.fn()
		return
	}
	<-e.t.done
	e.onDone(e.t.h)
	s.free = append(s.free, segStorage{events: e.t.seg.Events[:0], edges: e.t.edges[:0]})
}

// Close drains every pending entry in order. The Seq is reusable
// afterwards, but typical consumers Close once, after their collector
// has emitted its last segment.
func (s *Seq) Close() {
	for len(s.pending) > 0 {
		s.drainOne()
	}
}
