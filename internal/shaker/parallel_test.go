package shaker

import (
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/trace"
)

// testSegments builds a varied batch of segments: chains with differing
// slack, a branchy diamond, and an empty one, so the identity checks
// cover more than one shake shape.
func testSegments(n int) []*trace.Segment {
	var segs []*trace.Segment
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			segs = append(segs, chainSegment(30+i, 1000, int64(i%7)*500))
		case 1:
			segs = append(segs, chainSegment(10, 800+int64(i)*10, 3000))
		case 2:
			seg := &trace.Segment{Events: []trace.Event{
				{Domain: arch.FrontEnd, Start: 0, End: 1000, Out: []int32{2}},
				{Domain: arch.FP, Start: 0, End: 1200, Out: []int32{2}},
				{Domain: arch.Integer, Start: 5000 + int64(i)*100, End: 6000 + int64(i)*100, Out: []int32{3}},
				{Domain: arch.Memory, Start: 9000, End: 9900},
			}}
			segs = append(segs, seg)
		default:
			segs = append(segs, &trace.Segment{})
		}
	}
	return segs
}

func histsEqual(a, b *DomainHists) bool {
	if len(*a) != len(*b) {
		return false
	}
	for d := range *a {
		for i := range (*a)[d].Bins {
			if (*a)[d].Bins[i] != (*b)[d].Bins[i] {
				return false
			}
		}
	}
	return true
}

// shakeAll runs every segment through a pool of the given width and
// returns the per-segment results in submission order plus the running
// ordered reduction (which is float-accumulation order sensitive — the
// property the Seq exists to preserve).
func shakeAll(t *testing.T, segs []*trace.Segment, workers int) ([]*DomainHists, *DomainHists) {
	t.Helper()
	p := NewPool(DefaultConfig(), workers)
	defer p.Close()
	s := p.NewSeq()
	out := make([]*DomainHists, len(segs))
	sum := make(DomainHists, arch.NumScalable)
	for i, seg := range segs {
		i := i
		s.Shake(seg, nil, func(h *DomainHists) {
			out[i] = h.Clone()
			sum.Add(h)
		})
	}
	s.Close()
	return out, &sum
}

func TestParallelMatchesSerialBitExact(t *testing.T) {
	segs := testSegments(64)
	serial, serialSum := shakeAll(t, testSegments(64), 1)
	for _, workers := range []int{2, 4, 8} {
		par, parSum := shakeAll(t, segs, workers)
		for i := range serial {
			if !histsEqual(serial[i], par[i]) {
				t.Fatalf("workers=%d: segment %d histogram differs from serial", workers, i)
			}
		}
		if !histsEqual(serialSum, parSum) {
			t.Fatalf("workers=%d: ordered reduction differs from serial", workers)
		}
	}
}

func TestSeqDeliversInSubmissionOrder(t *testing.T) {
	segs := testSegments(40)
	p := NewPool(DefaultConfig(), 8)
	defer p.Close()
	s := p.NewSeq()
	var order []int
	for i, seg := range segs {
		i := i
		if i%3 == 2 {
			// Splice ordered-only entries between shakes, as memo hits do.
			s.Ordered(func() { order = append(order, i) })
			continue
		}
		s.Shake(seg, nil, func(*DomainHists) { order = append(order, i) })
	}
	s.Close()
	if len(order) != len(segs) {
		t.Fatalf("delivered %d callbacks, want %d", len(order), len(segs))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("delivery order[%d] = %d (full order %v)", i, got, order)
		}
	}
}

func TestShakeCopiesSegmentBeforeReturn(t *testing.T) {
	// The collector recycles segment storage as soon as its callback
	// returns; the pool must have deep-copied by then. Clobber each
	// segment (events and Out edges) right after Shake and check results
	// against an untouched serial run.
	segs := testSegments(32)
	want, _ := shakeAll(t, testSegments(32), 1)

	p := NewPool(DefaultConfig(), 4)
	defer p.Close()
	s := p.NewSeq()
	got := make([]*DomainHists, len(segs))
	for i, seg := range segs {
		i := i
		s.Shake(seg, nil, func(h *DomainHists) { got[i] = h.Clone() })
		for j := range seg.Events {
			seg.Events[j] = trace.Event{Domain: arch.Integer, Start: 1, End: 2}
			seg.Events[j].Out = nil
		}
		seg.Events = seg.Events[:0]
	}
	s.Close()
	for i := range want {
		if !histsEqual(want[i], got[i]) {
			t.Fatalf("segment %d result corrupted by post-Shake storage reuse", i)
		}
	}
}

func TestPublishRunsBeforeOrderedDelivery(t *testing.T) {
	// publish must observe the histogram on the computing worker before
	// done closes — memo readers wait on it from other consumers. Check
	// the published snapshot matches the delivered result bit for bit,
	// and that mutating the owned result afterwards does not touch it.
	segs := testSegments(16)
	p := NewPool(DefaultConfig(), 4)
	defer p.Close()
	s := p.NewSeq()
	published := make([]*DomainHists, len(segs))
	for i, seg := range segs {
		i := i
		s.Shake(seg,
			func(h *DomainHists) { published[i] = h.Clone() },
			func(h *DomainHists) {
				if published[i] == nil {
					t.Errorf("segment %d: onDone ran before publish", i)
					return
				}
				if !histsEqual(published[i], h) {
					t.Errorf("segment %d: published snapshot differs from owned result", i)
				}
				(*h)[arch.Integer].Bins[0] += 1e9 // owned: must not leak into the snapshot
			})
	}
	s.Close()
	want, _ := shakeAll(t, testSegments(16), 1)
	for i := range want {
		if !histsEqual(want[i], published[i]) {
			t.Fatalf("segment %d: published snapshot shares storage with the owned result", i)
		}
	}
}

func TestSynchronousPoolHasNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(DefaultConfig(), 1)
	s := p.NewSeq()
	ran := false
	s.Shake(chainSegment(10, 1000, 500), nil, func(h *DomainHists) { ran = true })
	if !ran {
		t.Fatal("synchronous pool did not run onDone inline")
	}
	ordered := false
	s.Ordered(func() { ordered = true })
	if !ordered {
		t.Fatal("synchronous pool did not run Ordered inline")
	}
	s.Close()
	p.Close()
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("synchronous pool spawned goroutines (%d -> %d)", before, after)
	}
}

func TestPoolWorkerDefaults(t *testing.T) {
	p := NewPool(DefaultConfig(), 0)
	defer p.Close()
	if got, want := p.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	p3 := NewPool(DefaultConfig(), 3)
	defer p3.Close()
	if p3.Workers() != 3 {
		t.Fatal("explicit worker count not honored")
	}
}
