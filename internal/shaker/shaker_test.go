package shaker

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/dvfs"
	"repro/internal/trace"
)

// chainSegment builds a serial chain of n integer events with the given
// gap (slack) between consecutive events.
func chainSegment(n int, durPs, gapPs int64) *trace.Segment {
	seg := &trace.Segment{}
	t := int64(0)
	for i := 0; i < n; i++ {
		e := trace.Event{Domain: arch.Integer, Start: t, End: t + durPs}
		if i+1 < n {
			e.Out = []int32{int32(i + 1)}
		}
		seg.Events = append(seg.Events, e)
		t += durPs + gapPs
	}
	return seg
}

func binFor(scale float64) int {
	return dvfs.StepIndex(dvfs.QuantizeDown(int(float64(dvfs.FMaxMHz) / scale)))
}

func TestTightChainNotStretched(t *testing.T) {
	seg := chainSegment(50, 1000, 0)
	h := Run(seg, DefaultConfig())
	full := binFor(1)
	hist := h[arch.Integer]
	if hist.Bins[full] != hist.Total() {
		t.Errorf("zero-slack chain was stretched: %v", hist.Bins)
	}
	if hist.Total() == 0 {
		t.Error("no weight recorded")
	}
}

func TestSlackChainStretched(t *testing.T) {
	// Every event has 3x its duration in slack: the shaker should scale
	// events toward 4x (quarter frequency).
	seg := chainSegment(50, 1000, 3000)
	h := Run(seg, DefaultConfig())
	hist := h[arch.Integer]
	full := binFor(1)
	if hist.Bins[full] > hist.Total()*0.2 {
		t.Errorf("mostly-slack chain kept %v of %v at full speed", hist.Bins[full], hist.Total())
	}
	// Weight should appear in low-frequency bins.
	low := 0.0
	for i := 0; i <= dvfs.StepIndex(500); i++ {
		low += hist.Bins[i]
	}
	if low < hist.Total()*0.5 {
		t.Errorf("only %v of %v scaled below 500 MHz", low, hist.Total())
	}
}

func TestMaxStretchBound(t *testing.T) {
	// Huge slack: no event may scale below fmax/MaxStretch.
	seg := chainSegment(10, 1000, 100_000)
	cfg := DefaultConfig()
	h := Run(seg, cfg)
	minBin := dvfs.StepIndex(dvfs.QuantizeDown(int(float64(dvfs.FMaxMHz) / cfg.MaxStretch)))
	hist := h[arch.Integer]
	for i := 0; i < minBin; i++ {
		if hist.Bins[i] != 0 {
			t.Errorf("bin %d (%d MHz) below quarter frequency has weight %v",
				i, dvfs.StepMHzAt(i), hist.Bins[i])
		}
	}
}

func TestPowerThresholdOrdering(t *testing.T) {
	// Two parallel chains in different domains with equal slack: the
	// higher-power domain (front end) should be stretched at least as
	// much as the lower-power one when slack is shared through a sink.
	seg := &trace.Segment{}
	// FE event and FP event feeding a common sink with slack.
	seg.Events = []trace.Event{
		{Domain: arch.FrontEnd, Start: 0, End: 1000, Out: []int32{2}},
		{Domain: arch.FP, Start: 0, End: 1000, Out: []int32{2}},
		{Domain: arch.Integer, Start: 8000, End: 9000},
	}
	h := Run(seg, DefaultConfig())
	feBins, fpBins := h[arch.FrontEnd], h[arch.FP]
	if feBins.Total() == 0 || fpBins.Total() == 0 {
		t.Fatal("missing histogram weight")
	}
	feFull := feBins.Bins[binFor(1)]
	if feFull != 0 {
		t.Error("high-power front-end event with slack was not stretched")
	}
}

func TestDisconnectedDomainsIndependent(t *testing.T) {
	// An idle-ish FP event with huge slack and a tight INT chain: FP
	// scales down, INT stays up.
	seg := chainSegment(20, 1000, 0)
	seg.Events = append(seg.Events, trace.Event{Domain: arch.FP, Start: 0, End: 500})
	h := Run(seg, DefaultConfig())
	intHist, fpHist := h[arch.Integer], h[arch.FP]
	if intHist.Bins[binFor(1)] != intHist.Total() {
		t.Error("tight INT chain disturbed by unrelated FP event")
	}
	if fpHist.Bins[binFor(1)] == fpHist.Total() {
		t.Error("slack FP event not stretched")
	}
}

func TestEmptySegment(t *testing.T) {
	h := Run(&trace.Segment{}, DefaultConfig())
	for d := range h {
		if h[d].Total() != 0 {
			t.Error("empty segment produced weight")
		}
	}
}

func TestZeroDurationEventsIgnored(t *testing.T) {
	seg := &trace.Segment{Events: []trace.Event{
		{Domain: arch.Integer, Start: 100, End: 100},
		{Domain: arch.Integer, Start: 100, End: 1100},
	}}
	h := Run(seg, DefaultConfig())
	if h[arch.Integer].Total() != 1000 {
		t.Errorf("weight = %v, want 1000 (zero-duration event ignored)", h[arch.Integer].Total())
	}
}

func TestWeightOverridesDuration(t *testing.T) {
	seg := &trace.Segment{Events: []trace.Event{
		{Domain: arch.Integer, Start: 0, End: 1000, Weight: 250},
	}}
	h := Run(seg, DefaultConfig())
	if h[arch.Integer].Total() != 250 {
		t.Errorf("weight = %v, want explicit 250", h[arch.Integer].Total())
	}
}

func TestHistAdd(t *testing.T) {
	var a, b Hist
	a.Bins[0] = 1
	b.Bins[0] = 2
	b.Bins[5] = 3
	a.Add(&b)
	if a.Bins[0] != 3 || a.Bins[5] != 3 {
		t.Errorf("Add wrong: %v", a.Bins[:6])
	}
	if a.Total() != 6 {
		t.Errorf("Total = %v", a.Total())
	}
}

func TestDomainHistsAdd(t *testing.T) {
	a := make(DomainHists, arch.NumScalable)
	b := make(DomainHists, arch.NumScalable)
	a[arch.FP].Bins[3] = 1
	b[arch.FP].Bins[3] = 2
	b[arch.Memory].Bins[0] = 5
	a.Add(&b)
	if a[arch.FP].Bins[3] != 3 || a[arch.Memory].Bins[0] != 5 {
		t.Error("DomainHists.Add wrong")
	}
}

func TestDeterministic(t *testing.T) {
	mk := func() *trace.Segment { return chainSegment(100, 1000, 1500) }
	a := Run(mk(), DefaultConfig())
	b := Run(mk(), DefaultConfig())
	for d := range a {
		for i := range a[d].Bins {
			if a[d].Bins[i] != b[d].Bins[i] {
				t.Fatalf("shaker not deterministic at domain %d bin %d", d, i)
			}
		}
	}
}

func TestWeightConservation(t *testing.T) {
	// Shaking redistributes events across bins but conserves total
	// weight per domain.
	seg := chainSegment(200, 1000, 700)
	total := 0.0
	for _, e := range seg.Events {
		total += float64(e.End - e.Start)
	}
	h := Run(seg, DefaultConfig())
	if got := h[arch.Integer].Total(); got != total {
		t.Errorf("weight not conserved: %v vs %v", got, total)
	}
}
