package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/clock"
	"repro/internal/dvfs"
)

func TestEventDomains(t *testing.T) {
	cases := map[EventKind]arch.Domain{
		FetchOp:    arch.FrontEnd,
		RenameOp:   arch.FrontEnd,
		CommitOp:   arch.FrontEnd,
		IntOp:      arch.Integer,
		IntMulOp:   arch.Integer,
		FPOp:       arch.FP,
		FPMulOp:    arch.FP,
		LSQOp:      arch.Memory,
		DCacheOp:   arch.Memory,
		L2Op:       arch.Memory,
		MemOp:      arch.External,
		OverheadOp: arch.FrontEnd,
	}
	m := DefaultModel()
	for k, want := range cases {
		if got := m.Domain(k); got != want {
			t.Errorf("%v domain = %v, want %v", k, got, want)
		}
	}
}

// TestModelRegroupingExact pins the calibration invariant the topology
// refactor relies on: per-domain clock and leakage parameters are sums
// over owned resources, and the paper4 grouping reproduces the original
// calibration bit-for-bit.
func TestModelRegroupingExact(t *testing.T) {
	m := DefaultModel()
	wantClock := []float64{140, 135, 115, 150, 0}
	wantLeak := []float64{0.000045, 0.000035, 0.000030, 0.000050, 0}
	for d := range wantClock {
		if m.ClockPJPerCycle[d] != wantClock[d] {
			t.Errorf("domain %d clock pJ/cycle = %v, want %v (bitwise)", d, m.ClockPJPerCycle[d], wantClock[d])
		}
		if m.LeakWatts[d] != wantLeak[d] {
			t.Errorf("domain %d leak = %v, want %v (bitwise)", d, m.LeakWatts[d], wantLeak[d])
		}
	}
	// Any regrouping conserves the totals exactly: compare against the
	// 2-domain front/back split.
	fb, err := arch.TopologyByName("fe-be2")
	if err != nil {
		t.Fatal(err)
	}
	m2 := ModelFor(fb)
	if m2.ClockPJPerCycle[0] != 140 || m2.ClockPJPerCycle[1] != 135+115+150 {
		t.Errorf("fe-be2 clock pJ/cycle = %v, want [140 400 0]", m2.ClockPJPerCycle)
	}
}

func TestEventEnergyVoltageSquared(t *testing.T) {
	m := DefaultModel()
	full := m.EventEnergy(IntOp, dvfs.VMax)
	half := m.EventEnergy(IntOp, dvfs.VMax/2)
	if math.Abs(half-full/4) > 1e-9 {
		t.Errorf("half-voltage energy = %v, want quarter of %v", half, full)
	}
}

func TestEventEnergyMonotonicInVoltage(t *testing.T) {
	m := DefaultModel()
	f := func(a, b uint16) bool {
		va := dvfs.VMin + float64(a%550)/1000
		vb := dvfs.VMin + float64(b%550)/1000
		if va > vb {
			va, vb = vb, va
		}
		return m.EventEnergy(DCacheOp, va) <= m.EventEnergy(DCacheOp, vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChargeAccumulates(t *testing.T) {
	b := NewBook(DefaultModel())
	b.Charge(IntOp, dvfs.VMax)
	b.Charge(IntOp, dvfs.VMax)
	b.ChargeN(IntOp, dvfs.VMax, 3)
	if b.Events(arch.Integer) != 5 {
		t.Errorf("events = %d, want 5", b.Events(arch.Integer))
	}
	want := 5 * b.Model().EventPJ[IntOp]
	if math.Abs(b.DynamicPJ(arch.Integer)-want) > 1e-9 {
		t.Errorf("dynamic = %v, want %v", b.DynamicPJ(arch.Integer), want)
	}
}

func TestFinalizeClockEnergyScalesWithFrequency(t *testing.T) {
	m := DefaultModel()
	end := int64(1_000_000)

	fast := NewBook(m)
	fast.Finalize(arch.Integer, clock.New(1000), end, 1)
	slow := NewBook(m)
	slow.Finalize(arch.Integer, clock.New(250), end, 1)

	// At quarter frequency and matched (lower) voltage the clock energy
	// must be far below a quarter of the full-speed clock energy.
	if slow.ClockPJ[arch.Integer] >= fast.ClockPJ[arch.Integer]/4 {
		t.Errorf("slow clock energy %v not < fast/4 (%v)",
			slow.ClockPJ[arch.Integer], fast.ClockPJ[arch.Integer]/4)
	}
	if slow.ClockPJ[arch.Integer] <= 0 {
		t.Error("slow clock energy is zero")
	}
}

func TestFinalizeConditionalClocking(t *testing.T) {
	m := DefaultModel()
	end := int64(1_000_000)
	busy := NewBook(m)
	busy.Finalize(arch.FP, clock.New(1000), end, 1)
	idle := NewBook(m)
	idle.Finalize(arch.FP, clock.New(1000), end, 0)
	ratio := idle.ClockPJ[arch.FP] / busy.ClockPJ[arch.FP]
	if math.Abs(ratio-m.ClockGateFloor) > 1e-9 {
		t.Errorf("idle/busy clock ratio = %v, want gate floor %v", ratio, m.ClockGateFloor)
	}
}

func TestFinalizeUtilClamped(t *testing.T) {
	m := DefaultModel()
	end := int64(100_000)
	a := NewBook(m)
	a.Finalize(arch.Memory, clock.New(1000), end, 5) // clamps to 1
	b := NewBook(m)
	b.Finalize(arch.Memory, clock.New(1000), end, 1)
	if a.ClockPJ[arch.Memory] != b.ClockPJ[arch.Memory] {
		t.Errorf("util clamp failed: %v vs %v", a.ClockPJ[arch.Memory], b.ClockPJ[arch.Memory])
	}
}

func TestLeakageScalesWithTimeAndVoltage(t *testing.T) {
	m := DefaultModel()
	short := NewBook(m)
	short.Finalize(arch.FrontEnd, clock.New(1000), 1_000_000, 0)
	long := NewBook(m)
	long.Finalize(arch.FrontEnd, clock.New(1000), 2_000_000, 0)
	if math.Abs(long.LeakPJ[arch.FrontEnd]-2*short.LeakPJ[arch.FrontEnd]) > 1e-6 {
		t.Errorf("leakage not linear in time: %v vs 2x %v",
			long.LeakPJ[arch.FrontEnd], short.LeakPJ[arch.FrontEnd])
	}
	lowV := NewBook(m)
	lowV.Finalize(arch.FrontEnd, clock.New(250), 1_000_000, 0)
	if lowV.LeakPJ[arch.FrontEnd] >= short.LeakPJ[arch.FrontEnd] {
		t.Error("leakage did not fall at lower voltage")
	}
}

func TestTotalsSumDomains(t *testing.T) {
	b := NewBook(DefaultModel())
	b.Charge(IntOp, dvfs.VMax)
	b.Charge(FPOp, dvfs.VMax)
	b.Charge(MemOp, dvfs.VMax)
	sum := 0.0
	for d := 0; d < arch.NumDomains; d++ {
		sum += b.DomainTotalPJ(arch.Domain(d))
	}
	if math.Abs(sum-b.TotalPJ()) > 1e-9 {
		t.Errorf("TotalPJ %v != sum of domains %v", b.TotalPJ(), sum)
	}
}

func TestFinalizeHonorsSegments(t *testing.T) {
	// A schedule that drops to 250 MHz halfway must consume less clock
	// energy than one that stays at 1 GHz.
	m := DefaultModel()
	end := int64(2_000_000)
	s := clock.New(1000)
	s.SetImmediate(1_000_000, 250)
	mixed := NewBook(m)
	mixed.Finalize(arch.Integer, s, end, 1)
	full := NewBook(m)
	full.Finalize(arch.Integer, clock.New(1000), end, 1)
	if mixed.ClockPJ[arch.Integer] >= full.ClockPJ[arch.Integer] {
		t.Errorf("mixed %v >= full %v", mixed.ClockPJ[arch.Integer], full.ClockPJ[arch.Integer])
	}
	if mixed.ClockPJ[arch.Integer] <= full.ClockPJ[arch.Integer]/2*0.9 {
		t.Errorf("mixed %v implausibly low vs full %v", mixed.ClockPJ[arch.Integer], full.ClockPJ[arch.Integer])
	}
}
