// Package power implements a Wattch-style activity-based energy model for
// the MCD processor. Each primitive event (a cache access, an ALU
// operation, a rename, ...) charges a base energy scaled by the square of
// the supply voltage of its domain at the time of the event; each domain
// additionally pays clock-tree energy per cycle (with conditional
// clocking) and leakage over time. Energies are reported in picojoules on
// an arbitrary but internally consistent scale calibrated so the relative
// per-domain power of the simulated Alpha 21264-like core matches the
// Wattch breakdown used in the paper.
//
// Event kinds map to pipeline resources (arch.Resource), and a Model is
// built for a topology: per-domain clock-tree and leakage parameters are
// the sums over the resources each domain owns. The per-resource splits
// of the paper4 calibration are binary-exact halves, so any regrouping
// of the same resources reproduces the original per-domain sums
// bit-identically.
package power

import (
	"repro/internal/arch"
	"repro/internal/clock"
	"repro/internal/dvfs"
)

// EventKind classifies primitive events for energy accounting.
type EventKind uint8

const (
	// FetchOp covers I-cache read and branch predictor access per
	// instruction fetched (fetch resource).
	FetchOp EventKind = iota
	// RenameOp covers decode, rename, ROB and issue-queue write per
	// instruction dispatched (dispatch resource).
	RenameOp
	// CommitOp covers retirement bookkeeping (dispatch resource).
	CommitOp
	// IntOp covers integer issue, register file access and ALU execution.
	IntOp
	// IntMulOp covers the integer multiply/divide unit.
	IntMulOp
	// FPOp covers floating-point issue, register access and FP ALU.
	FPOp
	// FPMulOp covers the FP multiply/divide/sqrt unit.
	FPMulOp
	// LSQOp covers load/store queue insertion and address generation.
	LSQOp
	// DCacheOp covers one L1 D-cache access.
	DCacheOp
	// L2Op covers one unified L2 access.
	L2Op
	// MemOp covers one main-memory access (external domain, not scaled).
	MemOp
	// OverheadOp covers one injected instrumentation instruction
	// (dispatch resource); small because such instructions are simple
	// integer operations.
	OverheadOp

	numEventKinds
)

// eventResource maps each event kind to the pipeline resource that
// performs it; a topology then routes the resource onto a domain.
var eventResource = [numEventKinds]arch.Resource{
	FetchOp:    arch.ResFetch,
	RenameOp:   arch.ResDispatch,
	CommitOp:   arch.ResDispatch,
	IntOp:      arch.ResIntExec,
	IntMulOp:   arch.ResIntExec,
	FPOp:       arch.ResFPExec,
	FPMulOp:    arch.ResFPExec,
	LSQOp:      arch.ResLoadStore,
	DCacheOp:   arch.ResLoadStore,
	L2Op:       arch.ResL2,
	MemOp:      arch.ResMemory,
	OverheadOp: arch.ResDispatch,
}

// Resource returns the pipeline resource an event kind belongs to.
func (k EventKind) Resource() arch.Resource { return eventResource[k] }

// Per-resource clock-tree energy (pJ per cycle at VMax) and leakage
// power (pJ/ps = W at VMax). The paper4 per-domain calibration —
// front-end 140/0.000045, integer 135/0.000035, fp 115/0.000030,
// memory 150/0.000050 — is split across that domain's resources in
// binary-exact halves, so per-domain sums reproduce it bitwise under
// any regrouping.
var (
	resClockPJPerCycle = [arch.NumResources]float64{
		arch.ResFetch:     70,
		arch.ResDispatch:  70,
		arch.ResIntExec:   135,
		arch.ResFPExec:    115,
		arch.ResLoadStore: 75,
		arch.ResL2:        75,
		arch.ResMemory:    0, // charged per access instead
	}
	resLeakWatts = [arch.NumResources]float64{
		arch.ResFetch:     0.0000225,
		arch.ResDispatch:  0.0000225,
		arch.ResIntExec:   0.000035,
		arch.ResFPExec:    0.000030,
		arch.ResLoadStore: 0.000025,
		arch.ResL2:        0.000025,
		arch.ResMemory:    0,
	}
)

// Model holds the base (full-voltage) energy parameters for one
// topology's domain structure.
type Model struct {
	// EventPJ is the energy of one event of each kind at VMax, in pJ.
	EventPJ [numEventKinds]float64
	// ClockPJPerCycle is per-domain clock-tree energy per cycle at VMax,
	// indexed by topology domain.
	ClockPJPerCycle []float64
	// ClockGateFloor is the fraction of clock energy that cannot be gated
	// away when the domain is idle (conditional clocking floor).
	ClockGateFloor float64
	// LeakWatts is per-domain leakage power at VMax, in pJ/ps (= W).
	LeakWatts []float64

	// kindDom routes each event kind to its topology domain.
	kindDom [numEventKinds]arch.Domain
}

// DefaultModel returns the calibrated energy model for the default
// 4-domain topology. Relative magnitudes follow the Wattch 0.35um-class
// breakdown scaled to the Table 1 core: caches and clock dominate, FP
// units are the most expensive per operation, the external memory
// interface costs the most per access.
func DefaultModel() *Model { return ModelFor(arch.Default()) }

// ModelFor builds the calibrated energy model for one topology:
// per-domain clock-tree and leakage parameters are summed over the
// resources each domain owns, and event kinds route to the domain
// owning their resource.
func ModelFor(topo *arch.Topology) *Model {
	n := topo.NumDomains()
	m := &Model{
		ClockGateFloor:  0.35,
		ClockPJPerCycle: make([]float64, n),
		LeakWatts:       make([]float64, n),
	}
	m.EventPJ = [numEventKinds]float64{
		FetchOp:    220,
		RenameOp:   180,
		CommitOp:   60,
		IntOp:      240,
		IntMulOp:   420,
		FPOp:       460,
		FPMulOp:    680,
		LSQOp:      150,
		DCacheOp:   480,
		L2Op:       950,
		MemOp:      2100,
		OverheadOp: 110,
	}
	for d := 0; d < n; d++ {
		for _, r := range topo.Spec(arch.Domain(d)).Resources {
			m.ClockPJPerCycle[d] += resClockPJPerCycle[r]
			m.LeakWatts[d] += resLeakWatts[r]
		}
	}
	for k := range m.kindDom {
		m.kindDom[k] = topo.DomainOf(eventResource[k])
	}
	return m
}

// Domain returns the topology domain an event kind is charged to.
func (m *Model) Domain(k EventKind) arch.Domain { return m.kindDom[k] }

// NumDomains returns the number of domains the model covers.
func (m *Model) NumDomains() int { return len(m.ClockPJPerCycle) }

// vScale returns the dynamic-energy voltage scaling factor (V/VMax)^2,
// normalized to the paper's full-range supply voltage.
func vScale(volts float64) float64 {
	r := volts / dvfs.VMax
	return r * r
}

// EventEnergy returns the energy, in pJ, of one event at the given supply
// voltage.
func (m *Model) EventEnergy(k EventKind, volts float64) float64 {
	return m.EventPJ[k] * vScale(volts)
}

// domState is one domain's hot accumulation state, packed so a Charge
// touches a single cache line: dynamic energy, event count, and the
// vScale memo.
type domState struct {
	dynamicPJ float64
	// vScale memo: a domain's supply voltage changes only on DVFS
	// steps, while Charge runs several times per instruction; the memo
	// turns the common repeat case into one float compare. The cached
	// scale is vScale(volts) exactly, so results are bit-identical to
	// recomputing.
	lastVolts float64
	lastScale float64
	events    int64
}

// Book accumulates energy for one simulation run. Its per-domain state
// is indexed by the model's topology domains.
type Book struct {
	model *Model
	dom   []domState
	// ClockPJ and LeakPJ are filled in by Finalize.
	ClockPJ []float64
	LeakPJ  []float64
}

// NewBook returns an empty energy book using model m.
func NewBook(m *Model) *Book {
	n := m.NumDomains()
	return &Book{
		model:   m,
		dom:     make([]domState, n),
		ClockPJ: make([]float64, n),
		LeakPJ:  make([]float64, n),
	}
}

// Model returns the book's energy model.
func (b *Book) Model() *Model { return b.model }

// DynamicPJ returns the accumulated event energy of one domain.
func (b *Book) DynamicPJ(d arch.Domain) float64 { return b.dom[d].dynamicPJ }

// Events returns the event count of one domain (used for utilization).
func (b *Book) Events(d arch.Domain) int64 { return b.dom[d].events }

// Charge records one event at the given voltage.
func (b *Book) Charge(k EventKind, volts float64) {
	e := &b.dom[b.model.kindDom[k]]
	if volts != e.lastVolts || e.lastScale == 0 {
		e.lastVolts = volts
		e.lastScale = vScale(volts)
	}
	e.dynamicPJ += b.model.EventPJ[k] * e.lastScale
	e.events++
}

// ChargeN records n identical events at the given voltage.
func (b *Book) ChargeN(k EventKind, volts float64, n int64) {
	e := &b.dom[b.model.kindDom[k]]
	e.dynamicPJ += b.model.EventEnergy(k, volts) * float64(n)
	e.events += n
}

// Finalize integrates clock-tree and leakage energy for one domain over
// [0, end) using the domain's frequency schedule. util is the domain's
// average activity (events per cycle, clamped to [0,1]) used for the
// conditional-clocking factor.
func (b *Book) Finalize(d arch.Domain, sched *clock.Schedule, end int64, util float64) {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	gate := b.model.ClockGateFloor + (1-b.model.ClockGateFloor)*util
	scale := sched.Scale()
	segs := sched.Segments()
	for i, seg := range segs {
		lo := seg.Start
		if lo < 0 {
			lo = 0
		}
		hi := end
		if i+1 < len(segs) && segs[i+1].Start < hi {
			hi = segs[i+1].Start
		}
		if hi <= lo {
			continue
		}
		dur := float64(hi - lo)
		cycles := dur / float64(seg.PeriodPs)
		v := scale.VoltageFor(seg.MHz)
		b.ClockPJ[d] += cycles * b.model.ClockPJPerCycle[d] * vScale(v) * gate
		b.LeakPJ[d] += dur * b.model.LeakWatts[d] * (v / dvfs.VMax)
		if i+1 >= len(segs) || segs[i+1].Start >= end {
			break
		}
	}
}

// DomainTotalPJ returns the total energy charged to one domain.
func (b *Book) DomainTotalPJ(d arch.Domain) float64 {
	return b.dom[d].dynamicPJ + b.ClockPJ[d] + b.LeakPJ[d]
}

// TotalPJ returns the total energy across all domains.
func (b *Book) TotalPJ() float64 {
	t := 0.0
	for d := range b.dom {
		t += b.DomainTotalPJ(arch.Domain(d))
	}
	return t
}
