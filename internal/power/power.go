// Package power implements a Wattch-style activity-based energy model for
// the MCD processor. Each primitive event (a cache access, an ALU
// operation, a rename, ...) charges a base energy scaled by the square of
// the supply voltage of its domain at the time of the event; each domain
// additionally pays clock-tree energy per cycle (with conditional
// clocking) and leakage over time. Energies are reported in picojoules on
// an arbitrary but internally consistent scale calibrated so the relative
// per-domain power of the simulated Alpha 21264-like core matches the
// Wattch breakdown used in the paper.
package power

import (
	"repro/internal/arch"
	"repro/internal/clock"
	"repro/internal/dvfs"
)

// EventKind classifies primitive events for energy accounting.
type EventKind uint8

const (
	// FetchOp covers I-cache read and branch predictor access per
	// instruction fetched (front-end domain).
	FetchOp EventKind = iota
	// RenameOp covers decode, rename, ROB and issue-queue write per
	// instruction dispatched (front-end domain).
	RenameOp
	// CommitOp covers retirement bookkeeping (front-end domain).
	CommitOp
	// IntOp covers integer issue, register file access and ALU execution.
	IntOp
	// IntMulOp covers the integer multiply/divide unit.
	IntMulOp
	// FPOp covers floating-point issue, register access and FP ALU.
	FPOp
	// FPMulOp covers the FP multiply/divide/sqrt unit.
	FPMulOp
	// LSQOp covers load/store queue insertion and address generation
	// (memory domain).
	LSQOp
	// DCacheOp covers one L1 D-cache access (memory domain).
	DCacheOp
	// L2Op covers one unified L2 access (memory domain).
	L2Op
	// MemOp covers one main-memory access (external domain, not scaled).
	MemOp
	// OverheadOp covers one injected instrumentation instruction
	// (front-end domain); small because such instructions are simple
	// integer operations.
	OverheadOp

	numEventKinds
)

var eventDomain = [numEventKinds]arch.Domain{
	FetchOp:    arch.FrontEnd,
	RenameOp:   arch.FrontEnd,
	CommitOp:   arch.FrontEnd,
	IntOp:      arch.Integer,
	IntMulOp:   arch.Integer,
	FPOp:       arch.FP,
	FPMulOp:    arch.FP,
	LSQOp:      arch.Memory,
	DCacheOp:   arch.Memory,
	L2Op:       arch.Memory,
	MemOp:      arch.External,
	OverheadOp: arch.FrontEnd,
}

// Domain returns the clock domain an event kind belongs to.
func (k EventKind) Domain() arch.Domain { return eventDomain[k] }

// Model holds the base (full-voltage) energy parameters.
type Model struct {
	// EventPJ is the energy of one event of each kind at VMax, in pJ.
	EventPJ [numEventKinds]float64
	// ClockPJPerCycle is per-domain clock-tree energy per cycle at VMax.
	ClockPJPerCycle [arch.NumDomains]float64
	// ClockGateFloor is the fraction of clock energy that cannot be gated
	// away when the domain is idle (conditional clocking floor).
	ClockGateFloor float64
	// LeakWatts is per-domain leakage power at VMax, in pJ/ps (= W).
	LeakWatts [arch.NumDomains]float64
}

// DefaultModel returns the calibrated energy model. Relative magnitudes
// follow the Wattch 0.35um-class breakdown scaled to the Table 1 core:
// caches and clock dominate, FP units are the most expensive per
// operation, the external memory interface costs the most per access.
func DefaultModel() *Model {
	m := &Model{
		ClockGateFloor: 0.35,
	}
	m.EventPJ = [numEventKinds]float64{
		FetchOp:    220,
		RenameOp:   180,
		CommitOp:   60,
		IntOp:      240,
		IntMulOp:   420,
		FPOp:       460,
		FPMulOp:    680,
		LSQOp:      150,
		DCacheOp:   480,
		L2Op:       950,
		MemOp:      2100,
		OverheadOp: 110,
	}
	m.ClockPJPerCycle = [arch.NumDomains]float64{
		arch.FrontEnd: 140,
		arch.Integer:  135,
		arch.FP:       115,
		arch.Memory:   150,
		arch.External: 0, // charged per access instead
	}
	m.LeakWatts = [arch.NumDomains]float64{
		arch.FrontEnd: 0.000045, // pJ/ps == W
		arch.Integer:  0.000035,
		arch.FP:       0.000030,
		arch.Memory:   0.000050,
		arch.External: 0,
	}
	return m
}

// vScale returns the dynamic-energy voltage scaling factor (V/VMax)^2.
func vScale(volts float64) float64 {
	r := volts / dvfs.VMax
	return r * r
}

// EventEnergy returns the energy, in pJ, of one event at the given supply
// voltage.
func (m *Model) EventEnergy(k EventKind, volts float64) float64 {
	return m.EventPJ[k] * vScale(volts)
}

// Book accumulates energy for one simulation run.
type Book struct {
	model *Model
	// DynamicPJ is per-domain accumulated event energy.
	DynamicPJ [arch.NumDomains]float64
	// ClockPJ and LeakPJ are filled in by Finalize.
	ClockPJ [arch.NumDomains]float64
	LeakPJ  [arch.NumDomains]float64
	// Events counts events per domain (used for utilization).
	Events [arch.NumDomains]int64

	// vScale memo per domain: a domain's supply voltage changes only on
	// DVFS steps, while Charge runs several times per instruction; the
	// memo turns the common repeat case into one float compare. The
	// cached scale is vScale(volts) exactly, so results are bit-identical
	// to recomputing.
	lastVolts [arch.NumDomains]float64
	lastScale [arch.NumDomains]float64
}

// NewBook returns an empty energy book using model m.
func NewBook(m *Model) *Book { return &Book{model: m} }

// Model returns the book's energy model.
func (b *Book) Model() *Model { return b.model }

// Charge records one event at the given voltage.
func (b *Book) Charge(k EventKind, volts float64) {
	d := eventDomain[k]
	if volts != b.lastVolts[d] || b.lastScale[d] == 0 {
		b.lastVolts[d] = volts
		b.lastScale[d] = vScale(volts)
	}
	b.DynamicPJ[d] += b.model.EventPJ[k] * b.lastScale[d]
	b.Events[d]++
}

// ChargeN records n identical events at the given voltage.
func (b *Book) ChargeN(k EventKind, volts float64, n int64) {
	d := eventDomain[k]
	b.DynamicPJ[d] += b.model.EventEnergy(k, volts) * float64(n)
	b.Events[d] += n
}

// Finalize integrates clock-tree and leakage energy for one domain over
// [0, end) using the domain's frequency schedule. util is the domain's
// average activity (events per cycle, clamped to [0,1]) used for the
// conditional-clocking factor.
func (b *Book) Finalize(d arch.Domain, sched *clock.Schedule, end int64, util float64) {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	gate := b.model.ClockGateFloor + (1-b.model.ClockGateFloor)*util
	segs := sched.Segments()
	for i, seg := range segs {
		lo := seg.Start
		if lo < 0 {
			lo = 0
		}
		hi := end
		if i+1 < len(segs) && segs[i+1].Start < hi {
			hi = segs[i+1].Start
		}
		if hi <= lo {
			continue
		}
		dur := float64(hi - lo)
		cycles := dur / float64(seg.PeriodPs)
		v := dvfs.VoltageFor(seg.MHz)
		b.ClockPJ[d] += cycles * b.model.ClockPJPerCycle[d] * vScale(v) * gate
		b.LeakPJ[d] += dur * b.model.LeakWatts[d] * (v / dvfs.VMax)
		if i+1 >= len(segs) || segs[i+1].Start >= end {
			break
		}
	}
}

// DomainTotalPJ returns the total energy charged to one domain.
func (b *Book) DomainTotalPJ(d arch.Domain) float64 {
	return b.DynamicPJ[d] + b.ClockPJ[d] + b.LeakPJ[d]
}

// TotalPJ returns the total energy across all domains.
func (b *Book) TotalPJ() float64 {
	t := 0.0
	for d := 0; d < arch.NumDomains; d++ {
		t += b.DomainTotalPJ(arch.Domain(d))
	}
	return t
}
