package edit

import "repro/internal/isa"

// NewOracleEditor returns an editor that applies the plan's
// reconfigurations with zero instrumentation cost and no path-tracking
// instructions, modeling the off-line algorithm's free, perfectly timed
// reconfigurations (the oracle knows the calling context without
// run-time bookkeeping).
func NewOracleEditor(plan *Plan, inner isa.Consumer) *Editor {
	e := NewEditor(plan, inner)
	e.oracle = true
	return e
}
