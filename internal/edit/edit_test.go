package edit

import (
	"slices"
	"testing"

	"repro/internal/calltree"
	"repro/internal/isa"
)

// testTree builds a finalized tree: root -> main -> {leafA (LR, sub 1),
// loop 0 (LR), leafB (short, sub 2)}.
func testTree(scheme calltree.Scheme) (*calltree.Tree, *calltree.Node, *calltree.Node) {
	tr := calltree.NewTree(scheme)
	main := tr.Child(tr.Root, calltree.SubNode, 0, -1)
	main.Instances, main.SelfInstrs = 1, 20_000
	leafA := tr.Child(main, calltree.SubNode, 1, siteOrMinus(scheme, 0))
	leafA.Instances, leafA.SelfInstrs = 2, 30_000
	var loop *calltree.Node
	if scheme.Loops {
		loop = tr.Child(main, calltree.LoopNode, 0, -1)
		loop.Instances, loop.SelfInstrs = 1, 15_000
	}
	leafB := tr.Child(main, calltree.SubNode, 2, siteOrMinus(scheme, 1))
	leafB.Instances, leafB.SelfInstrs = 1, 100
	tr.Finalize()
	return tr, leafA, loop
}

func siteOrMinus(s calltree.Scheme, site int32) int32 {
	if s.Sites {
		return site
	}
	return -1
}

func freqs(fe, in, fp, me int) Freqs {
	return Freqs{uint16(fe), uint16(in), uint16(fp), uint16(me)}
}

func TestBuildPlanStaticPoints(t *testing.T) {
	tr, leafA, loop := testTree(calltree.LFCP)
	nf := map[*calltree.Node]Freqs{leafA: freqs(500, 500, 250, 500)}
	if loop != nil {
		nf[loop] = freqs(750, 750, 250, 750)
	}
	// main is long-running too; find it.
	mainNode := tr.Root.Children[0]
	nf[mainNode] = freqs(1000, 1000, 250, 1000)
	p := BuildPlan(tr, nf, calltree.LFCP)
	rc, in := p.StaticPoints()
	if rc != 3 { // main, leafA, loop
		t.Errorf("static reconfig points = %d, want 3", rc)
	}
	if in < rc {
		t.Errorf("instrumented %d < reconfig %d", in, rc)
	}
	if !p.TrackedSubs[0] || !p.TrackedSubs[1] {
		t.Error("main/leafA not instrumented")
	}
	if p.TrackedSubs[2] {
		t.Error("short leafB with no long-running descendants instrumented")
	}
}

func TestNonPathPlanHasOnlyReconfigPoints(t *testing.T) {
	tr, leafA, _ := testTree(calltree.LF)
	nf := map[*calltree.Node]Freqs{leafA: freqs(500, 500, 250, 500)}
	p := BuildPlan(tr, nf, calltree.LF)
	rc, in := p.StaticPoints()
	if rc != in {
		t.Errorf("non-path scheme: instrumented %d != reconfig %d", in, rc)
	}
	if len(p.TrackedSubs) != 0 {
		t.Error("non-path scheme has tracked subs")
	}
}

// sink records what the editor feeds downstream.
type sink struct {
	classes []isa.Class
	freqs   []Freqs
	markers int
}

func (s *sink) Instr(ins *isa.Instr) bool {
	s.classes = append(s.classes, ins.Class)
	if ins.Class == isa.Reconfig {
		s.freqs = append(s.freqs, ins.Freqs)
	}
	return true
}
func (s *sink) Marker(isa.Marker) bool { s.markers++; return true }

// runEditor plays a marker/instruction script through an editor.
type scriptItem struct {
	marker *isa.Marker
	n      int // instructions
}

func play(ed *Editor, script []scriptItem) {
	for _, it := range script {
		if it.marker != nil {
			ed.Marker(*it.marker)
			continue
		}
		for i := 0; i < it.n; i++ {
			ins := isa.Instr{Class: isa.IntALU}
			ed.Instr(&ins)
		}
	}
}

func mk(kind isa.MarkerKind, id int32) *isa.Marker { return &isa.Marker{Kind: kind, ID: id} }
func mkSite(site int32) *isa.Marker                { return &isa.Marker{Kind: isa.CallSite, Site: site} }

func TestEditorReconfiguresOnKnownPath(t *testing.T) {
	tr, leafA, _ := testTree(calltree.LFCP)
	mainNode := tr.Root.Children[0]
	nf := map[*calltree.Node]Freqs{
		mainNode: freqs(1000, 1000, 250, 1000),
		leafA:    freqs(500, 500, 250, 500),
	}
	p := BuildPlan(tr, nf, calltree.LFCP)
	var out sink
	ed := NewEditor(p, &out)
	play(ed, []scriptItem{
		{marker: mk(isa.SubEnter, 0)},
		{marker: mkSite(0)},
		{marker: mk(isa.SubEnter, 1)},
		{n: 5},
		{marker: mk(isa.SubExit, 1)},
		{marker: mk(isa.SubExit, 0)},
	})
	// Expected reconfigs: enter main, enter leafA, exit leafA (restore
	// main), exit main (restore initial full speed).
	if len(out.freqs) != 4 {
		t.Fatalf("reconfigs = %d, want 4 (%v)", len(out.freqs), out.freqs)
	}
	if !slices.Equal(out.freqs[1], nf[leafA]) {
		t.Errorf("leafA reconfig = %v", out.freqs[1])
	}
	if !slices.Equal(out.freqs[2], nf[mainNode]) {
		t.Errorf("restore after leafA = %v, want main's %v", out.freqs[2], nf[mainNode])
	}
	if !slices.Equal(out.freqs[3], FullSpeed()) {
		t.Errorf("final restore = %v, want full speed", out.freqs[3])
	}
	if ed.DynReconfig != 4 {
		t.Errorf("DynReconfig = %d", ed.DynReconfig)
	}
	if ed.DynInstr <= ed.DynReconfig {
		t.Error("no tracking instructions counted")
	}
}

func TestEditorUnknownPathNoReconfig(t *testing.T) {
	// Path schemes: entering a subroutine over a path absent from the
	// training tree yields label 0 and no reconfiguration (mpeg2 decode
	// behaviour).
	tr, leafA, _ := testTree(calltree.FCP)
	mainNode := tr.Root.Children[0]
	nf := map[*calltree.Node]Freqs{leafA: freqs(500, 500, 250, 500)}
	p := BuildPlan(tr, nf, calltree.FCP)
	var out sink
	ed := NewEditor(p, &out)
	play(ed, []scriptItem{
		{marker: mk(isa.SubEnter, 0)},
		{marker: mkSite(9)}, // unseen call site
		{marker: mk(isa.SubEnter, 1)},
		{n: 5},
		{marker: mk(isa.SubExit, 1)},
		{marker: mk(isa.SubExit, 0)},
	})
	if len(out.freqs) != 0 {
		t.Errorf("reconfigured on unknown path: %v", out.freqs)
	}
	_ = mainNode
}

func TestStaticSchemeReconfiguresOnUnseenPath(t *testing.T) {
	// L+F keys on the static subroutine ID, so it reconfigures even when
	// the calling path was never seen in training.
	tr, leafA, _ := testTree(calltree.LF)
	nf := map[*calltree.Node]Freqs{leafA: freqs(500, 500, 250, 500)}
	p := BuildPlan(tr, nf, calltree.LF)
	var out sink
	ed := NewEditor(p, &out)
	play(ed, []scriptItem{
		{marker: mk(isa.SubEnter, 7)}, // some unrelated routine
		{marker: mk(isa.SubEnter, 1)}, // the long-running sub, new path
		{n: 5},
		{marker: mk(isa.SubExit, 1)},
		{marker: mk(isa.SubExit, 7)},
	})
	if len(out.freqs) != 2 { // enter + restore
		t.Fatalf("reconfigs = %d, want 2", len(out.freqs))
	}
	if !slices.Equal(out.freqs[0], nf[leafA]) {
		t.Errorf("reconfig freqs = %v", out.freqs[0])
	}
}

func TestOracleEditorNoOverhead(t *testing.T) {
	tr, leafA, _ := testTree(calltree.LFCP)
	nf := map[*calltree.Node]Freqs{leafA: freqs(500, 500, 250, 500)}
	p := BuildPlan(tr, nf, calltree.LFCP)
	var out sink
	ed := NewOracleEditor(p, &out)
	play(ed, []scriptItem{
		{marker: mk(isa.SubEnter, 0)},
		{marker: mkSite(0)},
		{marker: mk(isa.SubEnter, 1)},
		{n: 5},
		{marker: mk(isa.SubExit, 1)},
		{marker: mk(isa.SubExit, 0)},
	})
	if ed.OverheadCycles != 0 {
		t.Errorf("oracle charged %d overhead cycles", ed.OverheadCycles)
	}
	for _, c := range out.classes {
		if c == isa.Track {
			t.Fatal("oracle emitted tracking instructions")
		}
	}
	if len(out.freqs) != 2 {
		t.Errorf("oracle reconfigs = %d, want 2", len(out.freqs))
	}
}

func TestEditorLoopReconfig(t *testing.T) {
	tr, _, loop := testTree(calltree.LFCP)
	if loop == nil {
		t.Fatal("tree has no loop")
	}
	nf := map[*calltree.Node]Freqs{loop: freqs(750, 750, 250, 750)}
	p := BuildPlan(tr, nf, calltree.LFCP)
	var out sink
	ed := NewEditor(p, &out)
	play(ed, []scriptItem{
		{marker: mk(isa.SubEnter, 0)},
		{marker: mk(isa.LoopEnter, 0)},
		{n: 10},
		{marker: mk(isa.LoopExit, 0)},
		{marker: mk(isa.SubExit, 0)},
	})
	if len(out.freqs) != 2 {
		t.Fatalf("loop reconfigs = %d, want 2 (enter+restore)", len(out.freqs))
	}
	if !slices.Equal(out.freqs[0], nf[loop]) {
		t.Errorf("loop freqs = %v", out.freqs[0])
	}
}

func TestEditorForwardsProgramUnchanged(t *testing.T) {
	tr, leafA, _ := testTree(calltree.LF)
	p := BuildPlan(tr, map[*calltree.Node]Freqs{leafA: freqs(500, 500, 500, 500)}, calltree.LF)
	var out sink
	ed := NewEditor(p, &out)
	play(ed, []scriptItem{
		{marker: mk(isa.SubEnter, 0)},
		{n: 100},
		{marker: mk(isa.SubExit, 0)},
	})
	var program int
	for _, c := range out.classes {
		if c == isa.IntALU {
			program++
		}
	}
	if program != 100 {
		t.Errorf("program instructions forwarded = %d, want 100", program)
	}
	if out.markers != 2 {
		t.Errorf("markers forwarded = %d, want 2", out.markers)
	}
}

func TestRecursionFoldsAtRuntime(t *testing.T) {
	// Recursive re-entry must not change the label or reconfigure again.
	tr := calltree.NewTree(calltree.FP)
	main := tr.Child(tr.Root, calltree.SubNode, 0, -1)
	main.Instances, main.SelfInstrs = 1, 50_000
	tr.Finalize()
	nf := map[*calltree.Node]Freqs{main: freqs(500, 500, 500, 500)}
	p := BuildPlan(tr, nf, calltree.FP)
	var out sink
	ed := NewEditor(p, &out)
	play(ed, []scriptItem{
		{marker: mk(isa.SubEnter, 0)},
		{marker: mk(isa.SubEnter, 0)}, // recursive call
		{n: 3},
		{marker: mk(isa.SubExit, 0)},
		{marker: mk(isa.SubExit, 0)},
	})
	if len(out.freqs) != 2 {
		t.Errorf("recursion caused %d reconfigs, want 2", len(out.freqs))
	}
}

func TestLookupTableBytes(t *testing.T) {
	tr, leafA, _ := testTree(calltree.LFCP)
	p := BuildPlan(tr, map[*calltree.Node]Freqs{leafA: freqs(500, 500, 500, 500)}, calltree.LFCP)
	if p.LookupTableBytes() <= 0 {
		t.Error("path scheme table bytes must be positive")
	}
	tr2, leafA2, _ := testTree(calltree.F)
	p2 := BuildPlan(tr2, map[*calltree.Node]Freqs{leafA2: freqs(500, 500, 500, 500)}, calltree.F)
	if p2.LookupTableBytes() >= p.LookupTableBytes() {
		t.Error("non-path scheme should need far smaller tables")
	}
}

func TestFullSpeed(t *testing.T) {
	f := FullSpeed()
	for _, v := range f {
		if v != 1000 {
			t.Errorf("FullSpeed = %v", f)
		}
	}
}
