package edit

import (
	"repro/internal/calltree"
	"repro/internal/isa"
)

// Editor applies a Plan to a dynamic stream: it forwards the program's
// own instructions and markers to the inner consumer while injecting
// Track and Reconfig instructions at instrumented points, maintaining the
// run-time path-tracking state (current node label) exactly as the
// edited binary would. It implements isa.Consumer.
type Editor struct {
	plan  *Plan
	inner isa.Consumer

	// Path-tracking runtime state: the current tree node, or nil when
	// the label is 0 ("unknown path", taken during training-unseen
	// paths). The stack records entries for instrumented subs/loops.
	cur         *calltree.Node
	stack       []pathFrame
	pendingSite int32

	// Frequency save/restore stack for reconfiguration points.
	freqStack []Freqs
	curFreqs  Freqs

	// Dynamic execution counts (Table 4 "Dynamic").
	DynReconfig int64
	DynInstr    int64 // all instrumentation executions, including reconfig
	// OverheadCycles accumulates the nominal cycle cost of injected code.
	OverheadCycles int64

	stopped bool
	oracle  bool
	scratch isa.Instr
}

// pathFrame records one instrumented entry for epilogue restoration.
type pathFrame struct {
	node       *calltree.Node // node before entry (restored on exit)
	kind       calltree.NodeKind
	id         int32
	reconfiged bool
	folded     bool
}

// NewEditor wraps inner with the edited binary's instrumentation.
func NewEditor(plan *Plan, inner isa.Consumer) *Editor {
	full := plan.FullSpeed
	if full == nil {
		full = FullSpeed()
	}
	return &Editor{
		plan:        plan,
		inner:       inner,
		cur:         plan.Tree.Root,
		pendingSite: -1,
		curFreqs:    full,
	}
}

// Instr forwards a program instruction unchanged.
func (e *Editor) Instr(ins *isa.Instr) bool {
	if e.stopped {
		return false
	}
	if !e.inner.Instr(ins) {
		e.stopped = true
	}
	return !e.stopped
}

// emitTrack injects one instrumentation instruction with the given cost.
// Oracle editors skip tracking instructions entirely.
func (e *Editor) emitTrack(cost int) {
	if e.stopped || e.oracle {
		return
	}
	e.DynInstr++
	e.OverheadCycles += int64(cost)
	e.scratch = isa.Instr{Class: isa.Track, PC: 0x40000000, Src1: uint16(cost)}
	if !e.inner.Instr(&e.scratch) {
		e.stopped = true
	}
}

// emitReconfig injects one reconfiguration instruction targeting f.
func (e *Editor) emitReconfig(f Freqs, cost int) {
	if e.stopped {
		return
	}
	if e.oracle {
		cost = 0
	}
	e.DynReconfig++
	e.DynInstr++
	e.OverheadCycles += int64(cost)
	e.curFreqs = f
	e.scratch = isa.Instr{Class: isa.Reconfig, PC: 0x40000100, Src2: uint16(cost), Freqs: f}
	if !e.inner.Instr(&e.scratch) {
		e.stopped = true
	}
}

func (e *Editor) reconfigCost() int {
	if e.plan.Scheme.Path {
		return ReconfigCost
	}
	return StaticReconfigCost
}

// Marker interprets structure markers, injecting instrumentation and
// maintaining runtime state, then forwards the marker.
func (e *Editor) Marker(m isa.Marker) bool {
	if e.stopped {
		return false
	}
	if e.plan.Scheme.Path {
		e.pathMarker(m)
	} else {
		e.staticMarker(m)
	}
	if !e.inner.Marker(m) {
		e.stopped = true
	}
	return !e.stopped
}

// onPathStack reports whether a frame for (kind, id) is already open
// (recursion folding at run time: the label table maps the recursive
// entry back to the same node, so the label does not change).
func (e *Editor) onPathStack(kind calltree.NodeKind, id int32) bool {
	for i := len(e.stack) - 1; i >= 0; i-- {
		if e.stack[i].kind == kind && e.stack[i].id == id && !e.stack[i].folded {
			return true
		}
	}
	return false
}

func (e *Editor) pathMarker(m isa.Marker) {
	p := e.plan
	switch m.Kind {
	case isa.CallSite:
		if p.Scheme.Sites && p.TrackedSites[m.Site] {
			e.pendingSite = m.Site
			e.emitTrack(CheapCost) // add site offset to the label register
		} else {
			e.pendingSite = -1
		}
	case isa.SubEnter:
		if !p.TrackedSubs[m.ID] {
			e.pendingSite = -1
			return
		}
		site := int32(-1)
		if p.Scheme.Sites {
			site = e.pendingSite
		}
		e.pendingSite = -1
		e.enterPath(calltree.SubNode, m.ID, site, TableLookupCost)
	case isa.SubExit:
		if !p.TrackedSubs[m.ID] {
			return
		}
		e.exitPath(calltree.SubNode, m.ID)
	case isa.LoopEnter:
		if !p.Scheme.Loops || !p.TrackedLoops[m.ID] {
			return
		}
		e.enterPath(calltree.LoopNode, m.ID, -1, CheapCost)
	case isa.LoopExit:
		if !p.Scheme.Loops || !p.TrackedLoops[m.ID] {
			return
		}
		e.exitPath(calltree.LoopNode, m.ID)
	}
}

func (e *Editor) enterPath(kind calltree.NodeKind, id, site int32, trackCost int) {
	if e.onPathStack(kind, id) {
		// Recursive re-entry folds into the existing node: the prologue
		// lookup still runs but the label is unchanged.
		e.emitTrack(trackCost)
		e.stack = append(e.stack, pathFrame{node: e.cur, kind: kind, id: id, folded: true})
		return
	}
	e.emitTrack(trackCost)
	prev := e.cur
	var next *calltree.Node
	if e.cur != nil {
		for _, c := range e.cur.Children {
			if c.Kind == kind && c.ID == id && c.Site == site {
				next = c
				break
			}
		}
	}
	e.cur = next // nil = label 0, unknown path
	frame := pathFrame{node: prev, kind: kind, id: id}
	if next != nil {
		if f, ok := e.plan.NodeFreqs[next]; ok {
			e.freqStack = append(e.freqStack, e.curFreqs)
			e.emitReconfig(f, e.reconfigCost())
			frame.reconfiged = true
		}
	}
	e.stack = append(e.stack, frame)
}

func (e *Editor) exitPath(kind calltree.NodeKind, id int32) {
	// Pop the matching frame (it is the top one in well-nested streams).
	if len(e.stack) == 0 {
		return
	}
	frame := e.stack[len(e.stack)-1]
	e.stack = e.stack[:len(e.stack)-1]
	if frame.folded {
		e.emitTrack(CheapCost)
		return
	}
	e.cur = frame.node
	e.emitTrack(CheapCost) // epilogue restores the previous label
	if frame.reconfiged {
		saved := e.freqStack[len(e.freqStack)-1]
		e.freqStack = e.freqStack[:len(e.freqStack)-1]
		e.emitReconfig(saved, e.reconfigCost())
	}
}

// staticMarker implements the L+F and F schemes: every instrumented
// point is a reconfiguration point with statically known frequencies;
// there is no path tracking and no lookup table.
func (e *Editor) staticMarker(m isa.Marker) {
	p := e.plan
	switch m.Kind {
	case isa.SubEnter:
		if p.ReconfigSubs[m.ID] {
			e.enterStatic(StaticKey{Kind: calltree.SubNode, ID: m.ID})
		}
	case isa.SubExit:
		if p.ReconfigSubs[m.ID] {
			e.exitStatic()
		}
	case isa.LoopEnter:
		if p.Scheme.Loops && p.ReconfigLoops[m.ID] {
			e.enterStatic(StaticKey{Kind: calltree.LoopNode, ID: m.ID})
		}
	case isa.LoopExit:
		if p.Scheme.Loops && p.ReconfigLoops[m.ID] {
			e.exitStatic()
		}
	}
}

func (e *Editor) enterStatic(k StaticKey) {
	f, ok := e.plan.StaticFreqs[k]
	if !ok {
		return
	}
	e.freqStack = append(e.freqStack, e.curFreqs)
	e.stack = append(e.stack, pathFrame{kind: k.Kind, id: k.ID, reconfiged: true})
	e.emitReconfig(f, StaticReconfigCost)
}

func (e *Editor) exitStatic() {
	if len(e.freqStack) == 0 {
		return
	}
	saved := e.freqStack[len(e.freqStack)-1]
	e.freqStack = e.freqStack[:len(e.freqStack)-1]
	if len(e.stack) > 0 {
		e.stack = e.stack[:len(e.stack)-1]
	}
	e.emitReconfig(saved, StaticReconfigCost)
}
