// Package edit implements phase four of the paper's pipeline: application
// editing (Section 3.4). Given a training call tree and the per-node
// frequencies chosen by slowdown thresholding, it builds an edit Plan —
// the set of instrumentation and reconfiguration points with their
// run-time costs and lookup tables — and an Editor that rewrites a
// program's dynamic stream, injecting path-tracking (Track) and
// reconfiguration (Reconfig) instructions exactly where the binary
// rewriter would have placed them: subroutine prologues and epilogues,
// loop headers and footers, and call sites.
package edit

import (
	"repro/internal/arch"
	"repro/internal/calltree"
	"repro/internal/dvfs"
)

// Instrumentation costs in cycles, from the paper's hand-instrumented
// microbenchmark measurements (Section 3.4).
const (
	// TableLookupCost is a path-tracking point that accesses the 2-D
	// node-label table (subroutine prologues in path schemes).
	TableLookupCost = 9
	// ReconfigCost is a reconfiguration point that reads the frequency
	// table and writes the reconfiguration register.
	ReconfigCost = 17
	// CheapCost is an instrumentation point that only adds a static
	// offset or restores a saved label (loop headers/footers, call
	// sites, epilogues).
	CheapCost = 1
	// StaticReconfigCost is a reconfiguration point in the L+F and F
	// schemes: the frequency value is a static constant, the write
	// schedules into empty issue slots, and measured overhead is
	// virtually zero (Figure 12).
	StaticReconfigCost = 1
)

// Freqs is a per-scalable-domain frequency assignment in MHz, in
// topology domain order. Assignments are shared by reference between
// the plan and the instructions it emits; they must not be mutated
// after planning.
type Freqs []uint16

// FullSpeed returns the default-topology assignment with every domain
// at maximum.
func FullSpeed() Freqs { return FullSpeedN(arch.NumScalable) }

// FullSpeedN returns the assignment with n domains at maximum.
func FullSpeedN(n int) Freqs {
	f := make(Freqs, n)
	for i := range f {
		f[i] = uint16(dvfs.FMaxMHz)
	}
	return f
}

// StaticKey identifies a static subroutine or loop.
type StaticKey struct {
	Kind calltree.NodeKind
	ID   int32
}

// Plan is the edited binary's metadata: which static points carry
// instrumentation, and the frequency settings per tree node (path
// schemes) or per static subroutine/loop (non-path schemes).
type Plan struct {
	Scheme calltree.Scheme
	Tree   *calltree.Tree

	// NodeFreqs maps long-running tree nodes to their chosen
	// frequencies (path schemes).
	NodeFreqs map[*calltree.Node]Freqs
	// StaticFreqs maps static reconfiguration points to frequencies
	// (non-path schemes; histograms of nodes sharing a static key were
	// merged before thresholding, which is what loses per-context
	// precision for benchmarks like epic encode).
	StaticFreqs map[StaticKey]Freqs

	// Instrumented static points.
	TrackedSubs   map[int32]bool // prologue/epilogue instrumentation
	TrackedLoops  map[int32]bool // header/footer instrumentation
	TrackedSites  map[int32]bool // call-site instrumentation (C schemes)
	ReconfigSubs  map[int32]bool // static subs that are reconfig points
	ReconfigLoops map[int32]bool

	// FullSpeed is the all-domains-at-maximum assignment the editor
	// starts from and restores to; its length is the number of scalable
	// domains the plan's frequencies cover.
	FullSpeed Freqs
}

// BuildPlan constructs the edit plan from a finalized training tree and
// the per-node frequency choices.
func BuildPlan(tree *calltree.Tree, nodeFreqs map[*calltree.Node]Freqs, scheme calltree.Scheme) *Plan {
	p := &Plan{
		Scheme:        scheme,
		Tree:          tree,
		NodeFreqs:     nodeFreqs,
		StaticFreqs:   make(map[StaticKey]Freqs),
		TrackedSubs:   make(map[int32]bool),
		TrackedLoops:  make(map[int32]bool),
		TrackedSites:  make(map[int32]bool),
		ReconfigSubs:  make(map[int32]bool),
		ReconfigLoops: make(map[int32]bool),
	}
	// Size the full-speed assignment from the planned frequencies; an
	// empty plan keeps the default-topology width.
	p.FullSpeed = FullSpeed()
	for _, f := range nodeFreqs {
		p.FullSpeed = FullSpeedN(len(f))
		break
	}
	for n := range nodeFreqs {
		key := StaticKey{Kind: n.Kind, ID: n.ID}
		if n.Kind == calltree.SubNode {
			p.ReconfigSubs[n.ID] = true
		} else {
			p.ReconfigLoops[n.ID] = true
		}
		// Non-path schemes collapse tree nodes onto static points; when
		// several nodes share a static key the caller is expected to
		// have merged their histograms already, so any entry wins (they
		// are identical). We keep the first.
		if _, ok := p.StaticFreqs[key]; !ok {
			p.StaticFreqs[key] = nodeFreqs[n]
		}
	}
	if scheme.Path {
		for _, n := range tree.TrackedNodes() {
			if n.Kind == calltree.SubNode {
				p.TrackedSubs[n.ID] = true
			} else {
				p.TrackedLoops[n.ID] = true
			}
		}
		if scheme.Sites {
			// Instrument call sites inside tracked routines: sites whose
			// corresponding tree children are tracked or long-running.
			tracked := make(map[*calltree.Node]bool)
			for _, n := range tree.TrackedNodes() {
				tracked[n] = true
			}
			for _, n := range tree.Nodes {
				if n.Site >= 0 && (tracked[n] || n.LongRunning) {
					p.TrackedSites[n.Site] = true
				}
			}
		}
	}
	return p
}

// MergeStaticFreqs overrides the static frequency table (used by the
// non-path pipeline after merging histograms across contexts).
func (p *Plan) MergeStaticFreqs(m map[StaticKey]Freqs) {
	p.StaticFreqs = m
	p.ReconfigSubs = make(map[int32]bool)
	p.ReconfigLoops = make(map[int32]bool)
	for k := range m {
		if k.Kind == calltree.SubNode {
			p.ReconfigSubs[k.ID] = true
		} else {
			p.ReconfigLoops[k.ID] = true
		}
	}
}

// StaticPoints returns the number of static reconfiguration points and
// the total number of static instrumented points (Table 4 "Static").
// Reconfiguration points are a subset of instrumentation points.
func (p *Plan) StaticPoints() (reconfig, instrumented int) {
	reconfig = len(p.ReconfigSubs) + len(p.ReconfigLoops)
	if !p.Scheme.Path {
		return reconfig, reconfig
	}
	instrumented = len(p.TrackedSubs) + len(p.TrackedLoops) + len(p.TrackedSites)
	// Static reconfig points not already tracked (possible when a
	// reconfig sub is a leaf outside the tracked set — it is always
	// tracked by construction, so this is defensive).
	if instrumented < reconfig {
		instrumented = reconfig
	}
	return reconfig, instrumented
}

// LookupTableBytes returns the run-time table footprint for path schemes
// (Section 4.4): zero for non-path schemes.
func (p *Plan) LookupTableBytes() int {
	if !p.Scheme.Path {
		return (len(p.StaticFreqs)) * 8
	}
	return p.Tree.LookupTableBytes()
}
