package profiler

import (
	"testing"

	"repro/internal/calltree"
	"repro/internal/isa"
)

// figure2Program builds the paper's Figure 2 example: main calls initm
// from two sites; initm contains nested loops L1 and L2 calling a leaf.
func figure2Program() *isa.Program {
	b := isa.NewBuilder("fig2")
	main := b.Subroutine("main")
	initm := b.Subroutine("initm")
	drand := b.Subroutine("drand48")
	b.SetBody(drand, b.Block(isa.IntHeavy, 30))
	l2 := b.Loop(isa.FixedTrips(10), b.Call(drand))
	l1 := b.Loop(isa.FixedTrips(10), l2)
	b.SetBody(initm, l1)
	b.SetBody(main, b.Call(initm), b.Call(initm))
	return b.Finish(main)
}

func profileScheme(p *isa.Program, s calltree.Scheme) *calltree.Tree {
	return Profile(p, isa.Input{Name: "train"}, 1<<40, s)
}

func TestFigure2FullTree(t *testing.T) {
	tree := profileScheme(figure2Program(), calltree.LFCP)
	// main + 2x(initm, L1, L2, drand48) = 9 nodes.
	if got := tree.NumNodes(); got != 9 {
		t.Errorf("L+F+C+P nodes = %d, want 9", got)
	}
}

func TestFigure2NoSites(t *testing.T) {
	tree := profileScheme(figure2Program(), calltree.LFP)
	// Calls merge: main, initm, L1, L2, drand48 = 5.
	if got := tree.NumNodes(); got != 5 {
		t.Errorf("L+F+P nodes = %d, want 5", got)
	}
	// initm has two dynamic instances folded into one node.
	for _, n := range tree.Nodes {
		if n.Kind == calltree.SubNode && n.ID == 1 && n.Instances != 2 {
			t.Errorf("initm instances = %d, want 2", n.Instances)
		}
	}
}

func TestFigure2NoLoops(t *testing.T) {
	tree := profileScheme(figure2Program(), calltree.FCP)
	// main + 2x(initm, drand48) = 5 (loops invisible).
	if got := tree.NumNodes(); got != 5 {
		t.Errorf("F+C+P nodes = %d, want 5", got)
	}
}

func TestFigure2CCT(t *testing.T) {
	tree := profileScheme(figure2Program(), calltree.FP)
	// main, initm, drand48 = 3 (the CCT of Ammons et al.).
	if got := tree.NumNodes(); got != 3 {
		t.Errorf("F+P nodes = %d, want 3", got)
	}
}

func TestDrandCalledFromLoopOneNode(t *testing.T) {
	// drand48 is called 100 times per initm call but has one node per
	// context (the call tree superimposes instances).
	tree := profileScheme(figure2Program(), calltree.LFCP)
	var count int
	for _, n := range tree.Nodes {
		if n.Kind == calltree.SubNode && n.ID == 2 {
			count++
			if n.Instances != 100 {
				t.Errorf("drand48 instances = %d, want 100", n.Instances)
			}
		}
	}
	if count != 2 { // one per initm context
		t.Errorf("drand48 nodes = %d, want 2", count)
	}
}

func TestInstructionAttribution(t *testing.T) {
	tree := profileScheme(figure2Program(), calltree.LFCP)
	// All instructions are in drand48 bodies plus loop back-edges.
	// Per initm call: L1 10 trips x (L2: 10 x (30 + 0) + 10 backedges... )
	// Verify the root total matches a counting walk.
	var total int64
	for _, n := range tree.Root.Children {
		total += n.TotalInstrs
	}
	cc := &countConsumer{}
	figure2Program().Walk(isa.Input{Name: "train"}, cc)
	if total != cc.n {
		t.Errorf("tree total %d != stream total %d", total, cc.n)
	}
}

type countConsumer struct{ n int64 }

func (c *countConsumer) Instr(*isa.Instr) bool  { c.n++; return true }
func (c *countConsumer) Marker(isa.Marker) bool { return true }

func recursiveProgram() *isa.Program {
	b := isa.NewBuilder("rec")
	main := b.Subroutine("main")
	rec := b.Subroutine("rec")
	// Depth-limited recursion via input parameter is not expressible in
	// the IR directly; emulate recursion folding with mutual nesting:
	// rec calls itself through a single call site guarded by trips.
	inner := b.Call(rec)
	_ = inner
	b.SetBody(rec, b.Block(isa.IntHeavy, 10))
	b.SetBody(main, b.Call(rec), b.Call(rec))
	return b.Finish(main)
}

func TestRepeatedCallSameSiteFolds(t *testing.T) {
	b := isa.NewBuilder("fold")
	main := b.Subroutine("main")
	leaf := b.Subroutine("leaf")
	b.SetBody(leaf, b.Block(isa.IntHeavy, 10))
	call := b.Call(leaf)
	// The same call site executed twice folds into one node with two
	// instances.
	b.SetBody(main, call, call)
	p := b.Finish(main)
	tree := profileScheme(p, calltree.LFCP)
	if tree.NumNodes() != 2 {
		t.Fatalf("nodes = %d, want 2", tree.NumNodes())
	}
	leafNode := tree.Root.Children[0].Children[0]
	if leafNode.Instances != 2 {
		t.Errorf("instances = %d, want 2", leafNode.Instances)
	}
	_ = recursiveProgram() // structure smoke
}

func TestWindowTruncatesTree(t *testing.T) {
	p := figure2Program()
	full := Profile(p, isa.Input{Name: "train"}, 1<<40, calltree.LFCP)
	tiny := Profile(p, isa.Input{Name: "train"}, 50, calltree.LFCP)
	if tiny.NumNodes() >= full.NumNodes() {
		t.Errorf("tiny window tree (%d nodes) not smaller than full (%d)",
			tiny.NumNodes(), full.NumNodes())
	}
}

func TestProfileAllConsistent(t *testing.T) {
	p := figure2Program()
	trees := ProfileAll(p, isa.Input{Name: "train"}, 1<<40)
	if len(trees) != 6 {
		t.Fatalf("ProfileAll returned %d trees", len(trees))
	}
	// L+F shares the L+F+P tree shape; F shares F+P.
	if trees["L+F"].NumNodes() != trees["L+F+P"].NumNodes() {
		t.Error("L+F tree shape differs from L+F+P")
	}
	if trees["F"].NumNodes() != trees["F+P"].NumNodes() {
		t.Error("F tree shape differs from F+P")
	}
	// Separate runs agree with the one-pass tee.
	for _, s := range calltree.Schemes() {
		solo := profileScheme(p, s)
		if solo.NumNodes() != trees[s.Name].NumNodes() {
			t.Errorf("%s: tee tree %d nodes, solo %d", s.Name, trees[s.Name].NumNodes(), solo.NumNodes())
		}
	}
}

func TestTeeStopsWhenAnyStops(t *testing.T) {
	p := figure2Program()
	cc := &countConsumer{}
	limited := &isa.CountingConsumer{Inner: &countConsumer{}, Budget: 10}
	tee := &Tee{Consumers: []isa.Consumer{cc, limited}}
	p.Walk(isa.Input{Name: "train"}, tee)
	if cc.n > 11 {
		t.Errorf("tee kept feeding after a consumer stopped: %d", cc.n)
	}
}
