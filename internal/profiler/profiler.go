// Package profiler implements phase one of the paper's pipeline:
// ATOM-style profiling of an application binary. It consumes a program's
// dynamic marker stream and builds the call tree for a chosen context
// scheme, counting dynamic instances and instructions per node. Multiple
// tree shapes can be built from one pass, matching the paper's single
// instrumented profiling run.
package profiler

import (
	"repro/internal/calltree"
	"repro/internal/isa"
)

// Profiler builds one call tree from a dynamic stream. It implements
// isa.Consumer and never stops the walk itself; wrap it in an
// isa.CountingConsumer to bound the instruction window.
type Profiler struct {
	tree        *calltree.Tree
	stack       []*calltree.Node
	pendingSite int32
}

// New returns a profiler for the given context scheme.
func New(s calltree.Scheme) *Profiler {
	p := &Profiler{tree: calltree.NewTree(s), pendingSite: -1}
	p.stack = append(p.stack, p.tree.Root)
	return p
}

func (p *Profiler) top() *calltree.Node { return p.stack[len(p.stack)-1] }

// Instr attributes one instruction to the current tree node.
func (p *Profiler) Instr(*isa.Instr) bool {
	p.top().SelfInstrs++
	return true
}

// onStack reports whether a node with the given kind and static ID is
// already on the walk stack (recursion folding, paper Section 3.1).
func (p *Profiler) onStack(kind calltree.NodeKind, id int32) *calltree.Node {
	for i := len(p.stack) - 1; i >= 1; i-- {
		n := p.stack[i]
		if n.Kind == kind && n.ID == id {
			return n
		}
	}
	return nil
}

// Marker maintains the walk stack and tree.
func (p *Profiler) Marker(m isa.Marker) bool {
	scheme := p.tree.Scheme
	switch m.Kind {
	case isa.CallSite:
		if scheme.Sites {
			p.pendingSite = m.Site
		}
	case isa.SubEnter:
		site := int32(-1)
		if scheme.Sites {
			site = p.pendingSite
		}
		p.pendingSite = -1
		if n := p.onStack(calltree.SubNode, m.ID); n != nil {
			// Recursive call: fold into the existing node.
			p.stack = append(p.stack, n)
			return true
		}
		n := p.tree.Child(p.top(), calltree.SubNode, m.ID, site)
		n.Instances++
		p.stack = append(p.stack, n)
	case isa.SubExit:
		p.pop()
	case isa.LoopEnter:
		if !scheme.Loops {
			return true
		}
		if n := p.onStack(calltree.LoopNode, m.ID); n != nil {
			p.stack = append(p.stack, n)
			return true
		}
		n := p.tree.Child(p.top(), calltree.LoopNode, m.ID, -1)
		n.Instances++
		p.stack = append(p.stack, n)
	case isa.LoopExit:
		if !scheme.Loops {
			return true
		}
		p.pop()
	}
	return true
}

func (p *Profiler) pop() {
	if len(p.stack) > 1 {
		p.stack = p.stack[:len(p.stack)-1]
	}
}

// Finish finalizes and returns the tree (instance statistics, exclusive
// counts, long-running marking, labels).
func (p *Profiler) Finish() *calltree.Tree {
	p.tree.Finalize()
	return p.tree
}

// Tee fans a dynamic stream out to several consumers; the walk stops
// when any consumer asks to stop.
type Tee struct{ Consumers []isa.Consumer }

// Instr forwards to every consumer.
func (t *Tee) Instr(ins *isa.Instr) bool {
	ok := true
	for _, c := range t.Consumers {
		if !c.Instr(ins) {
			ok = false
		}
	}
	return ok
}

// Marker forwards to every consumer.
func (t *Tee) Marker(m isa.Marker) bool {
	ok := true
	for _, c := range t.Consumers {
		if !c.Marker(m) {
			ok = false
		}
	}
	return ok
}

// Profile runs phase one for one (program, input, scheme) triple over an
// instruction window and returns the finalized call tree.
func Profile(p *isa.Program, in isa.Input, window int64, s calltree.Scheme) *calltree.Tree {
	return ProfileFeed(p.Feeder(in), window, s)
}

// ProfileFeed is Profile over any stream source (a generating walk or a
// recorded replay).
func ProfileFeed(src isa.Feeder, window int64, s calltree.Scheme) *calltree.Tree {
	prof := New(s)
	cc := &isa.CountingConsumer{Inner: prof, Budget: window}
	src.Feed(cc)
	return prof.Finish()
}

// ProfileAll runs phase one once and builds the call trees for every
// distinct tree shape needed by the six schemes (the paper instruments
// the binary so all four trees can be constructed from one run). The
// result maps scheme name to tree; L+F shares the L+F+P tree shape and F
// shares F+P, but each gets its own tree value so runtime editing can
// differ.
func ProfileAll(p *isa.Program, in isa.Input, window int64) map[string]*calltree.Tree {
	schemes := calltree.Schemes()
	profs := make([]*Profiler, len(schemes))
	cs := make([]isa.Consumer, len(schemes))
	for i, s := range schemes {
		profs[i] = New(s)
		cs[i] = profs[i]
	}
	tee := &Tee{Consumers: cs}
	cc := &isa.CountingConsumer{Inner: tee, Budget: window}
	p.Walk(in, cc)
	out := make(map[string]*calltree.Tree, len(schemes))
	for i, s := range schemes {
		out[s.Name] = profs[i].Finish()
	}
	return out
}
