package trace

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/calltree"
	"repro/internal/isa"
	"repro/internal/profiler"
	"repro/internal/sim"
)

// buildLRProgram returns a program with one long-running subroutine
// called several times.
func buildLRProgram(calls int) *isa.Program {
	b := isa.NewBuilder("tracetest")
	main := b.Subroutine("main")
	leaf := b.Subroutine("leaf")
	b.SetBody(leaf, b.Block(isa.Balanced, 15_000))
	call := b.Call(leaf)
	body := []isa.Node{b.Block(isa.IntHeavy, 12_000)}
	for i := 0; i < calls; i++ {
		body = append(body, call)
	}
	b.SetBody(main, body...)
	return b.Finish(main)
}

func collectSegments(p *isa.Program, maxInstances, maxEvents int) []*Segment {
	tree := profiler.Profile(p, isa.Input{Name: "train"}, 1<<40, calltree.LFCP)
	var segs []*Segment
	c := NewCollector(tree, maxInstances, maxEvents, func(s *Segment) { segs = append(segs, s) })
	m := sim.New(sim.DefaultConfig())
	m.SetTracer(c)
	m.SetMarkerSink(c)
	p.Walk(isa.Input{Name: "train"}, &isa.CountingConsumer{Inner: m, Budget: 1 << 40})
	c.Close()
	return segs
}

func TestSegmentsPerNodeInstanceBound(t *testing.T) {
	p := buildLRProgram(5)
	segs := collectSegments(p, 2, 1_000_000)
	perNode := map[*calltree.Node]int{}
	for _, s := range segs {
		perNode[s.Node]++
	}
	for n, k := range perNode {
		if k > 2 {
			t.Errorf("node %s captured %d instances, max 2", n.Path(), k)
		}
	}
	if len(perNode) < 2 { // main + leaf
		t.Errorf("captured %d distinct nodes, want >= 2", len(perNode))
	}
}

func TestEventsWellFormed(t *testing.T) {
	p := buildLRProgram(2)
	segs := collectSegments(p, 1, 1_000_000)
	if len(segs) == 0 {
		t.Fatal("no segments collected")
	}
	for _, s := range segs {
		for i, e := range s.Events {
			if e.End < e.Start {
				t.Fatalf("event %d has negative duration", i)
			}
			if e.Domain >= arch.NumDomains {
				t.Fatalf("event %d has bad domain %d", i, e.Domain)
			}
			for _, o := range e.Out {
				if int(o) >= len(s.Events) || o < 0 {
					t.Fatalf("event %d has out-of-range edge %d", i, o)
				}
			}
		}
	}
}

func TestEdgesAreForwardInProgramOrder(t *testing.T) {
	// Edges may have negative slack (overlap) but must always point to
	// an event that starts no earlier than the source's start.
	p := buildLRProgram(2)
	segs := collectSegments(p, 1, 1_000_000)
	for _, s := range segs {
		for i, e := range s.Events {
			for _, o := range e.Out {
				if s.Events[o].Start < e.Start {
					t.Fatalf("edge %d->%d goes backward in time", i, o)
				}
			}
		}
	}
}

func TestMaxEventsSplitsSegments(t *testing.T) {
	p := buildLRProgram(1)
	small := collectSegments(p, 1, 5000)
	var over int
	for _, s := range small {
		// One Trace call appends at most four events after the cap check.
		if len(s.Events) > 5000+4 {
			over++
		}
	}
	if over > 0 {
		t.Errorf("%d segments exceed the event cap", over)
	}
	if len(small) < 2 {
		t.Errorf("expected split segments, got %d", len(small))
	}
}

func TestExclusiveCapture(t *testing.T) {
	// The parent's segments must not include the long-running child's
	// instructions: total parent events should reflect only main's own
	// block.
	p := buildLRProgram(3)
	segs := collectSegments(p, 100, 1_000_000)
	var mainEvents, leafEvents int
	for _, s := range segs {
		if s.Node.Kind == calltree.SubNode && s.Node.ID == 0 {
			mainEvents += len(s.Events)
		} else {
			leafEvents += len(s.Events)
		}
	}
	// main block = 12000 instructions (~3 events each); leaf = 3 calls x
	// 15000. If the parent captured child work, mainEvents would be ~4x
	// larger.
	if mainEvents > 12_000*4 {
		t.Errorf("main captured %d events, leaked child work", mainEvents)
	}
	if leafEvents < 15_000*2 {
		t.Errorf("leaf captured %d events, too few", leafEvents)
	}
}

func TestWeightsAssigned(t *testing.T) {
	p := buildLRProgram(1)
	segs := collectSegments(p, 1, 1_000_000)
	for _, s := range segs {
		for i, e := range s.Events {
			if e.End > e.Start && e.Weight <= 0 {
				t.Fatalf("event %d has duration but zero weight", i)
			}
		}
	}
}

func TestSegmentDuration(t *testing.T) {
	s := &Segment{Events: []Event{
		{Start: 100, End: 200},
		{Start: 150, End: 400},
	}}
	if d := s.Duration(); d != 300 {
		t.Errorf("duration = %d, want 300", d)
	}
	if (&Segment{}).Duration() != 0 {
		t.Error("empty segment duration != 0")
	}
}
