// Package trace collects dependence DAGs of primitive events during a
// full-speed simulation run (phase two input, paper Section 3.2). A
// primitive event is temporally contiguous work performed within a single
// hardware unit on behalf of a single instruction; the collector records
// three events per instruction (front-end fetch/dispatch, execution in
// its domain, front-end commit) together with program-order, data,
// and control dependence edges, segmented by long-running call-tree node.
package trace

import (
	"repro/internal/arch"
	"repro/internal/calltree"
	"repro/internal/isa"
	"repro/internal/sim"
)

// Event is one primitive event in a dependence DAG.
type Event struct {
	Domain arch.Domain
	Start  int64 // ps, full-speed run
	End    int64
	// Weight is the event's serial-equivalent work in picoseconds: its
	// duration divided by the width of the hardware resource it occupies
	// (a 4-wide fetch stage does 1/4 cycle of serial work per
	// instruction). Histogram budgets are computed over weights so a
	// node's summed event time approximates its wall-clock time.
	Weight float64
	// Out lists successor event indices within the same segment.
	Out []int32
}

// Segment is a dependence DAG covering a contiguous stretch of one
// call-tree node's exclusive execution.
type Segment struct {
	Node   *calltree.Node
	Events []Event
}

// Duration returns the wall-clock span of the segment.
func (s *Segment) Duration() int64 {
	if len(s.Events) == 0 {
		return 0
	}
	lo, hi := s.Events[0].Start, s.Events[0].End
	for _, e := range s.Events {
		if e.Start < lo {
			lo = e.Start
		}
		if e.End > hi {
			hi = e.End
		}
	}
	return hi - lo
}

// CloneSegmentInto deep-copies seg into dst — events and Out edge lists
// included — so the copy stays valid after a RecycleSegments collector
// reclaims seg's storage. dst.Events and the provided edge backing are
// reused when capacity allows; the (possibly regrown) edge backing is
// returned so callers can recycle it across copies. All Out slices of
// the copy alias that single backing array.
func CloneSegmentInto(dst *Segment, edges []int32, seg *Segment) []int32 {
	dst.Node = seg.Node
	n := len(seg.Events)
	if cap(dst.Events) < n {
		dst.Events = make([]Event, n)
	} else {
		dst.Events = dst.Events[:n]
	}
	total := 0
	for i := range seg.Events {
		total += len(seg.Events[i].Out)
	}
	if cap(edges) < total {
		edges = make([]int32, total)
	} else {
		edges = edges[:total]
	}
	pos := 0
	for i := range seg.Events {
		e := &seg.Events[i]
		d := &dst.Events[i]
		d.Domain, d.Start, d.End, d.Weight = e.Domain, e.Start, e.End, e.Weight
		k := len(e.Out)
		d.Out = edges[pos : pos+k : pos+k]
		copy(d.Out, e.Out)
		pos += k
	}
	return edges
}

// Collector implements sim.Tracer and sim.MarkerSink. It walks the
// finalized training call tree in lockstep with the simulation, opening a
// segment whenever execution enters a long-running node (up to
// MaxInstances instances per node) and closing it on exit or when a
// long-running child takes over (the child's execution is excluded from
// the parent's DAG, mirroring the exclusive-instruction accounting).
type Collector struct {
	// MaxInstances bounds captured instances per node.
	MaxInstances int
	// MaxEvents bounds events per segment; longer instances are split.
	MaxEvents int
	// OnSegment receives each completed segment.
	OnSegment func(*Segment)
	// RecycleSegments, when set, narrows OnSegment's contract: the
	// segment (and its event storage, including Out edge lists) is valid
	// only for the duration of the callback, after which the collector
	// reclaims the storage for the next segment. Pipelines that reduce
	// each segment synchronously (the trainer runs the shaker inside the
	// callback) enable this so steady-state DAG collection reuses one
	// arena instead of allocating per segment. Segment structs themselves
	// are never reused — dependence bookkeeping relies on their identity.
	RecycleSegments bool

	tree        *calltree.Tree
	stack       []*calltree.Node
	pendingSite int32
	seen        map[*calltree.Node]int

	// capture state
	capStack []*capture
	freeCaps []*capture
	// freeEvents holds recycled event storage (RecycleSegments).
	freeEvents [][]Event

	// recent execution events for data dependencies: ring indexed by
	// global sequence number.
	ring [ringSize]ref

	// topology-derived routing: the domains owning the fetch and
	// dispatch/commit resources, the scalable-domain count and per-domain
	// issue bandwidths. Filled by SetTopology; NewCollector defaults to
	// the paper topology.
	fetchDom    arch.Domain
	commitDom   arch.Domain
	numScalable int
	bw          []int
}

const ringSize = 1 << 16

// basePeriodPs is the full-speed clock period; training runs execute at
// the base frequency, so front-end stage events last one base cycle.
const basePeriodPs = 1000

// fetchWidth and retireWidth mirror the Table 1 machine widths for the
// front-end program-order chains.
const (
	fetchWidth  = 4
	retireWidth = 11
	robSize     = 80
)

type ref struct {
	seg *Segment
	idx int32
}

// evRing is a fixed-capacity FIFO of event indices. It replaces the
// naive append(q[1:], v) shift queues of an earlier implementation —
// those copied the whole queue (80 entries for the ROB) on every
// instruction; the ring is per-instruction scratch that never moves.
type evRing struct {
	buf []int32
	pos int // next write slot; when full, buf[pos] is the oldest entry
	n   int
}

// init (re)sizes the ring to capacity and empties it, reusing the
// backing array when it is already big enough.
func (r *evRing) init(capacity int) {
	if cap(r.buf) < capacity {
		r.buf = make([]int32, capacity)
	} else {
		r.buf = r.buf[:capacity]
	}
	r.pos, r.n = 0, 0
}

// push appends v. When the ring was already full it evicts and returns
// the oldest entry (the one exactly capacity pushes back).
func (r *evRing) push(v int32) (old int32, wasFull bool) {
	if r.n < len(r.buf) {
		r.buf[r.pos] = v
		r.n++
	} else {
		old, wasFull = r.buf[r.pos], true
		r.buf[r.pos] = v
	}
	r.pos++
	if r.pos == len(r.buf) {
		r.pos = 0
	}
	return old, wasFull
}

type capture struct {
	seg  *Segment
	node *calltree.Node
	// fetchQ and commitQ hold recent front-end event indices for
	// width-limited program-order chains (fetch width 4, retire width 11).
	fetchQ  evRing
	commitQ evRing
	// robQ holds the last ROBSize commit-event indices: an instruction
	// cannot dispatch until the instruction ROBSize back has retired.
	robQ evRing
	// redirect is the execution-event index of a pending mispredicted
	// branch; the next fetch depends on it.
	redirect int32
	// redirectFrom is the completion time of the pending mispredicted
	// branch, the start of the refill event.
	redirectFrom int64
	// lastExec holds recent execution-event indices per scalable domain,
	// used to wire issue-bandwidth edges: an event cannot start before
	// the event K issues earlier in the same domain finished, where K is
	// the domain's functional-unit count.
	lastExec []evRing
}

// resetStream empties the per-instruction scratch queues (fresh segment
// or split continuation). bw is the per-scalable-domain issue bandwidth.
func (capt *capture) resetStream(bw []int) {
	capt.fetchQ.init(fetchWidth)
	capt.commitQ.init(retireWidth)
	capt.robQ.init(robSize)
	if len(capt.lastExec) != len(bw) {
		capt.lastExec = make([]evRing, len(bw))
	}
	for d := range capt.lastExec {
		capt.lastExec[d].init(bw[d])
	}
	capt.redirect = -1
	capt.redirectFrom = 0
}

// NewCollector builds a collector against a finalized training tree,
// routed by the default topology; call SetTopology before the run for a
// different domain structure.
func NewCollector(tree *calltree.Tree, maxInstances, maxEvents int, onSegment func(*Segment)) *Collector {
	c := &Collector{
		MaxInstances: maxInstances,
		MaxEvents:    maxEvents,
		OnSegment:    onSegment,
		tree:         tree,
		seen:         make(map[*calltree.Node]int),
		pendingSite:  -1,
	}
	c.SetTopology(arch.Default())
	c.stack = append(c.stack, tree.Root)
	return c
}

// SetTopology routes the collector's events by a clock-domain topology:
// front-end events land in the domains owning the fetch and
// dispatch/commit resources, and issue-bandwidth edges use per-domain
// unit counts summed over each domain's owned execution resources. It
// must be called before the first traced instruction.
func (c *Collector) SetTopology(topo *arch.Topology) {
	c.fetchDom = topo.DomainOf(arch.ResFetch)
	c.commitDom = topo.DomainOf(arch.ResDispatch)
	c.numScalable = topo.NumScalable()
	c.bw = make([]int, c.numScalable)
	for d := 0; d < c.numScalable; d++ {
		b := 0
		for _, r := range topo.Spec(arch.Domain(d)).Resources {
			b += resourceBandwidth[r]
		}
		if b < 1 {
			b = 1
		}
		c.bw[d] = b
	}
}

func (c *Collector) top() *calltree.Node { return c.stack[len(c.stack)-1] }

func (c *Collector) onStack(kind calltree.NodeKind, id int32) *calltree.Node {
	for i := len(c.stack) - 1; i >= 1; i-- {
		n := c.stack[i]
		if n.Kind == kind && n.ID == id {
			return n
		}
	}
	return nil
}

// findChild locates the existing tree child (phase one built the tree
// from the same walk, so it is always present unless the window differs).
func (c *Collector) findChild(kind calltree.NodeKind, id, site int32) *calltree.Node {
	parent := c.top()
	for _, ch := range parent.Children {
		if ch.Kind == kind && ch.ID == id && ch.Site == site {
			return ch
		}
	}
	return nil
}

// MachineMarker implements sim.MarkerSink.
func (c *Collector) MachineMarker(m isa.Marker, now int64) {
	scheme := c.tree.Scheme
	switch m.Kind {
	case isa.CallSite:
		if scheme.Sites {
			c.pendingSite = m.Site
		}
	case isa.SubEnter:
		site := int32(-1)
		if scheme.Sites {
			site = c.pendingSite
		}
		c.pendingSite = -1
		if n := c.onStack(calltree.SubNode, m.ID); n != nil {
			c.stack = append(c.stack, n)
			return
		}
		c.enter(calltree.SubNode, m.ID, site)
	case isa.SubExit:
		c.exit()
	case isa.LoopEnter:
		if !scheme.Loops {
			return
		}
		if n := c.onStack(calltree.LoopNode, m.ID); n != nil {
			c.stack = append(c.stack, n)
			return
		}
		c.enter(calltree.LoopNode, m.ID, -1)
	case isa.LoopExit:
		if !scheme.Loops {
			return
		}
		c.exit()
	}
}

func (c *Collector) enter(kind calltree.NodeKind, id, site int32) {
	n := c.findChild(kind, id, site)
	if n == nil {
		// Node outside the profiled window; track position anyway.
		n = &calltree.Node{Kind: kind, ID: id, Site: site, Parent: c.top()}
	}
	c.stack = append(c.stack, n)
	if n.LongRunning && c.seen[n] < c.MaxInstances {
		c.seen[n]++
		capt := c.newCapture()
		capt.node = n
		capt.seg = c.newSegment(n)
		capt.resetStream(c.bw)
		c.capStack = append(c.capStack, capt)
	}
}

// newCapture returns a pooled (or fresh) capture.
func (c *Collector) newCapture() *capture {
	if n := len(c.freeCaps); n > 0 {
		capt := c.freeCaps[n-1]
		c.freeCaps = c.freeCaps[:n-1]
		return capt
	}
	return &capture{}
}

// newSegment returns a fresh Segment, reattaching recycled event
// storage when available. The struct itself is always newly allocated:
// the data-dependence ring distinguishes segments by pointer identity.
func (c *Collector) newSegment(n *calltree.Node) *Segment {
	seg := &Segment{Node: n}
	if k := len(c.freeEvents); k > 0 {
		seg.Events = c.freeEvents[k-1]
		c.freeEvents = c.freeEvents[:k-1]
	}
	return seg
}

func (c *Collector) exit() {
	if len(c.stack) <= 1 {
		return
	}
	leaving := c.top()
	c.stack = c.stack[:len(c.stack)-1]
	if len(c.capStack) > 0 {
		capt := c.capStack[len(c.capStack)-1]
		if capt.node == leaving {
			c.capStack = c.capStack[:len(c.capStack)-1]
			c.flush(capt)
			capt.seg, capt.node = nil, nil
			c.freeCaps = append(c.freeCaps, capt)
		}
	}
}

// resourceBandwidth is the per-cycle issue bandwidth each pipeline
// resource contributes to its domain, used for structural-hazard edges
// (Table 1 unit counts: 4+1 integer units, 2+1 FP units, 2 load/store
// ports, 4-wide fetch).
var resourceBandwidth = [arch.NumResources]int{
	arch.ResFetch:     4,
	arch.ResDispatch:  0,
	arch.ResIntExec:   5,
	arch.ResFPExec:    3,
	arch.ResLoadStore: 2,
	arch.ResL2:        0,
	arch.ResMemory:    0,
}

func (c *Collector) flush(capt *capture) {
	seg := capt.seg
	if len(seg.Events) > 0 && c.OnSegment != nil {
		c.OnSegment(seg)
	}
	if c.RecycleSegments && seg.Events != nil {
		// Reclaim the event storage (the callback has finished with it);
		// detach it from the Segment so a caller that wrongly retained
		// the segment sees an empty DAG instead of silent corruption.
		c.freeEvents = append(c.freeEvents, seg.Events[:0])
		seg.Events = nil
	}
}

// active returns the innermost open capture whose node is the innermost
// long-running node currently executing exclusively, or nil.
func (c *Collector) active() *capture {
	if len(c.capStack) == 0 {
		return nil
	}
	capt := c.capStack[len(c.capStack)-1]
	// Exclusive accounting: if a long-running node deeper than the
	// capture's node is on the stack without its own capture (instance
	// budget exhausted), skip collection there too.
	for i := len(c.stack) - 1; i >= 1; i-- {
		n := c.stack[i]
		if n == capt.node {
			return capt
		}
		if n.LongRunning {
			return nil
		}
	}
	return nil
}

// extend grows seg.Events by n slots and returns the index of the
// first. Recycled slots keep their Out backing arrays (truncated to
// empty) so steady-state collection re-walks one arena; callers must
// assign every other field of each new slot.
func extend(seg *Segment, n int) int32 {
	base := len(seg.Events)
	if need := base + n; need <= cap(seg.Events) {
		seg.Events = seg.Events[:need]
		for i := base; i < need; i++ {
			seg.Events[i].Out = seg.Events[i].Out[:0]
		}
	} else {
		for i := 0; i < n; i++ {
			seg.Events = append(seg.Events, Event{})
		}
	}
	return int32(base)
}

// Trace implements sim.Tracer: it appends up to three events for the
// instruction and wires dependence edges.
func (c *Collector) Trace(seq int64, ins *isa.Instr, t *sim.Times) {
	capt := c.active()
	if capt == nil {
		c.ring[seq&(ringSize-1)] = ref{}
		return
	}
	seg := capt.seg
	if len(seg.Events) >= c.MaxEvents {
		// Split: close this segment and continue in a fresh one.
		c.flush(capt)
		capt.seg = c.newSegment(capt.node)
		capt.resetStream(c.bw)
		seg = capt.seg
	}
	base := extend(seg, 3)
	fetchIdx, execIdx, commitIdx := base, base+1, base+2
	ev := seg.Events
	// Front-end events model the one-cycle fetch and retire stage slots;
	// the full fetch-to-dispatch span overlaps across instructions and
	// would otherwise show false negative slack.
	ev[fetchIdx].Domain = c.fetchDom
	ev[fetchIdx].Start = t.Fetch
	ev[fetchIdx].End = t.Fetch + basePeriodPs
	ev[fetchIdx].Weight = basePeriodPs / fetchWidth
	ev[execIdx].Domain = t.Dom
	ev[execIdx].Start = t.Issue
	ev[execIdx].End = t.Complete
	ev[execIdx].Weight = float64(t.Complete-t.Issue) / float64(c.bw[t.Dom])
	ev[commitIdx].Domain = c.commitDom
	ev[commitIdx].Start = t.Commit
	ev[commitIdx].End = t.Commit + basePeriodPs
	ev[commitIdx].Weight = basePeriodPs / retireWidth
	// Pipeline edges.
	ev[fetchIdx].Out = append(ev[fetchIdx].Out, execIdx)
	ev[execIdx].Out = append(ev[execIdx].Out, commitIdx)
	// Width-limited program order within the front end: the fetch slot
	// four instructions back and the retire slot eleven back bound this
	// instruction's front-end events.
	if old, full := capt.fetchQ.push(fetchIdx); full {
		ev[old].Out = append(ev[old].Out, fetchIdx)
	}
	if old, full := capt.commitQ.push(commitIdx); full {
		ev[old].Out = append(ev[old].Out, commitIdx)
	}
	// Control dependence: fetch after a mispredicted branch waits through
	// the redirect/refill, which is front-end work whose duration scales
	// with the front-end clock. Modeling it as an FE event (rather than a
	// gap) keeps the shaker from reading the stall as stretchable slack
	// and charges the refill cycles to the FE histogram.
	if capt.redirect >= 0 {
		rIdx := extend(seg, 1)
		ev = seg.Events
		ev[rIdx].Domain = c.fetchDom
		ev[rIdx].Start = capt.redirectFrom
		ev[rIdx].End = t.Fetch
		// Refill work is serial: full weight.
		ev[rIdx].Weight = float64(t.Fetch - capt.redirectFrom)
		ev[capt.redirect].Out = append(ev[capt.redirect].Out, rIdx)
		ev[rIdx].Out = append(ev[rIdx].Out, fetchIdx)
		capt.redirect = -1
	}
	if t.Mispredict {
		capt.redirect = execIdx
		capt.redirectFrom = t.Complete
	}
	// ROB backpressure: dispatch of this instruction requires the commit
	// of the instruction ROBSize earlier. The edge matters only when the
	// window was actually full (the commit happened at or after this
	// fetch); otherwise the ROB had room and imposes no constraint.
	if old, full := capt.robQ.push(commitIdx); full {
		if ev[old].Start <= ev[fetchIdx].Start {
			ev[old].Out = append(ev[old].Out, fetchIdx)
		}
	}
	// Issue-bandwidth edge: with K units in the domain, the K-th previous
	// execution event bounds this one (structural hazard). Without these
	// edges the shaker sees far more slack than the machine has. The edge
	// is added only when the constraint was (nearly) binding in the
	// observed schedule; a long-idle unit is genuine headroom.
	if int(t.Dom) < c.numScalable {
		if old, full := capt.lastExec[t.Dom].push(execIdx); full {
			// Keep the edge only when it points forward in time; an
			// out-of-order overlap carries no constraint.
			if ev[old].Start <= ev[execIdx].Start {
				ev[old].Out = append(ev[old].Out, execIdx)
			}
		}
	}
	// Data dependencies to producers inside the same segment.
	for _, src := range [2]uint16{ins.Src1, ins.Src2} {
		if src == 0 || int64(src) > seq {
			continue
		}
		r := c.ring[(seq-int64(src))&(ringSize-1)]
		if r.seg == seg && r.idx >= 0 {
			ev[r.idx].Out = append(ev[r.idx].Out, execIdx)
		}
	}
	c.ring[seq&(ringSize-1)] = ref{seg: seg, idx: execIdx}
}

// Close flushes any open captures at end of simulation.
func (c *Collector) Close() {
	for i := len(c.capStack) - 1; i >= 0; i-- {
		capt := c.capStack[i]
		c.flush(capt)
		capt.seg, capt.node = nil, nil
		c.freeCaps = append(c.freeCaps, capt)
	}
	c.capStack = nil
}
