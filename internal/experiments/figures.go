package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/calltree"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// PolicyRow holds one benchmark's metrics under the three headline
// policies (Figures 4, 5 and 6 share this data).
type PolicyRow struct {
	Bench   string
	Offline stats.Delta
	Online  stats.Delta
	LF      stats.Delta
}

// HeadlineData computes the Figure 4/5/6 data: per-benchmark deltas of
// the off-line, on-line and L+F policies relative to the MCD baseline.
func (r *Runner) HeadlineData() []PolicyRow {
	r.Warm()
	var rows []PolicyRow
	for _, name := range r.SuiteNames() {
		br := r.For(name)
		lf := r.Scheme(name, calltree.LF)
		rows = append(rows, PolicyRow{
			Bench:   name,
			Offline: stats.Vs(br.Offline, br.Base),
			Online:  stats.Vs(br.Online, br.Base),
			LF:      stats.Vs(lf.Res, br.Base),
		})
	}
	return rows
}

// figure456 renders one of the three headline figures given a metric
// selector.
func (r *Runner) figure456(title string, sel func(stats.Delta) float64) string {
	rows := r.HeadlineData()
	t := stats.NewTable("benchmark", "off-line", "on-line", "L+F")
	var off, on, lf []float64
	for _, row := range rows {
		t.Row(row.Bench, sel(row.Offline), sel(row.Online), sel(row.LF))
		off = append(off, sel(row.Offline))
		on = append(on, sel(row.Online))
		lf = append(lf, sel(row.LF))
	}
	t.Row("AVERAGE", stats.Summarize(off).Avg, stats.Summarize(on).Avg, stats.Summarize(lf).Avg)
	return title + "\n" + t.String()
}

// Figure4 renders performance degradation per benchmark.
func (r *Runner) Figure4() string {
	return r.figure456("Figure 4: performance degradation (%) vs MCD baseline",
		func(d stats.Delta) float64 { return d.Slowdown })
}

// Figure5 renders energy savings per benchmark.
func (r *Runner) Figure5() string {
	return r.figure456("Figure 5: energy savings (%) vs MCD baseline",
		func(d stats.Delta) float64 { return d.EnergySavings })
}

// Figure6 renders energy-delay improvement per benchmark.
func (r *Runner) Figure6() string {
	return r.figure456("Figure 6: energy-delay improvement (%) vs MCD baseline",
		func(d stats.Delta) float64 { return d.EDImprovement })
}

// Figure7 renders the min/max/average summary including the global-DVS
// comparator.
func (r *Runner) Figure7() string {
	r.Warm()
	metrics := []struct {
		name string
		sel  func(stats.Delta) float64
	}{
		{"performance degradation (%)", func(d stats.Delta) float64 { return d.Slowdown }},
		{"energy savings (%)", func(d stats.Delta) float64 { return d.EnergySavings }},
		{"energy-delay improvement (%)", func(d stats.Delta) float64 { return d.EDImprovement }},
	}
	var b strings.Builder
	b.WriteString("Figure 7: min / avg / max across the suite\n")
	for _, m := range metrics {
		t := stats.NewTable("policy", "min", "avg", "max")
		cols := map[string][]float64{}
		order := []string{"global", "on-line", "off-line", "L+F"}
		for _, name := range r.SuiteNames() {
			br := r.For(name)
			lf := r.Scheme(name, calltree.LF)
			cols["global"] = append(cols["global"], m.sel(stats.Vs(br.Global, br.Base)))
			cols["on-line"] = append(cols["on-line"], m.sel(stats.Vs(br.Online, br.Base)))
			cols["off-line"] = append(cols["off-line"], m.sel(stats.Vs(br.Offline, br.Base)))
			cols["L+F"] = append(cols["L+F"], m.sel(stats.Vs(lf.Res, br.Base)))
		}
		for _, p := range order {
			s := stats.Summarize(cols[p])
			t.Row(p, s.Min, s.Avg, s.Max)
		}
		b.WriteString(m.name + "\n" + t.String())
	}
	return b.String()
}

// SensitivityBenchmarks are the applications the paper highlights as
// showing context-scheme variation (Section 4.2, Figures 8 and 9).
var SensitivityBenchmarks = []string{
	"adpcm_decode", "adpcm_encode", "epic_encode", "gsm_decode",
	"mpeg2_decode", "applu", "art",
}

// figure89 renders a sensitivity figure for a metric.
func (r *Runner) figure89(title string, names []string, sel func(stats.Delta) float64) string {
	r.WarmSchemes(names)
	schemes := calltree.Schemes()
	header := append([]string{"benchmark"}, schemeNames(schemes)...)
	t := stats.NewTable(header...)
	for _, name := range names {
		br := r.For(name)
		cells := []interface{}{name}
		for _, s := range schemes {
			sr := r.Scheme(name, s)
			cells = append(cells, sel(stats.Vs(sr.Res, br.Base)))
		}
		t.Row(cells...)
	}
	return title + "\n" + t.String()
}

func schemeNames(ss []calltree.Scheme) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

// sensitivityNames returns the Section 4.2 benchmarks restricted to the
// runner's suite (so subset runners stay fast).
func (r *Runner) sensitivityNames() []string {
	in := make(map[string]bool)
	for _, n := range r.SuiteNames() {
		in[n] = true
	}
	var out []string
	for _, n := range SensitivityBenchmarks {
		if in[n] {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = r.SuiteNames()
	}
	return out
}

// Figure8 renders performance degradation across context schemes.
func (r *Runner) Figure8() string {
	return r.figure89("Figure 8: performance degradation (%) by context scheme",
		r.sensitivityNames(), func(d stats.Delta) float64 { return d.Slowdown })
}

// Figure9 renders energy savings across context schemes.
func (r *Runner) Figure9() string {
	return r.figure89("Figure 9: energy savings (%) by context scheme",
		r.sensitivityNames(), func(d stats.Delta) float64 { return d.EnergySavings })
}

// SweepPoint is one point of the Figure 10/11 curves.
type SweepPoint struct {
	Param    float64 // delta (off-line, L+F) or aggressiveness (on-line)
	Slowdown float64 // measured average slowdown, %
	Savings  float64
	ED       float64
}

// DeltaSweep and AggressivenessSweep parameterize Figures 10 and 11.
var (
	DeltaSweep          = []float64{0.5, 1, 2, 3, 5, 8}
	AggressivenessSweep = []float64{0.5, 0.8, 1.2, 1.8, 2.6}
)

// Sweep computes the Figure 10/11 curves: measured suite-average energy
// savings and energy-delay improvement versus measured slowdown, for the
// off-line and L+F policies (sweeping the slowdown threshold delta) and
// the on-line policy (sweeping controller aggressiveness). Every point
// is one sweep job, so the whole grid runs on the engine's worker pool
// and lands in the persistent cache; replanning a trained profile at a
// new delta reuses the memoized shaken histograms.
func (r *Runner) Sweep() (offline, lf, online []SweepPoint) {
	r.Warm()
	names := r.SuiteNames()
	var jobs []sweep.Job
	for _, delta := range DeltaSweep {
		for _, name := range names {
			jobs = append(jobs,
				sweep.Job{Bench: name, Policy: sweep.PolicyOffline, Delta: delta},
				sweep.Job{Bench: name, Policy: sweep.PolicyScheme, Scheme: calltree.LF.Name, Delta: delta})
		}
	}
	for _, ag := range AggressivenessSweep {
		for _, name := range names {
			jobs = append(jobs, sweep.Job{Bench: name, Policy: sweep.PolicyOnline, Aggressiveness: ag})
		}
	}
	outs := r.run(jobs)

	i := 0
	for _, delta := range DeltaSweep {
		var offD, lfD []stats.Delta
		for _, name := range names {
			base := r.For(name).Base
			offD = append(offD, stats.Vs(outs[i].Res, base))
			lfD = append(lfD, stats.Vs(outs[i+1].Res, base))
			i += 2
		}
		offline = append(offline, sweepPoint(delta, offD))
		lf = append(lf, sweepPoint(delta, lfD))
	}
	for _, ag := range AggressivenessSweep {
		var ds []stats.Delta
		for _, name := range names {
			ds = append(ds, stats.Vs(outs[i].Res, r.For(name).Base))
			i++
		}
		online = append(online, sweepPoint(ag, ds))
	}
	return offline, lf, online
}

func sweepPoint(param float64, ds []stats.Delta) SweepPoint {
	var slow, save, ed []float64
	for _, d := range ds {
		slow = append(slow, d.Slowdown)
		save = append(save, d.EnergySavings)
		ed = append(ed, d.EDImprovement)
	}
	return SweepPoint{
		Param:    param,
		Slowdown: stats.Summarize(slow).Avg,
		Savings:  stats.Summarize(save).Avg,
		ED:       stats.Summarize(ed).Avg,
	}
}

// Figure10 renders energy savings versus measured slowdown.
func Figure10(offline, lf, online []SweepPoint) string {
	return renderSweep("Figure 10: energy savings (%) vs slowdown (%)", offline, lf, online,
		func(p SweepPoint) float64 { return p.Savings })
}

// Figure11 renders energy-delay improvement versus measured slowdown.
func Figure11(offline, lf, online []SweepPoint) string {
	return renderSweep("Figure 11: energy-delay improvement (%) vs slowdown (%)", offline, lf, online,
		func(p SweepPoint) float64 { return p.ED })
}

func renderSweep(title string, offline, lf, online []SweepPoint, sel func(SweepPoint) float64) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	series := []struct {
		name string
		pts  []SweepPoint
	}{{"on-line", online}, {"off-line", offline}, {"L+F", lf}}
	for _, s := range series {
		pts := append([]SweepPoint(nil), s.pts...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].Slowdown < pts[j].Slowdown })
		b.WriteString(s.name + ":")
		for _, p := range pts {
			fmt.Fprintf(&b, "  (%.1f%%, %.1f%%)", p.Slowdown, sel(p))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure12 compares static instrumentation footprint and measured
// run-time overhead across context schemes, averaged over the suite and
// normalized to L+F+C+P.
func (r *Runner) Figure12() string {
	names := r.SuiteNames()
	r.WarmSchemes(names)
	schemes := calltree.Schemes()
	type agg struct{ reconfig, instr, ovh float64 }
	sums := make(map[string]*agg)
	for _, s := range schemes {
		sums[s.Name] = &agg{}
	}
	for _, name := range names {
		for _, s := range schemes {
			sr := r.Scheme(name, s)
			a := sums[s.Name]
			a.reconfig += float64(sr.StaticReconfig)
			a.instr += float64(sr.StaticInstr)
			a.ovh += sr.St.OverheadPct
		}
	}
	ref := sums[calltree.LFCP.Name]
	t := stats.NewTable("scheme", "static reconfig (norm)", "static instr (norm)", "overhead (norm)", "overhead (%)")
	n := float64(len(names))
	for _, s := range schemes {
		a := sums[s.Name]
		normO := 0.0
		if ref.ovh > 0 {
			normO = a.ovh / ref.ovh
		}
		t.Row(s.Name, a.reconfig/ref.reconfig, a.instr/ref.instr, normO, a.ovh/n)
	}
	return "Figure 12: static points and run-time overhead, normalized to L+F+C+P\n" + t.String()
}
