package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/calltree"
	"repro/internal/core"
	"repro/internal/sweep"
)

// quickRunner restricts the suite to a small diverse subset so the tests
// stay fast.
func quickRunner() *Runner {
	r := NewRunner(core.DefaultConfig())
	r.Names = []string{"adpcm_decode", "mcf", "swim"}
	return r
}

func TestHeadlineDataShape(t *testing.T) {
	r := quickRunner()
	rows := r.HeadlineData()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Offline.EnergySavings <= 0 {
			t.Errorf("%s: off-line saved nothing", row.Bench)
		}
		if row.LF.EnergySavings <= 0 {
			t.Errorf("%s: L+F saved nothing", row.Bench)
		}
		if row.Offline.Slowdown < -1 {
			t.Errorf("%s: off-line speedup implausible", row.Bench)
		}
	}
}

func TestFigureRenderings(t *testing.T) {
	r := quickRunner()
	for name, fig := range map[string]func() string{
		"fig4": r.Figure4, "fig5": r.Figure5, "fig6": r.Figure6,
	} {
		out := fig()
		if !strings.Contains(out, "mcf") || !strings.Contains(out, "off-line") {
			t.Errorf("%s output missing expected content:\n%s", name, out)
		}
	}
	// Figure 7 is a min/avg/max summary without benchmark rows.
	out := r.Figure7()
	for _, want := range []string{"global", "on-line", "off-line", "L+F", "energy-delay"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 missing %q:\n%s", want, out)
		}
	}
}

func TestResultsCached(t *testing.T) {
	r := quickRunner()
	a := r.For("mcf")
	b := r.For("mcf")
	if a != b {
		t.Error("benchmark results not cached")
	}
	s1 := r.Scheme("mcf", calltree.LF)
	s2 := r.Scheme("mcf", calltree.LF)
	if s1 != s2 {
		t.Error("scheme runs not cached")
	}
}

func TestGlobalMatchesOfflineRuntime(t *testing.T) {
	r := quickRunner()
	for _, name := range r.SuiteNames() {
		br := r.For(name)
		// The global-DVS run must finish no later than ~5% beyond the
		// off-line runtime it was matched to (ladder quantization and
		// microarchitectural effects allow small deviation).
		ratio := float64(br.Global.TimePs) / float64(br.Offline.TimePs)
		if ratio > 1.08 {
			t.Errorf("%s: global run %.2fx the off-line runtime", name, ratio)
		}
	}
}

func TestTable3AgainstPaper(t *testing.T) {
	r := NewRunner(core.DefaultConfig())
	r.Names = []string{"adpcm_decode", "mpeg2_decode", "vpr"}
	rows := r.Table3Data()
	want := map[string][6]int{
		"adpcm_decode": {2, 4, 2, 4, 2, 4},
		"mpeg2_decode": {11, 15, 14, 19, 8, 12},
		"vpr":          {67, 92, 84, 119, 7, 12},
	}
	for _, row := range rows {
		w := want[row.Bench]
		got := [6]int{row.TrainLong, row.TrainTotal, row.RefLong, row.RefTotal, row.CommonLong, row.CommonTot}
		if got != w {
			t.Errorf("%s: %v, want %v", row.Bench, got, w)
		}
	}
}

func TestTable4Renders(t *testing.T) {
	r := quickRunner()
	out := r.Table4()
	if !strings.Contains(out, "Static") || !strings.Contains(out, "%") {
		t.Errorf("table 4 output:\n%s", out)
	}
}

func TestBaselinePenaltyBand(t *testing.T) {
	r := quickRunner()
	out := r.BaselinePenalty()
	if !strings.Contains(out, "average") {
		t.Errorf("baseline penalty output:\n%s", out)
	}
}

func TestFigure12SchemeOrdering(t *testing.T) {
	r := NewRunner(core.DefaultConfig())
	r.Names = []string{"adpcm_decode", "mcf"}
	out := r.Figure12()
	if !strings.Contains(out, "L+F+C+P") || !strings.Contains(out, "normalized") {
		t.Errorf("figure 12 output:\n%s", out)
	}
	// L+F and F rows must show overhead (norm) far below 1.
	for _, name := range []string{"adpcm_decode", "mcf"} {
		lfcp := r.Scheme(name, calltree.LFCP)
		lf := r.Scheme(name, calltree.LF)
		if lf.St.OverheadCycles >= lfcp.St.OverheadCycles {
			t.Errorf("%s: L+F overhead (%d cycles) not below L+F+C+P (%d)",
				name, lf.St.OverheadCycles, lfcp.St.OverheadCycles)
		}
	}
}

func TestSweepShortensWithSmallDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	r := quickRunner()
	off, lf, on := r.Sweep()
	if len(off) != len(DeltaSweep) || len(lf) != len(DeltaSweep) || len(on) != len(AggressivenessSweep) {
		t.Fatal("sweep lengths wrong")
	}
	// Off-line savings must grow along the sweep (more slowdown budget).
	if off[len(off)-1].Savings <= off[0].Savings {
		t.Errorf("off-line sweep savings not increasing: %.1f .. %.1f",
			off[0].Savings, off[len(off)-1].Savings)
	}
	// Rendered figures parse.
	if !strings.Contains(Figure10(off, lf, on), "off-line:") {
		t.Error("figure 10 missing series")
	}
	if !strings.Contains(Figure11(off, lf, on), "L+F:") {
		t.Error("figure 11 missing series")
	}
}

// TestReportIdenticalAcrossCacheLayers renders the same figure from a
// cold cache, from the warm columnar segments, and from segments alone
// (JSON entries deleted): the report must not change by a byte based on
// which storage layer answered.
func TestReportIdenticalAcrossCacheLayers(t *testing.T) {
	dir := t.TempDir()
	render := func() string {
		r := NewRunner(core.DefaultConfig())
		r.Names = []string{"g721_decode"}
		r.CacheDir = dir
		return r.Figure4()
	}
	cold := render()
	warm := render()
	if cold != warm {
		t.Fatal("warm report differs from cold report")
	}
	// Remove the per-job JSON entries, keeping segments and artifacts:
	// the report must come out identical from the columnar layer alone.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() && e.Name() != sweep.SegmentSubdir && e.Name() != "artifacts" {
			if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	if segOnly := render(); segOnly != cold {
		t.Fatal("segments-only report differs from JSON-backed report")
	}
}
