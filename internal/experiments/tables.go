package experiments

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/calltree"
	"repro/internal/profiler"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table1 renders the simulated processor configuration. Every
// clocking-related row is generated from the configuration's topology
// model, so the table cannot drift from the machine actually simulated;
// under the default topology the rendering is byte-identical to the
// paper's Table 1 text.
func (r *Runner) Table1() string {
	c := r.Cfg.Sim
	topo := c.Topo()
	t := stats.NewTable("parameter", "value")
	t.Row("Decode / Issue / Retire Width", fmt.Sprintf("%d / %d / %d", c.DecodeWidth, c.IssueWidth, c.RetireWidth))
	t.Row("L1 Caches", "64KB 2-way, 2-cycle")
	t.Row("L2 Unified Cache", "1MB direct mapped, 12-cycle")
	t.Row("Main Memory", fmt.Sprintf("%d ns, external full-speed domain", c.MemLatPs/1000))
	t.Row("Integer ALUs", fmt.Sprintf("%d + %d mult/div", c.IntALUs, c.IntMuls))
	t.Row("Floating-Point ALUs", fmt.Sprintf("%d + %d mult/div/sqrt", c.FPALUs, c.FPMuls))
	t.Row("Issue Queue Size", fmt.Sprintf("%d int, %d fp, %d ld/st", c.IQInt, c.IQFP, c.IQLS))
	t.Row("Reorder Buffer Size", c.ROBSize)
	t.Row("Branch Mispredict Penalty", c.MispredictPenalty)
	if topo.Name != arch.DefaultName {
		t.Row("Clock Domain Topology", fmt.Sprintf("%s (%d scalable + external)", topo.Name, topo.NumScalable()))
		for d := 0; d < topo.NumDomains(); d++ {
			spec := topo.Spec(arch.Domain(d))
			var res []string
			for _, rr := range spec.Resources {
				res = append(res, rr.String())
			}
			t.Row("  domain "+spec.Name, strings.Join(res, ", "))
		}
	}
	if sc, uniform := topo.Uniform(); uniform {
		t.Row("Domain Frequency Range", fmt.Sprintf("%d MHz - %.1f GHz", sc.FMinMHz, float64(sc.FMaxMHz)/1000))
		t.Row("Domain Voltage Range", fmt.Sprintf("%.2f V - %.2f V", sc.VMin, sc.VMax))
		t.Row("Frequency Change Speed", fmt.Sprintf("%.1f ns/MHz", float64(sc.RampPsPerMHz)/1000))
	} else {
		for d := 0; d < topo.NumScalable(); d++ {
			spec := topo.Spec(arch.Domain(d))
			t.Row("  envelope "+spec.Name, fmt.Sprintf("%d MHz - %.1f GHz, %.2f V - %.2f V, %.1f ns/MHz",
				spec.FMinMHz, float64(spec.FMaxMHz)/1000, spec.VMin, spec.VMax, float64(spec.RampPsPerMHz)/1000))
		}
	}
	t.Row("Domain Clock Jitter", fmt.Sprintf("±%.0f ps, normally distributed", c.Sync.JitterPs))
	t.Row("Inter-domain Sync Window", fmt.Sprintf("%d ps", c.Sync.WindowPs))
	return "Table 1: SimpleScalar-equivalent configuration\n" + t.String()
}

// Table2 renders the instruction windows: the paper's windows alongside
// this reproduction's (scaled) windows.
func (r *Runner) Table2() string {
	t := stats.NewTable("benchmark", "paper windows", "train window", "ref window")
	for _, name := range r.SuiteNames() {
		b := workload.ByName(name)
		t.Row(name, b.Spec.PaperWindows, b.TrainWindow, b.RefWindow)
	}
	return "Table 2: instruction windows (this reproduction simulates scaled-down windows)\n" + t.String()
}

// Table3Row holds the call-tree statistics of one benchmark.
type Table3Row struct {
	Bench                 string
	TrainLong, TrainTotal int
	RefLong, RefTotal     int
	CommonLong, CommonTot int
	CovLong, CovTotal     float64
}

// Table3Data computes the call-tree statistics under L+F+C+P for both
// input sets.
func (r *Runner) Table3Data() []Table3Row {
	var rows []Table3Row
	for _, name := range r.SuiteNames() {
		b := workload.ByName(name)
		trainTree := profiler.Profile(b.Prog, b.Train, b.TrainWindow+1, calltree.LFCP)
		refTree := profiler.Profile(b.Prog, b.Ref, b.RefWindow+1, calltree.LFCP)
		commonTotal, commonLong := trainTree.Compare(refTree)
		row := Table3Row{
			Bench:      name,
			TrainLong:  trainTree.NumLongRunning(),
			TrainTotal: trainTree.NumNodes(),
			RefLong:    refTree.NumLongRunning(),
			RefTotal:   refTree.NumNodes(),
			CommonLong: commonLong,
			CommonTot:  commonTotal,
		}
		if row.RefLong > 0 {
			row.CovLong = float64(row.CommonLong) / float64(row.RefLong)
		}
		if row.RefTotal > 0 {
			row.CovTotal = float64(row.CommonTot) / float64(row.RefTotal)
		}
		rows = append(rows, row)
	}
	return rows
}

// Table3 renders the call-tree statistics.
func (r *Runner) Table3() string {
	t := stats.NewTable("benchmark", "TRAIN", "REF", "Common", "Coverage")
	for _, row := range r.Table3Data() {
		t.Row(row.Bench,
			fmt.Sprintf("%d %d", row.TrainLong, row.TrainTotal),
			fmt.Sprintf("%d %d", row.RefLong, row.RefTotal),
			fmt.Sprintf("%d %d", row.CommonLong, row.CommonTot),
			fmt.Sprintf("%.2f %.2f", row.CovLong, row.CovTotal))
	}
	return "Table 3: reconfiguration nodes and call-tree nodes (L+F+C+P)\n" + t.String()
}

// Table4 renders the static and dynamic instrumentation points and the
// measured run-time overhead under L+F+C+P.
func (r *Runner) Table4() string {
	names := r.SuiteNames()
	t := stats.NewTable("benchmark", "Static", "Dynamic", "Overhead")
	for _, name := range names {
		sr := r.Scheme(name, calltree.LFCP)
		t.Row(name,
			fmt.Sprintf("%d %d", sr.StaticReconfig, sr.StaticInstr),
			fmt.Sprintf("%d %d", sr.St.DynReconfig, sr.St.DynInstr),
			fmt.Sprintf("%.2f%%", sr.St.OverheadPct))
	}
	return "Table 4: static and dynamic reconfiguration/instrumentation points (L+F+C+P)\n" + t.String()
}

// BaselinePenalty reports the inherent cost of the MCD design relative
// to an equivalent globally synchronous processor (Section 4.1: about
// 1.3% performance, 0.8% energy).
func (r *Runner) BaselinePenalty() string {
	r.Warm()
	var perf, energy []float64
	t := stats.NewTable("benchmark", "perf penalty (%)", "energy penalty (%)")
	for _, name := range r.SuiteNames() {
		br := r.For(name)
		d := stats.Vs(br.Base, br.SingleClock)
		perf = append(perf, d.Slowdown)
		energy = append(energy, -d.EnergySavings)
		t.Row(name, d.Slowdown, -d.EnergySavings)
	}
	p, e := stats.Summarize(perf), stats.Summarize(energy)
	var b strings.Builder
	b.WriteString("MCD baseline penalty vs globally synchronous processor\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "average %.2f%% (max %.2f%%) performance, %.2f%% (max %.2f%%) energy\n",
		p.Avg, p.Max, e.Avg, e.Max)
	return b.String()
}
