// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4) on the synthetic benchmark suite: the headline
// per-benchmark comparisons (Figures 4-6), the min/max/average summary
// with the global-DVS comparator (Figure 7), the calling-context
// sensitivity study (Figures 8-9), the slowdown-threshold sweeps
// (Figures 10-11), the instrumentation-cost comparison (Figure 12 and
// Table 4), the call-tree statistics (Table 3), and the MCD baseline
// penalty discussed in the text.
//
// All simulation work runs through the internal/sweep engine: results
// are memoized in process and, when CacheDir is set, persisted to a
// content-addressed on-disk cache so repeated report generations do
// zero simulation work.
package experiments

import (
	"context"
	"sync"

	"repro/internal/calltree"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// SchemeRun is one profile-driven configuration evaluated on the
// reference input.
type SchemeRun struct {
	Res sim.Result
	St  core.EditStats
	// StaticReconfig and StaticInstr count the edit plan's static
	// reconfiguration and path-tracking points (Table 4, Figure 12).
	StaticReconfig int
	StaticInstr    int
}

// BenchResults caches every policy's result for one benchmark.
type BenchResults struct {
	Bench       *workload.Benchmark
	Base        sim.Result // MCD baseline, reference input
	SingleClock sim.Result // globally synchronous full-speed comparator
	Offline     sim.Result
	Online      sim.Result
	Global      sim.Result
	GlobalMHz   int

	mu      sync.Mutex
	filled  bool
	schemes map[string]*SchemeRun
}

// Runner lazily computes and caches benchmark results on top of the
// sweep engine. Methods are safe for concurrent use.
type Runner struct {
	Cfg core.Config
	// Parallel bounds concurrent job executions; 0 means GOMAXPROCS.
	Parallel int
	// Names restricts the suite (nil = all 19 benchmarks).
	Names []string
	// CacheDir, when non-empty, persists simulation outcomes to a sweep
	// cache shared across processes — and trained profiles to the
	// artifact store in its artifacts/ subdirectory, so new parameter
	// grids replan from stored training state instead of retraining.
	// Set it before the first query.
	CacheDir string

	engOnce sync.Once
	eng     *sweep.Engine

	mu    sync.Mutex
	cache map[string]*BenchResults
}

// NewRunner returns a runner over the full suite with the given
// configuration.
func NewRunner(cfg core.Config) *Runner {
	return &Runner{Cfg: cfg, cache: make(map[string]*BenchResults)}
}

// Engine returns the runner's sweep engine, creating it on first use.
func (r *Runner) Engine() *sweep.Engine {
	r.engOnce.Do(func() {
		r.eng = sweep.New(r.Cfg)
		r.eng.Workers = r.Parallel
		if r.CacheDir != "" {
			r.eng.Cache = &sweep.Cache{Dir: r.CacheDir}
			r.eng.Artifacts = sweep.ArtifactStore(r.CacheDir)
			// The columnar layer: a warm report generation resolves its
			// whole grid from a few segment reads instead of one JSON
			// decode per job.
			r.eng.Segments = sweep.SegmentStoreFor(r.CacheDir)
		}
	})
	return r.eng
}

// run resolves a batch of jobs, panicking on failure: runner queries are
// report generators whose job specs are built internally, so an error
// here is a programming mistake or an unusable cache directory.
func (r *Runner) run(jobs []sweep.Job) []*sweep.Outcome {
	outs, _, err := r.Engine().Run(context.Background(), jobs)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return outs
}

// SuiteNames returns the benchmark names the runner operates over.
func (r *Runner) SuiteNames() []string {
	if r.Names != nil {
		return r.Names
	}
	return workload.Names()
}

// coreJobs are the five policy runs every benchmark needs, in the order
// Runner.For unpacks them.
func coreJobs(name string) []sweep.Job {
	return []sweep.Job{
		{Bench: name, Policy: sweep.PolicyBaseline},
		{Bench: name, Policy: sweep.PolicySingleClock},
		{Bench: name, Policy: sweep.PolicyOffline},
		{Bench: name, Policy: sweep.PolicyOnline},
		{Bench: name, Policy: sweep.PolicyGlobal},
	}
}

// For returns (computing if needed) the core policy results for one
// benchmark: baseline, single-clock, off-line, on-line and global DVS.
func (r *Runner) For(name string) *BenchResults {
	r.mu.Lock()
	br, ok := r.cache[name]
	if !ok {
		br = &BenchResults{Bench: workload.ByName(name), schemes: make(map[string]*SchemeRun)}
		if br.Bench == nil {
			r.mu.Unlock()
			panic("experiments: unknown benchmark " + name)
		}
		r.cache[name] = br
	}
	r.mu.Unlock()

	br.mu.Lock()
	defer br.mu.Unlock()
	if !br.filled {
		outs := r.run(coreJobs(name))
		br.Base = outs[0].Res
		br.SingleClock = outs[1].Res
		br.Offline = outs[2].Res
		br.Online = outs[3].Res
		br.Global = outs[4].Res
		br.GlobalMHz = outs[4].GlobalMHz
		br.filled = true
	}
	return br
}

// Scheme returns (computing if needed) the profile-driven run for one
// context scheme on one benchmark: train on the training input, edit,
// run on the reference input.
func (r *Runner) Scheme(name string, scheme calltree.Scheme) *SchemeRun {
	br := r.For(name)
	br.mu.Lock()
	defer br.mu.Unlock()
	if sr, ok := br.schemes[scheme.Name]; ok {
		return sr
	}
	out := r.run([]sweep.Job{{Bench: name, Policy: sweep.PolicyScheme, Scheme: scheme.Name}})[0]
	sr := &SchemeRun{Res: out.Res, St: out.Stats, StaticReconfig: out.StaticReconfig, StaticInstr: out.StaticInstr}
	br.schemes[scheme.Name] = sr
	return sr
}

// Warm computes the core results (and the L+F scheme) for every suite
// benchmark on the engine's worker pool.
func (r *Runner) Warm() {
	var jobs []sweep.Job
	for _, n := range r.SuiteNames() {
		jobs = append(jobs, coreJobs(n)...)
		jobs = append(jobs, sweep.Job{Bench: n, Policy: sweep.PolicyScheme, Scheme: calltree.LF.Name})
	}
	r.run(jobs)
	for _, n := range r.SuiteNames() {
		r.For(n)
		r.Scheme(n, calltree.LF)
	}
}

// WarmSchemes computes every context scheme (plus the core policies) for
// the given benchmarks on the engine's worker pool (Figures 8, 9 and 12).
func (r *Runner) WarmSchemes(names []string) {
	var jobs []sweep.Job
	for _, n := range names {
		jobs = append(jobs, coreJobs(n)...)
		for _, s := range calltree.Schemes() {
			jobs = append(jobs, sweep.Job{Bench: n, Policy: sweep.PolicyScheme, Scheme: s.Name})
		}
	}
	r.run(jobs)
	for _, n := range names {
		r.For(n)
		for _, s := range calltree.Schemes() {
			r.Scheme(n, s)
		}
	}
}
