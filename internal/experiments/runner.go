// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4) on the synthetic benchmark suite: the headline
// per-benchmark comparisons (Figures 4-6), the min/max/average summary
// with the global-DVS comparator (Figure 7), the calling-context
// sensitivity study (Figures 8-9), the slowdown-threshold sweeps
// (Figures 10-11), the instrumentation-cost comparison (Figure 12 and
// Table 4), the call-tree statistics (Table 3), and the MCD baseline
// penalty discussed in the text.
package experiments

import (
	"runtime"
	"sync"

	"repro/internal/calltree"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// SchemeRun is one profile-driven configuration evaluated on the
// reference input.
type SchemeRun struct {
	Prof *core.Profile
	Res  sim.Result
	St   core.EditStats
}

// BenchResults caches every policy's result for one benchmark.
type BenchResults struct {
	Bench       *workload.Benchmark
	Base        sim.Result // MCD baseline, reference input
	SingleClock sim.Result // globally synchronous full-speed comparator
	Offline     sim.Result
	OfflineProf *core.Profile
	Online      sim.Result
	Global      sim.Result
	GlobalMHz   int

	mu      sync.Mutex
	schemes map[string]*SchemeRun
}

// Runner lazily computes and caches benchmark results. Methods are safe
// for concurrent use.
type Runner struct {
	Cfg core.Config
	// Parallel bounds concurrent benchmark evaluations; 0 means
	// GOMAXPROCS.
	Parallel int
	// Names restricts the suite (nil = all 19 benchmarks).
	Names []string

	mu    sync.Mutex
	cache map[string]*BenchResults
}

// NewRunner returns a runner over the full suite with the given
// configuration.
func NewRunner(cfg core.Config) *Runner {
	return &Runner{Cfg: cfg, cache: make(map[string]*BenchResults)}
}

// SuiteNames returns the benchmark names the runner operates over.
func (r *Runner) SuiteNames() []string {
	if r.Names != nil {
		return r.Names
	}
	return workload.Names()
}

// For returns (computing if needed) the core policy results for one
// benchmark: baseline, single-clock, off-line, on-line and global DVS.
func (r *Runner) For(name string) *BenchResults {
	r.mu.Lock()
	br, ok := r.cache[name]
	if !ok {
		br = &BenchResults{Bench: workload.ByName(name), schemes: make(map[string]*SchemeRun)}
		if br.Bench == nil {
			r.mu.Unlock()
			panic("experiments: unknown benchmark " + name)
		}
		r.cache[name] = br
	}
	r.mu.Unlock()

	br.mu.Lock()
	defer br.mu.Unlock()
	if br.Base.Instructions == 0 {
		b := br.Bench
		cfg := r.Cfg
		br.Base = core.RunBaseline(cfg, b.Prog, b.Ref, b.RefWindow)
		br.SingleClock = core.RunSingleClock(cfg, b.Prog, b.Ref, b.RefWindow, cfg.Sim.BaseMHz)
		br.Offline, br.OfflineProf = core.RunOffline(cfg, b.Prog, b.Ref, b.RefWindow)
		br.Online = core.RunOnline(cfg, b.Prog, b.Ref, b.RefWindow)
		br.GlobalMHz = control.GlobalDVSMHz(br.SingleClock.TimePs, br.Offline.TimePs)
		br.Global = core.RunSingleClock(cfg, b.Prog, b.Ref, b.RefWindow, br.GlobalMHz)
	}
	return br
}

// Scheme returns (computing if needed) the profile-driven run for one
// context scheme on one benchmark: train on the training input, edit,
// run on the reference input.
func (r *Runner) Scheme(name string, scheme calltree.Scheme) *SchemeRun {
	br := r.For(name)
	br.mu.Lock()
	defer br.mu.Unlock()
	if sr, ok := br.schemes[scheme.Name]; ok {
		return sr
	}
	b := br.Bench
	prof := core.Train(r.Cfg, b.Prog, b.Train, b.TrainWindow, scheme)
	res, st := core.RunEdited(r.Cfg, b.Prog, b.Ref, b.RefWindow, prof.Plan, false)
	sr := &SchemeRun{Prof: prof, Res: res, St: st}
	br.schemes[scheme.Name] = sr
	return sr
}

// Warm computes the core results (and the L+F scheme) for every suite
// benchmark in parallel.
func (r *Runner) Warm() {
	names := r.SuiteNames()
	workers := r.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}
	ch := make(chan string)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := range ch {
				r.Scheme(n, calltree.LF)
			}
		}()
	}
	for _, n := range names {
		ch <- n
	}
	close(ch)
	wg.Wait()
}

// WarmSchemes computes every context scheme for the given benchmarks in
// parallel (Figures 8, 9 and 12).
func (r *Runner) WarmSchemes(names []string) {
	workers := r.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type job struct {
		name   string
		scheme calltree.Scheme
	}
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				r.Scheme(j.name, j.scheme)
			}
		}()
	}
	for _, n := range names {
		for _, s := range calltree.Schemes() {
			ch <- job{n, s}
		}
	}
	close(ch)
	wg.Wait()
}
