package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// TopologyRow summarizes one clock-domain topology across a benchmark
// subset: the offline-oracle and on-line controller slowdown and energy
// savings, each against that topology's own MCD baseline, plus the
// baseline's synchronization penalty rate.
type TopologyRow struct {
	Topology    string
	Domains     int // scalable domains
	OffSlowdown float64
	OffSavings  float64
	OnSlowdown  float64
	OnSavings   float64
	// BaseTimePs is the summed baseline run time, for cross-topology
	// absolute comparison.
	BaseTimePs int64
}

// TopologyData runs the baseline, offline and online policies for every
// named topology over the benchmark subset and averages the per-bench
// deltas. An empty topology list means every registered topology.
func (r *Runner) TopologyData(topos []string) ([]TopologyRow, error) {
	if len(topos) == 0 {
		topos = arch.TopologyNames()
	}
	var rows []TopologyRow
	for _, name := range topos {
		topo, err := arch.TopologyByName(name)
		if err != nil {
			return nil, err
		}
		cfg := r.Cfg
		cfg.Sim.Topology = arch.CanonicalTopologyName(topo.Name)
		// One engine per topology: its configuration is part of every
		// cache key, so results never cross-contaminate.
		eng := sweep.New(cfg)
		eng.Workers = r.Parallel
		if r.CacheDir != "" {
			eng.Cache = &sweep.Cache{Dir: r.CacheDir}
			eng.Artifacts = sweep.ArtifactStore(r.CacheDir)
		}
		var jobs []sweep.Job
		for _, b := range r.SuiteNames() {
			jobs = append(jobs,
				sweep.Job{Bench: b, Policy: sweep.PolicyBaseline},
				sweep.Job{Bench: b, Policy: sweep.PolicyOffline},
				sweep.Job{Bench: b, Policy: sweep.PolicyOnline})
		}
		outs, _, err := eng.Run(context.Background(), jobs)
		if err != nil {
			return nil, err
		}
		row := TopologyRow{Topology: topo.Name, Domains: topo.NumScalable()}
		var offS, offE, onS, onE []float64
		for i := 0; i < len(outs); i += 3 {
			base, off, on := outs[i].Res, outs[i+1].Res, outs[i+2].Res
			row.BaseTimePs += base.TimePs
			dOff := stats.Vs(off, base)
			dOn := stats.Vs(on, base)
			offS = append(offS, dOff.Slowdown)
			offE = append(offE, dOff.EnergySavings)
			onS = append(onS, dOn.Slowdown)
			onE = append(onE, dOn.EnergySavings)
		}
		row.OffSlowdown = stats.Summarize(offS).Avg
		row.OffSavings = stats.Summarize(offE).Avg
		row.OnSlowdown = stats.Summarize(onS).Avg
		row.OnSavings = stats.Summarize(onE).Avg
		rows = append(rows, row)
	}
	return rows, nil
}

// TopologyTable renders the cross-topology comparison: how much slack
// each domain partition exposes to the offline oracle and the on-line
// controller, against that topology's own baseline.
func (r *Runner) TopologyTable(topos []string) (string, error) {
	rows, err := r.TopologyData(topos)
	if err != nil {
		return "", err
	}
	t := stats.NewTable("topology", "domains",
		"offline slowdown (%)", "offline savings (%)",
		"online slowdown (%)", "online savings (%)", "base time (us)")
	for _, row := range rows {
		t.Row(row.Topology, row.Domains,
			fmt.Sprintf("%.2f", row.OffSlowdown), fmt.Sprintf("%.2f", row.OffSavings),
			fmt.Sprintf("%.2f", row.OnSlowdown), fmt.Sprintf("%.2f", row.OnSavings),
			fmt.Sprintf("%.1f", float64(row.BaseTimePs)/1e6))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Topology comparison: offline + online vs each topology's baseline (%d benchmarks: %s)\n",
		len(r.SuiteNames()), strings.Join(r.SuiteNames(), ", "))
	b.WriteString(t.String())
	b.WriteString("Per-row baselines differ: each topology pays its own synchronization penalties.\n")
	return b.String(), nil
}
