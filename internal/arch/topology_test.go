package arch

import (
	"strings"
	"testing"
)

// validTopology returns a well-formed 2-domain topology test fixture;
// tests mutate one aspect to trigger one validation error.
func validTopology() *Topology {
	return &Topology{
		Name: "test2",
		Domains: []DomainSpec{
			{Name: "front", Scalable: true, PowerFactor: 0.3,
				Resources: []Resource{ResFetch, ResDispatch}},
			{Name: "back", Scalable: true, PowerFactor: 0.7,
				Resources: []Resource{ResIntExec, ResFPExec, ResLoadStore, ResL2}},
			{Name: "external", Resources: []Resource{ResMemory}},
		},
		SyncEdges: [][2]string{{"front", "back"}},
	}
}

func wantErr(t *testing.T, topo *Topology, frag string) {
	t.Helper()
	err := topo.Validate()
	if err == nil {
		t.Fatalf("Validate() = nil, want error containing %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("Validate() = %q, want it to contain %q", err, frag)
	}
}

func TestValidateFixtureOK(t *testing.T) {
	if err := validTopology().Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
}

func TestValidateDuplicateDomainName(t *testing.T) {
	topo := validTopology()
	topo.Domains[1].Name = "front"
	wantErr(t, topo, `duplicate domain name "front"`)
}

func TestValidateResourceOwnedTwice(t *testing.T) {
	topo := validTopology()
	topo.Domains[1].Resources = append(topo.Domains[1].Resources, ResFetch)
	wantErr(t, topo, `resource fetch owned by both "front" and "back"`)
}

func TestValidateResourceUnowned(t *testing.T) {
	topo := validTopology()
	topo.Domains[1].Resources = []Resource{ResIntExec, ResFPExec, ResLoadStore}
	wantErr(t, topo, "resource l2 owned by no domain")
}

func TestValidateInvertedFrequencyRange(t *testing.T) {
	topo := validTopology()
	topo.Domains[0].FMinMHz = 1000
	topo.Domains[0].FMaxMHz = 250
	wantErr(t, topo, `domain "front": inverted frequency range 1000-250 MHz`)
}

func TestValidateMissingSyncEdge(t *testing.T) {
	topo := validTopology()
	topo.SyncEdges = nil
	wantErr(t, topo, `missing sync edge between "front" and "back"`)
}

func TestValidateSyncEdgeUnknownDomain(t *testing.T) {
	topo := validTopology()
	topo.SyncEdges = append(topo.SyncEdges, [2]string{"front", "nowhere"})
	wantErr(t, topo, "names an unknown domain")
}

func TestValidateMemoryInScalableDomain(t *testing.T) {
	topo := validTopology()
	topo.Domains[1].Resources = append(topo.Domains[1].Resources, ResMemory)
	wantErr(t, topo, "owned by both")
	topo = validTopology()
	topo.Domains[2].Resources = nil
	wantErr(t, topo, "resource memory owned by no domain")
}

func TestValidateScalableAfterExternal(t *testing.T) {
	topo := validTopology()
	topo.Domains[1], topo.Domains[2] = topo.Domains[2], topo.Domains[1]
	wantErr(t, topo, "listed after the external domain")
}

func TestValidateNeedsPowerFactor(t *testing.T) {
	topo := validTopology()
	topo.Domains[0].PowerFactor = 0
	wantErr(t, topo, `scalable domain "front" needs a positive power factor`)
}

func TestBuiltinsRegisteredAndValid(t *testing.T) {
	names := TopologyNames()
	want := []string{DefaultName, "sync1", "fe-be2", "fine6"}
	for _, w := range want {
		topo, err := TopologyByName(w)
		if err != nil {
			t.Fatalf("built-in %q not registered: %v", w, err)
		}
		if topo.NumScalable() < 1 || topo.NumDomains() != topo.NumScalable()+1 {
			t.Errorf("%q: %d domains / %d scalable", w, topo.NumDomains(), topo.NumScalable())
		}
	}
	if len(names) < len(want) {
		t.Errorf("TopologyNames() = %v", names)
	}
}

func TestDefaultTopologyMatchesLegacyEnum(t *testing.T) {
	topo := Default()
	if topo.NumDomains() != NumDomains || topo.NumScalable() != NumScalable {
		t.Fatalf("default topology %d/%d domains, want %d/%d",
			topo.NumDomains(), topo.NumScalable(), NumDomains, NumScalable)
	}
	for _, tc := range []struct {
		r Resource
		d Domain
	}{
		{ResFetch, FrontEnd}, {ResDispatch, FrontEnd},
		{ResIntExec, Integer}, {ResFPExec, FP},
		{ResLoadStore, Memory}, {ResL2, Memory},
		{ResMemory, External},
	} {
		if got := topo.DomainOf(tc.r); got != tc.d {
			t.Errorf("DomainOf(%s) = %v, want %v", tc.r, got, tc.d)
		}
	}
	for i, d := range Domains() {
		if topo.Spec(Domain(i)).Name != d.String() {
			t.Errorf("domain %d name %q != legacy %q", i, topo.Spec(Domain(i)).Name, d)
		}
	}
	// The declared power factors are the shaker calibration, bitwise.
	pf := topo.PowerFactors()
	want := []float64{0.30, 0.24, 0.20, 0.26}
	for i := range want {
		if pf[i] != want[i] {
			t.Errorf("power factor[%d] = %v, want %v", i, pf[i], want[i])
		}
	}
}

func TestTopologyByNameUnknownListsRegistered(t *testing.T) {
	_, err := TopologyByName("nope")
	if err == nil {
		t.Fatal("unknown topology accepted")
	}
	for _, want := range []string{`"nope"`, DefaultName, "sync1", "fe-be2", "fine6"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestCanonicalTopologyName(t *testing.T) {
	if CanonicalTopologyName(DefaultName) != "" {
		t.Error("default name did not canonicalize to empty")
	}
	if CanonicalTopologyName("fine6") != "fine6" {
		t.Error("non-default name mangled")
	}
	if tp, err := TopologyByName(""); err != nil || tp.Name != DefaultName {
		t.Errorf("empty name resolved to %v, %v", tp, err)
	}
}

func TestUniformEnvelope(t *testing.T) {
	for _, name := range TopologyNames() {
		topo := MustTopology(name)
		if _, uniform := topo.Uniform(); !uniform {
			t.Errorf("built-in %q should have a uniform envelope", name)
		}
	}
}
func TestValidateOnChipResourceInExternal(t *testing.T) {
	topo := validTopology()
	topo.Domains[1].Resources = []Resource{ResIntExec, ResFPExec, ResLoadStore}
	topo.Domains[2].Resources = append(topo.Domains[2].Resources, ResL2)
	wantErr(t, topo, `on-chip resource l2 cannot live in the external domain "external"`)
}
