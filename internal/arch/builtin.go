package arch

// The built-in topologies. paper4 is the paper's Figure 1 partition and
// the default everywhere; the others open domain granularity as a sweep
// axis: sync1 collapses the core into one clock (the fully synchronous
// comparator as a *topology*, synchronization penalties gone but all
// resources scaling together), fe-be2 splits only front end from back
// end, and fine6 additionally separates dispatch from fetch and the
// load/store unit from the L2 interface.
//
// Power factors, clock-tree energy and leakage are declared per domain
// such that any grouping of the same resources sums to the paper4
// calibration exactly (the per-resource splits are binary-exact halves,
// so regrouping is bit-identical arithmetic).

func fullSync(names ...string) [][2]string {
	var edges [][2]string
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			edges = append(edges, [2]string{names[i], names[j]})
		}
	}
	return edges
}

func init() {
	RegisterTopology(&Topology{
		Name: DefaultName, // paper4
		Domains: []DomainSpec{
			{Name: "front-end", Scalable: true, PowerFactor: 0.30,
				Resources: []Resource{ResFetch, ResDispatch}},
			{Name: "integer", Scalable: true, PowerFactor: 0.24,
				Resources: []Resource{ResIntExec}},
			{Name: "fp", Scalable: true, PowerFactor: 0.20,
				Resources: []Resource{ResFPExec}},
			{Name: "memory", Scalable: true, PowerFactor: 0.26,
				Resources: []Resource{ResLoadStore, ResL2}},
			{Name: "external", Resources: []Resource{ResMemory}},
		},
		SyncEdges: fullSync("front-end", "integer", "fp", "memory"),
	})

	RegisterTopology(&Topology{
		Name: "sync1",
		Domains: []DomainSpec{
			{Name: "core", Scalable: true, PowerFactor: 1.0,
				Resources: []Resource{ResFetch, ResDispatch, ResIntExec, ResFPExec, ResLoadStore, ResL2}},
			{Name: "external", Resources: []Resource{ResMemory}},
		},
	})

	RegisterTopology(&Topology{
		Name: "fe-be2",
		Domains: []DomainSpec{
			{Name: "front-end", Scalable: true, PowerFactor: 0.30,
				Resources: []Resource{ResFetch, ResDispatch}},
			{Name: "back-end", Scalable: true, PowerFactor: 0.70,
				Resources: []Resource{ResIntExec, ResFPExec, ResLoadStore, ResL2}},
			{Name: "external", Resources: []Resource{ResMemory}},
		},
		SyncEdges: [][2]string{{"front-end", "back-end"}},
	})

	RegisterTopology(&Topology{
		Name: "fine6",
		Domains: []DomainSpec{
			{Name: "fetch", Scalable: true, PowerFactor: 0.15,
				Resources: []Resource{ResFetch}},
			{Name: "dispatch", Scalable: true, PowerFactor: 0.15,
				Resources: []Resource{ResDispatch}},
			{Name: "integer", Scalable: true, PowerFactor: 0.24,
				Resources: []Resource{ResIntExec}},
			{Name: "fp", Scalable: true, PowerFactor: 0.20,
				Resources: []Resource{ResFPExec}},
			{Name: "load-store", Scalable: true, PowerFactor: 0.13,
				Resources: []Resource{ResLoadStore}},
			{Name: "l2", Scalable: true, PowerFactor: 0.13,
				Resources: []Resource{ResL2}},
			{Name: "external", Resources: []Resource{ResMemory}},
		},
		SyncEdges: [][2]string{
			{"fetch", "dispatch"},
			{"dispatch", "integer"}, {"dispatch", "fp"}, {"dispatch", "load-store"},
			{"integer", "fp"}, {"integer", "load-store"}, {"fp", "load-store"},
			{"integer", "fetch"},
			{"fetch", "l2"}, {"load-store", "l2"},
		},
	})
}
