package arch

import (
	"fmt"
	"sort"

	"repro/internal/dvfs"
)

// Resource is one pipeline resource the machine model routes onto a
// clock domain. The resource vocabulary is fixed — it is the simulator's
// structural skeleton — while the resource→domain mapping is the
// declarative part a Topology configures.
type Resource uint8

const (
	// ResFetch is the fetch unit, L1 I-cache and branch predictor.
	ResFetch Resource = iota
	// ResDispatch is rename, dispatch, the reorder buffer and commit.
	ResDispatch
	// ResIntExec is the integer issue queue, ALUs, multiplier and
	// register file.
	ResIntExec
	// ResFPExec is the floating-point issue queue, ALUs, multiplier and
	// register file.
	ResFPExec
	// ResLoadStore is the load/store queue, its ports and the L1 D-cache.
	ResLoadStore
	// ResL2 is the unified L2 cache interface.
	ResL2
	// ResMemory is off-chip main memory; it always runs at full speed and
	// must be owned by the single non-scalable external domain.
	ResMemory

	// NumResources counts the routable resources.
	NumResources = 7
)

var resourceNames = [NumResources]string{
	"fetch", "dispatch", "int-exec", "fp-exec", "load-store", "l2", "memory",
}

// String returns the lower-case resource name.
func (r Resource) String() string {
	if int(r) < len(resourceNames) {
		return resourceNames[r]
	}
	return fmt.Sprintf("resource(%d)", uint8(r))
}

// resourcePairs lists the resource pairs that exchange timed values in
// the simulator: every pair mapped onto two distinct on-chip domains by
// a topology needs a declared synchronization edge between those
// domains. (Crossings to the external memory domain are modeled as a
// fixed latency, not through the synchronizer.)
var resourcePairs = [][2]Resource{
	{ResFetch, ResDispatch},     // fetch→dispatch handoff
	{ResDispatch, ResIntExec},   // dispatch→issue
	{ResDispatch, ResFPExec},    //
	{ResDispatch, ResLoadStore}, //
	{ResIntExec, ResFPExec},     // operand forwarding
	{ResIntExec, ResLoadStore},  //
	{ResFPExec, ResLoadStore},   //
	{ResIntExec, ResDispatch},   // completion→commit
	{ResFPExec, ResDispatch},    //
	{ResLoadStore, ResDispatch}, //
	{ResIntExec, ResFetch},      // branch redirect
	{ResFetch, ResL2},           // I-fetch miss path
	{ResLoadStore, ResL2},       // D-miss path
}

// DomainSpec declares one clock domain of a topology: its name, the
// pipeline resources it owns, and its DVFS envelope. The zero envelope
// fields default to the paper's Table 1 values when the spec is built
// through Normalize (which Validate calls).
type DomainSpec struct {
	// Name is the domain's unique lower-case name.
	Name string
	// Resources lists the pipeline resources the domain owns.
	Resources []Resource
	// Scalable marks the domain as subject to DVFS; exactly the
	// non-scalable external domain owns ResMemory.
	Scalable bool
	// FMinMHz and FMaxMHz bound the domain frequency (default 250–1000).
	FMinMHz, FMaxMHz int
	// VMin and VMax bound the matched supply voltage (default 0.65–1.20).
	VMin, VMax float64
	// RampPsPerMHz is the DVFS ramp rate (default 73300 ps/MHz, the
	// paper's 73.3 ns/MHz).
	RampPsPerMHz int64
	// PowerFactor is the domain's initial per-event power factor used by
	// the shaker's slack-distribution passes; scalable domains must
	// declare a positive factor.
	PowerFactor float64
}

// Scale returns the domain's DVFS envelope as a dvfs.Scale.
func (d *DomainSpec) Scale() dvfs.Scale {
	return dvfs.Scale{
		FMinMHz:      d.FMinMHz,
		FMaxMHz:      d.FMaxMHz,
		StepMHz:      dvfs.StepMHz,
		VMin:         d.VMin,
		VMax:         d.VMax,
		RampPsPerMHz: d.RampPsPerMHz,
	}
}

// Topology is a declarative, validated description of a machine's clock
// domains: which pipeline resources each domain owns, each domain's
// DVFS envelope, and which domain pairs are connected by a
// synchronization circuit. The paper's 4-domain split is the default;
// alternative topologies make domain granularity a sweep axis.
type Topology struct {
	// Name identifies the topology in configurations and sweep
	// manifests.
	Name string
	// Domains lists the clock domains; scalable domains must precede the
	// single non-scalable external domain, so a domain index below
	// NumScalable() is always a DVFS domain.
	Domains []DomainSpec
	// SyncEdges lists the unordered domain-name pairs connected by a
	// synchronization circuit. Every resource pair the simulator times
	// across two distinct on-chip domains must be covered.
	SyncEdges [][2]string

	// Derived tables, filled by Validate.
	resDom      [NumResources]Domain
	numScalable int
}

// Validate checks the topology's internal consistency, applying the
// paper-default DVFS envelope to zero fields first. It must be called
// (directly or via RegisterTopology) before the topology is used.
func (t *Topology) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("arch: topology has no name")
	}
	if len(t.Domains) < 2 {
		return fmt.Errorf("arch: topology %q needs at least one scalable domain and the external domain", t.Name)
	}
	byName := make(map[string]Domain, len(t.Domains))
	sawNonScalable := false
	t.numScalable = 0
	for i := range t.Domains {
		d := &t.Domains[i]
		if d.Name == "" {
			return fmt.Errorf("arch: topology %q: domain %d has no name", t.Name, i)
		}
		if _, dup := byName[d.Name]; dup {
			return fmt.Errorf("arch: topology %q: duplicate domain name %q", t.Name, d.Name)
		}
		byName[d.Name] = Domain(i)
		d.normalize()
		if d.FMinMHz >= d.FMaxMHz {
			return fmt.Errorf("arch: topology %q: domain %q: inverted frequency range %d-%d MHz",
				t.Name, d.Name, d.FMinMHz, d.FMaxMHz)
		}
		if err := d.Scale().Validate(); err != nil {
			return fmt.Errorf("arch: topology %q: domain %q: %v", t.Name, d.Name, err)
		}
		if d.Scalable {
			if sawNonScalable {
				return fmt.Errorf("arch: topology %q: scalable domain %q listed after the external domain", t.Name, d.Name)
			}
			if d.PowerFactor <= 0 {
				return fmt.Errorf("arch: topology %q: scalable domain %q needs a positive power factor", t.Name, d.Name)
			}
			t.numScalable++
		} else {
			sawNonScalable = true
		}
	}
	if t.numScalable == 0 {
		return fmt.Errorf("arch: topology %q has no scalable domain", t.Name)
	}
	if t.numScalable == len(t.Domains) {
		return fmt.Errorf("arch: topology %q has no external memory domain", t.Name)
	}
	if t.numScalable != len(t.Domains)-1 {
		return fmt.Errorf("arch: topology %q has %d non-scalable domains; exactly one external domain is supported",
			t.Name, len(t.Domains)-t.numScalable)
	}

	// Every resource owned by exactly one domain.
	var owner [NumResources]int
	for i := range owner {
		owner[i] = -1
	}
	for i := range t.Domains {
		for _, r := range t.Domains[i].Resources {
			if int(r) >= NumResources {
				return fmt.Errorf("arch: topology %q: domain %q owns unknown resource %d", t.Name, t.Domains[i].Name, r)
			}
			if o := owner[r]; o >= 0 {
				return fmt.Errorf("arch: topology %q: resource %s owned by both %q and %q",
					t.Name, r, t.Domains[o].Name, t.Domains[i].Name)
			}
			owner[r] = i
			t.resDom[r] = Domain(i)
		}
	}
	for r, o := range owner {
		if o < 0 {
			return fmt.Errorf("arch: topology %q: resource %s owned by no domain", t.Name, Resource(r))
		}
	}
	ext := Domain(len(t.Domains) - 1)
	if t.resDom[ResMemory] != ext {
		return fmt.Errorf("arch: topology %q: resource memory must be owned by the external domain %q, not %q",
			t.Name, t.Domains[ext].Name, t.Domains[t.resDom[ResMemory]].Name)
	}
	for r := Resource(0); r < NumResources; r++ {
		if r != ResMemory && t.resDom[r] == ext {
			return fmt.Errorf("arch: topology %q: on-chip resource %s cannot live in the external domain %q",
				t.Name, r, t.Domains[ext].Name)
		}
	}

	// Synchronization edges: declared pairs must name known, distinct
	// domains, and every cross-domain resource pair must be covered.
	edges := make(map[[2]Domain]bool, len(t.SyncEdges))
	for _, e := range t.SyncEdges {
		a, okA := byName[e[0]]
		b, okB := byName[e[1]]
		if !okA || !okB {
			return fmt.Errorf("arch: topology %q: sync edge {%s, %s} names an unknown domain", t.Name, e[0], e[1])
		}
		if a == b {
			return fmt.Errorf("arch: topology %q: sync edge {%s, %s} connects a domain to itself", t.Name, e[0], e[1])
		}
		edges[edgeKey(a, b)] = true
	}
	for _, p := range resourcePairs {
		a, b := t.resDom[p[0]], t.resDom[p[1]]
		if a == b || a == ext || b == ext {
			continue
		}
		if !edges[edgeKey(a, b)] {
			return fmt.Errorf("arch: topology %q: missing sync edge between %q and %q (crossed by %s→%s)",
				t.Name, t.Domains[a].Name, t.Domains[b].Name, p[0], p[1])
		}
	}
	return nil
}

// normalize fills a spec's zero DVFS-envelope fields with the paper
// defaults.
func (d *DomainSpec) normalize() {
	if d.FMinMHz == 0 {
		d.FMinMHz = dvfs.FMinMHz
	}
	if d.FMaxMHz == 0 {
		d.FMaxMHz = dvfs.FMaxMHz
	}
	if d.VMin == 0 {
		d.VMin = dvfs.VMin
	}
	if d.VMax == 0 {
		d.VMax = dvfs.VMax
	}
	if d.RampPsPerMHz == 0 {
		d.RampPsPerMHz = dvfs.RampPsPerMHz
	}
}

func edgeKey(a, b Domain) [2]Domain {
	if a > b {
		a, b = b, a
	}
	return [2]Domain{a, b}
}

// NumDomains returns the number of domains, external included.
func (t *Topology) NumDomains() int { return len(t.Domains) }

// NumScalable returns the number of DVFS domains; they occupy indices
// [0, NumScalable).
func (t *Topology) NumScalable() int { return t.numScalable }

// DomainOf returns the domain owning a resource.
func (t *Topology) DomainOf(r Resource) Domain { return t.resDom[r] }

// Spec returns the domain's declaration.
func (t *Topology) Spec(d Domain) *DomainSpec { return &t.Domains[d] }

// External returns the index of the non-scalable external memory domain.
func (t *Topology) External() Domain { return Domain(len(t.Domains) - 1) }

// ScalableOf reports whether domain index d is a DVFS domain.
func (t *Topology) ScalableOf(d Domain) bool { return int(d) < t.numScalable }

// PowerFactors returns the per-scalable-domain shaker power factors in
// domain order.
func (t *Topology) PowerFactors() []float64 {
	out := make([]float64, t.numScalable)
	for i := range out {
		out[i] = t.Domains[i].PowerFactor
	}
	return out
}

// Uniform reports whether every scalable domain shares one DVFS
// envelope, and returns it (the default envelope when there are no
// scalable domains, which Validate rules out).
func (t *Topology) Uniform() (dvfs.Scale, bool) {
	sc := dvfs.DefaultScale()
	for i := 0; i < t.numScalable; i++ {
		s := t.Domains[i].Scale()
		if i == 0 {
			sc = s
		} else if s != sc {
			return dvfs.DefaultScale(), false
		}
	}
	return sc, true
}

// DomainNames returns every domain name in index order.
func (t *Topology) DomainNames() []string {
	out := make([]string, len(t.Domains))
	for i := range t.Domains {
		out[i] = t.Domains[i].Name
	}
	return out
}

// DefaultName names the paper's 4-domain topology; an empty topology
// name in a configuration means this one, and the two canonicalize to
// the same cache keys.
const DefaultName = "paper4"

var topologies = make(map[string]*Topology)
var topologyOrder []string

// RegisterTopology validates and registers a topology under its name;
// duplicate names and invalid topologies panic (programming error —
// built-ins and init-time extensions only).
func RegisterTopology(t *Topology) {
	if err := t.Validate(); err != nil {
		panic(err.Error())
	}
	if _, dup := topologies[t.Name]; dup {
		panic("arch: duplicate topology " + t.Name)
	}
	topologies[t.Name] = t
	topologyOrder = append(topologyOrder, t.Name)
}

// TopologyByName resolves a registered topology; the empty name means
// the default. Unknown names return an error listing every registered
// topology.
func TopologyByName(name string) (*Topology, error) {
	if name == "" {
		name = DefaultName
	}
	if t, ok := topologies[name]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("arch: unknown topology %q (registered: %s)", name, namesList())
}

// MustTopology is TopologyByName for callers whose name was already
// validated; it panics on unknown names.
func MustTopology(name string) *Topology {
	t, err := TopologyByName(name)
	if err != nil {
		panic(err.Error())
	}
	return t
}

// Default returns the paper's 4-domain topology.
func Default() *Topology { return topologies[DefaultName] }

// CanonicalTopologyName maps the default topology's explicit name to
// the empty string, so configurations naming it hash identically to
// configurations omitting it.
func CanonicalTopologyName(name string) string {
	if name == DefaultName {
		return ""
	}
	return name
}

// TopologyNames returns every registered topology name in registration
// order (built-ins first).
func TopologyNames() []string {
	out := make([]string, len(topologyOrder))
	copy(out, topologyOrder)
	return out
}

func namesList() string {
	names := TopologyNames()
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}
