// Package arch defines the architectural vocabulary shared by every layer
// of the MCD (Multiple Clock Domain) simulator: the set of clock domains
// and their roles, following Semeraro et al. (HPCA 2002) and Magklis et
// al. (ISCA 2003), Figure 1.
package arch

import "fmt"

// Domain indexes one of the independently clocked regions of the MCD
// processor within its Topology's domain list. The named constants
// below are the indices of the *default* (paper4) topology: the first
// four are on-chip and scalable; External models main memory, which
// always runs at full speed. Code driven by an arbitrary topology must
// size and resolve domains through the Topology, not these constants.
type Domain uint8

const (
	// FrontEnd contains the fetch unit, L1 I-cache, branch predictor,
	// reorder buffer, rename and dispatch logic.
	FrontEnd Domain = iota
	// Integer contains the integer issue queue, ALUs and register file.
	Integer
	// FP contains the floating-point issue queue, ALUs and register file.
	FP
	// Memory contains the load/store unit, L1 D-cache and unified L2.
	Memory
	// External models off-chip main memory; it is not voltage-scaled.
	External

	// NumDomains is the number of domains, including External.
	NumDomains = 5
	// NumScalable is the number of on-chip domains subject to DVFS.
	NumScalable = 4
)

var domainNames = [NumDomains]string{"front-end", "integer", "fp", "memory", "external"}

// String returns the lower-case conventional name of the domain.
func (d Domain) String() string {
	if int(d) < len(domainNames) {
		return domainNames[d]
	}
	return fmt.Sprintf("domain(%d)", uint8(d))
}

// Scalable reports whether the domain participates in dynamic voltage and
// frequency scaling.
func (d Domain) Scalable() bool { return d < External }

// Domains returns all five domains in canonical order.
func Domains() [NumDomains]Domain {
	return [NumDomains]Domain{FrontEnd, Integer, FP, Memory, External}
}

// ScalableDomains returns the four on-chip scalable domains.
func ScalableDomains() [NumScalable]Domain {
	return [NumScalable]Domain{FrontEnd, Integer, FP, Memory}
}
