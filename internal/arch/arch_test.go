package arch

import "testing"

func TestDomainNames(t *testing.T) {
	want := map[Domain]string{
		FrontEnd: "front-end",
		Integer:  "integer",
		FP:       "fp",
		Memory:   "memory",
		External: "external",
	}
	for d, name := range want {
		if d.String() != name {
			t.Errorf("%d.String() = %q, want %q", d, d.String(), name)
		}
	}
	if got := Domain(99).String(); got != "domain(99)" {
		t.Errorf("out-of-range String = %q", got)
	}
}

func TestScalable(t *testing.T) {
	for _, d := range ScalableDomains() {
		if !d.Scalable() {
			t.Errorf("%v should be scalable", d)
		}
	}
	if External.Scalable() {
		t.Error("external memory must not be scalable")
	}
}

func TestDomainCounts(t *testing.T) {
	if len(Domains()) != NumDomains {
		t.Errorf("Domains() has %d entries", len(Domains()))
	}
	if len(ScalableDomains()) != NumScalable {
		t.Errorf("ScalableDomains() has %d entries", len(ScalableDomains()))
	}
	if NumScalable != NumDomains-1 {
		t.Error("exactly one domain (external) must be unscalable")
	}
}
