package bpred

import (
	"math/rand"
	"testing"
)

func TestAlwaysTakenLearned(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		p.Lookup(0x1000, true)
	}
	before := p.Mispredicts
	for i := 0; i < 1000; i++ {
		p.Lookup(0x1000, true)
	}
	if p.Mispredicts != before {
		t.Errorf("steady always-taken branch mispredicted %d times", p.Mispredicts-before)
	}
}

func TestAlternatingLearnedByPAg(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 200; i++ { // warmup
		p.Lookup(0x2000, i%2 == 0)
	}
	before := p.Mispredicts
	for i := 200; i < 2000; i++ {
		p.Lookup(0x2000, i%2 == 0)
	}
	rate := float64(p.Mispredicts-before) / 1800
	if rate > 0.02 {
		t.Errorf("alternating pattern mispredict rate %.3f, want near 0", rate)
	}
}

func TestPeriodicPatternLearned(t *testing.T) {
	// Taken except every 5th occurrence: within the 10-bit history reach.
	p := New(DefaultConfig())
	for i := 0; i < 500; i++ {
		p.Lookup(0x3000, i%5 != 4)
	}
	before := p.Mispredicts
	for i := 500; i < 5000; i++ {
		p.Lookup(0x3000, i%5 != 4)
	}
	rate := float64(p.Mispredicts-before) / 4500
	if rate > 0.05 {
		t.Errorf("period-5 pattern mispredict rate %.3f", rate)
	}
}

func TestRandomBranchNearChance(t *testing.T) {
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20_000; i++ {
		p.Lookup(0x4000, rng.Float64() < 0.5)
	}
	rate := p.MispredictRate()
	if rate < 0.35 || rate > 0.65 {
		t.Errorf("random branch mispredict rate = %.3f, want near 0.5", rate)
	}
}

func TestIndependentHistories(t *testing.T) {
	// Two branches with different patterns must not destroy each other
	// (they map to different PAg level-1 entries).
	p := New(DefaultConfig())
	for i := 0; i < 3000; i++ {
		p.Lookup(0x5000, true)
		p.Lookup(0x5004, i%2 == 0)
	}
	before := p.Mispredicts
	for i := 0; i < 3000; i++ {
		p.Lookup(0x5000, true)
		p.Lookup(0x5004, i%2 == 0)
	}
	rate := float64(p.Mispredicts-before) / 6000
	if rate > 0.02 {
		t.Errorf("interleaved patterns mispredict rate %.3f", rate)
	}
}

func TestBTBFirstTakenMisses(t *testing.T) {
	p := New(DefaultConfig())
	// Train the direction predictor on an always-taken alias first so the
	// prediction is "taken" immediately for a new PC.
	for i := 0; i < 50; i++ {
		p.Lookup(0x6000, true)
	}
	missesBefore := p.BTBMisses
	p.Lookup(0x6000+uint32(DefaultConfig().BimodalSize)*4, true)
	_ = missesBefore // BTB behaviour: the very first taken encounter of a
	// PC cannot have a target; over a run this shows up as BTBMisses > 0.
	p2 := New(DefaultConfig())
	for pc := uint32(0); pc < 64; pc++ {
		for i := 0; i < 10; i++ {
			p2.Lookup(0x7000+pc*4, true)
		}
	}
	if p2.BTBMisses == 0 {
		t.Error("expected some BTB misses on first-taken branches")
	}
	if p2.BTBMisses > 200 {
		t.Errorf("BTB misses = %d, want only cold misses", p2.BTBMisses)
	}
}

func TestLookupCountsStats(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		p.Lookup(0x100, true)
	}
	if p.Lookups != 10 {
		t.Errorf("Lookups = %d", p.Lookups)
	}
	if p.MispredictRate() < 0 || p.MispredictRate() > 1 {
		t.Errorf("rate out of range: %v", p.MispredictRate())
	}
}

func TestZeroLookupsRate(t *testing.T) {
	p := New(DefaultConfig())
	if p.MispredictRate() != 0 {
		t.Error("empty predictor rate must be 0")
	}
}
