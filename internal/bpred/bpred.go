// Package bpred implements the branch prediction hardware of the
// simulated core (paper Table 1): a combination of a bimodal predictor
// and a 2-level PAg predictor selected by a combining chooser, plus a
// 4096-set 2-way BTB. The mispredict penalty is applied by the pipeline,
// not here.
package bpred

// Config sizes the predictor structures.
type Config struct {
	BimodalSize int // bimodal 2-bit counter table entries
	Level1Size  int // PAg per-branch history table entries
	HistoryBits int // history length
	Level2Size  int // PAg pattern table entries
	ChooserSize int // combining predictor entries
	BTBSets     int
	BTBWays     int
}

// DefaultConfig returns the Table 1 configuration: bimodal 1024, PAg
// L1 1024 x 10-bit history, L2 1024, chooser 4096, BTB 4096 sets 2-way.
func DefaultConfig() Config {
	return Config{
		BimodalSize: 1024,
		Level1Size:  1024,
		HistoryBits: 10,
		Level2Size:  1024,
		ChooserSize: 4096,
		BTBSets:     4096,
		BTBWays:     2,
	}
}

// Predictor is the combined branch predictor. It is not safe for
// concurrent use.
type Predictor struct {
	cfg     Config
	bimodal []uint8 // 2-bit saturating counters
	history []uint16
	pattern []uint8
	chooser []uint8 // 2-bit: >=2 favors PAg
	// btbTag is the flat sets*ways tag array: set s occupies
	// btbTag[s*ways : (s+1)*ways]. One allocation instead of one per set.
	btbTag []uint32
	btbLRU []uint8

	// Index masks, valid when the corresponding table size is a power of
	// two (the Table 1 configuration); -1 selects the modulo path. The
	// tables are indexed several times per branch, and a runtime integer
	// division costs more than the prediction arithmetic it feeds.
	biMask, l1Mask, l2Mask, chMask, btbMask int

	// Statistics.
	Lookups     int64
	Mispredicts int64
	BTBMisses   int64
}

// New returns a predictor with all counters weakly not-taken.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]uint8, cfg.BimodalSize),
		history: make([]uint16, cfg.Level1Size),
		pattern: make([]uint8, cfg.Level2Size),
		chooser: make([]uint8, cfg.ChooserSize),
		btbLRU:  make([]uint8, cfg.BTBSets),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1
	}
	for i := range p.pattern {
		p.pattern[i] = 1
	}
	for i := range p.chooser {
		p.chooser[i] = 2
	}
	p.btbTag = make([]uint32, cfg.BTBSets*cfg.BTBWays)
	p.biMask = maskFor(cfg.BimodalSize)
	p.l1Mask = maskFor(cfg.Level1Size)
	p.l2Mask = maskFor(cfg.Level2Size)
	p.chMask = maskFor(cfg.ChooserSize)
	p.btbMask = maskFor(cfg.BTBSets)
	return p
}

// maskFor returns n-1 when n is a power of two, else -1.
func maskFor(n int) int {
	if n > 0 && n&(n-1) == 0 {
		return n - 1
	}
	return -1
}

// tblIndex reduces a non-negative key to [0, size), by mask when size
// is a power of two.
func tblIndex(key, size, mask int) int {
	if mask >= 0 {
		return key & mask
	}
	return key % size
}

func taken(counter uint8) bool { return counter >= 2 }

func bump(counter uint8, t bool) uint8 {
	if t {
		if counter < 3 {
			return counter + 1
		}
		return counter
	}
	if counter > 0 {
		return counter - 1
	}
	return 0
}

func (p *Predictor) pagIndex(pc uint32) (l1 int, l2 int) {
	l1 = tblIndex(int(pc>>2), p.cfg.Level1Size, p.l1Mask)
	hist := int(p.history[l1]) & ((1 << p.cfg.HistoryBits) - 1)
	l2 = tblIndex(hist, p.cfg.Level2Size, p.l2Mask)
	return
}

// Lookup predicts the outcome of the branch at pc and updates all
// predictor state with the actual outcome (actualTaken), returning
// whether the prediction was wrong. A taken branch that misses in the
// BTB also counts as a misprediction, since the front end cannot
// redirect without a target.
func (p *Predictor) Lookup(pc uint32, actualTaken bool) (mispredict bool) {
	p.Lookups++
	bi := tblIndex(int(pc>>2), p.cfg.BimodalSize, p.biMask)
	l1, l2 := p.pagIndex(pc)
	ch := tblIndex(int(pc>>2), p.cfg.ChooserSize, p.chMask)

	bimodalPred := taken(p.bimodal[bi])
	pagPred := taken(p.pattern[l2])
	pred := bimodalPred
	usePag := taken(p.chooser[ch])
	if usePag {
		pred = pagPred
	}

	// BTB check for predicted-taken branches.
	if pred && actualTaken {
		if !p.btbProbe(pc) {
			p.BTBMisses++
			mispredict = true
		}
	}
	if pred != actualTaken {
		mispredict = true
	}
	if mispredict {
		p.Mispredicts++
	}

	// Update chooser only when the component predictors disagree.
	if bimodalPred != pagPred {
		p.chooser[ch] = bump(p.chooser[ch], pagPred == actualTaken)
	}
	p.bimodal[bi] = bump(p.bimodal[bi], actualTaken)
	p.pattern[l2] = bump(p.pattern[l2], actualTaken)
	h := p.history[l1] << 1
	if actualTaken {
		h |= 1
	}
	p.history[l1] = h & ((1 << p.cfg.HistoryBits) - 1)
	if actualTaken {
		p.btbInsert(pc)
	}
	return mispredict
}

func (p *Predictor) btbProbe(pc uint32) bool {
	set := tblIndex(int(pc>>2), p.cfg.BTBSets, p.btbMask)
	ways := p.btbTag[set*p.cfg.BTBWays : (set+1)*p.cfg.BTBWays]
	for w, tag := range ways {
		if tag == pc {
			if p.cfg.BTBWays == 2 {
				p.btbLRU[set] = uint8(w)
			}
			return true
		}
	}
	return false
}

func (p *Predictor) btbInsert(pc uint32) {
	set := tblIndex(int(pc>>2), p.cfg.BTBSets, p.btbMask)
	ways := p.btbTag[set*p.cfg.BTBWays : (set+1)*p.cfg.BTBWays]
	for w, tag := range ways {
		if tag == pc {
			p.btbLRU[set] = uint8(w)
			return
		}
	}
	victim := 0
	if p.cfg.BTBWays == 2 {
		victim = 1 - int(p.btbLRU[set])
	}
	ways[victim] = pc
	p.btbLRU[set] = uint8(victim)
}

// MispredictRate returns the fraction of lookups that mispredicted.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}
