package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/serve/wire"
	"repro/internal/sweep"
)

// apiError is the structured error every endpoint returns on failure —
// wire.Error (a machine-readable code, a human message identical to
// what the CLI prints for the same mistake, and the offending field)
// plus the HTTP transport details.
type apiError struct {
	Code    string
	Message string
	Field   string

	status     int
	retryAfter int
}

// fromValidation maps the shared validator's structured error onto the
// wire shape, choosing the HTTP status by code: parse failures are 400,
// semantic failures 422. Code, message and field pass through verbatim,
// so the daemon's error body and the CLI's stderr line carry the same
// triple for the same mistake.
func fromValidation(v *sweep.ValidationError) *apiError {
	status := http.StatusUnprocessableEntity
	if v.Code == sweep.ErrBadJSON {
		status = http.StatusBadRequest
	}
	return &apiError{status: status, Code: v.Code, Message: v.Message, Field: v.Field}
}

// writeError emits a structured JSON error with its HTTP status and,
// for backpressure rejections, a Retry-After header.
func writeError(w http.ResponseWriter, e *apiError) {
	w.Header().Set("Content-Type", "application/json")
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	w.WriteHeader(e.status)
	json.NewEncoder(w).Encode(wire.ErrorBody{Err: wire.Error{Code: e.Code, Message: e.Message, Field: e.Field}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// maxFrameBytes bounds one protocol frame (registration, lease
// request, completion report); result payloads travel through the
// cache-sync endpoints, not frames, so frames stay small.
const maxFrameBytes = 1 << 20

// readFrame decodes one strict, versioned protocol frame from the
// request body into v, answering the structured error itself when the
// frame is oversized, malformed, carries unknown fields, or declares a
// protocol version this server does not speak.
func readFrame(w http.ResponseWriter, req *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxFrameBytes+1))
	if err != nil {
		writeError(w, &apiError{status: http.StatusBadRequest, Code: wire.CodeBadRequest, Message: err.Error()})
		return false
	}
	if len(body) > maxFrameBytes {
		writeError(w, &apiError{status: http.StatusRequestEntityTooLarge, Code: wire.CodeBadRequest,
			Message: fmt.Sprintf("frame exceeds %d bytes", maxFrameBytes)})
		return false
	}
	if werr := wire.DecodeStrict(body, v); werr != nil {
		writeError(w, &apiError{status: http.StatusBadRequest, Code: werr.Code, Message: werr.Message, Field: werr.Field})
		return false
	}
	return true
}

// validateManifest parses and validates a submission body through the
// shared validator (sweep.ParseManifest + sweep.ValidateManifest) — the
// same code path `mcdsweep` runs on a manifest file — so an unknown
// topology, policy or scheme reports the same registered-name listing
// over the API as the CLI prints on stderr.
func validateManifest(body []byte) (*sweep.Manifest, []sweep.Job, *apiError) {
	m, verr := sweep.ParseManifest(body)
	if verr != nil {
		return nil, nil, fromValidation(verr)
	}
	jobs, verr := sweep.ValidateManifest(m)
	if verr != nil {
		return nil, nil, fromValidation(verr)
	}
	return m, jobs, nil
}

// Handler returns the server's HTTP API:
//
//	POST /v1/sweeps                    submit a manifest; 202 + Status (200 when joining an existing sweep)
//	GET  /v1/sweeps/{id}               progress snapshot
//	GET  /v1/sweeps/{id}/stream        NDJSON job completions (?from=N resumes), terminated by {"done":true,...}
//	GET  /v1/sweeps/{id}/results       merged results, byte-identical to `mcdsweep merge`
//	GET  /v1/sweeps/{id}/trace         NDJSON execution spans (?from=N resumes; requires -trace)
//	POST /v1/workers                   register a fleet worker (coordinator mode)
//	POST /v1/leases                    request the next anchor group (long poll)
//	POST /v1/leases/{id}/heartbeat     keep a lease alive
//	POST /v1/leases/{id}/complete      report a lease's jobs done
//	GET/PUT /v1/cache/{key}            fetch/upload one result-cache entry by content-addressed key
//	PUT  /v1/segments                  upload one columnar result segment (a whole lease's rows in one request)
//	GET/PUT /v1/artifacts/{key}        fetch/upload one artifact-store entry by content-addressed key
//	GET  /healthz                      liveness + drain state
//	GET  /metrics                      Prometheus text format
//
// Every request and response body is a versioned wire frame (see
// internal/serve/wire); the fleet endpoints answer fleet_disabled on a
// daemon not started as a coordinator.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/sweeps/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/workers", s.handleRegister)
	mux.HandleFunc("POST /v1/leases", s.handleLease)
	mux.HandleFunc("POST /v1/leases/{id}/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /v1/leases/{id}/complete", s.handleComplete)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleGetCache)
	mux.HandleFunc("PUT /v1/cache/{key}", s.handlePutCache)
	mux.HandleFunc("PUT /v1/segments", s.handlePutSegment)
	mux.HandleFunc("GET /v1/artifacts/{key}", s.handleGetArtifact)
	mux.HandleFunc("PUT /v1/artifacts/{key}", s.handlePutArtifact)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// maxManifestBytes bounds a submission body; a grid that needs more
// JSON than this should be split, and truncating silently would turn
// the mistake into a misleading syntax error.
const maxManifestBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxManifestBytes+1))
	if err != nil {
		writeError(w, &apiError{status: http.StatusBadRequest, Code: wire.CodeBadRequest, Message: err.Error()})
		return
	}
	if len(body) > maxManifestBytes {
		writeError(w, &apiError{status: http.StatusRequestEntityTooLarge, Code: "manifest_too_large",
			Message: fmt.Sprintf("manifest exceeds %d bytes; split the grid", maxManifestBytes)})
		return
	}
	m, jobs, apiErr := validateManifest(body)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	r, created, apiErr := s.submit(m, jobs)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	w.Header().Set("Location", "/v1/sweeps/"+r.id)
	status := http.StatusOK
	if created {
		status = http.StatusAccepted
	}
	writeJSON(w, status, r.status())
}

func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request) {
	r := s.sweepByID(req.PathValue("id"))
	if r == nil {
		writeError(w, &apiError{status: http.StatusNotFound, Code: "unknown_sweep",
			Message: fmt.Sprintf("no sweep %q (sweeps are not persisted across restarts; resubmit the manifest — cached jobs cost nothing)", req.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, r.status())
}

func (s *Server) handleStream(w http.ResponseWriter, req *http.Request) {
	r := s.sweepByID(req.PathValue("id"))
	if r == nil {
		writeError(w, &apiError{status: http.StatusNotFound, Code: "unknown_sweep",
			Message: fmt.Sprintf("no sweep %q", req.PathValue("id"))})
		return
	}
	from := 0
	if q := req.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, &apiError{status: http.StatusBadRequest, Code: wire.CodeBadRequest,
				Message: fmt.Sprintf("invalid from=%q", q)})
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evs, done, wait := r.next(from)
		for i := range evs {
			if err := enc.Encode(&evs[i]); err != nil {
				return
			}
		}
		from += len(evs)
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			enc.Encode(wire.StreamEnd{Versioned: wire.Stamp(), Done: true, Status: r.status()})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-wait:
		case <-req.Context().Done():
			return
		}
	}
}

func (s *Server) handleResults(w http.ResponseWriter, req *http.Request) {
	r := s.sweepByID(req.PathValue("id"))
	if r == nil {
		writeError(w, &apiError{status: http.StatusNotFound, Code: "unknown_sweep",
			Message: fmt.Sprintf("no sweep %q", req.PathValue("id"))})
		return
	}
	st := r.status()
	switch st.State {
	case StateRunning:
		writeError(w, &apiError{status: http.StatusConflict, Code: "sweep_incomplete",
			Message: fmt.Sprintf("sweep %s still running (%d/%d jobs done)", r.id, st.Done, st.Jobs)})
		return
	case StateFailed:
		writeError(w, &apiError{status: http.StatusConflict, Code: "sweep_failed",
			Message: fmt.Sprintf("sweep %s failed: %s", r.id, st.Error)})
		return
	}
	format := req.URL.Query().Get("format")
	if format != "" && format != "ndjson" {
		writeError(w, &apiError{status: http.StatusBadRequest, Code: wire.CodeBadRequest, Field: "format",
			Message: fmt.Sprintf("unknown format %q (only \"ndjson\")", format)})
		return
	}
	// Reassemble from the persistent cache — columnar segments first,
	// per-job JSON as fallback — streaming row by row, so the daemon's
	// memory stays bounded however large the sweep. The default document
	// goes through the one canonical merge serialization, so served
	// bytes are identical to the CLI's merge output by construction; the
	// completeness check runs before any output so an incomplete cache
	// is still a clean structured error.
	s.segments.Refresh()
	src := sweep.MergeSource{Cache: s.cache, Segments: s.segments}
	if err := sweep.MergeCheck(r.cfg, r.jobs, src); err != nil {
		writeError(w, &apiError{status: http.StatusInternalServerError, Code: "merge_failed",
			Message: err.Error()})
		return
	}
	if format == "ndjson" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		sweep.MergeNDJSON(w, r.cfg, r.jobs, src)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	sweep.MergeTo(w, r.cfg, r.jobs, src)
}

// handleTrace streams a sweep's execution spans as NDJSON: the tracer
// ring filtered to the sweep's reachable key closure (keyless spans —
// seals, batch-internal bookkeeping — are always included), terminated
// by a {"done":true,"next":N,"dropped":D} line. ?from=N resumes from a
// previous response's next, the same contract as /stream — a span ring
// is append-only, so re-reading from a sequence is cheap and exact.
func (s *Server) handleTrace(w http.ResponseWriter, req *http.Request) {
	r := s.sweepByID(req.PathValue("id"))
	if r == nil {
		writeError(w, &apiError{status: http.StatusNotFound, Code: "unknown_sweep",
			Message: fmt.Sprintf("no sweep %q", req.PathValue("id"))})
		return
	}
	if s.Trace == nil {
		writeError(w, &apiError{status: http.StatusNotFound, Code: "trace_disabled",
			Message: "tracing is off; start the daemon with -trace"})
		return
	}
	var from uint64
	if q := req.URL.Query().Get("from"); q != "" {
		n, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, &apiError{status: http.StatusBadRequest, Code: wire.CodeBadRequest,
				Message: fmt.Sprintf("invalid from=%q", q)})
			return
		}
		from = n
	}
	// The filter is the sweep's reachable closure: result keys (jobs and
	// their result dependencies), trained-profile keys, and packed-stream
	// keys. Span identity never feeds any of those keys — this is a
	// read-side projection only.
	keep := func(string) bool { return true }
	if results, artifacts, streams, err := sweep.Reachable(r.cfg, r.jobs); err == nil {
		keep = func(k string) bool {
			return k == "" || results[k] || artifacts[k] || streams[k]
		}
	}
	spans, next, dropped := s.Trace.Snapshot(from)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for i := range spans {
		if !keep(spans[i].Key) {
			continue
		}
		if err := enc.Encode(&spans[i]); err != nil {
			return
		}
	}
	enc.Encode(struct {
		Done    bool   `json:"done"`
		Next    uint64 `json:"next"`
		Dropped uint64 `json:"dropped"`
	}{true, next, dropped})
}

// fleetOr404 returns the coordinator state, answering the structured
// fleet_disabled error when this daemon was not started with -fleet.
func (s *Server) fleetOr404(w http.ResponseWriter) *fleet {
	if s.fleetState == nil {
		writeError(w, &apiError{status: http.StatusNotFound, Code: wire.CodeFleetDisabled,
			Message: "this daemon is not a fleet coordinator; start it with -fleet"})
		return nil
	}
	return s.fleetState
}

func (s *Server) handleRegister(w http.ResponseWriter, req *http.Request) {
	f := s.fleetOr404(w)
	if f == nil {
		return
	}
	var rr wire.RegisterRequest
	if !readFrame(w, req, &rr) {
		return
	}
	writeJSON(w, http.StatusOK, f.register(rr.Name))
}

func (s *Server) handleLease(w http.ResponseWriter, req *http.Request) {
	f := s.fleetOr404(w)
	if f == nil {
		return
	}
	var lr wire.LeaseRequest
	if !readFrame(w, req, &lr) {
		return
	}
	l, apiErr := f.grant(req.Context().Done(), lr.WorkerID, time.Duration(lr.WaitMS)*time.Millisecond)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, wire.LeaseResponse{Versioned: wire.Stamp(), Lease: l})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, req *http.Request) {
	f := s.fleetOr404(w)
	if f == nil {
		return
	}
	var hr wire.HeartbeatRequest
	if !readFrame(w, req, &hr) {
		return
	}
	ttl, apiErr := f.heartbeat(req.PathValue("id"), hr.WorkerID)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, wire.HeartbeatResponse{Versioned: wire.Stamp(), DeadlineMS: ttl.Milliseconds()})
}

func (s *Server) handleComplete(w http.ResponseWriter, req *http.Request) {
	f := s.fleetOr404(w)
	if f == nil {
		return
	}
	var cr wire.CompleteRequest
	if !readFrame(w, req, &cr) {
		return
	}
	if apiErr := f.complete(req.PathValue("id"), cr.WorkerID, cr.Jobs, cr.Spans); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, wire.CompleteResponse{Versioned: wire.Stamp()})
}

// validKey reports whether key is a well-formed content-addressed key
// (64 lowercase hex characters) — the guard that keeps the sync
// endpoints from ever touching a path outside their fan-out dirs.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func badKey(w http.ResponseWriter, key string) {
	writeError(w, &apiError{status: http.StatusBadRequest, Code: wire.CodeBadRequest, Field: "key",
		Message: fmt.Sprintf("%.16q is not a content-addressed key (64 hex characters)", key)})
}

// maxEntryBytes bounds one uploaded cache or artifact entry.
const maxEntryBytes = 1 << 26

// serveEntryFile streams one content-addressed entry file verbatim —
// the stored bytes are already the canonical serialization, so the
// download side of sync is a plain file read.
func serveEntryFile(w http.ResponseWriter, path, key string) {
	b, err := os.ReadFile(path)
	if err != nil {
		status, code := http.StatusInternalServerError, "entry_unreadable"
		if errors.Is(err, fs.ErrNotExist) {
			status, code = http.StatusNotFound, "unknown_key"
		}
		writeError(w, &apiError{status: status, Code: code,
			Message: fmt.Sprintf("entry %.12s: %v", key, err)})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

func readEntryBody(w http.ResponseWriter, req *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxEntryBytes+1))
	if err != nil {
		writeError(w, &apiError{status: http.StatusBadRequest, Code: wire.CodeBadRequest, Message: err.Error()})
		return nil, false
	}
	if len(body) > maxEntryBytes {
		writeError(w, &apiError{status: http.StatusRequestEntityTooLarge, Code: "entry_too_large",
			Message: fmt.Sprintf("entry exceeds %d bytes", maxEntryBytes)})
		return nil, false
	}
	return body, true
}

func (s *Server) handleGetCache(w http.ResponseWriter, req *http.Request) {
	if s.fleetOr404(w) == nil {
		return
	}
	key := req.PathValue("key")
	if !validKey(key) {
		badKey(w, key)
		return
	}
	serveEntryFile(w, s.cache.EntryPath(key), key)
}

func (s *Server) handlePutCache(w http.ResponseWriter, req *http.Request) {
	f := s.fleetOr404(w)
	if f == nil {
		return
	}
	key := req.PathValue("key")
	if !validKey(key) {
		badKey(w, key)
		return
	}
	body, ok := readEntryBody(w, req)
	if !ok {
		return
	}
	// Serialize uploads so concurrent workers racing on one key settle
	// to exactly one write; an entry the coordinator already holds is
	// byte-identical by construction (deterministic serialization of
	// content-addressed state), so re-uploads are acknowledged without
	// touching disk.
	f.upMu.Lock()
	defer f.upMu.Unlock()
	if _, exists := s.cache.Get(key); !exists {
		if err := s.cache.PutRaw(key, body); err != nil {
			writeError(w, &apiError{status: http.StatusBadRequest, Code: wire.CodeBadRequest, Message: err.Error()})
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// handlePutSegment ingests one columnar segment — the worker's whole
// lease result set in a single request. The coordinator re-encodes
// every row through its own codec: each row lands in the JSON cache via
// Cache.Put (so the stored entry is byte-identical to the one the
// worker's local cache holds — the same deterministic serialization of
// the same key/job/outcome) and in the coordinator's own segment layer
// via Append. A damaged upload is rejected whole by the segment
// checksums before anything is written.
func (s *Server) handlePutSegment(w http.ResponseWriter, req *http.Request) {
	f := s.fleetOr404(w)
	if f == nil {
		return
	}
	body, ok := readEntryBody(w, req)
	if !ok {
		return
	}
	rows, err := sweep.DecodeSegmentRows(body)
	if err != nil {
		writeError(w, &apiError{status: http.StatusBadRequest, Code: wire.CodeBadRequest,
			Message: fmt.Sprintf("segment: %v", err)})
		return
	}
	// Same single-writer discipline as the per-key upload endpoints.
	f.upMu.Lock()
	defer f.upMu.Unlock()
	for _, m := range rows {
		if _, exists := s.cache.Get(m.Key); exists {
			continue
		}
		if err := s.cache.Put(m.Key, m.Job, m.Outcome); err != nil {
			writeError(w, &apiError{status: http.StatusInternalServerError, Code: "entry_unwritable",
				Message: fmt.Sprintf("entry %.12s: %v", m.Key, err)})
			return
		}
	}
	if err := s.segments.Append(rows); err != nil {
		writeError(w, &apiError{status: http.StatusInternalServerError, Code: "entry_unwritable",
			Message: fmt.Sprintf("segment: %v", err)})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleGetArtifact(w http.ResponseWriter, req *http.Request) {
	if s.fleetOr404(w) == nil {
		return
	}
	key := req.PathValue("key")
	if !validKey(key) {
		badKey(w, key)
		return
	}
	serveEntryFile(w, s.artifacts.EntryPath(key), key)
}

func (s *Server) handlePutArtifact(w http.ResponseWriter, req *http.Request) {
	f := s.fleetOr404(w)
	if f == nil {
		return
	}
	key := req.PathValue("key")
	if !validKey(key) {
		badKey(w, key)
		return
	}
	body, ok := readEntryBody(w, req)
	if !ok {
		return
	}
	declared, kind, err := artifactEntryInfo(body)
	if err != nil {
		writeError(w, &apiError{status: http.StatusBadRequest, Code: wire.CodeBadRequest, Message: err.Error()})
		return
	}
	if declared != key {
		writeError(w, &apiError{status: http.StatusBadRequest, Code: wire.CodeBadRequest, Field: "key",
			Message: fmt.Sprintf("entry declares key %.12s, URL names %.12s", declared, key)})
		return
	}
	// Same dedup discipline as the cache side: exactly one write per
	// key, so the store's write counter keeps meaning "trainings
	// persisted fleet-wide" (the train-once observable).
	f.upMu.Lock()
	defer f.upMu.Unlock()
	if !s.artifacts.Has(key, kind) {
		if _, err := s.artifacts.PutRaw(body); err != nil {
			writeError(w, &apiError{status: http.StatusBadRequest, Code: wire.CodeBadRequest, Message: err.Error()})
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// artifactEntryInfo peeks at a serialized artifact entry's declared key
// and kind (full validation happens in the store's PutRaw).
func artifactEntryInfo(raw []byte) (key, kind string, err error) {
	var e struct {
		Key  string `json:"key"`
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(raw, &e); err != nil {
		return "", "", fmt.Errorf("artifact entry: %w", err)
	}
	return e.Key, e.Kind, nil
}

// healthz is the liveness body.
type healthz struct {
	OK       bool    `json:"ok"`
	Draining bool    `json:"draining"`
	Sweeps   int     `json:"sweeps"`
	UptimeS  float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, healthz{
		OK:       true,
		Draining: s.draining.Load(),
		Sweeps:   s.sweepCount(),
		UptimeS:  s.metrics.uptime().Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	var fg fleetGauges
	if s.fleetState != nil {
		fg = s.fleetState.gauges()
	}
	s.metrics.render(w, poolGauges{
		queued:        s.pool.Queued(),
		running:       s.pool.Running(),
		pending:       int(s.pending.Load()),
		capacity:      s.QueueDepth,
		draining:      s.draining.Load(),
		artifactLoads: s.artifacts.Loads(),
		artifactHits:  s.artifacts.Hits(),
		artifactW:     s.artifacts.Writes(),
	}, fg)
}
