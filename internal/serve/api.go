package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/sweep"
)

// apiError is the structured error every endpoint returns on failure:
// a machine-readable code, a human message (identical to what the CLI
// prints for the same mistake), and, for manifest validation, the
// offending field.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`

	status     int
	retryAfter int
}

// errorBody is the wire shape: {"error": {...}}.
type errorBody struct {
	Err apiError `json:"error"`
}

// fromValidation maps the shared validator's structured error onto the
// wire shape, choosing the HTTP status by code: parse failures are 400,
// semantic failures 422. Code, message and field pass through verbatim,
// so the daemon's error body and the CLI's stderr line carry the same
// triple for the same mistake.
func fromValidation(v *sweep.ValidationError) *apiError {
	status := http.StatusUnprocessableEntity
	if v.Code == sweep.ErrBadJSON {
		status = http.StatusBadRequest
	}
	return &apiError{status: status, Code: v.Code, Message: v.Message, Field: v.Field}
}

// writeError emits a structured JSON error with its HTTP status and,
// for backpressure rejections, a Retry-After header.
func writeError(w http.ResponseWriter, e *apiError) {
	w.Header().Set("Content-Type", "application/json")
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	w.WriteHeader(e.status)
	json.NewEncoder(w).Encode(errorBody{Err: *e})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// validateManifest parses and validates a submission body through the
// shared validator (sweep.ParseManifest + sweep.ValidateManifest) — the
// same code path `mcdsweep` runs on a manifest file — so an unknown
// topology, policy or scheme reports the same registered-name listing
// over the API as the CLI prints on stderr.
func validateManifest(body []byte) (*sweep.Manifest, []sweep.Job, *apiError) {
	m, verr := sweep.ParseManifest(body)
	if verr != nil {
		return nil, nil, fromValidation(verr)
	}
	jobs, verr := sweep.ValidateManifest(m)
	if verr != nil {
		return nil, nil, fromValidation(verr)
	}
	return m, jobs, nil
}

// Handler returns the server's HTTP API:
//
//	POST /v1/sweeps              submit a manifest; 202 + Status (200 when joining an existing sweep)
//	GET  /v1/sweeps/{id}         progress snapshot
//	GET  /v1/sweeps/{id}/stream  NDJSON job completions (?from=N resumes), terminated by {"done":true,...}
//	GET  /v1/sweeps/{id}/results merged results, byte-identical to `mcdsweep merge`
//	GET  /healthz                liveness + drain state
//	GET  /metrics                Prometheus text format
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// maxManifestBytes bounds a submission body; a grid that needs more
// JSON than this should be split, and truncating silently would turn
// the mistake into a misleading syntax error.
const maxManifestBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxManifestBytes+1))
	if err != nil {
		writeError(w, &apiError{status: http.StatusBadRequest, Code: "bad_request", Message: err.Error()})
		return
	}
	if len(body) > maxManifestBytes {
		writeError(w, &apiError{status: http.StatusRequestEntityTooLarge, Code: "manifest_too_large",
			Message: fmt.Sprintf("manifest exceeds %d bytes; split the grid", maxManifestBytes)})
		return
	}
	m, jobs, apiErr := validateManifest(body)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	r, created, apiErr := s.submit(m, jobs)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	w.Header().Set("Location", "/v1/sweeps/"+r.id)
	status := http.StatusOK
	if created {
		status = http.StatusAccepted
	}
	writeJSON(w, status, r.status())
}

func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request) {
	r := s.sweepByID(req.PathValue("id"))
	if r == nil {
		writeError(w, &apiError{status: http.StatusNotFound, Code: "unknown_sweep",
			Message: fmt.Sprintf("no sweep %q (sweeps are not persisted across restarts; resubmit the manifest — cached jobs cost nothing)", req.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, r.status())
}

// streamEnd is the NDJSON stream's terminal line.
type streamEnd struct {
	Done   bool   `json:"done"`
	Status Status `json:"status"`
}

func (s *Server) handleStream(w http.ResponseWriter, req *http.Request) {
	r := s.sweepByID(req.PathValue("id"))
	if r == nil {
		writeError(w, &apiError{status: http.StatusNotFound, Code: "unknown_sweep",
			Message: fmt.Sprintf("no sweep %q", req.PathValue("id"))})
		return
	}
	from := 0
	if q := req.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, &apiError{status: http.StatusBadRequest, Code: "bad_request",
				Message: fmt.Sprintf("invalid from=%q", q)})
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evs, done, wait := r.next(from)
		for i := range evs {
			if err := enc.Encode(&evs[i]); err != nil {
				return
			}
		}
		from += len(evs)
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			enc.Encode(streamEnd{Done: true, Status: r.status()})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-wait:
		case <-req.Context().Done():
			return
		}
	}
}

func (s *Server) handleResults(w http.ResponseWriter, req *http.Request) {
	r := s.sweepByID(req.PathValue("id"))
	if r == nil {
		writeError(w, &apiError{status: http.StatusNotFound, Code: "unknown_sweep",
			Message: fmt.Sprintf("no sweep %q", req.PathValue("id"))})
		return
	}
	st := r.status()
	switch st.State {
	case StateRunning:
		writeError(w, &apiError{status: http.StatusConflict, Code: "sweep_incomplete",
			Message: fmt.Sprintf("sweep %s still running (%d/%d jobs done)", r.id, st.Done, st.Jobs)})
		return
	case StateFailed:
		writeError(w, &apiError{status: http.StatusConflict, Code: "sweep_failed",
			Message: fmt.Sprintf("sweep %s failed: %s", r.id, st.Error)})
		return
	}
	// Reassemble from the persistent cache through the one canonical
	// merge serialization, so served bytes are identical to the CLI's
	// merge output by construction.
	b, err := sweep.MergeBytes(r.cfg, r.jobs, s.cache)
	if err != nil {
		writeError(w, &apiError{status: http.StatusInternalServerError, Code: "merge_failed",
			Message: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// healthz is the liveness body.
type healthz struct {
	OK       bool    `json:"ok"`
	Draining bool    `json:"draining"`
	Sweeps   int     `json:"sweeps"`
	UptimeS  float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, healthz{
		OK:       true,
		Draining: s.draining.Load(),
		Sweeps:   s.sweepCount(),
		UptimeS:  s.metrics.uptime().Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	s.metrics.render(w, poolGauges{
		queued:        s.pool.Queued(),
		running:       s.pool.Running(),
		pending:       int(s.pending.Load()),
		capacity:      s.QueueDepth,
		draining:      s.draining.Load(),
		artifactLoads: s.artifacts.Loads(),
		artifactHits:  s.artifacts.Hits(),
		artifactW:     s.artifacts.Writes(),
	})
}
