package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve/wire"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// fleetServer wires a coordinator (EnableFleet) to an httptest server.
// The coordinator never executes jobs itself, so it carries no ExecFn.
func fleetServer(t *testing.T, dir string, fc FleetConfig) (*Server, *Client) {
	t.Helper()
	s := NewServer(dir, 2, 0)
	s.EnableFleet(fc)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, &Client{BaseURL: ts.URL}
}

// startFleetWorker runs one in-process Worker against the coordinator
// until the test ends.
func startFleetWorker(t *testing.T, baseURL, name string, fake *fakeExec) {
	t.Helper()
	cfg := (&sweep.Manifest{}).Config()
	w := &Worker{
		Server:   baseURL,
		Name:     name,
		CacheDir: t.TempDir(),
		Workers:  2,
		ExecFn:   fake.fn(func(j sweep.Job) string { return sweep.Key(cfg, j) }),
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("worker %s: %v", name, err)
		}
	})
}

// runManifestAsync submits and follows a manifest on a goroutine,
// returning a channel with the terminal status.
func runManifestAsync(t *testing.T, c *Client, m sweep.Manifest) <-chan *Status {
	t.Helper()
	ch := make(chan *Status, 1)
	go func() {
		st, err := c.RunManifest(manifestJSON(t, m), nil)
		if err != nil {
			t.Errorf("run manifest: %v", err)
			ch <- nil
			return
		}
		ch <- st
	}()
	return ch
}

func waitStatus(t *testing.T, ch <-chan *Status, timeout time.Duration) *Status {
	t.Helper()
	select {
	case st := <-ch:
		if st == nil {
			t.Fatal("manifest run failed")
		}
		return st
	case <-time.After(timeout):
		t.Fatal("sweep did not finish in time")
		return nil
	}
}

// TestFleetExecutesRemotely drives a sweep through a coordinator with
// two workers and asserts: every job executed exactly once fleet-wide,
// the merged results are byte-identical to a single-node run of the
// same manifest, and a coordinator restart over the same cache answers
// a resubmission entirely from disk without touching a worker.
func TestFleetExecutesRemotely(t *testing.T) {
	dir := t.TempDir()
	_, c := fleetServer(t, dir, FleetConfig{LeaseTTL: 5 * time.Second, Poll: 50 * time.Millisecond})
	fake := &fakeExec{} // shared: counts executions across the whole fleet
	startFleetWorker(t, c.BaseURL, "worker-a", fake)
	startFleetWorker(t, c.BaseURL, "worker-b", fake)

	m := sweep.Manifest{Name: "fleet", Benchmarks: workload.Names()[0:3], Policies: []string{"baseline", "online"}}
	st := waitStatus(t, runManifestAsync(t, c, m), 30*time.Second)
	if st.State != StateComplete {
		t.Fatalf("state %s (%s)", st.State, st.Error)
	}
	if st.Summary == nil || st.Summary.Executed != 6 || st.Summary.Errors != 0 {
		t.Fatalf("summary %+v, want 6 executed, 0 errors", st.Summary)
	}
	counts := fake.execCounts()
	if len(counts) != 6 {
		t.Fatalf("fleet executed %d unique jobs, want 6", len(counts))
	}
	for k, n := range counts {
		if n != 1 {
			t.Fatalf("job %.12s executed %d times fleet-wide, want 1", k, n)
		}
	}
	fleetBytes, err := c.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Byte-identity: the same manifest on a plain single-node server
	// (fresh cache, same deterministic executor) merges to the same bytes.
	_, _, local := testServer(t, 2, 0)
	lst, err := local.RunManifest(manifestJSON(t, m), nil)
	if err != nil {
		t.Fatal(err)
	}
	localBytes, err := local.Results(lst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fleetBytes, localBytes) {
		t.Fatalf("fleet merge differs from single-node merge:\nfleet: %.200s\nlocal: %.200s", fleetBytes, localBytes)
	}

	// Coordinator restart over the same cache directory, zero workers:
	// the warm resubmission must complete from disk alone.
	_, c2 := fleetServer(t, dir, FleetConfig{LeaseTTL: 5 * time.Second})
	st2 := waitStatus(t, runManifestAsync(t, c2, m), 10*time.Second)
	if st2.State != StateComplete {
		t.Fatalf("warm: state %s (%s)", st2.State, st2.Error)
	}
	if st2.Summary.Executed != 0 || st2.Summary.DiskHits != 6 {
		t.Fatalf("warm summary %+v, want executed=0 disk_hits=6", st2.Summary)
	}
}

// TestFleetLeaseExpiryReassigns kills a worker mid-lease (it registers,
// takes the group, and never heartbeats) and asserts the coordinator
// expires the lease, reassigns the anchor group to a live worker, the
// sweep completes, and the dead worker's late completion is refused.
func TestFleetLeaseExpiryReassigns(t *testing.T) {
	ctx := context.Background()
	s, c := fleetServer(t, t.TempDir(), FleetConfig{
		LeaseTTL: 200 * time.Millisecond, Heartbeat: 50 * time.Millisecond,
		Poll: 50 * time.Millisecond, MaxAttempts: 5,
	})
	reg, err := c.RegisterWorker(ctx, "doomed")
	if err != nil {
		t.Fatal(err)
	}

	m := sweep.Manifest{Name: "expiry", Benchmarks: workload.Names()[0:1], Policies: []string{"baseline"}}
	ch := runManifestAsync(t, c, m)

	// The doomed worker grabs the group and goes silent.
	var l *wire.Lease
	deadline := time.Now().Add(5 * time.Second)
	for l == nil {
		if time.Now().After(deadline) {
			t.Fatal("doomed worker never got a lease")
		}
		if l, err = c.RequestLease(ctx, reg.WorkerID, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	// A live worker picks the group up after the TTL lapses.
	fake := &fakeExec{}
	startFleetWorker(t, c.BaseURL, "survivor", fake)

	st := waitStatus(t, ch, 30*time.Second)
	if st.State != StateComplete {
		t.Fatalf("state %s (%s)", st.State, st.Error)
	}
	if n := len(fake.execCounts()); n != 1 {
		t.Fatalf("survivor executed %d jobs, want 1", n)
	}
	fg := s.fleetState.gauges()
	if fg.expired < 1 || fg.reassigned < 1 {
		t.Fatalf("gauges expired=%d reassigned=%d, want >=1 each", fg.expired, fg.reassigned)
	}
	// The dead worker's attempt to complete its expired lease is refused.
	err = c.CompleteLease(ctx, l.ID, reg.WorkerID,
		[]wire.JobResult{{Key: l.JobKeys[0], Source: "executed"}}, nil)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != wire.CodeLeaseExpired {
		t.Fatalf("late completion: %v, want %s", err, wire.CodeLeaseExpired)
	}
}

// TestFleetRetryCapFails exhausts an anchor group's grant attempts and
// asserts its jobs fail with the structured lease_failed error instead
// of requeueing forever.
func TestFleetRetryCapFails(t *testing.T) {
	ctx := context.Background()
	s, c := fleetServer(t, t.TempDir(), FleetConfig{
		LeaseTTL: 100 * time.Millisecond, Poll: 50 * time.Millisecond, MaxAttempts: 1,
	})
	reg, err := c.RegisterWorker(ctx, "doomed")
	if err != nil {
		t.Fatal(err)
	}
	m := sweep.Manifest{Name: "cap", Benchmarks: workload.Names()[0:1], Policies: []string{"baseline"}}
	ch := runManifestAsync(t, c, m)

	var l *wire.Lease
	deadline := time.Now().Add(5 * time.Second)
	for l == nil {
		if time.Now().After(deadline) {
			t.Fatal("doomed worker never got a lease")
		}
		if l, err = c.RequestLease(ctx, reg.WorkerID, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	st := waitStatus(t, ch, 30*time.Second)
	if st.State != StateFailed {
		t.Fatalf("state %s, want %s", st.State, StateFailed)
	}
	if !strings.Contains(st.Error, wire.CodeLeaseFailed) {
		t.Fatalf("error %q does not carry %s", st.Error, wire.CodeLeaseFailed)
	}
	if fg := s.fleetState.gauges(); fg.failed != 1 {
		t.Fatalf("failed groups = %d, want 1", fg.failed)
	}
}

// TestFleetHeartbeatKeepsLeaseAlive blocks execution for several lease
// TTLs while the worker heartbeats, and asserts the lease is never
// expired or reassigned.
func TestFleetHeartbeatKeepsLeaseAlive(t *testing.T) {
	s, c := fleetServer(t, t.TempDir(), FleetConfig{
		LeaseTTL: 250 * time.Millisecond, Heartbeat: 50 * time.Millisecond,
		Poll: 50 * time.Millisecond,
	})
	fake := &fakeExec{gate: make(chan struct{})}
	startFleetWorker(t, c.BaseURL, "steady", fake)

	m := sweep.Manifest{Name: "hb", Benchmarks: workload.Names()[0:1], Policies: []string{"baseline"}}
	ch := runManifestAsync(t, c, m)

	// Hold the job mid-execution across four TTLs, then release it.
	time.Sleep(time.Second)
	close(fake.gate)

	st := waitStatus(t, ch, 30*time.Second)
	if st.State != StateComplete {
		t.Fatalf("state %s (%s)", st.State, st.Error)
	}
	fg := s.fleetState.gauges()
	if fg.expired != 0 || fg.reassigned != 0 {
		t.Fatalf("gauges expired=%d reassigned=%d, want 0 (heartbeats should hold the lease)", fg.expired, fg.reassigned)
	}
	if fg.granted != 1 || fg.completed != 1 {
		t.Fatalf("gauges granted=%d completed=%d, want 1 each", fg.granted, fg.completed)
	}
}

// TestFleetEndpointsRequireCoordinator asserts every fleet endpoint on
// a daemon without -fleet answers the structured fleet_disabled error.
func TestFleetEndpointsRequireCoordinator(t *testing.T) {
	ctx := context.Background()
	_, _, c := testServer(t, 1, 0)
	var ae *APIError
	if _, err := c.RegisterWorker(ctx, "w"); !errors.As(err, &ae) || ae.Code != wire.CodeFleetDisabled {
		t.Fatalf("register: %v, want %s", err, wire.CodeFleetDisabled)
	}
	if _, err := c.RequestLease(ctx, "wk-1", 0); !errors.As(err, &ae) || ae.Code != wire.CodeFleetDisabled {
		t.Fatalf("lease: %v, want %s", err, wire.CodeFleetDisabled)
	}
	key := strings.Repeat("ab", 32)
	if _, _, err := c.GetCacheEntry(ctx, key); !errors.As(err, &ae) || ae.Code != wire.CodeFleetDisabled {
		t.Fatalf("cache get: %v, want %s", err, wire.CodeFleetDisabled)
	}
	if err := c.PutArtifact(ctx, key, []byte("{}")); !errors.As(err, &ae) || ae.Code != wire.CodeFleetDisabled {
		t.Fatalf("artifact put: %v, want %s", err, wire.CodeFleetDisabled)
	}
}

// TestFleetStrictFrames asserts the coordinator refuses malformed wire
// frames with structured errors: unknown fields, wrong protocol
// versions, bad sync keys, and unregistered workers.
func TestFleetStrictFrames(t *testing.T) {
	ctx := context.Background()
	_, c := fleetServer(t, t.TempDir(), FleetConfig{})

	post := func(body string) *APIError {
		t.Helper()
		resp, err := http.Post(c.BaseURL+"/v1/workers", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		err = decodeError(resp)
		var ae *APIError
		if !errors.As(err, &ae) {
			t.Fatalf("POST %s: unstructured error %v", body, err)
		}
		return ae
	}
	if ae := post(`{"proto":1,"name":"a","cpus":8}`); ae.Code != wire.CodeBadRequest {
		t.Fatalf("unknown field: code %s, want %s", ae.Code, wire.CodeBadRequest)
	}
	if ae := post(`{"proto":99,"name":"a"}`); ae.Code != wire.CodeProtoUnsupported {
		t.Fatalf("wrong proto: code %s, want %s", ae.Code, wire.CodeProtoUnsupported)
	}

	// Sync endpoints refuse keys that are not content addresses (path
	// traversal is already neutralized by the mux's path cleaning).
	var ae *APIError
	if err := c.PutCacheEntry(ctx, "deadbeef", []byte("{}")); !errors.As(err, &ae) || ae.Code != wire.CodeBadRequest {
		t.Fatalf("bad key: %v, want %s", err, wire.CodeBadRequest)
	}
	// And entries whose declared key does not match the URL.
	key := strings.Repeat("ab", 32)
	if err := c.PutCacheEntry(ctx, key, []byte(`{"key":"deadbeef","job":{},"outcome":{"result":{}}}`)); !errors.As(err, &ae) || ae.Code != wire.CodeBadRequest {
		t.Fatalf("key mismatch: %v, want %s", err, wire.CodeBadRequest)
	}

	// Lease traffic from a worker that never registered.
	if _, err := c.Heartbeat(ctx, "ls-1", "wk-404"); !errors.As(err, &ae) || ae.Code != wire.CodeUnknownWorker {
		t.Fatalf("unknown worker: %v, want %s", err, wire.CodeUnknownWorker)
	}
}

// TestFleetSegmentSyncByteIdentity runs a sweep through a one-worker
// fleet and asserts the segment-based result sync is invisible at the
// byte level: the coordinator holds at least one synced segment, every
// canonical JSON entry it re-derived from that segment is byte-identical
// to one written by a local run of the same deterministic executor, and
// a merge answered by the coordinator's segments alone (JSON fanout
// directories deleted) matches the JSON-oracle MergeBytes exactly.
func TestFleetSegmentSyncByteIdentity(t *testing.T) {
	dir := t.TempDir()
	_, c := fleetServer(t, dir, FleetConfig{LeaseTTL: 5 * time.Second, Poll: 50 * time.Millisecond})
	fake := &fakeExec{}
	startFleetWorker(t, c.BaseURL, "worker-a", fake)

	m := sweep.Manifest{Name: "seg-sync", Benchmarks: workload.Names()[0:3], Policies: []string{"baseline", "online"}}
	st := waitStatus(t, runManifestAsync(t, c, m), 30*time.Second)
	if st.State != StateComplete {
		t.Fatalf("state %s (%s)", st.State, st.Error)
	}

	segs, err := os.ReadDir(filepath.Join(dir, sweep.SegmentSubdir))
	if err != nil {
		t.Fatalf("coordinator segment dir: %v", err)
	}
	if len(segs) == 0 {
		t.Fatal("worker completed a lease but the coordinator holds no synced segment")
	}

	// Oracle: write the same outcomes through the canonical JSON path
	// locally, with an independent executor instance.
	cfg := m.Config()
	jobs, err := m.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	oracleFn := (&fakeExec{}).fn(func(j sweep.Job) string { return sweep.Key(cfg, j) })
	oracle := &sweep.Cache{Dir: t.TempDir()}
	for _, j := range jobs {
		out, err := oracleFn(j)
		if err != nil {
			t.Fatal(err)
		}
		if err := oracle.Put(sweep.Key(cfg, j), j, out); err != nil {
			t.Fatal(err)
		}
	}
	want, err := sweep.MergeBytes(cfg, jobs, oracle)
	if err != nil {
		t.Fatal(err)
	}

	// Entry-level identity: the coordinator re-encoded each synced row
	// through the same deterministic serialization.
	coord := &sweep.Cache{Dir: dir}
	for _, j := range jobs {
		k := sweep.Key(cfg, j)
		got, err := os.ReadFile(coord.EntryPath(k))
		if err != nil {
			t.Fatalf("coordinator entry %.12s: %v", k, err)
		}
		wantEntry, err := os.ReadFile(oracle.EntryPath(k))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantEntry) {
			t.Fatalf("coordinator entry %.12s differs from local oracle entry", k)
		}
	}

	// Merge-level identity from segments alone: remove the coordinator's
	// JSON fanout directories and stream the merge from its segment layer.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() && e.Name() != sweep.SegmentSubdir && e.Name() != "artifacts" {
			if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	src := sweep.SourceFor(dir)
	if err := sweep.MergeCheck(cfg, jobs, src); err != nil {
		t.Fatalf("merge check over segments alone: %v", err)
	}
	var buf bytes.Buffer
	if err := sweep.MergeTo(&buf, cfg, jobs, src); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("segment-only merge differs from JSON oracle:\nseg:    %.200s\noracle: %.200s", buf.Bytes(), want)
	}
}

// TestFleetTraceLeaseCorrelation drives a sweep through a traced
// coordinator with a traced worker and asserts the worker's execution
// spans arrive on the coordinator stamped with the lease that carried
// them: every imported span names the worker's registered ID, a real
// lease ID and a positive attempt number, and the sweep's /trace
// endpoint serves the correlated capture back out.
func TestFleetTraceLeaseCorrelation(t *testing.T) {
	dir := t.TempDir()
	s, c := fleetServer(t, dir, FleetConfig{LeaseTTL: 5 * time.Second, Poll: 50 * time.Millisecond})
	s.Trace = obs.NewTracer(0)

	// Wired by hand rather than via startFleetWorker: the worker needs
	// its own tracer to have spans to ship.
	cfg := (&sweep.Manifest{}).Config()
	fake := &fakeExec{}
	w := &Worker{
		Server:   c.BaseURL,
		Name:     "traced-worker",
		CacheDir: t.TempDir(),
		Workers:  2,
		Trace:    obs.NewTracer(0),
		ExecFn:   fake.fn(func(j sweep.Job) string { return sweep.Key(cfg, j) }),
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("worker: %v", err)
		}
	})

	m := sweep.Manifest{Name: "fleet-trace", Benchmarks: workload.Names()[0:3], Policies: []string{"baseline", "online"}}
	st := waitStatus(t, runManifestAsync(t, c, m), 30*time.Second)
	if st.State != StateComplete {
		t.Fatalf("state %s (%s)", st.State, st.Error)
	}

	spans, _, _ := s.Trace.Snapshot(0)
	jobSpans, leases := 0, map[string]bool{}
	for _, sp := range spans {
		if !strings.HasPrefix(sp.Worker, "wk-") {
			t.Fatalf("span %s/%s imported without a worker ID: %+v", sp.Phase, sp.Outcome, sp)
		}
		if !strings.HasPrefix(sp.Lease, "ls-") {
			t.Fatalf("span %s/%s imported without a lease ID: %+v", sp.Phase, sp.Outcome, sp)
		}
		if sp.Attempt < 1 {
			t.Fatalf("span %s/%s has attempt %d, want >= 1", sp.Phase, sp.Outcome, sp.Attempt)
		}
		leases[sp.Lease] = true
		if sp.Phase == "job" {
			jobSpans++
			if sp.Outcome != "executed" {
				t.Errorf("fleet job span outcome %q, want executed", sp.Outcome)
			}
		}
	}
	if jobSpans != 6 {
		t.Fatalf("coordinator holds %d job spans, want 6 (one per leased job)", jobSpans)
	}
	if len(leases) == 0 {
		t.Fatal("no lease IDs recorded")
	}

	// The /trace endpoint serves the correlated capture: every job span
	// is keyed inside the sweep's reachable closure, so none is filtered.
	resp, err := http.Get(c.BaseURL + "/v1/sweeps/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace: %s", resp.Status)
	}
	served, err := obs.ReadSpans(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(served) != len(spans) {
		t.Fatalf("/trace served %d spans, ring holds %d", len(served), len(spans))
	}
	for _, sp := range served {
		if sp.Worker == "" || sp.Lease == "" {
			t.Fatalf("/trace span lost its lease correlation: %+v", sp)
		}
	}
}
