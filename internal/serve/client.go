package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/serve/wire"
)

// Client talks to a running mcdserved daemon. The zero HTTP client is
// usable; BaseURL is required (e.g. "http://127.0.0.1:8337").
type Client struct {
	BaseURL string
	// HTTP overrides the transport; nil uses http.DefaultClient. Streams
	// are long-lived, so a client with a response timeout will cut
	// Follow short — leave Timeout zero and rely on context/transport
	// timeouts instead.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.BaseURL, "/") + path
}

// APIError is a structured server-side rejection, decoded from the
// {"error": {...}} body every endpoint returns on failure.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
	Field      string
	// RetryAfter is the server's backpressure estimate in seconds (429
	// rejections), 0 otherwise.
	RetryAfter int
}

func (e *APIError) Error() string {
	s := fmt.Sprintf("server: %s (%s", e.Message, e.Code)
	if e.Field != "" {
		s += ", field " + e.Field
	}
	return s + ")"
}

// decodeError turns a non-2xx response into an *APIError (or a plain
// error when the body is not the structured shape).
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var eb wire.ErrorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.Err.Code != "" {
		ae := &APIError{
			StatusCode: resp.StatusCode,
			Code:       eb.Err.Code,
			Message:    eb.Err.Message,
			Field:      eb.Err.Field,
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			ae.RetryAfter, _ = strconv.Atoi(ra)
		}
		return ae
	}
	return fmt.Errorf("server: HTTP %d: %.200s", resp.StatusCode, body)
}

// decodeFrame reads a 200 response's body and strict-decodes it as one
// versioned wire frame.
func decodeFrame(resp *http.Response, what string, v any) error {
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16*1024*1024))
	if err != nil {
		return fmt.Errorf("server: %s response: %w", what, err)
	}
	if werr := wire.DecodeStrict(body, v); werr != nil {
		return fmt.Errorf("server: %s response: %w", what, werr)
	}
	return nil
}

// Submit posts a raw manifest (the same JSON file mcdsweep takes) and
// returns the sweep's status snapshot. Submitting work the server
// already knows joins the existing sweep.
func (c *Client) Submit(manifest []byte) (*Status, error) {
	resp, err := c.http().Post(c.url("/v1/sweeps"), "application/json", bytes.NewReader(manifest))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var st Status
	if err := decodeFrame(resp, "submit", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches a sweep's progress snapshot.
func (c *Client) Status(id string) (*Status, error) {
	resp, err := c.http().Get(c.url("/v1/sweeps/" + id))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var st Status
	if err := decodeFrame(resp, "status", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Follow streams a sweep's job completions from event seq `from` until
// the sweep finishes, invoking onEvent (when non-nil) per event, and
// returns the terminal status. It is the client half of the NDJSON
// stream endpoint.
func (c *Client) Follow(id string, from int, onEvent func(Event)) (*Status, error) {
	resp, err := c.http().Get(c.url(fmt.Sprintf("/v1/sweeps/%s/stream?from=%d", id, from)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		// The terminal line is {"done":true,"status":{...}}; every other
		// line is an Event. Probe leniently, then decode strictly.
		var probe struct {
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("server: stream line: %w", err)
		}
		if probe.Done {
			var end wire.StreamEnd
			if werr := wire.DecodeStrict(line, &end); werr != nil {
				return nil, fmt.Errorf("server: stream end: %w", werr)
			}
			return &end.Status, nil
		}
		if onEvent != nil {
			var ev Event
			if werr := wire.DecodeStrict(line, &ev); werr != nil {
				return nil, fmt.Errorf("server: stream event: %w", werr)
			}
			onEvent(ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("server: stream: %w", err)
	}
	return nil, errors.New("server: stream ended without a terminal status (connection dropped?)")
}

// Results fetches a completed sweep's merged results — byte-identical
// to `mcdsweep merge` over the same manifest and cache.
func (c *Client) Results(id string) ([]byte, error) {
	resp, err := c.http().Get(c.url("/v1/sweeps/" + id + "/results"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// RunManifest submits a manifest, follows the stream to completion and
// returns the terminal status — the client-mode equivalent of a local
// `mcdsweep run`.
func (c *Client) RunManifest(manifest []byte, onEvent func(Event)) (*Status, error) {
	st, err := c.Submit(manifest)
	if err != nil {
		return nil, err
	}
	return c.Follow(st.ID, 0, onEvent)
}

// Healthz probes the daemon's liveness endpoint.
func (c *Client) Healthz() error {
	resp, err := c.http().Get(c.url("/healthz"))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return nil
}

// postFrame sends one versioned request frame and strict-decodes the
// response frame into out.
func (c *Client) postFrame(ctx context.Context, path, what string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("server: %s request: %w", what, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url(path), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return decodeFrame(resp, what, out)
}

// RegisterWorker announces a worker to a fleet coordinator and returns
// its assigned identity plus the fleet's timing contract.
func (c *Client) RegisterWorker(ctx context.Context, name string) (*wire.RegisterResponse, error) {
	var rr wire.RegisterResponse
	err := c.postFrame(ctx, "/v1/workers", "register",
		wire.RegisterRequest{Versioned: wire.Stamp(), Name: name}, &rr)
	if err != nil {
		return nil, err
	}
	return &rr, nil
}

// RequestLease asks the coordinator for the next anchor group, holding
// the request up to wait (long poll). A nil lease with a nil error
// means the queue stayed empty.
func (c *Client) RequestLease(ctx context.Context, workerID string, wait time.Duration) (*wire.Lease, error) {
	var lr wire.LeaseResponse
	err := c.postFrame(ctx, "/v1/leases", "lease",
		wire.LeaseRequest{Versioned: wire.Stamp(), WorkerID: workerID, WaitMS: wait.Milliseconds()}, &lr)
	if err != nil {
		return nil, err
	}
	return lr.Lease, nil
}

// Heartbeat keeps a lease alive and returns its renewed remaining
// lifetime. A lease the coordinator already expired reports an APIError
// with code wire.CodeLeaseExpired — the signal to abandon the work.
func (c *Client) Heartbeat(ctx context.Context, leaseID, workerID string) (time.Duration, error) {
	var hr wire.HeartbeatResponse
	err := c.postFrame(ctx, "/v1/leases/"+leaseID+"/heartbeat", "heartbeat",
		wire.HeartbeatRequest{Versioned: wire.Stamp(), WorkerID: workerID}, &hr)
	if err != nil {
		return 0, err
	}
	return time.Duration(hr.DeadlineMS) * time.Millisecond, nil
}

// CompleteLease reports a lease's jobs done. Every successful job's
// result entry must already be uploaded (PutCacheEntry), or the
// coordinator rejects the completion with incomplete_upload. spans,
// when non-nil, attaches the worker's execution spans for the lease so
// a tracing coordinator can serve a fleet-wide correlated trace.
func (c *Client) CompleteLease(ctx context.Context, leaseID, workerID string, jobs []wire.JobResult, spans []obs.Span) error {
	var cr wire.CompleteResponse
	return c.postFrame(ctx, "/v1/leases/"+leaseID+"/complete", "complete",
		wire.CompleteRequest{Versioned: wire.Stamp(), WorkerID: workerID, Jobs: jobs, Spans: spans}, &cr)
}

// getEntry fetches one content-addressed entry file; ok=false with a
// nil error is a clean miss (the coordinator does not have the key).
func (c *Client) getEntry(ctx context.Context, path string) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := decodeError(resp)
		// A 404 naming the key is a clean miss; any other 404 (e.g.
		// fleet_disabled on a non-coordinator) is a real error.
		var ae *APIError
		if errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound && ae.Code == "unknown_key" {
			return nil, false, nil
		}
		return nil, false, err
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

// putEntry uploads one content-addressed entry file.
func (c *Client) putEntry(ctx context.Context, path string, raw []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.url(path), bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return decodeError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// GetCacheEntry fetches one result-cache entry's canonical file bytes
// by key; ok=false means the coordinator does not have it.
func (c *Client) GetCacheEntry(ctx context.Context, key string) ([]byte, bool, error) {
	return c.getEntry(ctx, "/v1/cache/"+key)
}

// PutCacheEntry uploads one result-cache entry's canonical file bytes.
func (c *Client) PutCacheEntry(ctx context.Context, key string, raw []byte) error {
	return c.putEntry(ctx, "/v1/cache/"+key, raw)
}

// PutSegment uploads one columnar result segment (raw segment-file
// bytes); the coordinator decodes it, writes any missing canonical JSON
// entries, and appends the rows to its own segment layer.
func (c *Client) PutSegment(ctx context.Context, raw []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.url("/v1/segments"), bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return decodeError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// GetArtifact fetches one artifact-store entry's canonical file bytes
// by key; ok=false means the coordinator does not have it.
func (c *Client) GetArtifact(ctx context.Context, key string) ([]byte, bool, error) {
	return c.getEntry(ctx, "/v1/artifacts/"+key)
}

// PutArtifact uploads one artifact-store entry's canonical file bytes.
func (c *Client) PutArtifact(ctx context.Context, key string, raw []byte) error {
	return c.putEntry(ctx, "/v1/artifacts/"+key, raw)
}
