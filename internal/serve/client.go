package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Client talks to a running mcdserved daemon. The zero HTTP client is
// usable; BaseURL is required (e.g. "http://127.0.0.1:8337").
type Client struct {
	BaseURL string
	// HTTP overrides the transport; nil uses http.DefaultClient. Streams
	// are long-lived, so a client with a response timeout will cut
	// Follow short — leave Timeout zero and rely on context/transport
	// timeouts instead.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.BaseURL, "/") + path
}

// APIError is a structured server-side rejection, decoded from the
// {"error": {...}} body every endpoint returns on failure.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
	Field      string
	// RetryAfter is the server's backpressure estimate in seconds (429
	// rejections), 0 otherwise.
	RetryAfter int
}

func (e *APIError) Error() string {
	s := fmt.Sprintf("server: %s (%s", e.Message, e.Code)
	if e.Field != "" {
		s += ", field " + e.Field
	}
	return s + ")"
}

// decodeError turns a non-2xx response into an *APIError (or a plain
// error when the body is not the structured shape).
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.Err.Code != "" {
		ae := &APIError{
			StatusCode: resp.StatusCode,
			Code:       eb.Err.Code,
			Message:    eb.Err.Message,
			Field:      eb.Err.Field,
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			ae.RetryAfter, _ = strconv.Atoi(ra)
		}
		return ae
	}
	return fmt.Errorf("server: HTTP %d: %.200s", resp.StatusCode, body)
}

// Submit posts a raw manifest (the same JSON file mcdsweep takes) and
// returns the sweep's status snapshot. Submitting work the server
// already knows joins the existing sweep.
func (c *Client) Submit(manifest []byte) (*Status, error) {
	resp, err := c.http().Post(c.url("/v1/sweeps"), "application/json", bytes.NewReader(manifest))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("server: submit response: %w", err)
	}
	return &st, nil
}

// Status fetches a sweep's progress snapshot.
func (c *Client) Status(id string) (*Status, error) {
	resp, err := c.http().Get(c.url("/v1/sweeps/" + id))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("server: status response: %w", err)
	}
	return &st, nil
}

// Follow streams a sweep's job completions from event seq `from` until
// the sweep finishes, invoking onEvent (when non-nil) per event, and
// returns the terminal status. It is the client half of the NDJSON
// stream endpoint.
func (c *Client) Follow(id string, from int, onEvent func(Event)) (*Status, error) {
	resp, err := c.http().Get(c.url(fmt.Sprintf("/v1/sweeps/%s/stream?from=%d", id, from)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		// The terminal line is {"done":true,"status":{...}}; every other
		// line is an Event.
		var probe struct {
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("server: stream line: %w", err)
		}
		if probe.Done {
			var end streamEnd
			if err := json.Unmarshal(line, &end); err != nil {
				return nil, fmt.Errorf("server: stream end: %w", err)
			}
			return &end.Status, nil
		}
		if onEvent != nil {
			var ev Event
			if err := json.Unmarshal(line, &ev); err != nil {
				return nil, fmt.Errorf("server: stream event: %w", err)
			}
			onEvent(ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("server: stream: %w", err)
	}
	return nil, errors.New("server: stream ended without a terminal status (connection dropped?)")
}

// Results fetches a completed sweep's merged results — byte-identical
// to `mcdsweep merge` over the same manifest and cache.
func (c *Client) Results(id string) ([]byte, error) {
	resp, err := c.http().Get(c.url("/v1/sweeps/" + id + "/results"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// RunManifest submits a manifest, follows the stream to completion and
// returns the terminal status — the client-mode equivalent of a local
// `mcdsweep run`.
func (c *Client) RunManifest(manifest []byte, onEvent func(Event)) (*Status, error) {
	st, err := c.Submit(manifest)
	if err != nil {
		return nil, err
	}
	return c.Follow(st.ID, 0, onEvent)
}

// Healthz probes the daemon's liveness endpoint.
func (c *Client) Healthz() error {
	resp, err := c.http().Get(c.url("/healthz"))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return nil
}
