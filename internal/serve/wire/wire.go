// Package wire is the typed, versioned protocol shared by the
// coordinator (serve.Server's handlers), the worker (cmd/mcdworker via
// serve.Worker) and the client (serve.Client, driven by mcdsweep
// -server). Every frame — request, response, NDJSON stream line —
// carries an explicit "proto" field, every error is the structured
// {code,message,field} triple, and parsing is unknown-field-strict:
// like manifests, a misspelled field is a structured error naming the
// problem, never a silently ignored knob. The three surfaces that used
// to hand-roll their JSON shapes all import this package, so the wire
// format cannot drift between them.
package wire

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// Proto is the wire-protocol version every frame carries. A peer that
// receives a different (or absent) version refuses the frame with a
// proto_unsupported error instead of guessing at field meanings.
const Proto = 1

// Versioned is embedded by every frame to carry the protocol version.
type Versioned struct {
	Proto int `json:"proto"`
}

// Version reports the frame's declared protocol version (DecodeStrict's
// hook).
func (v Versioned) Version() int { return v.Proto }

// Stamp returns a Versioned carrying the current protocol version, for
// frame construction.
func Stamp() Versioned { return Versioned{Proto: Proto} }

// Error is the structured error every endpoint returns on failure: a
// machine-readable code, a human message, and, when the failure is
// about one input field, its name.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

func (e *Error) Error() string {
	s := fmt.Sprintf("%s (%s", e.Message, e.Code)
	if e.Field != "" {
		s += ", field " + e.Field
	}
	return s + ")"
}

// ErrorBody is the error envelope on the wire: {"error": {...}}.
type ErrorBody struct {
	Err Error `json:"error"`
}

// Error codes shared across endpoints. Handlers may add their own; these
// are the ones peers branch on.
const (
	// CodeBadRequest is a malformed frame: invalid JSON, an unknown
	// field, or a missing required value.
	CodeBadRequest = "bad_request"
	// CodeProtoUnsupported is a frame declaring a protocol version this
	// peer does not speak.
	CodeProtoUnsupported = "proto_unsupported"
	// CodeFleetDisabled marks a fleet endpoint on a daemon not started
	// as a coordinator.
	CodeFleetDisabled = "fleet_disabled"
	// CodeUnknownWorker is a fleet request naming an unregistered worker.
	CodeUnknownWorker = "unknown_worker"
	// CodeLeaseExpired is a heartbeat or completion for a lease the
	// coordinator already expired (or never granted): the worker must
	// abandon the work — the anchor group has been reassigned.
	CodeLeaseExpired = "lease_expired"
	// CodeLeaseFailed is the structured per-job error a sweep reports
	// when an anchor group exhausted its reassignment attempts.
	CodeLeaseFailed = "lease_failed"
	// CodeIncompleteUpload is a lease completion whose claimed results
	// have not all been uploaded to the coordinator's cache.
	CodeIncompleteUpload = "incomplete_upload"
	// CodeWorkerError wraps a job-execution error a worker reported.
	CodeWorkerError = "worker_error"
)

// DecodeStrict decodes one frame with unknown fields rejected and the
// protocol version enforced. A nil return means v is populated and
// speaks this package's Proto.
func DecodeStrict(data []byte, v any) *Error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &Error{Code: CodeBadRequest, Message: "wire: " + err.Error()}
	}
	if vv, ok := v.(interface{ Version() int }); ok {
		if p := vv.Version(); p != Proto {
			return &Error{
				Code:    CodeProtoUnsupported,
				Message: fmt.Sprintf("wire: frame declares proto %d, this peer speaks %d", p, Proto),
				Field:   "proto",
			}
		}
	}
	return nil
}

// Sweep states reported by Status.
const (
	StateRunning  = "running"
	StateComplete = "complete"
	StateFailed   = "failed"
)

// Status is one sweep's progress snapshot: submission response, status
// endpoint body, and the terminal stream line's payload.
type Status struct {
	Versioned
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	Jobs int    `json:"jobs"`
	Done int    `json:"done"`
	// State is running until every job resolved; then complete, or
	// failed when any job errored.
	State string `json:"state"`
	// Summary is built from this sweep's own job completions (one count
	// per batch job, by answering layer), so concurrent sweeps sharing
	// an engine never contaminate each other's counters and Executed is
	// zero iff none of this sweep's jobs needed simulation. Present once
	// the sweep is done.
	Summary *sweep.Summary `json:"summary,omitempty"`
	// Phases is the sweep's per-phase wall-clock breakdown, present once
	// the sweep is done on daemons that execute locally (a fleet
	// coordinator's phase time lives on its workers). Optional fields on
	// an existing frame are not a protocol bump: strict decoding rejects
	// unknown fields, and omitted knowns decode to their zero values.
	Phases *sweep.PhaseBreakdown `json:"phases,omitempty"`
	Error  string                `json:"error,omitempty"`
}

// Event is one completed job as it appears on the NDJSON stream, in
// completion order. Seq is the event's position in the sweep's stream
// (dense from 0), so a dropped connection resumes with ?from=seq.
type Event struct {
	Versioned
	Seq     int            `json:"seq"`
	Job     sweep.Job      `json:"job"`
	Key     string         `json:"key"`
	Source  string         `json:"source"`
	Elapsed int64          `json:"elapsed_ns"`
	Error   string         `json:"error,omitempty"`
	Outcome *sweep.Outcome `json:"outcome,omitempty"`
}

// StreamEnd is the NDJSON stream's terminal line.
type StreamEnd struct {
	Versioned
	Done   bool   `json:"done"`
	Status Status `json:"status"`
}

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	Versioned
	// Name is the worker's operator-facing label (metrics, logs); the
	// coordinator derives the authoritative WorkerID.
	Name string `json:"name,omitempty"`
}

// RegisterResponse assigns the worker its identity and the fleet's
// timing contract.
type RegisterResponse struct {
	Versioned
	WorkerID string `json:"worker_id"`
	// LeaseTTLMS is how long a granted lease lives without a heartbeat.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	// HeartbeatMS is the interval the worker must heartbeat active
	// leases at (a fraction of the TTL).
	HeartbeatMS int64 `json:"heartbeat_ms"`
	// PollMS is the suggested long-poll hold when requesting work.
	PollMS int64 `json:"poll_ms"`
}

// LeaseRequest asks for the next available anchor group. The
// coordinator holds the request up to WaitMS milliseconds waiting for
// work (long poll) before answering with an empty LeaseResponse.
type LeaseRequest struct {
	Versioned
	WorkerID string `json:"worker_id"`
	WaitMS   int64  `json:"wait_ms,omitempty"`
}

// Lease is one granted anchor group: every queued job that hangs off
// one shard anchor (PR 3's placement unit), plus the content-addressed
// keys of the group's dependency closure so the worker can prefetch
// what exists and upload what it produces.
type Lease struct {
	ID string `json:"id"`
	// Config is the full pipeline configuration the group runs under;
	// the worker derives byte-identical cache and artifact keys from it.
	Config core.Config `json:"config"`
	// RecordingCache is the manifest's recorded-stream cache override
	// for the engine the worker runs this group on (0 = automatic).
	RecordingCache int `json:"recording_cache,omitempty"`
	// Anchor is the group's shard-anchor key (diagnostic).
	Anchor string `json:"anchor"`
	// Jobs are the group's jobs; JobKeys[i] is Jobs[i]'s result key.
	Jobs    []sweep.Job `json:"jobs"`
	JobKeys []string    `json:"job_keys"`
	// DepKeys are result keys in the group's dependency closure beyond
	// the jobs themselves (e.g. the off-line run a global job resolves
	// inline); ArtifactKeys are the trained profiles it needs. The
	// worker downloads the ones the coordinator has and uploads the
	// ones it produces.
	DepKeys      []string `json:"dep_keys,omitempty"`
	ArtifactKeys []string `json:"artifact_keys,omitempty"`
	// Attempt counts grants of this group, 1-based: 2 and up mean the
	// group was reassigned after a lease expiry.
	Attempt int `json:"attempt"`
}

// LeaseResponse carries a granted lease, or none when the queue stayed
// empty for the request's whole wait.
type LeaseResponse struct {
	Versioned
	Lease *Lease `json:"lease,omitempty"`
}

// HeartbeatRequest keeps a lease alive.
type HeartbeatRequest struct {
	Versioned
	WorkerID string `json:"worker_id"`
}

// HeartbeatResponse acknowledges a heartbeat with the lease's renewed
// remaining lifetime.
type HeartbeatResponse struct {
	Versioned
	DeadlineMS int64 `json:"deadline_ms"`
}

// JobResult is one job's execution report inside a lease completion.
// The outcome itself travels through the content-addressed cache
// upload, not this frame; Key is how the coordinator finds it.
type JobResult struct {
	Key       string `json:"key"`
	Source    string `json:"source"`
	ElapsedNS int64  `json:"elapsed_ns"`
	Error     string `json:"error,omitempty"`
}

// CompleteRequest reports a lease's jobs done, after the worker has
// uploaded the produced cache and artifact entries.
type CompleteRequest struct {
	Versioned
	WorkerID string      `json:"worker_id"`
	Jobs     []JobResult `json:"jobs"`
	// Spans are the worker's execution spans for this lease, present when
	// the worker runs with tracing enabled. The coordinator imports them
	// into its own tracer stamped with the worker and lease identity, so
	// the fleet-wide trace correlates every span to the lease that ran it.
	// Optional: an untraced worker omits the field (not a proto bump).
	Spans []obs.Span `json:"spans,omitempty"`
}

// CompleteResponse acknowledges a completion.
type CompleteResponse struct {
	Versioned
}
