package wire

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDecodeStrictRoundTrip(t *testing.T) {
	in := LeaseRequest{Versioned: Stamp(), WorkerID: "wk-1", WaitMS: 250}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out LeaseRequest
	if werr := DecodeStrict(b, &out); werr != nil {
		t.Fatalf("round trip: %v", werr)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestDecodeStrictRejectsUnknownField(t *testing.T) {
	var rr RegisterRequest
	werr := DecodeStrict([]byte(`{"proto":1,"name":"a","worker_count":4}`), &rr)
	if werr == nil {
		t.Fatal("unknown field accepted")
	}
	if werr.Code != CodeBadRequest {
		t.Fatalf("code = %s, want %s", werr.Code, CodeBadRequest)
	}
	if !strings.Contains(werr.Message, "worker_count") {
		t.Fatalf("message does not name the unknown field: %s", werr.Message)
	}
}

func TestDecodeStrictRejectsWrongProto(t *testing.T) {
	for _, body := range []string{
		`{"proto":2,"name":"a"}`, // future version
		`{"name":"a"}`,           // absent version
	} {
		var rr RegisterRequest
		werr := DecodeStrict([]byte(body), &rr)
		if werr == nil {
			t.Fatalf("%s accepted", body)
		}
		if werr.Code != CodeProtoUnsupported {
			t.Fatalf("%s: code = %s, want %s", body, werr.Code, CodeProtoUnsupported)
		}
		if werr.Field != "proto" {
			t.Fatalf("%s: field = %q, want proto", body, werr.Field)
		}
	}
}

func TestDecodeStrictRejectsMalformedJSON(t *testing.T) {
	var st Status
	if werr := DecodeStrict([]byte(`{"proto":1,`), &st); werr == nil || werr.Code != CodeBadRequest {
		t.Fatalf("malformed JSON: %v", werr)
	}
}

func TestErrorRendersCodeAndField(t *testing.T) {
	e := &Error{Code: CodeBadRequest, Message: "no such knob", Field: "benchmarks"}
	s := e.Error()
	for _, want := range []string{"no such knob", CodeBadRequest, "benchmarks"} {
		if !strings.Contains(s, want) {
			t.Fatalf("error %q is missing %q", s, want)
		}
	}
}
