package serve

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve/wire"
	"repro/internal/sweep"
)

// FleetConfig tunes the coordinator's lease protocol.
type FleetConfig struct {
	// LeaseTTL is how long a granted lease lives without a heartbeat
	// before the coordinator expires it and reassigns the anchor group.
	// Default 15s.
	LeaseTTL time.Duration
	// Heartbeat is the interval workers are told to heartbeat at.
	// Default LeaseTTL/3.
	Heartbeat time.Duration
	// Poll bounds how long a lease request is held open waiting for work
	// (long poll) and is the idle re-poll interval workers are told to
	// use. Default 2s.
	Poll time.Duration
	// MaxAttempts caps how many times one anchor group is granted
	// (initial grant included) before its jobs fail with a structured
	// lease_failed error. Default 3.
	MaxAttempts int
}

func (fc FleetConfig) withDefaults() FleetConfig {
	if fc.LeaseTTL <= 0 {
		fc.LeaseTTL = 15 * time.Second
	}
	if fc.Heartbeat <= 0 {
		fc.Heartbeat = fc.LeaseTTL / 3
	}
	if fc.Poll <= 0 {
		fc.Poll = 2 * time.Second
	}
	if fc.MaxAttempts <= 0 {
		fc.MaxAttempts = 3
	}
	return fc
}

// EnableFleet turns the server into a fleet coordinator: sweeps no
// longer execute on the local pool — jobs are grouped by their shard
// anchor (sweep.AnchorKey) and leased to registered workers one group
// at a time, so each trained profile and each shared dependency run
// lands on exactly one worker. Call before serving traffic.
func (s *Server) EnableFleet(fc FleetConfig) {
	f := &fleet{
		s:          s,
		cfg:        fc.withDefaults(),
		workers:    make(map[string]*fleetWorker),
		leases:     make(map[string]*lease),
		open:       make(map[string]*leaseGroup),
		jobs:       make(map[string]*fleetJob),
		notify:     make(chan struct{}),
		expiryStop: make(chan struct{}),
	}
	s.fleetState = f
	go f.expiryLoop()
}

// fleet is the coordinator state machine: registered workers, granted
// leases, and the queue of anchor groups waiting for one.
//
// Lease lifecycle: granted → (heartbeats extend the deadline) →
// completed, or expired on a missed heartbeat — in which case the
// group's still-uncached jobs are requeued (reassigned) until the
// grant-attempt cap, after which they fail with a structured
// lease_failed error.
type fleet struct {
	s   *Server
	cfg FleetConfig

	mu      sync.Mutex
	workers map[string]*fleetWorker
	leases  map[string]*lease
	// queue holds anchor groups ready to grant, FIFO; open indexes the
	// queued groups still accepting jobs by group key (a granted group
	// is closed: later jobs for the same anchor form a new group).
	queue []*leaseGroup
	open  map[string]*leaseGroup
	// jobs indexes every not-yet-completed fleet job by result key, so
	// concurrent sweeps sharing jobs join one pending execution.
	jobs   map[string]*fleetJob
	notify chan struct{}
	nextID int64

	// upMu serializes entry uploads so concurrent workers racing on one
	// content-addressed key settle to exactly one disk write (the write
	// counters are train-once observables).
	upMu sync.Mutex

	expiryStop chan struct{}
	expiryOnce sync.Once

	granted      atomic.Int64
	expired      atomic.Int64
	reassigned   atomic.Int64
	leaseDone    atomic.Int64
	failedGroups atomic.Int64
}

type fleetWorker struct {
	id       string
	name     string
	lastSeen time.Time
	active   int // leases currently held
	jobsDone int64
}

// waiter is one sweep's claim on a pending job's completion.
type waiter struct {
	index int
	cb    func(sweep.JobDone)
}

type fleetJob struct {
	key     string
	job     sweep.Job
	waiters []waiter
}

// leaseGroup is one anchor group: every pending job sharing one
// sweep.AnchorKey under one configuration, granted as a unit.
type leaseGroup struct {
	gkey     string
	cfg      core.Config
	recCache int
	anchor   string
	jobs     []*fleetJob
	// attempts counts grants; it is compared against MaxAttempts when a
	// lease expires.
	attempts int
}

type lease struct {
	id       string
	workerID string
	g        *leaseGroup
	deadline time.Time
}

// wake signals long-polling lease requests that the queue changed.
// Callers hold f.mu.
func (f *fleet) wake() {
	close(f.notify)
	f.notify = make(chan struct{})
}

func (f *fleet) stopExpiry() {
	f.expiryOnce.Do(func() { close(f.expiryStop) })
}

// register admits one worker and returns its identity plus the fleet's
// timing contract.
func (f *fleet) register(name string) *wire.RegisterResponse {
	f.mu.Lock()
	f.nextID++
	id := fmt.Sprintf("wk-%d", f.nextID)
	f.workers[id] = &fleetWorker{id: id, name: name, lastSeen: time.Now()}
	f.mu.Unlock()
	return &wire.RegisterResponse{
		Versioned:   wire.Stamp(),
		WorkerID:    id,
		LeaseTTLMS:  f.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMS: f.cfg.Heartbeat.Milliseconds(),
		PollMS:      f.cfg.Poll.Milliseconds(),
	}
}

// touchWorker refreshes a worker's liveness stamp; ok=false means the
// worker never registered. Callers hold f.mu.
func (f *fleet) touchWorker(id string) (*fleetWorker, bool) {
	w := f.workers[id]
	if w == nil {
		return nil, false
	}
	w.lastSeen = time.Now()
	return w, true
}

func unknownWorker(id string) *apiError {
	return &apiError{status: http.StatusNotFound, Code: wire.CodeUnknownWorker,
		Message: fmt.Sprintf("no registered worker %q; register via POST /v1/workers first", id)}
}

func leaseGone(id string) *apiError {
	return &apiError{status: http.StatusGone, Code: wire.CodeLeaseExpired,
		Message: fmt.Sprintf("lease %q is not active (expired and reassigned, or already completed); abandon the work", id)}
}

// grant hands the next queued anchor group to a worker, holding the
// request up to wait for work to appear (long poll). A nil lease with a
// nil error means the queue stayed empty; done signals the caller's
// departure (connection closed).
func (f *fleet) grant(done <-chan struct{}, workerID string, wait time.Duration) (*wire.Lease, *apiError) {
	if wait > f.cfg.Poll {
		wait = f.cfg.Poll
	}
	deadline := time.Now().Add(wait)
	for {
		f.mu.Lock()
		w, ok := f.touchWorker(workerID)
		if !ok {
			f.mu.Unlock()
			return nil, unknownWorker(workerID)
		}
		if len(f.queue) > 0 {
			g := f.queue[0]
			f.queue = f.queue[1:]
			if f.open[g.gkey] == g {
				delete(f.open, g.gkey)
			}
			g.attempts++
			f.nextID++
			l := &lease{
				id:       fmt.Sprintf("ls-%d", f.nextID),
				workerID: workerID,
				g:        g,
				deadline: time.Now().Add(f.cfg.LeaseTTL),
			}
			f.leases[l.id] = l
			w.active++
			f.granted.Add(1)
			f.mu.Unlock()
			return f.wireLease(l), nil
		}
		ch := f.notify
		f.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, nil
		}
		t := time.NewTimer(remain)
		select {
		case <-done:
			t.Stop()
			return nil, nil
		case <-t.C:
			return nil, nil
		case <-ch:
			t.Stop()
		}
	}
}

// wireLease renders a granted lease, including the group's dependency
// closure: every reachable result key beyond the jobs themselves and
// every trained profile the group resolves, so the worker can prefetch
// what the coordinator has and upload what it produces.
func (f *fleet) wireLease(l *lease) *wire.Lease {
	g := l.g
	jobs := make([]sweep.Job, len(g.jobs))
	keys := make([]string, len(g.jobs))
	own := make(map[string]bool, len(g.jobs))
	for i, fj := range g.jobs {
		jobs[i] = fj.job
		keys[i] = fj.key
		own[fj.key] = true
	}
	wl := &wire.Lease{
		ID:             l.id,
		Config:         g.cfg,
		RecordingCache: g.recCache,
		Anchor:         g.anchor,
		Jobs:           jobs,
		JobKeys:        keys,
		Attempt:        g.attempts,
	}
	// Reachable cannot fail here: every grouped job already passed
	// validation at submission.
	if results, artifacts, _, err := sweep.Reachable(g.cfg, jobs); err == nil {
		for k := range results {
			if !own[k] {
				wl.DepKeys = append(wl.DepKeys, k)
			}
		}
		for k := range artifacts {
			wl.ArtifactKeys = append(wl.ArtifactKeys, k)
		}
		sort.Strings(wl.DepKeys)
		sort.Strings(wl.ArtifactKeys)
	}
	return wl
}

// heartbeat extends a lease's deadline and returns the renewed
// remaining lifetime.
func (f *fleet) heartbeat(leaseID, workerID string) (time.Duration, *apiError) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.touchWorker(workerID); !ok {
		return 0, unknownWorker(workerID)
	}
	l := f.leases[leaseID]
	if l == nil || l.workerID != workerID {
		return 0, leaseGone(leaseID)
	}
	l.deadline = time.Now().Add(f.cfg.LeaseTTL)
	return f.cfg.LeaseTTL, nil
}

// doneJob pairs one fleet job with its resolution, ready to fan out to
// the sweeps waiting on it.
type doneJob struct {
	fj      *fleetJob
	out     *sweep.Outcome
	src     sweep.Source
	elapsed time.Duration
	err     error
}

// fire fans completions out to every waiting sweep. The first waiter
// gets the resolving source; joiners report memory, matching the
// engine's label for waiting on a concurrent duplicate. Callers must
// not hold f.mu: callbacks take sweep and metrics locks.
func fire(dones []doneJob) {
	for _, d := range dones {
		for i, wt := range d.fj.waiters {
			src := d.src
			if i > 0 && d.err == nil {
				src = sweep.SourceMemory
			}
			wt.cb(sweep.JobDone{
				Index:   wt.index,
				Job:     d.fj.job,
				Key:     d.fj.key,
				Outcome: d.out,
				Source:  src,
				Elapsed: d.elapsed,
				Err:     d.err,
			})
		}
	}
}

// complete settles a lease: verify the report covers the whole group
// and that every claimed result was uploaded to the coordinator's
// cache, then retire the lease and fan the outcomes out. spans are the
// worker's execution spans for the lease; on a tracing coordinator they
// are imported stamped with the worker and lease identity, so the
// fleet-wide trace stays correlated.
func (f *fleet) complete(leaseID, workerID string, results []wire.JobResult, spans []obs.Span) *apiError {
	f.mu.Lock()
	w, ok := f.touchWorker(workerID)
	if !ok {
		f.mu.Unlock()
		return unknownWorker(workerID)
	}
	l := f.leases[leaseID]
	if l == nil || l.workerID != workerID {
		f.mu.Unlock()
		return leaseGone(leaseID)
	}
	// Snapshot under the lock: an expiry racing this completion would
	// requeue the group with a trimmed job list.
	groupJobs := append([]*fleetJob(nil), l.g.jobs...)
	f.mu.Unlock()

	byKey := make(map[string]wire.JobResult, len(results))
	for _, jr := range results {
		byKey[jr.Key] = jr
	}
	// Verify before claiming: a rejected completion leaves the lease
	// active, so the heartbeat/expiry machinery decides what happens
	// next (the worker retries or the group is reassigned).
	dones := make([]doneJob, 0, len(groupJobs))
	for _, fj := range groupJobs {
		jr, ok := byKey[fj.key]
		if !ok {
			return &apiError{status: http.StatusBadRequest, Code: wire.CodeBadRequest,
				Message: fmt.Sprintf("completion of lease %s is missing job %.12s", leaseID, fj.key)}
		}
		d := doneJob{fj: fj, src: parseSource(jr.Source), elapsed: time.Duration(jr.ElapsedNS)}
		if jr.Error != "" {
			d.err = &wire.Error{Code: wire.CodeWorkerError,
				Message: fmt.Sprintf("worker %s: %s", workerID, jr.Error)}
		} else {
			out, ok := f.s.cache.Get(fj.key)
			if !ok {
				return &apiError{status: http.StatusConflict, Code: wire.CodeIncompleteUpload,
					Message: fmt.Sprintf("lease %s claims job %.12s done but its result was not uploaded; upload via PUT /v1/cache/{key} before completing", leaseID, fj.key)}
			}
			d.out = out
		}
		dones = append(dones, d)
	}

	f.mu.Lock()
	if f.leases[leaseID] != l {
		// Expired while we were verifying: the group is already
		// requeued; the worker must abandon this attempt.
		f.mu.Unlock()
		return leaseGone(leaseID)
	}
	delete(f.leases, leaseID)
	w.active--
	w.jobsDone += int64(len(dones))
	for i := range dones {
		delete(f.jobs, dones[i].fj.key)
	}
	attempt := l.g.attempts
	f.leaseDone.Add(1)
	f.mu.Unlock()

	if tr := f.s.Trace; tr != nil && len(spans) > 0 {
		tr.Import(spans, workerID, leaseID, attempt)
	}
	fire(dones)
	return nil
}

func parseSource(s string) sweep.Source {
	switch s {
	case sweep.SourceExecuted.String():
		return sweep.SourceExecuted
	case sweep.SourceDisk.String():
		return sweep.SourceDisk
	default:
		return sweep.SourceMemory
	}
}

// expiryLoop scans for leases past their deadline. It stops when the
// server drains.
func (f *fleet) expiryLoop() {
	interval := f.cfg.LeaseTTL / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-f.expiryStop:
			return
		case <-t.C:
			f.expire(time.Now())
		}
	}
}

func (f *fleet) expire(now time.Time) {
	f.mu.Lock()
	var dead []*lease
	for id, l := range f.leases {
		if now.After(l.deadline) {
			dead = append(dead, l)
			delete(f.leases, id)
			if w := f.workers[l.workerID]; w != nil {
				w.active--
			}
		}
	}
	f.mu.Unlock()
	for _, l := range dead {
		f.expired.Add(1)
		f.requeueOrFail(l)
	}
}

// requeueOrFail handles one expired lease. Results the dead worker
// uploaded before missing its heartbeat are settled from the cache;
// the remainder is requeued for another worker — unless the group has
// exhausted its grant attempts, in which case its jobs fail with a
// structured lease_failed error.
func (f *fleet) requeueOrFail(l *lease) {
	g := l.g
	var remain []*fleetJob
	var dones []doneJob
	for _, fj := range g.jobs {
		if out, ok := f.s.cache.Get(fj.key); ok {
			dones = append(dones, doneJob{fj: fj, out: out, src: sweep.SourceDisk})
		} else {
			remain = append(remain, fj)
		}
	}

	f.mu.Lock()
	for i := range dones {
		delete(f.jobs, dones[i].fj.key)
	}
	switch {
	case len(remain) == 0:
		// The worker finished everything but died before completing.
	case g.attempts >= f.cfg.MaxAttempts:
		ferr := &wire.Error{Code: wire.CodeLeaseFailed,
			Message: fmt.Sprintf("anchor group %.12s: lease expired on attempt %d/%d (last worker %s); giving up",
				g.anchor, g.attempts, f.cfg.MaxAttempts, l.workerID)}
		for _, fj := range remain {
			delete(f.jobs, fj.key)
			dones = append(dones, doneJob{fj: fj, src: sweep.SourceMemory, err: ferr})
		}
		f.failedGroups.Add(1)
	default:
		// Requeue the remainder as a closed group: jobs submitted while
		// it waits form their own group rather than joining a moving one.
		g.jobs = remain
		f.queue = append(f.queue, g)
		f.reassigned.Add(1)
		f.wake()
	}
	f.mu.Unlock()
	fire(dones)
}

// enqueueItem is one cache-missed job bound for the lease queue.
type enqueueItem struct {
	job sweep.Job
	key string
	w   waiter
}

// enqueue registers one sweep's cache-missed jobs, all under one
// critical section so an anchor group submitted together is granted
// together — the invariant that keeps each training on exactly one
// worker. Jobs already pending (from any sweep) are joined, not
// duplicated.
func (f *fleet) enqueue(cfg core.Config, recCache int, items []enqueueItem) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ck := configKey(cfg)
	queued := false
	for _, it := range items {
		if fj, ok := f.jobs[it.key]; ok {
			fj.waiters = append(fj.waiters, it.w)
			continue
		}
		fj := &fleetJob{key: it.key, job: it.job, waiters: []waiter{it.w}}
		f.jobs[it.key] = fj
		anchor := sweep.AnchorKey(cfg, it.job)
		gkey := ck + "\x00" + anchor
		g := f.open[gkey]
		if g == nil {
			g = &leaseGroup{gkey: gkey, cfg: cfg, recCache: recCache, anchor: anchor}
			f.open[gkey] = g
			f.queue = append(f.queue, g)
			queued = true
		}
		g.jobs = append(g.jobs, fj)
	}
	if queued {
		f.wake()
	}
}

// runSweepFleet dispatches one sweep through the lease queue: jobs the
// coordinator's cache already answers complete locally (a warm re-run
// never touches a worker and keeps executed=0 semantics); the rest are
// grouped by anchor and granted to workers, and this goroutine waits
// for the last completion callback.
func (s *Server) runSweepFleet(r *sweepRun) {
	defer s.wg.Done()
	f := s.fleetState

	var mu sync.Mutex
	var sum sweep.Summary
	var errs []error
	remaining := len(r.jobs)
	done := make(chan struct{})
	complete := func(d sweep.JobDone) {
		s.pending.Add(-1)
		s.metrics.observe(d)
		mu.Lock()
		switch {
		case d.Err != nil:
			sum.Errors++
			errs = append(errs, fmt.Errorf("sweep: %s: %w", d.Job, d.Err))
		case d.Source == sweep.SourceExecuted:
			sum.Executed++
		case d.Source == sweep.SourceDisk:
			sum.DiskHits++
		default:
			sum.MemHits++
		}
		r.append(d)
		remaining--
		last := remaining == 0
		mu.Unlock()
		if last {
			close(done)
		}
	}

	var misses []enqueueItem
	for i, job := range r.jobs {
		start := time.Now()
		if err := job.Validate(); err != nil {
			complete(sweep.JobDone{Index: i, Job: job, Source: sweep.SourceMemory, Err: err})
			continue
		}
		key := sweep.Key(r.cfg, job)
		// The columnar layer answers first: one O(1) in-memory lookup
		// against segments synced by workers (or sealed by local runs)
		// instead of a JSON decode per job.
		if out, ok := s.segments.Get(key); ok {
			mu.Lock()
			sum.SegmentHits++
			mu.Unlock()
			complete(sweep.JobDone{Index: i, Job: job, Key: key, Outcome: out,
				Source: sweep.SourceDisk, Elapsed: time.Since(start)})
			continue
		}
		out, st := s.cache.Load(key)
		switch st {
		case sweep.LoadHit:
			complete(sweep.JobDone{Index: i, Job: job, Key: key, Outcome: out,
				Source: sweep.SourceDisk, Elapsed: time.Since(start)})
			continue
		case sweep.LoadCorrupt:
			s.metrics.corruptEntries.Add(1)
			mu.Lock()
			sum.CorruptEntries++
			mu.Unlock()
		}
		misses = append(misses, enqueueItem{job: job, key: key, w: waiter{index: i, cb: complete}})
	}
	if len(misses) > 0 {
		f.enqueue(r.cfg, r.recCache, misses)
	}
	if len(r.jobs) > 0 {
		<-done
	}

	mu.Lock()
	sum.Jobs = len(r.jobs)
	err := errors.Join(errs...)
	mu.Unlock()
	// Phase time accrues on the workers that ran the leases; their spans
	// (imported at lease completion) carry the breakdown instead.
	r.finish(sum, nil, err)
	s.metrics.sweepsCompleted.Add(1)
}

// fleetGauges is the point-in-time fleet state handed to the metrics
// renderer.
type fleetGauges struct {
	enabled      bool
	workers      int
	leasesActive int
	granted      int64
	expired      int64
	reassigned   int64
	completed    int64
	failed       int64
	perWorker    []workerGauge
}

type workerGauge struct {
	id       string
	name     string
	ageS     float64
	jobsDone int64
	active   int
}

// gauges snapshots the fleet for /metrics.
func (f *fleet) gauges() fleetGauges {
	f.mu.Lock()
	defer f.mu.Unlock()
	fg := fleetGauges{
		enabled:      true,
		workers:      len(f.workers),
		leasesActive: len(f.leases),
		granted:      f.granted.Load(),
		expired:      f.expired.Load(),
		reassigned:   f.reassigned.Load(),
		completed:    f.leaseDone.Load(),
		failed:       f.failedGroups.Load(),
	}
	now := time.Now()
	for _, w := range f.workers {
		fg.perWorker = append(fg.perWorker, workerGauge{
			id:       w.id,
			name:     w.name,
			ageS:     now.Sub(w.lastSeen).Seconds(),
			jobsDone: w.jobsDone,
			active:   w.active,
		})
	}
	sort.Slice(fg.perWorker, func(i, j int) bool { return fg.perWorker[i].id < fg.perWorker[j].id })
	return fg
}
