package serve

import (
	"fmt"
	"io"
	"runtime"
	rtmetrics "runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sweep"
)

// latencyBuckets are the per-policy job-latency histogram bounds in
// seconds: sub-millisecond cache hits up to minute-long trainings.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// histogram is one cumulative latency histogram (counts[i] covers
// observations <= latencyBuckets[i]; the +Inf bucket is total).
type histogram struct {
	counts [nBuckets + 1]uint64
	sum    float64
	total  uint64
}

const nBuckets = 16 // len(latencyBuckets); array-sized so histograms embed flat

func (h *histogram) observe(seconds float64) {
	for i, le := range latencyBuckets {
		if seconds <= le {
			h.counts[i]++
		}
	}
	h.counts[nBuckets]++
	h.sum += seconds
	h.total++
}

// metrics is the server's operational state, rendered as Prometheus
// text on /metrics. Job counters count batch jobs as their sweeps see
// them resolve (memo answers included); dependency executions surface
// through the engines' summaries, not here.
type metrics struct {
	start time.Time

	jobsExecuted atomic.Int64
	jobsDisk     atomic.Int64
	jobsMem      atomic.Int64
	jobErrors    atomic.Int64

	sweepsAccepted  atomic.Int64
	sweepsDeduped   atomic.Int64
	sweepsRejected  atomic.Int64
	sweepsCompleted atomic.Int64
	corruptEntries  atomic.Int64

	mu      sync.Mutex
	latency map[string]*histogram // by policy
}

func (m *metrics) uptime() time.Duration { return time.Since(m.start) }

// observe records one finished job.
func (m *metrics) observe(d sweep.JobDone) {
	if d.Err != nil {
		m.jobErrors.Add(1)
	} else {
		switch d.Source {
		case sweep.SourceExecuted:
			m.jobsExecuted.Add(1)
		case sweep.SourceDisk:
			m.jobsDisk.Add(1)
		default:
			m.jobsMem.Add(1)
		}
	}
	m.mu.Lock()
	if m.latency == nil {
		m.latency = make(map[string]*histogram)
	}
	h := m.latency[d.Job.Policy]
	if h == nil {
		h = &histogram{}
		m.latency[d.Job.Policy] = h
	}
	h.observe(d.Elapsed.Seconds())
	m.mu.Unlock()
}

// poolGauges carries the point-in-time pool and store state into
// render.
type poolGauges struct {
	queued, running, pending, capacity     int
	draining                               bool
	artifactLoads, artifactHits, artifactW int64
}

// render writes the Prometheus text exposition. Hand-rolled on purpose:
// the format is four line shapes, not worth a dependency.
func (m *metrics) render(w io.Writer, pool poolGauges, fg fleetGauges) {
	executed := m.jobsExecuted.Load()
	disk := m.jobsDisk.Load()
	mem := m.jobsMem.Load()
	errs := m.jobErrors.Load()
	total := executed + disk + mem

	fmt.Fprintf(w, "# HELP mcdserved_up Whether the server is serving (1) — pairs with mcdserved_draining.\n")
	fmt.Fprintf(w, "# TYPE mcdserved_up gauge\nmcdserved_up 1\n")
	fmt.Fprintf(w, "# HELP mcdserved_draining Whether the server is draining (refusing new sweeps).\n")
	draining := 0
	if pool.draining {
		draining = 1
	}
	fmt.Fprintf(w, "# TYPE mcdserved_draining gauge\nmcdserved_draining %d\n", draining)
	fmt.Fprintf(w, "# HELP mcdserved_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE mcdserved_uptime_seconds gauge\nmcdserved_uptime_seconds %g\n", m.uptime().Seconds())

	fmt.Fprintf(w, "# HELP mcdserved_queue_depth Jobs waiting in the shared worker pool's queue.\n")
	fmt.Fprintf(w, "# TYPE mcdserved_queue_depth gauge\nmcdserved_queue_depth %d\n", pool.queued)
	fmt.Fprintf(w, "# HELP mcdserved_inflight_jobs Jobs executing right now.\n")
	fmt.Fprintf(w, "# TYPE mcdserved_inflight_jobs gauge\nmcdserved_inflight_jobs %d\n", pool.running)
	fmt.Fprintf(w, "# HELP mcdserved_pending_jobs Admitted jobs not yet finished (the admission budget in use).\n")
	fmt.Fprintf(w, "# TYPE mcdserved_pending_jobs gauge\nmcdserved_pending_jobs %d\n", pool.pending)
	fmt.Fprintf(w, "# HELP mcdserved_queue_capacity The admission budget: submissions beyond it get 429.\n")
	fmt.Fprintf(w, "# TYPE mcdserved_queue_capacity gauge\nmcdserved_queue_capacity %d\n", pool.capacity)

	fmt.Fprintf(w, "# HELP mcdserved_jobs_total Batch jobs resolved, by answering layer.\n")
	fmt.Fprintf(w, "# TYPE mcdserved_jobs_total counter\n")
	fmt.Fprintf(w, "mcdserved_jobs_total{source=\"executed\"} %d\n", executed)
	fmt.Fprintf(w, "mcdserved_jobs_total{source=\"disk\"} %d\n", disk)
	fmt.Fprintf(w, "mcdserved_jobs_total{source=\"memory\"} %d\n", mem)
	fmt.Fprintf(w, "# HELP mcdserved_job_errors_total Jobs that failed to resolve.\n")
	fmt.Fprintf(w, "# TYPE mcdserved_job_errors_total counter\nmcdserved_job_errors_total %d\n", errs)
	fmt.Fprintf(w, "# HELP mcdserved_corrupt_entries_total Damaged persistent entries hit (treated as misses and rewritten); nonzero points at a damaged cache directory.\n")
	fmt.Fprintf(w, "# TYPE mcdserved_corrupt_entries_total counter\nmcdserved_corrupt_entries_total %d\n", m.corruptEntries.Load())

	fmt.Fprintf(w, "# HELP mcdserved_cache_hit_ratio Fraction of resolved jobs answered without execution.\n")
	fmt.Fprintf(w, "# TYPE mcdserved_cache_hit_ratio gauge\n")
	ratio := 0.0
	if total > 0 {
		ratio = float64(disk+mem) / float64(total)
	}
	fmt.Fprintf(w, "mcdserved_cache_hit_ratio %g\n", ratio)

	fmt.Fprintf(w, "# HELP mcdserved_jobs_per_second Lifetime job completion rate.\n")
	fmt.Fprintf(w, "# TYPE mcdserved_jobs_per_second gauge\n")
	rate := 0.0
	if up := m.uptime().Seconds(); up > 0 {
		rate = float64(total+errs) / up
	}
	fmt.Fprintf(w, "mcdserved_jobs_per_second %g\n", rate)

	fmt.Fprintf(w, "# HELP mcdserved_artifact_loads_total Artifact-store lookups (trained profiles).\n")
	fmt.Fprintf(w, "# TYPE mcdserved_artifact_loads_total counter\nmcdserved_artifact_loads_total %d\n", pool.artifactLoads)
	fmt.Fprintf(w, "# HELP mcdserved_artifact_hits_total Artifact-store lookups answered by a stored profile (no retraining).\n")
	fmt.Fprintf(w, "# TYPE mcdserved_artifact_hits_total counter\nmcdserved_artifact_hits_total %d\n", pool.artifactHits)
	fmt.Fprintf(w, "# HELP mcdserved_artifact_writes_total Trainings persisted to the artifact store.\n")
	fmt.Fprintf(w, "# TYPE mcdserved_artifact_writes_total counter\nmcdserved_artifact_writes_total %d\n", pool.artifactW)

	fmt.Fprintf(w, "# HELP mcdserved_sweeps_total Sweep submissions, by admission outcome.\n")
	fmt.Fprintf(w, "# TYPE mcdserved_sweeps_total counter\n")
	fmt.Fprintf(w, "mcdserved_sweeps_total{outcome=\"accepted\"} %d\n", m.sweepsAccepted.Load())
	fmt.Fprintf(w, "mcdserved_sweeps_total{outcome=\"deduped\"} %d\n", m.sweepsDeduped.Load())
	fmt.Fprintf(w, "mcdserved_sweeps_total{outcome=\"rejected\"} %d\n", m.sweepsRejected.Load())
	fmt.Fprintf(w, "# HELP mcdserved_sweeps_completed_total Sweeps run to completion.\n")
	fmt.Fprintf(w, "# TYPE mcdserved_sweeps_completed_total counter\nmcdserved_sweeps_completed_total %d\n", m.sweepsCompleted.Load())

	if fg.enabled {
		fmt.Fprintf(w, "# HELP mcdserved_fleet_workers Registered fleet workers.\n")
		fmt.Fprintf(w, "# TYPE mcdserved_fleet_workers gauge\nmcdserved_fleet_workers %d\n", fg.workers)
		fmt.Fprintf(w, "# HELP mcdserved_fleet_leases_active Leases currently granted and within their TTL.\n")
		fmt.Fprintf(w, "# TYPE mcdserved_fleet_leases_active gauge\nmcdserved_fleet_leases_active %d\n", fg.leasesActive)
		fmt.Fprintf(w, "# HELP mcdserved_fleet_leases_total Lease lifecycle events: granted, completed, expired (missed heartbeats), reassigned (requeued after expiry).\n")
		fmt.Fprintf(w, "# TYPE mcdserved_fleet_leases_total counter\n")
		fmt.Fprintf(w, "mcdserved_fleet_leases_total{event=\"granted\"} %d\n", fg.granted)
		fmt.Fprintf(w, "mcdserved_fleet_leases_total{event=\"completed\"} %d\n", fg.completed)
		fmt.Fprintf(w, "mcdserved_fleet_leases_total{event=\"expired\"} %d\n", fg.expired)
		fmt.Fprintf(w, "mcdserved_fleet_leases_total{event=\"reassigned\"} %d\n", fg.reassigned)
		fmt.Fprintf(w, "# HELP mcdserved_fleet_failed_groups_total Anchor groups failed after exhausting lease reassignment attempts.\n")
		fmt.Fprintf(w, "# TYPE mcdserved_fleet_failed_groups_total counter\nmcdserved_fleet_failed_groups_total %d\n", fg.failed)
		fmt.Fprintf(w, "# HELP mcdserved_fleet_worker_heartbeat_age_seconds Seconds since each worker was last heard from.\n")
		fmt.Fprintf(w, "# TYPE mcdserved_fleet_worker_heartbeat_age_seconds gauge\n")
		for _, wk := range fg.perWorker {
			fmt.Fprintf(w, "mcdserved_fleet_worker_heartbeat_age_seconds{worker=%q,name=%q} %g\n", wk.id, wk.name, wk.ageS)
		}
		fmt.Fprintf(w, "# HELP mcdserved_fleet_worker_jobs_total Jobs completed per worker.\n")
		fmt.Fprintf(w, "# TYPE mcdserved_fleet_worker_jobs_total counter\n")
		for _, wk := range fg.perWorker {
			fmt.Fprintf(w, "mcdserved_fleet_worker_jobs_total{worker=%q,name=%q} %d\n", wk.id, wk.name, wk.jobsDone)
		}
		fmt.Fprintf(w, "# HELP mcdserved_fleet_worker_active_leases Leases each worker currently holds.\n")
		fmt.Fprintf(w, "# TYPE mcdserved_fleet_worker_active_leases gauge\n")
		for _, wk := range fg.perWorker {
			fmt.Fprintf(w, "mcdserved_fleet_worker_active_leases{worker=%q,name=%q} %d\n", wk.id, wk.name, wk.active)
		}
	}

	fmt.Fprintf(w, "# HELP mcdserved_job_latency_seconds Per-policy job resolution latency (dependency work included).\n")
	fmt.Fprintf(w, "# TYPE mcdserved_job_latency_seconds histogram\n")
	m.mu.Lock()
	policies := make([]string, 0, len(m.latency))
	for p := range m.latency {
		policies = append(policies, p)
	}
	sort.Strings(policies)
	for _, p := range policies {
		h := m.latency[p]
		for i, le := range latencyBuckets {
			fmt.Fprintf(w, "mcdserved_job_latency_seconds_bucket{policy=%q,le=\"%g\"} %d\n", p, le, h.counts[i])
		}
		fmt.Fprintf(w, "mcdserved_job_latency_seconds_bucket{policy=%q,le=\"+Inf\"} %d\n", p, h.counts[nBuckets])
		fmt.Fprintf(w, "mcdserved_job_latency_seconds_sum{policy=%q} %g\n", p, h.sum)
		fmt.Fprintf(w, "mcdserved_job_latency_seconds_count{policy=%q} %d\n", p, h.total)
	}
	m.mu.Unlock()

	renderRuntime(w)
}

// renderRuntime appends the Go runtime section: the handful of process
// health gauges an operator correlates sweep behavior against (heap in
// use, GC pressure, goroutine count), read from runtime/metrics each
// scrape.
func renderRuntime(w io.Writer) {
	samples := []rtmetrics.Sample{
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/memory/classes/total:bytes"},
		{Name: "/gc/cycles/total:gc-cycles"},
	}
	rtmetrics.Read(samples)
	u := func(i int) uint64 {
		if samples[i].Value.Kind() == rtmetrics.KindUint64 {
			return samples[i].Value.Uint64()
		}
		return 0
	}
	fmt.Fprintf(w, "# HELP go_goroutines Goroutines that currently exist.\n")
	fmt.Fprintf(w, "# TYPE go_goroutines gauge\ngo_goroutines %d\n", u(0))
	fmt.Fprintf(w, "# HELP go_heap_objects_bytes Bytes of live heap objects plus unswept garbage.\n")
	fmt.Fprintf(w, "# TYPE go_heap_objects_bytes gauge\ngo_heap_objects_bytes %d\n", u(1))
	fmt.Fprintf(w, "# HELP go_memory_total_bytes All memory mapped by the Go runtime.\n")
	fmt.Fprintf(w, "# TYPE go_memory_total_bytes gauge\ngo_memory_total_bytes %d\n", u(2))
	fmt.Fprintf(w, "# HELP go_gc_cycles_total Completed GC cycles.\n")
	fmt.Fprintf(w, "# TYPE go_gc_cycles_total counter\ngo_gc_cycles_total %d\n", u(3))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP go_gc_pause_seconds_total Cumulative stop-the-world GC pause.\n")
	fmt.Fprintf(w, "# TYPE go_gc_pause_seconds_total counter\ngo_gc_pause_seconds_total %g\n",
		float64(ms.PauseTotalNs)/1e9)
}
