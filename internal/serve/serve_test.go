package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sweep"
	"repro/internal/workload"
)

// fakeExec returns a deterministic outcome derived from the job and
// counts executions per job key, so dedup can be asserted without
// running the simulator (mirroring internal/sweep's fake).
type fakeExec struct {
	mu    sync.Mutex
	byKey map[string]int
	gate  chan struct{} // when non-nil, executions block until closed
}

func (f *fakeExec) fn(keyOf func(sweep.Job) string) func(sweep.Job) (*sweep.Outcome, error) {
	return func(j sweep.Job) (*sweep.Outcome, error) {
		f.mu.Lock()
		if f.byKey == nil {
			f.byKey = make(map[string]int)
		}
		f.byKey[keyOf(j)]++
		gate := f.gate
		f.mu.Unlock()
		if gate != nil {
			<-gate
		}
		out := &sweep.Outcome{}
		out.Res.Instructions = int64(len(j.Bench) * 1000)
		out.Res.TimePs = int64(len(j.Policy)) * 1_000_000
		return out, nil
	}
}

// execCounts snapshots the per-key execution counts.
func (f *fakeExec) execCounts() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int, len(f.byKey))
	for k, v := range f.byKey {
		out[k] = v
	}
	return out
}

// testServer wires a Server with a fake executor to an httptest server
// and a client.
func testServer(t *testing.T, workers, queueDepth int) (*Server, *fakeExec, *Client) {
	t.Helper()
	dir := t.TempDir()
	s := NewServer(dir, workers, queueDepth)
	fake := &fakeExec{}
	// Test manifests carry no config overrides, so one default config
	// keys every job.
	cfg := (&sweep.Manifest{}).Config()
	s.ExecFn = fake.fn(func(j sweep.Job) string { return sweep.Key(cfg, j) })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, fake, &Client{BaseURL: ts.URL}
}

func manifestJSON(t *testing.T, m sweep.Manifest) []byte {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestConcurrentSubmissionsExecuteOnce drives N concurrent submissions
// of overlapping manifests against one daemon and asserts each unique
// job executed exactly once — the service-level mirror of the sweep
// engine's TestFleetTrainsOnce, observed through executor call counts
// and result-cache entry counts.
func TestConcurrentSubmissionsExecuteOnce(t *testing.T) {
	s, fake, c := testServer(t, 4, 0)
	benches := workload.Names()
	manifests := []sweep.Manifest{
		{Name: "a", Benchmarks: benches[0:3], Policies: []string{"baseline", "online"}},
		{Name: "b", Benchmarks: benches[1:4], Policies: []string{"baseline", "online"}},
		{Name: "c", Benchmarks: benches[2:5], Policies: []string{"baseline", "online"}},
		{Name: "d", Benchmarks: benches[0:5], Policies: []string{"baseline", "online"}},
	}
	// The union of the four grids: 5 benches x 2 policies.
	uniqueJobs := 10

	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	states := make([]*Status, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			states[i], errs[i] = c.RunManifest(manifestJSON(t, manifests[i%len(manifests)]), nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if states[i].State != StateComplete {
			t.Fatalf("client %d: state %s (%s)", i, states[i].State, states[i].Error)
		}
	}

	counts := fake.execCounts()
	if len(counts) != uniqueJobs {
		t.Errorf("executed %d unique jobs, want %d", len(counts), uniqueJobs)
	}
	for k, n := range counts {
		if n != 1 {
			t.Errorf("job key %.12s executed %d times, want exactly 1", k, n)
		}
	}
	// Every unique job landed in the persistent cache exactly once.
	entries := 0
	filepath.WalkDir(s.CacheDir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") {
			entries++
		}
		return nil
	})
	if entries != uniqueJobs {
		t.Errorf("cache holds %d entries, want %d", entries, uniqueJobs)
	}
}

// TestSweepDedupJoinsExisting submits the same work twice (spelled
// differently) and checks both land on one sweep.
func TestSweepDedupJoinsExisting(t *testing.T) {
	_, fake, c := testServer(t, 2, 0)
	m1 := sweep.Manifest{Name: "first", Benchmarks: []string{"gzip", "mcf"}, Policies: []string{"baseline"}}
	// Same job set: reordered benches, explicit default topology,
	// different name.
	m2 := sweep.Manifest{Name: "second", Benchmarks: []string{"mcf", "gzip"}, Policies: []string{"baseline"}, Topology: "paper4"}

	st1, err := c.RunManifest(manifestJSON(t, m1), nil)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Submit(manifestJSON(t, m2))
	if err != nil {
		t.Fatal(err)
	}
	if st1.ID != st2.ID {
		t.Errorf("equivalent manifests got different sweeps: %s vs %s", st1.ID, st2.ID)
	}
	if n := len(fake.execCounts()); n != 2 {
		t.Errorf("executed %d unique jobs, want 2", n)
	}
}

// TestPerSweepSummaryIsolation runs two concurrent sweeps with
// disjoint jobs on one shared engine and checks each sweep's summary
// counts only its own work — engine-wide counter deltas would
// cross-attribute executions between overlapping windows. It then
// checks a sweep answered entirely by the memo reports Executed 0.
func TestPerSweepSummaryIsolation(t *testing.T) {
	_, fake, c := testServer(t, 2, 0)
	gate := make(chan struct{})
	fake.gate = gate

	mA := manifestJSON(t, sweep.Manifest{
		Name: "iso-a", Benchmarks: workload.Names()[:2], Policies: []string{"baseline"}})
	mB := manifestJSON(t, sweep.Manifest{
		Name: "iso-b", Benchmarks: workload.Names()[2:4], Policies: []string{"baseline"}})

	var wg sync.WaitGroup
	sts := make([]*Status, 2)
	errs := make([]error, 2)
	for i, m := range [][]byte{mA, mB} {
		wg.Add(1)
		go func(i int, m []byte) {
			defer wg.Done()
			sts[i], errs[i] = c.RunManifest(m, nil)
		}(i, m)
	}
	// Let both sweeps admit and overlap, then release the executor.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	for i := range sts {
		if errs[i] != nil {
			t.Fatalf("sweep %d: %v", i, errs[i])
		}
		if got := sts[i].Summary.Executed; got != 2 {
			t.Errorf("sweep %d executed %d in its summary, want exactly its own 2 jobs", i, got)
		}
	}

	// A new sweep covering the union of both grids (distinct content
	// address, identical jobs) is answered entirely without execution:
	// Executed 0, four hits.
	fake.mu.Lock()
	fake.gate = nil
	fake.mu.Unlock()
	mUnion := manifestJSON(t, sweep.Manifest{
		Name: "iso-union", Benchmarks: workload.Names()[:4], Policies: []string{"baseline"}})
	st, err := c.RunManifest(mUnion, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Summary.Executed != 0 || st.Summary.MemHits+st.Summary.DiskHits != 4 {
		t.Errorf("warm union sweep summary %+v, want 0 executed / 4 hits", st.Summary)
	}
}

// TestFailedSweepRetries checks a sweep that finished with errors is
// not sticky: resubmitting the manifest replaces it and re-runs,
// mirroring the engine's dropped failed flights.
func TestFailedSweepRetries(t *testing.T) {
	s, _, c := testServer(t, 1, 0)
	var failOnce atomic.Bool
	failOnce.Store(true)
	s.ExecFn = func(j sweep.Job) (*sweep.Outcome, error) {
		if failOnce.Swap(false) {
			return nil, errors.New("transient: disk full")
		}
		out := &sweep.Outcome{}
		out.Res.Instructions = 1
		return out, nil
	}
	m := manifestJSON(t, sweep.Manifest{
		Name: "retry", Benchmarks: workload.Names()[:1], Policies: []string{"baseline"}})
	st, err := c.RunManifest(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed {
		t.Fatalf("first run state %s, want failed", st.State)
	}
	st2, err := c.RunManifest(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateComplete {
		t.Fatalf("resubmission after failure: state %s (%s), want complete (sticky failed sweep?)", st2.State, st2.Error)
	}
	if st2.ID != st.ID {
		t.Errorf("retry changed the sweep's content address: %s vs %s", st2.ID, st.ID)
	}
}

// TestAdmissionControl fills the job budget with gated executions and
// checks overflow submissions get 429 + Retry-After, oversized sweeps
// get 413, and the rejected sweep is admitted once the backlog drains.
func TestAdmissionControl(t *testing.T) {
	s, fake, c := testServer(t, 1, 4)
	gate := make(chan struct{})
	fake.gate = gate

	big := manifestJSON(t, sweep.Manifest{
		Name: "big", Benchmarks: workload.Names()[:3], Policies: []string{"baseline", "online"}})
	if _, err := c.Submit(big); err == nil {
		t.Fatal("6-job sweep admitted over a 4-job queue depth")
	} else if ae, ok := err.(*APIError); !ok || ae.StatusCode != 413 || ae.Code != "sweep_too_large" {
		t.Fatalf("oversized sweep: got %v, want 413 sweep_too_large", err)
	}

	first := manifestJSON(t, sweep.Manifest{
		Name: "first", Benchmarks: workload.Names()[:3], Policies: []string{"baseline"}})
	if _, err := c.Submit(first); err != nil {
		t.Fatal(err)
	}
	second := manifestJSON(t, sweep.Manifest{
		Name: "second", Benchmarks: workload.Names()[:3], Policies: []string{"online"}})
	_, err := c.Submit(second)
	ae, ok := err.(*APIError)
	if !ok || ae.StatusCode != 429 || ae.Code != "queue_full" {
		t.Fatalf("overflow submission: got %v, want 429 queue_full", err)
	}
	if ae.RetryAfter < 1 {
		t.Errorf("429 without a Retry-After estimate: %+v", ae)
	}

	close(gate)
	fake.mu.Lock()
	fake.gate = nil
	fake.mu.Unlock()
	// Wait for the first sweep to drain its budget, then the rejected
	// sweep must be admitted.
	waitPending(t, s)
	if _, err := c.RunManifest(second, nil); err != nil {
		t.Fatalf("resubmission after drain rejected: %v", err)
	}
}

func waitPending(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.pending.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pending jobs never drained: %d", s.pending.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStructuredErrors checks every rejection is a structured JSON
// error naming the offending field, with the same registered-name
// listing the CLI prints.
func TestStructuredErrors(t *testing.T) {
	_, _, c := testServer(t, 1, 0)
	cases := []struct {
		name     string
		body     string
		status   int
		code     string
		field    string
		contains string
	}{
		{"bad json", `{"benchmarks":`, 400, "bad_json", "", "manifest"},
		{"unknown topology", `{"topology":"octo8"}`, 422, "invalid_manifest", "topology", "registered: fe-be2, fine6, paper4, sync1"},
		{"unknown policy", `{"policies":["nope"]}`, 422, "invalid_manifest", "policies", "registered: baseline"},
		{"unknown scheme", `{"schemes":["Z+Q"]}`, 422, "invalid_manifest", "schemes", "registered: "},
		{"unknown benchmark", `{"benchmarks":["quake9"]}`, 422, "invalid_manifest", "benchmarks", "unknown benchmark"},
		{"bad delta", `{"policies":["offline"],"deltas":[-3]}`, 422, "invalid_manifest", "", "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Submit([]byte(tc.body))
			ae, ok := err.(*APIError)
			if !ok {
				t.Fatalf("got %v, want *APIError", err)
			}
			if ae.StatusCode != tc.status || ae.Code != tc.code || ae.Field != tc.field {
				t.Errorf("got status=%d code=%q field=%q, want %d %q %q (%s)",
					ae.StatusCode, ae.Code, ae.Field, tc.status, tc.code, tc.field, ae.Message)
			}
			if !strings.Contains(ae.Message, tc.contains) {
				t.Errorf("message %q missing %q", ae.Message, tc.contains)
			}
		})
	}

	if _, err := c.Status("sw-doesnotexist"); err == nil {
		t.Error("unknown sweep id not rejected")
	} else if ae, ok := err.(*APIError); !ok || ae.StatusCode != 404 || ae.Code != "unknown_sweep" {
		t.Errorf("unknown sweep: got %v, want 404 unknown_sweep", err)
	}
}

// TestStreamReplay checks the NDJSON stream delivers every event with
// dense sequence numbers and that ?from=N replays only the suffix.
func TestStreamReplay(t *testing.T) {
	_, _, c := testServer(t, 2, 0)
	m := manifestJSON(t, sweep.Manifest{
		Name: "stream", Benchmarks: workload.Names()[:2], Policies: []string{"baseline", "online"}})
	var events []Event
	st, err := c.RunManifest(m, func(ev Event) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("streamed %d events, want 4", len(events))
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d (not dense)", i, ev.Seq)
		}
		if ev.Outcome == nil || ev.Key == "" || ev.Source == "" {
			t.Errorf("event %d incomplete: %+v", i, ev)
		}
	}
	// Replay from the middle.
	var tail []Event
	if _, err := c.Follow(st.ID, 2, func(ev Event) { tail = append(tail, ev) }); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 2 || tail[0].Seq != 2 {
		t.Errorf("replay from 2 returned %d events starting at %v", len(tail), tail)
	}
	// An overshot from on a finished sweep must terminate immediately
	// (no events), not hang waiting for changes that never come.
	overshoot := make(chan error, 1)
	go func() {
		_, err := c.Follow(st.ID, 99, func(Event) {})
		overshoot <- err
	}()
	select {
	case err := <-overshoot:
		if err != nil {
			t.Errorf("overshot follow: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Error("overshot follow hung instead of terminating")
	}
}

// TestResultsMatchCLIMerge checks the results endpoint serves exactly
// the bytes `mcdsweep merge` would produce over the same cache.
func TestResultsMatchCLIMerge(t *testing.T) {
	s, _, c := testServer(t, 2, 0)
	m := sweep.Manifest{Name: "res", Benchmarks: workload.Names()[:2], Policies: []string{"baseline"}}
	st, err := c.RunManifest(manifestJSON(t, m), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := m.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	merged, err := sweep.Merge(m.Config(), jobs, &sweep.Cache{Dir: s.CacheDir})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.MarshalIndent(merged, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if string(got) != string(want) {
		t.Errorf("served results differ from local merge:\n%.300s\nvs\n%.300s", got, want)
	}
}

// TestResultsIncompleteConflict checks a running sweep's results
// endpoint answers 409 instead of partial data.
func TestResultsIncompleteConflict(t *testing.T) {
	_, fake, c := testServer(t, 1, 0)
	gate := make(chan struct{})
	fake.gate = gate
	defer close(gate)

	st, err := c.Submit(manifestJSON(t, sweep.Manifest{
		Name: "slow", Benchmarks: workload.Names()[:2], Policies: []string{"baseline"}}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Results(st.ID)
	if ae, ok := err.(*APIError); !ok || ae.StatusCode != 409 || ae.Code != "sweep_incomplete" {
		t.Fatalf("results of a running sweep: got %v, want 409 sweep_incomplete", err)
	}
}

// TestDrain checks graceful shutdown: in-flight sweeps finish, new
// submissions are refused with 503, and Drain is idempotent.
func TestDrain(t *testing.T) {
	s, fake, c := testServer(t, 1, 0)
	gate := make(chan struct{})
	fake.gate = gate

	m := manifestJSON(t, sweep.Manifest{
		Name: "draining", Benchmarks: workload.Names()[:2], Policies: []string{"baseline"}})
	st, err := c.Submit(m)
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	// Wait until the server flips to draining, then submissions must be
	// refused while the admitted sweep still runs.
	deadline := time.Now().Add(5 * time.Second)
	for !s.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	_, err = c.Submit(manifestJSON(t, sweep.Manifest{
		Name: "late", Benchmarks: workload.Names()[:1], Policies: []string{"online"}}))
	if ae, ok := err.(*APIError); !ok || ae.StatusCode != 503 || ae.Code != "draining" {
		t.Fatalf("submission while draining: got %v, want 503 draining", err)
	}

	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The admitted sweep ran to completion and still answers.
	final, err := c.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateComplete {
		t.Errorf("drained sweep state %s, want complete", final.State)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("second drain not idempotent: %v", err)
	}
}

// TestMetricsExposition checks the Prometheus text surface carries the
// operational gauges and the per-policy latency histograms.
func TestMetricsExposition(t *testing.T) {
	_, _, c := testServer(t, 2, 0)
	m := manifestJSON(t, sweep.Manifest{
		Name: "metrics", Benchmarks: workload.Names()[:2], Policies: []string{"baseline", "online"}})
	if _, err := c.RunManifest(m, nil); err != nil {
		t.Fatal(err)
	}
	// Resubmit: all four jobs answered by the memo, moving the hit ratio.
	if _, err := c.RunManifest(m, nil); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"mcdserved_up 1",
		"mcdserved_draining 0",
		`mcdserved_jobs_total{source="executed"} 4`,
		"mcdserved_queue_capacity",
		"mcdserved_cache_hit_ratio 0\n",
		"mcdserved_jobs_per_second",
		"mcdserved_artifact_writes_total 0",
		`mcdserved_sweeps_total{outcome="accepted"} 1`,
		`mcdserved_sweeps_total{outcome="deduped"} 1`,
		`mcdserved_job_latency_seconds_bucket{policy="baseline",le="+Inf"} 2`,
		`mcdserved_job_latency_seconds_count{policy="online"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestTrainingArtifactsSharedAcrossSweeps runs two concurrent real
// submissions whose manifests both need the same trainings and asserts
// the shared artifact store wrote each training exactly once —
// TestFleetTrainsOnce at the service boundary.
func TestTrainingArtifactsSharedAcrossSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a real profile")
	}
	dir := t.TempDir()
	s := NewServer(dir, 2, 0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}

	// Both manifests resolve the same two trainings (the off-line
	// oracle on ref and the L+F scheme on train) for g721_decode.
	m1 := manifestJSON(t, sweep.Manifest{
		Name: "t1", Benchmarks: []string{"g721_decode"}, Policies: []string{"offline", "scheme"}, Schemes: []string{"L+F"}})
	m2 := manifestJSON(t, sweep.Manifest{
		Name: "t2", Benchmarks: []string{"g721_decode"}, Policies: []string{"offline", "scheme"}, Schemes: []string{"L+F"}, Deltas: []float64{4}})

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, m := range [][]byte{m1, m2} {
		wg.Add(1)
		go func(i int, m []byte) {
			defer wg.Done()
			_, errs[i] = c.RunManifest(m, nil)
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}
	if n := s.artifacts.Writes(); n != 2 {
		t.Errorf("concurrent overlapping sweeps wrote %d artifacts, want exactly 2 (train-once)", n)
	}
}
