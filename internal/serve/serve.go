// Package serve turns the sweep engine into a long-lived, multi-tenant
// service: an HTTP/JSON daemon (cmd/mcdserved) that accepts concurrent
// sweep submissions over the same manifest schema mcdsweep uses,
// deduplicates them against the in-process singleflight layers, the
// persistent result cache and the artifact store, and streams job
// outcomes back as they finish.
//
// The service adds three things the one-shot CLI does not have:
//
//   - Admission control and backpressure. All sweeps share one bounded
//     worker pool (sweep.WorkerPool) and one job-slot budget; a submission
//     that would overflow the budget is rejected with 429 and a
//     Retry-After estimate instead of queueing unboundedly.
//
//   - Cross-request dedup. Sweeps are content-addressed: a manifest
//     whose job set (under its configuration) matches a sweep the
//     server already knows joins it instead of resubmitting, concurrent
//     sweeps sharing jobs resolve each unique job once through the
//     engine's singleflight memo, and everything lands in the same
//     persistent cache directory the CLI uses — so the service never
//     recomputes work it has seen, even across restarts.
//
//   - An operational surface: per-sweep progress and merged-result
//     endpoints, an NDJSON stream of job completions, /healthz, and
//     /metrics in Prometheus text format (queue depth, in-flight jobs,
//     cache hit ratio, jobs/sec, per-policy latency histograms).
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve/wire"
	"repro/internal/sweep"
)

// Server is the sweep-as-a-service daemon state: a registry of
// content-addressed sweeps executing on one shared bounded worker pool,
// over one persistent cache directory.
type Server struct {
	// CacheDir is the persistent result-cache directory (the artifact
	// store lives in its artifacts/ subdirectory), shared with — and
	// interchangeable with — the mcdsweep CLI's -cache directory.
	CacheDir string
	// Workers is the worker-pool size; NewServer defaults it to
	// GOMAXPROCS.
	Workers int
	// QueueDepth bounds admitted-but-unfinished jobs across all sweeps;
	// submissions that would overflow it are rejected with 429.
	QueueDepth int
	// ExecFn, when non-nil, overrides job execution on every engine the
	// server creates (tests use it to count executions without running
	// the simulator).
	ExecFn func(sweep.Job) (*sweep.Outcome, error)
	// TrainWorkers, when positive, pins intra-job training parallelism
	// on every engine the server creates, overriding manifest
	// train_workers values — the daemon operator owns the machine's
	// resource budget. 0 defers to the manifest (then GOMAXPROCS).
	// Results are bit-identical at every setting, so this never affects
	// what a sweep returns.
	TrainWorkers int
	// Trace, when non-nil, collects execution spans from every engine the
	// server creates (and, on a fleet coordinator, spans imported from
	// worker lease completions) and backs GET /v1/sweeps/{id}/trace.
	// Nil — the default — keeps tracing entirely off. Set before serving
	// traffic.
	Trace *obs.Tracer

	pool      *sweep.WorkerPool
	cache     *sweep.Cache
	artifacts *artifact.Store
	segments  *sweep.SegmentStore
	streams   *sweep.StreamStore

	// fleetState is non-nil once EnableFleet turned this server into a
	// fleet coordinator: sweeps dispatch to leased remote workers
	// instead of the local pool.
	fleetState *fleet

	mu      sync.Mutex
	engines map[string]*sweep.Engine // by configKey
	sweeps  map[string]*sweepRun     // by sweep ID

	// pending counts admitted jobs that have not finished — the
	// admission-control budget QueueDepth caps.
	pending  atomic.Int64
	draining atomic.Bool
	wg       sync.WaitGroup // one per running sweep dispatcher

	metrics metrics
}

// NewServer returns a ready server over a persistent cache directory.
// workers <= 0 means GOMAXPROCS; queueDepth <= 0 picks workers*64
// (minimum 1024).
func NewServer(cacheDir string, workers, queueDepth int) *Server {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueDepth <= 0 {
		queueDepth = sweep.DefaultQueueDepth(workers)
	}
	s := &Server{
		CacheDir:   cacheDir,
		Workers:    workers,
		QueueDepth: queueDepth,
		pool:       sweep.NewWorkerPool(workers, queueDepth),
		cache:      &sweep.Cache{Dir: cacheDir},
		artifacts:  sweep.ArtifactStore(cacheDir),
		segments:   sweep.SegmentStoreFor(cacheDir),
		streams:    sweep.StreamStoreFor(cacheDir),
		engines:    make(map[string]*sweep.Engine),
		sweeps:     make(map[string]*sweepRun),
	}
	s.metrics.start = time.Now()
	return s
}

// Sweep states reported by Status (aliases of the wire package's — the
// protocol owns the vocabulary, the service re-exports it).
const (
	StateRunning  = wire.StateRunning
	StateComplete = wire.StateComplete
	StateFailed   = wire.StateFailed
)

// Status is one sweep's progress snapshot: submission response, status
// endpoint body, and the terminal stream line's payload. The concrete
// type lives in the wire package so coordinator, worker and client
// cannot drift apart on its shape.
type Status = wire.Status

// Event is one completed job as it appears on the NDJSON stream, in
// completion order (wire.Event re-exported; see Status).
type Event = wire.Event

// sweepRun is one registered sweep: its jobs, completion-ordered events,
// and a broadcast channel streamers wait on.
type sweepRun struct {
	id   string
	name string
	cfg  core.Config
	jobs []sweep.Job
	// recCache is the manifest's recorded-stream cache override; it is
	// an execution knob (not part of cfg or the sweep ID) applied when
	// this sweep is the first to create its configuration's engine.
	recCache int

	mu      sync.Mutex
	events  []Event
	changed chan struct{}
	done    bool
	summary sweep.Summary
	phases  *sweep.PhaseBreakdown
	err     error
}

func newSweepRun(id string, m *sweep.Manifest, cfg core.Config, jobs []sweep.Job) *sweepRun {
	return &sweepRun{
		id:       id,
		name:     m.Name,
		cfg:      cfg,
		jobs:     jobs,
		recCache: m.RecordingCache,
		changed:  make(chan struct{}),
	}
}

// append records one finished job and wakes streamers.
func (r *sweepRun) append(d sweep.JobDone) {
	ev := Event{
		Versioned: wire.Stamp(),
		Job:       d.Job,
		Key:       d.Key,
		Source:    d.Source.String(),
		Elapsed:   d.Elapsed.Nanoseconds(),
		Outcome:   d.Outcome,
	}
	if d.Err != nil {
		ev.Error = d.Err.Error()
	}
	r.mu.Lock()
	ev.Seq = len(r.events)
	r.events = append(r.events, ev)
	close(r.changed)
	r.changed = make(chan struct{})
	r.mu.Unlock()
}

// finish marks the sweep done and wakes streamers one last time.
// phases is the engine's per-phase delta attributed to this sweep's Run
// (nil on a fleet coordinator, where phase time accrues on workers).
func (r *sweepRun) finish(sum sweep.Summary, phases *sweep.PhaseBreakdown, err error) {
	r.mu.Lock()
	r.done = true
	r.summary = sum
	r.phases = phases
	r.err = err
	close(r.changed)
	r.changed = make(chan struct{})
	r.mu.Unlock()
}

// next returns the events at and after from, whether the sweep is fully
// drained at that point, and a channel that closes on the next change.
func (r *sweepRun) next(from int) (evs []Event, done bool, wait <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from < len(r.events) {
		evs = append(evs, r.events[from:]...)
	}
	// >= rather than ==: a finished sweep must report done even for an
	// overshot from (a client that miscounted), or the streamer would
	// wait forever on a changed channel that never closes again.
	return evs, r.done && from+len(evs) >= len(r.events), r.changed
}

// status snapshots the sweep's progress.
func (r *sweepRun) status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		Versioned: wire.Stamp(),
		ID:        r.id,
		Name:      r.name,
		Jobs:      len(r.jobs),
		Done:      len(r.events),
		State:     StateRunning,
	}
	if r.done {
		st.State = StateComplete
		sum := r.summary
		st.Summary = &sum
		if r.phases != nil {
			pb := *r.phases
			st.Phases = &pb
		}
		if r.err != nil {
			st.State = StateFailed
			st.Error = r.err.Error()
		}
	}
	return st
}

// configKey content-addresses a configuration (topology canonicalized
// like the cache-key space) so engines — and their singleflight memo —
// are shared by every sweep running under the same configuration.
func configKey(cfg core.Config) string {
	cfg.Sim.Topology = arch.CanonicalTopologyName(cfg.Sim.Topology)
	b, err := json.Marshal(cfg)
	if err != nil {
		panic("serve: config encoding: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// SweepID content-addresses a sweep: the hash of its configuration and
// its sorted job-key set. Two manifests that enumerate the same work
// under the same configuration get the same ID — however they spell it —
// so resubmissions join the existing sweep instead of re-running it, and
// the ID is stable across server restarts.
func SweepID(cfg core.Config, jobs []sweep.Job) string {
	keys := make([]string, len(jobs))
	for i, j := range jobs {
		keys[i] = sweep.Key(cfg, j)
	}
	sort.Strings(keys)
	h := sha256.New()
	io.WriteString(h, configKey(cfg))
	for _, k := range keys {
		io.WriteString(h, k)
	}
	return "sw-" + hex.EncodeToString(h.Sum(nil))[:24]
}

// engine returns the shared engine for a configuration, creating it on
// first use. All engines share the server's pool (passed per Run call
// via sweep.WithPool), cache and artifact store, so identical jobs in
// concurrent sweeps resolve exactly once. recCache sizes the
// recorded-stream cache when this call creates the engine; later sweeps
// joining the same configuration keep the creator's sizing.
func (s *Server) engine(cfg core.Config, recCache int) *sweep.Engine {
	if s.TrainWorkers > 0 {
		cfg.TrainWorkers = s.TrainWorkers
	}
	// configKey hashes cfg's JSON encoding, which excludes TrainWorkers
	// (an execution knob): manifests differing only in train_workers
	// share one engine, keeping the exactly-once dedup intact.
	key := configKey(cfg)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.engines[key]; ok {
		return e
	}
	e := sweep.New(cfg)
	e.RecordingCache = recCache
	e.Cache = s.cache
	e.Artifacts = s.artifacts
	e.Segments = s.segments
	e.Streams = s.streams
	e.ExecFn = s.ExecFn
	e.Trace = s.Trace
	s.engines[key] = e
	return e
}

// submit registers a manifest's sweep (already validated and
// enumerated by the handler) and starts it, or joins the
// already-registered sweep with the same content address. It returns
// the sweep and whether this call created it; a non-nil *apiError is an
// admission rejection.
func (s *Server) submit(m *sweep.Manifest, jobs []sweep.Job) (*sweepRun, bool, *apiError) {
	cfg := m.Config()
	id := SweepID(cfg, jobs)

	s.mu.Lock()
	// The draining check happens under mu — the same lock Drain flips
	// the flag under — so a submission can never slip past Drain's
	// wg.Wait and dispatch onto a closed pool.
	if s.draining.Load() {
		s.mu.Unlock()
		s.metrics.sweepsRejected.Add(1)
		return nil, false, &apiError{
			status:  503,
			Code:    "draining",
			Message: "server is draining; not accepting new sweeps",
		}
	}
	if r, ok := s.sweeps[id]; ok {
		// Join the existing sweep — unless it finished with errors: the
		// engine deliberately drops failed flights so transient failures
		// (full disk, fixed permissions) can be retried, and a sticky
		// failed registry entry would make resubmission a no-op until
		// the daemon restarts. A failed sweep is replaced and re-run
		// below; its successfully completed jobs replay from the caches.
		r.mu.Lock()
		failed := r.done && r.err != nil
		r.mu.Unlock()
		if !failed {
			s.mu.Unlock()
			s.metrics.sweepsDeduped.Add(1)
			return r, false, nil
		}
	}
	// Admission: reserve one job slot per job, all or nothing, while
	// holding mu so concurrent submissions cannot jointly overshoot.
	n := int64(len(jobs))
	if n > int64(s.QueueDepth) {
		s.mu.Unlock()
		s.metrics.sweepsRejected.Add(1)
		return nil, false, &apiError{
			status: 413,
			Code:   "sweep_too_large",
			Message: fmt.Sprintf("sweep enumerates %d jobs, above the server's queue depth %d; shard the manifest",
				n, s.QueueDepth),
		}
	}
	if pending := s.pending.Load(); pending+n > int64(s.QueueDepth) {
		s.mu.Unlock()
		s.metrics.sweepsRejected.Add(1)
		return nil, false, &apiError{
			status: 429,
			Code:   "queue_full",
			Message: fmt.Sprintf("%d jobs pending, %d submitted, queue depth %d; retry later",
				pending, n, s.QueueDepth),
			retryAfter: s.retryAfter(pending),
		}
	}
	s.pending.Add(n)
	r := newSweepRun(id, m, cfg, jobs)
	s.sweeps[id] = r
	s.wg.Add(1)
	s.mu.Unlock()

	s.metrics.sweepsAccepted.Add(1)
	go s.runSweep(r)
	return r, true, nil
}

// retryAfter estimates seconds until the backlog drains, from the
// pool's lifetime completion rate, clamped to [1, 60].
func (s *Server) retryAfter(pending int64) int {
	elapsed := time.Since(s.metrics.start).Seconds()
	done := s.pool.Completed()
	if done <= 0 || elapsed <= 0 {
		return 5
	}
	est := float64(pending) / (float64(done) / elapsed)
	switch {
	case est < 1:
		return 1
	case est > 60:
		return 60
	default:
		return int(est + 0.5)
	}
}

// runSweep executes one sweep on the shared pool (or, on a fleet
// coordinator, dispatches it to leased workers), feeding its event log
// and the server metrics as each job completes. The per-sweep summary
// is tallied from this sweep's own completions — Run's summary reports
// engine-wide counter deltas, which concurrent sweeps sharing an engine
// would cross-attribute.
func (s *Server) runSweep(r *sweepRun) {
	if s.fleetState != nil {
		s.runSweepFleet(r)
		return
	}
	defer s.wg.Done()
	eng := s.engine(r.cfg, r.recCache)
	phasesBefore := eng.Phases()
	var sum sweep.Summary
	_, engSum, err := eng.Run(context.Background(), r.jobs, sweep.WithPool(s.pool), sweep.WithOnDone(func(d sweep.JobDone) {
		s.pending.Add(-1)
		s.metrics.observe(d)
		switch {
		case d.Err != nil:
			sum.Errors++
		case d.Source == sweep.SourceExecuted:
			sum.Executed++
		case d.Source == sweep.SourceDisk:
			sum.DiskHits++
		default:
			sum.MemHits++
		}
		r.append(d)
	}))
	sum.Jobs = len(r.jobs)
	// Corruption has no per-job attribution (JobDone cannot carry it),
	// so take the engine-wide delta: between concurrent sweeps it may
	// land on either, but it is a damage signal — what matters is that
	// a damaged shared directory is never silent, here or in /metrics.
	sum.CorruptEntries = engSum.CorruptEntries
	// Same for segment hits: JobDone reports SourceDisk for both cache
	// layers (a segment hit is a disk hit), so the columnar subset is
	// only known engine-wide.
	sum.SegmentHits = engSum.SegmentHits
	s.metrics.corruptEntries.Add(int64(engSum.CorruptEntries))
	// The phase delta has the same engine-wide caveat as the corruption
	// counter: concurrent sweeps sharing an engine may cross-attribute
	// wall-clock, but a lone sweep's breakdown is exact.
	phases := eng.Phases().Sub(phasesBefore)
	r.finish(sum, &phases, err)
	s.metrics.sweepsCompleted.Add(1)
}

// sweepByID looks a registered sweep up.
func (s *Server) sweepByID(id string) *sweepRun {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweeps[id]
}

// sweepCount reports how many sweeps the server knows.
func (s *Server) sweepCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sweeps)
}

// Drain gracefully stops the server: new submissions are refused with
// 503 immediately, every admitted sweep runs to completion (or ctx
// expires), and the worker pool shuts down. Status, stream, results and
// metrics endpoints keep answering throughout, so clients watching a
// draining sweep see it finish. Drain is idempotent; only the first
// call closes the pool.
func (s *Server) Drain(ctx context.Context) error {
	// Flip the flag under the registry lock: every submission that
	// passed its own draining check has already registered (and
	// wg.Add'ed) its sweep, so wg.Wait below cannot miss it.
	s.mu.Lock()
	already := s.draining.Swap(true)
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %d jobs still pending: %w", s.pending.Load(), ctx.Err())
	case <-done:
	}
	if !already {
		s.pool.Close()
		if s.fleetState != nil {
			s.fleetState.stopExpiry()
		}
	}
	return nil
}
