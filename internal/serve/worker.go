package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve/wire"
	"repro/internal/sweep"
)

// Worker is one fleet member (cmd/mcdworker's engine room): it registers
// with a coordinator, pulls jobs one anchor group at a time, heartbeats
// its lease while running, and syncs results and trained profiles back
// through the content-addressed cache endpoints. Because leases arrive
// as whole anchor groups, every training the group depends on happens
// here — exactly once fleet-wide — and the entries it uploads are
// byte-identical to what a local run would have written (the same
// deterministic serialization keyed by the same content addresses).
type Worker struct {
	// Server is the coordinator's base URL (required).
	Server string
	// Name is the operator-facing label reported at registration.
	Name string
	// CacheDir is the worker's local result-cache directory (the
	// artifact store lives in its artifacts/ subdirectory). A warm local
	// cache answers leased jobs without re-execution.
	CacheDir string
	// Workers bounds each lease's execution concurrency; 0 means
	// GOMAXPROCS.
	Workers int
	// TrainWorkers bounds intra-job training parallelism on this
	// worker's engines. The lease's configuration does not carry the
	// knob (it is execution-local, excluded from the config's JSON
	// encoding and every cache key), so each worker governs its own
	// setting; 0 means GOMAXPROCS. Results are bit-identical at every
	// setting, which is what keeps fleet-synced bytes stable.
	TrainWorkers int
	// ExecFn, when non-nil, overrides job execution (tests).
	ExecFn func(sweep.Job) (*sweep.Outcome, error)
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
	// DisableHeartbeat stops the worker from heartbeating its leases —
	// fault-injection tests use it to force coordinator-side expiry.
	DisableHeartbeat bool
	// Trace, when non-nil, collects execution spans on this worker's
	// engines; each lease's spans ship with its completion report so a
	// tracing coordinator can correlate them to the lease. Nil keeps
	// tracing off.
	Trace *obs.Tracer
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)

	id      string
	client  *Client
	cache   *sweep.Cache
	store   *artifact.Store
	segs    *sweep.SegmentStore
	streams *sweep.StreamStore
	engines map[string]*sweep.Engine
	reg     *wire.RegisterResponse
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Connection-loss policy: transient coordinator failures are retried at
// retryDelay; maxConsecutiveFails of them in a row (with no successful
// exchange in between) is a lost coordinator, and Run returns the error.
const (
	retryDelay          = time.Second
	maxConsecutiveFails = 30
)

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// Run is the worker's main loop: register, then lease/execute/sync
// until ctx is canceled (graceful shutdown, returns nil) or the
// coordinator stays unreachable past the retry budget (returns the
// error).
func (w *Worker) Run(ctx context.Context) error {
	if w.Server == "" {
		return errors.New("serve: worker: Server URL is required")
	}
	if w.CacheDir == "" {
		return errors.New("serve: worker: CacheDir is required")
	}
	w.client = &Client{BaseURL: w.Server, HTTP: w.HTTP}
	w.cache = &sweep.Cache{Dir: w.CacheDir}
	w.store = sweep.ArtifactStore(w.CacheDir)
	w.segs = sweep.SegmentStoreFor(w.CacheDir)
	w.streams = sweep.StreamStoreFor(w.CacheDir)
	w.engines = make(map[string]*sweep.Engine)

	if err := w.register(ctx); err != nil || ctx.Err() != nil {
		return err
	}
	fails := 0
	for {
		if ctx.Err() != nil {
			return nil
		}
		l, err := w.client.RequestLease(ctx, w.id, time.Duration(w.reg.PollMS)*time.Millisecond)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			var ae *APIError
			if errors.As(err, &ae) && ae.Code == wire.CodeUnknownWorker {
				// The coordinator restarted and lost our registration;
				// re-register under a fresh identity.
				w.logf("worker: coordinator no longer knows us; re-registering")
				if rerr := w.register(ctx); rerr != nil || ctx.Err() != nil {
					return rerr
				}
				continue
			}
			fails++
			if fails >= maxConsecutiveFails {
				return fmt.Errorf("serve: worker: lost coordinator %s: %w", w.Server, err)
			}
			sleepCtx(ctx, retryDelay)
			continue
		}
		fails = 0
		if l == nil {
			continue // long poll expired with no work
		}
		w.logf("worker: lease %s: %d job(s), anchor %.12s, attempt %d", l.ID, len(l.Jobs), l.Anchor, l.Attempt)
		if err := w.processLease(ctx, l); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			// The lease is abandoned; the coordinator's expiry machinery
			// reassigns the group.
			w.logf("worker: lease %s abandoned: %v", l.ID, err)
			fails++
			if fails >= maxConsecutiveFails {
				return fmt.Errorf("serve: worker: lost coordinator %s: %w", w.Server, err)
			}
			sleepCtx(ctx, retryDelay)
		}
	}
}

// register announces the worker, retrying transient failures. A nil
// error with ctx canceled means shutdown, not success.
func (w *Worker) register(ctx context.Context) error {
	fails := 0
	for {
		reg, err := w.client.RegisterWorker(ctx, w.Name)
		if err == nil {
			w.id, w.reg = reg.WorkerID, reg
			w.logf("worker: registered as %s (lease ttl %dms, heartbeat %dms)", w.id, reg.LeaseTTLMS, reg.HeartbeatMS)
			return nil
		}
		if ctx.Err() != nil {
			return nil
		}
		var ae *APIError
		if errors.As(err, &ae) && ae.Code == wire.CodeFleetDisabled {
			return fmt.Errorf("serve: worker: %s is not a fleet coordinator: %w", w.Server, err)
		}
		fails++
		if fails >= maxConsecutiveFails {
			return fmt.Errorf("serve: worker: cannot reach coordinator %s: %w", w.Server, err)
		}
		sleepCtx(ctx, retryDelay)
	}
}

// engine returns the worker's engine for a configuration, creating it
// on first use (one lease runs at a time, so no locking).
func (w *Worker) engine(cfg core.Config, recCache int) *sweep.Engine {
	if w.TrainWorkers > 0 {
		cfg.TrainWorkers = w.TrainWorkers
	}
	key := configKey(cfg)
	if e, ok := w.engines[key]; ok {
		return e
	}
	e := sweep.New(cfg)
	e.Workers = w.Workers
	e.RecordingCache = recCache
	e.Cache = w.cache
	e.Artifacts = w.store
	e.Segments = w.segs
	e.Streams = w.streams
	e.ExecFn = w.ExecFn
	e.Trace = w.Trace
	w.engines[key] = e
	return e
}

// processLease runs one anchor group end to end: prefetch the
// dependency closure the coordinator already holds, execute locally,
// upload what this run produced, and complete the lease. A lease the
// coordinator expired mid-run is abandoned silently (nil error): the
// group is already reassigned, and whatever was uploaded still counts.
func (w *Worker) processLease(ctx context.Context, l *wire.Lease) error {
	leaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// remote tracks keys confirmed present on the coordinator, so the
	// upload pass only ships what this run added.
	remote := make(map[string]bool)
	for _, k := range l.ArtifactKeys {
		if w.store.Has(k, artifact.KindProfile) {
			continue
		}
		b, ok, err := w.client.GetArtifact(leaseCtx, k)
		if err != nil {
			return fmt.Errorf("prefetch artifact %.12s: %w", k, err)
		}
		if !ok {
			continue // not trained anywhere yet; this run will produce it
		}
		if _, err := w.store.PutRaw(b); err != nil {
			return fmt.Errorf("prefetch artifact %.12s: %w", k, err)
		}
		remote[k] = true
	}
	for _, k := range append(append([]string(nil), l.DepKeys...), l.JobKeys...) {
		if _, hit := w.cache.Get(k); hit {
			continue
		}
		b, ok, err := w.client.GetCacheEntry(leaseCtx, k)
		if err != nil {
			return fmt.Errorf("prefetch result %.12s: %w", k, err)
		}
		if !ok {
			continue
		}
		if err := w.cache.PutRaw(k, b); err != nil {
			return fmt.Errorf("prefetch result %.12s: %w", k, err)
		}
		remote[k] = true
	}

	// Heartbeat until execution finishes; a lease_expired answer means
	// the group is reassigned — cancel the run and abandon.
	var lost atomic.Bool
	hbStop := make(chan struct{})
	defer close(hbStop)
	if !w.DisableHeartbeat {
		go func() {
			hb := time.Duration(w.reg.HeartbeatMS) * time.Millisecond
			if hb <= 0 {
				hb = 5 * time.Second
			}
			t := time.NewTicker(hb)
			defer t.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-leaseCtx.Done():
					return
				case <-t.C:
					if _, err := w.client.Heartbeat(leaseCtx, l.ID, w.id); err != nil {
						var ae *APIError
						if errors.As(err, &ae) &&
							(ae.Code == wire.CodeLeaseExpired || ae.Code == wire.CodeUnknownWorker) {
							lost.Store(true)
							cancel()
							return
						}
						// Transient; the next tick retries while the
						// lease's TTL holds.
					}
				}
			}
		}()
	}

	// One lease runs at a time, so bracketing the tracer's sequence
	// around the Run captures exactly this lease's spans.
	var spanFrom uint64
	if w.Trace != nil {
		spanFrom = w.Trace.NextSeq()
	}
	results := make([]wire.JobResult, len(l.Jobs))
	_, _, runErr := w.engine(l.Config, l.RecordingCache).Run(leaseCtx, l.Jobs,
		sweep.WithOnDone(func(d sweep.JobDone) {
			jr := wire.JobResult{Key: d.Key, Source: d.Source.String(), ElapsedNS: d.Elapsed.Nanoseconds()}
			if jr.Key == "" {
				// Validation failures never derive a key; the lease names it.
				jr.Key = l.JobKeys[d.Index]
			}
			if d.Err != nil {
				jr.Error = d.Err.Error()
			}
			results[d.Index] = jr
		}))
	if lost.Load() {
		return nil
	}
	if leaseCtx.Err() != nil {
		return leaseCtx.Err()
	}
	// Per-job errors are already in the results; runErr joins them and
	// the completion report carries them to the coordinator.
	_ = runErr

	// Upload what this run produced: trained profiles first (a future
	// lease can replan from them), then the result entries the
	// completion report claims.
	for _, k := range l.ArtifactKeys {
		if remote[k] {
			continue
		}
		b, err := os.ReadFile(w.store.EntryPath(k))
		if err != nil {
			continue // not produced (the depending job failed)
		}
		if err := w.client.PutArtifact(leaseCtx, k, b); err != nil {
			return fmt.Errorf("upload artifact %.12s: %w", k, err)
		}
	}
	// Results ship as one columnar segment instead of one PUT per key:
	// the coordinator decodes it, re-derives any missing canonical JSON
	// entries through the same deterministic serialization, and appends
	// the rows to its own segment layer — so synced bytes stay
	// byte-identical to a local run while the sync itself is one
	// round-trip per lease.
	var rows []sweep.Merged
	for _, k := range append(append([]string(nil), l.JobKeys...), l.DepKeys...) {
		if remote[k] {
			continue
		}
		job, out, ok := w.cache.Entry(k)
		if !ok {
			continue // the job failed; its result reports the error instead
		}
		rows = append(rows, sweep.Merged{Key: k, Job: job, Outcome: out})
	}
	if len(rows) > 0 {
		seg, err := sweep.EncodeSegment(rows)
		if err != nil {
			return fmt.Errorf("encode result segment: %w", err)
		}
		if err := w.client.PutSegment(leaseCtx, seg); err != nil {
			return fmt.Errorf("upload result segment (%d row(s)): %w", len(rows), err)
		}
	}

	var spans []obs.Span
	if w.Trace != nil {
		spans, _, _ = w.Trace.Snapshot(spanFrom)
		// Completion frames are size-capped (maxFrameBytes); keep the
		// most recent spans if a huge lease overflows the budget.
		const maxLeaseSpans = 4096
		if len(spans) > maxLeaseSpans {
			spans = spans[len(spans)-maxLeaseSpans:]
		}
	}
	if err := w.client.CompleteLease(leaseCtx, l.ID, w.id, results, spans); err != nil {
		var ae *APIError
		if errors.As(err, &ae) && ae.Code == wire.CodeLeaseExpired {
			w.logf("worker: lease %s expired before completion; group reassigned", l.ID)
			return nil
		}
		return fmt.Errorf("complete lease %s: %w", l.ID, err)
	}
	w.logf("worker: lease %s complete (%d job(s))", l.ID, len(l.Jobs))
	return nil
}
