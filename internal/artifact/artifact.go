// Package artifact implements a content-addressed, schema-versioned
// on-disk store for intermediate pipeline products — trained profiles
// (call trees plus shaken per-domain frequency histograms) today, with
// room for other stage outputs. It shares the sweep result cache's
// discipline: one JSON file per key under a two-character fan-out
// directory, written atomically (temp file + rename) so concurrent
// shards and machines can share one store, and corrupt or mismatched
// entries are reported as such and rewritten by the next producer.
//
// Artifacts differ from sweep results in what their keys hash: a result
// key covers the full core.Config because every knob can change the
// outcome, while an artifact key covers only the configuration that can
// change the training state. The threshold delta and the on-line
// controller parameters are canonicalized away, so a threshold sweep —
// or a manifest with a different calibrated delta — replans from one
// stored profile instead of retraining.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/control"
	"repro/internal/core"
)

// SchemaVersion versions both the key derivation and the payload
// encodings; bump it when either changes meaning so stale artifacts can
// never be mistaken for current ones. It is independent of the sweep
// result cache's key schema: bumping one does not move the other's keys.
const SchemaVersion = 1

// KindProfile is the artifact kind of a trained profile payload
// (core.EncodeProfile bytes).
const KindProfile = "profile"

// ProfileKey returns the content-addressed key of a trained profile: a
// hex SHA-256 of the canonical JSON of (schema version, kind, training
// configuration, benchmark, scheme, input, window). The training
// configuration is cfg with the replan-time and comparator-only knobs
// (DeltaPct, Online) zeroed — training is delta-independent, which is
// exactly what makes the stored profile shareable across deltas.
func ProfileKey(cfg core.Config, bench, scheme, input string, window int64) string {
	cfg.DeltaPct = 0
	cfg.Online = control.AttackDecayConfig{}
	// The default topology hashes as absent (like the result-cache key
	// space), so pre-topology artifacts keep their keys.
	cfg.Sim.Topology = arch.CanonicalTopologyName(cfg.Sim.Topology)
	payload := struct {
		Schema int         `json:"schema"`
		Kind   string      `json:"kind"`
		Config core.Config `json:"config"`
		Bench  string      `json:"bench"`
		Scheme string      `json:"scheme"`
		Input  string      `json:"input"`
		Window int64       `json:"window"`
	}{SchemaVersion, KindProfile, cfg, bench, scheme, input, window}
	b, err := json.Marshal(payload)
	if err != nil {
		// core.Config and the key fields are plain data; this cannot fail.
		panic("artifact: key encoding: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Status classifies the outcome of a store lookup.
type Status int

const (
	// Miss means no entry exists under the key.
	Miss Status = iota
	// Hit means a valid entry was loaded.
	Hit
	// Corrupt means an entry exists but is unreadable, syntactically
	// invalid, schema-stale, or stored under a mismatched key — the
	// caller should treat it as a miss and surface the damage.
	Corrupt
)

// Store is the on-disk artifact store rooted at Dir.
type Store struct {
	Dir string

	writes atomic.Int64
	loads  atomic.Int64
	hits   atomic.Int64
}

// entry is the on-disk representation: schema, key and kind are stored
// alongside the payload so entries are self-describing and damage
// (truncation, copies to the wrong name, stale schemas) is detectable.
type entry struct {
	Schema  int             `json:"schema"`
	Key     string          `json:"key"`
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

// EntryPath returns the path an artifact is stored at.
func (s *Store) EntryPath(key string) string {
	return filepath.Join(s.Dir, key[:2], key+".json")
}

// Load returns the payload stored under key for the given kind, with a
// status distinguishing absent entries from damaged ones.
func (s *Store) Load(key, kind string) (json.RawMessage, Status) {
	payload, status := s.load(key, kind)
	s.loads.Add(1)
	if status == Hit {
		s.hits.Add(1)
	}
	return payload, status
}

func (s *Store) load(key, kind string) (json.RawMessage, Status) {
	b, err := os.ReadFile(s.EntryPath(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, Miss
		}
		return nil, Corrupt
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, Corrupt
	}
	if e.Schema != SchemaVersion || e.Key != key || e.Kind != kind || len(e.Payload) == 0 {
		return nil, Corrupt
	}
	return e.Payload, Hit
}

// Put atomically persists a payload under key.
func (s *Store) Put(key, kind string, payload []byte) error {
	dir := filepath.Dir(s.EntryPath(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("artifact store: %w", err)
	}
	// Compact encoding: json.Marshal preserves the payload's bytes
	// exactly (payloads are already compact canonical JSON), so what
	// Load returns is byte-identical to what the producer encoded.
	b, err := json.Marshal(entry{Schema: SchemaVersion, Key: key, Kind: kind, Payload: payload})
	if err != nil {
		return fmt.Errorf("artifact store: encode %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("artifact store: %w", err)
	}
	_, werr := tmp.Write(append(b, '\n'))
	cerr := tmp.Close()
	if err := errors.Join(werr, cerr); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact store: write %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.EntryPath(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact store: %w", err)
	}
	s.writes.Add(1)
	return nil
}

// Has reports whether a valid entry of the given kind exists under key.
// Unlike Load it does not count toward the load/hit observables: it is
// the existence probe fleet synchronization uses to dedup uploads, and
// sync probes should not skew the training hit ratio.
func (s *Store) Has(key, kind string) bool {
	_, status := s.load(key, kind)
	return status == Hit
}

// PutRaw validates one serialized store entry (the bytes of an entry
// file produced by another node's Put) and persists it through Put,
// returning the entry's key. Put re-encodes the decoded entry with the
// same compact serialization that produced it, so the stored file is
// byte-identical to the uploader's; damaged or schema-stale uploads are
// rejected instead of stored.
func (s *Store) PutRaw(raw []byte) (string, error) {
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil {
		return "", fmt.Errorf("artifact store: entry: %w", err)
	}
	if e.Schema != SchemaVersion {
		return "", fmt.Errorf("artifact store: entry %.12s declares schema %d, this store speaks %d", e.Key, e.Schema, SchemaVersion)
	}
	if e.Key == "" || e.Kind == "" || len(e.Payload) == 0 {
		return "", fmt.Errorf("artifact store: entry %.12s is missing key, kind or payload", e.Key)
	}
	return e.Key, s.Put(e.Key, e.Kind, e.Payload)
}

// Writes reports how many artifacts this store instance has persisted —
// the observable that fleet-wide train-once tests assert on.
func (s *Store) Writes() int64 { return s.writes.Load() }

// Loads reports how many lookups this store instance has answered.
func (s *Store) Loads() int64 { return s.loads.Load() }

// Hits reports how many of those lookups found a valid entry — with
// Loads and Writes, the store-level hit-ratio observable a long-lived
// service exposes on its metrics surface.
func (s *Store) Hits() int64 { return s.hits.Load() }
