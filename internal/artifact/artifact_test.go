package artifact

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestProfileKeyDeltaIndependent(t *testing.T) {
	cfg := core.DefaultConfig()
	base := ProfileKey(cfg, "gzip", "L+F", "train", 1000)

	// Training is delta-independent and never touches the on-line
	// controller, so those knobs must not move the key: that is what
	// lets a threshold sweep (or a recalibrated manifest) replan from
	// one stored profile.
	cfg2 := cfg
	cfg2.DeltaPct = 8
	if ProfileKey(cfg2, "gzip", "L+F", "train", 1000) != base {
		t.Error("DeltaPct changed the artifact key")
	}
	cfg3 := cfg
	cfg3.Online.Aggressiveness = 2.5
	if ProfileKey(cfg3, "gzip", "L+F", "train", 1000) != base {
		t.Error("Online config changed the artifact key")
	}

	// Everything that can change the training state must move the key.
	variants := map[string]string{
		"bench":  ProfileKey(cfg, "mcf", "L+F", "train", 1000),
		"scheme": ProfileKey(cfg, "gzip", "F", "train", 1000),
		"input":  ProfileKey(cfg, "gzip", "L+F", "ref", 1000),
		"window": ProfileKey(cfg, "gzip", "L+F", "train", 2000),
	}
	cfg4 := cfg
	cfg4.MaxInstances++
	variants["max_instances"] = ProfileKey(cfg4, "gzip", "L+F", "train", 1000)
	cfg5 := cfg
	cfg5.Shaker.MaxPasses++
	variants["shaker"] = ProfileKey(cfg5, "gzip", "L+F", "train", 1000)
	cfg6 := cfg
	cfg6.Sim.Seed++
	variants["sim"] = ProfileKey(cfg6, "gzip", "L+F", "train", 1000)
	seen := map[string]string{base: "base"}
	for name, k := range variants {
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[k] = name
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s := &Store{Dir: t.TempDir()}
	cfg := core.DefaultConfig()
	key := ProfileKey(cfg, "gzip", "L+F", "train", 1000)
	payload := []byte(`{"hello":"world"}`)

	if _, st := s.Load(key, KindProfile); st != Miss {
		t.Fatalf("empty store lookup = %v, want Miss", st)
	}
	if err := s.Put(key, KindProfile, payload); err != nil {
		t.Fatal(err)
	}
	if n := s.Writes(); n != 1 {
		t.Fatalf("Writes() = %d, want 1", n)
	}
	got, st := s.Load(key, KindProfile)
	if st != Hit || string(got) != string(payload) {
		t.Fatalf("round trip: status=%v payload=%s", st, got)
	}

	// A lookup under the wrong kind is damage, not a hit.
	if _, st := s.Load(key, "something-else"); st != Corrupt {
		t.Errorf("kind mismatch lookup = %v, want Corrupt", st)
	}
}

func TestStoreCorruption(t *testing.T) {
	s := &Store{Dir: t.TempDir()}
	cfg := core.DefaultConfig()
	key := ProfileKey(cfg, "gzip", "L+F", "train", 1000)
	if err := s.Put(key, KindProfile, []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}

	// Truncation.
	if err := os.WriteFile(s.EntryPath(key), []byte(`{"schema":1,"key":"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, st := s.Load(key, KindProfile); st != Corrupt {
		t.Errorf("truncated entry = %v, want Corrupt", st)
	}

	// Key mismatch (file copied to the wrong name).
	other := ProfileKey(cfg, "mcf", "L+F", "train", 1000)
	if err := s.Put(other, KindProfile, []byte(`{"x":2}`)); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(s.EntryPath(other))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.EntryPath(key), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, st := s.Load(key, KindProfile); st != Corrupt {
		t.Errorf("key-mismatched entry = %v, want Corrupt", st)
	}

	// Stale schema.
	if err := os.WriteFile(s.EntryPath(key),
		[]byte(`{"schema":0,"key":"`+key+`","kind":"profile","payload":{"x":1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, st := s.Load(key, KindProfile); st != Corrupt {
		t.Errorf("stale-schema entry = %v, want Corrupt", st)
	}

	// A rewrite repairs it.
	if err := s.Put(key, KindProfile, []byte(`{"x":3}`)); err != nil {
		t.Fatal(err)
	}
	if _, st := s.Load(key, KindProfile); st != Hit {
		t.Errorf("rewritten entry = %v, want Hit", st)
	}
}

func TestStoreFanout(t *testing.T) {
	s := &Store{Dir: t.TempDir()}
	cfg := core.DefaultConfig()
	key := ProfileKey(cfg, "gzip", "L+F", "train", 1000)
	if err := s.Put(key, KindProfile, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(s.Dir, key[:2], key+".json")
	if s.EntryPath(key) != want {
		t.Errorf("EntryPath = %s, want %s", s.EntryPath(key), want)
	}
	if _, err := os.Stat(want); err != nil {
		t.Errorf("entry not at fan-out path: %v", err)
	}
}
