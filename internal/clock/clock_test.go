package clock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dvfs"
)

func TestNextEdgeFixed(t *testing.T) {
	s := New(1000) // 1000 ps period
	cases := []struct{ in, want int64 }{
		{0, 1000}, {1, 1000}, {999, 1000}, {1000, 2000}, {1500, 2000},
	}
	for _, c := range cases {
		if got := s.NextEdge(c.in); got != c.want {
			t.Errorf("NextEdge(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestNextEdgeWithPhase(t *testing.T) {
	s := NewWithPhase(1000, 300)
	if got := s.NextEdge(0); got != 300 {
		t.Errorf("first edge = %d, want 300", got)
	}
	if got := s.NextEdge(300); got != 1300 {
		t.Errorf("edge after 300 = %d, want 1300", got)
	}
}

func TestAdvanceFixed(t *testing.T) {
	s := New(500) // 2000 ps period
	if got := s.Advance(0, 3); got != 6000 {
		t.Errorf("Advance(0,3) = %d, want 6000", got)
	}
	if got := s.Advance(100, 1); got != 2000 {
		t.Errorf("Advance(100,1) = %d, want 2000", got)
	}
	if got := s.Advance(0, 0); got != 0 {
		t.Errorf("Advance(0,0) = %d, want 0", got)
	}
}

func TestAdvanceEqualsIteratedNextEdge(t *testing.T) {
	s := New(1000)
	s.SetTarget(5_000, 250)
	s.SetTarget(60_000_000, 775)
	f := func(start uint32, n uint8) bool {
		t0 := int64(start) % 80_000_000
		k := int64(n)%60 + 1
		e := s.NextEdge(t0)
		for i := int64(1); i < k; i++ {
			e = s.NextEdge(e)
		}
		return s.Advance(t0, k) == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSetTargetRampsGradually(t *testing.T) {
	s := New(1000)
	s.SetTarget(0, 900)
	// Immediately after the request the frequency is unchanged.
	if f := s.FreqAt(1); f != 1000 {
		t.Errorf("freq right after request = %d, want 1000", f)
	}
	if got := s.TargetMHz(); got != 900 {
		t.Errorf("target = %d, want 900", got)
	}
	// After the full ramp duration the frequency has arrived.
	after := dvfs.RampDurationPs(1000, 900) + 10
	if f := s.FreqAt(after); f != 900 {
		t.Errorf("freq after ramp = %d, want 900", f)
	}
	// Midway it is strictly between.
	mid := s.FreqAt(after / 2)
	if mid <= 900 || mid >= 1000 {
		t.Errorf("mid-ramp freq = %d, want in (900,1000)", mid)
	}
}

func TestSetTargetPreemptsRamp(t *testing.T) {
	s := New(1000)
	s.SetTarget(0, 250)
	// Preempt halfway and go back up.
	half := dvfs.RampDurationPs(1000, 250) / 2
	fAtHalf := s.FreqAt(half)
	s.SetTarget(half, 1000)
	if got := s.TargetMHz(); got != 1000 {
		t.Fatalf("target after preempt = %d", got)
	}
	// Frequency should still pass through intermediate values upward.
	later := s.FreqAt(half + dvfs.RampDurationPs(fAtHalf, 1000) + 10)
	if later != 1000 {
		t.Errorf("freq after re-ramp = %d, want 1000", later)
	}
}

func TestMonotonicEdges(t *testing.T) {
	s := New(1000)
	s.SetTarget(10_000, 250)
	s.SetTarget(80_000_000, 1000)
	prev := int64(-1)
	tt := int64(0)
	for i := 0; i < 10_000; i++ {
		e := s.NextEdge(tt)
		if e <= tt {
			t.Fatalf("edge %d not after query %d", e, tt)
		}
		if e <= prev {
			t.Fatalf("edges not strictly increasing: %d after %d", e, prev)
		}
		prev = e
		tt = e
	}
}

func TestCyclesIn(t *testing.T) {
	s := New(1000)
	if got := s.CyclesIn(0, 10_000); got != 10 {
		t.Errorf("CyclesIn(0,10000) = %v, want 10", got)
	}
	if got := s.CyclesIn(10, 10); got != 0 {
		t.Errorf("CyclesIn empty = %v, want 0", got)
	}
}

func TestCyclesInAcrossSegments(t *testing.T) {
	s := New(1000)
	s.SetImmediate(10_000, 500)
	// 10 cycles at 1 GHz, then 5 cycles at 500 MHz over the next 10 ns.
	if got := s.CyclesIn(0, 20_000); got != 15 {
		t.Errorf("CyclesIn = %v, want 15", got)
	}
}

func TestSetImmediate(t *testing.T) {
	s := New(1000)
	s.SetImmediate(5_000, 250)
	if f := s.FreqAt(5_001); f != 250 {
		t.Errorf("freq after SetImmediate = %d, want 250", f)
	}
	if f := s.FreqAt(4_999); f != 1000 {
		t.Errorf("freq before SetImmediate = %d, want 1000", f)
	}
}

func TestFreqQueriesOutOfOrder(t *testing.T) {
	// The segment cache must tolerate non-monotonic queries.
	s := New(1000)
	s.SetImmediate(10_000, 500)
	s.SetImmediate(20_000, 250)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		tt := rng.Int63n(30_000)
		want := 1000
		switch {
		case tt >= 20_000:
			want = 250
		case tt >= 10_000:
			want = 500
		}
		if got := s.FreqAt(tt); got != want {
			t.Fatalf("FreqAt(%d) = %d, want %d", tt, got, want)
		}
	}
}

func TestSyncDisabled(t *testing.T) {
	cfg := DefaultSyncConfig()
	cfg.Disabled = true
	sy := NewSynchronizer(cfg, 1)
	a, b := New(1000), New(500)
	if got := sy.Cross(1234, a, b); got != 1234 {
		t.Errorf("disabled Cross = %d, want passthrough", got)
	}
	if sy.Crossings != 0 {
		t.Errorf("disabled synchronizer counted crossings")
	}
}

func TestSyncSameDomainFree(t *testing.T) {
	sy := NewSynchronizer(DefaultSyncConfig(), 1)
	a := New(1000)
	if got := sy.Cross(777, a, a); got != 777 {
		t.Errorf("same-domain Cross = %d, want 777", got)
	}
}

func TestSyncWaitsForConsumerEdge(t *testing.T) {
	sy := NewSynchronizer(SyncConfig{WindowPs: 0, WindowFrac: 0, JitterPs: 0}, 1)
	prod, cons := New(1000), NewWithPhase(1000, 500)
	got := sy.Cross(1000, prod, cons)
	if got != 1500 {
		t.Errorf("Cross = %d, want next consumer edge 1500", got)
	}
}

func TestSyncPenaltyInsideWindow(t *testing.T) {
	// Consumer edge 50 ps after the data: inside a 300 ps window, the
	// value must wait a full extra consumer cycle.
	sy := NewSynchronizer(SyncConfig{WindowPs: 300, WindowFrac: 0.3, JitterPs: 0}, 1)
	prod, cons := New(1000), NewWithPhase(1000, 50)
	got := sy.Cross(1000, prod, cons)
	if got != 2050 {
		t.Errorf("Cross = %d, want 2050 (edge 1050 skipped)", got)
	}
	if sy.Penalties != 1 {
		t.Errorf("penalties = %d, want 1", sy.Penalties)
	}
}

func TestSyncPenaltyRateUnrelatedClocks(t *testing.T) {
	// With a 300 ps window and a 1000 ps consumer period, uniformly
	// distributed arrivals should pay the penalty about 30% of the time.
	sy := NewSynchronizer(DefaultSyncConfig(), 7)
	prod := New(775)
	cons := NewWithPhase(1000, 333)
	tt := int64(0)
	for i := 0; i < 20_000; i++ {
		tt = prod.NextEdge(tt)
		sy.Cross(tt, prod, cons)
	}
	rate := sy.PenaltyRate()
	if rate < 0.15 || rate > 0.45 {
		t.Errorf("penalty rate = %.3f, want around 0.3", rate)
	}
}

func TestSyncDeterministic(t *testing.T) {
	run := func() []int64 {
		sy := NewSynchronizer(DefaultSyncConfig(), 99)
		prod, cons := New(900), NewWithPhase(1000, 123)
		var out []int64
		tt := int64(0)
		for i := 0; i < 100; i++ {
			tt = prod.NextEdge(tt)
			out = append(out, sy.Cross(tt, prod, cons))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("synchronizer not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
