// Package clock models the per-domain clocks of an MCD processor: a
// piecewise-constant frequency schedule built from DVFS ramp plans, clock
// edge arithmetic on a picosecond timeline, and the inter-domain
// synchronization circuit of Sjogren and Myers as used by Semeraro et al.,
// including jitter-induced randomization.
package clock

import (
	"fmt"
	"sort"

	"repro/internal/dvfs"
)

// Segment is a maximal interval during which a domain runs at a constant
// frequency. Clock edges within a segment fall at Start + k*PeriodPs for
// k >= 1 (the edge at exactly Start belongs to the previous segment).
type Segment struct {
	Start    int64 // picoseconds
	PeriodPs int64
	MHz      int
}

// Schedule is the full frequency history of one domain. The zero value is
// unusable; create schedules with New. A Schedule is not safe for
// concurrent use.
type Schedule struct {
	segs []Segment
	last int // cache of the most recently used segment index

	// scale is the domain's DVFS envelope (ladder, voltage range, ramp
	// rate). Schedules built with New carry the paper-default envelope;
	// topology-driven machines hand each domain its own.
	scale dvfs.Scale

	// Edge cache for the final segment: once simulation time is inside
	// the last (open-ended) segment, edge arithmetic reduces to strides
	// of a constant period, so NextEdge and Advance avoid the segment
	// search and usually the division too. The cache is valid only while
	// tailPeriod > 0 and is dropped whenever the segment list changes.
	tailStart  int64   // Start of the final segment
	tailPeriod int64   // its period; 0 = cache invalid
	tailEdge   int64   // the last edge NextEdge returned inside it
	tailVolts  float64 // matched supply voltage of the final segment
}

// dropTailCache invalidates the final-segment edge cache; callers must
// invoke it before any mutation of s.segs.
func (s *Schedule) dropTailCache() { s.tailPeriod = 0 }

// fillTailCache records an edge known to lie inside the final segment.
func (s *Schedule) fillTailCache(seg Segment, edge int64) {
	s.tailStart = seg.Start
	s.tailPeriod = seg.PeriodPs
	s.tailEdge = edge
	s.tailVolts = s.scale.VoltageFor(seg.MHz)
}

// New returns a schedule running at mhz from time zero under the
// default DVFS envelope.
func New(mhz int) *Schedule { return NewWithPhase(mhz, 0) }

// NewWithPhase returns a schedule running at mhz whose clock edges are
// offset by phasePs within the period. Independent PLLs give each MCD
// domain an unrelated phase, which is what makes inter-domain
// synchronization costly even when nominal frequencies match.
func NewWithPhase(mhz int, phasePs int64) *Schedule {
	return NewScaled(dvfs.DefaultScale(), mhz, phasePs)
}

// NewScaled is NewWithPhase under an explicit per-domain DVFS envelope.
func NewScaled(sc dvfs.Scale, mhz int, phasePs int64) *Schedule {
	mhz = sc.Quantize(mhz)
	p := dvfs.PeriodPs(mhz)
	phasePs %= p
	if phasePs < 0 {
		phasePs += p
	}
	return &Schedule{scale: sc, segs: []Segment{{Start: phasePs - p, PeriodPs: p, MHz: mhz}}}
}

// Scale returns the schedule's DVFS envelope.
func (s *Schedule) Scale() dvfs.Scale { return s.scale }

// NewFixed returns a schedule pinned at mhz which is never expected to
// change; it is identical to New but documents intent (e.g. the external
// memory domain).
func NewFixed(mhz int) *Schedule { return New(mhz) }

// segAt returns the index of the segment containing time t.
func (s *Schedule) segAt(t int64) int {
	if s.tailPeriod > 0 && t >= s.tailStart {
		return len(s.segs) - 1
	}
	// Fast path: reuse the cached index; simulation time is mostly
	// monotonic, so the cached segment or its successor usually matches.
	i := s.last
	if i < len(s.segs) && s.segs[i].Start <= t {
		if i+1 >= len(s.segs) || t < s.segs[i+1].Start {
			return i
		}
		if i+2 >= len(s.segs) || t < s.segs[i+2].Start {
			s.last = i + 1
			return i + 1
		}
	}
	j := sort.Search(len(s.segs), func(k int) bool { return s.segs[k].Start > t }) - 1
	if j < 0 {
		j = 0
	}
	s.last = j
	return j
}

// FreqAt returns the effective frequency, in MHz, at time t.
func (s *Schedule) FreqAt(t int64) int { return s.segs[s.segAt(t)].MHz }

// VoltsAt returns the matched supply voltage at time t.
func (s *Schedule) VoltsAt(t int64) float64 {
	if s.tailPeriod > 0 && t >= s.tailStart {
		return s.tailVolts
	}
	return s.scale.VoltageFor(s.FreqAt(t))
}

// PeriodAt returns the clock period, in picoseconds, at time t.
func (s *Schedule) PeriodAt(t int64) int64 { return s.segs[s.segAt(t)].PeriodPs }

// NextEdge returns the earliest clock edge strictly after time t.
func (s *Schedule) NextEdge(t int64) int64 {
	if t < 0 {
		t = 0
	}
	if p := s.tailPeriod; p > 0 && t >= s.tailStart {
		// Inside the final segment: edges fall at tailStart + k*p, k >= 1.
		e := s.tailEdge
		if d := t - e; d >= 0 {
			if d < p {
				e += p
			} else {
				e += (d/p + 1) * p
			}
			s.tailEdge = e
			return e
		} else if e-t <= p {
			return e
		}
		return s.tailStart + ((t-s.tailStart)/p+1)*p
	}
	return s.nextEdgeSlow(t)
}

// nextEdgeSlow walks the segment list; it feeds the tail cache whenever
// the answer lies in the final segment.
func (s *Schedule) nextEdgeSlow(t int64) int64 {
	for i := s.segAt(t); ; i++ {
		seg := s.segs[i]
		k := (t-seg.Start)/seg.PeriodPs + 1
		e := seg.Start + k*seg.PeriodPs
		if i+1 < len(s.segs) && e >= s.segs[i+1].Start {
			// The next edge belongs to the following segment; treat its
			// start as the phase origin.
			t = s.segs[i+1].Start - 1
			continue
		}
		if i == len(s.segs)-1 {
			s.fillTailCache(seg, e)
		}
		return e
	}
}

// Advance returns the time of the n-th clock edge strictly after t: the
// completion time of an n-cycle operation that begins at the first edge
// after t. n must be positive.
func (s *Schedule) Advance(t int64, n int64) int64 {
	if n <= 0 {
		return t
	}
	e := s.NextEdge(t)
	n--
	if n > 0 && s.tailPeriod > 0 && e > s.tailStart {
		// The first edge is already inside the final segment; the rest of
		// the cycles stride at its constant period.
		return e + n*s.tailPeriod
	}
	for n > 0 {
		i := s.segAt(e)
		seg := s.segs[i]
		if i+1 >= len(s.segs) {
			return e + n*seg.PeriodPs
		}
		// Edges remaining inside this segment after e.
		room := (s.segs[i+1].Start - 1 - e) / seg.PeriodPs
		if room >= n {
			return e + n*seg.PeriodPs
		}
		if room > 0 {
			e += room * seg.PeriodPs
			n -= room
		}
		e = s.NextEdge(e)
		n--
	}
	return e
}

// SetTarget requests a frequency change toward mhz beginning at time now.
// Any previously scheduled changes after now are discarded (a new request
// preempts an in-flight ramp), and the ramp proceeds from the effective
// frequency at now, one ladder notch per RampPsPerMHz*StepMHz
// picoseconds of the schedule's envelope. The processor keeps executing
// throughout. mhz is quantized to the domain's ladder.
func (s *Schedule) SetTarget(now int64, mhz int) {
	mhz = s.scale.Quantize(mhz)
	i := s.segAt(now)
	s.dropTailCache()
	cur := s.segs[i].MHz
	// Discard scheduled future segments.
	s.segs = s.segs[:i+1]
	if s.last > i {
		s.last = i
	}
	if cur == mhz {
		return
	}
	for _, ch := range s.scale.PlanRamp(cur, mhz, now) {
		s.segs = append(s.segs, Segment{Start: ch.At, PeriodPs: dvfs.PeriodPs(ch.MHz), MHz: ch.MHz})
	}
}

// SetImmediate pins the frequency to mhz at time now with no ramp. It is
// used for modeling globally synchronous baselines, not DVFS transitions.
func (s *Schedule) SetImmediate(now int64, mhz int) {
	mhz = s.scale.Quantize(mhz)
	i := s.segAt(now)
	s.dropTailCache()
	s.segs = s.segs[:i+1]
	if s.last > i {
		s.last = i
	}
	if s.segs[i].MHz == mhz {
		return
	}
	if s.segs[i].Start == now {
		s.segs[i] = Segment{Start: now, PeriodPs: dvfs.PeriodPs(mhz), MHz: mhz}
		return
	}
	s.segs = append(s.segs, Segment{Start: now, PeriodPs: dvfs.PeriodPs(mhz), MHz: mhz})
}

// TargetMHz returns the frequency the schedule is ramping toward (the
// frequency of the final segment).
func (s *Schedule) TargetMHz() int { return s.segs[len(s.segs)-1].MHz }

// Segments returns the schedule's segments, trimmed so the last segment is
// understood to extend to infinity. The returned slice must not be
// modified.
func (s *Schedule) Segments() []Segment { return s.segs }

// CyclesIn returns the (fractional) number of clock cycles the domain
// ticks through during [t0, t1).
func (s *Schedule) CyclesIn(t0, t1 int64) float64 {
	if t1 <= t0 {
		return 0
	}
	total := 0.0
	for i := s.segAt(t0); i < len(s.segs); i++ {
		seg := s.segs[i]
		lo := max64(t0, max64(seg.Start, 0))
		hi := t1
		if i+1 < len(s.segs) && s.segs[i+1].Start < hi {
			hi = s.segs[i+1].Start
		}
		if hi > lo {
			total += float64(hi-lo) / float64(seg.PeriodPs)
		}
		if i+1 >= len(s.segs) || s.segs[i+1].Start >= t1 {
			break
		}
	}
	return total
}

// String summarizes the schedule.
func (s *Schedule) String() string {
	return fmt.Sprintf("clock.Schedule{%d segments, now->%d MHz}", len(s.segs), s.TargetMHz())
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
