package clock

import "repro/internal/xrand"

// SyncConfig parameterizes the inter-domain synchronization circuit.
type SyncConfig struct {
	// WindowPs is the synchronization window: when the destination clock
	// edge falls within this distance of the data's arrival, the consumer
	// must wait one additional cycle (paper Table 1: 300 ps, which is 30%
	// of the 1 GHz period).
	WindowPs int64
	// WindowFrac bounds the window to this fraction of the faster clock's
	// period, per Sjogren and Myers; the effective window is
	// min(WindowPs, WindowFrac * fasterPeriod).
	WindowFrac float64
	// JitterPs is the standard deviation of per-edge clock jitter
	// (paper Table 1: 110 ps, normally distributed).
	JitterPs float64
	// Disabled turns synchronization penalties off entirely, modeling a
	// globally synchronous processor (used for the MCD baseline-penalty
	// experiment).
	Disabled bool
}

// DefaultSyncConfig returns the paper's synchronization parameters.
func DefaultSyncConfig() SyncConfig {
	return SyncConfig{WindowPs: 300, WindowFrac: 0.3, JitterPs: 110}
}

// Synchronizer applies the synchronization circuit model to values
// crossing between clock domains. It is deterministic for a given seed.
type Synchronizer struct {
	cfg SyncConfig
	rng *xrand.Rand

	// Crossings counts domain-boundary transfers; Penalties counts those
	// that paid the extra consumer cycle.
	Crossings int64
	Penalties int64

	// Window memo: the effective window depends only on the faster of
	// the two periods, which is constant between DVFS steps while Cross
	// runs a few times per instruction.
	memoPeriod int64
	memoWindow int64
}

// NewSynchronizer returns a synchronizer with the given configuration and
// deterministic seed.
func NewSynchronizer(cfg SyncConfig, seed int64) *Synchronizer {
	return &Synchronizer{cfg: cfg, rng: xrand.New(seed)}
}

// Cross returns the time at which a value produced at time t in the
// producer domain becomes usable in the consumer domain: the first
// consumer clock edge after t, plus one extra consumer cycle whenever the
// edge distance (after jitter) falls inside the synchronization window.
// When the synchronizer is disabled, or producer and consumer share a
// schedule, the value is usable at t with no realignment penalty beyond
// the consumer's own edge.
func (s *Synchronizer) Cross(t int64, prod, cons *Schedule) int64 {
	if prod == cons {
		return t
	}
	if s.cfg.Disabled {
		return t
	}
	s.Crossings++
	edge := cons.NextEdge(t)
	gap := edge - t
	fasterPeriod := prod.PeriodAt(t)
	if p := cons.PeriodAt(t); p < fasterPeriod {
		fasterPeriod = p
	}
	window := s.memoWindow
	if fasterPeriod != s.memoPeriod {
		window = s.cfg.WindowPs
		if w := int64(s.cfg.WindowFrac * float64(fasterPeriod)); w < window {
			window = w
		}
		s.memoPeriod, s.memoWindow = fasterPeriod, window
	}
	// Jitter shifts both edges; the net effect on the gap is the
	// difference of two independent normal draws.
	jitter := int64((s.rng.NormFloat64() - s.rng.NormFloat64()) * s.cfg.JitterPs / 2)
	if gap+jitter < window {
		s.Penalties++
		return cons.NextEdge(edge)
	}
	return edge
}

// PenaltyRate returns the fraction of crossings that paid the extra cycle.
func (s *Synchronizer) PenaltyRate() float64 {
	if s.Crossings == 0 {
		return 0
	}
	return float64(s.Penalties) / float64(s.Crossings)
}
