package colseg

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
)

func sampleSegment(t *testing.T) ([]byte, []int64, []float64, []string, [][]float64) {
	t.Helper()
	ints := []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64, 42}
	floats := []float64{0, math.Copysign(0, -1), 1.5, -2.25, math.Inf(1), math.Inf(-1), math.NaN(), 3.14159}
	strs := []string{"adpcm", "gzip", "adpcm", "adpcm", "", "gzip", "mcf", "mcf"}
	lists := [][]float64{nil, {}, {1, 2, 3}, {-0.5}, nil, {math.MaxFloat64}, {}, {7, 8}}

	w := NewWriter(3, len(ints))
	w.Column("i", PutInt64s(ints))
	w.Column("f", PutFloat64s(floats))
	w.Column("s", PutStrings(strs))
	w.Column("l", PutFloatLists(lists))
	return w.Bytes(), ints, floats, strs, lists
}

func TestRoundTrip(t *testing.T) {
	b, ints, floats, strs, lists := sampleSegment(t)
	s, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if s.Schema != 3 || s.Rows != len(ints) {
		t.Fatalf("header: schema %d rows %d", s.Schema, s.Rows)
	}
	if got := s.Names(); !reflect.DeepEqual(got, []string{"f", "i", "l", "s"}) {
		t.Fatalf("names: %v", got)
	}

	ip, _ := s.Column("i")
	gotInts, err := Int64s(ip, s.Rows)
	if err != nil || !reflect.DeepEqual(gotInts, ints) {
		t.Fatalf("ints: %v %v", gotInts, err)
	}
	fp, _ := s.Column("f")
	gotFloats, err := Float64s(fp, s.Rows)
	if err != nil {
		t.Fatalf("floats: %v", err)
	}
	for i := range floats {
		if math.Float64bits(gotFloats[i]) != math.Float64bits(floats[i]) {
			t.Fatalf("float row %d: %x != %x", i, gotFloats[i], floats[i])
		}
	}
	sp, _ := s.Column("s")
	gotStrs, err := Strings(sp, s.Rows)
	if err != nil || !reflect.DeepEqual(gotStrs, strs) {
		t.Fatalf("strings: %v %v", gotStrs, err)
	}
	lp, _ := s.Column("l")
	gotLists, err := FloatLists(lp, s.Rows)
	if err != nil {
		t.Fatalf("lists: %v", err)
	}
	for i := range lists {
		if (lists[i] == nil) != (gotLists[i] == nil) {
			t.Fatalf("list row %d: nil-ness lost (%v vs %v)", i, lists[i], gotLists[i])
		}
		if !reflect.DeepEqual(append([]float64{}, lists[i]...), append([]float64{}, gotLists[i]...)) {
			t.Fatalf("list row %d: %v != %v", i, gotLists[i], lists[i])
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, _, _, _, _ := sampleSegment(t)
	b, _, _, _, _ := sampleSegment(t)
	if !bytes.Equal(a, b) {
		t.Fatal("same content encoded to different bytes")
	}
}

func TestCorruptionDetected(t *testing.T) {
	b, _, _, _, _ := sampleSegment(t)
	// Flip one byte everywhere in turn: every single-byte corruption
	// must be caught by magic, length, checksum, or end-marker checks.
	for i := range b {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Fatalf("byte %d flip not detected", i)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("byte %d flip: error not tagged ErrCorrupt: %v", i, err)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	b, _, _, _, _ := sampleSegment(t)
	for n := 0; n < len(b); n++ {
		if _, err := Decode(b[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d bytes not detected: %v", n, err)
		}
	}
	// The row count survives any truncation that keeps the header.
	rows, ok := PeekRows(b[:headerSize])
	if !ok || rows != 8 {
		t.Fatalf("PeekRows on truncated segment: %d %v", rows, ok)
	}
	if _, ok := PeekRows(b[:4]); ok {
		t.Fatal("PeekRows accepted a headerless prefix")
	}
}

func TestTrailingGarbageDetected(t *testing.T) {
	b, _, _, _, _ := sampleSegment(t)
	if _, err := Decode(append(append([]byte(nil), b...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage not detected: %v", err)
	}
}

func TestEmptySegment(t *testing.T) {
	w := NewWriter(1, 0)
	w.Column("i", PutInt64s(nil))
	s, err := Decode(w.Bytes())
	if err != nil || s.Rows != 0 {
		t.Fatalf("empty segment: %v %v", s, err)
	}
	vals, err := Int64s(mustCol(t, s, "i"), 0)
	if err != nil || len(vals) != 0 {
		t.Fatalf("empty column: %v %v", vals, err)
	}
}

func mustCol(t *testing.T, s *Segment, name string) []byte {
	t.Helper()
	p, ok := s.Column(name)
	if !ok {
		t.Fatalf("missing column %q", name)
	}
	return p
}
