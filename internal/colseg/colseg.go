// Package colseg is a small, dependency-free container format for
// columnar (struct-of-arrays) segment files. A segment holds a fixed
// number of rows as a set of named column blocks, each independently
// CRC-checksummed, between a header that declares the schema and row
// count and a trailing end marker that makes truncation detectable.
// The encoding is fully deterministic — the same schema, row count and
// column payloads always produce the same bytes — so segments can be
// content-addressed and re-encoded byte-identically on another node.
//
// The package also provides the typed payload codecs the sweep layer's
// columns use (in the spirit of isa.PackedStream's parallel arrays):
// zigzag-varint int64 columns, raw-bit float64 columns,
// dictionary-encoded string columns, and nil-preserving float-list
// columns. Payload helpers are independent of the container: a column
// block is just named bytes.
//
// Layout (all integers little-endian):
//
//	magic    [8]byte  "mcdseg01"
//	schema   uint32
//	rows     uint32
//	columns  uint32
//	column*  { nameLen uint16, name []byte,
//	           payloadLen uint32, crc32 uint32 (IEEE, of payload),
//	           payload []byte }
//	filecrc  uint32   (IEEE, of everything before it)
//	end      [8]byte  "mcdseg.e"
//
// Per-column checksums give block-level damage attribution; the file
// checksum closes the gaps between them (header fields, column names
// and lengths), so any single corrupted byte is detected.
package colseg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
)

var (
	magic    = [8]byte{'m', 'c', 'd', 's', 'e', 'g', '0', '1'}
	endMagic = [8]byte{'m', 'c', 'd', 's', 'e', 'g', '.', 'e'}
)

// headerSize is the fixed prefix before the first column block, and
// trailerSize the file checksum plus end marker after the last.
const (
	headerSize  = 8 + 4 + 4 + 4
	trailerSize = 4 + 8
)

// maxColumnBytes bounds one column payload; a decode that claims more
// is corrupt, not large.
const maxColumnBytes = 1 << 30

// ErrCorrupt tags every decode failure — truncated file, bad magic,
// checksum mismatch, or a malformed payload — so callers can treat
// damage uniformly (errors.Is(err, ErrCorrupt)).
var ErrCorrupt = errors.New("colseg: corrupt segment")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Writer assembles one segment. Columns are emitted in the order added;
// adding the same name twice panics (programming error).
type Writer struct {
	schema uint32
	rows   int
	names  []string
	blocks map[string][]byte
}

// NewWriter starts a segment with the given schema tag and row count.
func NewWriter(schema uint32, rows int) *Writer {
	return &Writer{schema: schema, rows: rows, blocks: make(map[string][]byte)}
}

// Column appends one named block. The payload is owned by the writer
// from here on.
func (w *Writer) Column(name string, payload []byte) {
	if _, dup := w.blocks[name]; dup {
		panic("colseg: duplicate column " + name)
	}
	if len(name) == 0 || len(name) > math.MaxUint16 {
		panic("colseg: bad column name")
	}
	w.names = append(w.names, name)
	w.blocks[name] = payload
}

// Bytes renders the segment file.
func (w *Writer) Bytes() []byte {
	size := headerSize + trailerSize
	for _, n := range w.names {
		size += 2 + len(n) + 4 + 4 + len(w.blocks[n])
	}
	out := make([]byte, 0, size)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, w.schema)
	out = binary.LittleEndian.AppendUint32(out, uint32(w.rows))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(w.names)))
	for _, n := range w.names {
		p := w.blocks[n]
		out = binary.LittleEndian.AppendUint16(out, uint16(len(n)))
		out = append(out, n...)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p)))
		out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(p))
		out = append(out, p...)
	}
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	out = append(out, endMagic[:]...)
	return out
}

// Segment is one decoded segment: its schema, row count, and validated
// column payloads.
type Segment struct {
	Schema uint32
	Rows   int

	cols map[string][]byte
}

// Column returns a named column's payload.
func (s *Segment) Column(name string) ([]byte, bool) {
	p, ok := s.cols[name]
	return p, ok
}

// Names returns the decoded column names, sorted.
func (s *Segment) Names() []string {
	out := make([]string, 0, len(s.cols))
	for n := range s.cols {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PeekRows reads the declared row count out of a possibly damaged
// segment's header. ok=false means even the header is unreadable, so
// the caller cannot attribute a row count to the damage.
func PeekRows(b []byte) (rows int, ok bool) {
	if len(b) < headerSize || [8]byte(b[:8]) != magic {
		return 0, false
	}
	return int(binary.LittleEndian.Uint32(b[12:16])), true
}

// Decode parses and fully validates a segment file: magic, end marker,
// every block's length and checksum. Any damage — including truncation
// after a valid prefix — reports ErrCorrupt.
func Decode(b []byte) (*Segment, error) {
	if len(b) < headerSize+trailerSize {
		return nil, corruptf("%d bytes is shorter than any segment", len(b))
	}
	if [8]byte(b[:8]) != magic {
		return nil, corruptf("bad magic %q", b[:8])
	}
	if [8]byte(b[len(b)-8:]) != endMagic {
		return nil, corruptf("missing end marker (truncated or trailing garbage)")
	}
	if crc32.ChecksumIEEE(b[:len(b)-trailerSize]) != binary.LittleEndian.Uint32(b[len(b)-trailerSize:]) {
		return nil, corruptf("file checksum mismatch")
	}
	s := &Segment{
		Schema: binary.LittleEndian.Uint32(b[8:12]),
		Rows:   int(binary.LittleEndian.Uint32(b[12:16])),
		cols:   make(map[string][]byte),
	}
	ncols := int(binary.LittleEndian.Uint32(b[16:20]))
	at := headerSize
	for c := 0; c < ncols; c++ {
		if len(b)-at < 2 {
			return nil, corruptf("truncated in column %d header", c)
		}
		nameLen := int(binary.LittleEndian.Uint16(b[at:]))
		at += 2
		if len(b)-at < nameLen+8 {
			return nil, corruptf("truncated in column %d header", c)
		}
		name := string(b[at : at+nameLen])
		at += nameLen
		payLen := int(binary.LittleEndian.Uint32(b[at:]))
		sum := binary.LittleEndian.Uint32(b[at+4:])
		at += 8
		if payLen > maxColumnBytes || len(b)-at < payLen {
			return nil, corruptf("truncated in column %q payload", name)
		}
		payload := b[at : at+payLen]
		at += payLen
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, corruptf("column %q checksum mismatch", name)
		}
		if _, dup := s.cols[name]; dup {
			return nil, corruptf("duplicate column %q", name)
		}
		s.cols[name] = payload
	}
	if len(b)-at != trailerSize {
		return nil, corruptf("%d bytes between last column and trailer", len(b)-at-trailerSize)
	}
	return s, nil
}

// --- typed payload codecs ---

// PutInt64s encodes an int64 column as zigzag varints.
func PutInt64s(vals []int64) []byte {
	out := make([]byte, 0, len(vals))
	for _, v := range vals {
		out = binary.AppendUvarint(out, zigzag(v))
	}
	return out
}

// Int64s decodes an int64 column of exactly rows values.
func Int64s(p []byte, rows int) ([]int64, error) {
	out := make([]int64, rows)
	at := 0
	for i := 0; i < rows; i++ {
		u, n := binary.Uvarint(p[at:])
		if n <= 0 {
			return nil, corruptf("int64 column: short read at row %d", i)
		}
		at += n
		out[i] = unzigzag(u)
	}
	if at != len(p) {
		return nil, corruptf("int64 column: %d trailing bytes", len(p)-at)
	}
	return out, nil
}

// PutFloat64s encodes a float64 column as raw IEEE-754 bits, 8 bytes a
// value, preserving every representable value exactly (NaN payloads and
// signed zeros included).
func PutFloat64s(vals []float64) []byte {
	out := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

// Float64s decodes a float64 column of exactly rows values.
func Float64s(p []byte, rows int) ([]float64, error) {
	if len(p) != 8*rows {
		return nil, corruptf("float64 column: %d bytes for %d rows", len(p), rows)
	}
	out := make([]float64, rows)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return out, nil
}

// PutStrings dictionary-encodes a string column: the distinct values in
// first-appearance order, then one varint index per row. Result-store
// string columns (benchmark and policy names) have few distinct values
// over many rows, so this is both compact and cheap to decode.
func PutStrings(vals []string) []byte {
	index := make(map[string]uint64)
	var dict []string
	for _, v := range vals {
		if _, ok := index[v]; !ok {
			index[v] = uint64(len(dict))
			dict = append(dict, v)
		}
	}
	out := binary.AppendUvarint(nil, uint64(len(dict)))
	for _, d := range dict {
		out = binary.AppendUvarint(out, uint64(len(d)))
		out = append(out, d...)
	}
	for _, v := range vals {
		out = binary.AppendUvarint(out, index[v])
	}
	return out
}

// Strings decodes a string column of exactly rows values.
func Strings(p []byte, rows int) ([]string, error) {
	dn, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, corruptf("string column: short dictionary header")
	}
	at := n
	if dn > uint64(len(p)) {
		return nil, corruptf("string column: dictionary of %d entries in %d bytes", dn, len(p))
	}
	dict := make([]string, dn)
	for i := range dict {
		sl, n := binary.Uvarint(p[at:])
		if n <= 0 {
			return nil, corruptf("string column: short dictionary entry %d", i)
		}
		at += n
		if sl > uint64(len(p)-at) {
			return nil, corruptf("string column: dictionary entry %d overruns", i)
		}
		dict[i] = string(p[at : at+int(sl)])
		at += int(sl)
	}
	out := make([]string, rows)
	for i := 0; i < rows; i++ {
		ix, n := binary.Uvarint(p[at:])
		if n <= 0 {
			return nil, corruptf("string column: short index at row %d", i)
		}
		at += n
		if ix >= dn {
			return nil, corruptf("string column: index %d out of dictionary at row %d", ix, i)
		}
		out[i] = dict[ix]
	}
	if at != len(p) {
		return nil, corruptf("string column: %d trailing bytes", len(p)-at)
	}
	return out, nil
}

// PutFloatLists encodes a column of float64 slices, preserving the
// nil/non-nil distinction (a nil slice marshals to JSON null, an empty
// one to []; the oracle byte-identity argument needs the difference to
// survive the round trip). Per row: varint 0 for nil, length+1
// otherwise; then the flat values.
func PutFloatLists(vals [][]float64) []byte {
	var out []byte
	for _, v := range vals {
		if v == nil {
			out = binary.AppendUvarint(out, 0)
			continue
		}
		out = binary.AppendUvarint(out, uint64(len(v))+1)
	}
	for _, v := range vals {
		for _, f := range v {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(f))
		}
	}
	return out
}

// FloatLists decodes a float-list column of exactly rows values.
func FloatLists(p []byte, rows int) ([][]float64, error) {
	lens := make([]int, rows) // -1 for nil
	at := 0
	total := 0
	for i := 0; i < rows; i++ {
		u, n := binary.Uvarint(p[at:])
		if n <= 0 {
			return nil, corruptf("float-list column: short length at row %d", i)
		}
		at += n
		if u == 0 {
			lens[i] = -1
			continue
		}
		lens[i] = int(u - 1)
		total += lens[i]
	}
	if len(p)-at != 8*total {
		return nil, corruptf("float-list column: %d value bytes for %d values", len(p)-at, total)
	}
	out := make([][]float64, rows)
	flat := make([]float64, total)
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[at+8*i:]))
	}
	next := 0
	for i, l := range lens {
		if l < 0 {
			continue
		}
		out[i] = flat[next : next+l : next+l]
		next += l
	}
	return out, nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
