package isa

import (
	"hash/fnv"

	"repro/internal/xrand"
)

// walker generates the dynamic stream for one (program, input) pair.
type walker struct {
	in      Input
	c       Consumer
	rng     *xrand.Rand
	stopped bool

	// sinceLoad is the dynamic distance to the most recent load, for
	// pointer-chasing dependencies. Zero means "no load yet".
	sinceLoad uint32
	// brState holds per-branch-PC pattern counters; an open-addressed
	// table because the lookup runs for most branch instructions and a
	// map's hashing dominates the pattern arithmetic it feeds.
	brState pcTable
	// memCtr holds per-block sequential access counters.
	memCtr map[*Block]uint32
	// loopSeq holds per-loop dynamic instance counters for TripsBySeq.
	loopSeq map[*Loop]int

	ins Instr // scratch instruction, reused across emissions
}

// seedFor derives the deterministic generation seed for a program+input.
func seedFor(name string, in Input) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(in.Name))
	return int64(h.Sum64()^0x9e3779b97f4a7c15) ^ in.Seed
}

// Walk generates the program's dynamic stream under the given input,
// feeding instructions and markers to c until the walk completes or c
// asks to stop. Generation is deterministic for a given (program name,
// input name, input seed).
func (p *Program) Walk(in Input, c Consumer) {
	if in.Scale == 0 {
		in.Scale = 1
	}
	w := &walker{
		in:      in,
		c:       c,
		rng:     xrand.New(seedFor(p.Name, in)),
		memCtr:  make(map[*Block]uint32),
		loopSeq: make(map[*Loop]int),
	}
	w.brState.init(1024)
	w.subroutine(p.Main)
}

func (w *walker) marker(m Marker) {
	if w.stopped {
		return
	}
	if !w.c.Marker(m) {
		w.stopped = true
	}
}

func (w *walker) subroutine(s *Subroutine) {
	if w.stopped {
		return
	}
	w.marker(Marker{Kind: SubEnter, ID: s.ID})
	w.body(s.Body)
	w.marker(Marker{Kind: SubExit, ID: s.ID})
}

func (w *walker) body(nodes []Node) {
	for _, n := range nodes {
		if w.stopped {
			return
		}
		switch n := n.(type) {
		case *Block:
			w.block(n)
		case *Loop:
			w.loop(n)
		case *Call:
			if n.When != nil && !n.When(w.in) {
				continue
			}
			w.marker(Marker{Kind: CallSite, Site: n.SiteID})
			w.subroutine(n.Target)
		}
	}
}

func (w *walker) loop(l *Loop) {
	var trips int
	if l.TripsBySeq != nil {
		seq := w.loopSeq[l]
		w.loopSeq[l] = seq + 1
		trips = l.TripsBySeq(w.in, seq)
	} else {
		trips = l.Trips(w.in)
	}
	if trips < 1 {
		return
	}
	w.marker(Marker{Kind: LoopEnter, ID: l.ID})
	for t := 0; t < trips && !w.stopped; t++ {
		w.body(l.Body)
		// Loop back-edge branch: taken on every iteration but the last,
		// giving the predictor a realistic, learnable loop branch.
		w.emitBranch(l.backPC, t < trips-1)
	}
	w.marker(Marker{Kind: LoopExit, ID: l.ID})
}

func (w *walker) emitBranch(pc uint32, taken bool) {
	if w.stopped {
		return
	}
	w.ins = Instr{Class: Branch, PC: pc, Taken: taken}
	w.bumpSinceLoad()
	if !w.c.Instr(&w.ins) {
		w.stopped = true
	}
}

func (w *walker) bumpSinceLoad() {
	if w.sinceLoad > 0 && w.sinceLoad < 65000 {
		w.sinceLoad++
	}
}

func (w *walker) block(b *Block) {
	mix := b.Mix
	rng := w.rng
	ctr := w.memCtr[b]
	n := b.Size(w.in)
	// Hoist the mix parameters: the consumer call below is opaque to the
	// compiler, so anything left behind a pointer is reloaded per
	// instruction.
	loadDepFrac := mix.LoadDepFrac
	stride, fp := mix.Stride, mix.Footprint
	if fp < stride {
		fp = stride
	}
	memBase := b.basePC * 2654435761 // per-block region
	basePC, span := b.basePC, b.span
	for j := 0; j < n && !w.stopped; j++ {
		class := mix.pick(rng.Float64())
		pc := basePC + uint32(j)%span*4
		ins := &w.ins
		*ins = Instr{Class: class, PC: pc}

		// Register dependencies.
		if loadDepFrac > 0 && w.sinceLoad > 0 && rng.Float64() < loadDepFrac {
			ins.Src1 = uint16(w.sinceLoad)
		} else if rng.Float64() < 0.85 {
			ins.Src1 = w.depDist(mix)
		}
		if rng.Float64() < 0.45 {
			ins.Src2 = w.depDist(mix)
		}

		switch class {
		case Load, Store:
			ins.Addr = memBase + (ctr*stride)%fp
			ctr++
		case Branch:
			// Whether a branch is data-dependent (unpredictable) is a
			// static property of the branch, not of the occurrence:
			// RandomFrac of the block's branch PCs are random, the rest
			// follow a learnable repeating pattern.
			if pcIsRandom(pc, mix.RandomFrac) {
				ins.Taken = rng.Float64() < mix.TakenProb
			} else {
				ins.Taken = w.patternOutcome(pc, mix.TakenProb)
			}
		}

		w.bumpSinceLoad()
		if class == Load {
			w.sinceLoad = 1
		}
		if !w.c.Instr(ins) {
			w.stopped = true
		}
	}
	w.memCtr[b] = ctr
}

// depDist draws a register dependency distance with the mix's mean,
// approximately geometric, clamped to the representable range.
func (w *walker) depDist(mix *Mix) uint16 {
	d := 1 + int(w.rng.ExpFloat64()*mix.DepMean)
	if d > 60000 {
		d = 60000
	}
	return uint16(d)
}

// pcIsRandom deterministically classifies a branch PC as data-dependent
// with probability frac.
func pcIsRandom(pc uint32, frac float64) bool {
	h := pc * 2654435761
	return float64(h%1024) < frac*1024
}

// pcTable is an open-addressed PC-keyed counter table (PCs are never
// zero, so zero keys mark empty slots). Capacity is a power of two.
type pcTable struct {
	keys []uint32
	vals []uint32
	n    int
}

func (t *pcTable) init(capacity int) {
	t.keys = make([]uint32, capacity)
	t.vals = make([]uint32, capacity)
	t.n = 0
}

// postIncr returns the counter for pc and increments it.
func (t *pcTable) postIncr(pc uint32) uint32 {
	mask := uint32(len(t.keys) - 1)
	i := (pc * 2654435761) & mask
	for {
		switch t.keys[i] {
		case pc:
			v := t.vals[i]
			t.vals[i] = v + 1
			return v
		case 0:
			if t.n >= len(t.keys)*3/4 {
				t.grow()
				return t.postIncr(pc)
			}
			t.keys[i] = pc
			t.vals[i] = 1
			t.n++
			return 0
		}
		i = (i + 1) & mask
	}
}

func (t *pcTable) grow() {
	oldK, oldV := t.keys, t.vals
	t.init(len(oldK) * 2)
	mask := uint32(len(t.keys) - 1)
	for j, k := range oldK {
		if k == 0 {
			continue
		}
		i := (k * 2654435761) & mask
		for t.keys[i] != 0 {
			i = (i + 1) & mask
		}
		t.keys[i] = k
		t.vals[i] = oldV[j]
		t.n++
	}
}

// patternOutcome produces a deterministic repeating branch pattern with
// the requested taken probability: a run of identical outcomes with one
// exception per period. Two-level predictors learn these quickly.
func (w *walker) patternOutcome(pc uint32, takenProb float64) bool {
	ctr := w.brState.postIncr(pc)
	if takenProb >= 0.5 {
		period := uint32(1.0/(1.0001-takenProb) + 0.5)
		if period < 2 {
			period = 2
		}
		return ctr%period != period-1
	}
	period := uint32(1.0/(takenProb+0.0001) + 0.5)
	if period < 2 {
		period = 2
	}
	return ctr%period == period-1
}
