// Package isa defines the synthetic instruction set and program
// representation that stands in for the paper's Alpha binaries. A Program
// is a tree of subroutines, loops, call sites and basic blocks; walking it
// with an input set produces a deterministic dynamic stream of
// instructions interleaved with structure markers (subroutine entry/exit,
// loop entry/exit, call sites). The profiler consumes the markers to build
// call trees exactly where ATOM would have instrumented a real binary; the
// cycle-level simulator consumes the instructions.
package isa

import "fmt"

// Class is the execution class of a synthetic instruction.
type Class uint8

const (
	// IntALU is a single-cycle integer operation.
	IntALU Class = iota
	// IntMul is a multi-cycle integer multiply/divide.
	IntMul
	// FPALU is a pipelined floating-point add/compare.
	FPALU
	// FPMul is a multi-cycle FP multiply/divide/sqrt.
	FPMul
	// Load reads memory through the L1 D-cache hierarchy.
	Load
	// Store writes memory through the L1 D-cache hierarchy.
	Store
	// Branch is a conditional branch resolved in the integer domain.
	Branch

	// Track is an injected path-tracking instrumentation instruction
	// (phase 4); it performs the 2-D node-label table lookup.
	Track
	// Reconfig is an injected reconfiguration instruction: it reads the
	// frequency table and writes the MCD hardware reconfiguration
	// register, retargeting all four domain frequencies.
	Reconfig

	// NumClasses counts all classes; NumMixClasses counts only the
	// classes that appear in workload mix profiles (everything before
	// Track).
	NumClasses    = 9
	NumMixClasses = 7
)

var classNames = [NumClasses]string{
	"intalu", "intmul", "fpalu", "fpmul", "load", "store", "branch", "track", "reconfig",
}

// String returns the lower-case mnemonic of the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Instr is one dynamic instruction.
type Instr struct {
	Class Class
	// PC is the (synthetic) program counter, used by the branch
	// predictor and BTB.
	PC uint32
	// Src1 and Src2 are register data-dependency distances: this
	// instruction consumes the result of the instruction Src1 (resp.
	// Src2) positions earlier in the dynamic stream. Zero means no
	// dependency.
	Src1, Src2 uint16
	// Addr is the effective address for loads and stores.
	Addr uint32
	// Taken is the actual outcome for branches.
	Taken bool
	// Freqs is the per-scalable-domain frequency target, in MHz, carried
	// by a Reconfig instruction, in the topology's domain order (the
	// default topology: front-end, integer, fp, memory). The slice is
	// owned by the edit plan and shared across emissions; consumers must
	// not mutate it.
	Freqs []uint16
}

// MarkerKind distinguishes structure markers in the dynamic stream.
type MarkerKind uint8

const (
	// SubEnter and SubExit bracket a subroutine's dynamic execution.
	SubEnter MarkerKind = iota
	SubExit
	// LoopEnter and LoopExit bracket one complete execution of a loop
	// (all iterations); loops are the strongly connected components of
	// the control-flow graph, as in the paper.
	LoopEnter
	LoopExit
	// CallSite is emitted immediately before the SubEnter of a callee
	// and identifies the static call site within the caller.
	CallSite
)

var markerNames = [...]string{"subenter", "subexit", "loopenter", "loopexit", "callsite"}

// String returns the marker kind name.
func (k MarkerKind) String() string {
	if int(k) < len(markerNames) {
		return markerNames[k]
	}
	return fmt.Sprintf("marker(%d)", uint8(k))
}

// Marker is one structure marker in the dynamic stream.
type Marker struct {
	Kind MarkerKind
	// ID is the static subroutine ID (SubEnter/SubExit) or loop ID
	// (LoopEnter/LoopExit); unused for CallSite.
	ID int32
	// Site is the static call-site ID (CallSite markers only).
	Site int32
}

// Consumer receives the dynamic stream produced by walking a program.
// Each method returns false to stop the walk early (e.g. when an
// instruction window is exhausted).
type Consumer interface {
	Instr(ins *Instr) bool
	Marker(m Marker) bool
}

// CountingConsumer wraps a Consumer with a dynamic instruction budget;
// marker items are always forwarded and do not count against the budget.
type CountingConsumer struct {
	Inner  Consumer
	Budget int64
	Seen   int64
}

// Instr forwards the instruction and decrements the budget.
func (c *CountingConsumer) Instr(ins *Instr) bool {
	if c.Seen >= c.Budget {
		return false
	}
	c.Seen++
	if !c.Inner.Instr(ins) {
		return false
	}
	return c.Seen < c.Budget
}

// Marker forwards the marker.
func (c *CountingConsumer) Marker(m Marker) bool { return c.Inner.Marker(m) }
