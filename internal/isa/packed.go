package isa

// PackedStream is a captured dynamic stream in packed struct-of-arrays
// form: the decoded fields of every instruction live in parallel arrays
// (branch outcomes bit-packed), so replay touches ~13 bytes per
// instruction instead of the ~40 an []Instr recording costs. The
// density matters twice: a retained stream cache holds more streams in
// the same budget, and a lockstep replay driving several machines from
// one pass keeps the stream itself resident in cache while the
// per-machine state streams through.
//
// A PackedStream is immutable after capture and safe for concurrent
// replay. Replay is item-for-item identical to the generating walk (and
// to a Recording of the same walk): consumers cannot tell the sources
// apart, so simulation results — and therefore cache keys and report
// bytes — do not depend on which source fed them.
type PackedStream struct {
	class []Class
	pc    []uint32
	addr  []uint32
	src1  []uint16
	src2  []uint16
	// taken is bit-packed, one bit per instruction.
	taken []uint64
	// freqs holds the Freqs slices of the rare instructions that carry
	// one (injected Reconfig instructions, which never appear in program
	// walks but could appear in a re-captured edited stream), keyed by
	// instruction index. Nil when no instruction carries frequencies.
	freqs map[int64][]uint16

	// markers[i] fires before the instruction at index markerPos[i];
	// positions are nondecreasing.
	markers   []Marker
	markerPos []int64
}

// RecordPacked walks the program under the input and captures the
// complete stream in packed form.
func RecordPacked(p *Program, in Input) *PackedStream { return RecordPackedSized(p, in, 0) }

// RecordPackedSized is RecordPacked with a capacity hint for the
// expected number of instructions (a known window length). An exact
// hint makes the capture a single allocation per array.
func RecordPackedSized(p *Program, in Input, hint int64) *PackedStream {
	s := &PackedStream{}
	if hint > 0 {
		s.class = make([]Class, 0, hint)
		s.pc = make([]uint32, 0, hint)
		s.addr = make([]uint32, 0, hint)
		s.src1 = make([]uint16, 0, hint)
		s.src2 = make([]uint16, 0, hint)
		s.taken = make([]uint64, 0, hint/64+1)
		s.markers = make([]Marker, 0, hint/8+16)
		s.markerPos = make([]int64, 0, hint/8+16)
	}
	p.Walk(in, (*packedRecorder)(s))
	return s
}

// Pack converts a Recording to packed form; the two replay identically.
func Pack(r *Recording) *PackedStream {
	s := &PackedStream{
		markers:   r.markers,
		markerPos: r.markerPos,
	}
	rec := (*packedRecorder)(s)
	for i := range r.instrs {
		rec.Instr(&r.instrs[i])
	}
	return s
}

// Instructions returns the number of captured instructions.
func (s *PackedStream) Instructions() int64 { return int64(len(s.class)) }

// load reconstructs instruction i into the scratch instruction.
func (s *PackedStream) load(i int64, ins *Instr) {
	ins.Class = s.class[i]
	ins.PC = s.pc[i]
	ins.Src1 = s.src1[i]
	ins.Src2 = s.src2[i]
	ins.Addr = s.addr[i]
	ins.Taken = s.taken[i>>6]&(1<<(uint(i)&63)) != 0
	ins.Freqs = nil
	if s.freqs != nil {
		ins.Freqs = s.freqs[i]
	}
}

// Feed implements Feeder by replay. The *Instr passed to the consumer
// is a reconstruction scratch reused between calls and must not be
// modified or retained — the same contract a generating walk's scratch
// instruction has. A CountingConsumer wrapper is unwrapped so the
// per-instruction path makes one direct budget check and one interface
// call, not two; the unwrapped replay is item-for-item identical.
func (s *PackedStream) Feed(c Consumer) {
	inner := c
	var cc *CountingConsumer
	if w, ok := c.(*CountingConsumer); ok {
		cc, inner = w, w.Inner
	}
	var scratch Instr
	mi := 0
	nextMarker := int64(-1)
	if len(s.markerPos) > 0 {
		nextMarker = s.markerPos[0]
	}
	n := s.Instructions()
	for i := int64(0); i < n; i++ {
		for nextMarker == i {
			if !inner.Marker(s.markers[mi]) {
				return
			}
			mi++
			nextMarker = -1
			if mi < len(s.markerPos) {
				nextMarker = s.markerPos[mi]
			}
		}
		s.load(i, &scratch)
		if cc != nil {
			if cc.Seen >= cc.Budget {
				return
			}
			cc.Seen++
			if !inner.Instr(&scratch) {
				return
			}
			if cc.Seen >= cc.Budget {
				return
			}
			continue
		}
		if !inner.Instr(&scratch) {
			return
		}
	}
	for mi < len(s.markers) {
		if !inner.Marker(s.markers[mi]) {
			return
		}
		mi++
	}
}

// StreamLane couples one consumer with its instruction budget for a
// lockstep replay. Budget <= 0 means unlimited. Seen reports how many
// instructions the lane received (like CountingConsumer.Seen).
type StreamLane struct {
	Consumer Consumer
	Budget   int64
	Seen     int64
}

// FeedLockstep replays the stream once while driving every lane from
// the same pass: each item is reconstructed once and handed to each
// still-active lane in lane order. Per lane, the delivered sequence —
// including budget exhaustion and early stops — is exactly what
// Feed(&CountingConsumer{Inner: lane.Consumer, Budget: lane.Budget})
// would deliver, so N machines stepped in lockstep compute precisely
// what N sequential replays would. The shared *Instr scratch must not
// be modified or retained by any lane (the standard consumer contract).
// The replay stops as soon as every lane has stopped. Steady-state
// delivery performs no allocations.
func (s *PackedStream) FeedLockstep(lanes []StreamLane) {
	if len(lanes) == 0 {
		return
	}
	// active holds the indices of lanes still consuming, in lane order;
	// compaction on stop keeps the hot loop's width equal to the number
	// of live lanes.
	active := make([]int, 0, len(lanes))
	for i := range lanes {
		lanes[i].Seen = 0
		if lanes[i].Budget <= 0 {
			lanes[i].Budget = 1<<63 - 1
		}
		if lanes[i].Consumer != nil {
			active = append(active, i)
		}
	}
	var scratch Instr
	mi := 0
	nextMarker := int64(-1)
	if len(s.markerPos) > 0 {
		nextMarker = s.markerPos[0]
	}
	n := s.Instructions()
	for i := int64(0); i < n && len(active) > 0; i++ {
		for nextMarker == i {
			for k := 0; k < len(active); {
				if !lanes[active[k]].Consumer.Marker(s.markers[mi]) {
					active = append(active[:k], active[k+1:]...)
					continue
				}
				k++
			}
			mi++
			nextMarker = -1
			if mi < len(s.markerPos) {
				nextMarker = s.markerPos[mi]
			}
			if len(active) == 0 {
				return
			}
		}
		s.load(i, &scratch)
		for k := 0; k < len(active); {
			l := &lanes[active[k]]
			if l.Seen >= l.Budget {
				active = append(active[:k], active[k+1:]...)
				continue
			}
			l.Seen++
			if !l.Consumer.Instr(&scratch) || l.Seen >= l.Budget {
				active = append(active[:k], active[k+1:]...)
				continue
			}
			k++
		}
	}
	for mi < len(s.markers) && len(active) > 0 {
		for k := 0; k < len(active); {
			if !lanes[active[k]].Consumer.Marker(s.markers[mi]) {
				active = append(active[:k], active[k+1:]...)
				continue
			}
			k++
		}
		mi++
	}
}

// packedRecorder adapts PackedStream to Consumer for capture.
type packedRecorder PackedStream

func (r *packedRecorder) Instr(ins *Instr) bool {
	i := int64(len(r.class))
	r.class = append(r.class, ins.Class)
	r.pc = append(r.pc, ins.PC)
	r.addr = append(r.addr, ins.Addr)
	r.src1 = append(r.src1, ins.Src1)
	r.src2 = append(r.src2, ins.Src2)
	if int(i>>6) >= len(r.taken) {
		r.taken = append(r.taken, 0)
	}
	if ins.Taken {
		r.taken[i>>6] |= 1 << (uint(i) & 63)
	}
	if ins.Freqs != nil {
		if r.freqs == nil {
			r.freqs = make(map[int64][]uint16)
		}
		r.freqs[i] = ins.Freqs
	}
	return true
}

func (r *packedRecorder) Marker(m Marker) bool {
	r.markerPos = append(r.markerPos, int64(len(r.class)))
	r.markers = append(r.markers, m)
	return true
}
