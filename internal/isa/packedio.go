package isa

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// Packed-stream serialization: a flat little-endian dump of the
// struct-of-arrays fields, so an on-disk stream cache costs the same
// ~13 bytes per instruction the in-memory form does and decoding is a
// handful of bulk copies. The layout is length-prefixed per section and
// closed by a CRC32 (IEEE) of everything before it; any truncation,
// bit-flip, or inconsistent section length fails DecodePacked with an
// error instead of replaying garbage. The trailing magic byte versions
// the layout.
var packedMagic = [8]byte{'m', 'c', 'd', 'p', 'k', 's', 't', 1}

// EncodePacked serializes the stream. Encoding the same stream always
// yields the same bytes: every section is a deterministic dump and the
// rare freqs side table is sorted by instruction index.
func EncodePacked(s *PackedStream) []byte {
	n := len(s.class)
	size := len(packedMagic) + 8 + // magic, nInstr
		n*(1+4+4+2+2) + // class, pc, addr, src1, src2
		8 + 8*len(s.taken) + // taken word count + words
		8 + len(s.markers)*(1+4+4+8) + // marker count + kind/id/site/pos
		8 + // freqs count
		4 // crc
	var freqIdx []int64
	for i, f := range s.freqs {
		freqIdx = append(freqIdx, i)
		size += 8 + 4 + 2*len(f)
	}
	sort.Slice(freqIdx, func(a, b int) bool { return freqIdx[a] < freqIdx[b] })

	b := make([]byte, 0, size)
	b = append(b, packedMagic[:]...)
	b = binary.LittleEndian.AppendUint64(b, uint64(n))
	for _, c := range s.class {
		b = append(b, byte(c))
	}
	for _, v := range s.pc {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	for _, v := range s.addr {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	for _, v := range s.src1 {
		b = binary.LittleEndian.AppendUint16(b, v)
	}
	for _, v := range s.src2 {
		b = binary.LittleEndian.AppendUint16(b, v)
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(s.taken)))
	for _, v := range s.taken {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(s.markers)))
	for _, m := range s.markers {
		b = append(b, byte(m.Kind))
		b = binary.LittleEndian.AppendUint32(b, uint32(m.ID))
		b = binary.LittleEndian.AppendUint32(b, uint32(m.Site))
	}
	for _, p := range s.markerPos {
		b = binary.LittleEndian.AppendUint64(b, uint64(p))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(freqIdx)))
	for _, i := range freqIdx {
		f := s.freqs[i]
		b = binary.LittleEndian.AppendUint64(b, uint64(i))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(f)))
		for _, v := range f {
			b = binary.LittleEndian.AppendUint16(b, v)
		}
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b
}

// packedReader is a bounds-checked cursor over an encoded stream.
type packedReader struct {
	b   []byte
	pos int
	err error
}

func (r *packedReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("isa: packed stream truncated at %s (offset %d of %d)", what, r.pos, len(r.b))
	}
}

func (r *packedReader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.pos < n {
		r.fail(what)
		return nil
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *packedReader) u64(what string) uint64 {
	if b := r.take(8, what); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// count reads a u64 section length and rejects values that could not
// fit in the remaining bytes at width bytes per element, so corrupt
// lengths fail cleanly instead of attempting huge allocations.
func (r *packedReader) count(width int, what string) int {
	v := r.u64(what)
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.b)-r.pos)/uint64(width) {
		r.fail(what)
		return 0
	}
	return int(v)
}

// DecodePacked deserializes EncodePacked's output. The decoded stream
// replays item-for-item identically to the stream that was encoded.
func DecodePacked(b []byte) (*PackedStream, error) {
	if len(b) < len(packedMagic)+8+4 {
		return nil, fmt.Errorf("isa: packed stream too short (%d bytes)", len(b))
	}
	if string(b[:len(packedMagic)]) != string(packedMagic[:]) {
		return nil, fmt.Errorf("isa: bad packed stream magic %q", b[:len(packedMagic)])
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("isa: packed stream checksum mismatch (got %08x, want %08x)", got, want)
	}
	r := &packedReader{b: body, pos: len(packedMagic)}
	n := r.count(1, "instruction count")
	s := &PackedStream{}
	if cls := r.take(n, "classes"); cls != nil {
		s.class = make([]Class, n)
		for i, c := range cls {
			if Class(c) >= NumClasses {
				return nil, fmt.Errorf("isa: packed stream: invalid class %d at instruction %d", c, i)
			}
			s.class[i] = Class(c)
		}
	}
	if b := r.take(4*n, "pc"); b != nil {
		s.pc = make([]uint32, n)
		for i := range s.pc {
			s.pc[i] = binary.LittleEndian.Uint32(b[4*i:])
		}
	}
	if b := r.take(4*n, "addr"); b != nil {
		s.addr = make([]uint32, n)
		for i := range s.addr {
			s.addr[i] = binary.LittleEndian.Uint32(b[4*i:])
		}
	}
	if b := r.take(2*n, "src1"); b != nil {
		s.src1 = make([]uint16, n)
		for i := range s.src1 {
			s.src1[i] = binary.LittleEndian.Uint16(b[2*i:])
		}
	}
	if b := r.take(2*n, "src2"); b != nil {
		s.src2 = make([]uint16, n)
		for i := range s.src2 {
			s.src2[i] = binary.LittleEndian.Uint16(b[2*i:])
		}
	}
	nTaken := r.count(8, "taken word count")
	if r.err == nil && nTaken != (n+63)/64 {
		return nil, fmt.Errorf("isa: packed stream: %d taken words for %d instructions (want %d)", nTaken, n, (n+63)/64)
	}
	if b := r.take(8*nTaken, "taken"); b != nil {
		s.taken = make([]uint64, nTaken)
		for i := range s.taken {
			s.taken[i] = binary.LittleEndian.Uint64(b[8*i:])
		}
	}
	nm := r.count(1+4+4+8, "marker count")
	s.markers = make([]Marker, nm)
	for i := range s.markers {
		if b := r.take(9, "marker"); b != nil {
			s.markers[i] = Marker{
				Kind: MarkerKind(b[0]),
				ID:   int32(binary.LittleEndian.Uint32(b[1:5])),
				Site: int32(binary.LittleEndian.Uint32(b[5:9])),
			}
		}
	}
	s.markerPos = make([]int64, nm)
	prev := int64(0)
	for i := range s.markerPos {
		p := int64(r.u64("marker position"))
		if r.err == nil && (p < prev || p > int64(n)) {
			return nil, fmt.Errorf("isa: packed stream: marker position %d out of order (prev %d, %d instructions)", p, prev, n)
		}
		s.markerPos[i] = p
		prev = p
	}
	nf := r.count(8+4, "freqs count")
	if nf > 0 {
		s.freqs = make(map[int64][]uint16, nf)
		prevIdx := int64(-1)
		for k := 0; k < nf; k++ {
			idx := int64(r.u64("freqs index"))
			fn := 0
			if b := r.take(4, "freqs length"); b != nil {
				v := binary.LittleEndian.Uint32(b)
				if uint64(v) > uint64(len(r.b)-r.pos)/2 {
					r.fail("freqs length")
				}
				fn = int(v)
			}
			if r.err != nil {
				break
			}
			if idx <= prevIdx || idx >= int64(n) {
				return nil, fmt.Errorf("isa: packed stream: freqs index %d out of order (prev %d, %d instructions)", idx, prevIdx, n)
			}
			prevIdx = idx
			f := make([]uint16, fn)
			for i := range f {
				if b := r.take(2, "freqs"); b != nil {
					f[i] = binary.LittleEndian.Uint16(b)
				}
			}
			s.freqs[idx] = f
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(body) {
		return nil, fmt.Errorf("isa: packed stream: %d trailing bytes", len(body)-r.pos)
	}
	if len(s.markers) == 0 {
		s.markers, s.markerPos = nil, nil
	}
	if len(s.class) == 0 {
		s.class, s.pc, s.addr, s.src1, s.src2, s.taken = nil, nil, nil, nil, nil, nil
	}
	return s, nil
}
