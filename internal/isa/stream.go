package isa

// Feeder yields the dynamic stream of one (program, input) pair to a
// consumer. Program generation implements it by walking (regenerating
// the stream from the tree and the deterministic RNG); a Recording
// implements it by replay. Consumers cannot tell the two apart:
// the sequences are identical item for item.
type Feeder interface {
	Feed(c Consumer)
}

// Feeder returns the generating feeder for an input: each Feed call
// performs a fresh deterministic walk.
func (p *Program) Feeder(in Input) Feeder { return walkFeeder{p: p, in: in} }

type walkFeeder struct {
	p  *Program
	in Input
}

func (f walkFeeder) Feed(c Consumer) { f.p.Walk(f.in, c) }

// Recording is one captured dynamic stream: the exact instruction and
// marker sequence a Walk produced, replayable any number of times.
// Replay skips all generation work (RNG draws, tree traversal), which
// is roughly a third of a simulation's cost — a policy grid that runs
// the same (program, input) under several machine configurations pays
// for generation once. A Stream is immutable after Record and safe for
// concurrent replay. It costs ~25 bytes per instruction; callers that
// hold several should bound how many they retain.
type Recording struct {
	instrs []Instr
	// markers[i] fires before the instruction at index markerPos[i];
	// positions are nondecreasing.
	markers   []Marker
	markerPos []int64
}

// Record walks the program under the input and captures the complete
// stream.
func Record(p *Program, in Input) *Recording { return RecordSized(p, in, 0) }

// RecordSized is Record with a capacity hint for the expected number of
// instructions (a known window length). An exact hint makes the capture
// a single allocation per array; without one, growth doublings copy —
// and leave behind as garbage — about twice the final recording size.
func RecordSized(p *Program, in Input, hint int64) *Recording {
	s := &Recording{}
	if hint > 0 {
		s.instrs = make([]Instr, 0, hint)
		s.markers = make([]Marker, 0, hint/8+16)
		s.markerPos = make([]int64, 0, hint/8+16)
	}
	p.Walk(in, (*streamRecorder)(s))
	return s
}

// Instructions returns the number of recorded instructions.
func (s *Recording) Instructions() int64 { return int64(len(s.instrs)) }

// Feed implements Feeder by replay. The *Instr passed to the consumer
// points into the recording and must not be modified or retained —
// the same contract a generating walk's scratch instruction has.
// A CountingConsumer wrapper is unwrapped so the per-instruction path
// makes one direct-budget check and one interface call, not two.
func (s *Recording) Feed(c Consumer) {
	inner := c
	var cc *CountingConsumer
	if w, ok := c.(*CountingConsumer); ok {
		cc, inner = w, w.Inner
	}
	mi := 0
	nextMarker := int64(-1)
	if len(s.markerPos) > 0 {
		nextMarker = s.markerPos[0]
	}
	for i := range s.instrs {
		for nextMarker == int64(i) {
			if !inner.Marker(s.markers[mi]) {
				return
			}
			mi++
			nextMarker = -1
			if mi < len(s.markerPos) {
				nextMarker = s.markerPos[mi]
			}
		}
		if cc != nil {
			if cc.Seen >= cc.Budget {
				return
			}
			cc.Seen++
			if !inner.Instr(&s.instrs[i]) {
				return
			}
			if cc.Seen >= cc.Budget {
				return
			}
			continue
		}
		if !inner.Instr(&s.instrs[i]) {
			return
		}
	}
	for mi < len(s.markers) {
		if !inner.Marker(s.markers[mi]) {
			return
		}
		mi++
	}
}

// streamRecorder adapts Recording to Consumer for Record.
type streamRecorder Recording

func (r *streamRecorder) Instr(ins *Instr) bool {
	r.instrs = append(r.instrs, *ins)
	return true
}

func (r *streamRecorder) Marker(m Marker) bool {
	r.markerPos = append(r.markerPos, int64(len(r.instrs)))
	r.markers = append(r.markers, m)
	return true
}
