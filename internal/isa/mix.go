package isa

import "fmt"

// Mix describes the statistical character of a basic block: instruction
// class fractions, dependency structure, memory behaviour and branch
// behaviour. Blocks with different mixes load the four MCD domains
// differently, which is what gives the DVFS control algorithms slack to
// exploit.
type Mix struct {
	Name string
	// Frac holds the class fractions over the NumMixClasses workload
	// classes; they must sum to (approximately) 1.
	Frac [NumMixClasses]float64
	// DepMean is the mean register dependency distance; small values mean
	// long serial chains (low ILP), large values mean high ILP.
	DepMean float64
	// LoadDepFrac is the fraction of instructions whose first source is
	// forced to the most recent load (pointer-chasing behaviour).
	LoadDepFrac float64
	// Footprint is the memory footprint touched by the block's loads and
	// stores, in bytes; footprints larger than a cache level produce
	// misses at that level.
	Footprint uint32
	// Stride is the access stride in bytes.
	Stride uint32
	// TakenProb is the probability that a branch is taken.
	TakenProb float64
	// RandomFrac is the fraction of branches whose outcome is
	// data-dependent (hard to predict); the remainder follow a fixed
	// repeating pattern the predictor learns quickly.
	RandomFrac float64

	cum [NumMixClasses]float64
	ok  bool
}

// normalize builds the cumulative distribution used during generation.
func (m *Mix) normalize() {
	total := 0.0
	for _, f := range m.Frac {
		if f < 0 {
			panic(fmt.Sprintf("isa: mix %q has negative fraction", m.Name))
		}
		total += f
	}
	if total <= 0 {
		panic(fmt.Sprintf("isa: mix %q has no classes", m.Name))
	}
	acc := 0.0
	for i, f := range m.Frac {
		acc += f / total
		m.cum[i] = acc
	}
	m.cum[NumMixClasses-1] = 1.0
	if m.DepMean <= 0 {
		m.DepMean = 8
	}
	if m.Stride == 0 {
		m.Stride = 8
	}
	if m.Footprint == 0 {
		m.Footprint = 16 << 10
	}
	m.ok = true
}

// pick returns the class for uniform draw u in [0,1).
func (m *Mix) pick(u float64) Class {
	for i, c := range m.cum {
		if u < c {
			return Class(i)
		}
	}
	return Class(NumMixClasses - 1)
}

// Standard mixes. These are the archetypes the 19 benchmark stand-ins are
// assembled from; each loads the domains differently:
//
//   - IntHeavy: integer domain saturated; FP idle, memory light.
//   - FPHeavy: FP domain saturated; integer modest, memory light.
//   - MemBound: long-latency misses dominate; front-end/int/fp have slack.
//   - Branchy: control-dominated integer code, front-end pressure.
//   - Balanced: everything moderately busy.
//   - Stream: high-bandwidth sequential memory with FP compute.
var (
	IntHeavy = &Mix{
		Name:    "intheavy",
		Frac:    [NumMixClasses]float64{IntALU: 0.62, IntMul: 0.06, Load: 0.16, Store: 0.06, Branch: 0.10},
		DepMean: 10, TakenProb: 0.45, RandomFrac: 0.06,
		Footprint: 12 << 10, Stride: 8,
	}
	FPHeavy = &Mix{
		Name:    "fpheavy",
		Frac:    [NumMixClasses]float64{IntALU: 0.16, FPALU: 0.38, FPMul: 0.18, Load: 0.18, Store: 0.06, Branch: 0.04},
		DepMean: 6, TakenProb: 0.85, RandomFrac: 0.02,
		Footprint: 24 << 10, Stride: 8,
	}
	MemBound = &Mix{
		Name:    "membound",
		Frac:    [NumMixClasses]float64{IntALU: 0.30, Load: 0.38, Store: 0.12, Branch: 0.20},
		DepMean: 4, LoadDepFrac: 0.35, TakenProb: 0.50, RandomFrac: 0.15,
		Footprint: 8 << 20, Stride: 64,
	}
	Branchy = &Mix{
		Name:    "branchy",
		Frac:    [NumMixClasses]float64{IntALU: 0.50, IntMul: 0.02, Load: 0.20, Store: 0.08, Branch: 0.20},
		DepMean: 5, TakenProb: 0.40, RandomFrac: 0.22,
		Footprint: 48 << 10, Stride: 16,
	}
	Balanced = &Mix{
		Name:    "balanced",
		Frac:    [NumMixClasses]float64{IntALU: 0.36, IntMul: 0.03, FPALU: 0.12, FPMul: 0.05, Load: 0.24, Store: 0.10, Branch: 0.10},
		DepMean: 8, TakenProb: 0.55, RandomFrac: 0.08,
		Footprint: 96 << 10, Stride: 8,
	}
	Stream = &Mix{
		Name:    "stream",
		Frac:    [NumMixClasses]float64{IntALU: 0.18, FPALU: 0.28, FPMul: 0.10, Load: 0.28, Store: 0.12, Branch: 0.04},
		DepMean: 14, TakenProb: 0.92, RandomFrac: 0.01,
		Footprint: 4 << 20, Stride: 8,
	}
)

// StandardMixes returns the named archetype mixes.
func StandardMixes() []*Mix {
	return []*Mix{IntHeavy, FPHeavy, MemBound, Branchy, Balanced, Stream}
}

func init() {
	for _, m := range StandardMixes() {
		m.normalize()
	}
}

// Clone returns a copy of the mix with the given overrides applied by f.
// It is used by workloads that need a variant of an archetype.
func (m *Mix) Clone(name string, f func(*Mix)) *Mix {
	c := *m
	c.Name = name
	c.ok = false
	if f != nil {
		f(&c)
	}
	c.normalize()
	return &c
}
