package isa

import (
	"reflect"
	"testing"
)

// TestPackedReplayIdentical is the packed stream's contract: replay
// must be item-for-item identical to a generating walk and to a
// Recording replay of the same walk — simulation results and sweep
// cache keys depend on the three sources being indistinguishable.
func TestPackedReplayIdentical(t *testing.T) {
	prog := streamProg()
	in := Input{Name: "train"}

	var walked tapeConsumer
	prog.Walk(in, &walked)

	for name, s := range map[string]*PackedStream{
		"recorded": RecordPacked(prog, in),
		"sized":    RecordPackedSized(prog, in, int64(len(walked.instrs))),
		"packed":   Pack(Record(prog, in)),
	} {
		var replayed tapeConsumer
		s.Feed(&replayed)
		if !reflect.DeepEqual(walked.instrs, replayed.instrs) {
			t.Fatalf("%s: replayed instructions differ from generated walk", name)
		}
		if !reflect.DeepEqual(walked.markers, replayed.markers) {
			t.Fatalf("%s: replayed markers differ from generated walk", name)
		}
		if !reflect.DeepEqual(walked.order, replayed.order) {
			t.Fatalf("%s: replayed interleaving differs from generated walk", name)
		}
		if s.Instructions() != int64(len(walked.instrs)) {
			t.Fatalf("%s: Instructions() = %d, want %d", name, s.Instructions(), len(walked.instrs))
		}
	}
}

// TestPackedFeedBudget checks packed replay through a CountingConsumer
// (which Feed unwraps) against a generating walk through the same
// wrapper, including Seen counts and trailing-marker behavior at exact
// stream length.
func TestPackedFeedBudget(t *testing.T) {
	prog := streamProg()
	in := Input{Name: "train"}
	s := RecordPacked(prog, in)
	total := s.Instructions()

	for _, budget := range []int64{1, 37, total, total + 1, 1 << 30} {
		var walked tapeConsumer
		wcc := &CountingConsumer{Inner: &walked, Budget: budget}
		prog.Walk(in, wcc)

		var replayed tapeConsumer
		rcc := &CountingConsumer{Inner: &replayed, Budget: budget}
		s.Feed(rcc)

		if !reflect.DeepEqual(walked.order, replayed.order) {
			t.Fatalf("budget %d: interleaving diverged", budget)
		}
		if !reflect.DeepEqual(walked.instrs, replayed.instrs) {
			t.Fatalf("budget %d: instructions diverged", budget)
		}
		if !reflect.DeepEqual(walked.markers, replayed.markers) {
			t.Fatalf("budget %d: markers diverged", budget)
		}
		if wcc.Seen != rcc.Seen {
			t.Fatalf("budget %d: Seen %d (walk) vs %d (packed replay)", budget, wcc.Seen, rcc.Seen)
		}
	}
}

// TestPackedFeedEarlyStop checks that an inner consumer returning false
// stops packed replay at the same item a generating walk stops at.
func TestPackedFeedEarlyStop(t *testing.T) {
	prog := streamProg()
	in := Input{Name: "train"}
	s := RecordPacked(prog, in)

	for _, stopAt := range []int{1, 13, 60} {
		walked := tapeConsumer{stopAt: stopAt}
		prog.Walk(in, &walked)
		replayed := tapeConsumer{stopAt: stopAt}
		s.Feed(&replayed)
		if !reflect.DeepEqual(walked.order, replayed.order) {
			t.Fatalf("stopAt %d: interleaving diverged", stopAt)
		}
		if !reflect.DeepEqual(walked.instrs, replayed.instrs) {
			t.Fatalf("stopAt %d: instructions diverged", stopAt)
		}
	}
}

// TestPackedFreqsRoundTrip checks that the rare frequency-carrying
// instructions survive packing (they never appear in program walks, but
// Pack must not silently drop them).
func TestPackedFreqsRoundTrip(t *testing.T) {
	r := &Recording{}
	w := (*streamRecorder)(r)
	w.Instr(&Instr{Class: IntALU, PC: 4})
	w.Instr(&Instr{Class: Reconfig, PC: 8, Freqs: []uint16{600, 1000}})
	w.Instr(&Instr{Class: Load, PC: 12, Addr: 64})
	s := Pack(r)

	var got tapeConsumer
	s.Feed(&got)
	want := []Instr{
		{Class: IntALU, PC: 4},
		{Class: Reconfig, PC: 8, Freqs: []uint16{600, 1000}},
		{Class: Load, PC: 12, Addr: 64},
	}
	if !reflect.DeepEqual(got.instrs, want) {
		t.Fatalf("freq round-trip: got %+v, want %+v", got.instrs, want)
	}
}

// TestPackedLockstepMatchesSequential is the lockstep contract: N lanes
// driven by one FeedLockstep pass must each see exactly the sequence a
// budgeted sequential Feed would deliver, for heterogeneous budgets and
// early-stopping lanes.
func TestPackedLockstepMatchesSequential(t *testing.T) {
	prog := streamProg()
	in := Input{Name: "train"}
	s := RecordPacked(prog, in)
	total := s.Instructions()

	budgets := []int64{1, 37, total, 0, total + 5}
	stops := []int{0, 0, 25, 0, 3}

	want := make([]tapeConsumer, len(budgets))
	wantSeen := make([]int64, len(budgets))
	for i := range budgets {
		want[i].stopAt = stops[i]
		b := budgets[i]
		if b <= 0 {
			b = 1 << 62
		}
		cc := &CountingConsumer{Inner: &want[i], Budget: b}
		s.Feed(cc)
		wantSeen[i] = cc.Seen
	}

	got := make([]tapeConsumer, len(budgets))
	lanes := make([]StreamLane, len(budgets))
	for i := range budgets {
		got[i].stopAt = stops[i]
		lanes[i] = StreamLane{Consumer: &got[i], Budget: budgets[i]}
	}
	s.FeedLockstep(lanes)

	for i := range budgets {
		if !reflect.DeepEqual(want[i].order, got[i].order) {
			t.Fatalf("lane %d: interleaving diverged from sequential feed", i)
		}
		if !reflect.DeepEqual(want[i].instrs, got[i].instrs) {
			t.Fatalf("lane %d: instructions diverged from sequential feed", i)
		}
		if !reflect.DeepEqual(want[i].markers, got[i].markers) {
			t.Fatalf("lane %d: markers diverged from sequential feed", i)
		}
		if lanes[i].Seen != wantSeen[i] {
			t.Fatalf("lane %d: Seen %d, want %d", i, lanes[i].Seen, wantSeen[i])
		}
	}
}

// countOnly consumes without recording, for the allocation assert.
type countOnly struct{ n, m int64 }

func (c *countOnly) Instr(*Instr) bool  { c.n++; return true }
func (c *countOnly) Marker(Marker) bool { c.m++; return true }

// TestLockstepSteadyStateAllocFree asserts lockstep delivery allocates
// nothing per instruction: the only allocations are two per pass
// (the active-lane index list, and the scratch Instr that escapes
// through the Consumer interface call), independent of stream length
// and lane count. The assert runs the same lanes over a short and a
// long stream and requires identical per-pass counts — any per-item
// allocation would scale with the 8x longer stream.
func TestLockstepSteadyStateAllocFree(t *testing.T) {
	prog := streamProg()
	short := RecordPacked(prog, Input{Name: "train"})
	long := Pack(&Recording{instrs: make([]Instr, 8*short.Instructions())})

	sinks := [4]countOnly{}
	lanes := make([]StreamLane, len(sinks))
	for i := range sinks {
		lanes[i] = StreamLane{Consumer: &sinks[i]}
	}
	short.FeedLockstep(lanes) // warm up (method tables)

	perPassShort := testing.AllocsPerRun(10, func() { short.FeedLockstep(lanes) })
	perPassLong := testing.AllocsPerRun(10, func() { long.FeedLockstep(lanes) })
	if perPassShort > 2 || perPassLong > 2 {
		t.Fatalf("FeedLockstep allocates %.1f/%.1f times per pass, want <= 2 setup allocations", perPassShort, perPassLong)
	}
	if perPassShort != perPassLong {
		t.Fatalf("per-pass allocations scale with stream length (%.1f vs %.1f): stepping is not alloc-free", perPassShort, perPassLong)
	}
	if sinks[0].n == 0 || sinks[0].n != sinks[3].n {
		t.Fatalf("lanes saw %d and %d instructions, want equal and nonzero", sinks[0].n, sinks[3].n)
	}
}
