package isa

import (
	"testing"
	"testing/quick"
)

// collect drains a walk into slices for inspection.
type collect struct {
	instrs  []Instr
	markers []Marker
}

func (c *collect) Instr(ins *Instr) bool {
	c.instrs = append(c.instrs, *ins)
	return true
}
func (c *collect) Marker(m Marker) bool {
	c.markers = append(c.markers, m)
	return true
}

// instrEqual compares two instructions field by field (Instr holds a
// frequency slice, so it is not directly comparable).
func instrEqual(a, b Instr) bool {
	if a.Class != b.Class || a.PC != b.PC || a.Src1 != b.Src1 || a.Src2 != b.Src2 ||
		a.Addr != b.Addr || a.Taken != b.Taken || len(a.Freqs) != len(b.Freqs) {
		return false
	}
	for i := range a.Freqs {
		if a.Freqs[i] != b.Freqs[i] {
			return false
		}
	}
	return true
}

func simpleProgram() *Program {
	b := NewBuilder("test")
	main := b.Subroutine("main")
	leaf := b.Subroutine("leaf")
	b.SetBody(leaf, b.Block(IntHeavy, 100))
	loop := b.Loop(FixedTrips(3), b.Block(Balanced, 50))
	call := b.Call(leaf)
	b.SetBody(main, b.Block(IntHeavy, 10), loop, call, call)
	return b.Finish(main)
}

func TestWalkDeterministic(t *testing.T) {
	p := simpleProgram()
	in := Input{Name: "ref", Seed: 5}
	var a, b collect
	p.Walk(in, &a)
	p.Walk(in, &b)
	if len(a.instrs) != len(b.instrs) {
		t.Fatalf("lengths differ: %d vs %d", len(a.instrs), len(b.instrs))
	}
	for i := range a.instrs {
		if !instrEqual(a.instrs[i], b.instrs[i]) {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, a.instrs[i], b.instrs[i])
		}
	}
}

func TestWalkSeedsDiffer(t *testing.T) {
	p := simpleProgram()
	var a, b collect
	p.Walk(Input{Name: "ref", Seed: 1}, &a)
	p.Walk(Input{Name: "ref", Seed: 2}, &b)
	same := true
	for i := range a.instrs {
		if i >= len(b.instrs) || !instrEqual(a.instrs[i], b.instrs[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestMarkersWellNested(t *testing.T) {
	p := simpleProgram()
	var c collect
	p.Walk(Input{Name: "train"}, &c)
	depth := 0
	for _, m := range c.markers {
		switch m.Kind {
		case SubEnter, LoopEnter:
			depth++
		case SubExit, LoopExit:
			depth--
			if depth < 0 {
				t.Fatal("markers not well nested")
			}
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced markers: final depth %d", depth)
	}
}

func TestCallSitePrecedesEnter(t *testing.T) {
	p := simpleProgram()
	var c collect
	p.Walk(Input{Name: "train"}, &c)
	for i, m := range c.markers {
		if m.Kind == CallSite {
			if i+1 >= len(c.markers) || c.markers[i+1].Kind != SubEnter {
				t.Fatal("CallSite marker not followed by SubEnter")
			}
		}
	}
}

func TestInstructionCounts(t *testing.T) {
	p := simpleProgram()
	var c collect
	p.Walk(Input{Name: "train"}, &c)
	// main block 10 + loop 3*(50+1 backedge) + 2 calls * 100 = 363
	want := 10 + 3*51 + 200
	if len(c.instrs) != want {
		t.Errorf("stream length = %d, want %d", len(c.instrs), want)
	}
}

func TestCountingConsumerBudget(t *testing.T) {
	p := simpleProgram()
	var c collect
	cc := &CountingConsumer{Inner: &c, Budget: 42}
	p.Walk(Input{Name: "train"}, cc)
	if len(c.instrs) != 42 {
		t.Errorf("budget consumer passed %d instructions, want 42", len(c.instrs))
	}
	if cc.Seen != 42 {
		t.Errorf("Seen = %d", cc.Seen)
	}
}

func TestScaledTrips(t *testing.T) {
	f := ScaledTrips(10)
	if got := f(Input{Scale: 2}); got != 20 {
		t.Errorf("ScaledTrips(10) at scale 2 = %d", got)
	}
	if got := f(Input{Scale: 0.01}); got != 1 {
		t.Errorf("ScaledTrips floor = %d, want 1", got)
	}
}

func TestBlockNBy(t *testing.T) {
	b := NewBuilder("nby")
	main := b.Subroutine("main")
	blk := b.BlockBy(IntHeavy, 100, func(in Input) int {
		if in.Name == "train" {
			return 10
		}
		return 30
	})
	b.SetBody(main, blk)
	p := b.Finish(main)
	var c1, c2 collect
	p.Walk(Input{Name: "train"}, &c1)
	p.Walk(Input{Name: "ref"}, &c2)
	if len(c1.instrs) != 10 || len(c2.instrs) != 30 {
		t.Errorf("NBy sizes = %d/%d, want 10/30", len(c1.instrs), len(c2.instrs))
	}
}

func TestTripsBySeqVariation(t *testing.T) {
	b := NewBuilder("seq")
	main := b.Subroutine("main")
	inner := b.Loop(nil, b.Block(FPHeavy, 5))
	inner.TripsBySeq = func(_ Input, seq int) int { return seq + 1 }
	sub := b.Subroutine("f")
	b.SetBody(sub, inner)
	b.SetBody(main, b.Call(sub), b.Call(sub), b.Call(sub))
	p := b.Finish(main)
	var c collect
	p.Walk(Input{Name: "train"}, &c)
	// Trips 1,2,3 -> instructions 1*6 + 2*6 + 3*6 = 36 (5 body + 1 backedge per trip).
	if len(c.instrs) != 36 {
		t.Errorf("stream length = %d, want 36", len(c.instrs))
	}
}

func TestGatedCallSkipsPaths(t *testing.T) {
	b := NewBuilder("gated")
	main := b.Subroutine("main")
	leaf := b.Subroutine("refonly")
	b.SetBody(leaf, b.Block(IntHeavy, 7))
	b.SetBody(main, b.CallWhen(leaf, func(in Input) bool { return in.Name == "ref" }))
	p := b.Finish(main)
	var c1, c2 collect
	p.Walk(Input{Name: "train"}, &c1)
	p.Walk(Input{Name: "ref"}, &c2)
	if len(c1.instrs) != 0 {
		t.Errorf("train walk executed gated call: %d instrs", len(c1.instrs))
	}
	if len(c2.instrs) != 7 {
		t.Errorf("ref walk = %d instrs, want 7", len(c2.instrs))
	}
}

func TestZeroTripLoopEmitsNoMarkers(t *testing.T) {
	b := NewBuilder("zl")
	main := b.Subroutine("main")
	b.SetBody(main, b.Loop(FixedTrips(0), b.Block(IntHeavy, 5)))
	p := b.Finish(main)
	var c collect
	p.Walk(Input{Name: "train"}, &c)
	for _, m := range c.markers {
		if m.Kind == LoopEnter || m.Kind == LoopExit {
			t.Fatal("zero-trip loop emitted loop markers")
		}
	}
}

func TestMixFractionsRealized(t *testing.T) {
	b := NewBuilder("mix")
	main := b.Subroutine("main")
	b.SetBody(main, b.Block(FPHeavy, 50_000))
	p := b.Finish(main)
	var c collect
	p.Walk(Input{Name: "train"}, &c)
	counts := map[Class]int{}
	for _, ins := range c.instrs {
		counts[ins.Class]++
	}
	total := float64(len(c.instrs))
	for cls := Class(0); cls < NumMixClasses; cls++ {
		got := float64(counts[cls]) / total
		want := FPHeavy.Frac[cls]
		if want > 0 && (got < want*0.85 || got > want*1.15) {
			t.Errorf("class %v fraction = %.3f, want about %.3f", cls, got, want)
		}
	}
}

func TestDepDistancesPositiveAndBounded(t *testing.T) {
	p := simpleProgram()
	var c collect
	p.Walk(Input{Name: "ref"}, &c)
	for i, ins := range c.instrs {
		if ins.Src1 > 60001 || ins.Src2 > 60001 {
			t.Fatalf("instruction %d has out-of-range dependency %d/%d", i, ins.Src1, ins.Src2)
		}
	}
}

func TestMixNormalizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty mix did not panic")
		}
	}()
	m := &Mix{Name: "empty"}
	m.normalize()
}

func TestMixClone(t *testing.T) {
	c := IntHeavy.Clone("variant", func(m *Mix) { m.TakenProb = 0.9 })
	if c.TakenProb != 0.9 || IntHeavy.TakenProb == 0.9 {
		t.Error("Clone mutated the original or dropped the override")
	}
	if c.Name != "variant" {
		t.Errorf("clone name = %q", c.Name)
	}
}

func TestPcIsRandomStable(t *testing.T) {
	f := func(pc uint32) bool {
		return pcIsRandom(pc, 0.2) == pcIsRandom(pc, 0.2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// frac 0 -> never, frac 1 -> always.
	for pc := uint32(0); pc < 4096; pc += 4 {
		if pcIsRandom(pc, 0) {
			t.Fatal("pcIsRandom(_, 0) returned true")
		}
		if !pcIsRandom(pc, 1) {
			t.Fatal("pcIsRandom(_, 1) returned false")
		}
	}
}

func TestClassStrings(t *testing.T) {
	if IntALU.String() != "intalu" || Reconfig.String() != "reconfig" {
		t.Error("class names wrong")
	}
	if SubEnter.String() != "subenter" || CallSite.String() != "callsite" {
		t.Error("marker names wrong")
	}
}

func TestStaticStructureCounts(t *testing.T) {
	p := simpleProgram()
	if p.NumSubs() != 2 || p.NumLoops() != 1 || p.NumSites() != 1 {
		t.Errorf("static counts = %d subs %d loops %d sites", p.NumSubs(), p.NumLoops(), p.NumSites())
	}
}
