package isa

import (
	"reflect"
	"testing"
)

// tapeConsumer records everything it sees, tagging order.
type tapeConsumer struct {
	instrs  []Instr
	markers []Marker
	order   []byte // 'i' or 'm'
	stopAt  int    // stop after this many instructions; 0 = never
}

func (c *tapeConsumer) Instr(ins *Instr) bool {
	c.instrs = append(c.instrs, *ins)
	c.order = append(c.order, 'i')
	return c.stopAt == 0 || len(c.instrs) < c.stopAt
}

func (c *tapeConsumer) Marker(m Marker) bool {
	c.markers = append(c.markers, m)
	c.order = append(c.order, 'm')
	return true
}

func streamProg() *Program {
	b := NewBuilder("streamtest")
	inner := b.Subroutine("inner")
	b.SetBody(inner, b.Block(Branchy, 40))
	main := b.Subroutine("main")
	b.SetBody(main,
		b.Block(Balanced, 25),
		b.Loop(FixedTrips(3), b.Block(MemBound, 10), b.Call(inner)),
		b.Block(FPHeavy, 15),
	)
	return b.Finish(main)
}

// TestRecordingReplayIdentical is the recording cache's contract: a
// replayed stream must be item-for-item identical to a generating walk,
// markers included — simulation outputs (and sweep cache keys) depend
// on it.
func TestRecordingReplayIdentical(t *testing.T) {
	prog := streamProg()
	in := Input{Name: "train"}

	var walked tapeConsumer
	prog.Walk(in, &walked)

	rec := Record(prog, in)
	var replayed tapeConsumer
	rec.Feed(&replayed)

	if !reflect.DeepEqual(walked.instrs, replayed.instrs) {
		t.Fatal("replayed instructions differ from generated walk")
	}
	if !reflect.DeepEqual(walked.markers, replayed.markers) {
		t.Fatal("replayed markers differ from generated walk")
	}
	if !reflect.DeepEqual(walked.order, replayed.order) {
		t.Fatal("replayed interleaving differs from generated walk")
	}
	if rec.Instructions() != int64(len(walked.instrs)) {
		t.Fatalf("Instructions() = %d, want %d", rec.Instructions(), len(walked.instrs))
	}
}

// TestRecordingFeedBudget checks replay through a CountingConsumer
// (which Feed unwraps): the inner consumer must see exactly the same
// budgeted prefix it would on a generating walk.
func TestRecordingFeedBudget(t *testing.T) {
	prog := streamProg()
	in := Input{Name: "train"}
	rec := Record(prog, in)

	for _, budget := range []int64{1, 37, 1 << 30} {
		var walked tapeConsumer
		prog.Walk(in, &CountingConsumer{Inner: &walked, Budget: budget})
		var replayed tapeConsumer
		rec.Feed(&CountingConsumer{Inner: &replayed, Budget: budget})
		if !reflect.DeepEqual(walked.instrs, replayed.instrs) ||
			!reflect.DeepEqual(walked.order, replayed.order) {
			t.Fatalf("budget %d: replay through CountingConsumer diverges from walk", budget)
		}
	}
}

// TestRecordingEarlyStop checks that a consumer stopping mid-replay
// ends the feed, mirroring a stopped walk.
func TestRecordingEarlyStop(t *testing.T) {
	prog := streamProg()
	in := Input{Name: "train"}
	rec := Record(prog, in)

	var walked tapeConsumer
	walked.stopAt = 20
	prog.Walk(in, &walked)
	var replayed tapeConsumer
	replayed.stopAt = 20
	rec.Feed(&replayed)
	if !reflect.DeepEqual(walked.instrs, replayed.instrs) ||
		!reflect.DeepEqual(walked.order, replayed.order) {
		t.Fatal("stopped replay diverges from stopped walk")
	}
}

// TestRecordSizedMatchesRecord verifies the capacity hint changes
// nothing about the captured stream.
func TestRecordSizedMatchesRecord(t *testing.T) {
	prog := streamProg()
	in := Input{Name: "train"}
	a := Record(prog, in)
	b := RecordSized(prog, in, a.Instructions())
	if !reflect.DeepEqual(a.instrs, b.instrs) ||
		!reflect.DeepEqual(a.markers, b.markers) ||
		!reflect.DeepEqual(a.markerPos, b.markerPos) {
		t.Fatal("RecordSized captured a different stream than Record")
	}
}
