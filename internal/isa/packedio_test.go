package isa

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"
)

// freqStream builds a packed stream containing everything the codec
// must carry: all instruction classes, markers, and the rare Freqs side
// table (reconfig instructions) at several positions.
func freqStream() *PackedStream {
	s := &PackedStream{}
	rec := (*packedRecorder)(s)
	rec.Marker(Marker{Kind: SubEnter, ID: 3, Site: 1})
	for i := 0; i < 300; i++ {
		ins := Instr{
			Class: Class(i % int(NumClasses)),
			PC:    uint32(i * 4),
			Addr:  uint32(i * 64),
			Src1:  uint16(i % 31),
			Src2:  uint16(i % 17),
			Taken: i%3 == 0,
		}
		if i%97 == 0 {
			ins.Freqs = []uint16{1000, 750, uint16(500 + i), 250}
		}
		rec.Instr(&ins)
		if i%50 == 25 {
			rec.Marker(Marker{Kind: LoopEnter, ID: int32(i), Site: int32(i % 5)})
		}
	}
	rec.Marker(Marker{Kind: SubExit, ID: 3})
	return s
}

// replay captures a stream's full replay for comparison.
func replay(s *PackedStream) *tapeConsumer {
	var c tapeConsumer
	s.Feed(&c)
	return &c
}

// TestPackedCodecRoundtrip is the stream cache's contract: a decoded
// stream must replay item-for-item identically to the one encoded —
// instructions, markers, interleaving, and the Freqs side table — and
// encoding must be deterministic (the cache is content-addressed, so
// the same stream must always produce the same bytes).
func TestPackedCodecRoundtrip(t *testing.T) {
	streams := map[string]*PackedStream{
		"walked": RecordPacked(streamProg(), Input{Name: "train"}),
		"freqs":  freqStream(),
		"empty":  {},
	}
	for name, s := range streams {
		enc := EncodePacked(s)
		if !bytes.Equal(enc, EncodePacked(s)) {
			t.Fatalf("%s: encoding is not deterministic", name)
		}
		dec, err := DecodePacked(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		want, got := replay(s), replay(dec)
		if !reflect.DeepEqual(want.instrs, got.instrs) {
			t.Fatalf("%s: decoded stream replays different instructions", name)
		}
		if !reflect.DeepEqual(want.markers, got.markers) {
			t.Fatalf("%s: decoded stream replays different markers", name)
		}
		if !reflect.DeepEqual(want.order, got.order) {
			t.Fatalf("%s: decoded stream replays a different interleaving", name)
		}
		if !bytes.Equal(enc, EncodePacked(dec)) {
			t.Fatalf("%s: re-encoding the decoded stream changes bytes", name)
		}
	}
}

// TestPackedCodecRejectsCorruption: any truncation or bit flip must
// fail DecodePacked with an error, never replay garbage — the on-disk
// cache treats a decode error as a corrupt entry and rewrites it.
func TestPackedCodecRejectsCorruption(t *testing.T) {
	enc := EncodePacked(freqStream())

	for _, cut := range []int{0, 1, len(packedMagic), len(packedMagic) + 7, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodePacked(enc[:cut]); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully", cut)
		}
	}
	for _, off := range []int{0, len(packedMagic), len(packedMagic) + 8, len(enc) / 3, len(enc) / 2, len(enc) - 5, len(enc) - 1} {
		bad := bytes.Clone(enc)
		bad[off] ^= 0x40
		if _, err := DecodePacked(bad); err == nil {
			t.Errorf("bit flip at offset %d decoded successfully", off)
		}
	}
	if _, err := DecodePacked(append(bytes.Clone(enc), 0xee)); err == nil {
		t.Error("trailing garbage decoded successfully")
	}
}

// TestPackedCodecRejectsBadContent: corruption that keeps the checksum
// valid (a rewritten entry) must still fail the structural checks —
// class range, marker-position monotonicity, freqs index order.
func TestPackedCodecRejectsBadContent(t *testing.T) {
	// reseal recomputes the CRC after a body mutation, so only the
	// structural validation stands between the corruption and a replay.
	reseal := func(b []byte) []byte {
		body := b[:len(b)-4]
		return binary.LittleEndian.AppendUint32(bytes.Clone(body), crc32.ChecksumIEEE(body))
	}
	enc := EncodePacked(freqStream())

	bad := bytes.Clone(enc)
	bad[len(packedMagic)+8] = 0xff // first class byte
	if _, err := DecodePacked(reseal(bad)); err == nil {
		t.Error("out-of-range instruction class decoded successfully")
	}

	bad = bytes.Clone(enc)
	binary.LittleEndian.PutUint64(bad[len(packedMagic):], 1<<60) // instruction count
	if _, err := DecodePacked(reseal(bad)); err == nil {
		t.Error("absurd instruction count decoded successfully")
	}
}
