package isa

import "fmt"

// Input identifies one input set of a program (the paper distinguishes a
// smaller "training" set and a larger "reference" set). Loops and call
// predicates consult the input, so the same Program walks differently
// under different inputs — including following entirely different code
// paths, as mpeg2 decode does in the paper.
type Input struct {
	// Name is the input set name, conventionally "train" or "ref".
	Name string
	// Seed drives all randomized generation for this (program, input)
	// pair; walks are fully deterministic.
	Seed int64
	// Scale multiplies scaled loop trip counts; reference inputs are
	// typically larger than training inputs.
	Scale float64
	// Flags enables optional code paths (predicated call sites).
	Flags map[string]bool
	// Params carries named integer knobs for trip-count closures.
	Params map[string]int
}

// Flag reports whether a named flag is set.
func (in Input) Flag(name string) bool { return in.Flags[name] }

// Param returns a named parameter or the provided default.
func (in Input) Param(name string, def int) int {
	if v, ok := in.Params[name]; ok {
		return v
	}
	return def
}

// Node is one element of a subroutine body: a Block, Loop or Call.
type Node interface{ node() }

// Block emits N instructions drawn from Mix. If NBy is set it overrides N
// per input, letting a block's dynamic size differ between training and
// reference runs (how some paper benchmarks change which nodes qualify as
// long-running between input sets).
type Block struct {
	Mix *Mix
	N   int
	NBy func(in Input) int
	// basePC and span are assigned by the Builder.
	basePC uint32
	span   uint32
}

// Size returns the block's dynamic instruction count under an input.
func (b *Block) Size(in Input) int {
	if b.NBy != nil {
		return b.NBy(in)
	}
	return b.N
}

func (*Block) node() {}

// Loop emits its body Trips(input) times, bracketed by loop markers. A
// loop corresponds to a strongly connected component of the subroutine's
// control-flow graph. If TripsBySeq is set it overrides Trips and also
// receives the zero-based count of the loop's earlier dynamic instances
// in this walk, modeling code whose behaviour differs per invocation
// (e.g. epic encode's internal_filter, paper Section 4.2).
type Loop struct {
	ID         int32
	Body       []Node
	Trips      func(in Input) int
	TripsBySeq func(in Input, seq int) int
	// backPC is the loop back-edge branch PC, assigned by the Builder.
	backPC uint32
}

func (*Loop) node() {}

// Call transfers control to Target from a specific static call site.
// When, if non-nil, gates the call on the input set, modeling code paths
// that arise only under some inputs.
type Call struct {
	SiteID int32
	Target *Subroutine
	When   func(in Input) bool
}

func (*Call) node() {}

// Subroutine is a named routine with a body of nodes.
type Subroutine struct {
	ID   int32
	Name string
	Body []Node
}

// Program is a complete synthetic application.
type Program struct {
	Name string
	Main *Subroutine
	Subs []*Subroutine
	// counters for static structure accounting
	numLoops int32
	numSites int32
	nextPC   uint32
}

// NumSubs returns the number of static subroutines.
func (p *Program) NumSubs() int { return len(p.Subs) }

// NumLoops returns the number of static loops.
func (p *Program) NumLoops() int { return int(p.numLoops) }

// NumSites returns the number of static call sites.
func (p *Program) NumSites() int { return int(p.numSites) }

// Builder constructs programs with automatic ID and PC assignment.
type Builder struct {
	p *Program
}

// NewBuilder starts a new program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{p: &Program{Name: name, nextPC: 0x1000}}
}

// Subroutine registers a new subroutine. Its body is assigned later with
// SetBody, allowing mutually recursive structures.
func (b *Builder) Subroutine(name string) *Subroutine {
	s := &Subroutine{ID: int32(len(b.p.Subs)), Name: name}
	b.p.Subs = append(b.p.Subs, s)
	return s
}

// SetBody attaches a body to a subroutine.
func (b *Builder) SetBody(s *Subroutine, body ...Node) { s.Body = body }

// Block creates an instruction block of n instructions drawn from mix.
func (b *Builder) Block(mix *Mix, n int) *Block {
	if !mix.ok {
		mix.normalize()
	}
	if n < 1 {
		n = 1
	}
	span := uint32(n)
	if span > 48 {
		span = 48
	}
	blk := &Block{Mix: mix, N: n, basePC: b.p.nextPC, span: span}
	b.p.nextPC += span * 4
	return blk
}

// BlockBy creates a block whose dynamic size is input-dependent; nominal
// sizes the static PC span.
func (b *Builder) BlockBy(mix *Mix, nominal int, f func(Input) int) *Block {
	blk := b.Block(mix, nominal)
	blk.NBy = f
	return blk
}

// Loop creates a loop around body with the given trip-count function.
func (b *Builder) Loop(trips func(Input) int, body ...Node) *Loop {
	l := &Loop{ID: b.p.numLoops, Body: body, Trips: trips, backPC: b.p.nextPC}
	b.p.numLoops++
	b.p.nextPC += 4
	return l
}

// Call creates an unconditional call to target from a fresh call site.
func (b *Builder) Call(target *Subroutine) *Call {
	c := &Call{SiteID: b.p.numSites, Target: target}
	b.p.numSites++
	return c
}

// CallWhen creates a call gated on an input predicate.
func (b *Builder) CallWhen(target *Subroutine, when func(Input) bool) *Call {
	c := b.Call(target)
	c.When = when
	return c
}

// Finish validates the program and returns it. main must have been
// registered and given a body.
func (b *Builder) Finish(main *Subroutine) *Program {
	if main == nil {
		panic("isa: Finish with nil main")
	}
	b.p.Main = main
	for _, s := range b.p.Subs {
		if s.Body == nil && s != main {
			panic(fmt.Sprintf("isa: subroutine %q has no body", s.Name))
		}
	}
	return b.p
}

// FixedTrips returns a trip-count function that ignores the input.
func FixedTrips(n int) func(Input) int { return func(Input) int { return n } }

// ScaledTrips returns a trip-count function that multiplies n by the
// input's Scale (minimum 1).
func ScaledTrips(n int) func(Input) int {
	return func(in Input) int {
		t := int(float64(n) * in.Scale)
		if t < 1 {
			t = 1
		}
		return t
	}
}

// ParamTrips returns a trip-count function reading a named input
// parameter with a default.
func ParamTrips(name string, def int) func(Input) int {
	return func(in Input) int { return in.Param(name, def) }
}

// FlagWhen returns a call predicate that requires a named input flag.
func FlagWhen(name string) func(Input) bool {
	return func(in Input) bool { return in.Flag(name) }
}
