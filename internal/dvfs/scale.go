package dvfs

import "fmt"

// Scale is the DVFS operating envelope of one clock domain: its
// frequency ladder, matched voltage range and ramp speed. The package's
// top-level functions operate on DefaultScale (the paper's Table 1
// envelope); topologies with per-domain envelopes hand each clock its
// own Scale. Every numeric formula here is shared with the top-level
// functions, so a Scale equal to DefaultScale() computes bit-identical
// results.
type Scale struct {
	// FMinMHz and FMaxMHz bound the domain's frequency.
	FMinMHz, FMaxMHz int
	// StepMHz is the ladder granularity.
	StepMHz int
	// VMin and VMax bound the supply voltage; voltage tracks frequency
	// linearly across the range.
	VMin, VMax float64
	// RampPsPerMHz is the frequency change speed in picoseconds per MHz.
	RampPsPerMHz int64
}

// DefaultScale returns the paper's Table 1 envelope: 250 MHz – 1 GHz in
// 25 MHz steps, 0.65 V – 1.20 V, 73.3 ns/MHz.
func DefaultScale() Scale {
	return Scale{
		FMinMHz:      FMinMHz,
		FMaxMHz:      FMaxMHz,
		StepMHz:      StepMHz,
		VMin:         VMin,
		VMax:         VMax,
		RampPsPerMHz: RampPsPerMHz,
	}
}

// IsDefault reports whether the scale equals the package default.
func (s Scale) IsDefault() bool { return s == DefaultScale() }

// Validate checks the scale's internal consistency.
func (s Scale) Validate() error {
	if s.FMinMHz <= 0 || s.FMaxMHz <= 0 {
		return fmt.Errorf("non-positive frequency bound %d-%d MHz", s.FMinMHz, s.FMaxMHz)
	}
	if s.FMinMHz >= s.FMaxMHz {
		return fmt.Errorf("inverted frequency range %d-%d MHz", s.FMinMHz, s.FMaxMHz)
	}
	if s.StepMHz <= 0 || (s.FMaxMHz-s.FMinMHz)%s.StepMHz != 0 {
		return fmt.Errorf("ladder step %d MHz does not divide range %d-%d MHz", s.StepMHz, s.FMinMHz, s.FMaxMHz)
	}
	if s.VMin <= 0 || s.VMin > s.VMax {
		return fmt.Errorf("inverted or non-positive voltage range %.3f-%.3f V", s.VMin, s.VMax)
	}
	if s.RampPsPerMHz <= 0 {
		return fmt.Errorf("non-positive ramp rate %d ps/MHz", s.RampPsPerMHz)
	}
	return nil
}

// NumSteps returns the number of operating points on the ladder.
func (s Scale) NumSteps() int { return (s.FMaxMHz-s.FMinMHz)/s.StepMHz + 1 }

// Clamp restricts mhz to the scale's legal operating range.
func (s Scale) Clamp(mhz int) int {
	if mhz < s.FMinMHz {
		return s.FMinMHz
	}
	if mhz > s.FMaxMHz {
		return s.FMaxMHz
	}
	return mhz
}

// Quantize snaps mhz to the nearest ladder step within the legal range.
func (s Scale) Quantize(mhz int) int {
	mhz = s.Clamp(mhz)
	down := (mhz - s.FMinMHz) / s.StepMHz * s.StepMHz
	rem := mhz - s.FMinMHz - down
	if rem*2 >= s.StepMHz {
		down += s.StepMHz
	}
	return s.FMinMHz + down
}

// QuantizeDown snaps mhz down to the ladder step at or below it.
func (s Scale) QuantizeDown(mhz int) int {
	mhz = s.Clamp(mhz)
	return s.FMinMHz + (mhz-s.FMinMHz)/s.StepMHz*s.StepMHz
}

// QuantizeUp snaps mhz up to the ladder step at or above it.
func (s Scale) QuantizeUp(mhz int) int {
	mhz = s.Clamp(mhz)
	up := (mhz - s.FMinMHz + s.StepMHz - 1) / s.StepMHz * s.StepMHz
	return s.FMinMHz + up
}

// VoltageFor returns the supply voltage matched to mhz: linear
// interpolation between (FMinMHz, VMin) and (FMaxMHz, VMax), clamped at
// the range ends. The default scale delegates to the package function so
// its voltage ladder is bit-identical to the historical constant-folded
// arithmetic (a runtime VMax-VMin differs from the folded constant in
// the last ulp).
func (s Scale) VoltageFor(mhz int) float64 {
	if s == DefaultScale() {
		return VoltageFor(mhz)
	}
	switch {
	case mhz <= s.FMinMHz:
		return s.VMin
	case mhz >= s.FMaxMHz:
		return s.VMax
	}
	frac := float64(mhz-s.FMinMHz) / float64(s.FMaxMHz-s.FMinMHz)
	return s.VMin + frac*(s.VMax-s.VMin)
}

// PlanRamp returns the sequence of effective-frequency changes for a
// ramp from fromMHz to toMHz beginning at start, one ladder notch at a
// time at the scale's ramp speed. Both endpoints must be ladder points.
func (s Scale) PlanRamp(fromMHz, toMHz int, start int64) []Change {
	s.mustLadder(fromMHz)
	s.mustLadder(toMHz)
	if fromMHz == toMHz {
		return nil
	}
	dir := s.StepMHz
	if toMHz < fromMHz {
		dir = -s.StepMHz
	}
	n := (toMHz - fromMHz) / dir
	changes := make([]Change, 0, n)
	t := start
	for f := fromMHz + dir; ; f += dir {
		t += int64(s.StepMHz) * s.RampPsPerMHz
		changes = append(changes, Change{At: t, MHz: f})
		if f == toMHz {
			break
		}
	}
	return changes
}

// mustLadder panics if mhz is not a ladder point of the scale.
func (s Scale) mustLadder(mhz int) {
	if (mhz-s.FMinMHz)%s.StepMHz != 0 || mhz < s.FMinMHz || mhz > s.FMaxMHz {
		panic(fmt.Sprintf("dvfs: %d MHz is not a ladder point of %d-%d/%d", mhz, s.FMinMHz, s.FMaxMHz, s.StepMHz))
	}
}
