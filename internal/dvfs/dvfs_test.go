package dvfs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVoltageEndpoints(t *testing.T) {
	if v := VoltageFor(FMinMHz); v != VMin {
		t.Errorf("VoltageFor(min) = %v, want %v", v, VMin)
	}
	if v := VoltageFor(FMaxMHz); v != VMax {
		t.Errorf("VoltageFor(max) = %v, want %v", v, VMax)
	}
	if v := VoltageFor(100); v != VMin {
		t.Errorf("VoltageFor below range = %v, want clamp to %v", v, VMin)
	}
	if v := VoltageFor(2000); v != VMax {
		t.Errorf("VoltageFor above range = %v, want clamp to %v", v, VMax)
	}
}

func TestVoltageMonotonic(t *testing.T) {
	prev := 0.0
	for f := FMinMHz; f <= FMaxMHz; f += StepMHz {
		v := VoltageFor(f)
		if v < prev {
			t.Fatalf("voltage not monotonic at %d MHz: %v < %v", f, v, prev)
		}
		prev = v
	}
}

func TestVoltageMidpoint(t *testing.T) {
	mid := (FMinMHz + FMaxMHz) / 2
	want := (VMin + VMax) / 2
	if v := VoltageFor(mid); math.Abs(v-want) > 1e-9 {
		t.Errorf("VoltageFor(%d) = %v, want %v", mid, v, want)
	}
}

func TestPeriodPs(t *testing.T) {
	cases := map[int]int64{1000: 1000, 500: 2000, 250: 4000}
	for mhz, want := range cases {
		if got := PeriodPs(mhz); got != want {
			t.Errorf("PeriodPs(%d) = %d, want %d", mhz, got, want)
		}
	}
}

func TestPeriodPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PeriodPs(0) did not panic")
		}
	}()
	PeriodPs(0)
}

func TestLadder(t *testing.T) {
	pts := Ladder()
	if len(pts) != NumSteps {
		t.Fatalf("ladder has %d points, want %d", len(pts), NumSteps)
	}
	if pts[0].MHz != FMinMHz || pts[len(pts)-1].MHz != FMaxMHz {
		t.Errorf("ladder endpoints = %v .. %v", pts[0], pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].MHz-pts[i-1].MHz != StepMHz {
			t.Errorf("ladder step %d -> %d", pts[i-1].MHz, pts[i].MHz)
		}
	}
}

func TestQuantizeProperties(t *testing.T) {
	f := func(mhz int) bool {
		q := Quantize(mhz)
		if q < FMinMHz || q > FMaxMHz || (q-FMinMHz)%StepMHz != 0 {
			return false
		}
		// Down <= Quantize-ish relationships on the ladder.
		d, u := QuantizeDown(mhz), QuantizeUp(mhz)
		if d > u {
			return false
		}
		c := Clamp(mhz)
		return d <= c && c <= u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{250, 250}, {262, 250}, {263, 275}, {1000, 1000}, {999, 1000},
		{0, 250}, {9999, 1000}, {512, 500}, {513, 525},
	}
	for _, c := range cases {
		if got := Quantize(c.in); got != c.want {
			t.Errorf("Quantize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestStepIndexRoundTrip(t *testing.T) {
	for i := 0; i < NumSteps; i++ {
		if got := StepIndex(StepMHzAt(i)); got != i {
			t.Errorf("StepIndex(StepMHzAt(%d)) = %d", i, got)
		}
	}
}

func TestStepIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("StepIndex(260) did not panic")
		}
	}()
	StepIndex(260)
}

func TestPlanRampUp(t *testing.T) {
	changes := PlanRamp(250, 325, 1000)
	if len(changes) != 3 {
		t.Fatalf("ramp 250->325 has %d steps, want 3", len(changes))
	}
	wantStep := int64(StepMHz) * RampPsPerMHz
	for i, ch := range changes {
		wantAt := 1000 + int64(i+1)*wantStep
		wantMHz := 250 + (i+1)*StepMHz
		if ch.At != wantAt || ch.MHz != wantMHz {
			t.Errorf("step %d = %+v, want {%d %d}", i, ch, wantAt, wantMHz)
		}
	}
}

func TestPlanRampDown(t *testing.T) {
	changes := PlanRamp(1000, 950, 0)
	if len(changes) != 2 || changes[1].MHz != 950 {
		t.Fatalf("ramp down wrong: %v", changes)
	}
}

func TestPlanRampNoop(t *testing.T) {
	if got := PlanRamp(500, 500, 0); len(got) != 0 {
		t.Errorf("no-op ramp produced %v", got)
	}
}

func TestFullRangeRampDuration(t *testing.T) {
	// Paper: traversing the entire voltage range requires 55 us.
	d := RampDurationPs(FMinMHz, FMaxMHz)
	if d != 54_975_000 {
		t.Errorf("full-range ramp = %d ps, want 54975000 (about 55 us)", d)
	}
}

func TestRampDurationSymmetric(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		return RampDurationPs(x, y) == RampDurationPs(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
