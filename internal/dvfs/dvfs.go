// Package dvfs models the dynamic voltage and frequency scaling behaviour
// of one MCD clock domain, following the Intel XScale-style model used in
// the paper (Table 1): a 250 MHz – 1 GHz frequency range, a 0.65 V – 1.20 V
// voltage range, and a frequency change speed of 73.3 ns/MHz. A domain
// continues executing while its frequency ramps toward the target; the
// full-range traversal takes 55 microseconds.
package dvfs

import "fmt"

// Operating range constants (paper Table 1).
const (
	// FMinMHz and FMaxMHz bound the frequency of every scalable domain.
	FMinMHz = 250
	FMaxMHz = 1000
	// StepMHz is the granularity of the frequency ladder. The ladder has
	// 31 operating points: 250, 275, ..., 1000 MHz.
	StepMHz = 25
	// VMin and VMax bound the supply voltage; voltage tracks frequency
	// linearly across the range.
	VMin = 0.65
	VMax = 1.20
	// RampPsPerMHz is the frequency change speed: 73.3 ns per MHz,
	// expressed in picoseconds. Traversing the full 750 MHz range takes
	// 750 * 73300 ps = 54.975 us, matching the paper's 55 us figure.
	RampPsPerMHz = 73300
)

// NumSteps is the number of operating points on the ladder.
const NumSteps = (FMaxMHz-FMinMHz)/StepMHz + 1

// Point is one operating point: a frequency and its matched voltage.
type Point struct {
	MHz   int
	Volts float64
}

// String formats the point as "800MHz@1.05V".
func (p Point) String() string { return fmt.Sprintf("%dMHz@%.3fV", p.MHz, p.Volts) }

// PeriodPs returns the clock period of the point in picoseconds.
func (p Point) PeriodPs() int64 { return PeriodPs(p.MHz) }

// PeriodPs returns the period, in picoseconds, of a clock at mhz.
func PeriodPs(mhz int) int64 {
	if mhz <= 0 {
		panic("dvfs: non-positive frequency")
	}
	return int64(1e6) / int64(mhz)
}

// VoltageFor returns the supply voltage matched to the given frequency:
// linear interpolation between (FMinMHz, VMin) and (FMaxMHz, VMax), clamped
// at the range ends.
func VoltageFor(mhz int) float64 {
	switch {
	case mhz <= FMinMHz:
		return VMin
	case mhz >= FMaxMHz:
		return VMax
	}
	frac := float64(mhz-FMinMHz) / float64(FMaxMHz-FMinMHz)
	return VMin + frac*(VMax-VMin)
}

// PointFor returns the operating point for a frequency.
func PointFor(mhz int) Point { return Point{MHz: mhz, Volts: VoltageFor(mhz)} }

// Clamp restricts mhz to the legal operating range.
func Clamp(mhz int) int {
	if mhz < FMinMHz {
		return FMinMHz
	}
	if mhz > FMaxMHz {
		return FMaxMHz
	}
	return mhz
}

// Quantize snaps mhz to the nearest ladder step within the legal range.
func Quantize(mhz int) int {
	mhz = Clamp(mhz)
	down := (mhz - FMinMHz) / StepMHz * StepMHz
	rem := mhz - FMinMHz - down
	if rem*2 >= StepMHz {
		down += StepMHz
	}
	return FMinMHz + down
}

// QuantizeDown snaps mhz down to the ladder step at or below it. Control
// algorithms that must not exceed a computed frequency bound use this.
func QuantizeDown(mhz int) int {
	mhz = Clamp(mhz)
	return FMinMHz + (mhz-FMinMHz)/StepMHz*StepMHz
}

// QuantizeUp snaps mhz up to the ladder step at or above it.
func QuantizeUp(mhz int) int {
	mhz = Clamp(mhz)
	up := (mhz - FMinMHz + StepMHz - 1) / StepMHz * StepMHz
	return FMinMHz + up
}

// StepIndex returns the ladder index (0 = FMinMHz) of a quantized
// frequency. It panics if mhz is not on the ladder.
func StepIndex(mhz int) int {
	if (mhz-FMinMHz)%StepMHz != 0 || mhz < FMinMHz || mhz > FMaxMHz {
		panic(fmt.Sprintf("dvfs: %d MHz is not a ladder point", mhz))
	}
	return (mhz - FMinMHz) / StepMHz
}

// StepMHzAt returns the frequency of ladder index i.
func StepMHzAt(i int) int {
	if i < 0 || i >= NumSteps {
		panic(fmt.Sprintf("dvfs: ladder index %d out of range", i))
	}
	return FMinMHz + i*StepMHz
}

// Ladder returns all operating points from FMinMHz to FMaxMHz inclusive.
func Ladder() []Point {
	pts := make([]Point, 0, NumSteps)
	for f := FMinMHz; f <= FMaxMHz; f += StepMHz {
		pts = append(pts, PointFor(f))
	}
	return pts
}

// Change is one step of a frequency ramp: at time At (picoseconds) the
// domain's effective frequency becomes MHz.
type Change struct {
	At  int64
	MHz int
}

// PlanRamp returns the sequence of effective-frequency changes for a ramp
// from fromMHz to toMHz beginning at start. The ramp is modeled as one
// ladder notch at a time, each notch taking StepMHz*RampPsPerMHz
// picoseconds, so frequency moves (piecewise) linearly at 73.3 ns/MHz while
// the processor continues to execute. Both endpoints must be ladder points.
// The returned slice is empty when fromMHz == toMHz.
func PlanRamp(fromMHz, toMHz int, start int64) []Change {
	StepIndex(fromMHz) // validate
	StepIndex(toMHz)
	if fromMHz == toMHz {
		return nil
	}
	dir := StepMHz
	if toMHz < fromMHz {
		dir = -StepMHz
	}
	n := (toMHz - fromMHz) / dir
	changes := make([]Change, 0, n)
	t := start
	for f := fromMHz + dir; ; f += dir {
		t += int64(StepMHz) * RampPsPerMHz
		changes = append(changes, Change{At: t, MHz: f})
		if f == toMHz {
			break
		}
	}
	return changes
}

// RampDurationPs returns the total time to traverse from one frequency to
// another at the modeled ramp speed.
func RampDurationPs(fromMHz, toMHz int) int64 {
	d := toMHz - fromMHz
	if d < 0 {
		d = -d
	}
	return int64(d) * RampPsPerMHz
}
