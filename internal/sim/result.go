package sim

import (
	"fmt"

	"repro/internal/arch"
)

// Result summarizes one completed simulation run. Per-domain slices are
// indexed by the run's topology domains (the default topology:
// front-end, integer, fp, memory, external).
type Result struct {
	// Instructions is the number of dynamic instructions simulated,
	// including injected instrumentation instructions.
	Instructions int64
	// TimePs is the total execution time (commit time of the last
	// instruction).
	TimePs int64
	// EnergyPJ is the total energy across all domains.
	EnergyPJ float64
	// DomainPJ is the per-domain energy breakdown, one entry per
	// topology domain.
	DomainPJ []float64
	// AvgMHz is the time-weighted average frequency of each scalable
	// domain.
	AvgMHz []float64

	// Microarchitectural statistics.
	SyncCrossings  int64
	SyncPenalties  int64
	Mispredicts    int64
	MispredictRate float64
	IL1MissRate    float64
	DL1MissRate    float64
	L2MissRate     float64
}

// EnergyDelay returns the energy-delay product in pJ*ps.
func (r Result) EnergyDelay() float64 { return r.EnergyPJ * float64(r.TimePs) }

// IPCAt returns instructions per nominal cycle at mhz (informational).
func (r Result) IPCAt(mhz int) float64 {
	if r.TimePs == 0 {
		return 0
	}
	cycles := float64(r.TimePs) / (1e6 / float64(mhz))
	return float64(r.Instructions) / cycles
}

// String formats the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("insts=%d time=%.3fus energy=%.3fuJ ed=%.4g",
		r.Instructions, float64(r.TimePs)/1e6, r.EnergyPJ/1e6, r.EnergyDelay())
}

// Finalize closes the run: it integrates clock-tree and leakage energy
// for every domain over the run's duration and returns the result. The
// machine must not be used afterwards.
func (m *Machine) Finalize() Result {
	end := m.lastCommit
	if end == 0 {
		end = 1
	}
	var res Result
	res.Instructions = m.seq
	res.TimePs = end
	res.DomainPJ = make([]float64, len(m.clk))
	for d := range m.clk {
		dom := arch.Domain(d)
		cycles := m.clk[d].CyclesIn(0, end)
		util := 0.0
		if cycles > 0 {
			util = float64(m.book.Events(dom)) / cycles
		}
		m.book.Finalize(dom, m.clk[d], end, util)
		res.DomainPJ[d] = m.book.DomainTotalPJ(dom)
		res.EnergyPJ += res.DomainPJ[d]
	}
	res.AvgMHz = make([]float64, m.numScalable)
	for d := 0; d < m.numScalable; d++ {
		segs := m.clk[d].Segments()
		var weighted float64
		for j, seg := range segs {
			lo := seg.Start
			if lo < 0 {
				lo = 0
			}
			hi := end
			if j+1 < len(segs) && segs[j+1].Start < hi {
				hi = segs[j+1].Start
			}
			if hi > lo {
				weighted += float64(seg.MHz) * float64(hi-lo)
			}
			if j+1 >= len(segs) || segs[j+1].Start >= end {
				break
			}
		}
		res.AvgMHz[d] = weighted / float64(end)
	}
	res.SyncCrossings = m.sync.Crossings
	res.SyncPenalties = m.sync.Penalties
	res.Mispredicts = m.Mispredicts
	res.MispredictRate = m.bp.MispredictRate()
	res.IL1MissRate = m.il1.MissRate()
	res.DL1MissRate = m.dl1.MissRate()
	res.L2MissRate = m.l2.MissRate()
	return res
}
