package sim

import (
	"reflect"

	"repro/internal/arch"
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/dvfs"
	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/xrand"
)

// Times records the pipeline timestamps of one instruction, in
// picoseconds. Tracers receive these to build dependence DAGs.
type Times struct {
	Fetch    int64
	Dispatch int64
	Ready    int64
	Issue    int64
	Complete int64
	Commit   int64
	// Dom is the execution domain of the instruction (a topology domain
	// index).
	Dom arch.Domain
	// MemLevel is 0 (L1 hit), 1 (L2 hit) or 2 (main memory) for loads.
	MemLevel uint8
	// Mispredict marks a mispredicted branch (fetch redirects after it).
	Mispredict bool
}

// Tracer observes every simulated instruction with its resolved timing.
type Tracer interface {
	Trace(seq int64, ins *isa.Instr, t *Times)
}

// MarkerSink observes structure markers as the machine consumes them; the
// current simulation time (last fetch time) is provided.
type MarkerSink interface {
	MachineMarker(m isa.Marker, now int64)
}

// Controller is a hardware control policy invoked at fixed instruction
// intervals (the on-line attack/decay algorithm plugs in here).
type Controller interface {
	OnInterval(m *Machine, now int64, s IntervalStats)
}

// IntervalStats summarizes domain activity since the previous controller
// callback. The per-domain slices are indexed by scalable topology
// domain and are valid only for the duration of the callback (the
// machine reuses them between intervals).
type IntervalStats struct {
	// Instructions in the interval.
	Instructions int64
	// Issued counts instructions issued per scalable domain.
	Issued []int64
	// QueueSum accumulates issue-queue occupancy samples (one per
	// dispatched instruction) per execution domain.
	QueueSum []int64
	// BusyPs accumulates per-domain functional-unit service time: the
	// on-chip latency of each instruction executed in the domain
	// (excluding external memory time). Utilization = BusyPs /
	// (units * ElapsedPs).
	BusyPs []int64
	// ElapsedPs is wall-clock simulation time covered by the interval.
	ElapsedPs int64
}

// ctrlCounter is one domain's packed per-instruction controller
// bookkeeping.
type ctrlCounter struct {
	issued   int64
	queueSum int64
	busyPs   int64
}

// Execution clusters: the three issue-queue-backed execution resources.
// Clusters are structural (queues, functional units); the topology only
// decides which clock domain each cluster runs in.
const (
	clInt = iota
	clFP
	clLS
	numClusters
)

// Machine is one simulated MCD processor executing one dynamic stream.
// Its domain structure — clock count, resource routing, per-domain DVFS
// envelopes — comes from the configuration's arch.Topology. It
// implements isa.Consumer; feed it a program walk, then call Finalize.
type Machine struct {
	cfg   Config
	topo  *arch.Topology
	clk   []*clock.Schedule // one per topology domain
	sync  *clock.Synchronizer
	bp    *bpred.Predictor
	il1   *cache.Cache
	dl1   *cache.Cache
	l2    *cache.Cache
	book  *power.Book
	trace Tracer
	msink MarkerSink

	// Resource→domain routing, resolved once from the topology.
	numScalable int
	fetchDom    arch.Domain // owns fetch, L1I, branch predictor
	dispDom     arch.Domain // owns rename/ROB/commit
	l2Dom       arch.Domain // owns the L2 interface
	clDom       [numClusters]arch.Domain

	ctrl         Controller
	ctrlInterval int64
	ctrlLastSeq  int64
	ctrlLastTime int64
	// ctrlCnt is the per-instruction accumulation state, packed per
	// domain so the hot loop touches one cache line; ctrlStats is the
	// view materialized for each OnInterval callback.
	ctrlCnt   []ctrlCounter
	ctrlStats IntervalStats

	// Completion-time ring for register dependencies.
	complRing [depRingSize]int64
	domRing   [depRingSize]uint8

	// ROB commit-time ring; robIdx is seq mod len(rob) maintained as a
	// rolling counter so the hot loop never divides.
	rob    []int64
	robIdx int

	// Issue queues: outstanding issue times per execution cluster.
	iq    [numClusters][]int64
	iqCap [numClusters]int

	// Functional units: next-free time per unit.
	intALU []int64
	intMul []int64
	fpALU  []int64
	fpMul  []int64
	lsPort []int64

	// Fetch state.
	fetchEdge  int64
	fetchCount int
	fetchLine  uint32

	// Dispatch state.
	dispEdge  int64
	dispCount int

	// Commit state.
	commitEdge  int64
	commitCount int

	seq        int64 // dynamic instruction count
	lastCommit int64

	// Statistics.
	Mispredicts int64
	times       Times // scratch
}

// New builds a machine with every domain at cfg.BaseMHz, structured by
// the configuration's topology.
func New(cfg Config) *Machine {
	topo := cfg.Topo()
	m := &Machine{
		cfg:  cfg,
		topo: topo,
		sync: clock.NewSynchronizer(cfg.Sync, cfg.Seed),
		bp:   bpred.New(bpred.DefaultConfig()),
		il1:  cache.New(cache.L1Config()),
		dl1:  cache.New(cache.L1Config()),
		l2:   cache.New(cache.L2Config()),
		book: power.NewBook(power.ModelFor(topo)),
		rob:  make([]int64, cfg.ROBSize),
	}
	m.numScalable = topo.NumScalable()
	m.fetchDom = topo.DomainOf(arch.ResFetch)
	m.dispDom = topo.DomainOf(arch.ResDispatch)
	m.l2Dom = topo.DomainOf(arch.ResL2)
	m.clDom = [numClusters]arch.Domain{
		clInt: topo.DomainOf(arch.ResIntExec),
		clFP:  topo.DomainOf(arch.ResFPExec),
		clLS:  topo.DomainOf(arch.ResLoadStore),
	}
	// Each domain's PLL has an unrelated phase; seed them deterministically.
	// The external domain keeps phase zero. A globally synchronous
	// configuration (Sync.Disabled) aligns all phases.
	phaseRng := xrand.New(cfg.Seed ^ 0x5deece66d)
	period := int64(1e6) / int64(cfg.BaseMHz)
	m.clk = make([]*clock.Schedule, topo.NumDomains())
	for d := range m.clk {
		phase := int64(0)
		if !cfg.Sync.Disabled && d < m.numScalable {
			phase = phaseRng.Int63n(period)
		}
		m.clk[d] = clock.NewScaled(topo.Spec(arch.Domain(d)).Scale(), cfg.BaseMHz, phase)
	}
	m.iqCap = [numClusters]int{
		clInt: cfg.IQInt,
		clFP:  cfg.IQFP,
		clLS:  cfg.IQLS,
	}
	m.intALU = make([]int64, cfg.IntALUs)
	m.intMul = make([]int64, cfg.IntMuls)
	m.fpALU = make([]int64, cfg.FPALUs)
	m.fpMul = make([]int64, cfg.FPMuls)
	m.lsPort = make([]int64, cfg.LSPorts)
	return m
}

// Clock returns the schedule of one domain (controllers use this).
func (m *Machine) Clock(d arch.Domain) *clock.Schedule { return m.clk[d] }

// Topology returns the machine's clock-domain topology.
func (m *Machine) Topology() *arch.Topology { return m.topo }

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Book returns the machine's energy book.
func (m *Machine) Book() *power.Book { return m.book }

// Bpred returns the branch predictor (for statistics).
func (m *Machine) Bpred() *bpred.Predictor { return m.bp }

// Caches returns the L1I, L1D and L2 caches (for statistics).
func (m *Machine) Caches() (il1, dl1, l2 *cache.Cache) { return m.il1, m.dl1, m.l2 }

// Sync returns the synchronizer (for statistics).
func (m *Machine) Sync() *clock.Synchronizer { return m.sync }

// Seq returns the number of instructions consumed so far.
func (m *Machine) Seq() int64 { return m.seq }

// Now returns the current simulation time (the last commit time).
func (m *Machine) Now() int64 { return m.lastCommit }

// SetTracer installs a per-instruction timing observer. Passing nil —
// including a non-nil interface holding a nil pointer — detaches the
// tracer and restores the no-dispatch fast path: the per-instruction
// loop skips the interface call entirely when no sink is attached, so a
// detached machine must never be left holding a typed nil that would
// defeat the nil check (and then panic inside the callee).
func (m *Machine) SetTracer(t Tracer) {
	if isNilSink(t) {
		m.trace = nil
		return
	}
	m.trace = t
}

// SetMarkerSink installs a structure-marker observer. nil (typed or
// untyped) detaches it; see SetTracer.
func (m *Machine) SetMarkerSink(s MarkerSink) {
	if isNilSink(s) {
		m.msink = nil
		return
	}
	m.msink = s
}

// isNilSink reports whether an observer interface is nil or wraps a nil
// pointer/map/func. Setters are cold, so reflection here is free.
func isNilSink(v any) bool {
	if v == nil {
		return true
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Pointer, reflect.Map, reflect.Func, reflect.Chan, reflect.Slice, reflect.Interface:
		return rv.IsNil()
	}
	return false
}

// SetController installs a hardware control policy called every
// intervalInstrs instructions.
func (m *Machine) SetController(c Controller, intervalInstrs int64) {
	m.ctrl = c
	m.ctrlInterval = intervalInstrs
	if m.ctrlCnt == nil {
		m.ctrlCnt = make([]ctrlCounter, m.numScalable)
		m.ctrlStats = IntervalStats{
			Issued:   make([]int64, m.numScalable),
			QueueSum: make([]int64, m.numScalable),
			BusyPs:   make([]int64, m.numScalable),
		}
	}
}

// SetDomainTarget requests a DVFS ramp of domain d toward mhz beginning
// at time now. External memory cannot be scaled.
func (m *Machine) SetDomainTarget(d arch.Domain, now int64, mhz int) {
	if int(d) >= m.numScalable {
		return
	}
	m.clk[d].SetTarget(now, mhz)
}

// SetAllImmediate pins every scalable domain to mhz instantly (baseline
// and global DVS modeling).
func (m *Machine) SetAllImmediate(now int64, mhz int) {
	for d := 0; d < m.numScalable; d++ {
		m.clk[d].SetImmediate(now, mhz)
	}
}

// Marker implements isa.Consumer.
func (m *Machine) Marker(mk isa.Marker) bool {
	if m.msink != nil {
		m.msink.MachineMarker(mk, m.fetchEdge)
	}
	return true
}

// execCluster returns the execution cluster of a class.
func execCluster(c isa.Class) int {
	switch c {
	case isa.FPALU, isa.FPMul:
		return clFP
	case isa.Load, isa.Store:
		return clLS
	default:
		return clInt
	}
}

// Instr implements isa.Consumer: it simulates one instruction.
func (m *Machine) Instr(ins *isa.Instr) bool {
	cfg := &m.cfg
	fclk := m.clk[m.fetchDom]
	dclk0 := m.clk[m.dispDom]
	t := &m.times
	*t = Times{}

	// --- Fetch ---
	if m.fetchEdge == 0 {
		m.fetchEdge = fclk.NextEdge(0)
	}
	if m.fetchCount >= cfg.DecodeWidth {
		m.fetchEdge = fclk.NextEdge(m.fetchEdge)
		m.fetchCount = 0
	}
	if line := ins.PC >> 6; line != m.fetchLine {
		m.fetchLine = line
		if !m.il1.Access(ins.PC) {
			m.fetchEdge = m.missPath(m.fetchEdge, m.fetchDom)
		}
	}
	t.Fetch = m.fetchEdge
	m.fetchCount++
	m.book.Charge(power.FetchOp, fclk.VoltsAt(t.Fetch))

	// --- Dispatch (rename, ROB and IQ allocation) ---
	disp := fclk.Advance(t.Fetch, int64(cfg.FrontDepth))
	// Fetch→dispatch handoff crosses domains when the topology splits
	// the front end (identity under the default topology).
	disp = m.sync.Cross(disp, fclk, dclk0)
	// ROB capacity: wait for the instruction ROBSize back to commit.
	if m.seq >= int64(cfg.ROBSize) {
		if old := m.rob[m.robIdx]; old > disp {
			disp = old
		}
	}
	// Dispatch width.
	if disp > m.dispEdge {
		m.dispEdge = dclk0.NextEdge(disp - 1)
		m.dispCount = 0
	} else if m.dispCount >= cfg.DecodeWidth {
		m.dispEdge = dclk0.NextEdge(m.dispEdge)
		m.dispCount = 0
		disp = m.dispEdge
	}
	if m.dispEdge > disp {
		disp = m.dispEdge
	}
	m.dispCount++

	cl := execCluster(ins.Class)
	dom := m.clDom[cl]
	// Issue-queue capacity in the execution cluster.
	disp = m.iqAdmit(cl, disp)
	t.Dispatch = disp
	t.Dom = dom
	m.book.Charge(power.RenameOp, dclk0.VoltsAt(disp))

	// --- Ready: operand availability ---
	ready := m.sync.Cross(disp, dclk0, m.clk[dom])
	for _, src := range [2]uint16{ins.Src1, ins.Src2} {
		if src == 0 || int64(src) > m.seq {
			continue
		}
		idx := (m.seq - int64(src)) & (depRingSize - 1)
		prodT := m.complRing[idx]
		prodD := arch.Domain(m.domRing[idx])
		av := m.sync.Cross(prodT, m.clk[prodD], m.clk[dom])
		if av > ready {
			ready = av
		}
	}
	t.Ready = ready

	// --- Issue and execute ---
	var complete int64
	dclk := m.clk[dom]
	switch ins.Class {
	case isa.IntALU:
		issue := m.fuIssue(cl, m.intALU, dclk, ready, 1)
		complete = dclk.Advance(issue, int64(cfg.IntALULat))
		t.Issue = issue
		m.book.Charge(power.IntOp, dclk.VoltsAt(issue))
	case isa.IntMul:
		issue := m.fuIssue(cl, m.intMul, dclk, ready, int64(cfg.IntMulLat))
		complete = dclk.Advance(issue, int64(cfg.IntMulLat))
		t.Issue = issue
		m.book.Charge(power.IntMulOp, dclk.VoltsAt(issue))
	case isa.FPALU:
		issue := m.fuIssue(cl, m.fpALU, dclk, ready, 1)
		complete = dclk.Advance(issue, int64(cfg.FPALULat))
		t.Issue = issue
		m.book.Charge(power.FPOp, dclk.VoltsAt(issue))
	case isa.FPMul:
		issue := m.fuIssue(cl, m.fpMul, dclk, ready, int64(cfg.FPMulLat))
		complete = dclk.Advance(issue, int64(cfg.FPMulLat))
		t.Issue = issue
		m.book.Charge(power.FPMulOp, dclk.VoltsAt(issue))
	case isa.Load:
		issue := m.fuIssue(cl, m.lsPort, dclk, ready, 1)
		t.Issue = issue
		m.book.Charge(power.LSQOp, dclk.VoltsAt(issue))
		m.book.Charge(power.DCacheOp, dclk.VoltsAt(issue))
		if m.dl1.Access(ins.Addr) {
			complete = dclk.Advance(issue, int64(cfg.L1Lat))
		} else {
			// The request leaves the load/store unit and probes the L2
			// interface; under the default topology both live in the
			// memory domain and every crossing below is the identity.
			l2clk := m.clk[m.l2Dom]
			afterL1 := dclk.Advance(issue, int64(cfg.L1Lat))
			probe := l2clk.Advance(m.sync.Cross(afterL1, dclk, l2clk), int64(cfg.L2Lat))
			if m.l2.Access(ins.Addr) {
				t.MemLevel = 1
				m.book.Charge(power.L2Op, l2clk.VoltsAt(issue))
				complete = m.sync.Cross(probe, l2clk, dclk)
			} else {
				t.MemLevel = 2
				m.book.Charge(power.L2Op, l2clk.VoltsAt(issue))
				m.book.Charge(power.MemOp, dvfs.VMax)
				after := probe + cfg.MemLatPs
				complete = dclk.NextEdge(m.sync.Cross(after, l2clk, dclk))
			}
		}
	case isa.Store:
		issue := m.fuIssue(cl, m.lsPort, dclk, ready, 1)
		t.Issue = issue
		m.book.Charge(power.LSQOp, dclk.VoltsAt(issue))
		m.book.Charge(power.DCacheOp, dclk.VoltsAt(issue))
		// Stores retire from the store queue off the critical path; the
		// cache fill happens in the background.
		m.dl1.Access(ins.Addr)
		complete = dclk.Advance(issue, 1)
	case isa.Branch:
		issue := m.fuIssue(cl, m.intALU, dclk, ready, 1)
		complete = dclk.Advance(issue, int64(cfg.IntALULat))
		t.Issue = issue
		m.book.Charge(power.IntOp, dclk.VoltsAt(issue))
		if m.bp.Lookup(ins.PC, ins.Taken) {
			m.Mispredicts++
			t.Mispredict = true
			redirect := m.sync.Cross(complete, dclk, fclk)
			m.fetchEdge = fclk.Advance(redirect, int64(cfg.MispredictPenalty))
			m.fetchCount = 0
		}
	case isa.Track, isa.Reconfig:
		// Injected instrumentation: an integer-side operation whose
		// latency is the measured worst-case overhead for its kind.
		lat := int64(instrCost(ins))
		if lat < 1 {
			lat = 1
		}
		issue := m.fuIssue(cl, m.intALU, dclk, ready, 1)
		complete = dclk.Advance(issue, lat)
		t.Issue = issue
		m.book.Charge(power.OverheadOp, dclk.VoltsAt(issue))
		if ins.Class == isa.Reconfig {
			m.applyReconfig(ins, issue)
		}
	}
	t.Complete = complete

	// --- Commit (in order) ---
	cm := m.sync.Cross(complete, dclk, dclk0)
	edge := dclk0.NextEdge(cm - 1)
	if edge < m.commitEdge {
		edge = m.commitEdge
	}
	if edge == m.commitEdge {
		if m.commitCount >= cfg.RetireWidth {
			edge = dclk0.NextEdge(edge)
			m.commitCount = 0
		}
	} else {
		m.commitCount = 0
	}
	m.commitEdge = edge
	m.commitCount++
	t.Commit = edge
	m.lastCommit = edge
	m.book.Charge(power.CommitOp, dclk0.VoltsAt(edge))

	// Record results for dependents and the ROB.
	idx := m.seq & (depRingSize - 1)
	m.complRing[idx] = complete
	m.domRing[idx] = uint8(dom)
	m.rob[m.robIdx] = edge
	if m.robIdx++; m.robIdx == len(m.rob) {
		m.robIdx = 0
	}

	if m.trace != nil {
		m.trace.Trace(m.seq, ins, t)
	}

	// Controller interval bookkeeping.
	if m.ctrl != nil {
		c := &m.ctrlCnt[dom]
		c.issued++
		c.queueSum += int64(len(m.iq[cl]))
		st := m.serviceTime(ins, t)
		if t.MemLevel >= 1 && m.l2Dom != dom {
			// The L2 portion of a load's service time is work done in
			// the (separately clocked) L2 domain; credit it there so the
			// controller has a utilization signal for L2-only domains.
			// Under the default topology both indices coincide and this
			// branch never runs.
			st -= int64(cfg.L2Lat) * m.clk[dom].PeriodAt(t.Issue)
			m.ctrlCnt[m.l2Dom].busyPs += int64(cfg.L2Lat) * m.clk[m.l2Dom].PeriodAt(t.Issue)
		}
		c.busyPs += st
		if m.seq-m.ctrlLastSeq >= m.ctrlInterval {
			s := m.ctrlStats
			for d := range m.ctrlCnt {
				s.Issued[d] = m.ctrlCnt[d].issued
				s.QueueSum[d] = m.ctrlCnt[d].queueSum
				s.BusyPs[d] = m.ctrlCnt[d].busyPs
				m.ctrlCnt[d] = ctrlCounter{}
			}
			s.Instructions = m.seq - m.ctrlLastSeq
			s.ElapsedPs = m.lastCommit - m.ctrlLastTime
			m.ctrl.OnInterval(m, m.lastCommit, s)
			m.ctrlLastSeq = m.seq
			m.ctrlLastTime = m.lastCommit
		}
	}

	m.seq++
	return true
}

// serviceTime returns the on-chip service time of an instruction in its
// execution domain: execution latency excluding main-memory time. The
// hardware controller's utilization counters are built from this.
func (m *Machine) serviceTime(ins *isa.Instr, t *Times) int64 {
	period := m.clk[t.Dom].PeriodAt(t.Issue)
	var cycles int64
	switch ins.Class {
	case isa.IntALU, isa.Branch, isa.Track, isa.Reconfig:
		cycles = int64(m.cfg.IntALULat)
	case isa.IntMul:
		cycles = int64(m.cfg.IntMulLat)
	case isa.FPALU:
		cycles = int64(m.cfg.FPALULat)
	case isa.FPMul:
		cycles = int64(m.cfg.FPMulLat)
	case isa.Load:
		cycles = int64(m.cfg.L1Lat)
		if t.MemLevel >= 1 {
			cycles += int64(m.cfg.L2Lat)
		}
	case isa.Store:
		cycles = 1
	}
	return cycles * period
}

// instrCost returns the per-instrumentation-instruction cycle cost
// carried in the instruction's Freqs[0] slot for Track instructions and
// Freqs-independent fixed costs for Reconfig. The edit package sets these.
func instrCost(ins *isa.Instr) int {
	if ins.Class == isa.Track {
		return int(ins.Src1) // edit package stores the cost here
	}
	return int(ins.Src2)
}

// applyReconfig writes the MCD reconfiguration register: each scalable
// domain begins ramping toward its target frequency (quantized to its
// own ladder). The write itself incurs no idle time (paper Section 2).
func (m *Machine) applyReconfig(ins *isa.Instr, now int64) {
	n := m.numScalable
	if len(ins.Freqs) < n {
		n = len(ins.Freqs)
	}
	for d := 0; d < n; d++ {
		mhz := int(ins.Freqs[d])
		if mhz == 0 {
			continue
		}
		m.clk[d].SetTarget(now, mhz)
	}
}

// iqAdmit delays t until the execution cluster's issue queue has a free
// entry, then records the (not yet known) entry; the caller fills in the
// issue time via fuIssue.
//
// Pruning of already-issued entries is lazy: the queue is only swept
// when it looks full, because admission decisions cannot change while
// live occupancy is below capacity. When a controller is attached the
// sweep runs every instruction instead — the controller samples queue
// occupancy after each dispatch, and stale entries would skew it. The
// sweep is a branch-friendly sequential compaction; an earlier min-heap
// variant benchmarked measurably slower on these tiny queues.
func (m *Machine) iqAdmit(cl int, t int64) int64 {
	capQ := m.iqCap[cl]
	q := m.iq[cl]
	if m.ctrl != nil {
		// Prune entries that have issued by time t.
		q = pruneQueue(q, t)
	}
	if len(q) >= capQ {
		q = pruneQueue(q, t)
		for len(q) >= capQ {
			// Wait until the earliest outstanding entry issues.
			earliest := q[0]
			for _, e := range q {
				if e < earliest {
					earliest = e
				}
			}
			if earliest > t {
				t = earliest
			}
			q = pruneQueue(q, t)
		}
	}
	m.iq[cl] = q
	return t
}

// pruneQueue removes entries with issue time <= t.
func pruneQueue(q []int64, t int64) []int64 {
	n := 0
	for _, e := range q {
		if e > t {
			q[n] = e
			n++
		}
	}
	return q[:n]
}

// fuIssue selects the earliest-available unit, aligns issue to the
// execution domain clock, reserves the unit for occ cycles and records
// the issue-queue departure in the cluster's queue.
func (m *Machine) fuIssue(cl int, units []int64, dclk *clock.Schedule, ready int64, occ int64) int64 {
	best := 0
	for i := 1; i < len(units); i++ {
		if units[i] < units[best] {
			best = i
		}
	}
	start := ready
	if units[best] > start {
		start = units[best]
	}
	issue := dclk.NextEdge(start - 1)
	units[best] = dclk.Advance(issue, occ)
	// Record IQ residency: the entry leaves the queue at issue.
	m.iq[cl] = append(m.iq[cl], issue)
	return issue
}

// missPath models an instruction-fetch miss: the request crosses to the
// domain owning the L2 interface, probes the L2 (and main memory on an
// L2 miss), and the line returns to the requesting domain.
func (m *Machine) missPath(from int64, req arch.Domain) int64 {
	l2clk := m.clk[m.l2Dom]
	t := m.sync.Cross(from, m.clk[req], l2clk)
	t = l2clk.NextEdge(t - 1)
	m.book.Charge(power.L2Op, l2clk.VoltsAt(t))
	if m.l2.Access(m.fetchLine << 6) {
		t = l2clk.Advance(t, int64(m.cfg.L2Lat))
	} else {
		m.book.Charge(power.MemOp, dvfs.VMax)
		t = l2clk.Advance(t, int64(m.cfg.L2Lat)) + m.cfg.MemLatPs
	}
	back := m.sync.Cross(t, l2clk, m.clk[req])
	return m.clk[req].NextEdge(back)
}
