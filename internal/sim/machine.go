package sim

import (
	"reflect"

	"repro/internal/arch"
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/dvfs"
	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/xrand"
)

// Times records the pipeline timestamps of one instruction, in
// picoseconds. Tracers receive these to build dependence DAGs.
type Times struct {
	Fetch    int64
	Dispatch int64
	Ready    int64
	Issue    int64
	Complete int64
	Commit   int64
	// Dom is the execution domain of the instruction.
	Dom arch.Domain
	// MemLevel is 0 (L1 hit), 1 (L2 hit) or 2 (main memory) for loads.
	MemLevel uint8
	// Mispredict marks a mispredicted branch (fetch redirects after it).
	Mispredict bool
}

// Tracer observes every simulated instruction with its resolved timing.
type Tracer interface {
	Trace(seq int64, ins *isa.Instr, t *Times)
}

// MarkerSink observes structure markers as the machine consumes them; the
// current simulation time (last fetch time) is provided.
type MarkerSink interface {
	MachineMarker(m isa.Marker, now int64)
}

// Controller is a hardware control policy invoked at fixed instruction
// intervals (the on-line attack/decay algorithm plugs in here).
type Controller interface {
	OnInterval(m *Machine, now int64, s IntervalStats)
}

// IntervalStats summarizes domain activity since the previous controller
// callback.
type IntervalStats struct {
	// Instructions in the interval.
	Instructions int64
	// Issued counts instructions issued per scalable domain.
	Issued [arch.NumScalable]int64
	// QueueSum accumulates issue-queue occupancy samples (one per
	// dispatched instruction) per execution domain.
	QueueSum [arch.NumScalable]int64
	// BusyPs accumulates per-domain functional-unit service time: the
	// on-chip latency of each instruction executed in the domain
	// (excluding external memory time). Utilization = BusyPs /
	// (units * ElapsedPs).
	BusyPs [arch.NumScalable]int64
	// ElapsedPs is wall-clock simulation time covered by the interval.
	ElapsedPs int64
}

// Machine is one simulated MCD processor executing one dynamic stream.
// It implements isa.Consumer; feed it a program walk, then call Finalize.
type Machine struct {
	cfg   Config
	clk   [arch.NumDomains]*clock.Schedule
	sync  *clock.Synchronizer
	bp    *bpred.Predictor
	il1   *cache.Cache
	dl1   *cache.Cache
	l2    *cache.Cache
	book  *power.Book
	trace Tracer
	msink MarkerSink

	ctrl         Controller
	ctrlInterval int64
	ctrlLastSeq  int64
	ctrlLastTime int64
	ctrlStats    IntervalStats

	// Completion-time ring for register dependencies.
	complRing [depRingSize]int64
	domRing   [depRingSize]uint8

	// ROB commit-time ring; robIdx is seq mod len(rob) maintained as a
	// rolling counter so the hot loop never divides.
	rob    []int64
	robIdx int

	// Issue queues: outstanding issue times per execution domain.
	iq    [arch.NumScalable][]int64
	iqCap [arch.NumScalable]int

	// Functional units: next-free time per unit.
	intALU []int64
	intMul []int64
	fpALU  []int64
	fpMul  []int64
	lsPort []int64

	// Fetch state.
	fetchEdge  int64
	fetchCount int
	fetchLine  uint32

	// Dispatch state.
	dispEdge  int64
	dispCount int

	// Commit state.
	commitEdge  int64
	commitCount int

	seq        int64 // dynamic instruction count
	lastCommit int64

	// Statistics.
	Mispredicts int64
	times       Times // scratch
}

// New builds a machine with every domain at cfg.BaseMHz.
func New(cfg Config) *Machine {
	m := &Machine{
		cfg:  cfg,
		sync: clock.NewSynchronizer(cfg.Sync, cfg.Seed),
		bp:   bpred.New(bpred.DefaultConfig()),
		il1:  cache.New(cache.L1Config()),
		dl1:  cache.New(cache.L1Config()),
		l2:   cache.New(cache.L2Config()),
		book: power.NewBook(power.DefaultModel()),
		rob:  make([]int64, cfg.ROBSize),
	}
	// Each domain's PLL has an unrelated phase; seed them deterministically.
	// The external domain keeps phase zero. A globally synchronous
	// configuration (Sync.Disabled) aligns all phases.
	phaseRng := xrand.New(cfg.Seed ^ 0x5deece66d)
	period := int64(1e6) / int64(cfg.BaseMHz)
	for d := 0; d < arch.NumDomains; d++ {
		phase := int64(0)
		if !cfg.Sync.Disabled && arch.Domain(d).Scalable() {
			phase = phaseRng.Int63n(period)
		}
		m.clk[d] = clock.NewWithPhase(cfg.BaseMHz, phase)
	}
	m.iqCap = [arch.NumScalable]int{
		arch.FrontEnd: 1 << 30, // front end has no issue queue
		arch.Integer:  cfg.IQInt,
		arch.FP:       cfg.IQFP,
		arch.Memory:   cfg.IQLS,
	}
	m.intALU = make([]int64, cfg.IntALUs)
	m.intMul = make([]int64, cfg.IntMuls)
	m.fpALU = make([]int64, cfg.FPALUs)
	m.fpMul = make([]int64, cfg.FPMuls)
	m.lsPort = make([]int64, cfg.LSPorts)
	return m
}

// Clock returns the schedule of one domain (controllers use this).
func (m *Machine) Clock(d arch.Domain) *clock.Schedule { return m.clk[d] }

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Book returns the machine's energy book.
func (m *Machine) Book() *power.Book { return m.book }

// Bpred returns the branch predictor (for statistics).
func (m *Machine) Bpred() *bpred.Predictor { return m.bp }

// Caches returns the L1I, L1D and L2 caches (for statistics).
func (m *Machine) Caches() (il1, dl1, l2 *cache.Cache) { return m.il1, m.dl1, m.l2 }

// Sync returns the synchronizer (for statistics).
func (m *Machine) Sync() *clock.Synchronizer { return m.sync }

// Seq returns the number of instructions consumed so far.
func (m *Machine) Seq() int64 { return m.seq }

// Now returns the current simulation time (the last commit time).
func (m *Machine) Now() int64 { return m.lastCommit }

// SetTracer installs a per-instruction timing observer. Passing nil —
// including a non-nil interface holding a nil pointer — detaches the
// tracer and restores the no-dispatch fast path: the per-instruction
// loop skips the interface call entirely when no sink is attached, so a
// detached machine must never be left holding a typed nil that would
// defeat the nil check (and then panic inside the callee).
func (m *Machine) SetTracer(t Tracer) {
	if isNilSink(t) {
		m.trace = nil
		return
	}
	m.trace = t
}

// SetMarkerSink installs a structure-marker observer. nil (typed or
// untyped) detaches it; see SetTracer.
func (m *Machine) SetMarkerSink(s MarkerSink) {
	if isNilSink(s) {
		m.msink = nil
		return
	}
	m.msink = s
}

// isNilSink reports whether an observer interface is nil or wraps a nil
// pointer/map/func. Setters are cold, so reflection here is free.
func isNilSink(v any) bool {
	if v == nil {
		return true
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Pointer, reflect.Map, reflect.Func, reflect.Chan, reflect.Slice, reflect.Interface:
		return rv.IsNil()
	}
	return false
}

// SetController installs a hardware control policy called every
// intervalInstrs instructions.
func (m *Machine) SetController(c Controller, intervalInstrs int64) {
	m.ctrl = c
	m.ctrlInterval = intervalInstrs
}

// SetDomainTarget requests a DVFS ramp of domain d toward mhz beginning
// at time now. External memory cannot be scaled.
func (m *Machine) SetDomainTarget(d arch.Domain, now int64, mhz int) {
	if !d.Scalable() {
		return
	}
	m.clk[d].SetTarget(now, mhz)
}

// SetAllImmediate pins every domain to mhz instantly (baseline and global
// DVS modeling).
func (m *Machine) SetAllImmediate(now int64, mhz int) {
	for d := 0; d < arch.NumDomains; d++ {
		if arch.Domain(d).Scalable() {
			m.clk[d].SetImmediate(now, mhz)
		}
	}
}

// Marker implements isa.Consumer.
func (m *Machine) Marker(mk isa.Marker) bool {
	if m.msink != nil {
		m.msink.MachineMarker(mk, m.fetchEdge)
	}
	return true
}

// execDomain returns the domain that executes a class.
func execDomain(c isa.Class) arch.Domain {
	switch c {
	case isa.FPALU, isa.FPMul:
		return arch.FP
	case isa.Load, isa.Store:
		return arch.Memory
	default:
		return arch.Integer
	}
}

// Instr implements isa.Consumer: it simulates one instruction.
func (m *Machine) Instr(ins *isa.Instr) bool {
	cfg := &m.cfg
	fe := m.clk[arch.FrontEnd]
	t := &m.times
	*t = Times{}

	// --- Fetch ---
	if m.fetchEdge == 0 {
		m.fetchEdge = fe.NextEdge(0)
	}
	if m.fetchCount >= cfg.DecodeWidth {
		m.fetchEdge = fe.NextEdge(m.fetchEdge)
		m.fetchCount = 0
	}
	if line := ins.PC >> 6; line != m.fetchLine {
		m.fetchLine = line
		if !m.il1.Access(ins.PC) {
			m.fetchEdge = m.missPath(m.fetchEdge, arch.FrontEnd)
		}
	}
	t.Fetch = m.fetchEdge
	m.fetchCount++
	m.book.Charge(power.FetchOp, fe.VoltsAt(t.Fetch))

	// --- Dispatch (rename, ROB and IQ allocation) ---
	disp := fe.Advance(t.Fetch, int64(cfg.FrontDepth))
	// ROB capacity: wait for the instruction ROBSize back to commit.
	if m.seq >= int64(cfg.ROBSize) {
		if old := m.rob[m.robIdx]; old > disp {
			disp = old
		}
	}
	// Dispatch width.
	if disp > m.dispEdge {
		m.dispEdge = fe.NextEdge(disp - 1)
		m.dispCount = 0
	} else if m.dispCount >= cfg.DecodeWidth {
		m.dispEdge = fe.NextEdge(m.dispEdge)
		m.dispCount = 0
		disp = m.dispEdge
	}
	if m.dispEdge > disp {
		disp = m.dispEdge
	}
	m.dispCount++

	dom := execDomain(ins.Class)
	// Issue-queue capacity in the execution domain.
	disp = m.iqAdmit(dom, disp)
	t.Dispatch = disp
	t.Dom = dom
	m.book.Charge(power.RenameOp, fe.VoltsAt(disp))

	// --- Ready: operand availability ---
	ready := m.sync.Cross(disp, fe, m.clk[dom])
	for _, src := range [2]uint16{ins.Src1, ins.Src2} {
		if src == 0 || int64(src) > m.seq {
			continue
		}
		idx := (m.seq - int64(src)) & (depRingSize - 1)
		prodT := m.complRing[idx]
		prodD := arch.Domain(m.domRing[idx])
		av := m.sync.Cross(prodT, m.clk[prodD], m.clk[dom])
		if av > ready {
			ready = av
		}
	}
	t.Ready = ready

	// --- Issue and execute ---
	var complete int64
	dclk := m.clk[dom]
	switch ins.Class {
	case isa.IntALU:
		issue := m.fuIssue(dom, m.intALU, dclk, ready, 1)
		complete = dclk.Advance(issue, int64(cfg.IntALULat))
		t.Issue = issue
		m.book.Charge(power.IntOp, dclk.VoltsAt(issue))
	case isa.IntMul:
		issue := m.fuIssue(dom, m.intMul, dclk, ready, int64(cfg.IntMulLat))
		complete = dclk.Advance(issue, int64(cfg.IntMulLat))
		t.Issue = issue
		m.book.Charge(power.IntMulOp, dclk.VoltsAt(issue))
	case isa.FPALU:
		issue := m.fuIssue(dom, m.fpALU, dclk, ready, 1)
		complete = dclk.Advance(issue, int64(cfg.FPALULat))
		t.Issue = issue
		m.book.Charge(power.FPOp, dclk.VoltsAt(issue))
	case isa.FPMul:
		issue := m.fuIssue(dom, m.fpMul, dclk, ready, int64(cfg.FPMulLat))
		complete = dclk.Advance(issue, int64(cfg.FPMulLat))
		t.Issue = issue
		m.book.Charge(power.FPMulOp, dclk.VoltsAt(issue))
	case isa.Load:
		issue := m.fuIssue(dom, m.lsPort, dclk, ready, 1)
		t.Issue = issue
		m.book.Charge(power.LSQOp, dclk.VoltsAt(issue))
		m.book.Charge(power.DCacheOp, dclk.VoltsAt(issue))
		if m.dl1.Access(ins.Addr) {
			complete = dclk.Advance(issue, int64(cfg.L1Lat))
		} else if m.l2.Access(ins.Addr) {
			t.MemLevel = 1
			m.book.Charge(power.L2Op, dclk.VoltsAt(issue))
			complete = dclk.Advance(issue, int64(cfg.L1Lat+cfg.L2Lat))
		} else {
			t.MemLevel = 2
			m.book.Charge(power.L2Op, dclk.VoltsAt(issue))
			m.book.Charge(power.MemOp, dvfs.VMax)
			after := dclk.Advance(issue, int64(cfg.L1Lat+cfg.L2Lat)) + cfg.MemLatPs
			complete = dclk.NextEdge(after)
		}
	case isa.Store:
		issue := m.fuIssue(dom, m.lsPort, dclk, ready, 1)
		t.Issue = issue
		m.book.Charge(power.LSQOp, dclk.VoltsAt(issue))
		m.book.Charge(power.DCacheOp, dclk.VoltsAt(issue))
		// Stores retire from the store queue off the critical path; the
		// cache fill happens in the background.
		m.dl1.Access(ins.Addr)
		complete = dclk.Advance(issue, 1)
	case isa.Branch:
		issue := m.fuIssue(dom, m.intALU, dclk, ready, 1)
		complete = dclk.Advance(issue, int64(cfg.IntALULat))
		t.Issue = issue
		m.book.Charge(power.IntOp, dclk.VoltsAt(issue))
		if m.bp.Lookup(ins.PC, ins.Taken) {
			m.Mispredicts++
			t.Mispredict = true
			redirect := m.sync.Cross(complete, dclk, fe)
			m.fetchEdge = fe.Advance(redirect, int64(cfg.MispredictPenalty))
			m.fetchCount = 0
		}
	case isa.Track, isa.Reconfig:
		// Injected instrumentation: an integer-side operation whose
		// latency is the measured worst-case overhead for its kind.
		lat := int64(instrCost(ins))
		if lat < 1 {
			lat = 1
		}
		issue := m.fuIssue(dom, m.intALU, dclk, ready, 1)
		complete = dclk.Advance(issue, lat)
		t.Issue = issue
		m.book.Charge(power.OverheadOp, dclk.VoltsAt(issue))
		if ins.Class == isa.Reconfig {
			m.applyReconfig(ins, issue)
		}
	}
	t.Complete = complete

	// --- Commit (in order) ---
	cm := m.sync.Cross(complete, dclk, fe)
	edge := fe.NextEdge(cm - 1)
	if edge < m.commitEdge {
		edge = m.commitEdge
	}
	if edge == m.commitEdge {
		if m.commitCount >= cfg.RetireWidth {
			edge = fe.NextEdge(edge)
			m.commitCount = 0
		}
	} else {
		m.commitCount = 0
	}
	m.commitEdge = edge
	m.commitCount++
	t.Commit = edge
	m.lastCommit = edge
	m.book.Charge(power.CommitOp, fe.VoltsAt(edge))

	// Record results for dependents and the ROB.
	idx := m.seq & (depRingSize - 1)
	m.complRing[idx] = complete
	m.domRing[idx] = uint8(dom)
	m.rob[m.robIdx] = edge
	if m.robIdx++; m.robIdx == len(m.rob) {
		m.robIdx = 0
	}

	if m.trace != nil {
		m.trace.Trace(m.seq, ins, t)
	}

	// Controller interval bookkeeping.
	if m.ctrl != nil {
		m.ctrlStats.Issued[dom]++
		m.ctrlStats.QueueSum[dom] += int64(len(m.iq[dom]))
		m.ctrlStats.BusyPs[dom] += m.serviceTime(ins, t)
		if m.seq-m.ctrlLastSeq >= m.ctrlInterval {
			s := m.ctrlStats
			s.Instructions = m.seq - m.ctrlLastSeq
			s.ElapsedPs = m.lastCommit - m.ctrlLastTime
			m.ctrl.OnInterval(m, m.lastCommit, s)
			m.ctrlStats = IntervalStats{}
			m.ctrlLastSeq = m.seq
			m.ctrlLastTime = m.lastCommit
		}
	}

	m.seq++
	return true
}

// serviceTime returns the on-chip service time of an instruction in its
// execution domain: execution latency excluding main-memory time. The
// hardware controller's utilization counters are built from this.
func (m *Machine) serviceTime(ins *isa.Instr, t *Times) int64 {
	period := m.clk[t.Dom].PeriodAt(t.Issue)
	var cycles int64
	switch ins.Class {
	case isa.IntALU, isa.Branch, isa.Track, isa.Reconfig:
		cycles = int64(m.cfg.IntALULat)
	case isa.IntMul:
		cycles = int64(m.cfg.IntMulLat)
	case isa.FPALU:
		cycles = int64(m.cfg.FPALULat)
	case isa.FPMul:
		cycles = int64(m.cfg.FPMulLat)
	case isa.Load:
		cycles = int64(m.cfg.L1Lat)
		if t.MemLevel >= 1 {
			cycles += int64(m.cfg.L2Lat)
		}
	case isa.Store:
		cycles = 1
	}
	return cycles * period
}

// instrCost returns the per-instrumentation-instruction cycle cost
// carried in the instruction's Freqs[0] slot for Track instructions and
// Freqs-independent fixed costs for Reconfig. The edit package sets these.
func instrCost(ins *isa.Instr) int {
	if ins.Class == isa.Track {
		return int(ins.Src1) // edit package stores the cost here
	}
	return int(ins.Src2)
}

// applyReconfig writes the MCD reconfiguration register: each scalable
// domain begins ramping toward its target frequency. The write itself
// incurs no idle time (paper Section 2).
func (m *Machine) applyReconfig(ins *isa.Instr, now int64) {
	for i, d := range arch.ScalableDomains() {
		mhz := int(ins.Freqs[i])
		if mhz == 0 {
			continue
		}
		m.clk[d].SetTarget(now, dvfs.Quantize(mhz))
	}
}

// iqAdmit delays t until the execution domain's issue queue has a free
// entry, then records the (not yet known) entry; the caller fills in the
// issue time via fuIssue.
//
// Pruning of already-issued entries is lazy: the queue is only swept
// when it looks full, because admission decisions cannot change while
// live occupancy is below capacity. When a controller is attached the
// sweep runs every instruction instead — the controller samples queue
// occupancy after each dispatch, and stale entries would skew it. The
// sweep is a branch-friendly sequential compaction; an earlier min-heap
// variant benchmarked measurably slower on these tiny queues.
func (m *Machine) iqAdmit(dom arch.Domain, t int64) int64 {
	capQ := m.iqCap[dom]
	q := m.iq[dom]
	if m.ctrl != nil {
		// Prune entries that have issued by time t.
		q = pruneQueue(q, t)
	}
	if len(q) >= capQ {
		q = pruneQueue(q, t)
		for len(q) >= capQ {
			// Wait until the earliest outstanding entry issues.
			earliest := q[0]
			for _, e := range q {
				if e < earliest {
					earliest = e
				}
			}
			if earliest > t {
				t = earliest
			}
			q = pruneQueue(q, t)
		}
	}
	m.iq[dom] = q
	return t
}

// pruneQueue removes entries with issue time <= t.
func pruneQueue(q []int64, t int64) []int64 {
	n := 0
	for _, e := range q {
		if e > t {
			q[n] = e
			n++
		}
	}
	return q[:n]
}

// fuIssue selects the earliest-available unit, aligns issue to the
// execution domain clock, reserves the unit for occ cycles and records
// the issue-queue departure in dom's queue.
func (m *Machine) fuIssue(dom arch.Domain, units []int64, dclk *clock.Schedule, ready int64, occ int64) int64 {
	best := 0
	for i := 1; i < len(units); i++ {
		if units[i] < units[best] {
			best = i
		}
	}
	start := ready
	if units[best] > start {
		start = units[best]
	}
	issue := dclk.NextEdge(start - 1)
	units[best] = dclk.Advance(issue, occ)
	// Record IQ residency: the entry leaves the queue at issue.
	if m.iqCap[dom] < 1<<30 {
		m.iq[dom] = append(m.iq[dom], issue)
	}
	return issue
}

// missPath models an instruction-fetch miss: the request crosses to the
// memory domain, probes the L2 (and main memory on an L2 miss), and the
// line returns to the requesting domain.
func (m *Machine) missPath(from int64, req arch.Domain) int64 {
	mem := m.clk[arch.Memory]
	t := m.sync.Cross(from, m.clk[req], mem)
	t = mem.NextEdge(t - 1)
	m.book.Charge(power.L2Op, mem.VoltsAt(t))
	if m.l2.Access(m.fetchLine << 6) {
		t = mem.Advance(t, int64(m.cfg.L2Lat))
	} else {
		m.book.Charge(power.MemOp, dvfs.VMax)
		t = mem.Advance(t, int64(m.cfg.L2Lat)) + m.cfg.MemLatPs
	}
	back := m.sync.Cross(t, mem, m.clk[req])
	return m.clk[req].NextEdge(back)
}
