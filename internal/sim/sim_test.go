package sim

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/isa"
)

// feed runs n instructions of a one-block program through a machine.
func feed(m *Machine, mix *isa.Mix, n int64) Result {
	b := isa.NewBuilder("simtest")
	main := b.Subroutine("main")
	b.SetBody(main, b.Block(mix, int(n)))
	p := b.Finish(main)
	p.Walk(isa.Input{Name: "train"}, &isa.CountingConsumer{Inner: m, Budget: n})
	return m.Finalize()
}

func TestBaselineRunsToCompletion(t *testing.T) {
	m := New(DefaultConfig())
	r := feed(m, isa.Balanced, 20_000)
	if r.Instructions != 20_000 {
		t.Fatalf("instructions = %d", r.Instructions)
	}
	if r.TimePs <= 0 || r.EnergyPJ <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
}

func TestIPCReasonable(t *testing.T) {
	m := New(DefaultConfig())
	r := feed(m, isa.IntHeavy, 50_000)
	ipc := r.IPCAt(1000)
	if ipc < 0.3 || ipc > 4 {
		t.Errorf("int-heavy IPC = %.2f, want a plausible value in [0.3, 4]", ipc)
	}
}

func TestMemBoundSlowerThanIntHeavy(t *testing.T) {
	mi := New(DefaultConfig())
	ri := feed(mi, isa.IntHeavy, 30_000)
	mm := New(DefaultConfig())
	rm := feed(mm, isa.MemBound, 30_000)
	if rm.TimePs <= ri.TimePs {
		t.Errorf("memory-bound (%d ps) not slower than int-heavy (%d ps)", rm.TimePs, ri.TimePs)
	}
	if rm.L2MissRate == 0 {
		t.Error("memory-bound mix produced no L2 misses")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := feed(New(DefaultConfig()), isa.Balanced, 10_000)
	b := feed(New(DefaultConfig()), isa.Balanced, 10_000)
	if a.TimePs != b.TimePs || a.EnergyPJ != b.EnergyPJ {
		t.Errorf("runs differ: %v vs %v", a, b)
	}
}

func TestSlowerDomainSlowsExecution(t *testing.T) {
	base := feed(New(DefaultConfig()), isa.IntHeavy, 30_000)
	m := New(DefaultConfig())
	m.Clock(arch.Integer).SetImmediate(0, 250)
	slow := feed(m, isa.IntHeavy, 30_000)
	if slow.TimePs <= base.TimePs {
		t.Error("quarter-speed integer domain did not slow an int-heavy run")
	}
	if slow.AvgMHz[arch.Integer] > 260 {
		t.Errorf("integer avg MHz = %v, want ~250", slow.AvgMHz[arch.Integer])
	}
}

func TestIdleDomainScalingIsCheap(t *testing.T) {
	base := feed(New(DefaultConfig()), isa.IntHeavy, 30_000)
	m := New(DefaultConfig())
	m.Clock(arch.FP).SetImmediate(0, 250)
	slow := feed(m, isa.IntHeavy, 30_000)
	// IntHeavy has no FP work: slowing FP must not hurt performance
	// (beyond 1%) and must save energy.
	if float64(slow.TimePs) > float64(base.TimePs)*1.01 {
		t.Errorf("slowing idle FP cost %.2f%%",
			(float64(slow.TimePs)/float64(base.TimePs)-1)*100)
	}
	if slow.EnergyPJ >= base.EnergyPJ {
		t.Error("slowing idle FP did not save energy")
	}
}

func TestVoltageScalingSavesEnergyQuadratically(t *testing.T) {
	m := New(DefaultConfig())
	m.SetAllImmediate(0, 500)
	half := feed(m, isa.Balanced, 20_000)
	full := feed(New(DefaultConfig()), isa.Balanced, 20_000)
	// At half frequency (V = 0.925 of 1.2): dynamic energy per op scales
	// by (0.925/1.2)^2 = 0.59; clock energy also falls. Expect >25%
	// total energy saving despite leakage over longer time.
	saving := 1 - half.EnergyPJ/full.EnergyPJ
	if saving < 0.20 {
		t.Errorf("half-speed energy saving = %.2f, want > 0.20", saving)
	}
	if half.TimePs <= full.TimePs {
		t.Error("half speed was not slower")
	}
}

func TestSyncPenaltiesAccrue(t *testing.T) {
	m := New(DefaultConfig())
	r := feed(m, isa.Balanced, 20_000)
	if r.SyncCrossings == 0 {
		t.Fatal("no synchronization crossings recorded")
	}
	if r.SyncPenalties == 0 {
		t.Error("no synchronization penalties with jittered unrelated clocks")
	}
	rate := float64(r.SyncPenalties) / float64(r.SyncCrossings)
	if rate > 0.6 {
		t.Errorf("sync penalty rate %.2f implausibly high", rate)
	}
}

func TestGloballySynchronousNoPenalties(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sync.Disabled = true
	m := New(cfg)
	r := feed(m, isa.Balanced, 20_000)
	if r.SyncPenalties != 0 {
		t.Errorf("disabled sync recorded %d penalties", r.SyncPenalties)
	}
}

func TestMCDBaselinePenaltySmall(t *testing.T) {
	// The MCD design costs a small amount vs the globally synchronous
	// core (paper: ~1.3% average, max 3.6%).
	mcd := feed(New(DefaultConfig()), isa.Balanced, 40_000)
	cfg := DefaultConfig()
	cfg.Sync.Disabled = true
	syncR := feed(New(cfg), isa.Balanced, 40_000)
	pen := float64(mcd.TimePs)/float64(syncR.TimePs) - 1
	if pen < 0 {
		t.Errorf("MCD baseline faster than synchronous: %.3f", pen)
	}
	if pen > 0.08 {
		t.Errorf("MCD baseline penalty %.1f%%, want a few percent", pen*100)
	}
}

func TestReconfigInstructionRampsDomain(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	b := isa.NewBuilder("reconf")
	main := b.Subroutine("main")
	b.SetBody(main, b.Block(isa.IntHeavy, 150_000))
	p := b.Finish(main)

	// Feed a reconfiguration instruction by hand, then the block. The
	// full-range ramp takes 55 us, so the run must be long enough for
	// the frequency to settle (150k instructions is roughly 130 us).
	ins := isa.Instr{Class: isa.Reconfig, PC: 0x40, Freqs: []uint16{1000, 1000, 250, 1000}}
	m.Instr(&ins)
	p.Walk(isa.Input{Name: "train"}, &isa.CountingConsumer{Inner: m, Budget: 160_000})
	r := m.Finalize()
	if got := r.AvgMHz[arch.FP]; got > 600 {
		t.Errorf("FP avg MHz = %.0f, want ramped down toward 250", got)
	}
	if got := r.AvgMHz[arch.Integer]; got < 990 {
		t.Errorf("integer avg MHz = %.0f, want unchanged", got)
	}
}

func TestTrackInstructionCharged(t *testing.T) {
	m := New(DefaultConfig())
	ins := isa.Instr{Class: isa.Track, PC: 0x40, Src1: 9}
	m.Instr(&ins)
	if m.Seq() != 1 {
		t.Error("track instruction not consumed")
	}
	if m.Book().Events(arch.FrontEnd) == 0 {
		t.Error("no front-end energy charged for injected instruction")
	}
}

func TestMispredictsDetected(t *testing.T) {
	m := New(DefaultConfig())
	r := feed(m, isa.Branchy, 40_000)
	if r.Mispredicts == 0 {
		t.Error("branchy mix produced no mispredicts")
	}
	if r.MispredictRate > 0.5 {
		t.Errorf("mispredict rate %.2f implausible", r.MispredictRate)
	}
}

func TestControllerIntervalStats(t *testing.T) {
	m := New(DefaultConfig())
	var calls int
	var lastStats IntervalStats
	m.SetController(controllerFunc(func(_ *Machine, _ int64, s IntervalStats) {
		calls++
		lastStats = s
	}), 5000)
	feed(m, isa.Balanced, 20_000)
	if calls < 3 {
		t.Fatalf("controller called %d times, want >= 3", calls)
	}
	if lastStats.Instructions == 0 || lastStats.ElapsedPs == 0 {
		t.Errorf("empty interval stats: %+v", lastStats)
	}
	var busy int64
	for _, v := range lastStats.BusyPs {
		busy += v
	}
	if busy == 0 {
		t.Error("no busy time recorded")
	}
}

type controllerFunc func(*Machine, int64, IntervalStats)

func (f controllerFunc) OnInterval(m *Machine, now int64, s IntervalStats) { f(m, now, s) }

func TestCommitTimesMonotonic(t *testing.T) {
	m := New(DefaultConfig())
	var prev int64
	m.SetTracer(tracerFunc(func(seq int64, ins *isa.Instr, tm *Times) {
		if tm.Commit < prev {
			t.Fatalf("commit time went backward at %d: %d < %d", seq, tm.Commit, prev)
		}
		prev = tm.Commit
		if tm.Issue < tm.Dispatch || tm.Complete < tm.Issue || tm.Commit < tm.Complete {
			t.Fatalf("pipeline order violated at %d: %+v", seq, tm)
		}
	}))
	feed(m, isa.Balanced, 20_000)
}

type tracerFunc func(int64, *isa.Instr, *Times)

func (f tracerFunc) Trace(seq int64, ins *isa.Instr, t *Times) { f(seq, ins, t) }

func TestEnergyDelayConsistency(t *testing.T) {
	r := feed(New(DefaultConfig()), isa.Balanced, 5000)
	if r.EnergyDelay() != r.EnergyPJ*float64(r.TimePs) {
		t.Error("EnergyDelay mismatch")
	}
}

func TestDomainEnergyBreakdownSums(t *testing.T) {
	r := feed(New(DefaultConfig()), isa.Balanced, 10_000)
	var sum float64
	for _, v := range r.DomainPJ {
		sum += v
	}
	if diff := sum - r.EnergyPJ; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("domain energies sum %v != total %v", sum, r.EnergyPJ)
	}
}
