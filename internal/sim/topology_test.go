package sim

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/isa"
)

// runUnder simulates n balanced instructions under one topology.
func runUnder(t *testing.T, topology string, n int) Result {
	t.Helper()
	b := isa.NewBuilder("topo-" + topology)
	main := b.Subroutine("main")
	b.SetBody(main, b.Block(isa.Balanced, n))
	prog := b.Finish(main)
	cfg := DefaultConfig()
	cfg.Topology = topology
	m := New(cfg)
	prog.Walk(isa.Input{Name: "train"}, &isa.CountingConsumer{Inner: m, Budget: int64(n)})
	return m.Finalize()
}

// TestTopologySizesResult checks that the machine sizes its per-domain
// state and result slices from the topology model.
func TestTopologySizesResult(t *testing.T) {
	for _, name := range arch.TopologyNames() {
		topo := arch.MustTopology(name)
		res := runUnder(t, name, 20_000)
		if len(res.DomainPJ) != topo.NumDomains() {
			t.Errorf("%s: DomainPJ sized %d, want %d", name, len(res.DomainPJ), topo.NumDomains())
		}
		if len(res.AvgMHz) != topo.NumScalable() {
			t.Errorf("%s: AvgMHz sized %d, want %d", name, len(res.AvgMHz), topo.NumScalable())
		}
		if res.EnergyPJ <= 0 || res.TimePs <= 0 {
			t.Errorf("%s: empty result %v", name, res)
		}
	}
}

// TestSync1HasNoCrossings pins the defining property of the fully
// synchronous topology: with every on-chip resource in one domain, no
// value ever crosses a synchronizer, even with jitter enabled.
func TestSync1HasNoCrossings(t *testing.T) {
	res := runUnder(t, "sync1", 20_000)
	if res.SyncCrossings != 0 {
		t.Errorf("sync1 counted %d crossings, want 0", res.SyncCrossings)
	}
	if p4 := runUnder(t, "paper4", 20_000); p4.SyncCrossings == 0 {
		t.Error("paper4 counted no crossings; the control is broken")
	}
}

// TestFinerTopologyCrossesMore checks the monotonic intuition the sweep
// axis exists to expose: splitting domains adds synchronization
// boundaries, so fine6 crosses at least as often as paper4, and fe-be2
// at most as often.
func TestFinerTopologyCrossesMore(t *testing.T) {
	const n = 20_000
	two := runUnder(t, "fe-be2", n)
	four := runUnder(t, "paper4", n)
	six := runUnder(t, "fine6", n)
	if !(two.SyncCrossings <= four.SyncCrossings && four.SyncCrossings <= six.SyncCrossings) {
		t.Errorf("crossings not monotonic in granularity: fe-be2=%d paper4=%d fine6=%d",
			two.SyncCrossings, four.SyncCrossings, six.SyncCrossings)
	}
}

// TestTopologyReconfigTargetsDomains verifies a Reconfig instruction's
// per-domain frequency vector lands on the topology's scalable domains.
func TestTopologyReconfigTargetsDomains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = "fe-be2"
	m := New(cfg)
	b := isa.NewBuilder("reconf2")
	main := b.Subroutine("main")
	b.SetBody(main, b.Block(isa.Balanced, 60_000))
	prog := b.Finish(main)

	// Feed a few instructions, then a reconfig halving the back end.
	prog.Walk(isa.Input{Name: "train"}, &isa.CountingConsumer{Inner: m, Budget: 100})
	ins := isa.Instr{Class: isa.Reconfig, PC: 0x40, Freqs: []uint16{1000, 500}}
	m.Instr(&ins)
	prog.Walk(isa.Input{Name: "train"}, &isa.CountingConsumer{Inner: m, Budget: 50_000})
	res := m.Finalize()
	if res.AvgMHz[0] < 950 {
		t.Errorf("front-end avg %v MHz, want near 1000", res.AvgMHz[0])
	}
	if res.AvgMHz[1] > 700 {
		t.Errorf("back-end avg %v MHz, want ramped toward 500", res.AvgMHz[1])
	}
}

// TestUnknownTopologyPanics pins the boundary contract: building a
// machine from an unvalidated topology name is a programming error.
func TestUnknownTopologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with unknown topology did not panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Topology = "bogus"
	New(cfg)
}
