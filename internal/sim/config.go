// Package sim implements the cycle-level Multiple Clock Domain processor
// simulator: an out-of-order, Alpha 21264-class core (paper Table 1)
// partitioned into independently clocked on-chip domains plus full-speed
// external memory. The domain structure is declarative: an arch.Topology
// routes each pipeline resource (fetch, dispatch, the execution
// clusters, the L2 interface, main memory) onto a clock domain, and the
// machine sizes its per-domain state from the model — the paper's
// 4-domain split is simply the default topology. Instruction timing is
// computed with a timestamp-propagation model that honours
// fetch/dispatch/retire widths, ROB and issue-queue capacities,
// functional-unit contention, cache and memory latencies, branch
// misprediction, inter-domain synchronization (with jitter), per-domain
// DVFS ramps, and injected instrumentation instructions. Energy is
// accounted with the Wattch-style model in internal/power.
package sim

import (
	"repro/internal/arch"
	"repro/internal/clock"
)

// Config holds the microarchitectural parameters (defaults follow paper
// Table 1).
type Config struct {
	// Widths.
	DecodeWidth int // fetch/decode width per front-end cycle
	IssueWidth  int // nominal total issue width (informational; per-domain FU counts bind)
	RetireWidth int // retire width per front-end cycle

	// Window structures.
	ROBSize int
	IQInt   int // integer issue queue entries
	IQFP    int // floating-point issue queue entries
	IQLS    int // load/store queue entries

	// Functional units.
	IntALUs int
	IntMuls int
	FPALUs  int
	FPMuls  int
	LSPorts int

	// Latencies (cycles in the owning domain unless noted).
	IntALULat  int
	IntMulLat  int
	FPALULat   int
	FPMulLat   int
	L1Lat      int   // L1 D-cache hit, memory domain cycles
	L2Lat      int   // L2 hit (beyond L1), memory domain cycles
	MemLatPs   int64 // main memory, picoseconds (external domain is unscaled)
	FrontDepth int   // fetch-to-dispatch depth, front-end cycles

	// Branch handling.
	MispredictPenalty int // front-end cycles from resolution to redirect

	// Clocking.
	BaseMHz int // nominal frequency of every domain
	Sync    clock.SyncConfig

	// Seed drives synchronization jitter randomization.
	Seed int64

	// Topology names the registered clock-domain topology the machine is
	// built from; empty means the paper's default 4-domain split
	// (arch.DefaultName). The empty and default names canonicalize to
	// the same cache keys, which is why the field is omitted from JSON
	// when unset.
	Topology string `json:",omitempty"`
}

// Topo resolves the configuration's topology; it panics on unknown
// names (validate names with arch.TopologyByName at the boundary —
// manifests and CLI flags — before building machines).
func (c Config) Topo() *arch.Topology { return arch.MustTopology(c.Topology) }

// DefaultConfig returns the Table 1 configuration.
func DefaultConfig() Config {
	return Config{
		DecodeWidth:       4,
		IssueWidth:        6,
		RetireWidth:       11,
		ROBSize:           80,
		IQInt:             20,
		IQFP:              15,
		IQLS:              64,
		IntALUs:           4,
		IntMuls:           1,
		FPALUs:            2,
		FPMuls:            1,
		LSPorts:           2,
		IntALULat:         1,
		IntMulLat:         7,
		FPALULat:          4,
		FPMulLat:          12,
		L1Lat:             2,
		L2Lat:             12,
		MemLatPs:          80_000, // 80 ns
		FrontDepth:        3,
		MispredictPenalty: 7,
		BaseMHz:           1000,
		Sync:              clock.DefaultSyncConfig(),
		Seed:              1,
	}
}

// depRingSize is the completion-time ring capacity; it must exceed the
// largest register dependency distance the ISA can express and be a
// power of two.
const depRingSize = 1 << 16
